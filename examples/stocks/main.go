// Stocks is the paper's motivating application (§1): find companies
// whose price movement has the same *trend* as a reference stock, even
// when the absolute price level (shift) and the fluctuation amplitude
// (scale) differ.
//
// It builds a synthetic Hong Kong market of 200 companies, takes a
// quarter-long window of one company's price history as the query, and
// retrieves every window in the market with the same trend — first
// unrestricted, then with cost bounds that keep only positively
// correlated trends (scale factor a > 0), and finally as a top-10
// nearest-neighbour ranking.
package main

import (
	"fmt"
	"log"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

func main() {
	// A synthetic market: 200 companies, 650 trading days.
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 200
	companies, err := stock.Populate(st, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("market: %d companies, %d closing prices (%d data pages)\n",
		len(companies), st.TotalValues(), st.PageCount())

	opts := core.DefaultOptions() // n = 128, f_c = 3, paper's R*-tree
	ix, err := core.NewIndex(st, opts)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := ix.BuildBulk(); err != nil { // STR bulk load: ~20x faster than insertion
		log.Fatal(err)
	}
	fmt.Printf("index: %d windows in %v\n\n", ix.WindowCount(), time.Since(start).Round(time.Millisecond))

	// The query: one quarter (~128 trading days) of company 17.
	const refSeq, refStart = 17, 300
	q := make(vec.Vector, opts.WindowLen)
	if err := st.Window(refSeq, refStart, opts.WindowLen, q, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s days [%d, %d), price range ~%.2f..%.2f\n",
		st.SequenceName(refSeq), refStart, refStart+opts.WindowLen, minOf(q), maxOf(q))

	// Calibrate epsilon to the query's own fluctuation: accept windows
	// whose shape differs by at most a 25 % residual.
	eps := 0.25 * vec.Norm(vec.SETransform(q))
	fmt.Printf("eps: %.3f (25%% of the query's fluctuation norm)\n\n", eps)

	// 1. Unrestricted scale/shift search.
	var stats core.SearchStats
	all, err := ix.Search(q, eps, core.UnboundedCosts(), &stats)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same-trend windows (any scale/shift): %d matches, %d index + %d data pages\n",
		len(all), stats.IndexNodeAccesses, stats.DataPageAccesses)

	// 2. Only positively correlated trends with bounded amplification:
	// 0.2 <= a <= 5 rejects inverse (a < 0) and degenerate (a ~ 0)
	// matches; |b| <= 100 keeps the price level within HK$100.
	costs := core.UnboundedCosts()
	costs.ScaleMin, costs.ScaleMax = 0.2, 5
	costs.ShiftMin, costs.ShiftMax = -100, 100
	stats = core.SearchStats{}
	positive, err := ix.Search(q, eps, costs, &stats)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with cost bounds 0.2<=a<=5, |b|<=100:     %d matches (%d rejected by cost)\n\n",
		len(positive), stats.CostRejected)

	// 3. The ten most similar windows from OTHER companies.  Without
	// cost bounds the ranking is dominated by near-flat penny-stock
	// windows that "match" any query via a ≈ 0 — bounding the scale
	// factor keeps only genuine trend-alikes.
	nn, err := ix.NearestNeighborsWithCosts(q, 60, costs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top trend-alikes from other companies (cost-bounded):")
	printed := 0
	for _, m := range nn {
		if m.Seq == refSeq {
			continue // skip self-overlapping windows
		}
		fmt.Printf("  %-8s days [%3d, %3d)  dist=%7.3f  a=%+.3f  b=%+8.2f\n",
			m.Name, m.Start, m.Start+opts.WindowLen, m.Dist, m.Scale, m.Shift)
		printed++
		if printed == 10 {
			break
		}
	}
}

func minOf(v vec.Vector) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(v vec.Vector) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
