// Longquery demonstrates the multipiece method of the paper's
// concluding remarks (§7): a query longer than the extracting window n
// is split into ⌊len/n⌋ disjoint sub-queries, each searched
// independently with a reduced error bound ε/√k, and the proposed
// alignments are verified on the full length — provably without
// missing a qualified subsequence.
//
// The demo indexes a market with window n = 64, then searches for a
// full half-year pattern (256 days = 4 pieces) disguised by scale and
// shift, and cross-checks the result against a brute-force scan.
package main

import (
	"fmt"
	"log"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/seqscan"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

func main() {
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 100
	if _, err := stock.Populate(st, cfg); err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.WindowLen = 64 // the index knows nothing about 256-day queries
	ix, err := core.NewIndex(st, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: window n=%d, %d windows\n", opts.WindowLen, ix.WindowCount())

	// The query: 256 consecutive days of company 42, disguised.
	const qLen = 256
	src := make(vec.Vector, qLen)
	if err := st.Window(42, 200, qLen, src, nil); err != nil {
		log.Fatal(err)
	}
	q := vec.Apply(src, 0.8, 12)
	eps := 0.05 * vec.Norm(vec.SETransform(q))
	fmt.Printf("query: %d days (%d pieces), disguised by a=0.8 b=12, eps=%.3f\n\n",
		qLen, qLen/opts.WindowLen, eps)

	// Multipiece index search.
	var stats core.SearchStats
	start := time.Now()
	matches, err := ix.SearchLong(q, eps, core.UnboundedCosts(), &stats)
	if err != nil {
		log.Fatal(err)
	}
	indexTime := time.Since(start)
	fmt.Printf("multipiece search: %d matches in %v (%d candidates, %d false alarms)\n",
		len(matches), indexTime.Round(time.Microsecond), stats.Candidates, stats.FalseAlarms)
	for i, m := range matches {
		if i == 8 {
			fmt.Printf("  ... %d more\n", len(matches)-8)
			break
		}
		fmt.Printf("  %-8s days [%3d, %3d)  dist=%7.3f  a=%+.3f  b=%+7.2f\n",
			m.Name, m.Start, m.Start+qLen, m.Dist, m.Scale, m.Shift)
	}

	// Ground truth by brute force.
	start = time.Now()
	oracle, err := seqscan.Search(st, q, eps, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	scanTime := time.Since(start)
	fmt.Printf("\nbrute-force scan: %d matches in %v\n", len(oracle), scanTime.Round(time.Microsecond))

	if len(matches) != len(oracle) {
		log.Fatalf("MISMATCH: index %d vs scan %d", len(matches), len(oracle))
	}
	for i := range matches {
		if matches[i].Seq != oracle[i].Seq || matches[i].Start != oracle[i].Start {
			log.Fatalf("MISMATCH at rank %d", i)
		}
	}
	fmt.Printf("result sets identical (no false dismissals); index %.1fx faster\n",
		float64(scanTime)/float64(indexTime))
}
