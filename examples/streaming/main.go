// Streaming demonstrates requirement 2 of the paper's problem
// statement (§3): the index must cope with frequent, regular data
// insertion, because time series are collected continuously.
//
// A live market feed is simulated: the index starts with one month of
// history for 50 tickers, then new tickers list (AppendAndIndex) while
// a monitoring query runs after every batch — each freshly indexed
// window is searchable immediately, with no rebuild.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"scaleshift/internal/core"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

const window = 64

func main() {
	// Bootstrap: 50 tickers of history.
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 50
	cfg.Days = 250
	if _, err := stock.Populate(st, cfg); err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.WindowLen = window
	ix, err := core.NewIndex(st, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap: %d tickers, %d windows indexed\n\n", st.NumSequences(), ix.WindowCount())

	// The pattern we watch for: a sharp V-shaped reversal.
	pattern := make(vec.Vector, window)
	for i := range pattern {
		pattern[i] = math.Abs(float64(i) - window/2)
	}
	eps := 0.25 * vec.Norm(vec.SETransform(pattern))
	costs := core.UnboundedCosts()
	costs.ScaleMin = 0.5 // only upright, materially-sized reversals

	r := rand.New(rand.NewSource(99))
	for batch := 1; batch <= 5; batch++ {
		// A new ticker lists with 120 days of history; one of the
		// batches hides a planted reversal.
		prices := make([]float64, 120)
		p := 20 + r.Float64()*30
		for i := range prices {
			p *= math.Exp(r.NormFloat64() * 0.01)
			prices[i] = p
		}
		name := fmt.Sprintf("IPO%02d", batch)
		if batch == 3 {
			// Plant a scaled, shifted copy of the pattern.
			for i := 0; i < window; i++ {
				prices[30+i] = 3*pattern[i] + 45
			}
			name = "IPO03*"
		}
		seq, err := ix.AppendAndIndex(name, prices)
		if err != nil {
			log.Fatal(err)
		}

		var stats core.SearchStats
		matches, err := ix.Search(pattern, eps, costs, &stats)
		if err != nil {
			log.Fatal(err)
		}
		// Report only hits on the just-listed ticker.
		fresh := 0
		for _, m := range matches {
			if m.Seq == seq {
				if fresh == 0 {
					fmt.Printf("batch %d: reversal alert on %s at day %d (a=%.2f, b=%.2f, dist=%.2f)\n",
						batch, m.Name, m.Start, m.Scale, m.Shift, m.Dist)
				}
				fresh++
			}
		}
		if fresh == 0 {
			fmt.Printf("batch %d: %s indexed, no reversal (total windows %d, %d matches elsewhere)\n",
				batch, name, ix.WindowCount(), len(matches))
		}
	}

	// Live ticks: the most recent ticker keeps trading; every batch of
	// new samples is indexed incrementally — windows spanning the old
	// end become searchable immediately (requirement 2 of §3).
	fmt.Println()
	live := st.NumSequences() - 1
	lastPrice := 30.0
	for tick := 0; tick < 3; tick++ {
		batch := make([]float64, 20)
		for i := range batch {
			lastPrice *= math.Exp(r.NormFloat64() * 0.01)
			batch[i] = lastPrice
		}
		before := ix.WindowCount()
		if err := ix.ExtendAndIndex(live, batch); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tick batch %d: +20 samples on %s, %d new windows indexed (total %d)\n",
			tick+1, st.SequenceName(live), ix.WindowCount()-before, ix.WindowCount())
	}

	// Delisting: remove a ticker from the index.
	fmt.Println()
	before := ix.WindowCount()
	if err := ix.UnindexSequence(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delisted %s: %d windows removed, %d remain searchable\n",
		st.SequenceName(0), before-ix.WindowCount(), ix.WindowCount())
}
