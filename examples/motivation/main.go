// Motivation quantifies the paper's opening argument (§1) at database
// scale: a classic Euclidean subsequence index (F-index/ST-index style,
// Agrawal et al. [1], Faloutsos et al. [2]) cannot find sequences that
// match only after scaling and shifting, while the paper's method
// recovers every one of them.
//
// 50 queries are sampled from a synthetic market and disguised with
// random scale factors and shift offsets.  Both indexes search with the
// same error budget; we report how often each retrieves its query's
// source window (recall) and what else they return.
package main

import (
	"fmt"
	"log"

	"scaleshift/internal/core"
	"scaleshift/internal/euclid"
	"scaleshift/internal/query"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

const (
	windowLen = 64
	nQueries  = 50
)

func main() {
	st := store.New()
	scfg := stock.DefaultConfig()
	scfg.Companies = 100
	scfg.Days = 300
	if _, err := stock.Populate(st, scfg); err != nil {
		log.Fatal(err)
	}

	// Build both indexes over the same store.
	ssOpts := core.DefaultOptions()
	ssOpts.WindowLen = windowLen
	ss, err := core.NewIndex(st, ssOpts)
	if err != nil {
		log.Fatal(err)
	}
	if err := ss.BuildBulk(); err != nil {
		log.Fatal(err)
	}
	euOpts := euclid.DefaultOptions()
	euOpts.WindowLen = windowLen
	eu, err := euclid.NewIndex(st, euOpts)
	if err != nil {
		log.Fatal(err)
	}
	if err := eu.Build(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d windows; scale/shift index %d pages, euclidean index %d pages\n\n",
		ss.WindowCount(), ss.IndexPageCount(), eu.IndexPageCount())

	// Disguised workload: the source windows exist verbatim in the
	// database, but the queries are scaled by [0.25, 4] and shifted by
	// [-20, 20].
	qcfg := query.DefaultConfig()
	qcfg.N = nQueries
	qcfg.WindowLen = windowLen
	queries, err := query.Generate(st, qcfg)
	if err != nil {
		log.Fatal(err)
	}
	normScale, err := query.SENormScale(st, windowLen, 300, 3)
	if err != nil {
		log.Fatal(err)
	}
	eps := 0.05 * normScale

	var ssHits, euHits, ssTotal, euTotal int
	for _, q := range queries {
		ssRes, err := ss.Search(q.Values, eps, core.UnboundedCosts(), nil)
		if err != nil {
			log.Fatal(err)
		}
		euRes, err := eu.Search(q.Values, eps, nil)
		if err != nil {
			log.Fatal(err)
		}
		ssTotal += len(ssRes)
		euTotal += len(euRes)
		for _, m := range ssRes {
			if m.Seq == q.Seq && m.Start == q.Start {
				ssHits++
				break
			}
		}
		for _, m := range euRes {
			if m.Seq == q.Seq && m.Start == q.Start {
				euHits++
				break
			}
		}
	}

	fmt.Printf("error budget eps = %.3f (5%% of mean window fluctuation)\n", eps)
	fmt.Printf("%-28s %14s %16s\n", "method", "source recall", "avg matches")
	fmt.Printf("%-28s %9d/%d %16.1f\n", "scale/shift index (paper)", ssHits, nQueries,
		float64(ssTotal)/nQueries)
	fmt.Printf("%-28s %9d/%d %16.1f\n", "euclidean index [1,2]", euHits, nQueries,
		float64(euTotal)/nQueries)
	fmt.Println()
	if ssHits == nQueries && euHits < nQueries/5 {
		fmt.Println("=> scaling/shifting makes the match invisible to Euclidean search,")
		fmt.Println("   exactly the failure mode the paper's similarity definition fixes.")
	} else {
		fmt.Println("unexpected recall pattern — inspect the workload parameters")
	}
}
