// Quickstart reproduces the worked example of the paper's introduction
// (Figure 1): sequences A, B and C look different, but B = 2·A and
// C = A + 20, so under scale/shift similarity they are the same
// sequence.  It then indexes a toy database and shows that searching
// with A as the query retrieves both B and C with the transformations
// that map A onto them.
package main

import (
	"fmt"
	"log"

	"scaleshift/internal/core"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

func main() {
	a := vec.Vector{5, 10, 6, 12, 4}
	b := vec.Vector{10, 20, 12, 24, 8}
	c := vec.Vector{25, 30, 26, 32, 24}

	fmt.Println("Figure 1 sequences:")
	fmt.Println("  A =", a)
	fmt.Println("  B =", b)
	fmt.Println("  C =", c)
	fmt.Println()

	// Pairwise minimum scale/shift distances (Theorem 1 closed forms).
	for _, pair := range []struct {
		name string
		u, v vec.Vector
	}{
		{"A ~ B", a, b},
		{"A ~ C", a, c},
		{"B ~ C", b, c},
	} {
		m := vec.MinDist(pair.u, pair.v)
		fmt.Printf("  %s: dist=%.2g with scale a=%.3g, shift b=%.3g\n",
			pair.name, m.Dist, m.Scale, m.Shift)
	}
	fmt.Println()

	// Index a small database containing B, C, and some decoys, then
	// search with A.
	st := store.New()
	st.AppendSequence("B", b)
	st.AppendSequence("C", c)
	st.AppendSequence("decoy-1", []float64{1, 9, 2, 8, 3})
	st.AppendSequence("decoy-2", []float64{7, 7, 8, 7, 7})

	opts := core.DefaultOptions()
	opts.WindowLen = 5    // match the example's sequence length
	opts.Coefficients = 2 // 2·fc < n requires fc <= 2 at n = 5
	ix, err := core.NewIndex(st, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		log.Fatal(err)
	}

	matches, err := ix.Search(a, 0.001, core.UnboundedCosts(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query A with eps=0.001 finds %d matches:\n", len(matches))
	for _, m := range matches {
		fmt.Printf("  %-8s  F_{a,b}(A) = %.3g*A + %.3g  (dist %.2g)\n",
			m.Name, m.Scale, m.Shift, m.Dist)
	}
}
