# Standard entry points for the scaleshift repo.  `make check` is the
# gate CI (and contributors) run before merging.

GO ?= go

# Build-info stamp: binaries report this via the scaleshift_build_info
# metric and ssbench -json reports; defaults to the working revision.
VERSION ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)
LDFLAGS = -ldflags "-X scaleshift/internal/cliutil.Version=$(VERSION)"

.PHONY: check vet build test race bench bench-json bench-planner bench-smoke bench-obs bench-recovery fmt-check soak soak-smoke soak-cluster bench-cluster

# test already carries the observability gates: the metrics-name lint
# (internal/obs/lint_test.go) and the 0 allocs/op assertion over the
# disabled metric, span, and wide-event paths (alloc_test.go).
check: vet fmt-check build test race soak-smoke

vet:
	$(GO) vet ./...

# gofmt emits the offending paths; fail if there are any.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick benchmark smoke: the build comparison and the verification
# micro-benchmarks committed under results/.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkBulkBuild' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkVerify' -benchtime 0.2s ./internal/vec/

# Hot-path perf trajectory: pointer tree vs frozen flat arena (range
# and k-NN QPS, allocations), scalar vs batched pruning kernel, and
# zero-copy cold-open latency, written per revision under results/.
# -enforce fails the run if the batched kernel is below 1.5x the
# scalar path or the flat tree regresses throughput by more than 10%.
bench-json:
	@rev="$$(git rev-parse --short HEAD 2>/dev/null || echo dev)"; \
	$(GO) run -ldflags "-X scaleshift/internal/cliutil.Version=$$rev" \
		./cmd/ssbench -experiment perf -scale small -label "$$rev" \
		-json "results/BENCH_$$rev.json" -enforce && \
	echo "wrote results/BENCH_$$rev.json"

# Planner calibration: time cost-based auto against every forced access
# path over a store-size x epsilon grid, regenerating the committed
# ablation artifact.
bench-planner:
	$(GO) run ./cmd/ssbench -experiment planner -scale medium > results/planner_ablation.txt
	@cat results/planner_ablation.txt

# Bench smoke: a small fig4/5 run with a metrics snapshot, the CI
# trajectory artifact (BENCH_smoke.json).
bench-smoke:
	$(GO) run ./cmd/ssbench -experiment fig45 -scale small -metrics-out BENCH_smoke.json
	@echo "metrics snapshot:" && head -20 BENCH_smoke.json

# Soak smoke: ~30s of chaos against a live ssserve under -race —
# concurrent queries vs an unfaulted oracle, hot reloads (clean and
# fault-injected), client disconnects, overload bursts, and a
# goroutine-leak assertion — plus the kill-and-restart recovery loop
# (concurrent appends, checkpoints, and reloads between crashes, with
# every acked append verified after each recovery).  SOAK_smoke.json
# is the metrics artifact CI uploads.
soak-smoke:
	SOAK_SECONDS=20 SOAK_METRICS_OUT=SOAK_smoke.json $(GO) test -race -count=1 -run 'TestSoak$$|TestSoakRecovery$$|TestSoakCluster$$' -v ./cmd/ssserve

# Full soak: minutes of the same chaos, for local pre-release runs.
soak:
	SOAK_SECONDS=120 SOAK_METRICS_OUT=SOAK_full.json $(GO) test -race -count=1 -timeout 10m -run 'TestSoak$$|TestSoakRecovery$$|TestSoakCluster$$' -v ./cmd/ssserve

# Cluster soak: three real shard processes (one behind a chaos TCP
# proxy that stalls, resets, and gets SIGKILLed+restarted) behind a
# scatter-gather coordinator, under -race.  Every answer is checked
# bit-exactly against a single-node oracle: 200s must equal the union
# oracle, 206s must equal the oracle minus exactly the faulted shard's
# slice, and nothing else is allowed — zero 5xx under shard loss.
soak-cluster:
	SOAK_SECONDS=30 SOAK_CLUSTER_METRICS_OUT=SOAK_cluster.json $(GO) test -race -count=1 -timeout 10m -run 'TestSoakCluster$$' -v ./cmd/ssserve

# Distribution overhead: single-node vs 3-shard scatter-gather QPS on
# identical data and queries, with a full exactness sweep (every
# cluster answer bit-identical to the single-node oracle).  -enforce
# gates exactness and coverage, not throughput; the overhead factor
# lands in results/BENCH_<rev>.json alongside the other perf rows.
bench-cluster:
	@rev="$$(git rev-parse --short HEAD 2>/dev/null || echo dev)"; \
	$(GO) run -ldflags "-X scaleshift/internal/cliutil.Version=$$rev" \
		./cmd/ssbench -experiment cluster -scale small -label "$$rev" \
		-json "results/BENCH_$$rev.json" -enforce && \
	echo "wrote results/BENCH_$$rev.json"

# Recovery cost trajectory: cold-restart time vs WAL tail length past
# the last checkpoint.  -enforce fails the run if recovery replays a
# record count different from the designed tail, or if a zero-tail
# checkpoint recovery fails to beat full WAL replay.
bench-recovery:
	$(GO) run ./cmd/ssbench -experiment recovery -scale small -enforce

# Observability overhead: the disabled-path micro-benchmarks — metric
# updates, span starts, and wide-event emission must all be 0 allocs/op
# — and the query benchmarks obs hooks ride on.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkDisabled|BenchmarkCounterInc|BenchmarkHistogramObserve' -benchmem ./internal/obs/
	$(GO) test -run '^$$' -bench 'BenchmarkFig4CPUTime|BenchmarkTrailSearch' -benchtime 2x -benchmem .
