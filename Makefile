# Standard entry points for the scaleshift repo.  `make check` is the
# gate CI (and contributors) run before merging.

GO ?= go

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick benchmark smoke: the build comparison and the verification
# micro-benchmarks committed under results/.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkBulkBuild' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkVerify' -benchtime 0.2s ./internal/vec/
