// Package scaleshift_bench holds the testing.B entry points that
// regenerate the paper's evaluation figures (see DESIGN.md §4 and
// EXPERIMENTS.md for the experiment index):
//
//	BenchmarkFig4CPUTime/<set>/eps=<f>        Figure 4: CPU time per query
//	BenchmarkFig5PageAccesses/<set>/eps=<f>   Figure 5: page accesses per query
//	BenchmarkAblationSplit/<algorithm>        DESIGN.md abl-split
//	BenchmarkAblationDims/fc=<n>              DESIGN.md abl-dims
//	BenchmarkNearestNeighbors/k=<n>           Corollary 1 extension
//	BenchmarkIndexBuild                       pre-processing throughput
//
// The in-benchmark data set is a 1/5-scale version of the paper's
// (200 of 1 000 companies) so the suite completes in minutes; run
// `cmd/ssbench -scale full` for the paper-scale sweep.
package scaleshift_test

import (
	"fmt"
	"sync"
	"testing"

	"scaleshift/internal/bench"
	"scaleshift/internal/core"
	"scaleshift/internal/euclid"
	"scaleshift/internal/geom"
	"scaleshift/internal/rtree"
	"scaleshift/internal/seqscan"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

// benchConfig is the shared 1/5-scale environment.
func benchConfig() bench.Config {
	return bench.DefaultConfig().Scaled(200, 30)
}

var (
	envOnce sync.Once
	env     *bench.Env
	envErr  error
)

func sharedEnv(b *testing.B) *bench.Env {
	b.Helper()
	envOnce.Do(func() {
		env, envErr = bench.NewEnv(benchConfig())
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// epsSweep is the ε sweep exercised by the figure benchmarks, as
// fractions of the mean window SE-norm.
var epsSweep = []float64{0, 0.02, 0.1}

// benchSets pairs the tree experiment sets with their strategies.
var benchSets = []struct {
	name     string
	strategy geom.Strategy
}{
	{"set2-tree-ee", geom.EnteringExiting},
	{"set3-tree-spheres", geom.BoundingSpheres},
}

// BenchmarkFig4CPUTime measures average CPU time per query — the
// y-axis of Figure 4 — for the three method sets across the ε sweep.
func BenchmarkFig4CPUTime(b *testing.B) {
	e := sharedEnv(b)
	for _, frac := range epsSweep {
		eps := frac * e.NormScale
		b.Run(fmt.Sprintf("set1-seqscan/eps=%.2f", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := e.Queries[i%len(e.Queries)]
				if _, err := seqscan.Search(e.Store, q.Values, eps, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, set := range benchSets {
			b.Run(fmt.Sprintf("%s/eps=%.2f", set.name, frac), func(b *testing.B) {
				if err := e.Index.SetStrategy(set.strategy); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					q := e.Queries[i%len(e.Queries)]
					if _, err := e.Index.Search(q.Values, eps, core.UnboundedCosts(), nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig5PageAccesses measures page accesses per query — the
// y-axis of Figure 5 — reported as the custom metrics pages/query
// (data pages, the paper's counting) and total-pages/query (strict:
// index nodes included).
func BenchmarkFig5PageAccesses(b *testing.B) {
	e := sharedEnv(b)
	for _, frac := range epsSweep {
		eps := frac * e.NormScale
		b.Run(fmt.Sprintf("set1-seqscan/eps=%.2f", frac), func(b *testing.B) {
			var pages int
			for i := 0; i < b.N; i++ {
				q := e.Queries[i%len(e.Queries)]
				var pc store.PageCounter
				if _, err := seqscan.Search(e.Store, q.Values, eps, nil, &pc); err != nil {
					b.Fatal(err)
				}
				pages += pc.Distinct()
			}
			b.ReportMetric(float64(pages)/float64(b.N), "pages/query")
			b.ReportMetric(float64(pages)/float64(b.N), "total-pages/query")
		})
		for _, set := range benchSets {
			b.Run(fmt.Sprintf("%s/eps=%.2f", set.name, frac), func(b *testing.B) {
				if err := e.Index.SetStrategy(set.strategy); err != nil {
					b.Fatal(err)
				}
				var stats core.SearchStats
				for i := 0; i < b.N; i++ {
					q := e.Queries[i%len(e.Queries)]
					if _, err := e.Index.Search(q.Values, eps, core.UnboundedCosts(), &stats); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(stats.DataPageAccesses)/float64(b.N), "pages/query")
				b.ReportMetric(float64(stats.PageAccesses())/float64(b.N), "total-pages/query")
			})
		}
	}
}

// ablationEnvs caches per-configuration environments for the ablation
// benchmarks (each needs its own index).
var (
	ablMu   sync.Mutex
	ablEnvs = map[string]*bench.Env{}
)

func ablationEnv(b *testing.B, key string, cfg bench.Config) *bench.Env {
	b.Helper()
	ablMu.Lock()
	defer ablMu.Unlock()
	if e, ok := ablEnvs[key]; ok {
		return e
	}
	e, err := bench.NewEnv(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ablEnvs[key] = e
	return e
}

// BenchmarkAblationSplit compares query time across node-split
// algorithms (DESIGN.md abl-split) on a 1/10-scale index.
func BenchmarkAblationSplit(b *testing.B) {
	for _, split := range []rtree.SplitAlgorithm{rtree.SplitRStar, rtree.SplitQuadratic, rtree.SplitLinear} {
		b.Run(split.String(), func(b *testing.B) {
			cfg := benchConfig().Scaled(100, 20)
			cfg.Split = split
			e := ablationEnv(b, "split/"+split.String(), cfg)
			eps := 0.02 * e.NormScale
			var stats core.SearchStats
			b.ResetTimer() // exclude the one-off environment build
			for i := 0; i < b.N; i++ {
				q := e.Queries[i%len(e.Queries)]
				if _, err := e.Index.Search(q.Values, eps, core.UnboundedCosts(), &stats); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.PageAccesses())/float64(b.N), "total-pages/query")
		})
	}
}

// BenchmarkAblationDims sweeps the DFT coefficient count f_c
// (DESIGN.md abl-dims).
func BenchmarkAblationDims(b *testing.B) {
	for _, fc := range []int{1, 2, 3, 4, 6} {
		b.Run(fmt.Sprintf("fc=%d", fc), func(b *testing.B) {
			cfg := benchConfig().Scaled(100, 20)
			cfg.Coefficients = fc
			e := ablationEnv(b, fmt.Sprintf("dims/%d", fc), cfg)
			eps := 0.02 * e.NormScale
			var stats core.SearchStats
			b.ResetTimer() // exclude the one-off environment build
			for i := 0; i < b.N; i++ {
				q := e.Queries[i%len(e.Queries)]
				if _, err := e.Index.Search(q.Values, eps, core.UnboundedCosts(), &stats); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Candidates)/float64(b.N), "candidates/query")
			b.ReportMetric(float64(stats.FalseAlarms)/float64(b.N), "false-alarms/query")
		})
	}
}

// BenchmarkNearestNeighbors measures the k-NN extension (Corollary 1).
func BenchmarkNearestNeighbors(b *testing.B) {
	e := sharedEnv(b)
	if err := e.Index.SetStrategy(geom.EnteringExiting); err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var stats core.SearchStats
			for i := 0; i < b.N; i++ {
				q := e.Queries[i%len(e.Queries)]
				if _, err := e.Index.NearestNeighbors(q.Values, k, &stats); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Candidates)/float64(b.N), "candidates/query")
			b.ReportMetric(float64(stats.PageAccesses())/float64(b.N), "total-pages/query")
		})
	}
}

// BenchmarkIndexBuild measures pre-processing throughput: windows
// SE-transformed, feature-mapped and inserted per second.
func BenchmarkIndexBuild(b *testing.B) {
	st := store.New()
	scfg := stock.DefaultConfig()
	scfg.Companies = 20
	if _, err := stock.Populate(st, scfg); err != nil {
		b.Fatal(err)
	}
	windows := 20 * (650 - 128 + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := core.NewIndex(st, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := ix.Build(); err != nil {
			b.Fatal(err)
		}
		if ix.WindowCount() != windows {
			b.Fatalf("indexed %d windows, want %d", ix.WindowCount(), windows)
		}
	}
	b.ReportMetric(float64(windows)*float64(b.N)/b.Elapsed().Seconds(), "windows/sec")
}

// BenchmarkBulkBuild compares sequential and parallel STR bulk loading
// at the 1/5-scale database (200 × 650 days, window 128 → 104,600
// windows; the ISSUE's ≥100k-window scale).  The speedup column is the
// point of the comparison: on a multi-core machine parallel/GOMAXPROCS
// should approach the core count; on one core the two are equal.
func BenchmarkBulkBuild(b *testing.B) {
	st := store.New()
	scfg := stock.DefaultConfig()
	scfg.Companies = 200
	if _, err := stock.Populate(st, scfg); err != nil {
		b.Fatal(err)
	}
	windows := 200 * (650 - 128 + 1)
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0}, // 0 = GOMAXPROCS
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix, err := core.NewIndex(st, core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				if err := ix.BuildBulkParallel(tc.workers); err != nil {
					b.Fatal(err)
				}
				if ix.WindowCount() != windows {
					b.Fatalf("indexed %d windows, want %d", ix.WindowCount(), windows)
				}
			}
			b.ReportMetric(float64(windows)*float64(b.N)/b.Elapsed().Seconds(), "windows/sec")
		})
	}
}

// BenchmarkTrailSearch compares the per-window leaf representation
// against sub-trail MBR leaves (DESIGN.md abl-trail) at a tight ε.
func BenchmarkTrailSearch(b *testing.B) {
	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			cfg := benchConfig().Scaled(100, 20)
			cfg.SubtrailLen = k
			e := ablationEnv(b, fmt.Sprintf("trail/%d", k), cfg)
			eps := 0.02 * e.NormScale
			var stats core.SearchStats
			b.ResetTimer() // exclude the one-off environment build
			for i := 0; i < b.N; i++ {
				q := e.Queries[i%len(e.Queries)]
				if _, err := e.Index.Search(q.Values, eps, core.UnboundedCosts(), &stats); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.PageAccesses())/float64(b.N), "total-pages/query")
			b.ReportMetric(float64(e.Index.IndexPageCount()), "index-pages")
		})
	}
}

// BenchmarkEuclideanBaseline measures the prior-art Euclidean index
// ([1,2]) on the same workload for scale comparison — note it answers
// a different (weaker) similarity question.
func BenchmarkEuclideanBaseline(b *testing.B) {
	st := store.New()
	scfg := stock.DefaultConfig()
	scfg.Companies = 100
	if _, err := stock.Populate(st, scfg); err != nil {
		b.Fatal(err)
	}
	opts := euclid.DefaultOptions()
	ix, err := euclid.NewIndex(st, opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		b.Fatal(err)
	}
	q := make([]float64, opts.WindowLen)
	if err := st.Window(10, 100, opts.WindowLen, q, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(q, 5, nil); err != nil {
			b.Fatal(err)
		}
	}
}
