package scaleshift_test

import (
	"bytes"
	"math"
	"testing"

	"scaleshift"
)

// TestPublicAPIEndToEnd drives the whole public surface: build a store,
// index it, search with cost bounds, use k-NN and long queries, and
// round-trip through serialization.
func TestPublicAPIEndToEnd(t *testing.T) {
	st := scaleshift.NewStore()
	wave := make([]float64, 120)
	for i := range wave {
		wave[i] = 10 + 3*math.Sin(float64(i)/5)
	}
	st.AppendSequence("wave", wave)
	flat := make([]float64, 120)
	for i := range flat {
		flat[i] = 25
	}
	st.AppendSequence("flat", flat)

	opts := scaleshift.DefaultOptions()
	opts.WindowLen = 32
	ix, err := scaleshift.NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}

	// A scaled/shifted copy of a window of "wave" must be found there
	// and (with a scale floor) not on "flat".
	q := make([]float64, 32)
	for i := range q {
		q[i] = 5*wave[40+i] - 12
	}
	costs := scaleshift.UnboundedCosts()
	costs.ScaleMin = 0.01
	var stats scaleshift.SearchStats
	matches, err := ix.Search(q, 1e-6, costs, &stats)
	if err != nil {
		t.Fatal(err)
	}
	foundWave := false
	for _, m := range matches {
		if m.Name == "flat" {
			t.Fatalf("flat sequence matched with scale %v", m.Scale)
		}
		if m.Name == "wave" && m.Start == 40 {
			foundWave = true
			if math.Abs(m.Scale-0.2) > 1e-9 || math.Abs(m.Shift-12.0/5) > 1e-6 {
				t.Errorf("recovered a=%v b=%v", m.Scale, m.Shift)
			}
		}
	}
	if !foundWave {
		t.Fatal("source window not found through the public API")
	}
	if stats.PageAccesses() == 0 {
		t.Error("no page accesses recorded")
	}

	// Nearest neighbours.
	nn, err := ix.NearestNeighbors(q, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 || nn[0].Dist > 1e-6 {
		t.Errorf("nn = %+v", nn)
	}

	// Long query (2 pieces).
	lq := make([]float64, 64)
	for i := range lq {
		lq[i] = wave[20+i]
	}
	long, err := ix.SearchLong(lq, 1e-6, scaleshift.UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(long) == 0 {
		t.Error("long query found nothing")
	}

	// Serialization round trip through the public constructors.
	var stBuf, ixBuf bytes.Buffer
	if err := st.WriteBinary(&stBuf); err != nil {
		t.Fatal(err)
	}
	if err := ix.WriteBinary(&ixBuf); err != nil {
		t.Fatal(err)
	}
	st2, err := scaleshift.ReadStoreBinary(&stBuf)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := scaleshift.LoadIndex(&ixBuf, st2)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ix2.Search(q, 1e-6, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(matches) {
		t.Errorf("reloaded index returned %d matches, want %d", len(again), len(matches))
	}
}

// TestPublicAPIVariants exercises the option knobs exposed publicly:
// spheres strategy, Haar reduction, trail leaves, bulk build, CSV.
func TestPublicAPIVariants(t *testing.T) {
	st := scaleshift.NewStore()
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64((i*i)%97) + 1
	}
	st.AppendSequence("s", vals)

	for _, tc := range []struct {
		name   string
		mutate func(*scaleshift.Options)
	}{
		{"spheres", func(o *scaleshift.Options) { o.Strategy = scaleshift.BoundingSpheres }},
		{"haar", func(o *scaleshift.Options) { o.Reduction = scaleshift.ReductionHaar }},
		{"trail", func(o *scaleshift.Options) { o.SubtrailLen = 8 }},
		{"quadratic-split", func(o *scaleshift.Options) { o.Tree.Split = scaleshift.SplitQuadratic }},
		{"xtree", func(o *scaleshift.Options) { o.Tree.SupernodeMaxOverlap = 0.2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := scaleshift.DefaultOptions()
			opts.WindowLen = 32
			tc.mutate(&opts)
			ix, err := scaleshift.NewIndex(st, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ix.Build(); err != nil {
				t.Fatal(err)
			}
			q := make([]float64, 32)
			for i := range q {
				q[i] = 2*vals[50+i] + 3
			}
			res, err := ix.Search(q, 1e-6, scaleshift.UnboundedCosts(), nil)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, m := range res {
				if m.Start == 50 {
					found = true
				}
			}
			if !found {
				t.Fatal("source window not found")
			}
		})
	}

	// CSV loader.
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := scaleshift.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.TotalValues() != st.TotalValues() {
		t.Error("CSV round trip lost values")
	}
	if scaleshift.PageSize != 4096 {
		t.Errorf("PageSize = %d", scaleshift.PageSize)
	}
	if scaleshift.DefaultTreeConfig(6).MaxEntries != 20 {
		t.Error("DefaultTreeConfig wrong")
	}
}

func TestPublicVectorHelpers(t *testing.T) {
	// The paper's Figure 1 example through the public helpers.
	a := []float64{5, 10, 6, 12, 4}
	b := []float64{10, 20, 12, 24, 8}
	dist, scale, shift := scaleshift.MinDist(a, b)
	if dist > 1e-9 || scale != 2 || shift != 0 {
		t.Errorf("MinDist(A, B) = %v, %v, %v", dist, scale, shift)
	}
	if !scaleshift.Similar(a, b, 0.001) {
		t.Error("A ~ B not detected")
	}
	c := scaleshift.ApplyTransform(a, 1, 20)
	if c[0] != 25 || c[4] != 24 {
		t.Errorf("ApplyTransform = %v", c)
	}
	if scaleshift.Similar(a, []float64{1, 0, 1, 0, 9}, 0.001) {
		t.Error("dissimilar pair reported similar")
	}
}
