// Command sstop is a terminal dashboard for a running ssserve: it
// polls /metrics and /debug/events and renders a refreshing frame with
// QPS and latency quantiles per endpoint, overload-protection state,
// ingest backlog, WAL size, checkpoint age, and the slowest recent
// queries from the wide-event stream.
//
// Example:
//
//	ssserve -store prices.store -index prices.index -addr :8080 &
//	sstop -addr http://localhost:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scaleshift/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, "sstop:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sstop", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the ssserve to watch")
	interval := fs.Duration("interval", 2*time.Second, "polling interval")
	frames := fs.Int("frames", 0, "exit after this many frames (0: run until interrupted)")
	once := fs.Bool("once", false, "render a single frame and exit (same as -frames 1, without clearing the screen)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &http.Client{Timeout: 10 * time.Second}
	n, clear := *frames, true
	if *once {
		n, clear = 1, false
	}
	return cliutil.RunDash(ctx, client, *addr, os.Stdout, *interval, n, clear)
}
