package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchSmallFig45(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "out.csv")
	var sb strings.Builder
	err := run([]string{"-experiment", "fig45", "-scale", "small", "-companies", "15", "-queries", "3", "-csv", csv}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 4", "Figure 5", "set1-seqscan", "set2-tree-ee", "set3-tree-spheres", "Detail"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "method,eps_frac") {
		t.Errorf("CSV malformed: %q", string(data[:60]))
	}
}

func TestBenchAblations(t *testing.T) {
	for _, exp := range []string{"ablation-split", "ablation-build"} {
		var sb strings.Builder
		err := run([]string{"-experiment", exp, "-scale", "small", "-companies", "12", "-queries", "3"}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(sb.String(), "Ablation") {
			t.Errorf("%s output missing table:\n%s", exp, sb.String())
		}
	}
}

func TestBenchNN(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "nn", "-scale", "small", "-companies", "12", "-queries", "3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Nearest-neighbour") {
		t.Errorf("nn output:\n%s", sb.String())
	}
}

func TestBenchErrors(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}, nil); err == nil {
		t.Error("bad scale accepted")
	}
	var sb strings.Builder
	if err := run([]string{"-experiment", "bogus", "-scale", "small"}, &sb); err == nil {
		t.Error("bad experiment accepted")
	}
	if err := run([]string{"-build", "osmotic", "-scale", "small"}, &sb); err == nil {
		t.Error("bad build mode accepted")
	}
}

func TestBenchParallelBuildAndProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var sb strings.Builder
	err := run([]string{"-experiment", "nn", "-scale", "small", "-companies", "12", "-queries", "2",
		"-build", "parallel", "-cpuprofile", cpu, "-memprofile", mem}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "building environment (bulk-parallel)") {
		t.Errorf("output missing build mode:\n%s", sb.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s not written: %v", p, err)
		} else if fi.Size() == 0 {
			t.Errorf("profile %s empty", p)
		}
	}
}
