// Command ssbench regenerates the paper's evaluation (§7) and the
// ablation tables listed in DESIGN.md.
//
// Experiments:
//
//	fig45            Figures 4 and 5: CPU time and page accesses vs ε
//	                 for the three method sets (one run feeds both)
//	ablation-split   R* vs Guttman quadratic vs linear node splits
//	ablation-dims    DFT coefficient count f_c sweep
//	ablation-window  extracting-window length n sweep
//	ablation-fanout  node capacity M sweep
//	nn               nearest-neighbour search cost vs k (Corollary 1)
//	planner          query-engine calibration: cost-based path choice
//	                 vs each forced access path over an ε × size grid
//	all              everything above
//
// -scale full reproduces the paper's 1 000 × 650 data set (the index
// build alone takes tens of seconds); -scale medium and small shrink
// it for quick runs.  -build selects the construction method (insert,
// bulk, or parallel), and -cpuprofile/-memprofile write pprof profiles
// of the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"scaleshift/internal/atomicfile"
	"scaleshift/internal/bench"
	"scaleshift/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ssbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "fig45", "fig45 | ablation-split | ablation-dims | ablation-window | ablation-fanout | ablation-build | ablation-reduction | ablation-index | ablation-trail | nn | buffer | shape | recall | planner | perf | ingest | recovery | cluster | all")
	jsonPath := fs.String("json", "", "write the perf experiment's report as JSON to this file")
	enforce := fs.Bool("enforce", false, "fail if the perf report misses the regression gates (kernel >= 1.5x, flat within 10% of pointer throughput)")
	label := fs.String("label", "", "label recorded in the perf JSON report (e.g. a git revision)")
	scale := fs.String("scale", "medium", "full (paper: 1000x650, 100 queries) | medium (200x650, 30) | small (50x330, 10)")
	companies := fs.Int("companies", 0, "override company count")
	queries := fs.Int("queries", 0, "override query count")
	seed := fs.Int64("seed", 1, "data and workload seed")
	csvPath := fs.String("csv", "", "also write the fig45 sweep as CSV to this file")
	subtrail := fs.Int("subtrail", 0, "sub-trail MBR length for the index (0/1 = per-window point entries)")
	buildMode := fs.String("build", "insert", "index construction: insert | bulk | parallel")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	obsFlags := cliutil.AddObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := obsFlags.Setup(); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ssbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is meaningful
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ssbench: memprofile:", err)
			}
		}()
	}

	mode, err := bench.ParseBuildMode(*buildMode)
	if err != nil {
		return err
	}

	cfg := bench.DefaultConfig()
	cfg.Seed = *seed
	switch *scale {
	case "full":
		// Paper scale, as configured by DefaultConfig.
	case "medium":
		cfg = cfg.Scaled(200, 30)
	case "small":
		cfg = cfg.Scaled(50, 10)
		cfg.Days = 330
		cfg.WindowLen = 64
	default:
		return fmt.Errorf("unknown -scale %q", *scale)
	}
	if *companies > 0 {
		cfg.Companies = *companies
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	cfg.SubtrailLen = *subtrail

	runFig45 := *experiment == "fig45" || *experiment == "all"
	runNN := *experiment == "nn" || *experiment == "all"
	runBuffer := *experiment == "buffer" || *experiment == "all"
	runShape := *experiment == "shape" || *experiment == "all"
	needEnv := runFig45 || runNN || runBuffer || runShape

	var env *bench.Env
	if needEnv {
		fmt.Fprintf(stdout, "building environment (%s): %d companies x %d days, window %d, %d queries...\n",
			mode, cfg.Companies, cfg.Days, cfg.WindowLen, cfg.Queries)
		start := time.Now()
		var err error
		env, err = bench.NewEnvBuilt(cfg, mode)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "environment ready in %v: %d values (%d data pages), %d windows indexed (%d index pages, height %d)\n\n",
			time.Since(start).Round(time.Millisecond),
			env.Store.TotalValues(), env.Store.PageCount(),
			env.Index.WindowCount(), env.Index.IndexPageCount(), env.Index.TreeHeight())
	}

	if runFig45 {
		series, err := env.RunAll()
		if err != nil {
			return err
		}
		if err := bench.WriteCPUTable(stdout, series); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if err := bench.WritePagesTable(stdout, series); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if err := bench.WriteTotalPagesTable(stdout, series); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if err := bench.WriteCPUPlot(stdout, series); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if err := bench.WritePagesPlot(stdout, series); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		for _, s := range series[1:] {
			if err := bench.WriteDetailTable(stdout, s); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
		}
		if *csvPath != "" {
			// Atomic replace so downstream plot scripts never read a
			// half-written sweep.
			err := atomicfile.WriteFile(*csvPath, func(w io.Writer) error {
				return bench.WriteCSV(w, series)
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", *csvPath)
		}
	}

	// Ablations rebuild their own (smaller) environments.
	ablCfg := cfg
	if ablCfg.Companies > 200 {
		ablCfg.Companies = 200 // keep rebuild sweeps tractable
	}
	const ablEps = 0.02

	if *experiment == "ablation-split" || *experiment == "all" {
		rows, err := bench.SplitAblation(ablCfg, ablEps)
		if err != nil {
			return err
		}
		if err := bench.WriteAblationTable(stdout, "Ablation: split algorithm (eps/scale = 0.02)", rows); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if *experiment == "ablation-dims" || *experiment == "all" {
		rows, err := bench.DimsAblation(ablCfg, []int{1, 2, 3, 4, 6}, ablEps)
		if err != nil {
			return err
		}
		if err := bench.WriteAblationTable(stdout, "Ablation: DFT coefficients f_c (eps/scale = 0.02)", rows); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if *experiment == "ablation-window" || *experiment == "all" {
		windows := []int{32, 64, 128, 256}
		if ablCfg.Days <= 330 {
			windows = []int{32, 64, 128}
		}
		rows, err := bench.WindowAblation(ablCfg, windows, ablEps)
		if err != nil {
			return err
		}
		if err := bench.WriteAblationTable(stdout, "Ablation: window length n (eps/scale = 0.02)", rows); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if *experiment == "ablation-fanout" || *experiment == "all" {
		rows, err := bench.FanoutAblation(ablCfg, []int{10, 20, 40, 80}, ablEps)
		if err != nil {
			return err
		}
		if err := bench.WriteAblationTable(stdout, "Ablation: node fanout M (eps/scale = 0.02)", rows); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if *experiment == "ablation-trail" || *experiment == "all" {
		rows, err := bench.TrailAblation(ablCfg, []int{1, 8, 32, 128}, ablEps)
		if err != nil {
			return err
		}
		if err := bench.WriteAblationTable(stdout, "Ablation: sub-trail MBR length (eps/scale = 0.02)", rows); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if *experiment == "ablation-index" || *experiment == "all" {
		rows, err := bench.IndexAblation(ablCfg, ablEps)
		if err != nil {
			return err
		}
		if err := bench.WriteAblationTable(stdout, "Ablation: R*-tree vs X-tree (eps/scale = 0.02)", rows); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if *experiment == "ablation-reduction" || *experiment == "all" {
		rows, err := bench.ReductionAblation(ablCfg, ablEps)
		if err != nil {
			return err
		}
		if err := bench.WriteAblationTable(stdout, "Ablation: feature basis DFT vs Haar (eps/scale = 0.02)", rows); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if *experiment == "ablation-build" || *experiment == "all" {
		rows, err := bench.BuildAblation(ablCfg, ablEps)
		if err != nil {
			return err
		}
		if err := bench.WriteAblationTable(stdout, "Ablation: construction method (eps/scale = 0.02)", rows); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if runShape {
		fmt.Fprintln(stdout, "Index directory shape (why bounding spheres fail, cf. [26]):")
		if err := env.Index.WriteIndexStats(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if runBuffer {
		pages := env.Store.PageCount()
		points, err := env.RunBufferSweep([]int{pages / 16, pages / 4, pages / 2, pages, 2 * pages}, ablEps)
		if err != nil {
			return err
		}
		if err := bench.WriteBufferTable(stdout, points, pages); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if *experiment == "recall" || *experiment == "all" {
		points, err := bench.RecallSweep(ablCfg, []float64{0, 0.1, 0.5, 1, 2})
		if err != nil {
			return err
		}
		if err := bench.WriteRecallTable(stdout, points); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if *experiment == "planner" || *experiment == "all" {
		// The planner grid builds one environment per store size, so it
		// ignores the shared env and derives its sizes from the scale.
		sizes := []int{50, 200}
		switch *scale {
		case "full":
			sizes = []int{100, 400, 1000}
		case "small":
			sizes = []int{25, 50}
		}
		if *companies > 0 {
			sizes = []int{*companies}
		}
		points, err := bench.PlannerSweep(ablCfg, sizes, []float64{0.01, 0.05, 0.2, 1, 5})
		if err != nil {
			return err
		}
		if err := bench.WritePlannerTable(stdout, points); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}
	if runNN {
		points, err := env.RunNearestNeighbor([]int{1, 5, 10, 50})
		if err != nil {
			return err
		}
		if err := bench.WriteNNTable(stdout, points, env.Store.PageCount()); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
	}

	if *experiment == "perf" || *experiment == "ingest" || *experiment == "recovery" || *experiment == "cluster" || *experiment == "all" {
		// The ingest, recovery, and cluster rows travel inside the perf
		// report so one JSON artifact carries all of them; -experiment
		// ingest/recovery/cluster skip the (slower) perf sweep and
		// report only their own rows.
		var rep *bench.PerfReport
		if *experiment == "ingest" || *experiment == "recovery" || *experiment == "cluster" {
			rep = &bench.PerfReport{
				Version:   cliutil.Version,
				GoVersion: runtime.Version(),
				Timestamp: time.Now().UTC().Format(time.RFC3339),
				Companies: cfg.Companies, Days: cfg.Days,
				WindowLen: cfg.WindowLen, Queries: cfg.Queries,
			}
		} else {
			rep, err = bench.RunPerf(cfg, stdout)
			if err != nil {
				return err
			}
		}
		if *experiment != "recovery" && *experiment != "cluster" {
			rep.Ingest, err = bench.RunIngest(cfg, stdout)
			if err != nil {
				return err
			}
		}
		if *experiment == "recovery" || *experiment == "all" {
			rep.Recovery, err = bench.RunRecovery(cfg, stdout)
			if err != nil {
				return err
			}
		}
		if *experiment == "cluster" || *experiment == "all" {
			rep.Cluster, err = bench.RunCluster(cfg, 3, stdout)
			if err != nil {
				return err
			}
		}
		rep.Label = *label
		if *jsonPath != "" {
			err := atomicfile.WriteFile(*jsonPath, func(w io.Writer) error {
				return rep.WriteJSON(w)
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", *jsonPath)
		}
		if *enforce {
			switch *experiment {
			case "ingest":
				err = rep.Ingest.Enforce(0.10)
			case "recovery":
				err = rep.Recovery.Enforce()
			case "cluster":
				err = rep.Cluster.Enforce()
			default:
				err = rep.Enforce(1.5, 0.10)
			}
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "perf: regression gates passed")
		}
	}

	if !runFig45 && !runNN && !runBuffer && !runShape && *experiment != "recall" && *experiment != "planner" && *experiment != "perf" && *experiment != "ingest" && *experiment != "recovery" && *experiment != "cluster" && *experiment != "ablation-split" && *experiment != "ablation-dims" &&
		*experiment != "ablation-window" && *experiment != "ablation-fanout" &&
		*experiment != "ablation-build" && *experiment != "ablation-reduction" &&
		*experiment != "ablation-index" && *experiment != "ablation-trail" && *experiment != "all" {
		return fmt.Errorf("unknown -experiment %q", *experiment)
	}
	return obsFlags.Finish()
}
