package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"scaleshift/internal/cluster"
	"scaleshift/internal/core"
	"scaleshift/internal/obs"
	"scaleshift/internal/query"
	"scaleshift/internal/resilience"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

// coordTestCluster is a full scatter-gather topology built from real
// ssserve shard servers — the production shard surface, not the
// in-process ShardNode adapter — plus the single-node oracle over the
// same union store.
type coordTestCluster struct {
	front  *coordServer
	single *server            // oracle over the union store
	shards []*httptest.Server // real ssserve processes' HTTP surface
	man    *cluster.Manifest
	norm   float64 // union norm scale, for eps selection
}

func buildCoordCluster(t *testing.T, shards int) *coordTestCluster {
	t.Helper()
	obs.Enable()
	t.Cleanup(obs.Disable)

	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 12
	cfg.Days = 140
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowLen = 32

	buildServer := func(s *store.Store) *server {
		ix, err := core.NewIndex(s, opts)
		if err == nil {
			err = ix.Build()
		}
		if err != nil {
			t.Fatal(err)
		}
		norm, err := query.SENormScale(s, opts.WindowLen, 50, 3)
		if err != nil {
			t.Fatal(err)
		}
		return newServerFromConfig(t, serverConfig{
			snap:    &snapshot{ix: ix, normScale: norm, how: "built for test", loadedAt: time.Now()},
			tracer:  obs.NewTracer(16),
			logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
			serve:   testServeFlags(),
			breaker: resilience.DefaultBreakerConfig(),
		})
	}

	parts, man, err := cluster.Partition(st, shards)
	if err != nil {
		t.Fatal(err)
	}
	tc := &coordTestCluster{man: man, single: buildServer(st)}
	norm, err := query.SENormScale(st, opts.WindowLen, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	tc.norm = norm

	addrs := make([]string, shards)
	for i, p := range parts {
		if p.NumSequences() == 0 {
			t.Fatalf("shard %d is empty; pick test parameters that populate every shard", i)
		}
		srv := httptest.NewServer(buildServer(p))
		t.Cleanup(srv.Close)
		tc.shards = append(tc.shards, srv)
		addrs[i] = srv.URL
	}

	coord, err := cluster.NewCoordinator(t.Context(), cluster.CoordinatorConfig{
		Manifest:       man,
		Addrs:          addrs,
		Shard:          cluster.ShardConfig{AttemptTimeout: 10 * time.Second},
		ConnectTimeout: 10 * time.Second,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	front, err := newCoordServer(coordConfig{
		coord:  coord,
		tracer: obs.NewTracer(16),
		logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		serve:  testServeFlags(),
		quorum: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.front = front
	return tc
}

func coordGet(t *testing.T, h http.Handler, path string, header http.Header) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

type coordRespJSON struct {
	TraceID  string      `json:"trace_id"`
	Eps      float64     `json:"eps"`
	Total    int         `json:"total_matches"`
	Matches  []matchJSON `json:"matches"`
	Coverage struct {
		Complete bool `json:"complete"`
		OK       int  `json:"ok"`
		Degraded int  `json:"degraded"`
		Failed   int  `json:"failed"`
		Shards   []struct {
			ID      int    `json:"id"`
			State   string `json:"state"`
			TraceID string `json:"trace_id"`
			Error   string `json:"error"`
		} `json:"shards"`
	} `json:"coverage"`
}

// TestCoordinatorMatchesSingleNode drives the same seq/start query
// through the coordinator and the single-node oracle and requires
// bit-identical matches: coverage of the acceptance criterion at the
// HTTP layer, on top of the cluster package's engine-level suite.
func TestCoordinatorMatchesSingleNode(t *testing.T) {
	tc := buildCoordCluster(t, 3)
	eps := 0.08 * tc.norm
	path := fmt.Sprintf("/search?seq=3&start=12&eps=%s&limit=0", strconv.FormatFloat(eps, 'g', -1, 64))

	resp, body := coordGet(t, tc.front, path, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator status %d: %s", resp.StatusCode, body)
	}
	var got coordRespJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decoding: %v\n%s", err, body)
	}
	if !got.Coverage.Complete || got.Coverage.OK != 3 {
		t.Fatalf("coverage %+v, want complete with 3 ok shards", got.Coverage)
	}

	sresp, sbody := get(t, tc.single, path)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("oracle status %d: %s", sresp.StatusCode, sbody)
	}
	var want searchResponse
	if err := json.Unmarshal(sbody, &want); err != nil {
		t.Fatal(err)
	}
	if want.Total == 0 {
		t.Fatal("oracle found nothing; the comparison would be vacuous")
	}
	if got.Total != want.Total {
		t.Fatalf("coordinator found %d matches, single node %d", got.Total, want.Total)
	}
	for i := range want.Matches {
		g, w := got.Matches[i], want.Matches[i]
		if g.Seq != w.Seq || g.Start != w.Start || g.Name != w.Name ||
			math.Float64bits(g.Dist) != math.Float64bits(w.Dist) ||
			math.Float64bits(g.Scale) != math.Float64bits(w.Scale) ||
			math.Float64bits(g.Shift) != math.Float64bits(w.Shift) {
			t.Fatalf("match %d differs:\n  coordinator %+v\n  oracle      %+v", i, g, w)
		}
	}
}

// TestCoordinatorTraceparentPropagation sends a caller traceparent and
// requires the same trace id on the coordinator's response, in every
// covered shard's coverage entry, and retrievable from the shard's own
// /debug/traces — the cross-process drill-down path sstop uses.
func TestCoordinatorTraceparentPropagation(t *testing.T) {
	tc := buildCoordCluster(t, 3)
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	hdr := http.Header{obs.TraceparentHeader: []string{obs.FormatTraceparent(traceID)}}

	resp, body := coordGet(t, tc.front, "/search?seq=0&start=5&eps_frac=0.08", hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader)); got != traceID {
		t.Fatalf("response traceparent %q, want %q", got, traceID)
	}
	var cr coordRespJSON
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.TraceID != traceID {
		t.Fatalf("coordinator trace id %q, want %q", cr.TraceID, traceID)
	}
	for _, sh := range cr.Coverage.Shards {
		if sh.TraceID != traceID {
			t.Fatalf("shard %d adopted trace id %q, want %q", sh.ID, sh.TraceID, traceID)
		}
		// The shard's trace is retrievable from the shard process itself.
		tr, err := http.Get(tc.shards[sh.ID].URL + "/debug/traces?id=" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		tb, _ := io.ReadAll(tr.Body)
		tr.Body.Close()
		if tr.StatusCode != http.StatusOK {
			t.Fatalf("shard %d /debug/traces?id=%s: status %d: %s", sh.ID, traceID, tr.StatusCode, tb)
		}
	}
}

// TestCoordinatorPartialCoverage kills one shard and requires: 206 (not
// a 5xx), accurate per-shard attribution in the coverage block, exact
// matches for the surviving slices, and a "partial" wide event carrying
// the per-shard outcomes.
func TestCoordinatorPartialCoverage(t *testing.T) {
	tc := buildCoordCluster(t, 3)
	const dead = 2
	tc.shards[dead].Close()

	eps := 0.08 * tc.norm
	path := fmt.Sprintf("/search?seq=3&start=12&eps=%s&limit=0", strconv.FormatFloat(eps, 'g', -1, 64))
	resp, body := coordGet(t, tc.front, path, nil)
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", resp.StatusCode, body)
	}
	var got coordRespJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Coverage.Complete || got.Coverage.Failed != 1 || got.Coverage.OK != 2 {
		t.Fatalf("coverage %+v, want failed=1 ok=2", got.Coverage)
	}
	for _, sh := range got.Coverage.Shards {
		if sh.ID == dead {
			if sh.State != "failed" || sh.Error == "" {
				t.Fatalf("dead shard entry %+v, want failed with an error", sh)
			}
		} else if sh.State != "ok" {
			t.Fatalf("healthy shard %d reported %q", sh.ID, sh.State)
		}
	}

	// Surviving matches are exact: the oracle's answer minus the dead
	// shard's sequences.
	_, sbody := get(t, tc.single, path)
	var want searchResponse
	if err := json.Unmarshal(sbody, &want); err != nil {
		t.Fatal(err)
	}
	deadSeqs := make(map[int]bool)
	for _, g := range tc.man.Shards[dead].Seqs {
		deadSeqs[g] = true
	}
	var expect []matchJSON
	for _, m := range want.Matches {
		if !deadSeqs[m.Seq] {
			expect = append(expect, m)
		}
	}
	if len(expect) == len(want.Matches) {
		t.Fatal("no oracle match lives on the dead shard; the check would be vacuous")
	}
	if len(got.Matches) != len(expect) {
		t.Fatalf("partial answer has %d matches, want %d", len(got.Matches), len(expect))
	}
	for i := range expect {
		if got.Matches[i].Seq != expect[i].Seq || got.Matches[i].Start != expect[i].Start ||
			math.Float64bits(got.Matches[i].Dist) != math.Float64bits(expect[i].Dist) {
			t.Fatalf("partial match %d differs: %+v vs %+v", i, got.Matches[i], expect[i])
		}
	}

	// The wide event attributes the same coverage.
	events, _, _ := tc.front.events.Drain(0, 0)
	var found *obs.Event
	for _, e := range events {
		if e.Kind == "search" && e.Status == http.StatusPartialContent {
			found = e
		}
	}
	if found == nil {
		t.Fatal("no partial search wide event emitted")
	}
	if found.Outcome != "partial" || len(found.Shards) != 3 {
		t.Fatalf("event outcome=%q shards=%d, want partial with 3 shards", found.Outcome, len(found.Shards))
	}
	for _, sh := range found.Shards {
		if (sh.ID == dead) != (sh.State == "failed") {
			t.Fatalf("event shard %d state %q mismatched", sh.ID, sh.State)
		}
	}
}

// TestCoordinatorOwnerDownUnavailable: a seq/start query whose owner
// shard is gone cannot be resolved; that is a 503 with Retry-After, not
// a wrong answer and not a 200 with an empty result.
func TestCoordinatorOwnerDownUnavailable(t *testing.T) {
	tc := buildCoordCluster(t, 3)
	const dead = 1
	ownedSeq := tc.man.Shards[dead].Seqs[0]
	tc.shards[dead].Close()

	resp, body := coordGet(t, tc.front,
		fmt.Sprintf("/search?seq=%d&start=0&eps_frac=0.08", ownedSeq), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestCoordinatorReadyzQuorum: readiness follows the configured shard
// quorum, the body names each shard's state, and draining overrides.
func TestCoordinatorReadyzQuorum(t *testing.T) {
	tc := buildCoordCluster(t, 3)
	resp, body := coordGet(t, tc.front, "/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy fleet /readyz = %d: %s", resp.StatusCode, body)
	}
	var rz struct {
		Ready       bool    `json:"ready"`
		Quorum      float64 `json:"quorum"`
		ShardsReady int     `json:"shards_ready"`
		ShardsTotal int     `json:"shards_total"`
		Shards      []struct {
			ID    int    `json:"id"`
			Ready bool   `json:"ready"`
			Error string `json:"error"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &rz); err != nil {
		t.Fatal(err)
	}
	if !rz.Ready || rz.ShardsReady != 3 || rz.ShardsTotal != 3 {
		t.Fatalf("readyz %+v, want 3/3 ready", rz)
	}

	// One shard down: 2/3 >= 0.5, still ready, with the dead shard named.
	tc.shards[0].Close()
	resp, body = coordGet(t, tc.front, "/readyz", nil)
	if err := json.Unmarshal(body, &rz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || rz.ShardsReady != 2 {
		t.Fatalf("2/3 fleet: status %d ready=%d, want 200 with 2 ready: %s", resp.StatusCode, rz.ShardsReady, body)
	}
	for _, sh := range rz.Shards {
		if sh.ID == 0 && (sh.Ready || sh.Error == "") {
			t.Fatalf("dead shard entry %+v, want unready with an error", sh)
		}
	}

	// Two shards down: 1/3 < 0.5, not ready.
	tc.shards[1].Close()
	resp, body = coordGet(t, tc.front, "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("1/3 fleet /readyz = %d, want 503: %s", resp.StatusCode, body)
	}

	// Draining beats quorum.
	tc.front.SetDraining(true)
	resp, _ = coordGet(t, tc.front, "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", resp.StatusCode)
	}
}

// TestCoordinatorRejectsBadQuery: parameter errors are the caller's
// 400, decided before any shard is bothered.
func TestCoordinatorRejectsBadQuery(t *testing.T) {
	tc := buildCoordCluster(t, 2)
	for _, path := range []string{
		"/search",                      // no query at all
		"/search?seq=abc&start=0",      // unparsable
		"/search?seq=0&start=0&len=-4", // bad window
	} {
		resp, body := coordGet(t, tc.front, path, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", path, resp.StatusCode, body)
		}
	}
	// POST batch is explicitly not available in coordinator mode.
	req := httptest.NewRequest(http.MethodPost, "/search", nil)
	rec := httptest.NewRecorder()
	tc.front.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("POST /search = %d, want 501", rec.Code)
	}
}
