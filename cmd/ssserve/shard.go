package main

import (
	"fmt"
	"net/http"
	"strconv"

	"scaleshift/internal/cluster"
	"scaleshift/internal/vec"
)

// Shard-side surface of the cluster protocol: every ssserve instance
// exposes its identity (/shardinfo) and raw windows (/window) so a
// coordinator can validate it against the SSMAN manifest and resolve
// seq/start-addressed queries against the owning shard.  Both routes
// are read-only views of the serving snapshot and work identically on
// a single node (where /shardinfo simply describes the whole store).

// handleShardInfo reports the snapshot's identity in the cluster wire
// shape.  The fingerprint covers the sequence names in store order —
// the same value ssgen recorded in the manifest for this shard's
// slice, so a coordinator comparing the two catches a mis-wired
// address list or a stale artifact before serving a single query.
func (s *server) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	pin := s.snap.Acquire()
	defer pin.Release()
	sn := pin.Value()

	st := sn.ix.Store()
	names := make([]string, st.NumSequences())
	for i := range names {
		names[i] = st.SequenceName(i)
	}
	seqs, values, _ := sn.ix.StoreShape()
	degraded, _ := sn.ix.Degraded()
	s.writeJSON(w, http.StatusOK, cluster.ShardInfoWire{
		Sequences:    seqs,
		Values:       values,
		Windows:      sn.ix.WindowCount(),
		WindowLen:    sn.ix.Options().WindowLen,
		Coefficients: sn.ix.Options().Coefficients,
		NormScale:    sn.normScale,
		Fingerprint:  cluster.Fingerprint(names),
		Degraded:     degraded,
	})
}

// handleWindow serves raw sequence values: GET /window?seq=&start=&len=.
// seq is shard-local (the only kind of id a shard knows).
func (s *server) handleWindow(w http.ResponseWriter, r *http.Request) {
	p := r.URL.Query()
	intParam := func(name string) (int, error) {
		v := p.Get(name)
		if v == "" {
			return 0, fmt.Errorf("parameter %s is required", name)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("parameter %s: %w", name, err)
		}
		return n, nil
	}
	seq, err := intParam("seq")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	start, err := intParam("start")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	length, err := intParam("len")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if length <= 0 || length > maxAppendValues {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("parameter len must be in (0, %d]", maxAppendValues))
		return
	}

	pin := s.snap.Acquire()
	defer pin.Release()
	vals := make(vec.Vector, length)
	if err := pin.Value().ix.QueryWindow(seq, start, length, vals); err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.writeJSON(w, http.StatusOK, cluster.WindowWire{Seq: seq, Start: start, Values: vals})
}
