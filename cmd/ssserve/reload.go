package main

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/query"
	"scaleshift/internal/store"
)

// snapshot is one immutable generation of everything a query needs:
// the store, the index built over it, and the derived eps_frac
// denominator.  Snapshots are published through an RCU cell, so a hot
// reload swaps all three at once while in-flight queries finish on the
// generation they started with.
type snapshot struct {
	ix        queryIndex
	normScale float64
	how       string    // provenance, for logs and /readyz
	loadedAt  time.Time // when this generation was published
}

// reloadConfig says where fresh artifacts come from on SIGHUP or
// POST /admin/reload.  A nil reloadConfig (synthetic or CSV data with
// no artifact paths) disables reload.
type reloadConfig struct {
	// StorePath is the checksummed store artifact (required).
	StorePath string
	// IndexPath is the checksummed index artifact.  Empty means the
	// index is rebuilt from the freshly loaded store instead.
	IndexPath string
	// Opts shape the rebuilt index when IndexPath is empty, and the
	// normScale window length always.
	Opts core.Options
	// Bulk selects STR bulk loading for rebuilds.
	Bulk bool
	// Seed feeds the normScale sample, matching startup.
	Seed int64
	// Open opens an artifact for reading.  Tests and the chaos
	// harness override it to inject faults; nil means os.Open.
	Open func(path string) (io.ReadCloser, error)
}

// reloader serializes artifact reloads.  Loading and validation run
// outside any lock the serving path touches: queries keep flowing on
// the current snapshot until the new one is ready to swap in.
type reloader struct {
	mu  sync.Mutex
	cfg reloadConfig
	// fileOpen selects the zero-copy index path: when the artifact
	// source is the real filesystem (no injected Open), the index is
	// memory-mapped and fully verified before the swap, making reload
	// cost O(store) + O(1) in the index size instead of re-parsing the
	// whole tree.
	fileOpen bool
}

func newReloader(cfg reloadConfig) *reloader {
	rl := &reloader{fileOpen: cfg.Open == nil}
	if cfg.Open == nil {
		cfg.Open = func(path string) (io.ReadCloser, error) { return os.Open(path) }
	}
	rl.cfg = cfg
	return rl
}

// load reads and validates a complete snapshot from the configured
// artifacts.  Every byte is covered by binio's per-section and
// whole-file checksums, so a corrupt, truncated, or version-skewed
// artifact returns a typed error here and the caller keeps the old
// snapshot — rejection is the load failing, not a degraded fallback:
// degrading on *reload* would silently trade an existing healthy index
// for a full-scan server, which is strictly worse than keeping what we
// have.
func (rl *reloader) load() (*snapshot, error) {
	cfg := rl.cfg
	f, err := cfg.Open(cfg.StorePath)
	if err != nil {
		return nil, fmt.Errorf("opening store artifact: %w", err)
	}
	st, err := store.ReadBinary(f)
	closeErr := f.Close()
	if err != nil {
		return nil, fmt.Errorf("store artifact %s rejected: %w", cfg.StorePath, err)
	}
	if closeErr != nil {
		return nil, fmt.Errorf("closing store artifact: %w", closeErr)
	}

	var ix *core.Index
	var how string
	if cfg.IndexPath != "" {
		if rl.fileOpen {
			// Zero-copy: map the artifact and run the deferred integrity
			// check (every CRC + arena validation) here, off the serving
			// path — the swap only publishes verified bytes, and the old
			// snapshot keeps serving while we check.
			ix, err = core.LoadIndexFile(cfg.IndexPath, st)
			if err == nil {
				if verr := ix.VerifyArtifact(); verr != nil {
					ix.Close()
					err = verr
				}
			}
			if err != nil {
				return nil, fmt.Errorf("index artifact %s rejected: %w", cfg.IndexPath, err)
			}
		} else {
			g, err := cfg.Open(cfg.IndexPath)
			if err != nil {
				return nil, fmt.Errorf("opening index artifact: %w", err)
			}
			ix, err = core.LoadIndex(g, st)
			closeErr = g.Close()
			if err != nil {
				return nil, fmt.Errorf("index artifact %s rejected: %w", cfg.IndexPath, err)
			}
			if closeErr != nil {
				return nil, fmt.Errorf("closing index artifact: %w", closeErr)
			}
		}
		how = fmt.Sprintf("reloaded from %s + %s", cfg.StorePath, cfg.IndexPath)
	} else {
		ix, err = core.NewIndex(st, cfg.Opts)
		if err != nil {
			return nil, fmt.Errorf("rebuilding index: %w", err)
		}
		if cfg.Bulk {
			err = ix.BuildBulk()
		} else {
			err = ix.Build()
		}
		if err != nil {
			return nil, fmt.Errorf("rebuilding index: %w", err)
		}
		how = fmt.Sprintf("reloaded from %s, index rebuilt", cfg.StorePath)
	}

	window := ix.Options().WindowLen
	normScale, err := query.SENormScale(st, window, 500, cfg.Seed+2)
	if err != nil {
		return nil, fmt.Errorf("recomputing norm scale: %w", err)
	}
	return &snapshot{ix: ix, normScale: normScale, how: how, loadedAt: time.Now()}, nil
}
