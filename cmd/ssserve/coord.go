package main

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"scaleshift/internal/cliutil"
	"scaleshift/internal/cluster"
	"scaleshift/internal/obs"
	"scaleshift/internal/resilience"
)

// Coordinator mode: this process owns no artifacts — it fans every
// query out to the shard fleet through internal/cluster and serves the
// exact merge, with per-shard fault domains surfaced as an explicit
// coverage block.  The response status is the coverage contract:
//
//	200  every shard answered; the result is bit-identical to a
//	     single node over the union store
//	206  at least one fault domain is down; matches from the healthy
//	     shards are exact and complete for their slices, and the
//	     coverage block names what is missing
//	503  no shard answered (or the fleet is draining)
//
// A partial answer is never silently served as a full one.

// coordConfig assembles a coordinator frontend.
type coordConfig struct {
	coord  *cluster.Coordinator
	tracer *obs.Tracer
	logger *slog.Logger
	serve  cliutil.ServeFlags
	events *obs.EventRing // nil gets a default ring
	quorum float64        // readiness fraction, (0, 1]
}

// coordServer is the coordinator's HTTP frontend.  It reuses the shard
// server's middleware shape — per-route metrics, admission control,
// wide events — but its serving path is the scatter-gather engine
// instead of a local index snapshot.
type coordServer struct {
	coord  *cluster.Coordinator
	adm    *resilience.Admission
	tracer *obs.Tracer
	logger *slog.Logger
	reg    *obs.Registry
	mux    *http.ServeMux
	events *obs.EventRing

	requestTimeout time.Duration
	quorum         float64
	draining       atomic.Bool
	readyGauge     *obs.Gauge
}

func newCoordServer(cfg coordConfig) (*coordServer, error) {
	if err := cfg.serve.Validate(); err != nil {
		return nil, err
	}
	if cfg.quorum <= 0 || cfg.quorum > 1 {
		return nil, fmt.Errorf("ready quorum %g must be in (0, 1]", cfg.quorum)
	}
	s := &coordServer{
		coord:          cfg.coord,
		tracer:         cfg.tracer,
		logger:         cfg.logger,
		reg:            obs.Default,
		mux:            http.NewServeMux(),
		events:         cfg.events,
		requestTimeout: cfg.serve.RequestTimeout,
		quorum:         cfg.quorum,
	}
	if s.events == nil {
		s.events = obs.NewEventRing(256)
	}
	s.adm = resilience.NewAdmission(resilience.AdmissionConfig{
		MaxInflight:  cfg.serve.MaxInflight,
		MaxQueue:     cfg.serve.MaxQueue,
		QueueTimeout: cfg.serve.QueueTimeout,
		Registry:     s.reg,
	})
	s.readyGauge = s.reg.Gauge("scaleshift_ready", "1 when /readyz reports ready.")
	s.readyGauge.Set(1)

	s.handle("search", "/search", s.instrument(s.guard(s.handleSearch)))
	s.handle("healthz", "/healthz", s.handleHealthz)
	s.handle("livez", "/livez", s.handleLivez)
	s.handle("readyz", "/readyz", s.handleReadyz)
	s.handle("metrics", "/metrics", s.handleMetrics)
	s.handle("traces", "/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		serveTraces(s.tracer, s.logger, w, r)
	})
	s.handle("events", "/debug/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(s.events, s.logger, w, r)
	})
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

func (s *coordServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *coordServer) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	writeJSONResp(s.logger, w, status, v)
}

func (s *coordServer) writeError(w http.ResponseWriter, status int, err error) {
	writeErrorResp(s.logger, w, status, err)
}

// handle mirrors server.handle: per-route request/error counters,
// latency histogram, request log line, status capture.
func (s *coordServer) handle(name, pattern string, h http.HandlerFunc) {
	l := obs.Label{Key: "handler", Value: name}
	reqs := s.reg.Counter("scaleshift_http_requests_total", "HTTP requests served, by handler.", l)
	errs := s.reg.Counter("scaleshift_http_errors_total", "HTTP responses with status >= 400, by handler.", l)
	dur := s.reg.DurationHistogram("scaleshift_http_request_duration_seconds", "HTTP request latency, by handler.", l)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		reqs.Inc()
		dur.ObserveDuration(elapsed)
		if sw.status >= 400 {
			errs.Inc()
		}
		s.logger.Info("request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"duration", elapsed, "remote", r.RemoteAddr)
	})
}

// guard applies the per-request timeout and the admission controller.
// The per-shard deadlines nest inside the request timeout, so a fully
// stalled fleet still resolves within this budget.
func (s *coordServer) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		release, err := s.adm.Acquire(ctx)
		if err != nil {
			s.writeOverloaded(w, r, err)
			return
		}
		defer release()
		h(w, r)
	}
}

func (s *coordServer) writeOverloaded(w http.ResponseWriter, r *http.Request, err error) {
	retryAfter := time.Second
	var oe *resilience.OverloadError
	if errors.As(err, &oe) {
		retryAfter = oe.RetryAfter
	}
	if d := eventDraftFrom(r.Context()); d != nil {
		d.outcome = "shed"
	}
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.writeError(w, http.StatusTooManyRequests, err)
}

// instrument emits the coordinator's wide event: the usual envelope
// plus the per-shard coverage, so one event explains which fault
// domains answered and under how many attempts.
func (s *coordServer) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.events.Active() {
			h(w, r)
			return
		}
		draft := &eventDraft{}
		r = r.WithContext(context.WithValue(r.Context(), eventDraftKey{}, draft))
		start := time.Now()
		h(w, r)
		elapsed := time.Since(start)

		status := http.StatusOK
		if sw, ok := w.(*statusWriter); ok {
			status = sw.status
		}
		e := &obs.Event{
			Kind:       "search",
			Status:     status,
			Outcome:    draft.outcome,
			DurationNs: elapsed.Nanoseconds(),
			Query:      draft.query,
			Matches:    draft.matches,
			Stats:      draft.stats,
			Shards:     draft.shards,
		}
		if e.Outcome == "" {
			if status == http.StatusPartialContent {
				e.Outcome = "partial"
			} else {
				e.Outcome = outcomeFromStatus(status)
			}
		}
		if draft.trace != nil {
			snap := draft.trace.Snapshot()
			e.TraceID = snap.ID
			for _, sp := range snap.Spans {
				if sp.Parent == 0 {
					continue
				}
				e.Spans = append(e.Spans, obs.EventSpan{Name: sp.Name, DurationNs: sp.DurationNs})
			}
		} else {
			e.TraceID = s.tracer.MintID()
		}
		s.events.Emit(e, time.Now().UnixNano())
	}
}

func (s *coordServer) handleLivez(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *coordServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"mode":   "coordinator",
		"shards": s.coord.NumShards(),
	})
}

// SetDraining flips the drain flag /readyz reports.
func (s *coordServer) SetDraining(v bool) {
	s.draining.Store(v)
	if v {
		s.readyGauge.Set(0)
	}
}

// handleReadyz is quorum readiness: ready iff the coordinator is not
// draining and at least the configured fraction of shards report ready.
// The body carries every shard's state so an operator (or the soak
// harness) can see exactly which fault domain is dragging readiness.
func (s *coordServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	probes := s.coord.ProbeReady(r.Context())
	readyShards := 0
	for _, p := range probes {
		if p.Ready {
			readyShards++
		}
	}
	frac := float64(readyShards) / float64(len(probes))
	draining := s.draining.Load()
	ready := !draining && frac >= s.quorum
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	if ready {
		s.readyGauge.Set(1)
	} else {
		s.readyGauge.Set(0)
	}
	s.writeJSON(w, status, map[string]interface{}{
		"ready":        ready,
		"draining":     draining,
		"mode":         "coordinator",
		"quorum":       s.quorum,
		"shards_ready": readyShards,
		"shards_total": len(probes),
		"shards":       probes,
	})
}

func (s *coordServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.logger.Error("writing metrics", "err", err)
	}
}

// coverageShardJSON is one shard's entry in the response's coverage
// block.
type coverageShardJSON struct {
	ID        int    `json:"id"`
	Addr      string `json:"addr"`
	State     string `json:"state"` // ok | degraded | failed
	TraceID   string `json:"trace_id,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
	Hedged    bool   `json:"hedged,omitempty"`
	ElapsedNs int64  `json:"elapsed_ns,omitempty"`
	Error     string `json:"error,omitempty"`
}

// coverageJSON states exactly which slice of the data the answer
// covers.
type coverageJSON struct {
	Complete bool                `json:"complete"`
	OK       int                 `json:"ok"`
	Degraded int                 `json:"degraded"`
	Failed   int                 `json:"failed"`
	Shards   []coverageShardJSON `json:"shards"`
}

// coordSearchResponse is the coordinator's /search payload: the shard
// schema plus the coverage block.
type coordSearchResponse struct {
	TraceID   string       `json:"trace_id,omitempty"`
	Query     string       `json:"query"`
	Eps       float64      `json:"eps"`
	ElapsedNs int64        `json:"elapsed_ns"`
	Total     int          `json:"total_matches"`
	Matches   []matchJSON  `json:"matches"`
	Truncated bool         `json:"truncated,omitempty"`
	Stats     statsJSON    `json:"stats"`
	Coverage  coverageJSON `json:"coverage"`
}

// handleSearch is the scatter-gather serving path.
func (s *coordServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.writeError(w, http.StatusNotImplemented,
			fmt.Errorf("batch search is not available in coordinator mode; send GET queries"))
		return
	}

	// Root the trace before touching any shard so the traceparent we
	// propagate carries this trace's id: a healthy shard then roots its
	// own trace under the same id, which is what lets sstop (or a
	// human) jump from the coordinator's wide event straight into any
	// shard's /debug/traces?id=.
	ctx, root := s.tracer.StartTraceWithID(r.Context(), "search",
		obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)))
	traceID := obs.TraceIDFromContext(ctx)
	var downstream string
	if traceID != "" {
		downstream = obs.FormatTraceparent(traceID)
		w.Header().Set(obs.TraceparentHeader, downstream)
	}

	params, describe, knn, limit, err := s.resolveQuery(ctx, r.URL.Query())
	if err != nil {
		root.SetAttr("error", err.Error())
		root.End()
		if d := eventDraftFrom(ctx); d != nil {
			d.trace = root.Trace()
			d.query = describe
		}
		status := http.StatusBadRequest
		var un *unavailableError
		if errors.As(err, &un) {
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		}
		s.writeError(w, status, err)
		return
	}

	start := time.Now()
	g := s.coord.Scatter(ctx, params, knn, downstream)
	elapsed := time.Since(start)

	root.SetInt("matches", int64(len(g.Matches)))
	root.SetInt("shards_failed", int64(g.Failed))
	if g.Failed > 0 {
		root.SetAttr("coverage", "partial")
	}
	root.End()

	cov := coverageJSON{
		Complete: g.Failed == 0,
		OK:       g.OK,
		Degraded: g.Degraded,
		Failed:   g.Failed,
		Shards:   make([]coverageShardJSON, len(g.Coverage)),
	}
	for i, o := range g.Coverage {
		cov.Shards[i] = coverageShardJSON{
			ID: o.ID, Addr: o.Addr, State: o.State, TraceID: o.TraceID,
			Attempts: o.Attempts, Hedged: o.Hedged, ElapsedNs: o.Elapsed.Nanoseconds(),
		}
		if o.Err != nil {
			cov.Shards[i].Error = o.Err.Error()
		}
	}
	s.fillDraft(ctx, root, describe, g, cov.Shards)

	// Status is the coverage contract.  A unanimous shard-side 4xx is
	// the caller's own error; total coverage loss is 503; any missing
	// fault domain makes the (exact, but incomplete) answer a 206.
	switch {
	case g.ClientErr != nil:
		s.writeError(w, g.ClientErr.Status, fmt.Errorf("shards rejected the query: %s", g.ClientErr.Body))
		return
	case g.Failed == s.coord.NumShards():
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"error":    "no shard answered; retry shortly",
			"coverage": cov,
		})
		return
	}
	status := http.StatusOK
	if g.Failed > 0 {
		status = http.StatusPartialContent
	}

	resp := coordSearchResponse{
		TraceID:   traceID,
		Query:     describe,
		Eps:       g.Eps,
		ElapsedNs: elapsed.Nanoseconds(),
		Total:     len(g.Matches),
		Truncated: g.Truncated,
		Coverage:  cov,
		Stats: statsJSON{
			Candidates:     g.Stats.Candidates,
			FalseAlarms:    g.Stats.FalseAlarms,
			CostRejected:   g.Stats.CostRejected,
			IndexNodeReads: g.Stats.IndexNodeReads,
			DataPageReads:  g.Stats.DataPageReads,
			PlanNs:         g.Stats.PlanNs,
			ProbeNs:        g.Stats.ProbeNs,
			VerifyNs:       g.Stats.VerifyNs,
		},
	}
	resp.Matches = make([]matchJSON, 0, len(g.Matches))
	for i, m := range g.Matches {
		if limit > 0 && i >= limit {
			resp.Truncated = true
			break
		}
		resp.Matches = append(resp.Matches, matchJSON{
			Name: m.Name, Seq: m.Seq, Start: m.Start, End: m.End,
			Dist: m.Dist, Scale: m.Scale, Shift: m.Shift,
		})
	}
	s.writeJSON(w, status, resp)
}

// fillDraft records the gather into the request's wide-event draft.
func (s *coordServer) fillDraft(ctx context.Context, root *obs.Span, describe string, g *cluster.GatherResult, shards []coverageShardJSON) {
	d := eventDraftFrom(ctx)
	if d == nil {
		return
	}
	d.trace = root.Trace()
	d.query = describe
	d.matches = len(g.Matches)
	d.stats = &obs.EventStats{
		Candidates:     g.Stats.Candidates,
		FalseAlarms:    g.Stats.FalseAlarms,
		CostRejected:   g.Stats.CostRejected,
		Results:        g.ShardResults,
		IndexNodeReads: g.Stats.IndexNodeReads,
		DataPageReads:  g.Stats.DataPageReads,
		PlanNs:         g.Stats.PlanNs,
		ProbeNs:        g.Stats.ProbeNs,
		VerifyNs:       g.Stats.VerifyNs,
	}
	d.shards = make([]obs.EventShard, len(shards))
	for i, sh := range shards {
		d.shards[i] = obs.EventShard{
			ID: sh.ID, State: sh.State, TraceID: sh.TraceID,
			Attempts: sh.Attempts, Hedged: sh.Hedged,
			DurationNs: sh.ElapsedNs, Error: sh.Error,
		}
	}
}

// unavailableError marks a query that could not even be resolved
// because its owner shard is down (seq/start addressing).
type unavailableError struct{ err error }

func (e *unavailableError) Error() string { return e.err.Error() }
func (e *unavailableError) Unwrap() error { return e.err }

// resolveQuery turns the caller's parameters into the exact parameter
// set to fan out: an explicit values vector and an absolute eps.  Both
// resolutions matter for exactness — every shard must search the same
// query at the same radius, so per-shard eps_frac resolution (each
// against its own norm scale) or per-shard seq addressing (local ids)
// would quietly turn one query into N different ones.
func (s *coordServer) resolveQuery(ctx context.Context, p url.Values) (params url.Values, describe string, knn, limit int, err error) {
	params = url.Values{}
	for k, vs := range p {
		params[k] = vs
	}
	intParam := func(name string, def int) (int, error) {
		v := p.Get(name)
		if v == "" {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("parameter %s: %w", name, err)
		}
		return n, nil
	}
	floatParam := func(name string, def float64) (float64, error) {
		v := p.Get(name)
		if v == "" {
			return def, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("parameter %s: %w", name, err)
		}
		return f, nil
	}

	// Query vector: pass an explicit values= through; resolve seq/start
	// against the owner shard and rewrite.
	if p.Get("values") != "" {
		n := strings.Count(p.Get("values"), ",") + 1
		describe = fmt.Sprintf("%d explicit values", n)
	} else if p.Get("seq") != "" || p.Get("start") != "" {
		seq, err := intParam("seq", 0)
		if err != nil {
			return nil, "", 0, 0, err
		}
		startAt, err := intParam("start", 0)
		if err != nil {
			return nil, "", 0, 0, err
		}
		n, err := intParam("len", s.coord.WindowLen())
		if err != nil {
			return nil, "", 0, 0, err
		}
		if n <= 0 || n > maxAppendValues {
			return nil, "", 0, 0, fmt.Errorf("parameter len must be in (0, %d]", maxAppendValues)
		}
		scale, err := floatParam("scale", 1)
		if err != nil {
			return nil, "", 0, 0, err
		}
		shift, err := floatParam("shift", 0)
		if err != nil {
			return nil, "", 0, 0, err
		}
		vals, werr := s.coord.Window(ctx, seq, startAt, n)
		if werr != nil {
			var down *cluster.ShardDownError
			if errors.As(werr, &down) {
				// The bytes live only on the owner shard; with that fault
				// domain gone the query cannot be resolved at all.
				return nil, "", 0, 0, &unavailableError{err: werr}
			}
			return nil, "", 0, 0, werr
		}
		fields := make([]string, len(vals))
		for i, v := range vals {
			// 'g'/-1 is the shortest representation that parses back to
			// the identical float64, so the resolved window reaches every
			// shard bit-exact.
			fields[i] = strconv.FormatFloat(scale*v+shift, 'g', -1, 64)
		}
		params.Set("values", strings.Join(fields, ","))
		params.Del("seq")
		params.Del("start")
		params.Del("scale")
		params.Del("shift")
		describe = fmt.Sprintf("window %d:%d len %d (a=%g b=%g)", seq, startAt, n, scale, shift)
	} else {
		return nil, "", 0, 0, fmt.Errorf("provide seq=&start= or values=")
	}

	// Epsilon: resolve eps_frac here, against the cluster-wide norm
	// scale, and fan out the absolute radius.
	eps, err := floatParam("eps", -1)
	if err != nil {
		return nil, describe, 0, 0, err
	}
	if eps < 0 {
		frac, err := floatParam("eps_frac", 0.02)
		if err != nil {
			return nil, describe, 0, 0, err
		}
		eps = frac * s.coord.NormScale()
	}
	params.Set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
	params.Del("eps_frac")

	if knn, err = intParam("nn", 0); err != nil {
		return nil, describe, 0, 0, err
	}
	if limit, err = intParam("limit", 100); err != nil {
		return nil, describe, knn, 0, err
	}
	return params, describe, knn, limit, nil
}

// coordRunOpts carries the -coordinator flag set into runCoordinator.
type coordRunOpts struct {
	addr           string
	manifestPath   string
	shardAddrs     []string
	attemptTimeout time.Duration
	retries        int
	backoff        time.Duration
	hedgeAfter     time.Duration
	connectTimeout time.Duration
	quorum         float64
	traceRing      int
	eventRing      int
	eventLog       string
	serve          cliutil.ServeFlags
}

func splitAddrs(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runCoordinator is the -coordinator serving loop: load and verify the
// manifest, validate the live fleet against it, then serve until
// SIGINT/SIGTERM and drain.
func runCoordinator(opts coordRunOpts, logger *slog.Logger, finish func() error) error {
	man, err := cluster.LoadManifest(opts.manifestPath)
	if err != nil {
		return err
	}

	// The signal context is armed before fleet validation so an
	// operator can abort a coordinator stuck waiting for shards.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("validating shard fleet",
		"shards", len(opts.shardAddrs), "manifest", opts.manifestPath)
	coord, err := cluster.NewCoordinator(ctx, cluster.CoordinatorConfig{
		Manifest: man,
		Addrs:    opts.shardAddrs,
		Shard: cluster.ShardConfig{
			AttemptTimeout: opts.attemptTimeout,
			Retries:        opts.retries,
			BackoffBase:    opts.backoff,
			HedgeAfter:     opts.hedgeAfter,
		},
		ConnectTimeout: opts.connectTimeout,
		Logger:         logger,
	})
	if err != nil {
		return err
	}

	tracer := obs.NewTracer(opts.traceRing)
	obs.Default.PublishExpvar("scaleshift")
	events := obs.NewEventRing(opts.eventRing)
	if opts.eventLog != "" {
		f, err := os.OpenFile(opts.eventLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-event-log %s: %w", opts.eventLog, err)
		}
		sink := obs.NewEventLog(f, 1024)
		events.Tee(sink)
		defer func() {
			if err := sink.Close(); err != nil {
				logger.Warn("closing event log", "err", err)
			}
		}()
	}

	srv, err := newCoordServer(coordConfig{
		coord:  coord,
		tracer: tracer,
		logger: logger,
		serve:  opts.serve,
		events: events,
		quorum: opts.quorum,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              opts.addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("coordinator listening", "addr", opts.addr, "shards", coord.NumShards())
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return finish()
}
