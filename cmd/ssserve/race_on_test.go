//go:build race

package main

// raceDetectorEnabled widens the promptness bounds in the disconnect
// tests: the race detector slows instrumented code 5-20x, so the
// 100ms-after-cancel contract is asserted strictly only without it.
const raceDetectorEnabled = true
