package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/obs"
	"scaleshift/internal/resilience"
	"scaleshift/internal/wal"
)

// newIngestTestServer builds a server over a live segmented index with
// append enabled.  The compactor is not started: tests drive Compact
// explicitly so there is no background goroutine to race or leak.
func newIngestTestServer(t *testing.T, log *wal.Log, recs []wal.Record) (*server, *core.SegmentedIndex) {
	t.Helper()
	obs.Enable()
	t.Cleanup(obs.Disable)
	ix, normScale := newTestIndex(t, false)
	seg, err := core.NewSegmentedFromIndex(ix)
	if err != nil {
		t.Fatal(err)
	}
	in, err := newIngestState(seg, log, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newServerFromConfig(t, serverConfig{
		snap:    &snapshot{ix: seg, normScale: normScale, how: "built for test", loadedAt: time.Now()},
		tracer:  obs.NewTracer(16),
		logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		serve:   testServeFlags(),
		breaker: resilience.DefaultBreakerConfig(),
		ingest:  in,
	})
	return s, seg
}

func postAppend(t *testing.T, s *server, body string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/append", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	resp := rec.Result()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, raw
}

func TestAppendEndpoint(t *testing.T) {
	s, seg := newIngestTestServer(t, nil, nil)
	before := seg.WindowCount()

	// Append to an existing sequence by id.
	vals := make([]string, 40)
	for i := range vals {
		vals[i] = fmt.Sprintf("%g", 100+float64(i))
	}
	body := fmt.Sprintf(`{"seq": 0, "values": [%s]}`, strings.Join(vals, ","))
	resp, raw := postAppend(t, s, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append by seq: %d: %s", resp.StatusCode, raw)
	}
	var ack appendResponseJSON
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Seq != 0 || ack.Created || ack.Windows != before+40 {
		t.Fatalf("append ack wrong: %+v (before %d)", ack, before)
	}

	// A brand-new named sequence, then growing it by name.
	resp, raw = postAppend(t, s, `{"name": "LIVE", "values": [1, 2, 3, 4, 5]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append new name: %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Created || ack.SeqLen != 5 {
		t.Fatalf("new-sequence ack wrong: %+v", ack)
	}
	live := ack.Seq
	resp, raw = postAppend(t, s, `{"name": "LIVE", "values": [6, 7]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append existing name: %d: %s", resp.StatusCode, raw)
	}
	ack = appendResponseJSON{}
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Created || ack.Seq != live || ack.SeqLen != 7 {
		t.Fatalf("by-name growth ack wrong: %+v", ack)
	}

	// The appended windows are searchable immediately: query the last
	// window of sequence 0, which now ends in the appended ramp.
	n := seg.Options().WindowLen
	start := seg.Store().SequenceLen(0) - n
	gr, body2 := get(t, s, fmt.Sprintf("/search?seq=0&start=%d&eps=0.001", start))
	if gr.StatusCode != http.StatusOK {
		t.Fatalf("search after append: %d: %s", gr.StatusCode, body2)
	}
	var sr searchResponse
	if err := json.Unmarshal([]byte(body2), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Total < 1 {
		t.Fatalf("appended window not found by self-query: %+v", sr)
	}

	// Malformed requests.
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"seq": 0}`, http.StatusBadRequest},                               // no values
		{`{"values": [1]}`, http.StatusBadRequest},                          // neither seq nor name
		{`{"seq": 0, "name": "X", "values": [1]}`, http.StatusBadRequest},   // both
		{`{"seq": 0, "values": [1, "x"]}`, http.StatusBadRequest},           // bad JSON float
		{`{"seq": 0, "values": [1], "bogus": true}`, http.StatusBadRequest}, // unknown field
		{`{"seq": 99, "values": [1]}`, http.StatusNotFound},                 // no such sequence
	} {
		resp, raw := postAppend(t, s, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("append %s: got %d want %d: %s", tc.body, resp.StatusCode, tc.want, raw)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/append", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /append: got %d want 405", rec.Code)
	}

	// /readyz reports the ingest backlog.
	rr, rbody := get(t, s, "/readyz")
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d: %s", rr.StatusCode, rbody)
	}
	var detail map[string]interface{}
	if err := json.Unmarshal([]byte(rbody), &detail); err != nil {
		t.Fatal(err)
	}
	ing, ok := detail["ingest"].(map[string]interface{})
	if !ok {
		t.Fatalf("readyz missing ingest detail: %s", rbody)
	}
	if ing["delta_windows"].(float64) == 0 {
		t.Fatalf("readyz shows no delta backlog after appends: %v", ing)
	}
	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}
	_, rbody = get(t, s, "/readyz")
	if err := json.Unmarshal([]byte(rbody), &detail); err != nil {
		t.Fatal(err)
	}
	ing = detail["ingest"].(map[string]interface{})
	if ing["delta_windows"].(float64) != 0 || ing["compactions"].(float64) < 1 {
		t.Fatalf("readyz backlog did not drain after compaction: %v", ing)
	}
}

func TestAppendWithoutIngestRejected(t *testing.T) {
	s := newTestServer(t, false)
	resp, raw := postAppend(t, s, `{"seq": 0, "values": [1]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("append on non-ingest server: got %d want 409: %s", resp.StatusCode, raw)
	}
}

// TestAppendWALReplay is the crash-recovery contract end to end: every
// acked append is in the log, and replaying the log over a fresh index
// built from the original (pre-append) store restores the exact search
// surface.
func TestAppendWALReplay(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ingest.wal")
	log, recs, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal replayed %d records", len(recs))
	}
	s, seg := newIngestTestServer(t, log, nil)

	for i := 0; i < 3; i++ {
		vals := make([]string, 20)
		for j := range vals {
			vals[j] = fmt.Sprintf("%g", float64(10*i+j))
		}
		resp, raw := postAppend(t, s, fmt.Sprintf(`{"seq": %d, "values": [%s]}`, i, strings.Join(vals, ",")))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d: %d: %s", i, resp.StatusCode, raw)
		}
	}
	resp, raw := postAppend(t, s, `{"name": "NEW", "values": [3, 1, 4, 1, 5, 9, 2, 6]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append new: %d: %s", resp.StatusCode, raw)
	}
	wantWindows := seg.WindowCount()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" and recover: fresh store and index (the checkpoint), WAL
	// replayed on top.
	log2, recs2, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(recs2) != 4 {
		t.Fatalf("wal replayed %d records, want 4", len(recs2))
	}
	_, seg2 := newIngestTestServer(t, log2, recs2)
	if got := seg2.WindowCount(); got != wantWindows {
		t.Fatalf("recovered index has %d windows, want %d", got, wantWindows)
	}

	// The recovered index answers a query over appended data the same
	// way as the original.
	n := seg.Options().WindowLen
	q := make([]float64, n)
	start := seg.Store().SequenceLen(0) - n
	if err := seg.QueryWindow(0, start, n, q); err != nil {
		t.Fatal(err)
	}
	var st1, st2 core.SearchStats
	m1, err := seg.Search(q, 0.01, core.UnboundedCosts(), &st1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := seg2.Search(q, 0.01, core.UnboundedCosts(), &st2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != len(m2) {
		t.Fatalf("recovered search returned %d matches, original %d", len(m2), len(m1))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("match %d diverged after recovery: %+v vs %+v", i, m1[i], m2[i])
		}
	}
}
