package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scaleshift/internal/cliutil"
	"scaleshift/internal/core"
	"scaleshift/internal/faulty"
	"scaleshift/internal/obs"
	"scaleshift/internal/query"
	"scaleshift/internal/resilience"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

// promptBound is the acceptance bound on the server quiescing after a
// client disconnect (see the core package's cancellation contract).
func promptBound() time.Duration {
	if raceDetectorEnabled {
		return time.Second
	}
	return 100 * time.Millisecond
}

// post drives a POST through the in-process mux.
func post(t *testing.T, s *server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	resp := rec.Result()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// metricValue extracts a (possibly labelled) series value from
// Prometheus text output; 0 when absent.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, series+" "), "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

func TestLivezAlwaysOK(t *testing.T) {
	s := newTestServer(t, false)
	s.SetDraining(true) // draining is a routing signal, not a liveness one
	resp, body := get(t, s, "/livez")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("livez while draining: status %d: %s", resp.StatusCode, body)
	}
}

func TestReadyzDraining(t *testing.T) {
	s := newTestServer(t, false)
	resp, body := get(t, s, "/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh server not ready: %d: %s", resp.StatusCode, body)
	}
	s.SetDraining(true)
	resp, body = get(t, s, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server still ready: %d", resp.StatusCode)
	}
	var d map[string]interface{}
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d["draining"] != true || d["ready"] != false {
		t.Fatalf("readyz detail = %s", body)
	}
	s.SetDraining(false)
	if resp, _ = get(t, s, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatal("undraining did not restore readiness")
	}
}

// TestOverloadShedsWith429 saturates the in-flight set and the queue,
// then asserts the next request is shed immediately with 429 and a
// Retry-After hint — the acceptance behaviour for overload.
func TestOverloadShedsWith429(t *testing.T) {
	cfg := newTestServerConfig(t, false)
	cfg.serve.MaxInflight = 1
	cfg.serve.MaxQueue = 1
	cfg.serve.QueueTimeout = 2 * time.Second
	s := newServerFromConfig(t, cfg)

	// Occupy the only in-flight slot out-of-band.
	release, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Fill the one queue slot with a real request; it parks waiting for
	// the slot we hold.
	queuedDone := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search?seq=0&start=5&eps_frac=0.05", nil))
		queuedDone <- rec.Code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: this one must shed now, not wait.
	start := time.Now()
	resp, body := get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("queue-full shed took %v; must be immediate", elapsed)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], "queue_full") {
		t.Fatalf("shed body = %s", body)
	}

	// Releasing the slot lets the queued request through to a real 200.
	release()
	select {
	case code := <-queuedDone:
		if code != http.StatusOK {
			t.Fatalf("queued request finished %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never completed")
	}
}

// TestQueueTimeoutSheds parks a request behind a held slot longer than
// -queue-timeout and asserts it sheds with 429 rather than waiting
// forever.
func TestQueueTimeoutSheds(t *testing.T) {
	cfg := newTestServerConfig(t, false)
	cfg.serve.MaxInflight = 1
	cfg.serve.MaxQueue = 4
	cfg.serve.QueueTimeout = 30 * time.Millisecond
	s := newServerFromConfig(t, cfg)

	release, err := s.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, body := get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], "queue_timeout") {
		t.Fatalf("shed body = %s", body)
	}
}

// TestBreakerGatesDegradedPath trips the breaker over the degraded
// scan path and asserts subsequent queries are rejected with 503 and
// /readyz reports not-ready until the breaker would half-open.
func TestBreakerGatesDegradedPath(t *testing.T) {
	cfg := newTestServerConfig(t, true)
	cfg.breaker = resilience.BreakerConfig{
		FailureThreshold:  1,
		SlowThreshold:     time.Nanosecond, // every probe classifies slow
		OpenTimeout:       time.Hour,
		HalfOpenSuccesses: 1,
	}
	s := newServerFromConfig(t, cfg)

	// The first query is admitted, runs (exactly), and its slow
	// classification trips the breaker.
	resp, body := get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first degraded query: %d: %s", resp.StatusCode, body)
	}
	if st := s.breaker.State(); st != resilience.BreakerOpen {
		t.Fatalf("breaker %v after slow probe, want open", st)
	}

	resp, body = get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open query: %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	resp, body = get(t, s, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open breaker: %d", resp.StatusCode)
	}
	var d map[string]interface{}
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d["breaker"] != "open" {
		t.Fatalf("readyz detail = %s", body)
	}
}

// TestBreakerIgnoresHealthyPath: queries served by the index never
// touch the breaker, so a healthy server cannot trip it.
func TestBreakerIgnoresHealthyPath(t *testing.T) {
	cfg := newTestServerConfig(t, false)
	cfg.breaker = resilience.BreakerConfig{
		FailureThreshold:  1,
		SlowThreshold:     time.Nanosecond,
		OpenTimeout:       time.Hour,
		HalfOpenSuccesses: 1,
	}
	s := newServerFromConfig(t, cfg)
	for i := 0; i < 3; i++ {
		resp, body := get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy query %d: %d: %s", i, resp.StatusCode, body)
		}
	}
	if st := s.breaker.State(); st != resilience.BreakerClosed {
		t.Fatalf("breaker %v on the healthy path, want closed", st)
	}
}

// TestBreakerIgnoresClientErrors: on a degraded index, requests the
// engine rejects as the client's own mistake (served as 422 — e.g. NN
// search, which a degraded index cannot answer) must not move the
// breaker.  Otherwise a handful of malformed requests would trip it
// open and convert client misuse into 503s for valid scan queries.
func TestBreakerIgnoresClientErrors(t *testing.T) {
	cfg := newTestServerConfig(t, true)
	cfg.breaker = resilience.BreakerConfig{
		FailureThreshold:  2,
		OpenTimeout:       time.Hour,
		HalfOpenSuccesses: 1,
	}
	s := newServerFromConfig(t, cfg)

	// Enough unsupported requests to trip a threshold-2 breaker many
	// times over, were they (wrongly) counted as path failures.
	for i := 0; i < 5; i++ {
		resp, body := get(t, s, "/search?seq=0&start=5&nn=1")
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("NN on degraded index: %d, want 422: %s", resp.StatusCode, body)
		}
	}
	if st := s.breaker.State(); st != resilience.BreakerClosed {
		t.Fatalf("breaker %v after client errors only, want closed", st)
	}

	// The degraded scan path still serves well-formed queries.
	resp, body := get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid scan query after client errors: %d: %s", resp.StatusCode, body)
	}
}

// batchBody builds a POST /search payload of windows read back from
// the store.
func batchBody(t *testing.T, n int, epsFrac float64, path string) []byte {
	t.Helper()
	req := batchRequestJSON{Path: path}
	for i := 0; i < n; i++ {
		seq, start := i%4, 3+i%20
		ef := epsFrac
		req.Queries = append(req.Queries, batchQueryJSON{Seq: &seq, Start: &start, EpsFrac: ef})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestBatchMatchesSequential is the oracle check at the HTTP layer: a
// POST batch must return, per slot, exactly what the equivalent GET
// returns.
func TestBatchMatchesSequential(t *testing.T) {
	s := newTestServer(t, false)
	const n = 8
	resp, body := post(t, s, "/search", batchBody(t, n, 0.05, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br batchResponseJSON
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != n || br.Completed != n {
		t.Fatalf("completed %d/%d results %d", br.Completed, n, len(br.Results))
	}
	for i, item := range br.Results {
		if item.Status != "complete" {
			t.Fatalf("slot %d status %q", i, item.Status)
		}
		seq, start := i%4, 3+i%20
		gresp, gbody := get(t, s, fmt.Sprintf("/search?seq=%d&start=%d&eps_frac=0.05", seq, start))
		if gresp.StatusCode != http.StatusOK {
			t.Fatalf("sequential query %d: %d", i, gresp.StatusCode)
		}
		var sr searchResponse
		if err := json.Unmarshal(gbody, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Total != item.Total {
			t.Fatalf("slot %d: batch %d matches, sequential %d", i, item.Total, sr.Total)
		}
		for j := range item.Matches {
			if item.Matches[j] != sr.Matches[j] {
				t.Fatalf("slot %d match %d differs: batch %+v sequential %+v",
					i, j, item.Matches[j], sr.Matches[j])
			}
		}
	}
}

func TestBatchRequestLimits(t *testing.T) {
	s := newTestServer(t, false)

	// One query over the batch ceiling.
	resp, body := post(t, s, "/search", batchBody(t, maxBatchQueries+1, 0.05, ""))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d, want 413: %s", resp.StatusCode, body)
	}

	// A body over the byte ceiling.
	big := batchRequestJSON{Queries: []batchQueryJSON{{Values: make([]float64, maxRequestBody)}}}
	raw, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) <= maxRequestBody {
		t.Fatalf("test body only %d bytes", len(raw))
	}
	resp, body = post(t, s, "/search", raw)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413: %s", resp.StatusCode, body)
	}

	// Malformed batches are the client's fault.
	for name, payload := range map[string]string{
		"empty":         `{"queries":[]}`,
		"unknown field": `{"queries":[{"seq":0}],"bogus":1}`,
		"bad path":      `{"queries":[{"seq":0}],"path":"warp"}`,
		"no addressing": `{"queries":[{"eps":0.5}]}`,
	} {
		resp, body = post(t, s, "/search", []byte(payload))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, body)
		}
	}
}

// TestClientDisconnectCancelsBatch is the regression test for the
// disconnect contract: dropping the connection mid-batch must cancel
// the fan-out and quiesce the server within the engine's cancellation
// bound.
func TestClientDisconnectCancelsBatch(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)

	// A store big enough that a 256-query scan batch cannot finish
	// before the cancel lands.
	st := store.New()
	scfg := stock.DefaultConfig()
	scfg.Companies = 30
	scfg.Days = 650
	if _, err := stock.Populate(st, scfg); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowLen = 32
	ix, err := core.NewIndex(st, opts)
	if err == nil {
		err = ix.Build()
	}
	if err != nil {
		t.Fatal(err)
	}
	normScale, err := query.SENormScale(st, opts.WindowLen, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serverConfig{
		snap:    &snapshot{ix: ix, normScale: normScale, how: "built for test", loadedAt: time.Now()},
		tracer:  obs.NewTracer(16),
		logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		serve:   testServeFlags(),
		breaker: resilience.DefaultBreakerConfig(),
	}
	s := newServerFromConfig(t, cfg)

	// A real TCP server: client disconnects only propagate into
	// r.Context() over a live connection.
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := batchRequestJSON{Parallelism: 1}
	for i := 0; i < maxBatchQueries; i++ {
		seq, start := i%20, 3+i%500
		body.Queries = append(body.Queries, batchQueryJSON{Seq: &seq, Start: &start, EpsFrac: 0.3})
	}
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/search", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	reqDone := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		reqDone <- err
	}()

	// Wait for the batch to be admitted, then drop the connection.
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.Inflight() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("batch never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	cancelled := time.Now()
	for s.adm.Inflight() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("server did not quiesce after disconnect")
		}
		time.Sleep(time.Millisecond)
	}
	if d := time.Since(cancelled); d > promptBound() {
		t.Errorf("fan-out quiesced %v after disconnect, want <= %v", d, promptBound())
	}
	if err := <-reqDone; err == nil {
		t.Error("client request succeeded despite the cancel (batch too fast for the test to mean anything)")
	}
}

// writeArtifacts builds a small store+index pair and writes both as
// checksummed artifacts, returning the reload configuration that loads
// them back.
func writeArtifacts(t *testing.T, companies, days int) reloadConfig {
	t.Helper()
	dir := t.TempDir()
	st := store.New()
	scfg := stock.DefaultConfig()
	scfg.Companies = companies
	scfg.Days = days
	if _, err := stock.Populate(st, scfg); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowLen = 16
	ix, err := core.NewIndex(st, opts)
	if err == nil {
		err = ix.Build()
	}
	if err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(dir, "prices.store")
	indexPath := filepath.Join(dir, "prices.index")
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(storePath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ix.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(indexPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return reloadConfig{StorePath: storePath, IndexPath: indexPath, Opts: opts, Seed: 7}
}

// newArtifactServer builds a server whose initial snapshot came from
// on-disk artifacts and whose reload path reads them through the given
// injector.
func newArtifactServer(t *testing.T, rcfg reloadConfig, in *faulty.Injector) *server {
	t.Helper()
	obs.Enable()
	t.Cleanup(obs.Disable)
	if in != nil {
		rcfg.Open = func(path string) (io.ReadCloser, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			return struct {
				io.Reader
				io.Closer
			}{in.Reader(f), f}, nil
		}
	}
	snap, err := newReloader(rcfg).load()
	if err != nil {
		t.Fatal(err)
	}
	return newServerFromConfig(t, serverConfig{
		snap:    snap,
		tracer:  obs.NewTracer(16),
		logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		serve:   testServeFlags(),
		breaker: resilience.DefaultBreakerConfig(),
		reload:  &rcfg,
	})
}

func TestAdminReloadSwapsSnapshot(t *testing.T) {
	s := newArtifactServer(t, writeArtifacts(t, 4, 80), nil)

	resp, body := get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-reload search: %d: %s", resp.StatusCode, body)
	}

	resp, body = post(t, s, "/admin/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d: %s", resp.StatusCode, body)
	}
	var rr map[string]interface{}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr["status"] != "reloaded" || rr["generation"] != float64(1) {
		t.Fatalf("reload response = %s", body)
	}

	resp, body = get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload search: %d: %s", resp.StatusCode, body)
	}

	_, metrics := get(t, s, "/metrics")
	if v := metricValue(t, string(metrics), `scaleshift_reloads_total{result="ok"}`); v < 1 {
		t.Fatalf("reloads ok metric = %g", v)
	}

	// GET is not a reload.
	resp, _ = get(t, s, "/admin/reload")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: %d, want 405", resp.StatusCode)
	}
}

func TestAdminReloadUnconfigured(t *testing.T) {
	s := newTestServer(t, false) // synthetic data, no artifacts
	resp, body := post(t, s, "/admin/reload", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("reload without artifacts: %d, want 409: %s", resp.StatusCode, body)
	}
}

// TestReloadRejectsCorruptArtifact corrupts the artifact mid-reload
// and asserts the old snapshot keeps serving identical results, the
// rejection is visible in /readyz and the metrics, and a clean retry
// recovers.
func TestReloadRejectsCorruptArtifact(t *testing.T) {
	var in faulty.Injector
	s := newArtifactServer(t, writeArtifacts(t, 4, 80), &in)

	_, before := get(t, s, "/search?seq=1&start=7&eps_frac=0.1")

	p := faulty.NonePlan()
	p.FlipOffset, p.FlipMask = 100, 0xFF
	in.Set(p)
	resp, body := post(t, s, "/admin/reload", nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt reload: %d, want 422: %s", resp.StatusCode, body)
	}
	if in.Injections() == 0 {
		t.Fatal("fault never fired; the test corrupted nothing")
	}

	// Old snapshot still serving, with bit-identical results (trace
	// ids and timings differ per request; the matches must not).
	resp, after := get(t, s, "/search?seq=1&start=7&eps_frac=0.1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after rejected reload: %d", resp.StatusCode)
	}
	var rBefore, rAfter searchResponse
	if err := json.Unmarshal(before, &rBefore); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(after, &rAfter); err != nil {
		t.Fatal(err)
	}
	if rBefore.Total != rAfter.Total || len(rBefore.Matches) != len(rAfter.Matches) {
		t.Fatalf("results changed after a rejected reload: %d vs %d matches", rBefore.Total, rAfter.Total)
	}
	for i := range rBefore.Matches {
		if rBefore.Matches[i] != rAfter.Matches[i] {
			t.Fatalf("match %d changed after a rejected reload", i)
		}
	}

	// The rejection is reported: /readyz detail and the metric.
	resp, body = get(t, s, "/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after rejected reload: %d (old snapshot serves; server stays ready)", resp.StatusCode)
	}
	var d map[string]interface{}
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d["last_reload_rejected"] == nil {
		t.Fatalf("readyz does not report the rejected reload: %s", body)
	}
	_, metrics := get(t, s, "/metrics")
	if v := metricValue(t, string(metrics), `scaleshift_reloads_total{result="rejected"}`); v < 1 {
		t.Fatalf("reloads rejected metric = %g", v)
	}

	// Disarming the fault recovers on the next reload, clearing the
	// rejection report.
	in.Clear()
	if resp, body = post(t, s, "/admin/reload", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("clean reload after fault: %d: %s", resp.StatusCode, body)
	}
	_, body = get(t, s, "/readyz")
	d = nil // Unmarshal merges into a non-nil map; start fresh
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d["last_reload_rejected"] != nil {
		t.Fatalf("successful reload did not clear the rejection report: %s", body)
	}
}

// TestReloadFlipEveryByte is the exhaustive corruption sweep: flipping
// any single byte of either artifact must make the loader reject the
// snapshot.  Run on a deliberately tiny artifact pair so the sweep
// stays fast.
func TestReloadFlipEveryByte(t *testing.T) {
	rcfg := writeArtifacts(t, 2, 40)
	storeLen := artifactLen(t, rcfg.StorePath)
	indexLen := artifactLen(t, rcfg.IndexPath)

	var in faulty.Injector
	rcfg.Open = func(path string) (io.ReadCloser, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		return struct {
			io.Reader
			io.Closer
		}{in.Reader(f), f}, nil
	}
	rl := newReloader(rcfg)

	// Sanity: unfaulted load succeeds.
	if _, err := rl.load(); err != nil {
		t.Fatalf("clean load: %v", err)
	}

	flip := func(offset int64) {
		p := faulty.NonePlan()
		p.FlipOffset, p.FlipMask = offset, 0xFF
		in.Set(p)
	}
	// The store artifact is opened first, so its offsets are hit on the
	// first wrapped reader of each attempt; past the store's length the
	// flip lands in the index artifact instead (TruncateReader-style
	// offsets are per-reader, so aim per artifact).
	for off := int64(0); off < storeLen; off++ {
		flip(off)
		if _, err := rl.load(); err == nil {
			t.Fatalf("store byte %d: corrupt artifact accepted", off)
		}
	}
	// For index offsets the store must read clean: the injector plan is
	// captured per wrapped reader, so swap to a plan only the second
	// reader of the attempt sees.  Easiest correct arrangement: wrap
	// only the index artifact.
	in.Clear()
	rcfg2 := rcfg
	rcfg2.Open = func(path string) (io.ReadCloser, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		if path != rcfg.IndexPath {
			return f, nil
		}
		return struct {
			io.Reader
			io.Closer
		}{in.Reader(f), f}, nil
	}
	rl2 := newReloader(rcfg2)
	for off := int64(0); off < indexLen; off++ {
		flip(off)
		if _, err := rl2.load(); err == nil {
			t.Fatalf("index byte %d: corrupt artifact accepted", off)
		}
	}
}

func artifactLen(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestServeFlagsRejectedByServer: a misconfigured limit fails server
// construction instead of building a footgun.
func TestServeFlagsRejectedByServer(t *testing.T) {
	cfg := newTestServerConfig(t, false)
	cfg.serve = cliutil.ServeFlags{MaxInflight: 0, MaxQueue: 1, QueueTimeout: time.Second, RequestTimeout: time.Second}
	if _, err := newServer(cfg); err == nil {
		t.Fatal("zero max-inflight accepted")
	}
}
