package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"scaleshift/internal/cliutil"
	"scaleshift/internal/core"
	"scaleshift/internal/obs"
	"scaleshift/internal/query"
	"scaleshift/internal/resilience"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

// testServeFlags are the admission limits test servers run with:
// generous enough that ordinary tests never shed, small enough that
// the overload tests can saturate them deliberately.
func testServeFlags() cliutil.ServeFlags {
	return cliutil.ServeFlags{
		MaxInflight:    16,
		MaxQueue:       32,
		QueueTimeout:   2 * time.Second,
		RequestTimeout: 30 * time.Second,
	}
}

// newTestIndex builds a small synthetic store + index + normScale for
// server tests.
func newTestIndex(t *testing.T, degraded bool) (*core.Index, float64) {
	t.Helper()
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 10
	cfg.Days = 120
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowLen = 32

	var ix *core.Index
	var err error
	if degraded {
		ix, err = core.NewDegradedIndex(st, opts, "forced for test")
	} else {
		ix, err = core.NewIndex(st, opts)
		if err == nil {
			err = ix.Build()
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	normScale, err := query.SENormScale(st, opts.WindowLen, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ix, normScale
}

// newTestServerConfig builds the default test serverConfig over a small
// synthetic store; tests adjust it before calling newServerFromConfig.
func newTestServerConfig(t *testing.T, degraded bool) serverConfig {
	t.Helper()
	ix, normScale := newTestIndex(t, degraded)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	return serverConfig{
		snap:    &snapshot{ix: ix, normScale: normScale, how: "built for test", loadedAt: time.Now()},
		tracer:  obs.NewTracer(16),
		logger:  logger,
		serve:   testServeFlags(),
		breaker: resilience.DefaultBreakerConfig(),
	}
}

func newServerFromConfig(t *testing.T, cfg serverConfig) *server {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newTestServer builds a server over a small synthetic store, with the
// obs layer enabled (as ssserve always runs).
func newTestServer(t *testing.T, degraded bool) *server {
	t.Helper()
	obs.Enable()
	t.Cleanup(obs.Disable)
	return newServerFromConfig(t, newTestServerConfig(t, degraded))
}

func get(t *testing.T, s *server, path string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	resp := rec.Result()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestSearchEndpoint(t *testing.T) {
	s := newTestServer(t, false)
	resp, body := get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, body)
	}
	if sr.Total < 1 {
		t.Fatal("self-query must match itself at least")
	}
	if sr.Plan == nil || sr.Plan.Path == "" {
		t.Fatalf("response missing plan: %s", body)
	}
	if sr.TraceID == "" {
		t.Fatalf("response missing trace_id: %s", body)
	}
	if sr.Stats.Candidates != sr.Stats.FalseAlarms+sr.Stats.CostRejected+sr.Total {
		t.Fatalf("stats ledger unbalanced in response: %+v total=%d", sr.Stats, sr.Total)
	}
}

// TestSearchTraceSpanDurations is the acceptance check: the HTTP
// query's trace must contain plan/probe/verify spans whose durations
// sum to no more than the root span's total.
func TestSearchTraceSpanDurations(t *testing.T) {
	s := newTestServer(t, false)
	resp, body := get(t, s, "/search?seq=1&start=9&eps_frac=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	tresp, tbody := get(t, s, "/debug/traces?id="+sr.TraceID)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", tresp.StatusCode, tbody)
	}
	var trace obs.TraceSnapshot
	if err := json.Unmarshal(tbody, &trace); err != nil {
		t.Fatal(err)
	}
	if trace.ID != sr.TraceID {
		t.Fatalf("trace id %s, want %s", trace.ID, sr.TraceID)
	}
	var stageSum, rootDur int64
	seen := map[string]bool{}
	for _, span := range trace.Spans {
		if span.InFlight {
			t.Fatalf("span %s still in flight after response", span.Name)
		}
		switch span.Name {
		case "plan", "probe", "verify":
			seen[span.Name] = true
			stageSum += span.DurationNs
		case "search":
			rootDur = span.DurationNs
		}
	}
	for _, want := range []string{"plan", "probe", "verify"} {
		if !seen[want] {
			t.Errorf("trace missing %q span", want)
		}
	}
	if rootDur == 0 {
		t.Fatal("trace missing the root search span")
	}
	if stageSum > rootDur {
		t.Fatalf("stage durations sum to %dns, exceeding the root span's %dns", stageSum, rootDur)
	}
	// The per-descent span nests under probe.
	hasDescent := false
	for _, span := range trace.Spans {
		if span.Name == "rtree.descent" || span.Name == "scan" {
			hasDescent = true
		}
	}
	if !hasDescent {
		t.Error("trace has no access-path span under probe")
	}
}

func TestSearchParameterErrors(t *testing.T) {
	s := newTestServer(t, false)
	cases := []string{
		"/search",                               // no query at all
		"/search?seq=abc&start=1",               // bad int
		"/search?seq=0&start=5&eps=x",           // bad float
		"/search?values=1,2,zebra",              // bad values list
		"/search?seq=0&start=99999",             // window out of range
		"/search?seq=0&start=5&nn=3&path=rtree", // nn + forced path
		"/search?seq=0&start=5&path=warp",       // unknown path
	}
	for _, path := range cases {
		resp, body := get(t, s, path)
		if resp.StatusCode < 400 {
			t.Errorf("%s: status %d, want an error", path, resp.StatusCode)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error response not JSON with an error field: %s", path, body)
		}
	}
}

func TestSearchNearestNeighbour(t *testing.T) {
	s := newTestServer(t, false)
	resp, body := get(t, s, "/search?seq=2&start=11&nn=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Total != 5 {
		t.Fatalf("nn=5 returned %d matches", sr.Total)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, false)
	resp, body := get(t, s, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h map[string]interface{}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["degraded"] != false {
		t.Fatalf("healthz = %s", body)
	}
}

func TestHealthzDegraded(t *testing.T) {
	s := newTestServer(t, true)
	resp, body := get(t, s, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded server must still report healthy (results stay exact), got %d", resp.StatusCode)
	}
	var h map[string]interface{}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["degraded"] != true || h["reason"] == "" {
		t.Fatalf("healthz = %s", body)
	}
}

func TestDegradedSearchServesExactResults(t *testing.T) {
	s := newTestServer(t, true)
	resp, body := get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Plan == nil || !sr.Plan.Degraded {
		t.Fatalf("degraded search did not flag the plan: %s", body)
	}
	if sr.Total < 1 {
		t.Fatal("degraded search must still find the self-match")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, false)
	// Drive one query so the search counters exist.
	get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	resp, body := get(t, s, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"scaleshift_searches_total",
		"scaleshift_candidates_total",
		"scaleshift_http_requests_total{handler=\"search\"}",
		"scaleshift_index_windows",
		"scaleshift_search_duration_seconds_bucket",
		"# TYPE scaleshift_searches_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDebugVars(t *testing.T) {
	s := newTestServer(t, false)
	resp, body := get(t, s, "/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var v map[string]interface{}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
}

func TestPprofIndex(t *testing.T) {
	s := newTestServer(t, false)
	resp, body := get(t, s, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}

func TestTracesEndpoint(t *testing.T) {
	s := newTestServer(t, false)
	get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	resp, body := get(t, s, "/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var traces []obs.TraceSnapshot
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("no traces retained after a query")
	}
	resp, _ = get(t, s, "/debug/traces?id=doesnotexist")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id: status %d, want 404", resp.StatusCode)
	}
}

// TestConcurrentQueries hammers /search from several goroutines — the
// registry, tracer ring, and engine must hold up under -race.
func TestConcurrentQueries(t *testing.T) {
	s := newTestServer(t, false)
	_, before := get(t, s, "/metrics")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				path := fmt.Sprintf("/search?seq=%d&start=%d&eps_frac=0.05", w%4, 3+i)
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("%s: status %d", path, rec.Code)
				}
			}
		}(w)
	}
	wg.Wait()
	resp, after := get(t, s, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("metrics unavailable after concurrent queries")
	}
	// obs.Default is process-global, so compare deltas, not absolutes:
	// 4 workers x 8 queries = 32 searches recorded.
	delta := counterValue(t, string(after), "scaleshift_searches_total") -
		counterValue(t, string(before), "scaleshift_searches_total")
	if delta != 32 {
		t.Errorf("searches_total advanced by %d over 32 concurrent queries", delta)
	}
}

// counterValue extracts an unlabelled counter's value from Prometheus
// text output (0 when the metric is not yet registered).
func counterValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseInt(strings.TrimPrefix(line, name+" "), 10, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

func TestSearchLimitTruncates(t *testing.T) {
	s := newTestServer(t, false)
	resp, body := get(t, s, "/search?seq=0&start=5&eps_frac=0.2&limit=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Total > 1 && (len(sr.Matches) != 1 || !sr.Truncated) {
		t.Fatalf("limit=1 returned %d matches, truncated=%v (total %d)",
			len(sr.Matches), sr.Truncated, sr.Total)
	}
}

func TestLongQueryOverHTTP(t *testing.T) {
	s := newTestServer(t, false)
	resp, body := get(t, s, "/search?seq=0&start=5&len=64&eps_frac=0.1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Plan == nil || sr.Plan.Pieces < 2 {
		t.Fatalf("len=2*window must run a multipiece search: %s", body)
	}
}
