// Command ssserve is the HTTP query server: it loads (or builds) a
// checksummed index/store artifact pair and serves scale/shift-
// invariant similarity queries with full observability — Prometheus
// metrics, expvar, pprof, and a ring of recent per-query traces — and
// overload protection: deadline-aware admission control, a circuit
// breaker on the degraded scan path, and hot artifact reload.
//
// Endpoints:
//
//	/search        GET: run a query (see parseSearchRequest for params)
//	               POST: run a JSON batch of queries
//	/healthz       process health plus the degraded-mode flag
//	/livez         liveness only (restart signal)
//	/readyz        readiness (drain/reload/breaker aware; routing signal)
//	/admin/reload  POST: reload artifacts; SIGHUP does the same
//	/admin/checkpoint  POST: flush a durable checkpoint now (-checkpoint)
//	/metrics       Prometheus text exposition
//	/debug/vars    expvar JSON (includes the metrics snapshot)
//	/debug/pprof/  the standard Go profiler endpoints
//	/debug/traces  retained query traces (?id=, ?min_ms=, ?error=1, ?degraded=1)
//	/debug/events  wide per-request events, cursor-drained (?since=, ?max=)
//	/shardinfo     this instance's cluster identity (fingerprint, shape)
//	/window        raw sequence values (cluster-internal query resolution)
//
// Example:
//
//	ssgen -companies 100 -binary -o prices.store
//	ssserve -store prices.store -index prices.index -addr :8080
//	curl 'localhost:8080/search?seq=3&start=25&eps_frac=0.05'
//
// With -coordinator the process serves no artifacts of its own:
// it validates a shard fleet against an SSMAN cluster manifest
// (ssgen -shards) and scatter-gathers every query across it, merging
// exactly and reporting per-shard coverage — see coord.go.
//
//	ssgen -companies 100 -binary -shards 3 -o cluster/
//	ssserve -store cluster/shard0/store.bin -addr :8081 &
//	ssserve -store cluster/shard1/store.bin -addr :8082 &
//	ssserve -store cluster/shard2/store.bin -addr :8083 &
//	ssserve -coordinator -cluster-manifest cluster/cluster.ssman \
//	        -shard-addrs localhost:8081,localhost:8082,localhost:8083 -addr :8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scaleshift/internal/ckpt"
	"scaleshift/internal/cliutil"
	"scaleshift/internal/core"
	"scaleshift/internal/geom"
	"scaleshift/internal/obs"
	"scaleshift/internal/query"
	"scaleshift/internal/resilience"
	"scaleshift/internal/store"
	"scaleshift/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ssserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ssserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dataFile := fs.String("data", "", "CSV database (default: generate synthetic)")
	storeFile := fs.String("store", "", "binary store artifact written by ssgen -binary (overrides -data)")
	companies := fs.Int("companies", 100, "synthetic companies when -data is unset")
	days := fs.Int("days", 650, "synthetic days when -data is unset")
	seed := fs.Int64("seed", 1, "synthetic data seed")
	window := fs.Int("window", 128, "index window length n")
	fc := fs.Int("fc", 3, "DFT coefficients f_c")
	spheres := fs.Bool("spheres", false, "use the bounding-spheres penetration heuristic")
	subtrail := fs.Int("subtrail", 0, "sub-trail MBR length (0/1 = per-window point entries)")
	bulk := fs.Bool("bulk", false, "construct the index with STR bulk loading")
	indexCache := fs.String("index", "", "index artifact path (load when present, save after building)")
	strictCache := fs.Bool("strict", false, "fail instead of degrading to a scan when the index artifact is invalid")
	appendMode := fs.Bool("append", false, "enable live ingest via POST /append (hot reload then requires -checkpoint)")
	walPath := fs.String("wal", "", "write-ahead log path for -append durability (empty: appends are not durable)")
	ckptPath := fs.String("checkpoint", "", "checkpoint artifact base path for -append (bounds recovery to the WAL tail; keeps a .prev fallback)")
	ckptWALBytes := fs.Int64("checkpoint-wal-bytes", 64<<20, "take a checkpoint when the retained WAL exceeds this many bytes (0 disables)")
	ckptInterval := fs.Duration("checkpoint-interval", 0, "take a checkpoint when the last is older than this and appends landed since (0 disables)")
	ckptMaxLag := fs.Duration("checkpoint-max-lag", 0, "/readyz reports not-ready when checkpoint age exceeds this (0: lag never blocks readiness)")
	traceRing := fs.Int("trace-ring", 128, "recent query traces retained for /debug/traces")
	eventRing := fs.Int("event-ring", 256, "wide per-request events retained for /debug/events")
	eventLog := fs.String("event-log", "", "append wide events as JSONL to this file (never blocks serving; drops are counted)")
	coordinator := fs.Bool("coordinator", false, "serve as a scatter-gather coordinator over a shard fleet (requires -shard-addrs and -cluster-manifest)")
	shardAddrs := fs.String("shard-addrs", "", "comma-separated shard base URLs, ordered by manifest shard id")
	clusterManifest := fs.String("cluster-manifest", "", "SSMAN cluster manifest written by ssgen -shards")
	shardTimeout := fs.Duration("shard-timeout", 2*time.Second, "per-attempt deadline for one shard call")
	shardRetries := fs.Int("shard-retries", 1, "retries after a retryable shard failure")
	shardBackoff := fs.Duration("shard-backoff", 25*time.Millisecond, "base backoff between shard retries (exponential, jittered)")
	hedgeAfter := fs.Duration("hedge-after", 0, "launch a hedged shard request after this long (0 disables tail hedging)")
	shardConnect := fs.Duration("shard-connect-timeout", 30*time.Second, "how long startup waits for every shard to validate against the manifest")
	readyQuorum := fs.Float64("ready-quorum", 0.5, "coordinator /readyz reports ready when at least this fraction of shards is ready")
	serveFlags := cliutil.AddServeFlags(fs)
	obsFlags := cliutil.AddObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := serveFlags.Validate(); err != nil {
		return err
	}
	logger, err := obsFlags.Setup()
	if err != nil {
		return err
	}
	// A query server exists to be observed: the metrics layer is always
	// on here, not opt-in as in the batch CLIs.
	obs.Enable()
	cliutil.PublishBuildInfo(obs.Default)
	if *coordinator {
		if *storeFile != "" || *dataFile != "" || *appendMode {
			return fmt.Errorf("-coordinator serves only from shards; -store, -data, and -append do not apply")
		}
		if *shardAddrs == "" || *clusterManifest == "" {
			return fmt.Errorf("-coordinator requires -shard-addrs and -cluster-manifest")
		}
		return runCoordinator(coordRunOpts{
			addr:           *addr,
			manifestPath:   *clusterManifest,
			shardAddrs:     splitAddrs(*shardAddrs),
			attemptTimeout: *shardTimeout,
			retries:        *shardRetries,
			backoff:        *shardBackoff,
			hedgeAfter:     *hedgeAfter,
			connectTimeout: *shardConnect,
			quorum:         *readyQuorum,
			traceRing:      *traceRing,
			eventRing:      *eventRing,
			eventLog:       *eventLog,
			serve:          *serveFlags,
		}, logger, obsFlags.Finish)
	}
	if *ckptPath != "" && !*appendMode {
		return fmt.Errorf("-checkpoint requires -append (there is nothing to checkpoint without live ingest)")
	}

	opts := core.DefaultOptions()
	opts.WindowLen = *window
	opts.Coefficients = *fc
	if *spheres {
		opts.Strategy = geom.BoundingSpheres
	}
	opts.SubtrailLen = *subtrail

	// loadSeed is the cold-start data path: the configured store (or
	// synthetic data) plus a built-or-loaded index artifact.  In append
	// mode with -checkpoint it only runs when no checkpoint recovers —
	// a recovered checkpoint already embeds the grown store.
	loadSeed := func() (*store.Store, *core.Index, string, error) {
		st, err := cliutil.LoadStore(*storeFile, *dataFile, *companies, *days, *seed)
		if err != nil {
			return nil, nil, "", err
		}
		ix, how, err := cliutil.OpenIndex(st, opts, *indexCache, *bulk, *strictCache, logger)
		return st, ix, how, err
	}

	var (
		st      *store.Store
		serving queryIndex
		how     string
		ingest  *ingestState
		ckptr   *checkpointer
	)
	// Hot reload from artifacts needs a durable artifact pair; synthetic
	// and CSV servers run without it.  In append mode the artifact would
	// be stale the moment an append lands, so reload goes through the
	// checkpoint barrier instead (reloadAppend) when -checkpoint is set.
	var reload *reloadConfig
	if !*appendMode {
		var ix *core.Index
		var err error
		st, ix, how, err = loadSeed()
		if err != nil {
			return err
		}
		serving = ix
		logger.Info("index ready",
			"windows", ix.WindowCount(), "pages", ix.IndexPageCount(),
			"height", ix.TreeHeight(), "how", how,
			"sequences", st.NumSequences(), "values", st.TotalValues())
		if *storeFile != "" {
			reload = &reloadConfig{
				StorePath: *storeFile,
				IndexPath: *indexCache,
				Opts:      opts,
				Bulk:      *bulk,
				Seed:      *seed,
			}
		}
	} else {
		// Recovery-first startup: a loadable checkpoint replaces the seed
		// path entirely and bounds the WAL replay below to the tail past
		// its offset.  Every rejected artifact on the way is logged loudly
		// — falling back is designed behavior, doing so silently is not.
		recoveryStart := time.Now()
		var seg *core.SegmentedIndex
		var recovered *ckpt.Result
		if *ckptPath != "" {
			res, warns, err := ckpt.Recover(*ckptPath)
			for _, w := range warns {
				logger.Warn("recovery: " + w.String())
			}
			switch {
			case err == nil:
				recovered = res
				st, seg = res.Store, res.Seg
				how = fmt.Sprintf("recovered from checkpoint %s (generation %d, wal offset %d)",
					res.Source, res.Meta.Generation, res.Meta.WALOffset)
			case errors.Is(err, ckpt.ErrNoCheckpoint) && len(warns) == 0:
				logger.Info("no checkpoint artifact yet; building from seed data", "path", *ckptPath)
			case errors.Is(err, ckpt.ErrNoCheckpoint):
				// Artifacts existed but none loads.  Seed + full WAL replay
				// can still reconstruct everything — validateRecovery below
				// refuses if the WAL no longer reaches back to offset zero.
				logger.Warn("every checkpoint artifact was rejected; attempting full WAL replay from seed data",
					"path", *ckptPath, "rejected", len(warns))
			default:
				return err
			}
		}
		if seg == nil {
			var ix *core.Index
			var err error
			st, ix, how, err = loadSeed()
			if err != nil {
				return err
			}
			if seg, err = core.NewSegmentedFromIndex(ix); err != nil {
				return fmt.Errorf("-append: %w", err)
			}
		}
		var log *wal.Log
		var recs []wal.Record
		var err error
		if *walPath != "" {
			log, recs, err = wal.Open(*walPath)
			if err != nil {
				return fmt.Errorf("-wal %s: %w", *walPath, err)
			}
			defer log.Close()
		}
		if err := validateRecovery(recovered, log); err != nil {
			return err
		}
		var ckptOffset int64
		if recovered != nil {
			ckptOffset = recovered.Meta.WALOffset
		}
		ingest, err = newIngestState(seg, log, recs, ckptOffset)
		if err != nil {
			return fmt.Errorf("replaying %s: %w", *walPath, err)
		}
		seg.StartCompactor()
		serving = seg
		replayed := 0
		for _, rec := range recs {
			if rec.End > ckptOffset {
				replayed++
			}
		}
		ckptGen := int64(0)
		if recovered != nil {
			ckptGen = recovered.Meta.Generation
		}
		obs.Default.Gauge("scaleshift_recovery_replayed_records",
			"WAL records replayed at startup past the recovered checkpoint's offset.").Set(float64(replayed))
		obs.Default.Gauge("scaleshift_recovery_duration_seconds",
			"Wall time of startup recovery: checkpoint load plus WAL replay.").Set(time.Since(recoveryStart).Seconds())
		obs.Default.Gauge("scaleshift_recovery_checkpoint_generation",
			"Generation of the checkpoint startup recovered from (0: seed start).").Set(float64(ckptGen))
		logger.Info("live ingest enabled",
			"wal", *walPath, "replayed", replayed, "how", how,
			"windows", seg.WindowCount(), "generation", seg.Generation())
		if *ckptPath != "" {
			ckptr = newCheckpointer(checkpointConfig{
				Path:     *ckptPath,
				WALBytes: *ckptWALBytes,
				Interval: *ckptInterval,
				MaxLag:   *ckptMaxLag,
				Seed:     *seed,
			}, ingest, logger, recovered)
		}
	}
	normScale, err := query.SENormScale(st, *window, 500, *seed+2)
	if err != nil {
		return err
	}

	tracer := obs.NewTracer(*traceRing)
	obs.Default.PublishExpvar("scaleshift")

	// The wide-event ring always exists; the JSONL tee is opt-in.  The
	// sink closes (flushing its queue) after the HTTP server has fully
	// drained, so no served request's event is lost on shutdown.
	events := obs.NewEventRing(*eventRing)
	if *eventLog != "" {
		f, err := os.OpenFile(*eventLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-event-log %s: %w", *eventLog, err)
		}
		sink := obs.NewEventLog(f, 1024)
		events.Tee(sink)
		defer func() {
			if err := sink.Close(); err != nil {
				logger.Warn("closing event log", "err", err)
			}
			if n := sink.Dropped(); n > 0 {
				logger.Warn("event log shed events under backpressure", "dropped", n)
			}
		}()
	}

	srv, err := newServer(serverConfig{
		snap:    &snapshot{ix: serving, normScale: normScale, how: how, loadedAt: time.Now()},
		tracer:  tracer,
		events:  events,
		logger:  logger,
		serve:   *serveFlags,
		breaker: resilience.DefaultBreakerConfig(),
		reload:  reload,
		ingest:  ingest,
		ckpt:    ckptr,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGHUP triggers a hot artifact reload; a rejected reload keeps the
	// old snapshot serving and only logs.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if reload == nil && ckptr == nil {
				logger.Warn("SIGHUP ignored: no -store artifact or -checkpoint to reload from")
				continue
			}
			if err := srv.Reload(); err != nil {
				logger.Error("SIGHUP reload rejected", "err", err)
			}
		}
	}()

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if ckptr != nil {
		go ckptr.loop(ctx)
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	// Flip /readyz to 503 first so load balancers stop routing here,
	// then let in-flight requests finish.
	srv.SetDraining(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return obsFlags.Finish()
}
