package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaleshift/internal/atomicfile"
	"scaleshift/internal/core"
	"scaleshift/internal/faulty"
	"scaleshift/internal/obs"
	"scaleshift/internal/resilience"
	"scaleshift/internal/wal"
)

// TestSoak is the chaos harness: a live ssserve over real TCP,
// hammered concurrently with queries, batch queries, hot reloads
// (clean and fault-injected), client disconnects, and overload bursts.
// A second ingest-enabled server runs alongside it, hammered with
// concurrent POST /append writers while its compactor churns under
// fault injection.
//
// Invariants asserted:
//
//   - every admitted, well-formed query returns bit-identical results
//     to the unfaulted sequential oracle captured before the chaos —
//     across reloads, rejected reloads, and overload;
//   - overload sheds with 429 + Retry-After, never 5xx;
//   - corrupted artifacts never replace the serving snapshot;
//   - concurrent appends and queries against the ingest server never
//     5xx, even when compactions are made to fail;
//   - compaction swap stalls stay under 1ms at p99;
//   - the run leaks no goroutines.
//
// Duration comes from SOAK_SECONDS (default 2, CI smoke runs 20); a
// metrics snapshot is written to SOAK_METRICS_OUT when set.
func TestSoak(t *testing.T) {
	duration := 2 * time.Second
	if v := os.Getenv("SOAK_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs < 1 {
			t.Fatalf("SOAK_SECONDS = %q", v)
		}
		duration = time.Duration(secs) * time.Second
	}

	baseline := runtime.NumGoroutine()

	var in faulty.Injector
	rcfg := writeArtifacts(t, 10, 200)
	s := newArtifactServerInjected(t, rcfg, &in)
	ts := httptest.NewServer(s)
	client := ts.Client()

	ingestSrv, iseg, hookFaults := newIngestSoakServer(t)
	tsIngest := httptest.NewServer(ingestSrv)
	ingestClient := tsIngest.Client()

	// The unfaulted oracle: sequential answers captured before any
	// chaos starts.  Reloads re-read the same artifacts, so these stay
	// the ground truth for the whole run.
	specs := soakSpecs()
	oracle := make([]searchResponse, len(specs))
	for i, spec := range specs {
		resp, err := client.Get(ts.URL + spec)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("oracle query %s: %d: %s", spec, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &oracle[i]); err != nil {
			t.Fatal(err)
		}
	}

	var (
		oks, sheds, mismatches        atomic.Int64
		server5xx                     atomic.Int64
		cleanReloads, rejectedReloads atomic.Int64
		disconnects                   atomic.Int64
		appendOks, ingestQueryOks     atomic.Int64
		failMu                        sync.Mutex
		failures                      []string
	)
	fail := func(format string, args ...interface{}) {
		failMu.Lock()
		defer failMu.Unlock()
		if len(failures) < 10 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}
	// checkResponse applies the serving invariants to one query
	// response; spec < 0 means "any spec" (overload bursts don't track
	// which).
	checkResponse := func(spec int, status int, header http.Header, body []byte) {
		switch {
		case status == http.StatusOK:
			oks.Add(1)
			if spec < 0 {
				return
			}
			var sr searchResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				fail("spec %d: bad 200 body: %v", spec, err)
				return
			}
			want := oracle[spec]
			if sr.Total != want.Total || len(sr.Matches) != len(want.Matches) {
				mismatches.Add(1)
				fail("spec %d: %d/%d matches, oracle %d/%d", spec, sr.Total, len(sr.Matches), want.Total, len(want.Matches))
				return
			}
			for j := range sr.Matches {
				if sr.Matches[j] != want.Matches[j] {
					mismatches.Add(1)
					fail("spec %d match %d diverged from oracle", spec, j)
					return
				}
			}
		case status == http.StatusTooManyRequests:
			sheds.Add(1)
			if header.Get("Retry-After") == "" {
				fail("429 without Retry-After")
			}
		case status >= 500:
			server5xx.Add(1)
			fail("admitted well-formed query got %d: %s", status, body)
		default:
			fail("unexpected status %d: %s", status, body)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Query workers: sequential GETs checked against the oracle.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(len(specs))
				resp, err := client.Get(ts.URL + specs[i])
				if err != nil {
					fail("query worker: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				checkResponse(i, resp.StatusCode, resp.Header, body)
				if resp.StatusCode == http.StatusTooManyRequests {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(int64(100 + w))
	}

	// Batch worker: POST batches, each slot checked against the oracle.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			picks := make([]int, 4)
			breq := batchRequestJSON{}
			for j := range picks {
				picks[j] = rng.Intn(len(specs))
				seq, start, epsFrac := soakSpecParams(picks[j])
				breq.Queries = append(breq.Queries, batchQueryJSON{Seq: &seq, Start: &start, EpsFrac: epsFrac})
			}
			raw, _ := json.Marshal(breq)
			resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(raw))
			if err != nil {
				fail("batch worker: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var br batchResponseJSON
				if err := json.Unmarshal(body, &br); err != nil {
					fail("batch: bad 200 body: %v", err)
					continue
				}
				for j, item := range br.Results {
					want := oracle[picks[j]]
					if item.Status != "complete" || item.Total != want.Total {
						mismatches.Add(1)
						fail("batch slot %d: status %q total %d, oracle %d", j, item.Status, item.Total, want.Total)
						break
					}
					for m := range item.Matches {
						if item.Matches[m] != want.Matches[m] {
							mismatches.Add(1)
							fail("batch slot %d match %d diverged", j, m)
							break
						}
					}
				}
				oks.Add(1)
			case http.StatusTooManyRequests:
				sheds.Add(1)
				time.Sleep(2 * time.Millisecond)
			default:
				if resp.StatusCode >= 500 {
					server5xx.Add(1)
				}
				fail("batch got %d: %s", resp.StatusCode, body)
			}
		}
	}()

	// Reload worker: alternate clean reloads (must swap) and
	// fault-injected ones (must be rejected, old snapshot serving).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(30 * time.Millisecond):
			}
			faultThis := i%3 == 2
			if faultThis {
				p := faulty.NonePlan()
				p.FlipOffset, p.FlipMask = int64(rng.Intn(512)), 0xFF
				in.Set(p)
			}
			resp, err := client.Post(ts.URL+"/admin/reload", "application/json", nil)
			if faultThis {
				in.Clear()
			}
			if err != nil {
				fail("reload worker: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case faultThis && resp.StatusCode == http.StatusUnprocessableEntity:
				rejectedReloads.Add(1)
			case !faultThis && resp.StatusCode == http.StatusOK:
				cleanReloads.Add(1)
			default:
				fail("reload (fault=%v) got %d: %s", faultThis, resp.StatusCode, body)
			}
		}
	}()

	// Disconnect worker: batches whose client hangs up mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(13))
		for {
			select {
			case <-stop:
				return
			default:
			}
			breq := batchRequestJSON{Parallelism: 1}
			for j := 0; j < 64; j++ {
				seq, start := j%10, 3+j%150
				breq.Queries = append(breq.Queries, batchQueryJSON{Seq: &seq, Start: &start, EpsFrac: 0.2})
			}
			raw, _ := json.Marshal(breq)
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+rng.Intn(10))*time.Millisecond)
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/search", bytes.NewReader(raw))
			resp, err := client.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			cancel()
			disconnects.Add(1)
		}
	}()

	// Ingest writer actors: concurrent POST /append against the live
	// segmented index — growing existing sequences and creating new
	// uniquely-named ones — while the background compactor churns with
	// injected faults.  Admitted appends must ack (200), shed with 429,
	// and never 5xx: a failed compaction keeps the delta serving.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			created := 0
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var breq appendRequestJSON
				switch {
				case i%20 == 19:
					// A brand-new sequence, unique across writers.
					breq.Name = fmt.Sprintf("w%d-s%d", w, created)
					created++
				case created > 0 && i%5 == 4:
					// Grow one of this writer's own sequences by name.
					breq.Name = fmt.Sprintf("w%d-s%d", w, rng.Intn(created))
				default:
					// Grow one of the base sequences by id.
					seq := rng.Intn(10)
					breq.Seq = &seq
				}
				nvals := 8 + rng.Intn(25)
				for j := 0; j < nvals; j++ {
					breq.Values = append(breq.Values, 100+rng.Float64()*10)
				}
				raw, _ := json.Marshal(breq)
				resp, err := ingestClient.Post(tsIngest.URL+"/append", "application/json", bytes.NewReader(raw))
				if err != nil {
					fail("writer %d: %v", w, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					appendOks.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					sheds.Add(1)
					time.Sleep(2 * time.Millisecond)
				case resp.StatusCode >= 500:
					server5xx.Add(1)
					fail("append got %d: %s", resp.StatusCode, body)
				default:
					fail("append got %d: %s", resp.StatusCode, body)
				}
			}
		}(w)
	}

	// Ingest query worker: searches racing the appends above.  Results
	// change as data lands, so only the serving invariants are checked:
	// 200 or shed, never 5xx.  /readyz (which renders the compaction
	// backlog) is polled on the same cadence.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(17))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			url := tsIngest.URL + fmt.Sprintf("/search?seq=%d&start=%d&eps_frac=0.1", rng.Intn(10), 5+rng.Intn(80))
			if i%8 == 7 {
				url = tsIngest.URL + "/readyz"
			}
			resp, err := ingestClient.Get(url)
			if err != nil {
				fail("ingest query worker: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				ingestQueryOks.Add(1)
			case resp.StatusCode == http.StatusTooManyRequests:
				sheds.Add(1)
				time.Sleep(2 * time.Millisecond)
			case resp.StatusCode >= 500:
				server5xx.Add(1)
				fail("ingest query got %d: %s", resp.StatusCode, body)
			default:
				fail("ingest query got %d: %s", resp.StatusCode, body)
			}
		}
	}()

	// Overload worker: bursts of slow sequential scan batches, well
	// past max-inflight + max-queue, arriving together.  The admitted
	// ones occupy slots for many milliseconds, so the extras must shed
	// with 429 — and never 5xx.
	wg.Add(1)
	go func() {
		defer wg.Done()
		slow := batchRequestJSON{Path: "scan", Parallelism: 1}
		for j := 0; j < 32; j++ {
			seq, start := j%10, 5+j%150
			slow.Queries = append(slow.Queries, batchQueryJSON{Seq: &seq, Start: &start, EpsFrac: 0.3})
		}
		raw, _ := json.Marshal(slow)
		for {
			select {
			case <-stop:
				return
			case <-time.After(150 * time.Millisecond):
			}
			var burst sync.WaitGroup
			for b := 0; b < 16; b++ {
				burst.Add(1)
				go func() {
					defer burst.Done()
					resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(raw))
					if err != nil {
						fail("burst: %v", err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					checkResponse(-1, resp.StatusCode, resp.Header, body)
				}()
			}
			burst.Wait()
		}
	}()

	// Wide-event integrity poller: drain /debug/events from both
	// servers throughout the run, validating every event, then
	// reconcile the drain/miss accounting against the ring's emit
	// counter once traffic stops.  Cursor-based draining means each
	// poll's missed count covers a disjoint seq range, so the totals
	// must tie out exactly: drained + missed == emitted.
	pollEvents := func(base string, c *http.Client, cursor, drained, missed *uint64) (emitted uint64, ok bool) {
		resp, err := c.Get(fmt.Sprintf("%s/debug/events?since=%d&max=512", base, *cursor))
		if err != nil {
			fail("event poll: %v", err)
			return 0, false
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("event poll status %d: %s", resp.StatusCode, body)
			return 0, false
		}
		var page eventsPage
		if err := json.Unmarshal(body, &page); err != nil {
			fail("event poll body: %v", err)
			return 0, false
		}
		for _, e := range page.Events {
			if e.Kind == "" || e.TraceID == "" {
				fail("wide event missing identity: kind=%q trace=%q", e.Kind, e.TraceID)
			}
			switch e.Outcome {
			case "ok", "shed", "breaker_open", "client_error", "error":
			default:
				fail("wide event with unknown outcome %q", e.Outcome)
			}
			if (e.Kind == "search" || e.Kind == "search_batch") && e.Outcome == "ok" {
				if e.Stats == nil {
					fail("ok %s event without a stats ledger", e.Kind)
				} else if err := statsFromEvent(e).CheckInvariants(); err != nil {
					fail("wide event stats violate invariants: %v", err)
				}
			}
		}
		*drained += uint64(len(page.Events))
		*missed += page.Missed
		*cursor = page.Next
		return page.Emitted, true
	}
	var (
		evCursor, evDrained, evMissed uint64
		ivCursor, ivDrained, ivMissed uint64
	)
	evStop := make(chan struct{})
	var evWG sync.WaitGroup
	evWG.Add(1)
	go func() {
		defer evWG.Done()
		for {
			select {
			case <-evStop:
				return
			case <-time.After(15 * time.Millisecond):
			}
			pollEvents(ts.URL, client, &evCursor, &evDrained, &evMissed)
			pollEvents(tsIngest.URL, ingestClient, &ivCursor, &ivDrained, &ivMissed)
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	// Traffic is quiesced: drain each ring to its head and tie out the
	// books.
	close(evStop)
	evWG.Wait()
	drainAll := func(name, base string, c *http.Client, cursor, drained, missed *uint64) {
		for i := 0; i < 1000; i++ {
			emitted, ok := pollEvents(base, c, cursor, drained, missed)
			if !ok {
				return
			}
			if *cursor >= emitted {
				if *drained+*missed != emitted {
					t.Errorf("%s wide-event accounting broken: drained %d + missed %d != emitted %d",
						name, *drained, *missed, emitted)
				}
				if *drained == 0 {
					t.Errorf("%s emitted no wide events; the soak exercised nothing", name)
				}
				return
			}
		}
		t.Errorf("%s: event drain did not converge", name)
	}
	drainAll("query server", ts.URL, client, &evCursor, &evDrained, &evMissed)
	drainAll("ingest server", tsIngest.URL, ingestClient, &ivCursor, &ivDrained, &ivMissed)
	t.Logf("wide events: query server drained %d missed %d; ingest server drained %d missed %d",
		evDrained, evMissed, ivDrained, ivMissed)

	ts.Close()
	tsIngest.Close()
	client.CloseIdleConnections()
	ingestClient.CloseIdleConnections()

	// The run must have actually exercised every chaos dimension.
	t.Logf("soak: %v, %d ok, %d shed, %d clean reloads, %d rejected reloads, %d disconnects, %d appends, %d ingest queries",
		duration, oks.Load(), sheds.Load(), cleanReloads.Load(), rejectedReloads.Load(), disconnects.Load(),
		appendOks.Load(), ingestQueryOks.Load())
	for _, f := range failures {
		t.Error(f)
	}
	if mismatches.Load() > 0 {
		t.Errorf("%d responses diverged from the oracle", mismatches.Load())
	}
	if server5xx.Load() > 0 {
		t.Errorf("%d admitted well-formed requests got 5xx", server5xx.Load())
	}
	if oks.Load() == 0 {
		t.Error("no successful queries; the soak exercised nothing")
	}
	if cleanReloads.Load() < 3 {
		t.Errorf("only %d successful hot reloads, want >= 3", cleanReloads.Load())
	}
	if rejectedReloads.Load() < 1 {
		t.Error("no fault-injected reload was exercised")
	}
	if sheds.Load() < 1 {
		t.Error("overload never shed; admission control was not exercised")
	}
	if disconnects.Load() < 1 {
		t.Error("no client disconnects were exercised")
	}
	if appendOks.Load() < 1 {
		t.Error("no appends were acked; the ingest soak exercised nothing")
	}
	if ingestQueryOks.Load() < 1 {
		t.Error("no queries succeeded against the ingest server")
	}

	// Quiesce the ingest side: clear the fault hook, run one final
	// clean compaction, and check the steady-state invariants.
	iseg.SetCompactHook(nil)
	if err := iseg.Compact(); err != nil {
		t.Errorf("final compaction: %v", err)
	}
	b := iseg.Backlog()
	t.Logf("ingest: %d compactions (%d hook faults), %d frozen segs / %d windows, pause p99 %v max %v",
		b.Compactions, hookFaults.Load(), b.Frozen, b.FrozenWindows, b.CompactPauseP99, b.CompactPauseMax)
	if b.Compactions < 1 {
		t.Error("no compaction completed during the soak")
	}
	if hookFaults.Load() < 1 {
		t.Error("no fault-injected compaction was exercised")
	}
	if b.DeltaWindows != 0 {
		t.Errorf("%d delta windows remain after the final compaction", b.DeltaWindows)
	}
	if b.CompactPauseP99 >= time.Millisecond {
		t.Errorf("compaction swap stall p99 %v, want < 1ms", b.CompactPauseP99)
	}
	if err := iseg.Close(); err != nil {
		t.Errorf("closing segmented index: %v", err)
	}

	// Goroutine-leak assertion: everything the run spawned (handlers,
	// batch fan-outs, drain watchers) must wind down.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			var buf bytes.Buffer
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if out := os.Getenv("SOAK_METRICS_OUT"); out != "" {
		if err := atomicfile.WriteFile(out, obs.Default.WriteJSON); err != nil {
			t.Fatalf("writing soak metrics snapshot: %v", err)
		}
		t.Logf("metrics snapshot written to %s", out)
	}
}

// soakSpecs is the fixed query mix; soakSpecParams mirrors it for the
// batch worker.
func soakSpecs() []string {
	var specs []string
	for i := 0; i < 16; i++ {
		seq, start, epsFrac := soakSpecParams(i)
		specs = append(specs, fmt.Sprintf("/search?seq=%d&start=%d&eps_frac=%g", seq, start, epsFrac))
	}
	return specs
}

func soakSpecParams(i int) (seq, start int, epsFrac float64) {
	fracs := []float64{0.02, 0.05, 0.1, 0.2}
	return i % 10, 5 + (i*11)%150, fracs[i%len(fracs)]
}

// newIngestSoakServer builds the live-append server the soak hammers:
// a segmented index with a small compaction threshold (so the
// background compactor churns constantly), a WAL on disk (so every ack
// pays the real fsync), and a compaction hook that fails every fourth
// run to prove a failed compaction never disturbs serving.
func newIngestSoakServer(t *testing.T) (*server, *core.SegmentedIndex, *atomic.Int64) {
	t.Helper()
	ix, normScale := newTestIndex(t, false)
	seg, err := core.NewSegmentedFromIndex(ix)
	if err != nil {
		t.Fatal(err)
	}
	seg.CompactThreshold = 64
	seg.MaxFrozen = 3
	hookFaults := &atomic.Int64{}
	var hookCalls atomic.Int64
	seg.SetCompactHook(func() error {
		if hookCalls.Add(1)%4 == 0 {
			hookFaults.Add(1)
			return fmt.Errorf("injected compaction fault")
		}
		return nil
	})
	log, recs, err := wal.Open(filepath.Join(t.TempDir(), "soak.wal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	ing, err := newIngestState(seg, log, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	seg.StartCompactor()
	srv := newServerFromConfig(t, serverConfig{
		snap:    &snapshot{ix: seg, normScale: normScale, how: "built for soak", loadedAt: time.Now()},
		tracer:  obs.NewTracer(16),
		logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		serve:   testServeFlags(),
		breaker: resilience.DefaultBreakerConfig(),
		ingest:  ing,
	})
	return srv, seg, hookFaults
}

// newArtifactServerInjected is newArtifactServer with soak-grade
// admission limits: small enough that bursts shed, large enough that
// the steady-state workers mostly get through.
func newArtifactServerInjected(t *testing.T, rcfg reloadConfig, in *faulty.Injector) *server {
	t.Helper()
	obs.Enable()
	t.Cleanup(obs.Disable)
	rcfg.Open = func(path string) (io.ReadCloser, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		return struct {
			io.Reader
			io.Closer
		}{in.Reader(f), f}, nil
	}
	snap, err := newReloader(rcfg).load()
	if err != nil {
		t.Fatal(err)
	}
	serve := testServeFlags()
	serve.MaxInflight = 4
	serve.MaxQueue = 4
	serve.QueueTimeout = 250 * time.Millisecond
	return newServerFromConfig(t, serverConfig{
		snap:    snap,
		tracer:  obs.NewTracer(16),
		logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		serve:   serve,
		breaker: resilience.DefaultBreakerConfig(),
		reload:  &rcfg,
	})
}

// soakVal is the deterministic value stream for the recovery soak:
// value j of sequence seq, the same across every restart, so recovered
// state is checkable byte for byte.
func soakVal(seq, j int) float64 {
	return float64(100*seq) + 10*math.Sin(float64(j)/5)
}

// verifyRecoveredSoak asserts the recovered ingest state holds exactly
// the acked appends: per-sequence lengths match seed + acked (loss
// undershoots, double-apply overshoots — both fail), and the tail
// values are bit-identical to the deterministic stream.
func verifyRecoveredSoak(t *testing.T, in *ingestState, seedLen, acked map[int]int, round int) {
	t.Helper()
	seg := in.index()
	for seq, n := range acked {
		want := seedLen[seq] + n
		got := seg.Store().SequenceLen(seq)
		if got != want {
			t.Fatalf("round %d: sequence %d has %d values after recovery, want %d (seed %d + acked %d)",
				round, seq, got, want, seedLen[seq], n)
		}
		if n < 8 {
			continue
		}
		tail := make([]float64, 8)
		if err := seg.QueryWindow(seq, want-8, 8, tail); err != nil {
			t.Fatal(err)
		}
		for i, v := range tail {
			if exp := soakVal(seq, n-8+i); v != exp {
				t.Fatalf("round %d: sequence %d acked value %d diverged after recovery: %g, want %g",
					round, seq, n-8+i, v, exp)
			}
		}
	}
}

// TestSoakRecovery is the kill-and-restart loop: rounds of concurrent
// acked appends with checkpoints firing throughout (and one append-mode
// hot reload per round), each round ending in an abrupt abandon and a
// cold recovery from the checkpoint artifact plus the WAL tail.  The
// invariant is absolute: after every recovery, each sequence holds
// exactly the acked values — zero loss, zero double-apply — regardless
// of where the previous round's checkpoint lifecycle was cut off.
// Duration comes from SOAK_SECONDS (default 2).
func TestSoakRecovery(t *testing.T) {
	duration := 2 * time.Second
	if v := os.Getenv("SOAK_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs < 1 {
			t.Fatalf("SOAK_SECONDS = %q", v)
		}
		duration = time.Duration(secs) * time.Second
	}
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ingest.wal")
	ckptBase := filepath.Join(dir, "ckpt")

	const workers = 4
	acked := make(map[int]int, workers)   // per-sequence acked value counts across rounds
	seedLen := make(map[int]int, workers) // pre-append lengths, captured in round 1
	deadline := time.Now().Add(duration)
	round, totalAcked := 0, 0
	for round == 0 || time.Now().Before(deadline) {
		round++
		s, in, c := startAppendServer(t, walPath, ckptBase)
		if round == 1 {
			for seq := 0; seq < workers; seq++ {
				seedLen[seq] = in.index().Store().SequenceLen(seq)
			}
		}
		// Recovery check FIRST: this round's server must already hold
		// every append acked in previous rounds.
		verifyRecoveredSoak(t, in, seedLen, acked, round)

		ts := httptest.NewServer(s)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		counts := make([]int, workers)
		var appendFailure atomic.Pointer[string]
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seq int) {
				defer wg.Done()
				start := acked[seq]
				local := 0
				for {
					select {
					case <-stop:
						counts[seq] = local
						return
					default:
					}
					k := 5 + local%13
					vals := make([]string, k)
					for i := range vals {
						vals[i] = strconv.FormatFloat(soakVal(seq, start+local+i), 'g', -1, 64)
					}
					body := fmt.Sprintf(`{"seq": %d, "values": [%s]}`, seq, strings.Join(vals, ","))
					resp, err := ts.Client().Post(ts.URL+"/append", "application/json", strings.NewReader(body))
					if err != nil {
						msg := fmt.Sprintf("round %d seq %d: append transport error: %v", round, seq, err)
						appendFailure.CompareAndSwap(nil, &msg)
						counts[seq] = local
						return
					}
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						local += k
					case http.StatusTooManyRequests: // shed, not acked: retry
					default:
						msg := fmt.Sprintf("round %d seq %d: append status %d: %s", round, seq, resp.StatusCode, raw)
						appendFailure.CompareAndSwap(nil, &msg)
						counts[seq] = local
						return
					}
				}
			}(w)
		}
		// Checkpoints race the appends all round long.
		var ckptWG sync.WaitGroup
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(23 * time.Millisecond):
				}
				if _, err := c.run(); err != nil {
					msg := fmt.Sprintf("round %d: checkpoint failed: %v", round, err)
					appendFailure.CompareAndSwap(nil, &msg)
				}
			}
		}()

		roundDur := 350 * time.Millisecond
		time.Sleep(roundDur / 2)
		// One hot reload per round, mid-traffic: the checkpoint barrier
		// must not drop any append acked before it.
		if err := s.Reload(); err != nil {
			t.Fatalf("round %d: append-mode reload: %v", round, err)
		}
		time.Sleep(roundDur / 2)

		close(stop)
		wg.Wait()
		ckptWG.Wait()
		ts.Close()
		if msg := appendFailure.Load(); msg != nil {
			t.Fatal(*msg)
		}
		for seq := 0; seq < workers; seq++ {
			acked[seq] += counts[seq]
			totalAcked += counts[seq]
		}
		// The server is now ABANDONED mid-lifecycle — no flush, no
		// graceful close.  The next round's startAppendServer is the
		// crash recovery under test.
	}

	// One final cold recovery after the last abandon.
	_, inFinal, _ := startAppendServer(t, walPath, ckptBase)
	verifyRecoveredSoak(t, inFinal, seedLen, acked, round+1)
	t.Logf("recovery soak: %d rounds, %d acked appends verified across restarts", round, totalAcked)
}
