package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"

	"scaleshift/internal/core"
	"scaleshift/internal/engine"
	"scaleshift/internal/obs"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
	"scaleshift/internal/wal"
)

// queryIndex is the read surface a snapshot serves queries through.
// Both *core.Index (static artifacts) and *core.SegmentedIndex (live
// ingest) satisfy it; the handlers never care which one is behind a
// snapshot.  QueryWindow and StoreShape exist instead of raw
// Store() reads so that under concurrent appends the serving path
// only ever reads through a published manifest snapshot.
type queryIndex interface {
	Options() core.Options
	WindowCount() int
	IndexPageCount() int
	TreeHeight() int
	Degraded() (bool, string)
	Close() error
	QueryWindow(seq, start, n int, dst vec.Vector) error
	StoreShape() (seqs, values, pages int)
	Store() *store.Store
	SearchPlannedContext(ctx context.Context, q vec.Vector, eps float64, costs core.CostBounds, force engine.PathKind, pool *store.BufferPool, stats *core.SearchStats) ([]core.Match, *engine.Explain, error)
	SearchLongPlannedContext(ctx context.Context, q vec.Vector, eps float64, costs core.CostBounds, force engine.PathKind, stats *core.SearchStats) ([]core.Match, *engine.Explain, error)
	NearestNeighborsWithCostsContext(ctx context.Context, q vec.Vector, k int, costs core.CostBounds, stats *core.SearchStats) ([]core.Match, error)
	SearchBatchPlannedContext(ctx context.Context, queries []core.BatchQuery, force engine.PathKind, parallelism int, stats *core.SearchStats) ([][]core.Match, []*engine.Explain, []core.BatchStatus, error)
}

// maxAppendValues bounds one append request; larger loads belong in
// ssgen.  (The 1 MiB body cap binds first for JSON floats anyway.)
const maxAppendValues = 65536

// ingestState wires live ingest into the server: the segmented index
// absorbing appends, the write-ahead log making them durable before
// the ack, and the name→sequence directory for by-name appends.
// ingest.mu serializes the WAL-then-apply pair so the log order always
// matches the store order.
type ingestState struct {
	mu    sync.Mutex
	seg   *core.SegmentedIndex
	log   *wal.Log // nil: durability delegated to the caller (tests)
	names map[string]int
}

// newIngestState builds the directory from the store the segmented
// index currently covers, then replays outstanding WAL records into it.
// ckptOffset is the recovered checkpoint's WAL offset: records ending
// at or below it are already contained in the checkpoint and are
// skipped, which is what keeps recovery cost proportional to the WAL
// tail instead of the full ingest history (pass 0 to replay all).
func newIngestState(seg *core.SegmentedIndex, log *wal.Log, recs []wal.Record, ckptOffset int64) (*ingestState, error) {
	st := seg.Store()
	in := &ingestState{seg: seg, log: log, names: make(map[string]int, st.NumSequences())}
	for seq := 0; seq < st.NumSequences(); seq++ {
		in.names[st.SequenceName(seq)] = seq
	}
	for i, rec := range recs {
		if rec.End <= ckptOffset {
			continue
		}
		if rec.Name != "" && rec.Seq < 0 {
			if seq, ok := in.names[rec.Name]; ok {
				// The checkpoint already contains this sequence; the log
				// record predates it only in part — append the values.
				if err := in.seg.AppendValues(seq, rec.Values); err != nil {
					return nil, fmt.Errorf("wal replay, record %d: %w", i, err)
				}
				continue
			}
			seq, err := in.seg.AppendSequence(rec.Name, rec.Values)
			if err != nil {
				return nil, fmt.Errorf("wal replay, record %d: %w", i, err)
			}
			in.names[rec.Name] = seq
			continue
		}
		if rec.Seq < 0 || rec.Seq >= st.NumSequences() {
			return nil, fmt.Errorf("wal replay, record %d: sequence %d out of range", i, rec.Seq)
		}
		if err := in.seg.AppendValues(rec.Seq, rec.Values); err != nil {
			return nil, fmt.Errorf("wal replay, record %d: %w", i, err)
		}
	}
	return in, nil
}

// appendRequestJSON is the POST /append body: values for an existing
// sequence (by id or name), or a brand-new named sequence.
type appendRequestJSON struct {
	Seq    *int      `json:"seq,omitempty"`
	Name   string    `json:"name,omitempty"`
	Values []float64 `json:"values"`
}

// appendResponseJSON acknowledges a durable append.
type appendResponseJSON struct {
	Seq        int   `json:"seq"`
	SeqLen     int   `json:"seq_len"`
	Windows    int   `json:"windows"`
	Generation int64 `json:"generation"`
	Created    bool  `json:"created,omitempty"`
}

// handleAppend is the live-ingest endpoint.  The ordering contract is
// WAL-before-ack: the values are fsync'd to the log, then applied to
// the segmented index (which publishes a new manifest generation), and
// only then acknowledged — so an acked append survives a crash, and a
// search issued after the ack sees the appended windows.
func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("append requires POST"))
		return
	}
	in := s.ingest
	if in == nil {
		s.writeError(w, http.StatusConflict, fmt.Errorf("append unavailable: server was not started with -append"))
		return
	}
	var req appendRequestJSON
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, fmt.Errorf("decoding append body: %w", err))
		return
	}
	if len(req.Values) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("append has no values"))
		return
	}
	if len(req.Values) > maxAppendValues {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("append of %d values exceeds the %d-value limit", len(req.Values), maxAppendValues))
		return
	}
	for i, v := range req.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("value %d is not finite", i))
			return
		}
	}
	if (req.Seq == nil) == (req.Name == "") {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("provide exactly one of seq or name"))
		return
	}

	// Trace the durable path: the wal span covers the fsync'd log write,
	// the apply span the in-memory delta application.  An inbound
	// traceparent is adopted and echoed exactly as on /search.
	describe := req.Name
	if req.Seq != nil {
		describe = fmt.Sprintf("seq %d", *req.Seq)
	}
	describe = fmt.Sprintf("append %d values to %s", len(req.Values), describe)
	ctx, root := s.tracer.StartTraceWithID(r.Context(), "append",
		obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)))
	root.SetAttr("query", describe)
	if id := obs.TraceIDFromContext(ctx); id != "" {
		w.Header().Set(obs.TraceparentHeader, obs.FormatTraceparent(id))
	}
	fail := func(status int, err error) {
		root.SetAttr("error", err.Error())
		root.End()
		s.fillAppendDraft(ctx, root, describe, 0)
		s.writeError(w, status, err)
	}

	in.mu.Lock()
	defer in.mu.Unlock()
	seq, created := -1, false
	if req.Seq != nil {
		seq = *req.Seq
		if seq < 0 || seq >= in.seg.Store().NumSequences() {
			fail(http.StatusNotFound, fmt.Errorf("sequence %d does not exist", seq))
			return
		}
	} else if known, ok := in.names[req.Name]; ok {
		seq = known
	} else {
		created = true
	}

	// Durability first: nothing is applied, let alone acked, before the
	// log write is on disk.
	if in.log != nil {
		_, walSpan := obs.StartSpan(ctx, "wal")
		var err error
		if created {
			err = in.log.AppendSequence(req.Name, req.Values)
		} else {
			err = in.log.AppendValues(seq, req.Values)
		}
		walSpan.End()
		if err != nil {
			fail(http.StatusInternalServerError, err)
			return
		}
	}
	_, applySpan := obs.StartSpan(ctx, "apply")
	if created {
		newSeq, err := in.seg.AppendSequence(req.Name, req.Values)
		if err != nil {
			applySpan.End()
			fail(http.StatusInternalServerError, err)
			return
		}
		in.names[req.Name] = newSeq
		seq = newSeq
	} else if err := in.seg.AppendValues(seq, req.Values); err != nil {
		applySpan.End()
		fail(http.StatusInternalServerError, err)
		return
	}
	applySpan.End()
	root.End()
	s.fillAppendDraft(ctx, root, describe, len(req.Values))

	s.writeJSON(w, http.StatusOK, appendResponseJSON{
		Seq:        seq,
		SeqLen:     in.seg.Store().SequenceLen(seq),
		Windows:    in.seg.WindowCount(),
		Generation: in.seg.Generation(),
		Created:    created,
	})
}

// fillAppendDraft records the append into the request's wide-event
// draft (Matches doubles as the applied value count).
func (s *server) fillAppendDraft(ctx context.Context, root *obs.Span, describe string, values int) {
	d := eventDraftFrom(ctx)
	if d == nil {
		return
	}
	d.trace = root.Trace()
	d.query = describe
	d.matches = values
}

// index reads the live segmented index under the ingest lock: the
// append-mode reload barrier swaps in.seg, so unlocked reads of the
// pointer would race with it.
func (in *ingestState) index() *core.SegmentedIndex {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seg
}

// ingestDetail summarizes the compaction backlog for /readyz.  The
// ingest lock covers both the seg pointer read (racing reloads) and the
// WAL size read (racing appends).
func (in *ingestState) detail() map[string]interface{} {
	in.mu.Lock()
	b := in.seg.Backlog()
	var walBytes int64
	if in.log != nil {
		walBytes = in.log.Size()
	}
	in.mu.Unlock()
	d := map[string]interface{}{
		"generation":        b.Generation,
		"frozen_segments":   b.Frozen,
		"frozen_windows":    b.FrozenWindows,
		"delta_windows":     b.DeltaWindows,
		"compactions":       b.Compactions,
		"compact_pause_p99": b.CompactPauseP99.String(),
		"compact_pause_max": b.CompactPauseMax.String(),
		"wal_bytes":         walBytes,
	}
	if b.LastCompactErr != "" {
		d["last_compact_error"] = b.LastCompactErr
	}
	return d
}

// publishIngestGauges refreshes the ingest gauges; cheap enough to run
// per scrape via the registry callback would be nicer, but the metrics
// layer is pull-printed, so the readiness path refreshes them instead.
func (s *server) publishIngestGauges() {
	if s.ingest == nil {
		return
	}
	b := s.ingest.index().Backlog()
	s.reg.Gauge("scaleshift_ingest_delta_windows", "Windows awaiting compaction in the mutable delta.").Set(float64(b.DeltaWindows))
	s.reg.Gauge("scaleshift_ingest_frozen_segments", "Frozen segments in the manifest.").Set(float64(b.Frozen))
	s.reg.Gauge("scaleshift_ingest_generation", "Published manifest generation.").Set(float64(b.Generation))
	if s.ckpt != nil {
		s.reg.Gauge("scaleshift_wal_bytes", "Bytes of WAL retained past the last truncation (bounds recovery replay).").Set(float64(s.ckpt.walBytes()))
		s.reg.Gauge("scaleshift_checkpoint_age_seconds", "Seconds since the last durable checkpoint.").Set(s.ckpt.age().Seconds())
	}
}
