package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"scaleshift/internal/ckpt"
	"scaleshift/internal/core"
	"scaleshift/internal/obs"
	"scaleshift/internal/query"
	"scaleshift/internal/resilience"
	"scaleshift/internal/store"
	"scaleshift/internal/wal"
)

// startAppendServer mirrors ssserve's append-mode startup end to end:
// recover the checkpoint when one loads, otherwise build from the
// deterministic test seed, validate the recovery covers every acked
// append, and replay the WAL tail past the checkpoint's offset.
// Calling it again over the same paths IS the crash-recovery path the
// tests exercise.
func startAppendServer(t *testing.T, walPath, ckptBase string) (*server, *ingestState, *checkpointer) {
	t.Helper()
	obs.Enable()
	t.Cleanup(obs.Disable)

	var seg *core.SegmentedIndex
	var normScale float64
	var recovered *ckpt.Result
	res, _, err := ckpt.Recover(ckptBase)
	switch {
	case err == nil:
		recovered = res
		seg = res.Seg
		if normScale, err = query.SENormScale(res.Store, seg.Options().WindowLen, 200, 3); err != nil {
			t.Fatal(err)
		}
	case errors.Is(err, ckpt.ErrNoCheckpoint):
		ix, ns := newTestIndex(t, false)
		if seg, err = core.NewSegmentedFromIndex(ix); err != nil {
			t.Fatal(err)
		}
		normScale = ns
	default:
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })

	log, recs, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	if err := validateRecovery(recovered, log); err != nil {
		t.Fatal(err)
	}
	var off int64
	if recovered != nil {
		off = recovered.Meta.WALOffset
	}
	in, err := newIngestState(seg, log, recs, off)
	if err != nil {
		t.Fatal(err)
	}
	seg.StartCompactor()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	c := newCheckpointer(checkpointConfig{Path: ckptBase, Seed: 1}, in, logger, recovered)
	s := newServerFromConfig(t, serverConfig{
		snap:    &snapshot{ix: seg, normScale: normScale, how: "built for test", loadedAt: time.Now()},
		tracer:  obs.NewTracer(16),
		logger:  logger,
		serve:   testServeFlags(),
		breaker: resilience.DefaultBreakerConfig(),
		ingest:  in,
		ckpt:    c,
	})
	return s, in, c
}

// appendRamp acks nvals deterministic values onto sequence seq.
func appendRamp(t *testing.T, s *server, seq, base, nvals int) {
	t.Helper()
	vals := make([]string, nvals)
	for i := range vals {
		vals[i] = fmt.Sprintf("%g", float64(base)+3*math.Sin(float64(i)/3))
	}
	resp, raw := postAppend(t, s, fmt.Sprintf(`{"seq": %d, "values": [%s]}`, seq, strings.Join(vals, ",")))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append seq %d: %d: %s", seq, resp.StatusCode, raw)
	}
}

// segSearch runs one deterministic query (the last window of sequence
// 0) and returns the matches sorted by position, so results compare
// structurally even when the frozen/delta split differs between the
// live oracle and a recovered index.
func segSearch(t *testing.T, seg *core.SegmentedIndex) []core.Match {
	t.Helper()
	n := seg.Options().WindowLen
	q := make([]float64, n)
	if err := seg.QueryWindow(0, seg.Store().SequenceLen(0)-n, n, q); err != nil {
		t.Fatal(err)
	}
	out, err := seg.Search(q, 0.05, core.UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Start < out[j].Start
	})
	return out
}

func requireSameSearch(t *testing.T, want, got []core.Match, context string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches, oracle has %d", context, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: match %d diverged: %+v vs oracle %+v", context, i, got[i], want[i])
		}
	}
}

// TestCheckpointBoundedRecovery is the tentpole contract: restart cost
// is the WAL tail past the checkpoint, not the full append history,
// and the recovered search surface is bit-identical to the uncrashed
// server's.
func TestCheckpointBoundedRecovery(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ingest.wal")
	ckptBase := filepath.Join(dir, "ckpt")
	s, in, c := startAppendServer(t, walPath, ckptBase)

	// Workload 1 is covered by the checkpoint; workload 2 is the tail.
	appendRamp(t, s, 0, 10, 40)
	appendRamp(t, s, 1, 90, 25)
	appendRamp(t, s, 2, 55, 37)
	meta, err := c.run()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 1 || meta.WALOffset <= 0 {
		t.Fatalf("first checkpoint meta: %+v", meta)
	}
	appendRamp(t, s, 3, 42, 33)
	appendRamp(t, s, 0, 11, 5)
	oracleWindows := in.index().WindowCount()
	oracle := segSearch(t, in.index())

	// "Crash" (abandon the live server) and restart from disk: only the
	// two tail records may replay.
	log2, recs2, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	tail := 0
	for _, rec := range recs2 {
		if rec.End > meta.WALOffset {
			tail++
		}
	}
	log2.Close()
	if tail != 2 {
		t.Fatalf("WAL holds %d records past the checkpoint, want the 2 tail appends", tail)
	}

	_, in2, c2 := startAppendServer(t, walPath, ckptBase)
	if got := in2.index().WindowCount(); got != oracleWindows {
		t.Fatalf("recovered index covers %d windows, oracle %d", got, oracleWindows)
	}
	requireSameSearch(t, oracle, segSearch(t, in2.index()), "after bounded recovery")
	if c2.gen.Load() != 1 {
		t.Fatalf("recovered checkpointer resumes at generation %d, want 1", c2.gen.Load())
	}

	// A second checkpoint truncates the WAL through the first one's
	// offset (lag-one): the log's base advances, and steady-state WAL
	// size is bounded by the window between checkpoints.
	if _, err := c2.run(); err != nil {
		t.Fatal(err)
	}
	log3, _, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log3.Close()
	if log3.Base() != meta.WALOffset {
		t.Fatalf("after the second checkpoint the WAL starts at %d, want the first checkpoint's offset %d", log3.Base(), meta.WALOffset)
	}
}

// TestCheckpointCrashMatrix kills the lifecycle at each phase — before
// the flush, after the flush but before the WAL truncation, mid
// append-mode reload, and cleanly after truncation — and proves
// recovery reconstructs the acked state bit-identically every time.
// The pre-truncate window is the torn-write case: the checkpoint is
// durable but the WAL still holds records the checkpoint also
// contains, and replay must not double-apply them.
func TestCheckpointCrashMatrix(t *testing.T) {
	for _, phase := range []string{"pre-flush", "pre-truncate", "mid-reload", "post-truncate"} {
		t.Run(phase, func(t *testing.T) {
			dir := t.TempDir()
			walPath := filepath.Join(dir, "ingest.wal")
			ckptBase := filepath.Join(dir, "ckpt")
			s, in, c := startAppendServer(t, walPath, ckptBase)

			appendRamp(t, s, 0, 10, 40)
			appendRamp(t, s, 1, 90, 25)
			if _, err := c.run(); err != nil {
				t.Fatal(err)
			}
			appendRamp(t, s, 2, 55, 37)
			resp, raw := postAppend(t, s, fmt.Sprintf(`{"name": "CRASH", "values": [%s]}`, strings.Repeat("7,", 39)+"7"))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("append new sequence: %d: %s", resp.StatusCode, raw)
			}
			oracleWindows := in.index().WindowCount()
			oracle := segSearch(t, in.index())

			boom := errors.New("injected crash")
			c.testHook = func(p string) error {
				if p == phase {
					return boom
				}
				return nil
			}
			switch phase {
			case "mid-reload":
				if err := s.Reload(); !errors.Is(err, boom) {
					t.Fatalf("reload with %s crash armed: %v", phase, err)
				}
			case "post-truncate":
				// No hook fires: the full cycle completes, then the
				// process dies. Recovery replays an empty tail.
				if _, err := c.run(); err != nil {
					t.Fatal(err)
				}
			default:
				if _, err := c.run(); !errors.Is(err, boom) {
					t.Fatalf("checkpoint with %s crash armed: %v", phase, err)
				}
			}

			_, in2, _ := startAppendServer(t, walPath, ckptBase)
			if got := in2.index().WindowCount(); got != oracleWindows {
				t.Fatalf("recovered index covers %d windows, oracle %d", got, oracleWindows)
			}
			requireSameSearch(t, oracle, segSearch(t, in2.index()), "after "+phase+" crash")
			if seq, ok := in2.names["CRASH"]; !ok || in2.index().Store().SequenceLen(seq) != 40 {
				t.Fatalf("acked named sequence lost across %s crash (names=%v)", phase, in2.names)
			}
		})
	}
}

// TestCheckpointCorruptionSweep flips every byte of a checkpoint
// artifact, one at a time, and requires each damaged copy to be
// DETECTED and rejected with a loud typed warning — never a panic,
// never silently serving damaged data.  With the WAL's full history
// still on disk, startup then falls back to a full replay and
// reconstructs the exact acked state.
func TestCheckpointCorruptionSweep(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ingest.wal")
	ckptBase := filepath.Join(dir, "ckpt")

	// A deliberately tiny dataset keeps the artifact small enough to
	// sweep exhaustively.
	st := store.New()
	for s := 0; s < 2; s++ {
		vals := make([]float64, 24)
		for i := range vals {
			vals[i] = 50 + 10*math.Sin(float64(i+9*s)/4)
		}
		st.AppendSequence([]string{"a", "b"}[s], vals)
	}
	opts := core.DefaultOptions()
	opts.WindowLen = 8
	opts.Coefficients = 2
	seg, err := core.NewSegmentedIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()

	log, recs, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if len(recs) != 0 {
		t.Fatalf("fresh wal replayed %d records", len(recs))
	}
	in, err := newIngestState(seg, log, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	c := newCheckpointer(checkpointConfig{Path: ckptBase, Seed: 1}, in, logger, nil)

	// Ack appends through the WAL path, then checkpoint. The WAL is NOT
	// truncated after the first checkpoint (lag-one bound is zero), so
	// full replay stays possible — the corruption fallback under test.
	grow := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	in.mu.Lock()
	if err := in.log.AppendValues(0, grow); err != nil {
		t.Fatal(err)
	}
	if err := in.seg.AppendValues(0, grow); err != nil {
		t.Fatal(err)
	}
	in.mu.Unlock()
	if _, err := c.run(); err != nil {
		t.Fatal(err)
	}

	oracleWindows := seg.WindowCount()
	raw, err := os.ReadFile(ckptBase)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sweeping %d bytes of checkpoint artifact", len(raw))
	p := ckpt.PathsFor(ckptBase)
	for i := range raw {
		damaged := make([]byte, len(raw))
		copy(damaged, raw)
		damaged[i] ^= 0xFF
		if err := os.WriteFile(p.Cur, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		res, warns, err := ckpt.Recover(ckptBase)
		if err == nil {
			res.Seg.Close()
			t.Fatalf("byte %d: flipped artifact loaded without error", i)
		}
		if !errors.Is(err, ckpt.ErrNoCheckpoint) {
			t.Fatalf("byte %d: want ErrNoCheckpoint, got %v", i, err)
		}
		if len(warns) != 1 || warns[0].Path != p.Cur || warns[0].Err == nil {
			t.Fatalf("byte %d: rejection was not loud: warnings %v", i, warns)
		}
	}

	// Full-replay fallback: with every artifact rejected but the WAL
	// complete from offset zero, a fresh server reconstructs the acked
	// state exactly — corruption cost is a slower restart, never loss.
	if err := os.WriteFile(p.Cur, raw[:len(raw)/2], 0o644); err != nil { // torn artifact
		t.Fatal(err)
	}
	log2, recs2, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if err := validateRecovery(nil, log2); err != nil {
		t.Fatalf("full replay should be valid with an untruncated WAL: %v", err)
	}
	seg2, err := core.NewSegmentedIndex(st2Clone(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer seg2.Close()
	in2, err := newIngestState(seg2, log2, recs2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := in2.index().WindowCount(); got != oracleWindows {
		t.Fatalf("full replay covers %d windows, oracle %d", got, oracleWindows)
	}

	// Once the WAL has been truncated, a rejected chain must REFUSE
	// loudly instead of silently dropping the checkpointed prefix.
	if err := log2.TruncateThrough(log2.Offset()); err != nil {
		t.Fatal(err)
	}
	if err := validateRecovery(nil, log2); !errors.Is(err, errUnrecoverable) {
		t.Fatalf("truncated WAL without a checkpoint: want errUnrecoverable, got %v", err)
	}
}

// st2Clone rebuilds the sweep's tiny seed store (pre-append state), as
// a cold start from seed data would.
func st2Clone(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	for s := 0; s < 2; s++ {
		vals := make([]float64, 24)
		for i := range vals {
			vals[i] = 50 + 10*math.Sin(float64(i+9*s)/4)
		}
		st.AppendSequence([]string{"a", "b"}[s], vals)
	}
	return st
}

// TestAppendModeReload proves hot reload works again under -append:
// the checkpoint barrier flushes every acked append, the swapped-in
// snapshot serves the identical search surface, and ingest continues
// (by id and by name) on the fresh index.
func TestAppendModeReload(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ingest.wal")
	ckptBase := filepath.Join(dir, "ckpt")
	s, in, _ := startAppendServer(t, walPath, ckptBase)

	appendRamp(t, s, 0, 10, 40)
	resp, raw := postAppend(t, s, `{"name": "HOT", "values": [`+strings.Repeat("3,", 39)+`3]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d: %s", resp.StatusCode, raw)
	}
	oracle := segSearch(t, in.index())
	oracleWindows := in.index().WindowCount()

	rr := httptest.NewRequest(http.MethodPost, "/admin/reload", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, rr)
	if rec.Code != http.StatusOK {
		t.Fatalf("append-mode reload: %d: %s", rec.Code, rec.Body)
	}

	if got := in.index().WindowCount(); got != oracleWindows {
		t.Fatalf("reloaded index covers %d windows, want %d", got, oracleWindows)
	}
	requireSameSearch(t, oracle, segSearch(t, in.index()), "after append-mode reload")

	// The serving snapshot swapped to the recovered generation…
	gr, gbody := get(t, s, "/readyz")
	if gr.StatusCode != http.StatusOK {
		t.Fatalf("readyz after reload: %d: %s", gr.StatusCode, gbody)
	}
	var detail map[string]interface{}
	if err := json.Unmarshal(gbody, &detail); err != nil {
		t.Fatal(err)
	}
	snapDetail := detail["snapshot"].(map[string]interface{})
	if how := snapDetail["how"].(string); !strings.Contains(how, "reloaded from checkpoint") {
		t.Fatalf("snapshot did not swap: how=%q", how)
	}
	ckptDetail, ok := detail["checkpoint"].(map[string]interface{})
	if !ok || ckptDetail["generation"].(float64) < 1 {
		t.Fatalf("readyz missing checkpoint detail: %s", gbody)
	}

	// …and ingest keeps working on it, including by-name resolution
	// through the rebuilt directory.
	appendRamp(t, s, 0, 12, 6)
	resp, raw = postAppend(t, s, `{"name": "HOT", "values": [4, 5]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append after reload: %d: %s", resp.StatusCode, raw)
	}
	var ack appendResponseJSON
	if err := json.Unmarshal(raw, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Created || ack.SeqLen != 42 {
		t.Fatalf("by-name append after reload: %+v", ack)
	}

	// No acked append may be lost across reload + crash + recovery.
	oracle2 := segSearch(t, in.index())
	oracleWindows2 := in.index().WindowCount()
	_, in2, _ := startAppendServer(t, walPath, ckptBase)
	if got := in2.index().WindowCount(); got != oracleWindows2 {
		t.Fatalf("post-reload recovery covers %d windows, oracle %d", got, oracleWindows2)
	}
	requireSameSearch(t, oracle2, segSearch(t, in2.index()), "post-reload recovery")
}

// TestAdminCheckpointEndpoint covers the operational trigger and its
// unavailability on servers without checkpointing.
func TestAdminCheckpointEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := startAppendServer(t, filepath.Join(dir, "ingest.wal"), filepath.Join(dir, "ckpt"))
	appendRamp(t, s, 0, 10, 12)

	req := httptest.NewRequest(http.MethodPost, "/admin/checkpoint", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /admin/checkpoint: %d: %s", rec.Code, rec.Body)
	}
	var body map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["generation"].(float64) != 1 || body["wal_offset"].(float64) <= 0 {
		t.Fatalf("checkpoint response: %v", body)
	}

	req = httptest.NewRequest(http.MethodGet, "/admin/checkpoint", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/checkpoint: %d", rec.Code)
	}

	plain := newTestServer(t, false)
	req = httptest.NewRequest(http.MethodPost, "/admin/checkpoint", nil)
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Fatalf("checkpoint without -checkpoint: %d, want 409", rec.Code)
	}

	// The metrics surface carries the WAL/checkpoint gauges after a
	// readiness probe refreshes them.
	get(t, s, "/readyz")
	mr, mbody := get(t, s, "/metrics")
	if mr.StatusCode != http.StatusOK {
		t.Fatal("metrics unavailable")
	}
	for _, name := range []string{"scaleshift_wal_bytes", "scaleshift_checkpoint_age_seconds"} {
		if !strings.Contains(string(mbody), name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}
