package main

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/engine"
	"scaleshift/internal/obs"
)

// Wide events: the serving layer emits exactly one structured event
// per /search request, per POST /search batch, and per /append —
// whatever the outcome (parse error, admission shed, breaker
// rejection, engine error, success).  The handler fills an eventDraft
// as it learns things; the instrument middleware turns the draft into
// an obs.Event after the response is written, when the status and the
// committed trace are both known.  Batch slots additionally get one
// thin batch_slot event each, keyed to the batch's trace ID.

// eventDraft accumulates what a handler knows about its request.
type eventDraft struct {
	trace    *obs.Trace
	query    string
	path     string
	degraded bool
	matches  int
	outcome  string // set early by shed/breaker rejections
	plan     []obs.EventPlanRow
	stats    *obs.EventStats
	shards   []obs.EventShard // coordinator mode: per-fault-domain coverage
}

type eventDraftKey struct{}

// eventDraftFrom returns the request's draft, or nil when the route is
// not instrumented (or events are disabled).
func eventDraftFrom(ctx context.Context) *eventDraft {
	d, _ := ctx.Value(eventDraftKey{}).(*eventDraft)
	return d
}

// eventStats flattens the engine's ledger into the obs event form.
// ScanProbes rides along so the Candidates == FalseAlarms +
// CostRejected + Results and DegradedProbes <= ScanProbes invariants
// stay checkable from the event alone.
func eventStats(st *core.SearchStats) *obs.EventStats {
	return &obs.EventStats{
		Candidates:     st.Candidates,
		FalseAlarms:    st.FalseAlarms,
		CostRejected:   st.CostRejected,
		Results:        st.Results,
		IndexNodeReads: st.IndexNodeAccesses,
		DataPageReads:  st.DataPageAccesses,
		ScanProbes:     st.PathProbes[engine.PathScan],
		DegradedProbes: st.DegradedProbes,
		PlanNs:         st.PlanTime.Nanoseconds(),
		ProbeNs:        st.ProbeTime.Nanoseconds(),
		VerifyNs:       st.VerifyTime.Nanoseconds(),
	}
}

// eventPlanRows renders the planner's per-path comparison table.
func eventPlanRows(ex *engine.Explain) []obs.EventPlanRow {
	if ex == nil {
		return nil
	}
	rows := make([]obs.EventPlanRow, 0, len(ex.Plans))
	for _, p := range ex.Plans {
		if !p.Available {
			continue
		}
		rows = append(rows, obs.EventPlanRow{Path: p.Path.String(), Candidates: int(p.Cost.Candidates)})
	}
	return rows
}

// fillSearchDraft records a completed (or failed) search into the
// request's draft.
func fillSearchDraft(ctx context.Context, root *obs.Span, describe string, stats *core.SearchStats, ex *engine.Explain, matches int) {
	d := eventDraftFrom(ctx)
	if d == nil {
		return
	}
	d.trace = root.Trace()
	d.query = describe
	d.stats = eventStats(stats)
	d.matches = matches
	if ex != nil {
		d.path = ex.Chosen.String()
		d.degraded = ex.Degraded
		d.plan = eventPlanRows(ex)
	}
}

// outcomeFromStatus classifies a response when the handler did not
// already decide (shed and breaker rejections set the draft outcome
// explicitly, because 503 alone cannot tell a breaker from a timeout).
func outcomeFromStatus(status int) string {
	switch {
	case status < 400:
		return "ok"
	case status == http.StatusTooManyRequests:
		return "shed"
	case status >= 500:
		return "error"
	default:
		return "client_error" // 4xx and the token 499 client-gone
	}
}

// instrument wraps a serving route with wide-event emission.  It sits
// between handle (which owns the statusWriter) and guard (which sheds),
// so the event sees every outcome.  The disabled path is one atomic
// check and allocates nothing.
func (s *server) instrument(kind string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.events.Active() {
			h(w, r)
			return
		}
		draft := &eventDraft{}
		r = r.WithContext(context.WithValue(r.Context(), eventDraftKey{}, draft))
		start := time.Now()
		h(w, r)
		elapsed := time.Since(start)

		status := http.StatusOK
		if sw, ok := w.(*statusWriter); ok {
			status = sw.status
		}
		k := kind
		if kind == "search" && r.Method == http.MethodPost {
			k = "search_batch"
		}
		e := &obs.Event{
			Kind:       k,
			Status:     status,
			Outcome:    draft.outcome,
			DurationNs: elapsed.Nanoseconds(),
			Query:      draft.query,
			Path:       draft.path,
			Degraded:   draft.degraded,
			Matches:    draft.matches,
			Plan:       draft.plan,
			Stats:      draft.stats,
		}
		if e.Outcome == "" {
			e.Outcome = outcomeFromStatus(status)
		}
		if draft.trace != nil {
			// The root span ended before the handler returned, so the
			// snapshot carries final stage timings.
			snap := draft.trace.Snapshot()
			e.TraceID = snap.ID
			for _, sp := range snap.Spans {
				if sp.Parent == 0 {
					continue // the root's duration is the event's own
				}
				e.Spans = append(e.Spans, obs.EventSpan{Name: sp.Name, DurationNs: sp.DurationNs})
			}
		} else {
			// The request was rejected before a trace could root (shed
			// at admission, open breaker, parse failure).  Mint an id
			// anyway: every wide event stays correlatable.
			e.TraceID = s.tracer.MintID()
		}
		s.events.Emit(e, time.Now().UnixNano())
	}
}

// emitBatchSlotEvents publishes one thin event per batch slot, keyed
// to the batch's trace so a slow slot can be found from the stream.
func (s *server) emitBatchSlotEvents(traceID string, status int, resp *batchResponseJSON) {
	if !s.events.Active() {
		return
	}
	for i, item := range resp.Results {
		outcome := "ok"
		if item.Status != core.BatchComplete.String() {
			outcome = "error"
		}
		s.events.Emit(&obs.Event{
			Kind:    "batch_slot",
			TraceID: traceID,
			Status:  status,
			Outcome: outcome,
			Slot:    i,
			Matches: item.Total,
		}, time.Now().UnixNano())
	}
}

// handleEvents serves the wide-event ring at /debug/events.  ?since=
// resumes a poller's cursor; ?max= caps the page.  The envelope carries
// the ring's accounting counters so a poller can prove exactly-once
// coverage: drained + missed converges on emitted.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	serveEvents(s.events, s.logger, w, r)
}

// serveEvents is shared by the shard and coordinator frontends.
func serveEvents(ring *obs.EventRing, logger *slog.Logger, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErrorResp(logger, w, http.StatusBadRequest, fmt.Errorf("parameter since: %w", err))
			return
		}
		since = n
	}
	max := 0
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErrorResp(logger, w, http.StatusBadRequest, fmt.Errorf("parameter max: %w", err))
			return
		}
		max = n
	}
	events, missed, next := ring.Drain(since, max)
	if events == nil {
		events = []*obs.Event{}
	}
	writeJSONResp(logger, w, http.StatusOK, map[string]interface{}{
		"events":       events,
		"missed":       missed,
		"next":         next,
		"emitted":      ring.Emitted(),
		"overwritten":  ring.Overwritten(),
		"sink_dropped": ring.SinkDropped(),
	})
}
