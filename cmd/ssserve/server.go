package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/engine"
	"scaleshift/internal/obs"
	"scaleshift/internal/vec"
)

// server is the HTTP query frontend: one loaded index, one tracer ring,
// one metrics registry.  It is constructed by newServer so tests can
// drive it through httptest without opening a socket.
type server struct {
	ix        *core.Index
	tracer    *obs.Tracer
	logger    *slog.Logger
	reg       *obs.Registry
	normScale float64 // mean window SE-norm, the eps_frac denominator
	mux       *http.ServeMux
}

func newServer(ix *core.Index, normScale float64, tracer *obs.Tracer, logger *slog.Logger) *server {
	s := &server{
		ix:        ix,
		tracer:    tracer,
		logger:    logger,
		reg:       obs.Default,
		normScale: normScale,
		mux:       http.NewServeMux(),
	}

	// Startup gauges: the static shape of what this process serves.
	st := ix.Store()
	s.reg.Gauge("scaleshift_index_windows", "Windows indexed by the loaded index.").Set(float64(ix.WindowCount()))
	s.reg.Gauge("scaleshift_index_pages", "Pages of the loaded R*-tree.").Set(float64(ix.IndexPageCount()))
	s.reg.Gauge("scaleshift_index_height", "Height of the loaded R*-tree.").Set(float64(ix.TreeHeight()))
	s.reg.Gauge("scaleshift_store_sequences", "Sequences in the loaded store.").Set(float64(st.NumSequences()))
	s.reg.Gauge("scaleshift_store_values", "Samples in the loaded store.").Set(float64(st.TotalValues()))
	s.reg.Gauge("scaleshift_store_pages", "Data pages in the loaded store.").Set(float64(st.PageCount()))
	degraded := 0.0
	if deg, _ := ix.Degraded(); deg {
		degraded = 1
	}
	s.reg.Gauge("scaleshift_index_degraded", "1 when the index is serving in degraded (scan-only) mode.").Set(degraded)

	s.handle("search", "/search", s.handleSearch)
	s.handle("healthz", "/healthz", s.handleHealthz)
	s.handle("metrics", "/metrics", s.handleMetrics)
	s.handle("traces", "/debug/traces", s.handleTraces)
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handle wraps a route with the request-logging and per-route metrics
// middleware.  Route label values are constant, so the counters are
// registered once here and recording stays allocation-free.
func (s *server) handle(name, pattern string, h http.HandlerFunc) {
	l := obs.Label{Key: "handler", Value: name}
	reqs := s.reg.Counter("scaleshift_http_requests_total", "HTTP requests served, by handler.", l)
	errs := s.reg.Counter("scaleshift_http_errors_total", "HTTP responses with status >= 400, by handler.", l)
	dur := s.reg.Histogram("scaleshift_http_request_duration_ns", "HTTP request latency in nanoseconds, by handler.", l)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		reqs.Inc()
		dur.ObserveDuration(elapsed)
		if sw.status >= 400 {
			errs.Inc()
		}
		s.logger.Info("request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"duration", elapsed, "remote", r.RemoteAddr)
	})
}

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// writeJSON renders v; encoding failures after the header is out can
// only be logged.
func (s *server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.logger.Error("encoding response", "err", err)
	}
}

func (s *server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	deg, reason := s.ix.Degraded()
	resp := map[string]interface{}{"status": "ok", "degraded": deg}
	if deg {
		// Degraded still answers exactly (scan fallback), so the server
		// stays healthy — the flag tells operators acceleration is gone.
		resp["reason"] = reason
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.logger.Error("writing metrics", "err", err)
	}
}

func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if id := r.URL.Query().Get("id"); id != "" {
		tr, ok := s.tracer.Get(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, fmt.Errorf("trace %q not retained (ring evicts oldest)", id))
			return
		}
		s.writeJSON(w, http.StatusOK, tr)
		return
	}
	if err := s.tracer.WriteJSON(w); err != nil {
		s.logger.Error("writing traces", "err", err)
	}
}

// searchRequest is the decoded /search query string.
type searchRequest struct {
	q        vec.Vector
	eps      float64
	costs    core.CostBounds
	force    engine.PathKind
	nn       int
	limit    int
	describe string
}

// parseSearchRequest decodes the query parameters:
//
//	seq, start     address a window of the store (with optional len)
//	values         comma-separated explicit query values (alternative)
//	scale, shift   disguise the window (defaults 1, 0)
//	eps, eps_frac  error bound, absolute or as a fraction of the mean
//	               window SE-norm (default eps_frac=0.02)
//	nn             k-nearest-neighbour mode when > 0
//	path           auto | rtree | trail | scan
//	scale_min, scale_max, shift_abs   transformation cost bounds
//	limit          cap on returned matches (default 100, 0 = all)
func (s *server) parseSearchRequest(r *http.Request) (*searchRequest, error) {
	p := r.URL.Query()
	floatParam := func(name string, def float64) (float64, error) {
		v := p.Get(name)
		if v == "" {
			return def, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("parameter %s: %w", name, err)
		}
		return f, nil
	}
	intParam := func(name string, def int) (int, error) {
		v := p.Get(name)
		if v == "" {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("parameter %s: %w", name, err)
		}
		return n, nil
	}

	req := &searchRequest{}
	window := s.ix.Options().WindowLen

	// Query vector.
	if values := p.Get("values"); values != "" {
		fields := strings.Split(values, ",")
		req.q = make(vec.Vector, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("parameter values, field %d: %w", i+1, err)
			}
			req.q[i] = v
		}
		req.describe = fmt.Sprintf("%d explicit values", len(req.q))
	} else if p.Get("seq") != "" || p.Get("start") != "" {
		seq, err := intParam("seq", 0)
		if err != nil {
			return nil, err
		}
		start, err := intParam("start", 0)
		if err != nil {
			return nil, err
		}
		n, err := intParam("len", window)
		if err != nil {
			return nil, err
		}
		scale, err := floatParam("scale", 1)
		if err != nil {
			return nil, err
		}
		shift, err := floatParam("shift", 0)
		if err != nil {
			return nil, err
		}
		w := make(vec.Vector, n)
		if err := s.ix.Store().Window(seq, start, n, w, nil); err != nil {
			return nil, err
		}
		req.q = vec.Apply(w, scale, shift)
		req.describe = fmt.Sprintf("window %d:%d len %d (a=%g b=%g)", seq, start, n, scale, shift)
	} else {
		return nil, fmt.Errorf("provide seq=&start= or values=")
	}

	// Epsilon.
	eps, err := floatParam("eps", -1)
	if err != nil {
		return nil, err
	}
	if eps < 0 {
		frac, err := floatParam("eps_frac", 0.02)
		if err != nil {
			return nil, err
		}
		eps = frac * s.normScale
	}
	req.eps = eps

	// Cost bounds.
	req.costs = core.UnboundedCosts()
	if v, err := floatParam("scale_min", 0); err != nil {
		return nil, err
	} else if v != 0 {
		req.costs.ScaleMin = v
	}
	if v, err := floatParam("scale_max", 0); err != nil {
		return nil, err
	} else if v != 0 {
		req.costs.ScaleMax = v
	}
	if v, err := floatParam("shift_abs", 0); err != nil {
		return nil, err
	} else if v != 0 {
		req.costs.ShiftMin, req.costs.ShiftMax = -v, v
	}

	if req.force, err = engine.ParsePathKind(p.Get("path")); p.Get("path") != "" && err != nil {
		return nil, err
	} else if p.Get("path") == "" {
		req.force = engine.PathAuto
	}
	if req.nn, err = intParam("nn", 0); err != nil {
		return nil, err
	}
	if req.nn > 0 && req.force != engine.PathAuto {
		return nil, fmt.Errorf("path applies to range queries; nearest-neighbour search is pinned to the index probe")
	}
	if req.limit, err = intParam("limit", 100); err != nil {
		return nil, err
	}
	return req, nil
}

// matchJSON is one reported match.
type matchJSON struct {
	Name  string  `json:"name"`
	Seq   int     `json:"seq"`
	Start int     `json:"start"`
	End   int     `json:"end"`
	Dist  float64 `json:"dist"`
	Scale float64 `json:"scale"`
	Shift float64 `json:"shift"`
}

// statsJSON is the per-query cost accounting in the response.
type statsJSON struct {
	Candidates     int   `json:"candidates"`
	FalseAlarms    int   `json:"false_alarms"`
	CostRejected   int   `json:"cost_rejected"`
	IndexNodeReads int   `json:"index_node_reads"`
	DataPageReads  int   `json:"data_page_reads"`
	PlanNs         int64 `json:"plan_ns"`
	ProbeNs        int64 `json:"probe_ns"`
	VerifyNs       int64 `json:"verify_ns"`
}

// planJSON summarizes the chosen plan.
type planJSON struct {
	Path           string  `json:"path"`
	Forced         bool    `json:"forced,omitempty"`
	Degraded       bool    `json:"degraded,omitempty"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	Pieces         int     `json:"pieces,omitempty"`
	EstCandidates  float64 `json:"est_candidates"`
}

// searchResponse is the /search payload.
type searchResponse struct {
	TraceID   string      `json:"trace_id,omitempty"`
	Query     string      `json:"query"`
	Eps       float64     `json:"eps"`
	ElapsedNs int64       `json:"elapsed_ns"`
	Total     int         `json:"total_matches"`
	Matches   []matchJSON `json:"matches"`
	Truncated bool        `json:"truncated,omitempty"`
	Stats     statsJSON   `json:"stats"`
	Plan      *planJSON   `json:"plan,omitempty"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, err := s.parseSearchRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	// Root the query's trace: the engine's plan/probe/verify spans (and
	// the per-descent spans below them) become children of this span,
	// so the committed trace is one complete timeline of the request.
	ctx, root := s.tracer.StartTrace(r.Context(), "search")
	root.SetAttr("query", req.describe)

	var stats core.SearchStats
	var matches []core.Match
	var ex *engine.Explain
	window := s.ix.Options().WindowLen
	start := time.Now()
	switch {
	case req.nn > 0:
		matches, err = s.ix.NearestNeighborsWithCosts(req.q, req.nn, req.costs, &stats)
	case len(req.q) > window:
		matches, ex, err = s.ix.SearchLongPlannedContext(ctx, req.q, req.eps, req.costs, req.force, &stats)
	default:
		matches, ex, err = s.ix.SearchPlannedContext(ctx, req.q, req.eps, req.costs, req.force, nil, &stats)
	}
	elapsed := time.Since(start)
	if err != nil {
		root.SetAttr("error", err.Error())
		root.End()
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	root.SetInt("matches", int64(len(matches)))
	root.End() // commits the trace, so /debug/traces can serve it immediately

	resp := searchResponse{
		TraceID:   stats.TraceID,
		Query:     req.describe,
		Eps:       req.eps,
		ElapsedNs: elapsed.Nanoseconds(),
		Total:     len(matches),
		Matches:   make([]matchJSON, 0, len(matches)),
		Stats: statsJSON{
			Candidates:     stats.Candidates,
			FalseAlarms:    stats.FalseAlarms,
			CostRejected:   stats.CostRejected,
			IndexNodeReads: stats.IndexNodeAccesses,
			DataPageReads:  stats.DataPageAccesses,
			PlanNs:         stats.PlanTime.Nanoseconds(),
			ProbeNs:        stats.ProbeTime.Nanoseconds(),
			VerifyNs:       stats.VerifyTime.Nanoseconds(),
		},
	}
	if resp.TraceID == "" {
		resp.TraceID = obs.TraceIDFromContext(ctx)
	}
	if ex != nil {
		resp.Plan = &planJSON{
			Path:           ex.Chosen.String(),
			Forced:         ex.Forced,
			Degraded:       ex.Degraded,
			DegradedReason: ex.DegradedReason,
			Pieces:         ex.Pieces,
			EstCandidates:  ex.EstCandidates,
		}
	}
	for i, m := range matches {
		if req.limit > 0 && i >= req.limit {
			resp.Truncated = true
			break
		}
		resp.Matches = append(resp.Matches, matchJSON{
			Name: m.Name, Seq: m.Seq, Start: m.Start, End: m.Start + len(req.q),
			Dist: m.Dist, Scale: m.Scale, Shift: m.Shift,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}
