package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"scaleshift/internal/cliutil"
	"scaleshift/internal/core"
	"scaleshift/internal/engine"
	"scaleshift/internal/obs"
	"scaleshift/internal/resilience"
	"scaleshift/internal/vec"
)

// Request-body and batch-size ceilings for POST /search.  These are
// not tunables: a batch bigger than this belongs in ssbench, and a
// bigger body is either a bug or an attack.
const (
	maxRequestBody  = 1 << 20 // 1 MiB of JSON
	maxBatchQueries = 256
)

// serverConfig assembles a server.  Everything is explicit so tests
// can build small, deterministic instances.
type serverConfig struct {
	snap    *snapshot
	tracer  *obs.Tracer
	logger  *slog.Logger
	serve   cliutil.ServeFlags
	breaker resilience.BreakerConfig
	reload  *reloadConfig  // nil disables hot reload
	ingest  *ingestState   // nil disables live append
	ckpt    *checkpointer  // nil disables checkpointing (and append-mode reload)
	events  *obs.EventRing // nil gets a default ring
}

// server is the HTTP query frontend.  The artifact snapshot sits
// behind an RCU cell so hot reloads swap it atomically; the admission
// controller and circuit breaker stand between the mux and the
// engine; liveness and readiness are separate signals.
type server struct {
	snap    *resilience.Cell[*snapshot]
	adm     *resilience.Admission
	breaker *resilience.Breaker
	rel     *reloader
	ingest  *ingestState
	ckpt    *checkpointer
	tracer  *obs.Tracer
	logger  *slog.Logger
	reg     *obs.Registry
	mux     *http.ServeMux
	events  *obs.EventRing

	requestTimeout time.Duration
	draining       atomic.Bool
	reloading      atomic.Bool
	lastReloadErr  atomic.Pointer[reloadFailure]

	readyGauge      *obs.Gauge
	reloadsOK       *obs.Counter
	reloadsRejected *obs.Counter
	generation      *obs.Gauge
	genCount        atomic.Int64
}

// reloadFailure records the most recent rejected reload for /readyz.
type reloadFailure struct {
	Err string    `json:"error"`
	At  time.Time `json:"at"`
}

func newServer(cfg serverConfig) (*server, error) {
	if err := cfg.serve.Validate(); err != nil {
		return nil, err
	}
	s := &server{
		snap:   resilience.NewCell(cfg.snap),
		ingest: cfg.ingest,
		ckpt:   cfg.ckpt,
		tracer: cfg.tracer,
		logger: cfg.logger,
		reg:    obs.Default,
		mux:    http.NewServeMux(),
		events: cfg.events,

		requestTimeout: cfg.serve.RequestTimeout,
	}
	if s.events == nil {
		s.events = obs.NewEventRing(256)
	}
	s.adm = resilience.NewAdmission(resilience.AdmissionConfig{
		MaxInflight:  cfg.serve.MaxInflight,
		MaxQueue:     cfg.serve.MaxQueue,
		QueueTimeout: cfg.serve.QueueTimeout,
		Registry:     s.reg,
	})
	cfg.breaker.Registry = s.reg
	s.breaker = resilience.NewBreaker(cfg.breaker)
	if cfg.reload != nil {
		s.rel = newReloader(*cfg.reload)
	}

	s.readyGauge = s.reg.Gauge("scaleshift_ready", "1 when /readyz reports ready.")
	s.readyGauge.Set(1)
	s.reloadsOK = s.reg.Counter("scaleshift_reloads_total", "Artifact reload attempts, by result.", obs.Label{Key: "result", Value: "ok"})
	s.reloadsRejected = s.reg.Counter("scaleshift_reloads_total", "Artifact reload attempts, by result.", obs.Label{Key: "result", Value: "rejected"})
	s.generation = s.reg.Gauge("scaleshift_snapshot_generation", "Monotone generation number of the serving snapshot; increments on every successful reload.")
	s.generation.Set(0)
	s.publishSnapshotGauges(cfg.snap)

	s.handle("search", "/search", s.instrument("search", s.guard(s.handleSearch)))
	s.handle("append", "/append", s.instrument("append", s.guard(s.handleAppend)))
	s.handle("shardinfo", "/shardinfo", s.handleShardInfo)
	s.handle("window", "/window", s.handleWindow)
	s.handle("healthz", "/healthz", s.handleHealthz)
	s.handle("livez", "/livez", s.handleLivez)
	s.handle("readyz", "/readyz", s.handleReadyz)
	s.handle("reload", "/admin/reload", s.handleReload)
	s.handle("checkpoint", "/admin/checkpoint", s.handleCheckpoint)
	s.handle("metrics", "/metrics", s.handleMetrics)
	s.handle("traces", "/debug/traces", s.handleTraces)
	s.handle("events", "/debug/events", s.handleEvents)
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// publishSnapshotGauges re-announces the static shape of the serving
// snapshot; called at startup and after every successful swap.
func (s *server) publishSnapshotGauges(sn *snapshot) {
	seqs, values, pages := sn.ix.StoreShape()
	s.reg.Gauge("scaleshift_index_windows", "Windows indexed by the loaded index.").Set(float64(sn.ix.WindowCount()))
	s.reg.Gauge("scaleshift_index_pages", "Pages of the loaded R*-tree.").Set(float64(sn.ix.IndexPageCount()))
	s.reg.Gauge("scaleshift_index_height", "Height of the loaded R*-tree.").Set(float64(sn.ix.TreeHeight()))
	s.reg.Gauge("scaleshift_store_sequences", "Sequences in the loaded store.").Set(float64(seqs))
	s.reg.Gauge("scaleshift_store_values", "Samples in the loaded store.").Set(float64(values))
	s.reg.Gauge("scaleshift_store_pages", "Data pages in the loaded store.").Set(float64(pages))
	degraded := 0.0
	if deg, _ := sn.ix.Degraded(); deg {
		degraded = 1
	}
	s.reg.Gauge("scaleshift_index_degraded", "1 when the index is serving in degraded (scan-only) mode.").Set(degraded)
}

// handle wraps a route with the request-logging and per-route metrics
// middleware.  Route label values are constant, so the counters are
// registered once here and recording stays allocation-free.
func (s *server) handle(name, pattern string, h http.HandlerFunc) {
	l := obs.Label{Key: "handler", Value: name}
	reqs := s.reg.Counter("scaleshift_http_requests_total", "HTTP requests served, by handler.", l)
	errs := s.reg.Counter("scaleshift_http_errors_total", "HTTP responses with status >= 400, by handler.", l)
	dur := s.reg.DurationHistogram("scaleshift_http_request_duration_seconds", "HTTP request latency, by handler.", l)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		reqs.Inc()
		dur.ObserveDuration(elapsed)
		if sw.status >= 400 {
			errs.Inc()
		}
		s.logger.Info("request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"duration", elapsed, "remote", r.RemoteAddr)
	})
}

// guard is the serving-path middleware: it applies the per-request
// timeout (feeding the engine's cooperative cancellation), bounds the
// request body, and runs the request through the admission controller.
// Shed requests get 429 with a Retry-After hint and never touch the
// engine.
func (s *server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		}
		release, err := s.adm.Acquire(ctx)
		if err != nil {
			s.writeOverloaded(w, r, err)
			return
		}
		defer release()
		h(w, r)
	}
}

// writeOverloaded renders an admission or breaker rejection: 429 (shed)
// or 503 (breaker open), always with a Retry-After header so polite
// clients back off instead of hammering.  The rejection kind is stamped
// on the request's wide-event draft — a 503 status alone cannot tell an
// open breaker from a timeout.
func (s *server) writeOverloaded(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusTooManyRequests
	retryAfter := time.Second
	outcome := "shed"
	var oe *resilience.OverloadError
	var be *resilience.BreakerOpenError
	switch {
	case errors.As(err, &oe):
		retryAfter = oe.RetryAfter
	case errors.As(err, &be):
		status = http.StatusServiceUnavailable
		retryAfter = be.RetryAfter
		outcome = "breaker_open"
	}
	if d := eventDraftFrom(r.Context()); d != nil {
		d.outcome = outcome
	}
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.writeError(w, status, err)
}

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// writeJSONResp renders v; encoding failures after the header is out
// can only be logged.  Free function so the coordinator frontend (which
// is not a *server) shares the exact response shape.
func writeJSONResp(logger *slog.Logger, w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		logger.Error("encoding response", "err", err)
	}
}

func writeErrorResp(logger *slog.Logger, w http.ResponseWriter, status int, err error) {
	writeJSONResp(logger, w, status, map[string]string{"error": err.Error()})
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	writeJSONResp(s.logger, w, status, v)
}

func (s *server) writeError(w http.ResponseWriter, status int, err error) {
	writeErrorResp(s.logger, w, status, err)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Acquire()
	defer sn.Release()
	deg, reason := sn.Value().ix.Degraded()
	resp := map[string]interface{}{"status": "ok", "degraded": deg}
	if deg {
		// Degraded still answers exactly (scan fallback), so the server
		// stays healthy — the flag tells operators acceleration is gone.
		resp["reason"] = reason
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleLivez is pure liveness: the process is up and the mux answers.
// It never consults snapshots, breakers, or drain state — a draining
// server is still alive, and restarting it because it is draining
// would be the bug.
func (s *server) handleLivez(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// SetDraining flips the drain flag /readyz reports; main sets it when
// shutdown begins so load balancers stop routing here while in-flight
// requests finish.
func (s *server) SetDraining(v bool) {
	s.draining.Store(v)
	s.updateReadyGauge()
}

func (s *server) ready() (bool, map[string]interface{}) {
	sn := s.snap.Acquire()
	defer sn.Release()
	deg, degReason := sn.Value().ix.Degraded()
	breakerState := s.breaker.State()
	draining := s.draining.Load()
	reloading := s.reloading.Load()
	// Checkpoint lag warns (the detail below carries the age) without
	// blocking readiness until the configured MaxLag bound: a slow
	// checkpoint means growing recovery cost, not wrong answers, so the
	// instance keeps taking traffic while operators see the signal.
	lagged := s.ckpt != nil && s.ckpt.lagExceeded()
	ready := !draining && !reloading && !lagged && breakerState != resilience.BreakerOpen

	detail := map[string]interface{}{
		"ready":     ready,
		"draining":  draining,
		"reloading": reloading,
		"breaker":   breakerState.String(),
		"degraded":  deg,
		"snapshot": map[string]interface{}{
			"how":       sn.Value().how,
			"loaded_at": sn.Value().loadedAt,
		},
	}
	if deg {
		detail["degraded_reason"] = degReason
	}
	if f := s.lastReloadErr.Load(); f != nil {
		detail["last_reload_rejected"] = f
	}
	if s.ingest != nil {
		detail["ingest"] = s.ingest.detail()
		s.publishIngestGauges()
	}
	if s.ckpt != nil {
		detail["checkpoint"] = s.ckpt.detail()
	}
	return ready, detail
}

func (s *server) updateReadyGauge() {
	if ready, _ := s.ready(); ready {
		s.readyGauge.Set(1)
	} else {
		s.readyGauge.Set(0)
	}
}

// handleReadyz is readiness: 200 only when this instance should
// receive traffic.  Draining, a reload in progress, and an open
// circuit breaker all report 503 — the process is healthy (see
// /livez) but routing to it right now would hurt.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, detail := s.ready()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	s.updateReadyGauge()
	s.writeJSON(w, status, detail)
}

// Reload swaps in a fresh snapshot.  In artifact mode it re-reads the
// configured store and index files; in append mode it runs the
// checkpoint barrier (reloadAppend).  On any validation failure the
// current snapshot keeps serving untouched and the rejection is
// reported via /readyz and the
// scaleshift_reloads_total{result="rejected"} counter.
func (s *server) Reload() error {
	if s.rel == nil {
		if s.ingest != nil && s.ckpt != nil {
			return s.reloadAppend()
		}
		return fmt.Errorf("reload unavailable: server was not started from a -store artifact or with -checkpoint")
	}
	s.rel.mu.Lock()
	defer s.rel.mu.Unlock()

	s.reloading.Store(true)
	s.updateReadyGauge()
	defer func() {
		s.reloading.Store(false)
		s.updateReadyGauge()
	}()

	start := time.Now()
	sn, err := s.rel.load()
	if err != nil {
		s.reloadsRejected.Inc()
		s.lastReloadErr.Store(&reloadFailure{Err: err.Error(), At: time.Now()})
		s.logger.Error("reload rejected; old snapshot keeps serving", "err", err)
		return err
	}
	old := s.snap.Swap(sn)
	gen := s.genCount.Add(1)
	s.generation.Set(float64(gen))
	s.reloadsOK.Inc()
	s.lastReloadErr.Store(nil)
	s.publishSnapshotGauges(sn)
	s.logger.Info("snapshot swapped",
		"generation", gen, "how", sn.how,
		"windows", sn.ix.WindowCount(),
		"elapsed", time.Since(start).Round(time.Millisecond))
	// Old queries finish on the superseded generation; log when it
	// quiesces without blocking the reload path.
	go func() {
		<-old.Drained()
		// No reader can touch the superseded index anymore; release its
		// memory mapping (a no-op for heap-built indexes).
		if err := old.Value().ix.Close(); err != nil {
			s.logger.Warn("closing drained snapshot", "err", err)
		}
		s.logger.Info("previous snapshot drained", "generation", gen-1)
	}()
	return nil
}

// handleReload is the operational trigger: POST /admin/reload.  The
// response distinguishes a swap (200) from a rejected artifact (422,
// old snapshot still serving) and from reload being unconfigured
// (409).
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("reload requires POST"))
		return
	}
	if s.rel == nil && (s.ingest == nil || s.ckpt == nil) {
		s.writeError(w, http.StatusConflict, fmt.Errorf("reload unavailable: server was not started from a -store artifact or with -checkpoint"))
		return
	}
	if err := s.Reload(); err != nil {
		s.writeJSON(w, http.StatusUnprocessableEntity, map[string]interface{}{
			"error":   err.Error(),
			"serving": "previous snapshot (unchanged)",
		})
		return
	}
	sn := s.snap.Acquire()
	defer sn.Release()
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":     "reloaded",
		"generation": s.genCount.Load(),
		"how":        sn.Value().how,
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Ingest and checkpoint gauges are point-in-time reads; refresh them
	// here so a scrape never serves values stale since the last /readyz.
	if s.ingest != nil {
		s.publishIngestGauges()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.logger.Error("writing metrics", "err", err)
	}
}

// handleTraces serves the retained traces.  ?id= fetches one; the
// list accepts ?min_ms= (only traces at least that slow), ?error=1
// (only errored), and ?degraded=1 (only degraded-path) filters, which
// compose conjunctively.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	serveTraces(s.tracer, s.logger, w, r)
}

// serveTraces is shared by the shard and coordinator frontends.
func serveTraces(tracer *obs.Tracer, logger *slog.Logger, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if id := q.Get("id"); id != "" {
		tr, ok := tracer.Get(id)
		if !ok {
			writeErrorResp(logger, w, http.StatusNotFound, fmt.Errorf("trace %q not retained", id))
			return
		}
		writeJSONResp(logger, w, http.StatusOK, tr)
		return
	}
	minMs := 0.0
	if v := q.Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeErrorResp(logger, w, http.StatusBadRequest, fmt.Errorf("parameter min_ms: %w", err))
			return
		}
		minMs = f
	}
	errOnly := q.Get("error") == "1"
	degOnly := q.Get("degraded") == "1"
	traces := tracer.Recent()
	if minMs > 0 || errOnly || degOnly {
		filtered := traces[:0]
		for _, tr := range traces {
			if float64(tr.DurationNs)/1e6 < minMs {
				continue
			}
			if errOnly && !tr.Error {
				continue
			}
			if degOnly && !tr.Degraded {
				continue
			}
			filtered = append(filtered, tr)
		}
		traces = filtered
	}
	writeJSONResp(logger, w, http.StatusOK, traces)
}

// searchRequest is the decoded /search query string.
type searchRequest struct {
	q        vec.Vector
	eps      float64
	costs    core.CostBounds
	force    engine.PathKind
	nn       int
	limit    int
	describe string
}

// parseSearchRequest decodes the query parameters:
//
//	seq, start     address a window of the store (with optional len)
//	values         comma-separated explicit query values (alternative)
//	scale, shift   disguise the window (defaults 1, 0)
//	eps, eps_frac  error bound, absolute or as a fraction of the mean
//	               window SE-norm (default eps_frac=0.02)
//	nn             k-nearest-neighbour mode when > 0
//	path           auto | rtree | trail | scan
//	scale_min, scale_max, shift_abs   transformation cost bounds
//	limit          cap on returned matches (default 100, 0 = all)
func (s *server) parseSearchRequest(sn *snapshot, r *http.Request) (*searchRequest, error) {
	p := r.URL.Query()
	floatParam := func(name string, def float64) (float64, error) {
		v := p.Get(name)
		if v == "" {
			return def, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("parameter %s: %w", name, err)
		}
		return f, nil
	}
	intParam := func(name string, def int) (int, error) {
		v := p.Get(name)
		if v == "" {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("parameter %s: %w", name, err)
		}
		return n, nil
	}

	req := &searchRequest{}
	window := sn.ix.Options().WindowLen

	// Query vector.
	if values := p.Get("values"); values != "" {
		fields := strings.Split(values, ",")
		req.q = make(vec.Vector, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("parameter values, field %d: %w", i+1, err)
			}
			req.q[i] = v
		}
		req.describe = fmt.Sprintf("%d explicit values", len(req.q))
	} else if p.Get("seq") != "" || p.Get("start") != "" {
		seq, err := intParam("seq", 0)
		if err != nil {
			return nil, err
		}
		start, err := intParam("start", 0)
		if err != nil {
			return nil, err
		}
		n, err := intParam("len", window)
		if err != nil {
			return nil, err
		}
		scale, err := floatParam("scale", 1)
		if err != nil {
			return nil, err
		}
		shift, err := floatParam("shift", 0)
		if err != nil {
			return nil, err
		}
		w := make(vec.Vector, n)
		if err := sn.ix.QueryWindow(seq, start, n, w); err != nil {
			return nil, err
		}
		req.q = vec.Apply(w, scale, shift)
		req.describe = fmt.Sprintf("window %d:%d len %d (a=%g b=%g)", seq, start, n, scale, shift)
	} else {
		return nil, fmt.Errorf("provide seq=&start= or values=")
	}

	// Epsilon.
	eps, err := floatParam("eps", -1)
	if err != nil {
		return nil, err
	}
	if eps < 0 {
		frac, err := floatParam("eps_frac", 0.02)
		if err != nil {
			return nil, err
		}
		eps = frac * sn.normScale
	}
	req.eps = eps

	// Cost bounds.
	req.costs = core.UnboundedCosts()
	if v, err := floatParam("scale_min", 0); err != nil {
		return nil, err
	} else if v != 0 {
		req.costs.ScaleMin = v
	}
	if v, err := floatParam("scale_max", 0); err != nil {
		return nil, err
	} else if v != 0 {
		req.costs.ScaleMax = v
	}
	if v, err := floatParam("shift_abs", 0); err != nil {
		return nil, err
	} else if v != 0 {
		req.costs.ShiftMin, req.costs.ShiftMax = -v, v
	}

	if req.force, err = engine.ParsePathKind(p.Get("path")); p.Get("path") != "" && err != nil {
		return nil, err
	} else if p.Get("path") == "" {
		req.force = engine.PathAuto
	}
	if req.nn, err = intParam("nn", 0); err != nil {
		return nil, err
	}
	if req.nn > 0 && req.force != engine.PathAuto {
		return nil, fmt.Errorf("path applies to range queries; nearest-neighbour search is pinned to the index probe")
	}
	if req.limit, err = intParam("limit", 100); err != nil {
		return nil, err
	}
	return req, nil
}

// matchJSON is one reported match.
type matchJSON struct {
	Name  string  `json:"name"`
	Seq   int     `json:"seq"`
	Start int     `json:"start"`
	End   int     `json:"end"`
	Dist  float64 `json:"dist"`
	Scale float64 `json:"scale"`
	Shift float64 `json:"shift"`
}

// statsJSON is the per-query cost accounting in the response.
type statsJSON struct {
	Candidates     int   `json:"candidates"`
	FalseAlarms    int   `json:"false_alarms"`
	CostRejected   int   `json:"cost_rejected"`
	IndexNodeReads int   `json:"index_node_reads"`
	DataPageReads  int   `json:"data_page_reads"`
	PlanNs         int64 `json:"plan_ns"`
	ProbeNs        int64 `json:"probe_ns"`
	VerifyNs       int64 `json:"verify_ns"`
}

// planJSON summarizes the chosen plan.
type planJSON struct {
	Path           string  `json:"path"`
	Forced         bool    `json:"forced,omitempty"`
	Degraded       bool    `json:"degraded,omitempty"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	Pieces         int     `json:"pieces,omitempty"`
	EstCandidates  float64 `json:"est_candidates"`
}

// searchResponse is the /search payload.
type searchResponse struct {
	TraceID   string      `json:"trace_id,omitempty"`
	Query     string      `json:"query"`
	Eps       float64     `json:"eps"`
	ElapsedNs int64       `json:"elapsed_ns"`
	Total     int         `json:"total_matches"`
	Matches   []matchJSON `json:"matches"`
	Truncated bool        `json:"truncated,omitempty"`
	Stats     statsJSON   `json:"stats"`
	Plan      *planJSON   `json:"plan,omitempty"`
}

// matchesJSON converts engine matches, applying the per-query limit.
func matchesJSON(matches []core.Match, qlen, limit int) (out []matchJSON, truncated bool) {
	out = make([]matchJSON, 0, len(matches))
	for i, m := range matches {
		if limit > 0 && i >= limit {
			truncated = true
			break
		}
		out = append(out, matchJSON{
			Name: m.Name, Seq: m.Seq, Start: m.Start, End: m.Start + qlen,
			Dist: m.Dist, Scale: m.Scale, Shift: m.Shift,
		})
	}
	return out, truncated
}

// breakerGate admits or rejects a query that would run on the
// degraded scan path.  It returns a record func (no-op on a healthy
// index) to call with the query's outcome.
func (s *server) breakerGate(w http.ResponseWriter, r *http.Request, sn *snapshot) (record func(d time.Duration, err error), ok bool) {
	if deg, _ := sn.ix.Degraded(); !deg {
		return func(time.Duration, error) {}, true
	}
	if err := s.breaker.Allow(); err != nil {
		s.writeOverloaded(w, r, err)
		return nil, false
	}
	return func(d time.Duration, err error) {
		// Only outcomes that reflect the scan path's health may move the
		// breaker.  A client that hung up proved nothing; neither did a
		// request the engine rejected as the client's own mistake (an
		// invalid query or an unsupported operation, served as 4xx) —
		// recording those would let client misuse trip the breaker and
		// convert into self-inflicted 503s for valid queries.
		switch {
		case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
			s.breaker.RecordNeutral()
		case errors.Is(err, core.ErrInvalidQuery) || errors.Is(err, engine.ErrUnsupported):
			s.breaker.RecordNeutral()
		default:
			s.breaker.Record(d, err)
		}
	}, true
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	pin := s.snap.Acquire()
	defer pin.Release()
	sn := pin.Value()

	if r.Method == http.MethodPost {
		s.handleSearchBatch(w, r, sn)
		return
	}

	req, err := s.parseSearchRequest(sn, r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	record, ok := s.breakerGate(w, r, sn)
	if !ok {
		return
	}

	// Root the query's trace: the engine's plan/probe/verify spans (and
	// the per-descent spans below them) become children of this span,
	// so the committed trace is one complete timeline of the request.
	// An inbound W3C traceparent's trace-id is adopted as the trace's
	// identity, and a traceparent is echoed either way so the caller can
	// stitch the cross-process timeline.
	ctx, root := s.tracer.StartTraceWithID(r.Context(), "search",
		obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)))
	root.SetAttr("query", req.describe)
	if id := obs.TraceIDFromContext(ctx); id != "" {
		w.Header().Set(obs.TraceparentHeader, obs.FormatTraceparent(id))
	}

	var stats core.SearchStats
	var matches []core.Match
	var ex *engine.Explain
	window := sn.ix.Options().WindowLen
	start := time.Now()
	switch {
	case req.nn > 0:
		matches, err = sn.ix.NearestNeighborsWithCostsContext(ctx, req.q, req.nn, req.costs, &stats)
	case len(req.q) > window:
		matches, ex, err = sn.ix.SearchLongPlannedContext(ctx, req.q, req.eps, req.costs, req.force, &stats)
	default:
		matches, ex, err = sn.ix.SearchPlannedContext(ctx, req.q, req.eps, req.costs, req.force, nil, &stats)
	}
	elapsed := time.Since(start)
	record(elapsed, err)
	if err != nil {
		root.SetAttr("error", err.Error())
		root.End()
		fillSearchDraft(ctx, root, req.describe, &stats, ex, 0)
		s.writeSearchError(w, r, err)
		return
	}
	root.SetInt("matches", int64(len(matches)))
	if ex != nil && ex.Degraded {
		// Flagging the root span routes the trace into the tracer's
		// degraded retention bucket (and the ?degraded=1 filter).
		root.SetBool("degraded", true)
	}
	root.End() // commits the trace, so /debug/traces can serve it immediately
	fillSearchDraft(ctx, root, req.describe, &stats, ex, len(matches))

	resp := searchResponse{
		TraceID:   stats.TraceID,
		Query:     req.describe,
		Eps:       req.eps,
		ElapsedNs: elapsed.Nanoseconds(),
		Total:     len(matches),
		Stats: statsJSON{
			Candidates:     stats.Candidates,
			FalseAlarms:    stats.FalseAlarms,
			CostRejected:   stats.CostRejected,
			IndexNodeReads: stats.IndexNodeAccesses,
			DataPageReads:  stats.DataPageAccesses,
			PlanNs:         stats.PlanTime.Nanoseconds(),
			ProbeNs:        stats.ProbeTime.Nanoseconds(),
			VerifyNs:       stats.VerifyTime.Nanoseconds(),
		},
	}
	if resp.TraceID == "" {
		resp.TraceID = obs.TraceIDFromContext(ctx)
	}
	if ex != nil {
		resp.Plan = &planJSON{
			Path:           ex.Chosen.String(),
			Forced:         ex.Forced,
			Degraded:       ex.Degraded,
			DegradedReason: ex.DegradedReason,
			Pieces:         ex.Pieces,
			EstCandidates:  ex.EstCandidates,
		}
	}
	resp.Matches, resp.Truncated = matchesJSON(matches, len(req.q), req.limit)
	s.writeJSON(w, http.StatusOK, resp)
}

// writeSearchError maps an engine error to a response.  A canceled
// request whose client hung up gets a token 499 (nothing will read
// it); the server-imposed deadline reports 503 with a retry hint;
// anything else is the query's fault (422).
func (s *server) writeSearchError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		s.writeError(w, 499, err) // nginx's "client closed request"
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("request timed out after %v: %w", s.requestTimeout, err))
	default:
		s.writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// batchQueryJSON is one query of a POST /search batch.  The fields
// mirror the GET parameters; Values and Seq/Start are alternatives
// exactly as in the query string.
type batchQueryJSON struct {
	Seq      *int      `json:"seq,omitempty"`
	Start    *int      `json:"start,omitempty"`
	Len      int       `json:"len,omitempty"`
	Scale    *float64  `json:"scale,omitempty"`
	Shift    *float64  `json:"shift,omitempty"`
	Values   []float64 `json:"values,omitempty"`
	Eps      float64   `json:"eps,omitempty"`
	EpsFrac  float64   `json:"eps_frac,omitempty"`
	ScaleMin float64   `json:"scale_min,omitempty"`
	ScaleMax float64   `json:"scale_max,omitempty"`
	ShiftAbs float64   `json:"shift_abs,omitempty"`
}

// batchRequestJSON is the POST /search body.
type batchRequestJSON struct {
	Queries     []batchQueryJSON `json:"queries"`
	Path        string           `json:"path,omitempty"`
	Limit       *int             `json:"limit,omitempty"`
	Parallelism int              `json:"parallelism,omitempty"`
}

// batchItemJSON is one query's slot in the batch response, positionally
// aligned with the request's queries.
type batchItemJSON struct {
	Status    string      `json:"status"` // complete | incomplete
	Eps       float64     `json:"eps,omitempty"`
	Total     int         `json:"total_matches"`
	Matches   []matchJSON `json:"matches"`
	Truncated bool        `json:"truncated,omitempty"`
}

// batchResponseJSON is the POST /search payload.
type batchResponseJSON struct {
	TraceID   string          `json:"trace_id,omitempty"`
	ElapsedNs int64           `json:"elapsed_ns"`
	Completed int             `json:"completed"`
	Canceled  bool            `json:"canceled,omitempty"`
	Results   []batchItemJSON `json:"results"`
	Stats     statsJSON       `json:"stats"`
}

// toBatchQuery resolves one JSON query against the snapshot.
func (s *server) toBatchQuery(sn *snapshot, i int, bq batchQueryJSON) (core.BatchQuery, int, error) {
	window := sn.ix.Options().WindowLen
	var q vec.Vector
	switch {
	case len(bq.Values) > 0:
		q = vec.Vector(bq.Values)
	case bq.Seq != nil || bq.Start != nil:
		seq, start, n := 0, 0, window
		if bq.Seq != nil {
			seq = *bq.Seq
		}
		if bq.Start != nil {
			start = *bq.Start
		}
		if bq.Len > 0 {
			n = bq.Len
		}
		w := make(vec.Vector, n)
		if err := sn.ix.QueryWindow(seq, start, n, w); err != nil {
			return core.BatchQuery{}, 0, fmt.Errorf("query %d: %w", i, err)
		}
		scale, shift := 1.0, 0.0
		if bq.Scale != nil {
			scale = *bq.Scale
		}
		if bq.Shift != nil {
			shift = *bq.Shift
		}
		q = vec.Apply(w, scale, shift)
	default:
		return core.BatchQuery{}, 0, fmt.Errorf("query %d: provide seq/start or values", i)
	}
	if len(q) > window {
		return core.BatchQuery{}, 0, fmt.Errorf("query %d: long queries (len %d > window %d) are not batchable; use GET /search", i, len(q), window)
	}

	eps := bq.Eps
	if eps <= 0 {
		frac := bq.EpsFrac
		if frac <= 0 {
			frac = 0.02
		}
		eps = frac * sn.normScale
	}
	costs := core.UnboundedCosts()
	if bq.ScaleMin != 0 {
		costs.ScaleMin = bq.ScaleMin
	}
	if bq.ScaleMax != 0 {
		costs.ScaleMax = bq.ScaleMax
	}
	if bq.ShiftAbs != 0 {
		costs.ShiftMin, costs.ShiftMax = -bq.ShiftAbs, bq.ShiftAbs
	}
	return core.BatchQuery{Q: q, Eps: eps, Costs: costs}, len(q), nil
}

// handleSearchBatch answers POST /search: a JSON batch fanned out
// through the engine's batch executor under the request context, so a
// dropped connection cancels every in-flight query of the batch within
// the engine's cancellation grain.
func (s *server) handleSearchBatch(w http.ResponseWriter, r *http.Request, sn *snapshot) {
	var breq batchRequestJSON
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, fmt.Errorf("decoding batch body: %w", err))
		return
	}
	if len(breq.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("batch has no queries"))
		return
	}
	if len(breq.Queries) > maxBatchQueries {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d queries exceeds the %d-query limit", len(breq.Queries), maxBatchQueries))
		return
	}
	force := engine.PathAuto
	if breq.Path != "" {
		var err error
		if force, err = engine.ParsePathKind(breq.Path); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	limit := 100
	if breq.Limit != nil {
		limit = *breq.Limit
	}

	queries := make([]core.BatchQuery, len(breq.Queries))
	qlens := make([]int, len(breq.Queries))
	for i, bq := range breq.Queries {
		q, qlen, err := s.toBatchQuery(sn, i, bq)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		queries[i] = q
		qlens[i] = qlen
	}

	record, ok := s.breakerGate(w, r, sn)
	if !ok {
		return
	}

	ctx, root := s.tracer.StartTraceWithID(r.Context(), "search_batch",
		obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)))
	root.SetInt("queries", int64(len(queries)))
	if id := obs.TraceIDFromContext(ctx); id != "" {
		w.Header().Set(obs.TraceparentHeader, obs.FormatTraceparent(id))
	}

	var stats core.SearchStats
	start := time.Now()
	results, _, statuses, err := sn.ix.SearchBatchPlannedContext(ctx, queries, force, breq.Parallelism, &stats)
	elapsed := time.Since(start)
	record(elapsed, err)
	describe := fmt.Sprintf("batch of %d queries", len(queries))
	canceled := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if err != nil && !canceled {
		root.SetAttr("error", err.Error())
		root.End()
		fillSearchDraft(ctx, root, describe, &stats, nil, 0)
		s.writeSearchError(w, r, err)
		return
	}
	if canceled && r.Context().Err() != nil && errors.Is(err, context.Canceled) {
		// The client is gone; there is nobody to render partial
		// results for.
		root.SetAttr("error", "client disconnected")
		root.End()
		fillSearchDraft(ctx, root, describe, &stats, nil, 0)
		s.writeError(w, 499, err)
		return
	}
	if deg, _ := sn.ix.Degraded(); deg {
		root.SetBool("degraded", true)
	}
	root.End()

	resp := batchResponseJSON{
		TraceID:   obs.TraceIDFromContext(ctx),
		ElapsedNs: elapsed.Nanoseconds(),
		Canceled:  canceled,
		Results:   make([]batchItemJSON, len(results)),
		Stats: statsJSON{
			Candidates:     stats.Candidates,
			FalseAlarms:    stats.FalseAlarms,
			CostRejected:   stats.CostRejected,
			IndexNodeReads: stats.IndexNodeAccesses,
			DataPageReads:  stats.DataPageAccesses,
			PlanNs:         stats.PlanTime.Nanoseconds(),
			ProbeNs:        stats.ProbeTime.Nanoseconds(),
			VerifyNs:       stats.VerifyTime.Nanoseconds(),
		},
	}
	for i, matches := range results {
		item := batchItemJSON{Status: statuses[i].String(), Eps: queries[i].Eps}
		if statuses[i] == core.BatchComplete {
			resp.Completed++
			item.Total = len(matches)
			item.Matches, item.Truncated = matchesJSON(matches, qlens[i], limit)
		} else {
			item.Matches = []matchJSON{}
		}
		resp.Results[i] = item
	}
	status := http.StatusOK
	if canceled {
		// Partial results from a server-side timeout: accepted, but
		// flagged.  206 tells the client some slots are incomplete.
		status = http.StatusPartialContent
	}
	totalMatches := 0
	for _, item := range resp.Results {
		totalMatches += item.Total
	}
	fillSearchDraft(ctx, root, describe, &stats, nil, totalMatches)
	s.emitBatchSlotEvents(resp.TraceID, status, &resp)
	s.writeJSON(w, status, resp)
}
