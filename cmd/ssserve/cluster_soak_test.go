package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"scaleshift/internal/atomicfile"
	"scaleshift/internal/cluster"
	"scaleshift/internal/core"
	"scaleshift/internal/faulty"
	"scaleshift/internal/obs"
	"scaleshift/internal/query"
	"scaleshift/internal/resilience"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

// TestMain lets this test binary double as the ssserve executable: the
// cluster soak re-executes itself with SSSERVE_SUBPROCESS_ARGS set to
// spawn real shard processes (same build flags, including -race)
// without needing a separate compiled binary on disk.
func TestMain(m *testing.M) {
	if v := os.Getenv("SSSERVE_SUBPROCESS_ARGS"); v != "" {
		var args []string
		if err := json.Unmarshal([]byte(v), &args); err != nil {
			fmt.Fprintln(os.Stderr, "ssserve subprocess: bad args:", err)
			os.Exit(2)
		}
		if err := run(args); err != nil {
			fmt.Fprintln(os.Stderr, "ssserve:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// shardProc is one spawned shard process.
type shardProc struct {
	cmd    *exec.Cmd
	addr   string // direct listen address, bypassing any proxy
	args   []string
	stderr *bytes.Buffer
}

func spawnShard(t *testing.T, args []string) *shardProc {
	t.Helper()
	enc, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SSSERVE_SUBPROCESS_ARGS="+string(enc))
	var stderr bytes.Buffer
	cmd.Stdout = io.Discard
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addr := ""
	for i, a := range args {
		if a == "-addr" && i+1 < len(args) {
			addr = args[i+1]
		}
	}
	return &shardProc{cmd: cmd, addr: addr, args: args, stderr: &stderr}
}

func (p *shardProc) awaitReady(t *testing.T, timeout time.Duration) {
	t.Helper()
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get("http://" + p.addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %s not ready within %s; stderr:\n%s", p.addr, timeout, p.stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (p *shardProc) kill(t *testing.T) {
	t.Helper()
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

func (p *shardProc) stop(t *testing.T) {
	t.Helper()
	if p.cmd.ProcessState != nil {
		return // already reaped
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// clusterCanon is the cross-representation canonical match key: names
// instead of sequence ids, so oracle indexes built over different
// stores (union, union-minus-a-shard) compare directly, and float bits
// so "equal" means bit-identical.
type clusterCanon struct {
	name              string
	start             int
	dist, scale, shft uint64
}

func canonFromCore(ms []core.Match) []clusterCanon {
	out := make([]clusterCanon, len(ms))
	for i, m := range ms {
		out[i] = clusterCanon{m.Name, m.Start, math.Float64bits(m.Dist), math.Float64bits(m.Scale), math.Float64bits(m.Shift)}
	}
	sortClusterCanon(out)
	return out
}

func canonFromJSON(ms []matchJSON) []clusterCanon {
	out := make([]clusterCanon, len(ms))
	for i, m := range ms {
		out[i] = clusterCanon{m.Name, m.Start, math.Float64bits(m.Dist), math.Float64bits(m.Scale), math.Float64bits(m.Shift)}
	}
	sortClusterCanon(out)
	return out
}

func sortClusterCanon(ms []clusterCanon) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].start < ms[j].start
	})
}

func canonEqual(a, b []clusterCanon) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clusterSpec is one soak query with both ground truths precomputed:
// the full-coverage answer and the answer with the faulted shard's
// slice removed.
type clusterSpec struct {
	path  string // query string, absolute eps, limit=0
	knn   int
	full  []clusterCanon // oracle over the union
	minus []clusterCanon // oracle over union minus the faulted shard
}

// TestSoakCluster is the distributed chaos harness: three real shard
// processes (this test binary re-executed, so -race covers them too),
// one behind a mode-switchable TCP chaos proxy, an in-process
// coordinator over the fleet, and concurrent clients checking every
// answer against precomputed oracles while the proxy stalls, resets,
// and the shard process is SIGKILLed and restarted mid-query.
//
// Invariants asserted on every single response, regardless of phase:
//
//   - 200 => coverage complete and matches bit-identical to the
//     single-node oracle over the union store;
//   - 206 => every failed coverage entry names the faulted shard, and
//     matches are bit-identical to the oracle over the surviving data
//     (exact for the covered slice — never silently wrong);
//   - nothing else: no 5xx, ever (the faulted fault domain degrades
//     coverage, it does not break serving);
//   - both 200s and 206s are actually observed (the chaos bit);
//   - wide events attribute partial coverage to the faulted shard only;
//   - the coordinator process leaks no goroutines.
//
// Duration comes from SOAK_SECONDS (default 2); a metrics snapshot is
// written to SOAK_CLUSTER_METRICS_OUT when set.
func TestSoakCluster(t *testing.T) {
	duration := 2 * time.Second
	if v := os.Getenv("SOAK_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs < 1 {
			t.Fatalf("SOAK_SECONDS = %q", v)
		}
		duration = time.Duration(secs) * time.Second
	}
	baseline := runtime.NumGoroutine()

	// --- Artifacts: one union store, hash-partitioned across 3 shards.
	const shards = 3
	const faulted = 1
	dir := t.TempDir()
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 12
	cfg.Days = 160
	cfg.Seed = 7
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	man, err := cluster.WriteShardArtifacts(st, dir, shards, 7)
	if err != nil {
		t.Fatal(err)
	}

	// --- Oracles: single-node indexes over the union and over the
	// union minus the faulted shard's slice.
	opts := core.DefaultOptions()
	opts.WindowLen = 32
	buildOracle := func(s *store.Store) *core.Index {
		ix, err := core.NewIndex(s, opts)
		if err == nil {
			err = ix.Build()
		}
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	unionIx := buildOracle(st)
	faultedSeqs := make(map[int]bool)
	for _, g := range man.Shards[faulted].Seqs {
		faultedSeqs[g] = true
	}
	minusSt := store.New()
	for seq := 0; seq < st.NumSequences(); seq++ {
		if faultedSeqs[seq] {
			continue
		}
		n := st.SequenceLen(seq)
		vals := make([]float64, n)
		if err := st.Window(seq, 0, n, vals, nil); err != nil {
			t.Fatal(err)
		}
		minusSt.AppendSequence(st.SequenceName(seq), vals)
	}
	minusIx := buildOracle(minusSt)
	norm, err := query.SENormScale(st, opts.WindowLen, 200, 3)
	if err != nil {
		t.Fatal(err)
	}

	specs := buildClusterSpecs(t, st, unionIx, minusIx, norm)

	// --- Fleet: three shard processes; the faulted one sits behind the
	// chaos proxy, so its fault domain can stall, reset, or die without
	// touching its siblings.
	procs := make([]*shardProc, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		addr := freePort(t)
		args := []string{
			"-store", filepath.Join(dir, man.Shards[i].Dir, "store.bin"),
			"-addr", addr, "-window", "32", "-fc", "3",
		}
		procs[i] = spawnShard(t, args)
		addrs[i] = addr
	}
	defer func() {
		for _, p := range procs {
			p.stop(t)
		}
	}()
	for _, p := range procs {
		p.awaitReady(t, 30*time.Second)
	}
	proxy, err := faulty.NewProxy(addrs[faulted])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	coordAddrs := append([]string(nil), addrs...)
	coordAddrs[faulted] = proxy.Addr()

	// --- Coordinator: in-process (so the leak check sees it), talking
	// real TCP to the fleet.  Fast breaker so coverage recovers within a
	// phase; a modest hedge so the stall phase exercises hedging.
	obs.Enable()
	t.Cleanup(obs.Disable)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	coord, err := cluster.NewCoordinator(t.Context(), cluster.CoordinatorConfig{
		Manifest: man,
		Addrs:    coordAddrs,
		Shard: cluster.ShardConfig{
			AttemptTimeout: 500 * time.Millisecond,
			Retries:        1,
			BackoffBase:    10 * time.Millisecond,
			BackoffMax:     50 * time.Millisecond,
			HedgeAfter:     250 * time.Millisecond,
			Breaker: resilience.BreakerConfig{
				FailureThreshold:  3,
				OpenTimeout:       400 * time.Millisecond,
				HalfOpenSuccesses: 1,
			},
		},
		ConnectTimeout: 30 * time.Second,
		Logger:         logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	front, err := newCoordServer(coordConfig{
		coord:  coord,
		tracer: obs.NewTracer(64),
		logger: logger,
		serve:  testServeFlags(),
		quorum: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(front)
	defer ts.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	// --- Concurrent checkers.
	var (
		fullOKs, partials, badStatus, mismatches atomic.Int64
		failMu                                   sync.Mutex
		failures                                 []string
	)
	fail := func(format string, args ...interface{}) {
		mismatches.Add(1)
		failMu.Lock()
		defer failMu.Unlock()
		if len(failures) < 10 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}
	checkResponse := func(spec *clusterSpec, status int, body []byte) {
		var resp coordRespJSON
		switch status {
		case http.StatusOK:
			if err := json.Unmarshal(body, &resp); err != nil {
				fail("200 undecodable: %v", err)
				return
			}
			if !resp.Coverage.Complete {
				fail("200 with incomplete coverage: %+v", resp.Coverage)
				return
			}
			if !canonEqual(canonFromJSON(resp.Matches), spec.full) {
				fail("200 for %s: %d matches differ from the %d-match oracle",
					spec.path, len(resp.Matches), len(spec.full))
				return
			}
			fullOKs.Add(1)
		case http.StatusPartialContent:
			if err := json.Unmarshal(body, &resp); err != nil {
				fail("206 undecodable: %v", err)
				return
			}
			if resp.Coverage.Failed == 0 {
				fail("206 with zero failed shards")
				return
			}
			for _, sh := range resp.Coverage.Shards {
				if sh.State == "failed" && sh.ID != faulted {
					fail("206 attributes failure to healthy shard %d: %s", sh.ID, sh.Error)
					return
				}
			}
			if !canonEqual(canonFromJSON(resp.Matches), spec.minus) {
				fail("206 for %s: %d matches differ from the %d-match survivors oracle",
					spec.path, len(resp.Matches), len(spec.minus))
				return
			}
			partials.Add(1)
		default:
			badStatus.Add(1)
			fail("status %d for %s: %.200s", status, spec.path, body)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				spec := &specs[rng.Intn(len(specs))]
				resp, err := client.Get(ts.URL + spec.path)
				if err != nil {
					fail("coordinator request failed outright: %v", err)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				checkResponse(spec, resp.StatusCode, body)
			}
		}(int64(w) + 99)
	}

	// --- Phase driver: pass → stall → pass → reset → pass →
	// kill+restart, repeating until time is up.  The pass phases between
	// faults give the breaker room to half-open and heal, so both full
	// and partial coverage are exercised every cycle.
	killRounds := 0
	end := time.Now().Add(duration)
	phaseSleep := func(d time.Duration) bool {
		time.Sleep(d)
		return time.Now().Before(end)
	}
	for {
		proxy.SetMode(faulty.ProxyPass)
		if !phaseSleep(600 * time.Millisecond) {
			break
		}
		proxy.SetMode(faulty.ProxyStall)
		if !phaseSleep(400 * time.Millisecond) {
			break
		}
		proxy.SetMode(faulty.ProxyPass)
		if !phaseSleep(600 * time.Millisecond) {
			break
		}
		proxy.SetMode(faulty.ProxyReset)
		if !phaseSleep(400 * time.Millisecond) {
			break
		}
		proxy.SetMode(faulty.ProxyPass)
		if !phaseSleep(600 * time.Millisecond) {
			break
		}
		// Kill the shard process mid-traffic and bring a fresh one up on
		// the same port and artifact.
		procs[faulted].kill(t)
		killRounds++
		if !phaseSleep(400 * time.Millisecond) {
			break
		}
		procs[faulted] = spawnShard(t, procs[faulted].args)
		procs[faulted].awaitReady(t, 30*time.Second)
		if time.Now().After(end) {
			break
		}
	}
	// Heal the world before stopping so the final state is a full fleet.
	proxy.SetMode(faulty.ProxyPass)
	if procs[faulted].cmd.ProcessState != nil {
		procs[faulted] = spawnShard(t, procs[faulted].args)
		procs[faulted].awaitReady(t, 30*time.Second)
	}
	close(stop)
	wg.Wait()

	// --- Verdict.
	failMu.Lock()
	for _, f := range failures {
		t.Error(f)
	}
	failMu.Unlock()
	t.Logf("cluster soak: %d full, %d partial, %d bad-status, %d mismatches, %d kill+restart rounds",
		fullOKs.Load(), partials.Load(), badStatus.Load(), mismatches.Load(), killRounds)
	if fullOKs.Load() == 0 {
		t.Error("no full-coverage answer observed; the healthy phases never ran")
	}
	if partials.Load() == 0 {
		t.Error("no partial-coverage answer observed; the chaos never bit")
	}
	if badStatus.Load() != 0 {
		t.Errorf("%d responses outside the 200/206 coverage contract", badStatus.Load())
	}

	// Wide events: every partial search event attributes its failures to
	// the faulted shard and nothing else.
	events, _, _ := front.events.Drain(0, 0)
	partialEvents := 0
	for _, e := range events {
		if e.Kind != "search" || e.Status != http.StatusPartialContent {
			continue
		}
		partialEvents++
		if len(e.Shards) != shards {
			t.Errorf("partial event has %d shard entries, want %d", len(e.Shards), shards)
		}
		for _, sh := range e.Shards {
			if sh.State == "failed" && sh.ID != faulted {
				t.Errorf("partial event attributes failure to healthy shard %d", sh.ID)
			}
		}
	}
	if partialEvents == 0 {
		t.Error("no partial wide event recorded")
	}

	// Goroutine-leak assertion: the coordinator, its shard clients, the
	// proxy, and the checkers must all wind down.  Stopping the fleet
	// first also severs the shard clients' keep-alive connections and the
	// exec stdout/stderr pumps, which otherwise live as long as the
	// subprocesses.
	ts.Close()
	proxy.Close()
	for _, p := range procs {
		p.stop(t)
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			var buf bytes.Buffer
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if out := os.Getenv("SOAK_CLUSTER_METRICS_OUT"); out != "" {
		if err := atomicfile.WriteFile(out, obs.Default.WriteJSON); err != nil {
			t.Fatalf("writing cluster soak metrics snapshot: %v", err)
		}
		t.Logf("metrics snapshot written to %s", out)
	}
}

// buildClusterSpecs precomputes the soak's query mix with both oracles:
// range queries at several radii plus k-NN, all with explicit value
// vectors (so no query depends on the faulted shard's /window) and
// absolute eps (so every shard searches the same radius).
func buildClusterSpecs(t *testing.T, st *store.Store, unionIx, minusIx *core.Index, norm float64) []clusterSpec {
	t.Helper()
	fracs := []float64{0.05, 0.1, 0.2}
	var specs []clusterSpec
	mkValues := func(seq, start, n int, scale, shift float64) (core.Match, string) {
		raw := make([]float64, n)
		if err := st.Window(seq, start, n, raw, nil); err != nil {
			t.Fatal(err)
		}
		fields := make([]string, n)
		for i, v := range raw {
			fields[i] = strconv.FormatFloat(v*scale+shift, 'g', -1, 64)
		}
		return core.Match{}, joinComma(fields)
	}
	parseBack := func(vals string) []float64 {
		var out []float64
		for _, f := range splitComma(vals) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v)
		}
		return out
	}
	for i := 0; i < 10; i++ {
		seq := (i * 5) % st.NumSequences()
		start := (7 + i*13) % (st.SequenceLen(seq) - 32)
		scale := 1 + 0.2*float64(i%3)
		shift := float64(i%4) - 1.5
		_, vals := mkValues(seq, start, 32, scale, shift)
		q := parseBack(vals)
		eps := fracs[i%len(fracs)] * norm
		var stats core.SearchStats
		full, _, err := unionIx.SearchPlannedContext(t.Context(), q, eps, core.UnboundedCosts(), 0, nil, &stats)
		if err != nil {
			t.Fatal(err)
		}
		minus, _, err := minusIx.SearchPlannedContext(t.Context(), q, eps, core.UnboundedCosts(), 0, nil, &stats)
		if err != nil {
			t.Fatal(err)
		}
		p := url.Values{}
		p.Set("values", vals)
		p.Set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
		p.Set("limit", "0")
		specs = append(specs, clusterSpec{
			path: "/search?" + p.Encode(),
			full: canonFromCore(full), minus: canonFromCore(minus),
		})
	}
	for i := 0; i < 4; i++ {
		const k = 5
		seq := (3 + i*7) % st.NumSequences()
		start := (11 + i*29) % (st.SequenceLen(seq) - 32)
		_, vals := mkValues(seq, start, 32, 1, 0)
		q := parseBack(vals)
		var stats core.SearchStats
		full, err := unionIx.NearestNeighborsWithCostsContext(t.Context(), q, k, core.UnboundedCosts(), &stats)
		if err != nil {
			t.Fatal(err)
		}
		minus, err := minusIx.NearestNeighborsWithCostsContext(t.Context(), q, k, core.UnboundedCosts(), &stats)
		if err != nil {
			t.Fatal(err)
		}
		p := url.Values{}
		p.Set("values", vals)
		p.Set("eps", "1")
		p.Set("nn", strconv.Itoa(k))
		p.Set("limit", "0")
		specs = append(specs, clusterSpec{
			path: "/search?" + p.Encode(), knn: k,
			full: canonFromCore(full), minus: canonFromCore(minus),
		})
	}
	return specs
}

func joinComma(fields []string) string {
	out := fields[0]
	for _, f := range fields[1:] {
		out += "," + f
	}
	return out
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}
