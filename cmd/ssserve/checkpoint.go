package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"scaleshift/internal/ckpt"
	"scaleshift/internal/obs"
	"scaleshift/internal/query"
	"scaleshift/internal/wal"
)

// Checkpoint metrics, registered lazily on the first instrumented
// checkpoint (the phase label values are fixed, so recording stays
// allocation-free).
var ckm struct {
	once sync.Once

	checkpoints *obs.Counter
	capture     *obs.Histogram
	install     *obs.Histogram
	truncateDur *obs.Histogram
}

func initCkptMetrics() {
	r := obs.Default
	const help = "Checkpoint phase latency, by phase: capture (ingest quiesced), install (serialize + durable write), truncate (WAL prefix drop)."
	ckm.checkpoints = r.Counter("scaleshift_checkpoints_total", "Durable checkpoints installed.")
	ckm.capture = r.DurationHistogram("scaleshift_checkpoint_phase_seconds", help, obs.Label{Key: "phase", Value: "capture"})
	ckm.install = r.DurationHistogram("scaleshift_checkpoint_phase_seconds", help, obs.Label{Key: "phase", Value: "install"})
	ckm.truncateDur = r.DurationHistogram("scaleshift_checkpoint_phase_seconds", help, obs.Label{Key: "phase", Value: "truncate"})
}

// recordCheckpoint publishes one durable checkpoint's phase timings.
func recordCheckpoint(capture, install, truncate time.Duration) {
	if !obs.Enabled() {
		return
	}
	ckm.once.Do(initCkptMetrics)
	ckm.checkpoints.Inc()
	ckm.capture.ObserveDuration(capture)
	ckm.install.ObserveDuration(install)
	ckm.truncateDur.ObserveDuration(truncate)
}

// checkpointConfig shapes the durable-ingest checkpoint lifecycle.
type checkpointConfig struct {
	// Path is the artifact base path; the previous checkpoint is
	// retained at Path+".prev" until the next one is durable.
	Path string
	// WALBytes triggers a background checkpoint when the WAL's retained
	// stream grows past it (0 disables the size trigger).
	WALBytes int64
	// Interval triggers a background checkpoint when the last one is
	// older than it and appends have landed since (0 disables the timer).
	Interval time.Duration
	// MaxLag is the checkpoint age past which /readyz stops reporting
	// ready (0: lag is reported but never blocks readiness).
	MaxLag time.Duration
	// Seed feeds the normScale recomputation on append-mode reload,
	// matching startup.
	Seed int64
}

// checkpointFailure records the most recent failed checkpoint for
// /readyz — the warn-level signal that recovery cost is growing.
type checkpointFailure struct {
	Err string    `json:"error"`
	At  time.Time `json:"at"`
}

// checkpointer runs the checkpoint lifecycle over an ingest state: the
// flush-install-truncate cycle, the background size/age triggers, and
// the lag accounting /readyz surfaces.  One checkpoint runs at a time
// (mu); appends are quiesced only for the brief capture, not for the
// serialization or the artifact write.
type checkpointer struct {
	mu     sync.Mutex
	cfg    checkpointConfig
	in     *ingestState
	logger *slog.Logger

	gen        atomic.Int64
	lastAt     atomic.Int64 // unix nanos of the last durable checkpoint
	lastOffset atomic.Int64 // WAL offset the last durable checkpoint covers
	lastErr    atomic.Pointer[checkpointFailure]

	// prevOffset (guarded by mu) is the WAL offset of the PREVIOUS
	// durable checkpoint — the lag-one truncation bound.  Truncating
	// only through it keeps the newest artifact's whole tail on disk, so
	// corruption of that artifact still recovers from .prev with zero
	// loss.
	prevOffset int64

	// testHook, when set, runs at named phases of a checkpoint; a
	// non-nil error aborts right there, which crash-matrix tests use to
	// freeze the on-disk state mid-lifecycle.
	testHook func(phase string) error
}

// newCheckpointer resumes the checkpoint lineage: a recovered
// checkpoint seeds the generation counter, the age clock, and the
// truncation bound.
func newCheckpointer(cfg checkpointConfig, in *ingestState, logger *slog.Logger, recovered *ckpt.Result) *checkpointer {
	c := &checkpointer{cfg: cfg, in: in, logger: logger}
	c.lastAt.Store(time.Now().UnixNano())
	if recovered != nil {
		c.gen.Store(recovered.Meta.Generation)
		c.lastAt.Store(recovered.Meta.CreatedAt.UnixNano())
		c.lastOffset.Store(recovered.Meta.WALOffset)
		c.prevOffset = recovered.Meta.WALOffset
	}
	return c
}

func (c *checkpointer) hook(phase string) error {
	if c.testHook != nil {
		return c.testHook(phase)
	}
	return nil
}

// run takes one checkpoint: compact the delta, capture a consistent
// (segments, store snapshot, WAL offset) triple under the ingest lock,
// serialize and install off the lock, then truncate the WAL through the
// previous checkpoint's offset.
func (c *checkpointer) run() (ckpt.Meta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkpointLocked(false)
}

// checkpointLocked is the checkpoint cycle; c.mu is held.  When
// ingestLocked, the caller already holds in.mu across the whole call
// (the reload barrier) and nothing here may retake it.
func (c *checkpointer) checkpointLocked(ingestLocked bool) (ckpt.Meta, error) {
	fail := func(err error) (ckpt.Meta, error) {
		c.lastErr.Store(&checkpointFailure{Err: err.Error(), At: time.Now()})
		return ckpt.Meta{}, err
	}
	if err := c.hook("pre-flush"); err != nil {
		return fail(err)
	}

	// Capture under the ingest lock: Compact drains the delta (required
	// by the segment serializer), then the manifest pin, store snapshot,
	// and WAL offset are taken together — one consistent cut of
	// everything acked so far.  The expensive serialization happens
	// after the lock drops; the pinned snapshot and immutable segments
	// cannot change under it.
	in := c.in
	captureStart := time.Now()
	if !ingestLocked {
		in.mu.Lock()
	}
	if err := in.seg.Compact(); err != nil {
		if !ingestLocked {
			in.mu.Unlock()
		}
		return fail(fmt.Errorf("checkpoint compaction: %w", err))
	}
	write, release, err := in.seg.SegmentWriter()
	if err != nil {
		if !ingestLocked {
			in.mu.Unlock()
		}
		return fail(err)
	}
	snap := in.seg.Store().Snapshot()
	var offset int64
	if in.log != nil {
		offset = in.log.Offset()
	}
	if !ingestLocked {
		in.mu.Unlock()
	}
	capture := time.Since(captureStart)

	meta := ckpt.Meta{Generation: c.gen.Load() + 1, WALOffset: offset, CreatedAt: time.Now()}
	installStart := time.Now()
	err = ckpt.Install(c.cfg.Path, meta, snap.WriteBinary, write)
	release()
	if err != nil {
		return fail(err)
	}
	installDur := time.Since(installStart)
	c.gen.Store(meta.Generation)
	c.lastAt.Store(meta.CreatedAt.UnixNano())
	c.lastOffset.Store(meta.WALOffset)
	c.lastErr.Store(nil)
	prev := c.prevOffset
	c.prevOffset = meta.WALOffset

	if err := c.hook("pre-truncate"); err != nil {
		recordCheckpoint(capture, installDur, 0)
		return meta, err
	}
	truncStart := time.Now()
	if err := c.truncate(prev, ingestLocked); err != nil {
		// The checkpoint itself is durable; a failed truncation only
		// delays space reclamation and retries at the next checkpoint
		// (the next bound supersedes this one).
		c.logger.Warn("WAL truncation failed; retrying at the next checkpoint", "err", err)
	}
	recordCheckpoint(capture, installDur, time.Since(truncStart))
	return meta, nil
}

// truncate drops the WAL prefix covered by the lag-one bound.
func (c *checkpointer) truncate(through int64, ingestLocked bool) error {
	in := c.in
	if in.log == nil || through <= 0 {
		return nil
	}
	if !ingestLocked {
		in.mu.Lock()
		defer in.mu.Unlock()
	}
	return in.log.TruncateThrough(through)
}

// walBytes reads the retained WAL stream size under the ingest lock.
func (c *checkpointer) walBytes() int64 {
	in := c.in
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.log == nil {
		return 0
	}
	return in.log.Size()
}

// walOffset reads the acked logical end offset under the ingest lock.
func (c *checkpointer) walOffset() int64 {
	in := c.in
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.log == nil {
		return 0
	}
	return in.log.Offset()
}

// age is the time since the last durable checkpoint (or process start).
func (c *checkpointer) age() time.Duration {
	return time.Since(time.Unix(0, c.lastAt.Load()))
}

// lagExceeded reports whether checkpoint lag has crossed the
// configured readiness bound.
func (c *checkpointer) lagExceeded() bool {
	return c.cfg.MaxLag > 0 && c.age() > c.cfg.MaxLag
}

// due decides whether the background loop should checkpoint now.  The
// size trigger fires on the retained WAL alone; the age trigger
// additionally requires acked appends past the last checkpoint, so an
// idle server is not re-serialized every interval.
func (c *checkpointer) due() bool {
	if c.cfg.WALBytes > 0 && c.walBytes() >= c.cfg.WALBytes {
		return true
	}
	if c.cfg.Interval > 0 && c.age() >= c.cfg.Interval && c.walOffset() > c.lastOffset.Load() {
		return true
	}
	return false
}

// loop is the background checkpoint driver; it exits with ctx.
func (c *checkpointer) loop(ctx context.Context) {
	poll := time.Second
	if c.cfg.Interval > 0 && c.cfg.Interval < poll {
		poll = c.cfg.Interval
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if !c.due() {
			continue
		}
		start := time.Now()
		meta, err := c.run()
		if err != nil {
			// Serving and durability are unaffected — every acked append
			// is still in the WAL — but recovery cost grows until a
			// checkpoint lands, which is exactly what the /readyz lag
			// warning (and MaxLag bound) surface.
			c.logger.Error("background checkpoint failed; WAL keeps growing", "err", err)
			continue
		}
		c.logger.Info("checkpoint",
			"generation", meta.Generation, "wal_offset", meta.WALOffset,
			"elapsed", time.Since(start).Round(time.Millisecond))
	}
}

// detail summarizes checkpoint lag for /readyz.
func (c *checkpointer) detail() map[string]interface{} {
	age := c.age()
	d := map[string]interface{}{
		"path":       c.cfg.Path,
		"generation": c.gen.Load(),
		"age":        age.Round(time.Millisecond).String(),
		"wal_bytes":  c.walBytes(),
	}
	if f := c.lastErr.Load(); f != nil {
		d["last_error"] = f
	}
	if c.cfg.MaxLag > 0 {
		d["max_lag"] = c.cfg.MaxLag.String()
		d["lag_exceeded"] = age > c.cfg.MaxLag
	}
	return d
}

// errUnrecoverable reports a state no startup path can serve without
// silent data loss: the WAL was truncated against a checkpoint that can
// no longer be read, so neither the artifacts nor a full replay can
// reconstruct every acked append.  Refusing loudly is the only honest
// option — starting anyway would drop acked data without a trace.
var errUnrecoverable = errors.New("ingest state unrecoverable without data loss")

// validateRecovery proves the chosen recovery path covers every acked
// append before any of it is served.  Without a recovered checkpoint,
// full WAL replay is sound only while the log still holds its complete
// history from logical offset zero; with one, the log must reach back
// at least to the checkpoint's offset (the lag-one truncation
// guarantees this for every crash the server itself caused).
func validateRecovery(recovered *ckpt.Result, log *wal.Log) error {
	if log == nil {
		return nil
	}
	if recovered == nil {
		if log.Base() == 0 {
			return nil
		}
		return fmt.Errorf("%w: no checkpoint artifact loads and the WAL starts at logical offset %d, past records only a checkpoint held — restore a checkpoint artifact or a complete WAL",
			errUnrecoverable, log.Base())
	}
	if log.Base() > recovered.Meta.WALOffset {
		return fmt.Errorf("%w: the recovered checkpoint covers WAL offset %d but the log begins at %d — records in between exist nowhere",
			errUnrecoverable, recovered.Meta.WALOffset, log.Base())
	}
	return nil
}

// reloadAppend is hot reload for append mode: a checkpoint barrier.
// With the ingest lock held, every acked append is flushed into a fresh
// checkpoint artifact; the server then re-reads and fully re-validates
// the artifact it just wrote (each reload doubles as a recovery drill)
// and swaps both the serving snapshot and the ingest index to the
// loaded copy.  Appends stall for the duration; queries keep flowing on
// the old snapshot until the swap.
func (s *server) reloadAppend() error {
	c := s.ckpt
	c.mu.Lock()
	defer c.mu.Unlock()

	s.reloading.Store(true)
	s.updateReadyGauge()
	defer func() {
		s.reloading.Store(false)
		s.updateReadyGauge()
	}()

	start := time.Now()
	reject := func(err error) error {
		s.reloadsRejected.Inc()
		s.lastReloadErr.Store(&reloadFailure{Err: err.Error(), At: time.Now()})
		s.logger.Error("append-mode reload rejected; old snapshot keeps serving", "err", err)
		return err
	}

	in := s.ingest
	in.mu.Lock()
	defer in.mu.Unlock()
	meta, err := c.checkpointLocked(true)
	if err != nil {
		return reject(fmt.Errorf("checkpoint barrier: %w", err))
	}
	if err := c.hook("mid-reload"); err != nil {
		return reject(err)
	}
	res, warns, err := ckpt.Recover(c.cfg.Path)
	if err != nil {
		return reject(fmt.Errorf("re-reading checkpoint: %w", err))
	}
	for _, w := range warns {
		s.logger.Warn("during reload: " + w.String())
	}
	if res.Meta.Generation != meta.Generation {
		res.Seg.Close()
		return reject(fmt.Errorf("checkpoint raced: recovered generation %d, wrote %d", res.Meta.Generation, meta.Generation))
	}
	normScale, err := query.SENormScale(res.Store, res.Seg.Options().WindowLen, 500, c.cfg.Seed+2)
	if err != nil {
		res.Seg.Close()
		return reject(fmt.Errorf("recomputing norm scale: %w", err))
	}

	old := in.seg
	res.Seg.CompactThreshold = old.CompactThreshold
	res.Seg.MergeRatio = old.MergeRatio
	res.Seg.MaxFrozen = old.MaxFrozen
	res.Seg.StartCompactor()
	in.seg = res.Seg
	in.names = make(map[string]int, res.Store.NumSequences())
	for seq := 0; seq < res.Store.NumSequences(); seq++ {
		in.names[res.Store.SequenceName(seq)] = seq
	}

	sn := &snapshot{
		ix:        res.Seg,
		normScale: normScale,
		how:       fmt.Sprintf("reloaded from checkpoint %s (generation %d)", res.Source, res.Meta.Generation),
		loadedAt:  time.Now(),
	}
	oldSnap := s.snap.Swap(sn)
	gen := s.genCount.Add(1)
	s.generation.Set(float64(gen))
	s.reloadsOK.Inc()
	s.lastReloadErr.Store(nil)
	s.publishSnapshotGauges(sn)
	s.logger.Info("snapshot swapped",
		"generation", gen, "how", sn.how,
		"windows", res.Seg.WindowCount(),
		"elapsed", time.Since(start).Round(time.Millisecond))
	go func() {
		<-oldSnap.Drained()
		// The superseded segmented index is unreachable; stop its
		// compactor and release any artifact mapping it pinned.
		if err := oldSnap.Value().ix.Close(); err != nil {
			s.logger.Warn("closing drained snapshot", "err", err)
		}
		s.logger.Info("previous snapshot drained", "generation", gen-1)
	}()
	return nil
}

// handleCheckpoint is the operational trigger: POST /admin/checkpoint.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("checkpoint requires POST"))
		return
	}
	if s.ckpt == nil {
		s.writeError(w, http.StatusConflict, fmt.Errorf("checkpoint unavailable: server was not started with -append and -checkpoint"))
		return
	}
	start := time.Now()
	meta, err := s.ckpt.run()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":     "checkpointed",
		"generation": meta.Generation,
		"wal_offset": meta.WALOffset,
		"elapsed":    time.Since(start).Round(time.Millisecond).String(),
	})
}
