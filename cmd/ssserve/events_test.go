package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scaleshift/internal/cliutil"
	"scaleshift/internal/core"
	"scaleshift/internal/engine"
	"scaleshift/internal/obs"
	"scaleshift/internal/wal"
)

// eventsPage mirrors the /debug/events envelope.
type eventsPage struct {
	Events      []*obs.Event `json:"events"`
	Missed      uint64       `json:"missed"`
	Next        uint64       `json:"next"`
	Emitted     uint64       `json:"emitted"`
	Overwritten uint64       `json:"overwritten"`
	SinkDropped uint64       `json:"sink_dropped"`
}

func drainEvents(t *testing.T, s *server, since uint64) eventsPage {
	t.Helper()
	resp, body := get(t, s, fmt.Sprintf("/debug/events?since=%d", since))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events status %d: %s", resp.StatusCode, body)
	}
	var page eventsPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("decoding events page: %v\n%s", err, body)
	}
	return page
}

// eventsOfKind filters a page by kind.
func eventsOfKind(page eventsPage, kind string) []*obs.Event {
	var out []*obs.Event
	for _, e := range page.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// statsFromEvent reconstructs the engine ledger from the wide event so
// the accounting invariants can be checked from the event alone.
func statsFromEvent(e *obs.Event) core.SearchStats {
	st := core.SearchStats{
		Candidates:        e.Stats.Candidates,
		FalseAlarms:       e.Stats.FalseAlarms,
		CostRejected:      e.Stats.CostRejected,
		Results:           e.Stats.Results,
		IndexNodeAccesses: e.Stats.IndexNodeReads,
		DataPageAccesses:  e.Stats.DataPageReads,
		DegradedProbes:    e.Stats.DegradedProbes,
	}
	st.PathProbes[engine.PathScan] = e.Stats.ScanProbes
	return st
}

// TestSearchEmitsOneWideEvent is the exactly-once acceptance check for
// GET /search: one event per request, whatever the outcome, carrying a
// stats ledger that passes CheckInvariants and span timings that sum
// within the event's own duration.
func TestSearchEmitsOneWideEvent(t *testing.T) {
	s := newTestServer(t, false)

	resp, body := get(t, s, "/search?seq=0&start=5&eps_frac=0.05")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	page := drainEvents(t, s, 0)
	if page.Emitted != 1 || len(page.Events) != 1 || page.Missed != 0 {
		t.Fatalf("one request must emit exactly one event: emitted=%d drained=%d missed=%d",
			page.Emitted, len(page.Events), page.Missed)
	}
	e := page.Events[0]
	if e.Kind != "search" || e.Status != http.StatusOK || e.Outcome != "ok" {
		t.Fatalf("event = kind %q status %d outcome %q", e.Kind, e.Status, e.Outcome)
	}
	if e.TraceID != sr.TraceID {
		t.Fatalf("event trace %q, response trace %q", e.TraceID, sr.TraceID)
	}
	if e.Path == "" || len(e.Plan) == 0 {
		t.Fatalf("event missing plan: path=%q plan=%v", e.Path, e.Plan)
	}
	if e.Matches != sr.Total {
		t.Fatalf("event matches %d, response total %d", e.Matches, sr.Total)
	}
	if e.Stats == nil {
		t.Fatal("event missing stats")
	}
	if err := statsFromEvent(e).CheckInvariants(); err != nil {
		t.Fatalf("event stats: %v", err)
	}
	if e.DurationNs <= 0 {
		t.Fatal("event has no duration")
	}
	var spanSum int64
	seen := map[string]bool{}
	for _, sp := range e.Spans {
		seen[sp.Name] = true
		spanSum += sp.DurationNs
	}
	for _, want := range []string{"plan", "probe", "verify"} {
		if !seen[want] {
			t.Errorf("event missing %q span (got %v)", want, e.Spans)
		}
	}
	if spanSum > e.DurationNs {
		t.Fatalf("span durations sum to %dns, exceeding the event's %dns", spanSum, e.DurationNs)
	}

	// A failed parse still emits exactly one event, classed client_error.
	resp, _ = get(t, s, "/search?seq=abc&start=1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status %d", resp.StatusCode)
	}
	page = drainEvents(t, s, page.Next)
	if len(page.Events) != 1 {
		t.Fatalf("failed request emitted %d events, want 1", len(page.Events))
	}
	if e := page.Events[0]; e.Kind != "search" || e.Outcome != "client_error" || e.Status != http.StatusBadRequest {
		t.Fatalf("error event = kind %q status %d outcome %q", e.Kind, e.Status, e.Outcome)
	}
}

// TestBatchEmitsSlotEvents: one search_batch event per POST plus one
// thin batch_slot event per slot, all sharing the batch's trace ID.
func TestBatchEmitsSlotEvents(t *testing.T) {
	s := newTestServer(t, false)
	body := `{"queries": [{"seq": 0, "start": 3}, {"seq": 1, "start": 7}, {"seq": 2, "start": 11}]}`
	req := httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var br batchResponseJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}

	page := drainEvents(t, s, 0)
	batches := eventsOfKind(page, "search_batch")
	slots := eventsOfKind(page, "batch_slot")
	if len(batches) != 1 {
		t.Fatalf("batch emitted %d search_batch events, want 1", len(batches))
	}
	if len(slots) != 3 {
		t.Fatalf("batch emitted %d batch_slot events, want 3", len(slots))
	}
	be := batches[0]
	if be.TraceID != br.TraceID || be.Outcome != "ok" {
		t.Fatalf("batch event = trace %q outcome %q (response trace %q)", be.TraceID, be.Outcome, br.TraceID)
	}
	if be.Stats == nil {
		t.Fatal("batch event missing aggregated stats")
	}
	if err := statsFromEvent(be).CheckInvariants(); err != nil {
		t.Fatalf("batch event stats: %v", err)
	}
	seenSlots := map[int]bool{}
	for _, e := range slots {
		if e.TraceID != br.TraceID {
			t.Fatalf("slot %d carries trace %q, want the batch's %q", e.Slot, e.TraceID, br.TraceID)
		}
		if e.Outcome != "ok" {
			t.Fatalf("slot %d outcome %q", e.Slot, e.Outcome)
		}
		seenSlots[e.Slot] = true
	}
	if len(seenSlots) != 3 {
		t.Fatalf("slot indexes %v, want {0,1,2}", seenSlots)
	}
}

// TestAppendEmitsOneWideEvent: the ingest endpoint gets the same
// exactly-once treatment, with wal and apply spans from the durable
// path.
func TestAppendEmitsOneWideEvent(t *testing.T) {
	log, recs, err := wal.Open(filepath.Join(t.TempDir(), "events.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	s, _ := newIngestTestServer(t, log, recs)

	resp, raw := postAppend(t, s, `{"seq": 0, "values": [1, 2, 3, 4, 5]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, raw)
	}
	page := drainEvents(t, s, 0)
	if len(page.Events) != 1 {
		t.Fatalf("one append emitted %d events, want 1", len(page.Events))
	}
	e := page.Events[0]
	if e.Kind != "append" || e.Outcome != "ok" || e.Status != http.StatusOK {
		t.Fatalf("append event = kind %q status %d outcome %q", e.Kind, e.Status, e.Outcome)
	}
	if e.Matches != 5 {
		t.Fatalf("append event records %d values, want 5", e.Matches)
	}
	if e.TraceID == "" {
		t.Fatal("append event missing trace id")
	}
	seen := map[string]bool{}
	for _, sp := range e.Spans {
		seen[sp.Name] = true
	}
	if !seen["wal"] || !seen["apply"] {
		t.Fatalf("append event spans %v, want wal and apply", e.Spans)
	}

	// A rejected append also emits exactly one event.
	resp, _ = postAppend(t, s, `{"values": []}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty append status %d", resp.StatusCode)
	}
	page = drainEvents(t, s, page.Next)
	if len(page.Events) != 1 || page.Events[0].Outcome != "client_error" {
		t.Fatalf("rejected append events = %+v", page.Events)
	}

	// Searches served by the segmented (append-mode) executor carry the
	// same stage spans as the frozen-index path.
	if resp, raw := get(t, s, "/search?seq=0&start=5&eps_frac=0.05"); resp.StatusCode != http.StatusOK {
		t.Fatalf("segmented search status %d: %s", resp.StatusCode, raw)
	}
	page = drainEvents(t, s, page.Next)
	if len(page.Events) != 1 || page.Events[0].Kind != "search" {
		t.Fatalf("segmented search events = %+v", page.Events)
	}
	seen = map[string]bool{}
	for _, sp := range page.Events[0].Spans {
		seen[sp.Name] = true
	}
	for _, want := range []string{"plan", "probe", "verify"} {
		if !seen[want] {
			t.Errorf("segmented search event missing %q span (got %v)", want, page.Events[0].Spans)
		}
	}
}

func TestEventsEndpointPaging(t *testing.T) {
	s := newTestServer(t, false)
	for i := 0; i < 5; i++ {
		get(t, s, fmt.Sprintf("/search?seq=0&start=%d&eps_frac=0.05", 3+i))
	}
	resp, body := get(t, s, "/debug/events?since=0&max=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var page eventsPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 2 || page.Next != 2 || page.Emitted != 5 {
		t.Fatalf("page = %d events, next %d, emitted %d; want 2, 2, 5", len(page.Events), page.Next, page.Emitted)
	}
	rest := drainEvents(t, s, page.Next)
	if len(rest.Events) != 3 {
		t.Fatalf("second page = %d events, want 3", len(rest.Events))
	}
	for i, e := range rest.Events {
		if e.Seq != page.Next+uint64(i)+1 {
			t.Fatalf("event %d has seq %d, want contiguous from %d", i, e.Seq, page.Next+1)
		}
	}
	if resp, _ := get(t, s, "/debug/events?since=banana"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, s, "/debug/events?max=banana"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad max: status %d, want 400", resp.StatusCode)
	}
}

// TestTraceparentAdoptAndEcho: an inbound W3C trace context is adopted
// as the query's trace identity and echoed on the response; without one
// the response still carries a parseable traceparent.
func TestTraceparentAdoptAndEcho(t *testing.T) {
	s := newTestServer(t, false)
	const inboundID = "4bf92f3577b34da6a3ce929d0e0e4736"

	req := httptest.NewRequest(http.MethodGet, "/search?seq=0&start=5&eps_frac=0.05", nil)
	req.Header.Set(obs.TraceparentHeader, "00-"+inboundID+"-00f067aa0ba902b7-01")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var sr searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.TraceID != inboundID {
		t.Fatalf("response trace %q, want adopted inbound id %q", sr.TraceID, inboundID)
	}
	echo := rec.Header().Get(obs.TraceparentHeader)
	if got := obs.ParseTraceparent(echo); got != inboundID {
		t.Fatalf("echoed traceparent %q does not carry the inbound trace id", echo)
	}
	if _, ok := s.tracer.Get(inboundID); !ok {
		t.Fatal("adopted trace not retrievable by its external id")
	}

	// Without an inbound header the response still stitches: the echoed
	// traceparent must be well-formed.
	resp, _ := get(t, s, "/search?seq=1&start=5&eps_frac=0.05")
	echo = resp.Header.Get(obs.TraceparentHeader)
	if len(echo) != 55 || !strings.HasPrefix(echo, "00-") {
		t.Fatalf("local echo %q is not a well-formed traceparent", echo)
	}
}

func TestTraceFilters(t *testing.T) {
	s := newTestServer(t, true) // degraded: every search flags its trace

	// One degraded-but-fine query, one errored query (the engine rejects
	// a too-short explicit vector after the trace has started).
	if resp, body := get(t, s, "/search?seq=0&start=5&eps_frac=0.05"); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded search status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, s, "/search?values=1,2,3"); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("short query status %d, want 422", resp.StatusCode)
	}

	fetch := func(path string) []obs.TraceSnapshot {
		t.Helper()
		resp, body := get(t, s, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		var traces []obs.TraceSnapshot
		if err := json.Unmarshal(body, &traces); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return traces
	}

	errored := fetch("/debug/traces?error=1")
	if len(errored) != 1 || !errored[0].Error {
		t.Fatalf("?error=1 returned %d traces (want exactly the failed query)", len(errored))
	}
	degraded := fetch("/debug/traces?degraded=1")
	if len(degraded) == 0 {
		t.Fatal("?degraded=1 returned nothing on a degraded server")
	}
	for _, tr := range degraded {
		if !tr.Degraded {
			t.Fatalf("?degraded=1 returned non-degraded trace %s", tr.ID)
		}
	}
	if got := fetch("/debug/traces?min_ms=0"); len(got) < 2 {
		t.Fatalf("min_ms=0 filtered traces away: %d", len(got))
	}
	if got := fetch("/debug/traces?min_ms=1000000"); len(got) != 0 {
		t.Fatalf("min_ms=1e6 returned %d traces, want 0", len(got))
	}
	// Filters compose conjunctively.
	if got := fetch("/debug/traces?error=1&degraded=1"); len(got) != 0 {
		t.Fatalf("error=1&degraded=1 returned %d traces, want 0 (the errored query never reached the engine's degraded path)", len(got))
	}
	if resp, _ := get(t, s, "/debug/traces?min_ms=banana"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad min_ms: status %d, want 400", resp.StatusCode)
	}
}

// TestTailRetention is the acceptance scenario: after a flood of 10k
// fast queries, one slow request and one errored request from before
// (and during) the flood must still be retrievable via /debug/traces,
// because the tracer's tail buckets outlive the recent ring.
func TestTailRetention(t *testing.T) {
	cfg := newTestServerConfig(t, false)
	cfg.tracer = obs.NewTracer(128)
	obs.Enable()
	t.Cleanup(obs.Disable)
	s := newServerFromConfig(t, cfg)

	// The errored request: engine rejection after the trace roots.
	if resp, _ := get(t, s, "/search?values=1,2,3"); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatal("expected a 422")
	}
	resp, body := get(t, s, "/debug/traces?error=1")
	var errTraces []obs.TraceSnapshot
	if err := json.Unmarshal(body, &errTraces); err != nil || len(errTraces) != 1 {
		t.Fatalf("errored trace not found: %v %s", err, body)
	}
	errID := errTraces[0].ID

	// The slow request: a 64-query forced-scan batch, orders of
	// magnitude slower than one indexed lookup.
	var queries []string
	for i := 0; i < 64; i++ {
		queries = append(queries, fmt.Sprintf(`{"seq": %d, "start": %d}`, i%4, 3+i))
	}
	breq := fmt.Sprintf(`{"queries": [%s], "path": "scan"}`, strings.Join(queries, ","))
	req := httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(breq))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("slow batch status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var br batchResponseJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	slowID := br.TraceID

	// The flood: 10k fast queries, ~80x the recent ring's capacity.
	for i := 0; i < 10000; i++ {
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/search?seq=%d&start=%d&eps_frac=0.02", i%4, 3+i%60), nil)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}

	if resp, body = get(t, s, "/debug/traces?id="+slowID); resp.StatusCode != http.StatusOK {
		t.Fatalf("slow trace %s evicted by the flood: %d %s", slowID, resp.StatusCode, body)
	}
	if resp, body = get(t, s, "/debug/traces?id="+errID); resp.StatusCode != http.StatusOK {
		t.Fatalf("errored trace %s evicted by the flood: %d %s", errID, resp.StatusCode, body)
	}
}

// TestCheckpointAgeIdleSkip: the age trigger must not re-serialize an
// idle server (no acked appends past the checkpoint), so checkpoint age
// keeps climbing while due() stays false — and the age gauge reports
// the growing lag.
func TestCheckpointAgeIdleSkip(t *testing.T) {
	dir := t.TempDir()
	s, _, c := startAppendServer(t, filepath.Join(dir, "a.wal"), filepath.Join(dir, "a.ckpt"))
	c.cfg.Interval = time.Millisecond

	appendRamp(t, s, 0, 100, 40)
	if _, err := c.run(); err != nil {
		t.Fatal(err)
	}
	ageAfter := c.age()

	time.Sleep(20 * time.Millisecond)
	if c.due() {
		t.Fatal("idle server reported due: the age trigger must require acked appends past the checkpoint")
	}
	if c.age() <= ageAfter {
		t.Fatal("checkpoint age did not climb while idle")
	}
	resp, body := get(t, s, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("metrics unavailable")
	}
	if !strings.Contains(string(body), "scaleshift_checkpoint_age_seconds") {
		t.Fatal("/metrics missing scaleshift_checkpoint_age_seconds")
	}

	// New acked appends re-arm the trigger; a checkpoint resets the age.
	appendRamp(t, s, 0, 101, 40)
	if !c.due() {
		t.Fatal("appends past the checkpoint must make the age trigger due")
	}
	if _, err := c.run(); err != nil {
		t.Fatal(err)
	}
	if got := c.age(); got > 10*time.Second {
		t.Fatalf("age %v did not reset after a checkpoint", got)
	}
}

// TestCheckpointPhaseMetrics: a durable checkpoint publishes its phase
// timings and the checkpoint counter.
func TestCheckpointPhaseMetrics(t *testing.T) {
	dir := t.TempDir()
	s, _, c := startAppendServer(t, filepath.Join(dir, "m.wal"), filepath.Join(dir, "m.ckpt"))
	appendRamp(t, s, 0, 100, 40)
	if _, err := c.run(); err != nil {
		t.Fatal(err)
	}
	_, body := get(t, s, "/metrics")
	out := string(body)
	for _, want := range []string{
		"scaleshift_checkpoints_total",
		`scaleshift_checkpoint_phase_seconds_count{phase="capture"}`,
		`scaleshift_checkpoint_phase_seconds_count{phase="install"}`,
		`scaleshift_checkpoint_phase_seconds_count{phase="truncate"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDashAgainstLiveServer drives the sstop poll-render loop against
// a live ssserve over real HTTP.
func TestDashAgainstLiveServer(t *testing.T) {
	s := newTestServer(t, false)
	ts := httptest.NewServer(s)
	defer ts.Close()

	client := ts.Client()
	for i := 0; i < 4; i++ {
		resp, err := client.Get(ts.URL + fmt.Sprintf("/search?seq=0&start=%d&eps_frac=0.05", 3+i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var buf bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cliutil.RunDash(ctx, client, ts.URL, &buf, 10*time.Millisecond, 2, false); err != nil {
		t.Fatalf("RunDash: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"ready=1",
		"endpoint",
		"search",
		"breaker=closed",
		"slow queries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
}
