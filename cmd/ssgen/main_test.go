package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scaleshift/internal/cluster"
	"scaleshift/internal/core"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "prices.csv")
	err := run([]string{"-companies", "5", "-days", "40", "-o", out}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := store.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSequences() != 5 || st.TotalValues() != 200 {
		t.Errorf("store: %d seqs, %d values", st.NumSequences(), st.TotalValues())
	}
}

func TestRunStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-companies", "2", "-days", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "HK0001,") {
		t.Errorf("stdout CSV malformed: %q", sb.String())
	}
}

func TestRunWritesBinaryArtifact(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "prices.bin")
	if err := run([]string{"-companies", "5", "-days", "40", "-binary", "-o", out}, nil); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := store.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSequences() != 5 || st.TotalValues() != 200 {
		t.Errorf("store: %d seqs, %d values", st.NumSequences(), st.TotalValues())
	}
}

// TestRunWritesSegmentedArtifact checks the -segments path end to end:
// the artifact loads over its store and answers queries identically to
// an index built from scratch over the same data.
func TestRunWritesSegmentedArtifact(t *testing.T) {
	dir := t.TempDir()
	storeOut := filepath.Join(dir, "prices.bin")
	segOut := filepath.Join(dir, "prices.segs")
	err := run([]string{
		"-companies", "6", "-days", "300", "-binary", "-o", storeOut,
		"-segments", segOut, "-segment-count", "3", "-window", "32",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(storeOut)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.ReadBinary(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(segOut)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	seg, err := core.LoadSegments(g, st)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()

	opts := core.DefaultOptions()
	opts.WindowLen = 32
	ref, err := core.NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.BuildBulk(); err != nil {
		t.Fatal(err)
	}
	if seg.WindowCount() != ref.WindowCount() {
		t.Fatalf("segmented artifact indexes %d windows, from-scratch %d", seg.WindowCount(), ref.WindowCount())
	}
	b := seg.Backlog()
	if b.Frozen != 3 || b.DeltaWindows != 0 {
		t.Fatalf("artifact shape: %d frozen segments, %d delta windows", b.Frozen, b.DeltaWindows)
	}

	q := make([]float64, 32)
	for _, start := range []int{0, 97, 260} {
		if err := st.Window(2, start, 32, q, nil); err != nil {
			t.Fatal(err)
		}
		var s1, s2 core.SearchStats
		got, err := seg.Search(q, 0.05, core.UnboundedCosts(), &s1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Search(q, 0.05, core.UnboundedCosts(), &s2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("start %d: %d matches vs %d from scratch", start, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("start %d match %d: %+v vs %+v", start, i, got[i], want[i])
			}
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-companies", "0"}, nil); err == nil {
		t.Error("companies=0 accepted")
	}
	if err := run([]string{"-bogus"}, nil); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	var a, b, c strings.Builder
	if err := run([]string{"-companies", "2", "-days", "10", "-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-companies", "2", "-days", "10", "-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-companies", "2", "-days", "10", "-seed", "6"}, &c); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed, different output")
	}
	if a.String() == c.String() {
		t.Error("different seed, same output")
	}
}

// TestShardArtifactsRoundTrip exercises the -shards output end to end:
// the manifest must validate, its fingerprints must match the shard
// stores on disk, and the union of the per-shard stores must reproduce
// the unsharded generation exactly, value for value.
func TestShardArtifactsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	gen := []string{"-companies", "11", "-days", "60", "-seed", "9"}
	if err := run(append(gen, "-shards", "3", "-o", dir), nil); err != nil {
		t.Fatal(err)
	}
	man, err := cluster.LoadManifest(filepath.Join(dir, cluster.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if err := man.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(man.Shards) != 3 || man.Sequences != 11 {
		t.Fatalf("manifest: %d shards over %d sequences", len(man.Shards), man.Sequences)
	}

	// The same generation, unsharded, is the oracle.
	oracle := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies, cfg.Days, cfg.Seed = 11, 60, 9
	if _, err := stock.Populate(oracle, cfg); err != nil {
		t.Fatal(err)
	}

	covered := 0
	for _, sh := range man.Shards {
		f, err := os.Open(filepath.Join(dir, sh.Dir, "store.bin"))
		if err != nil {
			t.Fatal(err)
		}
		part, err := store.ReadBinary(f)
		f.Close()
		if err != nil {
			t.Fatalf("shard %d: %v", sh.ID, err)
		}
		if part.NumSequences() != len(sh.Seqs) {
			t.Fatalf("shard %d: %d sequences on disk, %d in manifest", sh.ID, part.NumSequences(), len(sh.Seqs))
		}
		for local, global := range sh.Seqs {
			if got, want := part.SequenceName(local), oracle.SequenceName(global); got != want {
				t.Fatalf("shard %d local %d: name %q, want %q", sh.ID, local, got, want)
			}
			n := oracle.SequenceLen(global)
			if part.SequenceLen(local) != n {
				t.Fatalf("shard %d local %d: %d values, want %d", sh.ID, local, part.SequenceLen(local), n)
			}
			got := make([]float64, n)
			want := make([]float64, n)
			if err := part.Window(local, 0, n, got, nil); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Window(global, 0, n, want, nil); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shard %d seq %d value %d: %v != %v", sh.ID, global, i, got[i], want[i])
				}
			}
			covered++
		}
		if owner, _, err := man.Owner(sh.Seqs[0]); err != nil || owner != sh.ID {
			t.Fatalf("Owner(%d) = %d, %v, want %d", sh.Seqs[0], owner, err, sh.ID)
		}
	}
	if covered != 11 {
		t.Fatalf("shards cover %d sequences, want 11", covered)
	}

	// A corrupted manifest must be rejected at load time.
	raw, err := os.ReadFile(filepath.Join(dir, cluster.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40
	bad := filepath.Join(dir, "bad.ssman")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.LoadManifest(bad); err == nil {
		t.Fatal("corrupted manifest loaded cleanly")
	}

	// -shards without an output directory is a usage error.
	if err := run(append(gen, "-shards", "3"), nil); err == nil {
		t.Fatal("-shards without -o accepted")
	}
}
