package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scaleshift/internal/store"
)

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "prices.csv")
	err := run([]string{"-companies", "5", "-days", "40", "-o", out}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := store.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSequences() != 5 || st.TotalValues() != 200 {
		t.Errorf("store: %d seqs, %d values", st.NumSequences(), st.TotalValues())
	}
}

func TestRunStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-companies", "2", "-days", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "HK0001,") {
		t.Errorf("stdout CSV malformed: %q", sb.String())
	}
}

func TestRunWritesBinaryArtifact(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "prices.bin")
	if err := run([]string{"-companies", "5", "-days", "40", "-binary", "-o", out}, nil); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := store.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSequences() != 5 || st.TotalValues() != 200 {
		t.Errorf("store: %d seqs, %d values", st.NumSequences(), st.TotalValues())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-companies", "0"}, nil); err == nil {
		t.Error("companies=0 accepted")
	}
	if err := run([]string{"-bogus"}, nil); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	var a, b, c strings.Builder
	if err := run([]string{"-companies", "2", "-days", "10", "-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-companies", "2", "-days", "10", "-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-companies", "2", "-days", "10", "-seed", "6"}, &c); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed, different output")
	}
	if a.String() == c.String() {
		t.Error("different seed, same output")
	}
}
