// Command ssgen emits the synthetic Hong Kong stock data set used by
// the experiments (the stand-in for the paper's proprietary data) as
// CSV, one sequence per line:
//
//	name,v1,v2,...,vn
//
// Usage:
//
//	ssgen [-companies 1000] [-days 650] [-seed 1] [-o prices.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scaleshift/internal/atomicfile"
	"scaleshift/internal/cliutil"
	"scaleshift/internal/cluster"
	"scaleshift/internal/core"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ssgen", flag.ContinueOnError)
	companies := fs.Int("companies", 1000, "number of price sequences")
	days := fs.Int("days", 650, "samples per sequence")
	sectors := fs.Int("sectors", 12, "number of correlated sectors")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (default stdout)")
	binary := fs.Bool("binary", false, "write the checksummed binary store artifact instead of CSV (for ssquery -store)")
	segOut := fs.String("segments", "", "also write a pre-segmented index artifact (SSSEG) over the generated data")
	segCount := fs.Int("segment-count", 4, "frozen segments in the -segments artifact")
	shards := fs.Int("shards", 0, "hash-partition the data into this many per-shard store artifacts plus an SSMAN cluster manifest (-o names the output directory)")
	window := fs.Int("window", 128, "index window length for -segments")
	fc := fs.Int("fc", 3, "DFT coefficients for -segments")
	obsFlags := cliutil.AddObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obsFlags.Setup()
	if err != nil {
		return err
	}

	cfg := stock.DefaultConfig()
	cfg.Companies = *companies
	cfg.Days = *days
	cfg.Sectors = *sectors
	cfg.Seed = *seed

	st := store.New()
	if _, err := stock.Populate(st, cfg); err != nil {
		return err
	}

	if *shards > 0 {
		// Sharded output is a different artifact family entirely: a
		// directory of per-shard stores plus the manifest a coordinator
		// validates the fleet against.  Each shard's store carries its
		// own checksums; the manifest carries the partition's.
		if *out == "" {
			return fmt.Errorf("-shards requires -o DIR (the shard artifact directory)")
		}
		man, err := cluster.WriteShardArtifacts(st, *out, *shards, *seed)
		if err != nil {
			return err
		}
		for _, sh := range man.Shards {
			logger.Info("wrote shard artifact", "shard", sh.ID, "dir", sh.Dir,
				"sequences", len(sh.Seqs), "values", sh.Values,
				"fingerprint", fmt.Sprintf("%08x", sh.Fingerprint))
		}
		logger.Info("wrote cluster manifest",
			"path", *out+"/"+cluster.ManifestName,
			"shards", *shards, "sequences", man.Sequences)
		return obsFlags.Finish()
	}

	emit := st.WriteCSV
	if *binary {
		emit = st.WriteBinary
	}
	if *out != "" {
		// Atomic replace: readers of the artifact never observe a
		// half-written file, even across a crash mid-generation.
		if err := atomicfile.WriteFile(*out, emit); err != nil {
			return err
		}
	} else if err := emit(stdout); err != nil {
		return err
	}
	logger.Info("wrote data set",
		"sequences", st.NumSequences(), "values", st.TotalValues(),
		"pages", st.PageCount(), "page_bytes", store.PageSize)

	if *segOut != "" {
		opts := core.DefaultOptions()
		opts.WindowLen = *window
		opts.Coefficients = *fc
		g, err := buildSegmented(st, opts, *segCount)
		if err != nil {
			return fmt.Errorf("-segments: %w", err)
		}
		defer g.Close()
		if err := atomicfile.WriteFile(*segOut, g.WriteSegments); err != nil {
			return fmt.Errorf("-segments: %w", err)
		}
		b := g.Backlog()
		logger.Info("wrote segmented index",
			"path", *segOut, "segments", b.Frozen, "windows", b.FrozenWindows)
	}
	return obsFlags.Finish()
}

// buildSegmented replays the generated store through a segmented index
// in count chunks, compacting after each, so the artifact ships the
// frozen-segment layout a live ingest server would have converged to.
// The features are bit-identical to a from-scratch build — append-time
// extraction replays the same sliding-DFT schedule — so loading the
// artifact gives the same answers as building over the full store.
func buildSegmented(st *store.Store, opts core.Options, count int) (*core.SegmentedIndex, error) {
	if count < 1 {
		return nil, fmt.Errorf("segment count %d < 1", count)
	}
	// Rebuild the data into a live store chunk by chunk: the first
	// chunk seeds the bulk-loaded base segment, each later chunk lands
	// in the delta and freezes into its own segment on Compact.
	full := make([][]float64, st.NumSequences())
	live := store.New()
	for seq := range full {
		n := st.SequenceLen(seq)
		full[seq] = make([]float64, n)
		if err := st.Window(seq, 0, n, full[seq], nil); err != nil {
			return nil, err
		}
		live.AppendSequence(st.SequenceName(seq), full[seq][:n/count])
	}
	g, err := core.NewSegmentedIndex(live, opts)
	if err != nil {
		return nil, err
	}
	// Keep each chunk its own segment: no tiered merging, and a
	// backstop that never triggers.
	g.MergeRatio = 0
	g.MaxFrozen = count + 1
	for k := 2; k <= count; k++ {
		for seq, vals := range full {
			lo, hi := len(vals)*(k-1)/count, len(vals)*k/count
			if err := g.AppendValues(seq, vals[lo:hi]); err != nil {
				g.Close()
				return nil, err
			}
		}
		if err := g.Compact(); err != nil {
			g.Close()
			return nil, err
		}
	}
	return g, nil
}
