// Command ssgen emits the synthetic Hong Kong stock data set used by
// the experiments (the stand-in for the paper's proprietary data) as
// CSV, one sequence per line:
//
//	name,v1,v2,...,vn
//
// Usage:
//
//	ssgen [-companies 1000] [-days 650] [-seed 1] [-o prices.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scaleshift/internal/atomicfile"
	"scaleshift/internal/cliutil"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ssgen", flag.ContinueOnError)
	companies := fs.Int("companies", 1000, "number of price sequences")
	days := fs.Int("days", 650, "samples per sequence")
	sectors := fs.Int("sectors", 12, "number of correlated sectors")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (default stdout)")
	binary := fs.Bool("binary", false, "write the checksummed binary store artifact instead of CSV (for ssquery -store)")
	obsFlags := cliutil.AddObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obsFlags.Setup()
	if err != nil {
		return err
	}

	cfg := stock.DefaultConfig()
	cfg.Companies = *companies
	cfg.Days = *days
	cfg.Sectors = *sectors
	cfg.Seed = *seed

	st := store.New()
	if _, err := stock.Populate(st, cfg); err != nil {
		return err
	}

	emit := st.WriteCSV
	if *binary {
		emit = st.WriteBinary
	}
	if *out != "" {
		// Atomic replace: readers of the artifact never observe a
		// half-written file, even across a crash mid-generation.
		if err := atomicfile.WriteFile(*out, emit); err != nil {
			return err
		}
	} else if err := emit(stdout); err != nil {
		return err
	}
	logger.Info("wrote data set",
		"sequences", st.NumSequences(), "values", st.TotalValues(),
		"pages", st.PageCount(), "page_bytes", store.PageSize)
	return obsFlags.Finish()
}
