package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

// smallArgs keeps CLI tests quick: tiny market, short window.
func smallArgs(extra ...string) []string {
	base := []string{"-companies", "20", "-days", "200", "-window", "32"}
	return append(base, extra...)
}

func TestQueryFindsDisguisedWindow(t *testing.T) {
	var sb strings.Builder
	err := run(smallArgs("-query", "3:50", "-scale", "2", "-shift", "-5", "-eps-frac", "0.001"), &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "HK0004") {
		t.Errorf("source window not reported:\n%s", out)
	}
	if !strings.Contains(out, "a=0.5") {
		t.Errorf("inverse transform not recovered:\n%s", out)
	}
}

func TestQueryFromCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 10
	cfg.Days = 100
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var sb strings.Builder
	err = run([]string{"-data", path, "-window", "32", "-query", "0:10", "-eps", "0.5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "database: 10 sequences") {
		t.Errorf("CSV database not loaded:\n%s", sb.String())
	}
}

func TestQueryModes(t *testing.T) {
	// Nearest-neighbour mode.
	var sb strings.Builder
	if err := run(smallArgs("-query", "2:20", "-nn", "3"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3 matches") {
		t.Errorf("nn mode:\n%s", sb.String())
	}
	// Spheres strategy.
	sb.Reset()
	if err := run(smallArgs("-query", "2:20", "-spheres", "-eps-frac", "0.01"), &sb); err != nil {
		t.Fatal(err)
	}
	// Long query (multipiece).
	sb.Reset()
	if err := run(smallArgs("-query", "2:20", "-long", "-eps-frac", "0.001"), &sb); err != nil {
		t.Fatal(err)
	}
	// Long mode doubles the query span: window [20, 20+64).
	if !strings.Contains(sb.String(), "[20:84)") {
		t.Errorf("long mode:\n%s", sb.String())
	}
	// Explicit values.
	sb.Reset()
	vals := make([]string, 32)
	for i := range vals {
		vals[i] = "1"
	}
	if err := run(smallArgs("-query-values", strings.Join(vals, ",")), &sb); err != nil {
		t.Fatal(err)
	}
	// Cost bounds.
	sb.Reset()
	if err := run(smallArgs("-query", "2:20", "-eps-frac", "0.05",
		"-scale-min", "0.5", "-scale-max", "2", "-shift-abs", "10"), &sb); err != nil {
		t.Fatal(err)
	}
}

func TestQueryErrors(t *testing.T) {
	tests := [][]string{
		smallArgs(),                                         // no query
		smallArgs("-query", "banana"),                       // malformed spec
		smallArgs("-query", "999:0"),                        // out of range
		smallArgs("-query-values", "1,two,3"),               // bad float
		smallArgs("-query", "x:1"),                          // bad seq
		smallArgs("-query", "1:y"),                          // bad start
		{"-data", "/nonexistent/file.csv", "-query", "0:0"}, // missing file
	}
	for _, args := range tests {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestIndexCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "idx.bin")
	// First run builds and caches.
	var sb strings.Builder
	if err := run(smallArgs("-query", "3:50", "-eps-frac", "0.001", "-index-cache", cache), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cached to") {
		t.Errorf("first run did not cache:\n%s", sb.String())
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatal(err)
	}
	// Second run loads, producing identical matches.
	var sb2 strings.Builder
	if err := run(smallArgs("-query", "3:50", "-eps-frac", "0.001", "-index-cache", cache), &sb2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "mapped from") {
		t.Errorf("second run did not map the cache:\n%s", sb2.String())
	}
	tail := func(s string) string { return s[strings.Index(s, "matches"):] }
	if tail(sb.String()) != tail(sb2.String()) {
		t.Errorf("results differ between built and loaded index:\n%s\nvs\n%s", sb.String(), sb2.String())
	}
}

func TestCorruptIndexCacheDegradesToScan(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "idx.bin")
	query := smallArgs("-query", "3:50", "-scale", "2", "-eps-frac", "0.001")

	// Baseline answer with no cache involved.
	var fresh strings.Builder
	if err := run(query, &fresh); err != nil {
		t.Fatal(err)
	}

	// Build the cache, then flip one byte in the middle of it.
	var sb strings.Builder
	if err := run(append(query, "-index-cache", cache), &sb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cache)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(cache, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Default policy: the run still succeeds, announces the
	// degradation, and returns the exact same matches via the scan.
	var degraded strings.Builder
	if err := run(append(query, "-index-cache", cache), &degraded); err != nil {
		t.Fatalf("corrupt cache failed the run: %v", err)
	}
	if !strings.Contains(degraded.String(), "DEGRADED") {
		t.Errorf("degradation not reported:\n%s", degraded.String())
	}
	tail := func(s string) string { return s[strings.Index(s, "matches"):] }
	if tail(degraded.String()) != tail(fresh.String()) {
		t.Errorf("degraded results differ from fresh build:\n%s\nvs\n%s",
			degraded.String(), fresh.String())
	}

	// -strict-cache turns the same situation into a hard failure.
	var strict strings.Builder
	err = run(append(query, "-index-cache", cache, "-strict-cache"), &strict)
	if err == nil {
		t.Fatal("-strict-cache accepted a corrupt cache")
	}
	if !strings.Contains(err.Error(), "unusable") {
		t.Errorf("strict error lacks diagnostic: %v", err)
	}
}

func TestBinaryStoreArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prices.bin")
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 10
	cfg.Days = 100
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var sb strings.Builder
	if err := run([]string{"-store", path, "-window", "32", "-query", "0:10", "-eps", "0.5"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "database: 10 sequences") {
		t.Errorf("binary store not loaded:\n%s", sb.String())
	}

	// A truncated artifact is a one-line failure, not a wrong answer.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	err = run([]string{"-store", path, "-window", "32", "-query", "0:10", "-eps", "0.5"}, &sb)
	if err == nil {
		t.Fatal("truncated store artifact accepted")
	}
	if !strings.Contains(err.Error(), "unusable") {
		t.Errorf("store error lacks diagnostic: %v", err)
	}
}

func TestQueryExplainAndForcedPaths(t *testing.T) {
	// -explain prints the plan; forced paths return identical results.
	query := smallArgs("-query", "3:50", "-scale", "2", "-eps-frac", "0.001", "-explain")
	outputs := map[string]string{}
	for _, path := range []string{"auto", "rtree", "scan"} {
		var sb strings.Builder
		if err := run(append(query, "-path", path), &sb); err != nil {
			t.Fatalf("-path %s: %v", path, err)
		}
		out := sb.String()
		if !strings.Contains(out, "plan: path=") || !strings.Contains(out, "stages:") {
			t.Errorf("-path %s: no explain output:\n%s", path, out)
		}
		outputs[path] = out[strings.Index(out, "matches"):]
	}
	if outputs["rtree"] != outputs["scan"] || outputs["auto"] != outputs["rtree"] {
		t.Errorf("forced paths disagree:\nauto: %s\nrtree: %s\nscan: %s",
			outputs["auto"], outputs["rtree"], outputs["scan"])
	}
	if strings.Contains(outputs["auto"], "forced") {
		t.Errorf("auto plan claims to be forced:\n%s", outputs["auto"])
	}

	// Forcing trail on a point-entry index must fail cleanly...
	var sb strings.Builder
	if err := run(append(query, "-path", "trail"), &sb); err == nil {
		t.Error("-path trail accepted on a point-entry index")
	}
	// ...and an unknown path name is rejected.
	sb.Reset()
	if err := run(append(query, "-path", "btree"), &sb); err == nil {
		t.Error("-path btree accepted")
	}
	// -path is meaningless for nearest-neighbour search.
	sb.Reset()
	if err := run(smallArgs("-query", "2:20", "-nn", "3", "-path", "scan"), &sb); err == nil {
		t.Error("-path with -nn accepted")
	}
	// Long queries honour the forced path too.
	sb.Reset()
	if err := run(smallArgs("-query", "2:20", "-long", "-eps-frac", "0.001",
		"-explain", "-path", "scan"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "path=scan") {
		t.Errorf("long explain output:\n%s", sb.String())
	}
}

func TestQueryTrailAndBulkModes(t *testing.T) {
	var sb strings.Builder
	if err := run(smallArgs("-query", "3:50", "-scale", "2", "-eps-frac", "0.001", "-subtrail", "8"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "HK0004") {
		t.Errorf("trail mode missed the source:\n%s", sb.String())
	}
	sb.Reset()
	if err := run(smallArgs("-query", "3:50", "-eps-frac", "0.001", "-bulk"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "HK0004") {
		t.Errorf("bulk mode missed the source:\n%s", sb.String())
	}
}
