// Command ssquery runs one scale/shift-invariant similarity query
// against a sequence database, printing the qualifying subsequences
// with their scale factors and shift offsets.
//
// The database is either a CSV file written by ssgen (-data) or a
// freshly generated synthetic set.  The query is a window of the
// database (-query seq:start), optionally disguised with -scale/-shift
// to demonstrate invariance, or an explicit comma-separated value list
// (-query-values).
//
// Examples:
//
//	ssquery -data prices.csv -query 42:100 -scale 2 -shift -5 -eps-frac 0.05
//	ssquery -companies 100 -query 3:25 -eps-frac 0.02 -nn 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"scaleshift/internal/cliutil"
	"scaleshift/internal/core"
	"scaleshift/internal/engine"
	"scaleshift/internal/geom"
	"scaleshift/internal/query"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssquery:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ssquery", flag.ContinueOnError)
	dataFile := fs.String("data", "", "CSV database (default: generate synthetic)")
	storeFile := fs.String("store", "", "binary store artifact written by ssgen -binary (overrides -data)")
	companies := fs.Int("companies", 100, "synthetic companies when -data is unset")
	days := fs.Int("days", 650, "synthetic days when -data is unset")
	seed := fs.Int64("seed", 1, "synthetic data seed")
	window := fs.Int("window", 128, "index window length n")
	fc := fs.Int("fc", 3, "DFT coefficients f_c")
	querySpec := fs.String("query", "", "query window as seq:start")
	queryValues := fs.String("query-values", "", "explicit comma-separated query values")
	scale := fs.Float64("scale", 1, "disguise the query window by this scale factor")
	shift := fs.Float64("shift", 0, "disguise the query window by this shift offset")
	eps := fs.Float64("eps", -1, "absolute error bound (overrides -eps-frac)")
	epsFrac := fs.Float64("eps-frac", 0.02, "error bound as a fraction of the mean window SE-norm")
	nn := fs.Int("nn", 0, "if > 0, run k-nearest-neighbour search instead of a range query")
	spheres := fs.Bool("spheres", false, "use the bounding-spheres penetration heuristic (set 3)")
	scaleMin := fs.Float64("scale-min", 0, "cost bound: minimum allowed scale factor (0=unbounded)")
	scaleMax := fs.Float64("scale-max", 0, "cost bound: maximum allowed scale factor (0=unbounded)")
	shiftAbs := fs.Float64("shift-abs", 0, "cost bound: maximum |shift offset| (0=unbounded)")
	limit := fs.Int("limit", 20, "print at most this many matches")
	long := fs.Bool("long", false, "treat the query as longer than the window (multipiece search)")
	explain := fs.Bool("explain", false, "print the query plan: per-path cost estimates and stage timings")
	pathName := fs.String("path", "auto", "access path: auto (cost-based), rtree, scan, or trail")
	indexCache := fs.String("index-cache", "", "cache the built index at this path (load when present, save after building)")
	strictCache := fs.Bool("strict-cache", false, "fail instead of degrading to a scan when the index cache is invalid")
	subtrail := fs.Int("subtrail", 0, "sub-trail MBR length (0/1 = per-window point entries)")
	bulk := fs.Bool("bulk", false, "construct the index with STR bulk loading")
	obsFlags := cliutil.AddObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obsFlags.Setup()
	if err != nil {
		return err
	}

	// Load or generate the database.  The binary store artifact is
	// checksummed; a truncated or corrupted file is a one-line typed
	// failure here — never a silently wrong database.
	st, err := cliutil.LoadStore(*storeFile, *dataFile, *companies, *days, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "database: %d sequences, %d values, %d data pages\n",
		st.NumSequences(), st.TotalValues(), st.PageCount())

	// Build the index.
	opts := core.DefaultOptions()
	opts.WindowLen = *window
	opts.Coefficients = *fc
	if *spheres {
		opts.Strategy = geom.BoundingSpheres
	}
	opts.SubtrailLen = *subtrail
	ix, how, err := cliutil.OpenIndex(st, opts, *indexCache, *bulk, *strictCache, logger)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "index: %d windows, %d pages, height %d, %s\n",
		ix.WindowCount(), ix.IndexPageCount(), ix.TreeHeight(), how)

	// Assemble the query.
	q, desc, err := buildQuery(st, *querySpec, *queryValues, *window, *scale, *shift, *long)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "query: %s\n", desc)

	// Resolve epsilon.
	e := *eps
	if e < 0 {
		normScale, err := query.SENormScale(st, *window, 500, *seed+2)
		if err != nil {
			return err
		}
		e = *epsFrac * normScale
		fmt.Fprintf(stdout, "eps: %.4g (%.3f of mean window SE-norm %.4g)\n", e, *epsFrac, normScale)
	} else {
		fmt.Fprintf(stdout, "eps: %.4g (absolute)\n", e)
	}

	costs := core.UnboundedCosts()
	if *scaleMin != 0 {
		costs.ScaleMin = *scaleMin
	}
	if *scaleMax != 0 {
		costs.ScaleMax = *scaleMax
	}
	if *shiftAbs != 0 {
		costs.ShiftMin, costs.ShiftMax = -*shiftAbs, *shiftAbs
	}

	force, err := engine.ParsePathKind(*pathName)
	if err != nil {
		return err
	}
	if *nn > 0 && force != engine.PathAuto {
		return fmt.Errorf("-path applies to range queries; nearest-neighbour search is pinned to the index probe")
	}

	// Run.
	var stats core.SearchStats
	var matches []core.Match
	var ex *engine.Explain
	searchStart := time.Now()
	switch {
	case *nn > 0:
		matches, err = ix.NearestNeighbors(q, *nn, &stats)
	case *long:
		matches, ex, err = ix.SearchLongPlanned(q, e, costs, force, &stats)
	default:
		matches, ex, err = ix.SearchPlanned(q, e, costs, force, nil, &stats)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(searchStart)

	if *explain && ex != nil {
		if err := ex.WriteText(stdout); err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "search: %v cpu, %d index pages + %d data pages, %d candidates (%d false alarms, %d cost-rejected)\n",
		elapsed.Round(time.Microsecond), stats.IndexNodeAccesses, stats.DataPageAccesses,
		stats.Candidates, stats.FalseAlarms, stats.CostRejected)
	fmt.Fprintf(stdout, "%d matches\n", len(matches))
	for i, m := range matches {
		if i >= *limit {
			fmt.Fprintf(stdout, "  ... %d more\n", len(matches)-*limit)
			break
		}
		fmt.Fprintf(stdout, "  %-8s window [%d, %d)  dist=%.4g  a=%.4g  b=%.4g\n",
			m.Name, m.Start, m.Start+len(q), m.Dist, m.Scale, m.Shift)
	}
	return obsFlags.Finish()
}

// buildQuery resolves the query flags into a vector and a description.
func buildQuery(st *store.Store, spec, values string, window int, scale, shift float64, long bool) (vec.Vector, string, error) {
	if values != "" {
		fields := strings.Split(values, ",")
		q := make(vec.Vector, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, "", fmt.Errorf("parsing -query-values field %d: %w", i+1, err)
			}
			q[i] = v
		}
		return q, fmt.Sprintf("%d explicit values", len(q)), nil
	}
	if spec == "" {
		return nil, "", fmt.Errorf("provide -query seq:start or -query-values")
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, "", fmt.Errorf("-query must be seq:start, got %q", spec)
	}
	seq, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, "", fmt.Errorf("parsing -query sequence: %w", err)
	}
	start, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, "", fmt.Errorf("parsing -query start: %w", err)
	}
	n := window
	if long {
		n = 2 * window
	}
	w := make(vec.Vector, n)
	if err := st.Window(seq, start, n, w, nil); err != nil {
		return nil, "", err
	}
	q := vec.Apply(w, scale, shift)
	return q, fmt.Sprintf("window %s[%d:%d) disguised by a=%g b=%g",
		st.SequenceName(seq), start, start+n, scale, shift), nil
}
