module scaleshift

go 1.22
