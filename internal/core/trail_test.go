package core

import (
	"bytes"
	"math"
	"testing"

	"scaleshift/internal/geom"
	"scaleshift/internal/query"
	"scaleshift/internal/rtree"
	"scaleshift/internal/seqscan"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// trailOptions enables the ST-index-style sub-trail MBR leaves.
func trailOptions(k int) Options {
	opts := testOptions()
	opts.SubtrailLen = k
	return opts
}

func TestTrailIndexShrinksDirectory(t *testing.T) {
	point := buildTestIndex(t, testOptions(), 15, 150)
	trail := buildTestIndex(t, trailOptions(16), 15, 150)
	if trail.WindowCount() != point.WindowCount() {
		t.Fatalf("window counts differ: %d vs %d", trail.WindowCount(), point.WindowCount())
	}
	wantEntries := 0
	for seq := 0; seq < 15; seq++ {
		wantEntries += (150 - 32 + 1 + 15) / 16
	}
	if trail.EntryCount() != wantEntries {
		t.Errorf("EntryCount = %d, want %d", trail.EntryCount(), wantEntries)
	}
	// Directory shrinks by roughly the trail factor.
	if trail.IndexPageCount()*8 > point.IndexPageCount() {
		t.Errorf("trail index %d pages vs point index %d pages — shrink too small",
			trail.IndexPageCount(), point.IndexPageCount())
	}
}

// TestTrailSearchExactlyMatchesSeqScan is the trail-mode version of the
// central exactness property.
func TestTrailSearchExactlyMatchesSeqScan(t *testing.T) {
	for _, k := range []int{2, 7, 16} {
		opts := trailOptions(k)
		ix := buildTestIndex(t, opts, 12, 140)
		st := ix.Store()
		qcfg := query.DefaultConfig()
		qcfg.N = 5
		qcfg.WindowLen = opts.WindowLen
		qs, err := query.Generate(st, qcfg)
		if err != nil {
			t.Fatal(err)
		}
		scale, err := query.SENormScale(st, opts.WindowLen, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			for _, frac := range []float64{0, 0.1} {
				eps := frac * scale
				got, err := ix.Search(q.Values, eps, UnboundedCosts(), nil)
				if err != nil {
					t.Fatal(err)
				}
				want, err := seqscan.Search(st, q.Values, eps, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("k=%d eps=%v: index %d, scan %d", k, eps, len(got), len(want))
				}
				for i := range got {
					if got[i].Seq != want[i].Seq || got[i].Start != want[i].Start ||
						math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("k=%d eps=%v rank %d differs", k, eps, i)
					}
				}
			}
		}
	}
}

func TestTrailNearestNeighborsExact(t *testing.T) {
	opts := trailOptions(8)
	ix := buildTestIndex(t, opts, 10, 120)
	st := ix.Store()
	w := make(vec.Vector, opts.WindowLen)
	if err := st.Window(3, 33, opts.WindowLen, w, nil); err != nil {
		t.Fatal(err)
	}
	q := vec.Apply(w, 2, -7)
	for _, k := range []int{1, 10} {
		got, err := ix.NearestNeighbors(q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := seqscan.Nearest(st, q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("k=%d rank %d: %v vs %v", k, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestTrailSearchLongExact(t *testing.T) {
	opts := trailOptions(8)
	ix := buildTestIndex(t, opts, 8, 160)
	st := ix.Store()
	L := 96 // 3 pieces of 32
	w := make(vec.Vector, L)
	if err := st.Window(5, 20, L, w, nil); err != nil {
		t.Fatal(err)
	}
	q := vec.Apply(w, 0.6, 9)
	eps := 0.05 * vec.Norm(vec.SETransform(q))
	got, err := ix.SearchLong(q, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seqscan.Search(st, q, eps, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("index %d, scan %d", len(got), len(want))
	}
}

func TestTrailDynamicGrowthAndUnindex(t *testing.T) {
	// A sequence that grows in several increments must keep exactly one
	// entry per aligned trail, replacing the trailing partial each time.
	opts := trailOptions(8)
	opts.WindowLen = 16
	st := store.New()
	st.AppendSequence("grow", make([]float64, 30)) // 15 windows initially
	ix, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if ix.WindowCount() != 15 {
		t.Fatalf("WindowCount = %d", ix.WindowCount())
	}
	// trails: ceil(15/8) = 2 entries.
	if ix.EntryCount() != 2 {
		t.Fatalf("EntryCount = %d", ix.EntryCount())
	}
	// Simulate growth: new sequences are the supported growth path for
	// the store, so grow by re-running IndexSequence after appending a
	// longer copy is not possible; instead verify idempotence plus
	// partial-trail replacement through AppendAndIndex of longer data.
	seq, err := ix.AppendAndIndex("grow2", make([]float64, 40)) // 25 windows
	if err != nil {
		t.Fatal(err)
	}
	if ix.WindowCount() != 40 {
		t.Fatalf("WindowCount = %d", ix.WindowCount())
	}
	// ceil(25/8)=4 trails for the new sequence.
	if ix.EntryCount() != 6 {
		t.Fatalf("EntryCount = %d", ix.EntryCount())
	}
	// Idempotence.
	if err := ix.IndexSequence(seq); err != nil {
		t.Fatal(err)
	}
	if ix.EntryCount() != 6 {
		t.Fatalf("EntryCount after re-index = %d", ix.EntryCount())
	}
	// Unindex removes all trails of one sequence.
	if err := ix.UnindexSequence(seq); err != nil {
		t.Fatal(err)
	}
	if ix.EntryCount() != 2 || ix.WindowCount() != 15 {
		t.Fatalf("after unindex: entries=%d windows=%d", ix.EntryCount(), ix.WindowCount())
	}
}

func TestTrailPartialReplacementOnGrowth(t *testing.T) {
	// Directly exercise the partial-trail replacement: index, then grow
	// the same logical series by appending an extended copy is not
	// possible in the store, so drive IndexSequence twice with the
	// indexed counter rolled forward by shortening the first pass.
	opts := trailOptions(4)
	opts.WindowLen = 8
	st := store.New()
	vals := make([]float64, 21) // 14 windows
	for i := range vals {
		vals[i] = float64(i * i % 17)
	}
	st.AppendSequence("s", vals)
	ix, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	// 14 windows -> trails [0,4) [4,8) [8,12) [12,14): 4 entries.
	if ix.EntryCount() != 4 {
		t.Fatalf("EntryCount = %d", ix.EntryCount())
	}
	// Every window findable at eps=0 via a disguised self-query.
	w := make(vec.Vector, 8)
	for start := 0; start <= 13; start++ {
		if err := st.Window(0, start, 8, w, nil); err != nil {
			t.Fatal(err)
		}
		res, err := ix.Search(vec.Apply(w, 3, 1), 1e-7*(1+vec.Norm(w)), UnboundedCosts(), nil)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range res {
			if m.Start == start {
				found = true
			}
		}
		if !found {
			t.Fatalf("window %d not found", start)
		}
	}
}

func TestTrailSerializationRoundTrip(t *testing.T) {
	opts := trailOptions(8)
	ix := buildTestIndex(t, opts, 8, 100)
	st := ix.Store()
	var buf bytes.Buffer
	if err := ix.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := LoadIndex(&buf, st)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.EntryCount() != ix.EntryCount() || ix2.WindowCount() != ix.WindowCount() {
		t.Fatalf("shape mismatch after round trip")
	}
	if !ix2.trailMode() {
		t.Fatal("SubtrailLen lost in serialization")
	}
	w := make(vec.Vector, opts.WindowLen)
	if err := st.Window(2, 11, opts.WindowLen, w, nil); err != nil {
		t.Fatal(err)
	}
	a, err := ix.Search(w, 0.5, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix2.Search(w, 0.5, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("results differ: %d vs %d", len(a), len(b))
	}
	// Reloaded trail index stays dynamic.
	if _, err := ix2.AppendAndIndex("X", make([]float64, 50)); err != nil {
		t.Fatal(err)
	}
}

func TestTrailOptionsValidation(t *testing.T) {
	opts := testOptions()
	opts.SubtrailLen = -1
	if _, err := NewIndex(store.New(), opts); err == nil {
		t.Error("negative SubtrailLen accepted")
	}
	// SubtrailLen 1 behaves as point mode.
	opts.SubtrailLen = 1
	ix, err := NewIndex(store.New(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if ix.trailMode() {
		t.Error("SubtrailLen=1 reported trail mode")
	}
}

// TestAllVariantsAgree is the differential matrix test: every index
// configuration — leaf representation × feature basis × penetration
// strategy × split algorithm × X-tree — must return exactly the
// brute-force result set on the same disguised queries.
func TestAllVariantsAgree(t *testing.T) {
	st := store.New()
	cfg := stockConfigForMatrix()
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	scale, err := query.SENormScale(st, 32, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := make(vec.Vector, 32)
	if err := st.Window(4, 25, 32, w, nil); err != nil {
		t.Fatal(err)
	}
	q := vec.Apply(w, 1.8, -6)
	eps := 0.08 * scale
	oracle, err := seqscan.Search(st, q, eps, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) == 0 {
		t.Fatal("oracle found nothing; workload too tight")
	}

	type variant struct {
		name   string
		mutate func(*Options)
	}
	variants := []variant{
		{"baseline", func(o *Options) {}},
		{"spheres", func(o *Options) { o.Strategy = geom.BoundingSpheres }},
		{"haar", func(o *Options) { o.Reduction = ReductionHaar }},
		{"trail8", func(o *Options) { o.SubtrailLen = 8 }},
		{"trail8-haar", func(o *Options) { o.SubtrailLen = 8; o.Reduction = ReductionHaar }},
		{"quadratic", func(o *Options) { o.Tree.Split = rtree.SplitQuadratic }},
		{"linear-noreinsert", func(o *Options) {
			o.Tree.Split = rtree.SplitLinear
			o.Tree.ReinsertCount = 0
		}},
		{"xtree", func(o *Options) { o.Tree.SupernodeMaxOverlap = 0.1 }},
		{"xtree-trail", func(o *Options) { o.Tree.SupernodeMaxOverlap = 0.1; o.SubtrailLen = 16 }},
		{"fc2", func(o *Options) { o.Coefficients = 2; o.Tree = rtree.DefaultConfig(4) }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			opts := testOptions()
			v.mutate(&opts)
			ix, err := NewIndex(st, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ix.Build(); err != nil {
				t.Fatal(err)
			}
			got, err := ix.Search(q, eps, UnboundedCosts(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(oracle) {
				t.Fatalf("%d matches, oracle %d", len(got), len(oracle))
			}
			for i := range got {
				if got[i].Seq != oracle[i].Seq || got[i].Start != oracle[i].Start ||
					math.Abs(got[i].Dist-oracle[i].Dist) > 1e-9 {
					t.Fatalf("rank %d differs from oracle", i)
				}
			}
		})
	}
}

// stockConfigForMatrix keeps the matrix test fast.
func stockConfigForMatrix() stock.Config {
	cfg := stock.DefaultConfig()
	cfg.Companies = 10
	cfg.Days = 130
	return cfg
}

// TestExtendAndIndexPointMode: samples arriving on a live series make
// the boundary-spanning windows searchable (requirement 2 of §3).
func TestExtendAndIndexPointMode(t *testing.T) {
	opts := testOptions()
	opts.WindowLen = 16
	st := store.New()
	first := make([]float64, 40)
	for i := range first {
		first[i] = float64(i % 7)
	}
	st.AppendSequence("live", first)
	ix, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if ix.WindowCount() != 25 {
		t.Fatalf("WindowCount = %d", ix.WindowCount())
	}
	// 10 new ticks arrive.
	ticks := make([]float64, 10)
	for i := range ticks {
		ticks[i] = float64((40 + i) % 7)
	}
	if err := ix.ExtendAndIndex(0, ticks); err != nil {
		t.Fatal(err)
	}
	if ix.WindowCount() != 35 {
		t.Fatalf("after extend: WindowCount = %d", ix.WindowCount())
	}
	// A window spanning the old end (start 38 covers samples 38..53) is
	// found exactly.
	w := make(vec.Vector, 16)
	if err := st.Window(0, 30, 16, w, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Search(vec.Apply(w, 2, 1), 1e-6*(1+vec.Norm(w)), UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range got {
		if m.Start == 30 {
			found = true
		}
	}
	if !found {
		t.Fatal("boundary-spanning window not searchable after extension")
	}
	// Full agreement with brute force.
	want, err := seqscan.Search(st, w, 0.5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(w, 0.5, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(want) {
		t.Fatalf("index %d, scan %d after extension", len(res), len(want))
	}
}

// TestExtendAndIndexTrailMode exercises the partial-trail replacement:
// growth in several increments keeps one entry per aligned trail and
// stays exact.
func TestExtendAndIndexTrailMode(t *testing.T) {
	opts := trailOptions(4)
	opts.WindowLen = 8
	st := store.New()
	st.AppendSequence("live", seqVals(0, 15)) // 8 windows: trails 4+4
	ix, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if ix.EntryCount() != 2 || ix.WindowCount() != 8 {
		t.Fatalf("entries=%d windows=%d", ix.EntryCount(), ix.WindowCount())
	}
	// Grow by 3 ticks: 11 windows = trails 4+4+3 (new partial).
	if err := ix.ExtendAndIndex(0, seqVals(15, 3)); err != nil {
		t.Fatal(err)
	}
	if ix.EntryCount() != 3 || ix.WindowCount() != 11 {
		t.Fatalf("after +3: entries=%d windows=%d", ix.EntryCount(), ix.WindowCount())
	}
	// Grow by 2 more: 13 windows = 4+4+4+1; the partial trail [8,11) is
	// replaced by [8,12) plus a new partial [12,13).
	if err := ix.ExtendAndIndex(0, seqVals(18, 2)); err != nil {
		t.Fatal(err)
	}
	if ix.EntryCount() != 4 || ix.WindowCount() != 13 {
		t.Fatalf("after +2: entries=%d windows=%d", ix.EntryCount(), ix.WindowCount())
	}
	// Every window findable, matching brute force at several eps.
	st2 := ix.Store()
	w := make(vec.Vector, 8)
	for start := 0; start <= 12; start++ {
		if err := st2.Window(0, start, 8, w, nil); err != nil {
			t.Fatal(err)
		}
		res, err := ix.Search(w, 1e-6*(1+vec.Norm(w)), UnboundedCosts(), nil)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range res {
			if m.Start == start {
				found = true
			}
		}
		if !found {
			t.Fatalf("window %d lost after incremental growth", start)
		}
	}
	// Structural sanity.
	if err := ix.UnindexSequence(0); err != nil {
		t.Fatal(err)
	}
	if ix.EntryCount() != 0 {
		t.Fatalf("%d entries after unindex", ix.EntryCount())
	}
}

// seqVals returns [base, base+n) as floats with a varying pattern.
func seqVals(base, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		v := base + i
		out[i] = float64(v*v%23) + float64(v%5)
	}
	return out
}

// TestExtendThenUnindexPointMode is the regression test for the
// feature-reproducibility bug: features of windows indexed after an
// extension must be regenerated bit-exactly by UnindexSequence even
// though they were first computed by a slider starting mid-sequence
// (fixed by restarting the sliding DFT at absolute checkpoints).
func TestExtendThenUnindexPointMode(t *testing.T) {
	opts := testOptions()
	opts.WindowLen = 16
	st := store.New()
	st.AppendSequence("live", seqVals(0, 300)) // spans a checkpoint
	ix, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	// Extend across several increments, including past the 256-window
	// checkpoint boundary.
	for i := 0; i < 4; i++ {
		if err := ix.ExtendAndIndex(0, seqVals(300+20*i, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.WindowCount() != 380-16+1 {
		t.Fatalf("WindowCount = %d", ix.WindowCount())
	}
	// Every stored feature must be regenerable: unindex walks them all.
	if err := ix.UnindexSequence(0); err != nil {
		t.Fatalf("unindex after extension: %v", err)
	}
	if ix.WindowCount() != 0 {
		t.Fatalf("%d windows left", ix.WindowCount())
	}
}
