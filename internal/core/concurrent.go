package core

import (
	"context"
	"io"
	"sync"

	"scaleshift/internal/engine"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// ConcurrentIndex wraps an Index with a readers-writer lock so
// searches may run in parallel with occasional mutations (dynamic
// insertion of arriving data, delisting) without external
// synchronization.  Searches take the read lock; mutating methods take
// the write lock.  For read-only workloads the plain Index is
// lock-free and faster.
type ConcurrentIndex struct {
	mu sync.RWMutex
	ix *Index
}

// NewConcurrentIndex wraps ix.  The caller must stop using ix directly.
func NewConcurrentIndex(ix *Index) *ConcurrentIndex {
	return &ConcurrentIndex{ix: ix}
}

// Search is Index.Search under the read lock.
func (c *ConcurrentIndex) Search(q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.Search(q, eps, costs, stats)
}

// SearchLong is Index.SearchLong under the read lock.
func (c *ConcurrentIndex) SearchLong(q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchLong(q, eps, costs, stats)
}

// SearchPooled is Index.SearchPooled under the read lock.  The buffer
// pool itself is not synchronized by the index lock; give each caller
// its own pool (or serialize callers sharing one).
func (c *ConcurrentIndex) SearchPooled(q vec.Vector, eps float64, costs CostBounds, pool *store.BufferPool, stats *SearchStats) ([]Match, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchPooled(q, eps, costs, pool, stats)
}

// SearchBatch is Index.SearchBatch under the read lock: the whole
// batch runs inside one read-lock acquisition, so its queries are
// answered against a single consistent snapshot of the index and the
// batch's internal parallelism composes with the lock.
func (c *ConcurrentIndex) SearchBatch(queries []vec.Vector, eps float64, costs CostBounds, parallelism int, stats *SearchStats) ([][]Match, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchBatch(queries, eps, costs, parallelism, stats)
}

// SearchPlanned is Index.SearchPlanned under the read lock.
func (c *ConcurrentIndex) SearchPlanned(q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, pool *store.BufferPool, stats *SearchStats) ([]Match, *engine.Explain, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchPlanned(q, eps, costs, force, pool, stats)
}

// SearchLongPlanned is Index.SearchLongPlanned under the read lock.
func (c *ConcurrentIndex) SearchLongPlanned(q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, stats *SearchStats) ([]Match, *engine.Explain, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchLongPlanned(q, eps, costs, force, stats)
}

// SearchBatchPlanned is Index.SearchBatchPlanned under the read lock;
// like SearchBatch the whole batch sees one consistent snapshot.
func (c *ConcurrentIndex) SearchBatchPlanned(queries []BatchQuery, force engine.PathKind, parallelism int, stats *SearchStats) ([][]Match, []*engine.Explain, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchBatchPlanned(queries, force, parallelism, stats)
}

// NearestNeighbors is Index.NearestNeighbors under the read lock.
func (c *ConcurrentIndex) NearestNeighbors(q vec.Vector, k int, stats *SearchStats) ([]Match, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.NearestNeighbors(q, k, stats)
}

// NearestNeighborsWithCosts is the cost-bounded variant under the read
// lock.
func (c *ConcurrentIndex) NearestNeighborsWithCosts(q vec.Vector, k int, costs CostBounds, stats *SearchStats) ([]Match, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.NearestNeighborsWithCosts(q, k, costs, stats)
}

// NearestNeighborsContext is Index.NearestNeighborsContext under the
// read lock.
func (c *ConcurrentIndex) NearestNeighborsContext(ctx context.Context, q vec.Vector, k int, stats *SearchStats) ([]Match, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.NearestNeighborsContext(ctx, q, k, stats)
}

// NearestNeighborsWithCostsContext is the cost-bounded context variant
// under the read lock.
func (c *ConcurrentIndex) NearestNeighborsWithCostsContext(ctx context.Context, q vec.Vector, k int, costs CostBounds, stats *SearchStats) ([]Match, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.NearestNeighborsWithCostsContext(ctx, q, k, costs, stats)
}

// SearchContext is Index.SearchContext under the read lock.  Note the
// lock is held until the search returns; cancellation makes it return
// promptly, which is exactly how a stuck reader is evicted.
func (c *ConcurrentIndex) SearchContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchContext(ctx, q, eps, costs, stats)
}

// SearchPlannedContext is Index.SearchPlannedContext under the read
// lock.
func (c *ConcurrentIndex) SearchPlannedContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, pool *store.BufferPool, stats *SearchStats) ([]Match, *engine.Explain, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchPlannedContext(ctx, q, eps, costs, force, pool, stats)
}

// SearchLongContext is Index.SearchLongContext under the read lock.
func (c *ConcurrentIndex) SearchLongContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchLongContext(ctx, q, eps, costs, stats)
}

// SearchLongPlannedContext is Index.SearchLongPlannedContext under the
// read lock.
func (c *ConcurrentIndex) SearchLongPlannedContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, stats *SearchStats) ([]Match, *engine.Explain, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchLongPlannedContext(ctx, q, eps, costs, force, stats)
}

// SearchBatchContext is Index.SearchBatchContext under the read lock;
// like SearchBatch the whole batch sees one consistent snapshot, and
// a deadline bounds how long that read lock is held.
func (c *ConcurrentIndex) SearchBatchContext(ctx context.Context, queries []vec.Vector, eps float64, costs CostBounds, parallelism int, stats *SearchStats) ([][]Match, []BatchStatus, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchBatchContext(ctx, queries, eps, costs, parallelism, stats)
}

// SearchBatchPlannedContext is Index.SearchBatchPlannedContext under
// the read lock.
func (c *ConcurrentIndex) SearchBatchPlannedContext(ctx context.Context, queries []BatchQuery, force engine.PathKind, parallelism int, stats *SearchStats) ([][]Match, []*engine.Explain, []BatchStatus, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.SearchBatchPlannedContext(ctx, queries, force, parallelism, stats)
}

// BuildBulkParallelContext is Index.BuildBulkParallelContext under the
// write lock; cancelling it releases the write lock promptly with the
// index left empty and reusable.
func (c *ConcurrentIndex) BuildBulkParallelContext(ctx context.Context, workers int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ix.BuildBulkParallelContext(ctx, workers)
}

// Degraded is Index.Degraded under the read lock.
func (c *ConcurrentIndex) Degraded() (bool, string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.Degraded()
}

// AppendAndIndex is Index.AppendAndIndex under the write lock.
func (c *ConcurrentIndex) AppendAndIndex(name string, values []float64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ix.AppendAndIndex(name, values)
}

// ExtendAndIndex is Index.ExtendAndIndex under the write lock.
func (c *ConcurrentIndex) ExtendAndIndex(seq int, values []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ix.ExtendAndIndex(seq, values)
}

// UnindexSequence is Index.UnindexSequence under the write lock.
func (c *ConcurrentIndex) UnindexSequence(seq int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ix.UnindexSequence(seq)
}

// WindowCount is Index.WindowCount under the read lock.
func (c *ConcurrentIndex) WindowCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.WindowCount()
}

// WriteBinary is Index.WriteBinary under the read lock.
func (c *ConcurrentIndex) WriteBinary(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ix.WriteBinary(w)
}
