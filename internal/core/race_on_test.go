//go:build race

package core

// raceDetectorEnabled widens the promptness bounds in the cancellation
// tests: the race detector slows instrumented code 5-20x, so the
// 100ms-after-cancel contract is asserted strictly only without it.
const raceDetectorEnabled = true
