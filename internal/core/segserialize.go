package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"scaleshift/internal/binio"
	"scaleshift/internal/geom"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
)

// segMagic identifies the segmented-index artifact format, version 1:
// a CRC32C-protected header section (options, segment directory with
// per-segment window ranges) followed by one arena section per frozen
// segment — each using the same pad-to-8 scheme as the SSIDX v3 arena
// so the format stays mmap-friendly — and a whole-file trailer.
var segMagic = []byte("SSSEG\x01")

// segVersions lists the format versions LoadSegments accepts.
var segVersions = []byte{1}

// WriteSegments serializes the published manifest's frozen segments in
// the SSSEG v1 format.  The mutable delta is not representable in an
// immutable artifact: call Compact first (ssgen does), or expect an
// error when uncompacted windows remain.  The store is persisted
// separately, exactly as with Index.WriteBinary.
func (g *SegmentedIndex) WriteSegments(w io.Writer) error {
	write, release, err := g.SegmentWriter()
	if err != nil {
		return err
	}
	defer release()
	return write(w)
}

// SegmentWriter pins the currently published manifest and returns a
// closure serializing exactly that generation, plus a release func for
// the pin.  The split lets a checkpoint capture the manifest under the
// ingest lock and run the serialization after releasing it: segments
// are immutable, so appends landing meanwhile (which only grow the
// delta of LATER generations) cannot disturb the pinned bytes.  Errors
// when the pinned manifest still has uncompacted delta windows.
func (g *SegmentedIndex) SegmentWriter() (write func(io.Writer) error, release func(), err error) {
	pin := g.cell.Acquire()
	man := pin.Value()
	if len(man.delta) > 0 {
		pin.Release()
		return nil, nil, fmt.Errorf("core: %d uncompacted delta windows; run Compact before writing segments", len(man.delta))
	}
	return func(w io.Writer) error { return writeSegments(g.opts, man, w) }, pin.Release, nil
}

// writeSegments emits one pinned manifest in the SSSEG v1 format.
func writeSegments(opts Options, man *manifest, w io.Writer) error {
	var head []byte
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		head = append(head, scratch[:]...)
	}
	writeU64(uint64(opts.WindowLen))
	writeU64(uint64(opts.Coefficients))
	writeU64(uint64(opts.Reduction))
	writeU64(uint64(opts.Strategy))
	writeU64(uint64(opts.SubtrailLen))
	writeU64(uint64(len(man.frozen)))
	for _, sg := range man.frozen {
		writeU64(uint64(sg.count))
		writeU64(uint64(len(sg.ranges)))
		for _, r := range sg.ranges {
			writeU64(uint64(r.Seq))
			writeU64(uint64(r.Lo))
			writeU64(uint64(r.Hi))
		}
	}

	bw := binio.NewWriter(w)
	bw.Magic(segMagic)
	bw.Section(head)
	for _, sg := range man.frozen {
		// Same alignment discipline as Index.WriteBinary: the section
		// payload is a u64 pad length, pad zero bytes, then the arena
		// verbatim, placed so the arena starts on an 8-byte file offset.
		pad := int((8 - (bw.Pos()+16)%8) % 8)
		payload := make([]byte, 8+pad, 8+pad+sg.flat.ArenaSize())
		binary.LittleEndian.PutUint64(payload, uint64(pad))
		payload = sg.flat.AppendArena(payload)
		bw.Section(payload)
	}
	return bw.Close()
}

// LoadSegments reopens a segmented index written by WriteSegments,
// attaching it to st (the same store, or one that has since GROWN —
// windows beyond the artifact's coverage are re-extracted into the
// delta, which is what makes a restart with a WAL replay exact).
// Every section is CRC-checked before parsing and the segment
// directory is validated structurally: in-bounds ranges, contiguous
// per-sequence coverage starting at zero, counts consistent with each
// segment's tree.  Corruption surfaces as a typed error, never a
// panic and never wrong results.
func LoadSegments(r io.Reader, st *store.Store) (*SegmentedIndex, error) {
	br := binio.NewReader(r)
	if _, err := br.MagicVersions(segMagic, segVersions...); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	head, err := br.Section(maxIndexSection)
	if err != nil {
		return nil, fmt.Errorf("core: header section: %w", err)
	}

	off := 0
	readU64 := func() (uint64, error) {
		if off+8 > len(head) {
			return 0, fmt.Errorf("core: header too short: %w", ErrTruncated)
		}
		v := binary.LittleEndian.Uint64(head[off:])
		off += 8
		return v, nil
	}
	var windowLen, coeffs, reduction, strategy, subtrail, nsegs uint64
	for _, dst := range []*uint64{&windowLen, &coeffs, &reduction, &strategy, &subtrail, &nsegs} {
		if *dst, err = readU64(); err != nil {
			return nil, err
		}
	}
	if subtrail >= 2 {
		return nil, fmt.Errorf("core: segmented artifact with SubtrailLen %d (segments store per-window point entries)", subtrail)
	}
	type segDir struct {
		count  int
		ranges []winRange
	}
	// nsegs is bounded by the header's actual size: each segment needs
	// at least two u64s, so a hostile count fails the reads below long
	// before any large allocation.
	dirs := make([]segDir, 0, min(int(nsegs), len(head)/16))
	n := int(windowLen)
	next := make([]int, st.NumSequences())
	for i := 0; i < int(nsegs); i++ {
		count, err := readU64()
		if err != nil {
			return nil, err
		}
		nranges, err := readU64()
		if err != nil {
			return nil, err
		}
		d := segDir{count: int(count)}
		total := 0
		for j := 0; j < int(nranges); j++ {
			var seq, lo, hi uint64
			for _, dst := range []*uint64{&seq, &lo, &hi} {
				if *dst, err = readU64(); err != nil {
					return nil, err
				}
			}
			if seq >= uint64(st.NumSequences()) {
				return nil, fmt.Errorf("core: segment %d range covers sequence %d but store has %d", i, seq, st.NumSequences())
			}
			last := st.SequenceLen(int(seq)) - n + 1
			if lo >= hi || hi > uint64(max(last, 0)) {
				return nil, fmt.Errorf("core: segment %d has implausible window range [%d, %d) for sequence %d (len %d)",
					i, lo, hi, seq, st.SequenceLen(int(seq)))
			}
			// Manifest order must tile each sequence contiguously from
			// zero: no overlaps, no gaps, every window in one segment.
			if int(lo) != next[seq] {
				return nil, fmt.Errorf("core: segment %d range [%d, %d) of sequence %d breaks contiguous coverage (expected start %d)",
					i, lo, hi, seq, next[seq])
			}
			next[seq] = int(hi)
			total += int(hi - lo)
			d.ranges = append(d.ranges, winRange{Seq: int(seq), Lo: int(lo), Hi: int(hi)})
		}
		if total != d.count {
			return nil, fmt.Errorf("core: segment %d claims %d windows but its ranges cover %d", i, d.count, total)
		}
		dirs = append(dirs, d)
	}
	if off != len(head) {
		return nil, fmt.Errorf("core: %d trailing header bytes: %w", len(head)-off, ErrChecksum)
	}

	opts := Options{
		WindowLen:    int(windowLen),
		Coefficients: int(coeffs),
		Reduction:    ReductionKind(reduction),
		Strategy:     geom.Strategy(strategy),
		SubtrailLen:  int(subtrail),
		Tree:         DefaultOptions().Tree,
	}
	frozen := make([]*frozenSeg, 0, len(dirs))
	for i, d := range dirs {
		body, err := br.Section(maxIndexSection)
		if err != nil {
			return nil, fmt.Errorf("core: segment %d arena section: %w", i, err)
		}
		arena, err := arenaFromSection(body)
		if err != nil {
			return nil, err
		}
		flat, err := rtree.FlatFromArena(arena)
		if err != nil {
			return nil, fmt.Errorf("core: segment %d: %w", i, err)
		}
		if err := flat.Validate(); err != nil {
			return nil, fmt.Errorf("core: segment %d: %w", i, err)
		}
		if flat.Len() != d.count {
			return nil, fmt.Errorf("core: segment %d directory claims %d windows but tree holds %d", i, d.count, flat.Len())
		}
		if i == 0 {
			opts.Tree = flat.Config()
		} else if flat.Config().Dim != opts.Tree.Dim {
			return nil, fmt.Errorf("core: segment %d dimension %d differs from segment 0 (%d)", i, flat.Config().Dim, opts.Tree.Dim)
		}
		frozen = append(frozen, &frozenSeg{flat: flat, ranges: d.ranges, count: d.count})
	}
	if err := br.Trailer(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// NewIndex validates the options and builds the feature map; the
	// unbuilt shell is kept only for that (no tree of its own).
	ix, err := NewIndex(st, opts)
	if err != nil {
		return nil, err
	}
	if len(frozen) > 0 && frozen[0].flat.Config().Dim != ix.fmap.Dim() {
		return nil, fmt.Errorf("core: segment dimension %d does not match options (%d)",
			frozen[0].flat.Config().Dim, ix.fmap.Dim())
	}
	g := emptySegmented(st, ix.opts, ix.fmap, nil)
	g.frozen = frozen
	copy(g.next, next)
	if err := g.finishInit(); err != nil {
		return nil, err
	}
	return g, nil
}
