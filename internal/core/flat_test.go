package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"scaleshift/internal/binio"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// testQueries derives a few transformed windows from the store so
// every query has at least one guaranteed match.
func testQueries(t *testing.T, ix *Index, n int) []vec.Vector {
	t.Helper()
	st := ix.Store()
	wl := ix.Options().WindowLen
	var qs []vec.Vector
	for i := 0; i < n; i++ {
		seq := i % st.NumSequences()
		start := (i * 13) % (st.SequenceLen(seq) - wl)
		w := make(vec.Vector, wl)
		if err := st.Window(seq, start, wl, w, nil); err != nil {
			t.Fatal(err)
		}
		qs = append(qs, vec.Apply(w, 1.0+0.1*float64(i), float64(i)-2))
	}
	return qs
}

// checkStatsInvariant asserts the accounting identity every search
// must satisfy: all candidates are either verified away or reported.
func checkStatsInvariant(t *testing.T, s SearchStats) {
	t.Helper()
	if s.Candidates != s.FalseAlarms+s.CostRejected+s.Results {
		t.Fatalf("stats invariant broken: Candidates=%d FalseAlarms=%d CostRejected=%d Results=%d",
			s.Candidates, s.FalseAlarms, s.CostRejected, s.Results)
	}
}

// runAllSearches exercises range, long-query, k-NN, and batch search,
// returning everything for equality comparison.  Stats are asserted
// against the accounting invariant as they stream by.
func runAllSearches(t *testing.T, ix *Index, qs []vec.Vector, eps float64) ([][]Match, [][]Match, [][]Match, []SearchStats) {
	t.Helper()
	var rangeRes, nnRes [][]Match
	var allStats []SearchStats
	for _, q := range qs {
		var s SearchStats
		m, err := ix.Search(q, eps, UnboundedCosts(), &s)
		if err != nil {
			t.Fatal(err)
		}
		checkStatsInvariant(t, s)
		// Wall-clock fields differ run to run; blank them for equality.
		s.PlanTime, s.ProbeTime, s.VerifyTime = 0, 0, 0
		rangeRes = append(rangeRes, m)
		allStats = append(allStats, s)

		var ns SearchStats
		nn, err := ix.NearestNeighbors(q, 5, &ns)
		if err != nil {
			t.Fatal(err)
		}
		nnRes = append(nnRes, nn)
	}
	// Long query: three windows stitched together.
	wl := ix.Options().WindowLen
	long := make(vec.Vector, 3*wl)
	for i := range long {
		long[i] = qs[0][i%wl] + 0.01*float64(i)
	}
	var ls SearchStats
	lm, err := ix.SearchLong(long, eps, UnboundedCosts(), &ls)
	if err != nil {
		t.Fatal(err)
	}
	checkStatsInvariant(t, ls)
	batch, err := ix.SearchBatch(qs, eps, UnboundedCosts(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch = append(batch, lm)
	return rangeRes, nnRes, batch, allStats
}

// TestFrozenIndexEquivalence freezes an index and asserts every search
// family returns bit-identical results and identical deterministic
// stats to the pointer-tree representation.
func TestFrozenIndexEquivalence(t *testing.T) {
	for _, bulk := range []bool{false, true} {
		opts := testOptions()
		ix := buildTestIndex(t, opts, 8, 120)
		if bulk {
			st := ix.Store()
			fresh, err := NewIndex(st, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.BuildBulk(); err != nil {
				t.Fatal(err)
			}
			ix = fresh
		}
		qs := testQueries(t, ix, 6)
		eps := 8.0
		wantR, wantNN, wantB, wantS := runAllSearches(t, ix, qs, eps)

		if err := ix.Freeze(); err != nil {
			t.Fatal(err)
		}
		if !ix.Frozen() {
			t.Fatal("Freeze did not mark index frozen")
		}
		gotR, gotNN, gotB, gotS := runAllSearches(t, ix, qs, eps)

		if !reflect.DeepEqual(wantR, gotR) {
			t.Fatalf("bulk=%v: range results diverged after freeze", bulk)
		}
		if !reflect.DeepEqual(wantNN, gotNN) {
			t.Fatalf("bulk=%v: k-NN results diverged after freeze", bulk)
		}
		if !reflect.DeepEqual(wantB, gotB) {
			t.Fatalf("bulk=%v: batch/long results diverged after freeze", bulk)
		}
		if !reflect.DeepEqual(wantS, gotS) {
			t.Fatalf("bulk=%v: search stats diverged after freeze:\n%+v\nvs\n%+v", bulk, wantS, gotS)
		}
	}
}

// TestFileLoadedIndexEquivalence round-trips through the v3 artifact
// on disk (the mmap zero-copy path) and asserts search equality, then
// exercises VerifyArtifact and Close.
func TestFileLoadedIndexEquivalence(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 8, 120)
	qs := testQueries(t, ix, 6)
	eps := 8.0
	wantR, wantNN, wantB, wantS := runAllSearches(t, ix, qs, eps)

	path := filepath.Join(t.TempDir(), "ix.v3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadIndexFile(path, ix.Store())
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if !loaded.Frozen() {
		t.Fatal("file-loaded v3 index should serve from the flat arena")
	}
	if err := loaded.VerifyArtifact(); err != nil {
		t.Fatalf("VerifyArtifact on a pristine artifact: %v", err)
	}
	gotR, gotNN, gotB, gotS := runAllSearches(t, loaded, qs, eps)
	if !reflect.DeepEqual(wantR, gotR) || !reflect.DeepEqual(wantNN, gotNN) ||
		!reflect.DeepEqual(wantB, gotB) || !reflect.DeepEqual(wantS, gotS) {
		t.Fatal("file-loaded index diverged from in-memory index")
	}

	// Stream load of the same artifact agrees too.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := LoadIndex(bytes.NewReader(data), ix.Store())
	if err != nil {
		t.Fatal(err)
	}
	sR, sNN, sB, sS := runAllSearches(t, streamed, qs, eps)
	if !reflect.DeepEqual(wantR, sR) || !reflect.DeepEqual(wantNN, sNN) ||
		!reflect.DeepEqual(wantB, sB) || !reflect.DeepEqual(wantS, sS) {
		t.Fatal("stream-loaded index diverged from in-memory index")
	}
}

// TestFrozenIndexMutationThaws checks that a frozen (and file-loaded)
// index transparently returns to the mutable representation on
// structural mutation, with nothing lost.
func TestFrozenIndexMutationThaws(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 4, 80)
	before := ix.WindowCount()
	if err := ix.Freeze(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.AppendAndIndex("NEW", make([]float64, 64)); err != nil {
		t.Fatal(err)
	}
	if ix.Frozen() {
		t.Fatal("mutation should thaw the frozen index")
	}
	wl := opts.WindowLen
	if got, want := ix.WindowCount(), before+(64-wl+1); got != want {
		t.Fatalf("window count after thaw+append = %d, want %d", got, want)
	}
}

// TestV3ArtifactCorruption is the exhaustive sweep over the v3 format:
// flip a bit in EVERY byte and cut the file at every offset.  The
// stream loader must reject every mutation outright; the lazy file
// loader may open some mutations, but then the deferred VerifyArtifact
// must catch them.  Nothing may panic.
func TestV3ArtifactCorruption(t *testing.T) {
	opts := testOptions()
	opts.WindowLen = 24
	ix := buildTestIndex(t, opts, 2, 40)
	st := ix.Store()
	var buf bytes.Buffer
	if err := ix.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	probe := func(mut []byte, what string, i int) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s at %d: panic %v", what, i, r)
			}
		}()
		if _, err := LoadIndex(bytes.NewReader(mut), st); err == nil {
			t.Fatalf("%s at %d: stream load accepted a corrupt artifact", what, i)
		}
		lazy, err := loadIndexBytes(mut, st)
		if err != nil {
			return
		}
		lazy.artifact = mut
		if err := lazy.VerifyArtifact(); err == nil {
			t.Fatalf("%s at %d: VerifyArtifact accepted a corrupt artifact", what, i)
		}
	}

	for i := range good {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0x40
		probe(mut, "flip", i)
	}
	for cut := 0; cut < len(good); cut++ {
		probe(good[:cut], "cut", cut)
	}
}

// writeV2Artifact emits the previous format version so compatibility
// stays pinned by a test even though WriteBinary now produces v3.
func writeV2Artifact(t *testing.T, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.Magic([]byte("SSIDX\x02"))
	bw.Section(ix.encodeHeader())
	var tb bytes.Buffer
	if err := ix.tree.WriteBinary(&tb); err != nil {
		t.Fatal(err)
	}
	bw.Section(tb.Bytes())
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestV2ArtifactCompatibility loads a v2 (pointer-tree) artifact
// through both the stream and file paths and asserts full equality
// with the live index.
func TestV2ArtifactCompatibility(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 6, 100)
	qs := testQueries(t, ix, 4)
	eps := 8.0
	wantR, wantNN, wantB, wantS := runAllSearches(t, ix, qs, eps)
	v2 := writeV2Artifact(t, ix)

	streamed, err := LoadIndex(bytes.NewReader(v2), ix.Store())
	if err != nil {
		t.Fatalf("v2 stream load: %v", err)
	}
	if streamed.Frozen() {
		t.Fatal("v2 artifacts parse into the pointer representation")
	}
	sR, sNN, sB, sS := runAllSearches(t, streamed, qs, eps)
	if !reflect.DeepEqual(wantR, sR) || !reflect.DeepEqual(wantNN, sNN) ||
		!reflect.DeepEqual(wantB, sB) || !reflect.DeepEqual(wantS, sS) {
		t.Fatal("v2 stream-loaded index diverged")
	}

	path := filepath.Join(t.TempDir(), "ix.v2")
	if err := os.WriteFile(path, v2, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadIndexFile(path, ix.Store())
	if err != nil {
		t.Fatalf("v2 file load: %v", err)
	}
	defer fromFile.Close()
	fR, _, _, _ := runAllSearches(t, fromFile, qs, eps)
	if !reflect.DeepEqual(wantR, fR) {
		t.Fatal("v2 file-loaded index diverged")
	}

	// v2 corruption is rejected eagerly on both paths.
	mut := append([]byte(nil), v2...)
	mut[len(mut)/2] ^= 0x10
	if _, err := LoadIndex(bytes.NewReader(mut), ix.Store()); err == nil {
		t.Fatal("corrupt v2 accepted by stream load")
	}
	if _, err := loadIndexBytes(mut, ix.Store()); err == nil {
		t.Fatal("corrupt v2 accepted by byte load")
	}
}

// TestLoadIndexFileMissing keeps the degraded-open contract: a missing
// artifact degrades OpenOrRebuildFile rather than failing it.
func TestLoadIndexFileMissing(t *testing.T) {
	opts := testOptions()
	st := store.New()
	st.AppendSequence("a", make([]float64, 80))
	if _, err := LoadIndexFile(filepath.Join(t.TempDir(), "nope"), st); err == nil {
		t.Fatal("missing artifact should fail LoadIndexFile")
	}
	ix, status, err := OpenOrRebuildFile(filepath.Join(t.TempDir(), "nope"), st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Degraded {
		t.Fatal("missing artifact should degrade OpenOrRebuildFile")
	}
	if deg, _ := ix.Degraded(); !deg {
		t.Fatal("index should report degraded")
	}
}
