package core

import (
	"fmt"
	"io"

	"scaleshift/internal/store"
)

// OpenStatus reports how an index came up: healthy (zero value), or
// degraded with the validation failure that caused the fallback.
type OpenStatus struct {
	// Degraded is true when the index artifact failed validation and
	// the returned index serves queries through the scan path over
	// the raw store.
	Degraded bool
	// Reason is a one-line human-readable cause (empty when healthy).
	Reason string
	// Err is the underlying load error (nil when healthy); matchable
	// with errors.Is against ErrChecksum, ErrTruncated, ErrVersion.
	Err error
}

// OpenOrRebuild loads an index artifact and degrades instead of
// failing when the artifact is damaged: if LoadIndex rejects r (bad
// checksum, truncation, version skew, store mismatch), the returned
// index has no tree but knows every window of st, so the engine's
// scan path answers every range query with exactly the same match
// set — the acceleration is lost, not the answers.  The status says
// which of the two happened; an error is returned only when even the
// degraded index cannot be constructed (invalid opts).
//
// A degraded index is read-only: mutation and serialization return
// errors, and nearest-neighbour queries (whose early termination
// needs the tree) fail loudly rather than returning wrong answers.
func OpenOrRebuild(r io.Reader, st *store.Store, opts Options) (*Index, OpenStatus, error) {
	ix, err := LoadIndex(r, st)
	if err == nil {
		return ix, OpenStatus{}, nil
	}
	reason := fmt.Sprintf("index artifact rejected: %v", err)
	deg, derr := NewDegradedIndex(st, opts, reason)
	if derr != nil {
		return nil, OpenStatus{Degraded: true, Reason: reason, Err: err}, derr
	}
	return deg, OpenStatus{Degraded: true, Reason: reason, Err: err}, nil
}

// NewDegradedIndex builds an index that has no tree but marks every
// complete window of every sequence in st as searchable, so the scan
// access path enumerates all of them and the exact verifier keeps the
// result set identical to a healthy index.  reason is surfaced in
// Explain output and Degraded().
func NewDegradedIndex(st *store.Store, opts Options, reason string) (*Index, error) {
	if reason == "" {
		reason = "unspecified degradation"
	}
	ix, err := NewIndex(st, opts)
	if err != nil {
		return nil, err
	}
	ix.degraded = reason
	ix.indexed = make([]int, st.NumSequences())
	n := opts.WindowLen
	for seq := range ix.indexed {
		if count := st.SequenceLen(seq) - n + 1; count > 0 {
			ix.indexed[seq] = count
		}
	}
	return ix, nil
}
