package core

import (
	"sync"
	"time"

	"scaleshift/internal/engine"
	"scaleshift/internal/obs"
	"scaleshift/internal/rtree"
)

// Instrumentation hooks: every completed range query feeds its
// SearchStats delta into the obs default registry.  Recording is one
// atomic add per field — race-free under concurrent SearchBatch
// workers — and the whole function is skipped with a single atomic
// load when the observability layer is disabled, so library embedders
// pay nothing.

// cm holds the registered metric handles, created once on first
// recording after obs.Enable (registration takes a lock; recording
// must not).
var cm struct {
	once sync.Once

	searches     *obs.Counter
	searchErrors *obs.Counter
	candidates   *obs.Counter
	falseAlarms  *obs.Counter
	costRejected *obs.Counter
	matches      *obs.Counter
	nodeReads    *obs.Counter
	dataPages    *obs.Counter
	degraded     *obs.Counter
	pathProbes   [engine.NumPathKinds]*obs.Counter

	searchDur  *obs.Histogram
	planDur    *obs.Histogram
	probeDur   *obs.Histogram
	verifyDur  *obs.Histogram
	candPerQ   *obs.Histogram
	matchPerQ  *obs.Histogram
	piecesPerQ *obs.Histogram

	compactions  *obs.Counter
	compactBuild *obs.Histogram
	compactPause *obs.Histogram
	deltaApply   *obs.Histogram
}

func initCoreMetrics() {
	r := obs.Default
	cm.searches = r.Counter("scaleshift_searches_total",
		"Range queries executed (a multipiece long query counts once).")
	cm.searchErrors = r.Counter("scaleshift_search_errors_total",
		"Range queries that returned an error (including cancellation).")
	cm.candidates = r.Counter("scaleshift_candidates_total",
		"Candidate windows emitted by index probes and handed to verification.")
	cm.falseAlarms = r.Counter("scaleshift_false_alarms_total",
		"Candidates rejected by the exact distance check.")
	cm.costRejected = r.Counter("scaleshift_cost_rejected_total",
		"Exact matches rejected by the transformation cost bounds.")
	cm.matches = r.Counter("scaleshift_matches_total",
		"Matches returned to callers.")
	cm.nodeReads = r.Counter("scaleshift_index_node_reads_total",
		"R*-tree index pages read by searches.")
	cm.dataPages = r.Counter("scaleshift_data_page_reads_total",
		"Distinct data pages fetched during verification (per-query distinct counts, summed).")
	cm.degraded = r.Counter("scaleshift_degraded_probes_total",
		"Probes answered by the degraded-mode scan fallback.")
	for k := engine.PathRTree; k < engine.NumPathKinds; k++ {
		cm.pathProbes[k] = r.Counter("scaleshift_path_probes_total",
			"Index-phase probes served, by access path.",
			obs.Label{Key: "path", Value: k.String()})
	}
	cm.searchDur = r.DurationHistogram("scaleshift_search_duration_seconds",
		"End-to-end range-query latency (plan+probe+verify).")
	cm.planDur = r.DurationHistogram("scaleshift_plan_duration_seconds",
		"Planner stage latency.")
	cm.probeDur = r.DurationHistogram("scaleshift_probe_duration_seconds",
		"Index-probe stage latency.")
	cm.verifyDur = r.DurationHistogram("scaleshift_verify_duration_seconds",
		"Verification stage latency.")
	cm.candPerQ = r.Histogram("scaleshift_candidates_per_query",
		"Candidate windows per query.")
	cm.matchPerQ = r.Histogram("scaleshift_matches_per_query",
		"Matches per query.")
	cm.piecesPerQ = r.Histogram("scaleshift_pieces_per_query",
		"Index probes per query (1 for plain range queries, k for multipiece).")
	cm.compactions = r.Counter("scaleshift_compactions_total",
		"Segment compactions completed (merges and delta freezes).")
	cm.compactBuild = r.DurationHistogram("scaleshift_compaction_build_seconds",
		"Compaction build phase: constructing the replacement segment off-lock.")
	cm.compactPause = r.DurationHistogram("scaleshift_compaction_pause_seconds",
		"Compaction swap pause: queries blocked while the segment list swaps.")
	cm.deltaApply = r.DurationHistogram("scaleshift_delta_apply_seconds",
		"Ingest delta application: appending points to the mutable tail under the index lock.")
}

// recordSearchMetrics publishes one completed range query's stats
// delta.  pieces is the number of index probes the query issued.
func recordSearchMetrics(d *SearchStats, pieces int) {
	if !obs.Enabled() {
		return
	}
	cm.once.Do(initCoreMetrics)
	cm.searches.Inc()
	cm.candidates.Add(int64(d.Candidates))
	cm.falseAlarms.Add(int64(d.FalseAlarms))
	cm.costRejected.Add(int64(d.CostRejected))
	cm.matches.Add(int64(d.Results))
	cm.nodeReads.Add(int64(d.IndexNodeAccesses))
	cm.dataPages.Add(int64(d.DataPageAccesses))
	cm.degraded.Add(int64(d.DegradedProbes))
	for k := engine.PathRTree; k < engine.NumPathKinds; k++ {
		if n := d.PathProbes[k]; n > 0 {
			cm.pathProbes[k].Add(int64(n))
		}
	}
	cm.searchDur.ObserveDuration(d.PlanTime + d.ProbeTime + d.VerifyTime)
	cm.planDur.ObserveDuration(d.PlanTime)
	cm.probeDur.ObserveDuration(d.ProbeTime)
	cm.verifyDur.ObserveDuration(d.VerifyTime)
	cm.candPerQ.Observe(int64(d.Candidates))
	cm.matchPerQ.Observe(int64(d.Results))
	cm.piecesPerQ.Observe(int64(pieces))
}

// recordCompaction publishes one completed compaction's phase timings:
// build ran off-lock, pause is the query-visible swap window.
func recordCompaction(build, pause time.Duration) {
	if !obs.Enabled() {
		return
	}
	cm.once.Do(initCoreMetrics)
	cm.compactions.Inc()
	cm.compactBuild.ObserveDuration(build)
	cm.compactPause.ObserveDuration(pause)
}

// recordDeltaApply publishes one append's in-memory application time
// (WAL durability excluded — the wal package times its own fsync).
func recordDeltaApply(d time.Duration) {
	if !obs.Enabled() {
		return
	}
	cm.once.Do(initCoreMetrics)
	cm.deltaApply.ObserveDuration(d)
}

// recordSearchError counts a failed range query (validation, I/O, or
// cancellation).
func recordSearchError() {
	if !obs.Enabled() {
		return
	}
	cm.once.Do(initCoreMetrics)
	cm.searchErrors.Inc()
}

// spanEndWithError stamps err (when non-nil) on a span and ends it —
// the shared shutdown of the per-stage spans.
func spanEndWithError(s *obs.Span, err error) {
	if err != nil {
		s.SetAttr("error", err.Error())
	}
	s.End()
}

// descentBaseline snapshots the tree counters before a descent so the
// span can attribute only this probe's reads (ts is cumulative across
// the pieces of a long query).
func descentBaseline(ts *rtree.SearchStats) (nodes, leaves int) {
	if ts == nil {
		return 0, 0
	}
	return ts.NodeAccesses, ts.LeafEntriesChecked
}

// endDescentSpan closes a per-descent span with the probe's node-read
// and leaf-check deltas plus the candidate count.
func endDescentSpan(s *obs.Span, ts *rtree.SearchStats, nodesBefore, leavesBefore, cands int, err error) {
	if s == nil {
		return
	}
	if ts != nil {
		s.SetInt("nodes", int64(ts.NodeAccesses-nodesBefore))
		s.SetInt("leaf_checks", int64(ts.LeafEntriesChecked-leavesBefore))
	}
	s.SetInt("candidates", int64(cands))
	spanEndWithError(s, err)
}
