package core

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"scaleshift/internal/geom"
	"scaleshift/internal/query"
	"scaleshift/internal/seqscan"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// testOptions uses a short window so small stores produce many
// windows quickly.
func testOptions() Options {
	opts := DefaultOptions()
	opts.WindowLen = 32
	return opts
}

// buildTestIndex returns a built index over a small synthetic store.
func buildTestIndex(t testing.TB, opts Options, companies, days int) *Index {
	t.Helper()
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = companies
	cfg.Days = days
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewIndexValidation(t *testing.T) {
	st := store.New()
	tests := []struct {
		name   string
		mutate func(*Options)
		wantOK bool
	}{
		{"default", func(o *Options) {}, true},
		{"window too short", func(o *Options) { o.WindowLen = 2 }, false},
		{"fc zero", func(o *Options) { o.Coefficients = 0 }, false},
		{"fc too large", func(o *Options) { o.Coefficients = 70; o.WindowLen = 128 }, false},
		{"bad tree", func(o *Options) { o.Tree.MinEntries = 0 }, false},
		{"bad strategy", func(o *Options) { o.Strategy = geom.Strategy(9) }, false},
		{"spheres ok", func(o *Options) { o.Strategy = geom.BoundingSpheres }, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			tc.mutate(&opts)
			_, err := NewIndex(st, opts)
			if (err == nil) != tc.wantOK {
				t.Errorf("err=%v wantOK=%v", err, tc.wantOK)
			}
		})
	}
}

func TestBuildIndexesEveryWindow(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 10, 100)
	want := 10 * (100 - opts.WindowLen + 1)
	if got := ix.WindowCount(); got != want {
		t.Errorf("WindowCount = %d, want %d", got, want)
	}
	if ix.IndexPageCount() < 2 || ix.TreeHeight() < 2 {
		t.Errorf("index too small: %d pages, height %d", ix.IndexPageCount(), ix.TreeHeight())
	}
	// Build is idempotent.
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if got := ix.WindowCount(); got != want {
		t.Errorf("re-Build changed WindowCount to %d", got)
	}
}

func TestSearchValidation(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 3, 60)
	if _, err := ix.Search(make(vec.Vector, 10), 1, UnboundedCosts(), nil); err == nil {
		t.Error("short query accepted")
	}
	if _, err := ix.Search(make(vec.Vector, 32), -1, UnboundedCosts(), nil); err == nil {
		t.Error("negative epsilon accepted")
	}
}

// TestSearchExactlyMatchesSeqScan is the central correctness property:
// for disguised queries at several epsilons and both penetration
// strategies, the index returns exactly the brute-force result set with
// identical distances and transforms.
func TestSearchExactlyMatchesSeqScan(t *testing.T) {
	for _, strategy := range []geom.Strategy{geom.EnteringExiting, geom.BoundingSpheres} {
		t.Run(strategy.String(), func(t *testing.T) {
			opts := testOptions()
			opts.Strategy = strategy
			ix := buildTestIndex(t, opts, 15, 150)
			st := ix.Store()

			qcfg := query.DefaultConfig()
			qcfg.N = 8
			qcfg.WindowLen = opts.WindowLen
			qs, err := query.Generate(st, qcfg)
			if err != nil {
				t.Fatal(err)
			}
			scale, err := query.SENormScale(st, opts.WindowLen, 100, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range qs {
				for _, frac := range []float64{0, 0.05, 0.3} {
					eps := frac * scale * q.Scale
					got, err := ix.Search(q.Values, eps, UnboundedCosts(), nil)
					if err != nil {
						t.Fatal(err)
					}
					want, err := seqscan.Search(st, q.Values, eps, nil, nil)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("eps=%v: index %d matches, scan %d", eps, len(got), len(want))
					}
					for i := range got {
						g, w := got[i], want[i]
						if g.Seq != w.Seq || g.Start != w.Start {
							t.Fatalf("eps=%v rank %d: (%d,%d) vs (%d,%d)",
								eps, i, g.Seq, g.Start, w.Seq, w.Start)
						}
						if math.Abs(g.Dist-w.Dist) > 1e-9 ||
							math.Abs(g.Scale-w.Scale) > 1e-9 ||
							math.Abs(g.Shift-w.Shift) > 1e-9 {
							t.Fatalf("eps=%v rank %d: result fields differ", eps, i)
						}
					}
				}
			}
		})
	}
}

func TestSearchFindsDisguisedSource(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 10, 120)
	st := ix.Store()
	w := make(vec.Vector, opts.WindowLen)
	if err := st.Window(4, 37, opts.WindowLen, w, nil); err != nil {
		t.Fatal(err)
	}
	q := vec.Apply(w, 2.5, 30) // disguise
	got, err := ix.Search(q, 1e-6*vec.Norm(w), UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range got {
		if m.Seq == 4 && m.Start == 37 {
			found = true
			// Transform must invert the disguise: w = (q-30)/2.5.
			if math.Abs(m.Scale-1/2.5) > 1e-9 || math.Abs(m.Shift+30/2.5) > 1e-6 {
				t.Errorf("recovered a=%v b=%v, want a=0.4 b=-12", m.Scale, m.Shift)
			}
			if m.Name != st.SequenceName(4) {
				t.Errorf("name %q", m.Name)
			}
		}
	}
	if !found {
		t.Fatal("disguised source window not found")
	}
}

func TestSearchCostBounds(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 10, 120)
	st := ix.Store()
	w := make(vec.Vector, opts.WindowLen)
	if err := st.Window(2, 10, opts.WindowLen, w, nil); err != nil {
		t.Fatal(err)
	}
	q := vec.Apply(w, 2, 5)
	eps := 1e-6 * vec.Norm(w)

	// Unbounded: source is found with a = 0.5, b = -2.5.
	var statsU SearchStats
	all, err := ix.Search(q, eps, UnboundedCosts(), &statsU)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no matches unbounded")
	}
	// Bounds excluding a = 0.5 reject it.
	bounds := UnboundedCosts()
	bounds.ScaleMin, bounds.ScaleMax = 0.9, 1.1
	var statsB SearchStats
	restricted, err := ix.Search(q, eps, bounds, &statsB)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range restricted {
		if m.Scale < 0.9 || m.Scale > 1.1 {
			t.Errorf("cost bound leaked scale %v", m.Scale)
		}
	}
	if len(restricted) >= len(all) {
		t.Errorf("bounds did not restrict: %d vs %d", len(restricted), len(all))
	}
	// Scale bounds are pushed into the index as a segment search, so
	// out-of-range candidates are pruned before post-processing.
	if statsB.Candidates >= statsU.Candidates {
		t.Errorf("segment pruning ineffective: %d candidates vs %d unbounded",
			statsB.Candidates, statsU.Candidates)
	}
	// Shift bounds cannot be pushed into the shift-eliminated index, so
	// they exercise the post-processing rejection path.
	shiftOnly := UnboundedCosts()
	shiftOnly.ShiftMin, shiftOnly.ShiftMax = 1e17, 1e18 // rejects everything
	var statsS SearchStats
	none, err := ix.Search(q, eps, shiftOnly, &statsS)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("impossible shift bound returned %d matches", len(none))
	}
	if statsS.CostRejected == 0 {
		t.Error("no cost rejections recorded for shift-only bounds")
	}
	// The zero CostBounds accepts only a = b = 0.
	if (CostBounds{}).Allow(0.5, 0) {
		t.Error("zero bounds accepted nonzero scale")
	}
	if !(CostBounds{}).Allow(0, 0) {
		t.Error("zero bounds rejected the identity-cost transform")
	}
}

func TestSearchConstantQuery(t *testing.T) {
	// A constant query has a degenerate SE-line (the origin): matches
	// are windows whose own fluctuation is within eps.
	opts := testOptions()
	ix := buildTestIndex(t, opts, 6, 80)
	st := ix.Store()
	q := make(vec.Vector, opts.WindowLen)
	for i := range q {
		q[i] = 42
	}
	for _, eps := range []float64{0.5, 5} {
		got, err := ix.Search(q, eps, UnboundedCosts(), nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := seqscan.Search(st, q, eps, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("eps=%v: index %d, scan %d", eps, len(got), len(want))
		}
	}
}

func TestSearchStatsAccounting(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 20, 200)
	st := ix.Store()
	qcfg := query.DefaultConfig()
	qcfg.N = 5
	qcfg.WindowLen = opts.WindowLen
	qs, err := query.Generate(st, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	scale, err := query.SENormScale(st, opts.WindowLen, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	var agg SearchStats
	for _, q := range qs {
		var stats SearchStats
		// Keep eps well below the typical window fluctuation: windows
		// with SE-norm <= eps match every query by taking a ~ 0, so an
		// overly generous eps legitimately defeats pruning.
		res, err := ix.Search(q.Values, 0.02*scale, UnboundedCosts(), &stats)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Results != len(res) {
			t.Errorf("Results=%d, len=%d", stats.Results, len(res))
		}
		if stats.Candidates != stats.Results+stats.FalseAlarms+stats.CostRejected {
			t.Errorf("candidates %d != results %d + false alarms %d + cost rejected %d",
				stats.Candidates, stats.Results, stats.FalseAlarms, stats.CostRejected)
		}
		if stats.IndexNodeAccesses < 1 {
			t.Error("no index page accesses recorded")
		}
		if stats.PageAccesses() != stats.IndexNodeAccesses+stats.DataPageAccesses {
			t.Error("PageAccesses() inconsistent")
		}
		agg.Add(stats)
	}
	// Pruning effectiveness on average: stock feature vectors cluster
	// along low-frequency directions, so a single unlucky query line can
	// sweep much of the database, but the workload mean must show real
	// pruning.  (The page-count comparison against a sequential scan
	// needs paper-scale data and lives in the benchmark harness.)
	if avg := agg.LeafEntriesChecked / len(qs); avg >= ix.WindowCount()/2 {
		t.Errorf("avg leaf entries checked %d of %d; pruning ineffective",
			avg, ix.WindowCount())
	}
	if avg := agg.IndexNodeAccesses / len(qs); avg >= ix.IndexPageCount() {
		t.Errorf("avg index pages visited %d of %d", avg, ix.IndexPageCount())
	}
}

func TestDynamicAppendAndIndex(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 5, 80)
	before := ix.WindowCount()

	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 50 + 10*math.Sin(float64(i)/7)
	}
	seq, err := ix.AppendAndIndex("NEW", vals)
	if err != nil {
		t.Fatal(err)
	}
	wantNew := 100 - opts.WindowLen + 1
	if got := ix.WindowCount() - before; got != wantNew {
		t.Errorf("indexed %d new windows, want %d", got, wantNew)
	}
	// The new data is immediately searchable.
	w := make(vec.Vector, opts.WindowLen)
	if err := ix.Store().Window(seq, 20, opts.WindowLen, w, nil); err != nil {
		t.Fatal(err)
	}
	q := vec.Apply(w, 0.5, -3)
	got, err := ix.Search(q, 1e-6, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range got {
		if m.Seq == seq && m.Start == 20 {
			found = true
		}
	}
	if !found {
		t.Error("freshly indexed window not found")
	}
}

func TestUnindexSequence(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 5, 80)
	st := ix.Store()
	before := ix.WindowCount()
	perSeq := 80 - opts.WindowLen + 1

	if err := ix.UnindexSequence(2); err != nil {
		t.Fatal(err)
	}
	if got := before - ix.WindowCount(); got != perSeq {
		t.Errorf("removed %d windows, want %d", got, perSeq)
	}
	// Windows of sequence 2 are no longer returned.
	w := make(vec.Vector, opts.WindowLen)
	if err := st.Window(2, 5, opts.WindowLen, w, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Search(w, 1e-9, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range got {
		if m.Seq == 2 {
			t.Fatalf("unindexed window returned: %+v", m)
		}
	}
	// Re-indexing restores them.
	if err := ix.IndexSequence(2); err != nil {
		t.Fatal(err)
	}
	if ix.WindowCount() != before {
		t.Errorf("re-index count %d, want %d", ix.WindowCount(), before)
	}
	// Out-of-range errors.
	if err := ix.UnindexSequence(99); err == nil {
		t.Error("bad sequence accepted")
	}
}

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 12, 150)
	st := ix.Store()
	qcfg := query.DefaultConfig()
	qcfg.N = 5
	qcfg.WindowLen = opts.WindowLen
	qs, err := query.Generate(st, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		for _, k := range []int{1, 5, 20} {
			var stats SearchStats
			got, err := ix.NearestNeighbors(q.Values, k, &stats)
			if err != nil {
				t.Fatal(err)
			}
			want, err := seqscan.Nearest(st, q.Values, k, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != k || len(want) != k {
				t.Fatalf("k=%d: got %d, oracle %d", k, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("k=%d rank %d: %v vs %v", k, i, got[i].Dist, want[i].Dist)
				}
			}
			if stats.Candidates == 0 || stats.LeafEntriesChecked == 0 {
				t.Error("NN stats empty")
			}
		}
	}
}

func TestNearestNeighborsValidation(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 3, 60)
	if _, err := ix.NearestNeighbors(make(vec.Vector, 5), 3, nil); err == nil {
		t.Error("short query accepted")
	}
	if _, err := ix.NearestNeighbors(make(vec.Vector, 32), 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSearchLongMatchesBruteForce(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 10, 200)
	st := ix.Store()
	scale, err := query.SENormScale(st, 96, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Long queries: exactly 3 pieces (96 = 3*32) and a ragged length.
	for _, L := range []int{96, 100} {
		w := make(vec.Vector, L)
		if err := st.Window(7, 31, L, w, nil); err != nil {
			t.Fatal(err)
		}
		q := vec.Apply(w, 1.7, -8)
		for _, eps := range []float64{1e-6 * vec.Norm(w), 0.1 * scale, 0.4 * scale} {
			got, err := ix.SearchLong(q, eps, UnboundedCosts(), nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := seqscan.Search(st, q, eps, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("L=%d eps=%v: index %d, scan %d", L, eps, len(got), len(want))
			}
			for i := range got {
				if got[i].Seq != want[i].Seq || got[i].Start != want[i].Start {
					t.Fatalf("L=%d eps=%v rank %d: alignment differs", L, eps, i)
				}
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("L=%d eps=%v rank %d: dist differs", L, eps, i)
				}
			}
		}
	}
}

func TestSearchLongValidation(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 3, 60)
	if _, err := ix.SearchLong(make(vec.Vector, 16), 1, UnboundedCosts(), nil); err == nil {
		t.Error("short query accepted")
	}
	if _, err := ix.SearchLong(make(vec.Vector, 64), -1, UnboundedCosts(), nil); err == nil {
		t.Error("negative epsilon accepted")
	}
	// Exactly window length delegates to Search.
	q := make(vec.Vector, 32)
	for i := range q {
		q[i] = float64(i)
	}
	if _, err := ix.SearchLong(q, 1, UnboundedCosts(), nil); err != nil {
		t.Errorf("window-length query failed: %v", err)
	}
}

func TestStrategiesReturnIdenticalResults(t *testing.T) {
	optsEE := testOptions()
	optsBS := testOptions()
	optsBS.Strategy = geom.BoundingSpheres
	ixEE := buildTestIndex(t, optsEE, 10, 120)
	ixBS := buildTestIndex(t, optsBS, 10, 120)
	st := ixEE.Store()
	scale, err := query.SENormScale(st, 32, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	w := make(vec.Vector, 32)
	if err := st.Window(3, 40, 32, w, nil); err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0, 0.1 * scale, 0.5 * scale} {
		a, err := ixEE.Search(w, eps, UnboundedCosts(), nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ixBS.Search(w, eps, UnboundedCosts(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("eps=%v: %d vs %d results", eps, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("eps=%v rank %d: %+v vs %+v", eps, i, a[i], b[i])
			}
		}
	}
}

func TestIndexSequenceErrors(t *testing.T) {
	st := store.New()
	ix, err := NewIndex(st, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.IndexSequence(0); err == nil {
		t.Error("empty store sequence accepted")
	}
	if err := ix.IndexSequence(-1); err == nil {
		t.Error("negative sequence accepted")
	}
	// Sequence shorter than the window indexes zero windows, no error.
	st.AppendSequence("tiny", []float64{1, 2, 3})
	if err := ix.IndexSequence(0); err != nil {
		t.Errorf("short sequence errored: %v", err)
	}
	if ix.WindowCount() != 0 {
		t.Error("short sequence produced windows")
	}
}

func TestIndexSequenceIncrementalGrowth(t *testing.T) {
	// IndexSequence picks up windows that appeared since the last call
	// (store-level sequence growth is modelled by re-appending; here we
	// call IndexSequence twice and check idempotence instead).
	opts := testOptions()
	st := store.New()
	st.AppendSequence("a", make([]float64, 50))
	ix, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.IndexSequence(0); err != nil {
		t.Fatal(err)
	}
	n1 := ix.WindowCount()
	if err := ix.IndexSequence(0); err != nil {
		t.Fatal(err)
	}
	if ix.WindowCount() != n1 {
		t.Error("second IndexSequence call re-indexed windows")
	}
}

func TestBuildBulkMatchesBuild(t *testing.T) {
	opts := testOptions()
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 12
	cfg.Days = 150
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	inc, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Build(); err != nil {
		t.Fatal(err)
	}
	bulk, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.BuildBulk(); err != nil {
		t.Fatal(err)
	}
	if bulk.WindowCount() != inc.WindowCount() {
		t.Fatalf("bulk indexed %d windows, incremental %d", bulk.WindowCount(), inc.WindowCount())
	}
	if bulk.IndexPageCount() > inc.IndexPageCount() {
		t.Errorf("bulk tree larger: %d vs %d pages", bulk.IndexPageCount(), inc.IndexPageCount())
	}
	// Identical search results.
	scale, err := query.SENormScale(st, opts.WindowLen, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := make(vec.Vector, opts.WindowLen)
	for _, src := range []struct{ seq, start int }{{0, 5}, {7, 60}, {11, 100}} {
		if err := st.Window(src.seq, src.start, opts.WindowLen, w, nil); err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0, 0.05 * scale, 0.3 * scale} {
			a, err := inc.Search(w, eps, UnboundedCosts(), nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := bulk.Search(w, eps, UnboundedCosts(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("eps=%v: %d vs %d matches", eps, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("eps=%v rank %d differs", eps, i)
				}
			}
		}
	}
	// Bulk-built index is dynamic: appending still works.
	if _, err := bulk.AppendAndIndex("X", make([]float64, 60)); err != nil {
		t.Fatal(err)
	}
	// BuildBulk on a non-empty index is rejected.
	if err := bulk.BuildBulk(); err == nil {
		t.Error("BuildBulk on non-empty index accepted")
	}
}

func TestNearestNeighborsWithCosts(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 12, 150)
	st := ix.Store()
	w := make(vec.Vector, opts.WindowLen)
	if err := st.Window(3, 40, opts.WindowLen, w, nil); err != nil {
		t.Fatal(err)
	}
	costs := UnboundedCosts()
	costs.ScaleMin = 0.1
	got, err := ix.NearestNeighborsWithCosts(w, 15, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("returned %d", len(got))
	}
	for _, m := range got {
		if m.Scale < 0.1 {
			t.Fatalf("cost bound leaked scale %v", m.Scale)
		}
	}
	// Oracle: brute-force k smallest among windows passing the filter.
	var oracle []float64
	st.ScanWindows(opts.WindowLen, nil, func(seq, start int, win vec.Vector) bool {
		m := vec.MinDist(w, win)
		if m.Scale >= 0.1 {
			oracle = append(oracle, m.Dist)
		}
		return true
	})
	sort.Float64s(oracle)
	for i := range got {
		if math.Abs(got[i].Dist-oracle[i]) > 1e-9 {
			t.Fatalf("rank %d: %v vs oracle %v", i, got[i].Dist, oracle[i])
		}
	}
}

func TestHaarReductionIsExactToo(t *testing.T) {
	opts := testOptions()
	opts.Reduction = ReductionHaar
	ix := buildTestIndex(t, opts, 10, 140)
	st := ix.Store()
	scale, err := query.SENormScale(st, opts.WindowLen, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := make(vec.Vector, opts.WindowLen)
	for _, src := range []struct{ seq, start int }{{1, 5}, {6, 70}} {
		if err := st.Window(src.seq, src.start, opts.WindowLen, w, nil); err != nil {
			t.Fatal(err)
		}
		q := vec.Apply(w, 1.5, -4)
		for _, eps := range []float64{0, 0.1 * scale} {
			got, err := ix.Search(q, eps, UnboundedCosts(), nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := seqscan.Search(st, q, eps, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("eps=%v: haar index %d, scan %d", eps, len(got), len(want))
			}
		}
	}
	// Haar requires a power-of-two window.
	bad := testOptions()
	bad.Reduction = ReductionHaar
	bad.WindowLen = 100
	if _, err := NewIndex(store.New(), bad); err == nil {
		t.Error("non-power-of-two Haar window accepted")
	}
	// Unknown reduction kind rejected.
	ugly := testOptions()
	ugly.Reduction = ReductionKind(9)
	if _, err := NewIndex(store.New(), ugly); err == nil {
		t.Error("unknown reduction accepted")
	}
}

func TestConcurrentSearchesAreSafe(t *testing.T) {
	// Searches never mutate the index, so any number may run in
	// parallel (mutations require external synchronization, as
	// documented on Index).  Run with -race to verify.
	opts := testOptions()
	ix := buildTestIndex(t, opts, 10, 120)
	st := ix.Store()
	scale, err := query.SENormScale(st, opts.WindowLen, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Reference results computed serially.
	queries := make([]vec.Vector, 8)
	want := make([][]Match, len(queries))
	for i := range queries {
		w := make(vec.Vector, opts.WindowLen)
		if err := st.Window(i, 10*i, opts.WindowLen, w, nil); err != nil {
			t.Fatal(err)
		}
		queries[i] = vec.Apply(w, 1.2, 3)
		if want[i], err = ix.Search(queries[i], 0.1*scale, UnboundedCosts(), nil); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for i, q := range queries {
					got, err := ix.Search(q, 0.1*scale, UnboundedCosts(), nil)
					if err != nil {
						errs <- err
						return
					}
					if len(got) != len(want[i]) {
						errs <- fmt.Errorf("query %d: %d results, want %d", i, len(got), len(want[i]))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSearchBatchMatchesSerial(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 10, 120)
	st := ix.Store()
	scale, err := query.SENormScale(st, opts.WindowLen, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]vec.Vector, 12)
	w := make(vec.Vector, opts.WindowLen)
	for i := range queries {
		if err := st.Window(i%10, 7*i, opts.WindowLen, w, nil); err != nil {
			t.Fatal(err)
		}
		queries[i] = vec.Apply(w, 1.5, -2)
	}
	eps := 0.08 * scale

	var batchStats SearchStats
	batch, err := ix.SearchBatch(queries, eps, UnboundedCosts(), 4, &batchStats)
	if err != nil {
		t.Fatal(err)
	}
	var serialStats SearchStats
	for i, q := range queries {
		want, err := ix.Search(q, eps, UnboundedCosts(), &serialStats)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(want) {
			t.Fatalf("query %d: batch %d, serial %d", i, len(batch[i]), len(want))
		}
		for j := range want {
			if batch[i][j] != want[j] {
				t.Fatalf("query %d rank %d differs", i, j)
			}
		}
	}
	if batchStats.Results != serialStats.Results || batchStats.Candidates != serialStats.Candidates {
		t.Errorf("aggregated stats differ: %+v vs %+v", batchStats, serialStats)
	}
	// Error propagation: one bad query fails the batch.
	queries[5] = make(vec.Vector, 3)
	if _, err := ix.SearchBatch(queries, eps, UnboundedCosts(), 0, nil); err == nil {
		t.Error("bad query accepted in batch")
	}
}

func TestWriteIndexStats(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 6, 80)
	var buf bytes.Buffer
	if err := ix.WriteIndexStats(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "elongation") {
		t.Errorf("stats output malformed:\n%s", buf.String())
	}
}

// TestScaleBoundedSearchExact verifies the segment-pruned search
// returns exactly the brute-force result set under scale bounds, in
// both leaf representations and both strategies.
func TestScaleBoundedSearchExact(t *testing.T) {
	for _, trail := range []int{0, 8} {
		for _, strategy := range []geom.Strategy{geom.EnteringExiting, geom.BoundingSpheres} {
			opts := testOptions()
			opts.SubtrailLen = trail
			opts.Strategy = strategy
			ix := buildTestIndex(t, opts, 10, 130)
			st := ix.Store()
			scale, err := query.SENormScale(st, opts.WindowLen, 100, 3)
			if err != nil {
				t.Fatal(err)
			}
			w := make(vec.Vector, opts.WindowLen)
			if err := st.Window(4, 30, opts.WindowLen, w, nil); err != nil {
				t.Fatal(err)
			}
			q := vec.Apply(w, 2, 5)
			costs := UnboundedCosts()
			costs.ScaleMin, costs.ScaleMax = 0.1, 3
			for _, frac := range []float64{0.02, 0.15} {
				eps := frac * scale
				got, err := ix.Search(q, eps, costs, nil)
				if err != nil {
					t.Fatal(err)
				}
				want, err := seqscan.Search(st, q, eps, func(a, b float64) bool {
					return a >= 0.1 && a <= 3
				}, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("trail=%d strategy=%v eps=%v: index %d, scan %d",
						trail, strategy, eps, len(got), len(want))
				}
				for i := range got {
					if got[i].Seq != want[i].Seq || got[i].Start != want[i].Start {
						t.Fatalf("trail=%d rank %d differs", trail, i)
					}
				}
			}
		}
	}
}

func TestOptionsAccessorAndSetStrategy(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 3, 60)
	if got := ix.Options().WindowLen; got != 32 {
		t.Errorf("Options().WindowLen = %d", got)
	}
	if err := ix.SetStrategy(geom.BoundingSpheres); err != nil {
		t.Fatal(err)
	}
	if ix.Options().Strategy != geom.BoundingSpheres {
		t.Error("SetStrategy did not take effect")
	}
	if err := ix.SetStrategy(geom.Strategy(7)); err == nil {
		t.Error("bad strategy accepted")
	}
}

func TestReductionKindString(t *testing.T) {
	if ReductionDFT.String() != "dft" || ReductionHaar.String() != "haar" {
		t.Error("reduction names wrong")
	}
	if ReductionKind(9).String() != "unknown" {
		t.Error("unknown reduction name wrong")
	}
}

func TestTrailGrowthAcrossPartialBoundaries(t *testing.T) {
	// Exercise indexSequenceTrails' partial-trail replacement through a
	// genuinely growing last sequence: append short, index, append the
	// next chunk as new data is not supported by the store, so instead
	// grow via repeated IndexSequence over a store whose sequence was
	// fully present but indexed in stages using UnindexSequence+partial
	// re-index is not exposed either.  What IS reachable: a sequence
	// whose window count is not a trail multiple (partial final trail),
	// then unindexing and re-indexing repeatedly — each cycle walks the
	// partial-trail bookkeeping.
	opts := trailOptions(4)
	opts.WindowLen = 8
	st := store.New()
	st.AppendSequence("s", make([]float64, 17)) // 10 windows: trails 4+4+2
	ix, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		if err := ix.IndexSequence(0); err != nil {
			t.Fatal(err)
		}
		if ix.EntryCount() != 3 || ix.WindowCount() != 10 {
			t.Fatalf("cycle %d: entries=%d windows=%d", cycle, ix.EntryCount(), ix.WindowCount())
		}
		if err := ix.UnindexSequence(0); err != nil {
			t.Fatal(err)
		}
		if ix.EntryCount() != 0 {
			t.Fatalf("cycle %d: %d entries after unindex", cycle, ix.EntryCount())
		}
	}
}
