package core_test

import (
	"fmt"
	"log"

	"scaleshift/internal/core"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// Index a toy database and search for a sequence that only matches
// after scaling and shifting.
func ExampleIndex_Search() {
	st := store.New()
	st.AppendSequence("up-down", []float64{1, 3, 2, 4, 1, 3, 2, 4})
	st.AppendSequence("flatline", []float64{5, 5, 5, 5, 5, 5, 5, 5})

	opts := core.DefaultOptions()
	opts.WindowLen = 8
	opts.Coefficients = 2
	ix, err := core.NewIndex(st, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		log.Fatal(err)
	}

	// The query is "up-down" scaled by 10 and shifted by 100.
	q := vec.Apply(vec.Vector{1, 3, 2, 4, 1, 3, 2, 4}, 10, 100)
	costs := core.UnboundedCosts()
	costs.ScaleMin = 0.01 // exclude degenerate a≈0 matches
	matches, err := ix.Search(q, 0.001, costs, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("%s matches with a=%.1f b=%.0f\n", m.Name, m.Scale, m.Shift)
	}
	// Output: up-down matches with a=0.1 b=-10
}

// Recover the k most similar windows with their transformations.
func ExampleIndex_NearestNeighbors() {
	st := store.New()
	st.AppendSequence("w", []float64{0, 1, 0, -1, 0, 1, 0, -1, 0, 1})

	opts := core.DefaultOptions()
	opts.WindowLen = 8
	opts.Coefficients = 2
	ix, err := core.NewIndex(st, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		log.Fatal(err)
	}

	q := vec.Vector{0, 5, 0, -5, 0, 5, 0, -5} // the same wave, amplified
	nn, err := ix.NearestNeighbors(q, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best window starts at %d, exact=%v\n", nn[0].Start, nn[0].Dist < 1e-6)
	// Output: best window starts at 0, exact=true
}
