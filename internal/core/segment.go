package core

import (
	"fmt"
	"runtime"
	"sort"

	"scaleshift/internal/dft"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// The segment model behind SegmentedIndex: an ordered set of immutable
// frozen segments — each a pointer-free flat R*-tree over a contiguous
// per-sequence window range — plus a small mutable delta absorbing
// freshly appended windows.  Every manifest generation pins a store
// snapshot, so queries fan across segments and verify against data
// that cannot move under them.

// winRange addresses the windows [Lo, Hi) of sequence Seq covered by a
// frozen segment.  Coverage is contiguous per sequence: window Lo of a
// later segment continues exactly where the previous segment's Hi left
// off, which is what lets the manifest guarantee every window lives in
// exactly one segment.
type winRange struct {
	Seq, Lo, Hi int
}

// frozenSeg is one immutable segment: a frozen flat tree over the
// feature points of its windows, plus the window ranges it covers.
type frozenSeg struct {
	flat   *rtree.FlatTree
	ranges []winRange
	count  int
}

// deltaEntry is one window absorbed by the mutable delta segment: its
// address and its feature point (kept so compaction can bulk-load the
// next frozen segment without re-extracting).
type deltaEntry struct {
	seq, start int
	feat       vec.Vector
}

// manifest is one immutable generation of the segmented index.  It is
// published through an RCU cell: readers pin it for the duration of a
// query, writers publish a fresh one after every mutation, and no
// reader ever observes a half-updated view.
type manifest struct {
	gen    int64
	snap   *store.Snapshot
	frozen []*frozenSeg
	delta  []deltaEntry
	// slack is the numeric slack for index-phase epsilon widening,
	// derived from the largest feature magnitude ever published (a
	// monotone overestimate is safe: the exact verifier reapplies the
	// caller's epsilon).
	slack float64
}

// windowCount is the manifest's candidate universe size.
func (m *manifest) windowCount() int {
	total := len(m.delta)
	for _, sg := range m.frozen {
		total += sg.count
	}
	return total
}

// extractRange streams the features of windows [lo, hi) of sequence
// seq into fn, reading through sv.  It replicates featureSegment's
// checkpoint discipline — the sliding DFT restarts at every absolute
// multiple of featureCheckpoint — so the emitted features are
// bit-identical to what Build/BuildBulkParallel computes for the same
// windows, regardless of how [lo, hi) slices the sequence.
func extractRange(sv storeView, fmap *dft.FeatureMap, opts Options, seq, lo, hi int, fn func(start int, f vec.Vector) error) error {
	if lo >= hi {
		return nil
	}
	n := opts.WindowLen
	feat := make(vec.Vector, fmap.Dim())
	if opts.Reduction != ReductionDFT {
		w := make(vec.Vector, n)
		se := make(vec.Vector, n)
		for start := lo; start < hi; start++ {
			if err := sv.Window(seq, start, n, w, nil); err != nil {
				return err
			}
			vec.SETransformInPlace(se, w)
			fmap.TransformInto(feat, se)
			if err := fn(start, feat); err != nil {
				return err
			}
		}
		return nil
	}
	raw := make(vec.Vector, n+featureCheckpoint-1)
	for cp := lo - lo%featureCheckpoint; cp < hi; cp += featureCheckpoint {
		segLast := cp + featureCheckpoint - 1
		if segLast > hi-1 {
			segLast = hi - 1
		}
		span := segLast - cp + n
		if err := sv.Window(seq, cp, span, raw[:span], nil); err != nil {
			return err
		}
		slider, err := dft.NewSlidingTransformer(fmap, raw[:n])
		if err != nil {
			return err
		}
		for s := cp; s <= segLast; s++ {
			if s > cp {
				slider.Slide(raw[s-cp+n-1])
			}
			if s < lo {
				continue
			}
			slider.Feature(feat)
			if err := fn(s, feat); err != nil {
				return err
			}
		}
	}
	return nil
}

// rangesOf derives the contiguous window ranges covered by entries,
// which must be sorted by (seq, start).
func rangesOf(entries []deltaEntry) []winRange {
	var out []winRange
	for _, e := range entries {
		if k := len(out) - 1; k >= 0 && out[k].Seq == e.seq && out[k].Hi == e.start {
			out[k].Hi++
			continue
		}
		out = append(out, winRange{Seq: e.seq, Lo: e.start, Hi: e.start + 1})
	}
	return out
}

// buildSegment bulk-loads one frozen segment from delta entries.  The
// entries' feature points were extracted under the checkpoint
// discipline, so the segment indexes exactly the features a
// from-scratch build would.  Returns nil for an empty entry set.
func buildSegment(entries []deltaEntry, opts Options, dim int) (*frozenSeg, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	sorted := append([]deltaEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].seq != sorted[j].seq {
			return sorted[i].seq < sorted[j].seq
		}
		return sorted[i].start < sorted[j].start
	})
	items := make([]rtree.Item, len(sorted))
	for i, e := range sorted {
		items[i] = rtree.Item{Point: e.feat, ID: store.EncodeWindowID(e.seq, e.start)}
	}
	cfg := opts.Tree
	cfg.Dim = dim
	tree, err := rtree.BulkLoadParallel(cfg, items, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, fmt.Errorf("core: segment bulk load: %w", err)
	}
	flat, err := tree.Freeze()
	if err != nil {
		return nil, fmt.Errorf("core: segment freeze: %w", err)
	}
	return &frozenSeg{flat: flat, ranges: rangesOf(sorted), count: len(sorted)}, nil
}

// mergeSegments re-extracts every window covered by the given frozen
// segments and delta entries from snap and bulk-loads them into one
// consolidated segment.  Re-extraction (rather than stitching stored
// feature points) keeps the merged segment bit-identical to a
// from-scratch build by construction.
//
// The segments must be an ADJACENT run of the frozen list (plus the
// folding delta, which continues past the newest segment): per
// sequence their ranges then tile one contiguous span [lo, hi), and
// only that span is re-extracted — the size-tiered policy depends on a
// partial merge not paying for the untouched older segments.
func mergeSegments(snap *store.Snapshot, fmap *dft.FeatureMap, opts Options, frozen []*frozenSeg, delta []deltaEntry) (*frozenSeg, error) {
	lo := map[int]int{}
	hi := map[int]int{}
	cover := func(seq, l, h int) {
		if cur, ok := lo[seq]; !ok || l < cur {
			lo[seq] = l
		}
		if h > hi[seq] {
			hi[seq] = h
		}
	}
	for _, sg := range frozen {
		for _, r := range sg.ranges {
			cover(r.Seq, r.Lo, r.Hi)
		}
	}
	for _, e := range delta {
		cover(e.seq, e.start, e.start+1)
	}
	seqs := make([]int, 0, len(hi))
	for seq := range hi {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	var entries []deltaEntry
	for _, seq := range seqs {
		err := extractRange(snap, fmap, opts, seq, lo[seq], hi[seq], func(start int, f vec.Vector) error {
			entries = append(entries, deltaEntry{seq: seq, start: start, feat: f.Clone()})
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: segment merge: %w", err)
		}
	}
	return buildSegment(entries, opts, fmap.Dim())
}
