package core

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"scaleshift/internal/query"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// populatedStore returns a synthetic store whose sequences are long
// enough to span several feature checkpoints, so parallel extraction
// exercises multi-segment sharding.
func populatedStore(t testing.TB, companies, days, seed int) *store.Store {
	t.Helper()
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = companies
	cfg.Days = days
	cfg.Seed = int64(seed)
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	return st
}

// sortedFeatures extracts every leaf feature point of the index in a
// canonical (ID-sorted) order.
func sortedFeatures(ix *Index) []rtreeFeature {
	items := ix.tree.All()
	feats := make([]rtreeFeature, len(items))
	for i, it := range items {
		feats[i] = rtreeFeature{id: it.ID, point: it.Point}
	}
	sort.Slice(feats, func(i, j int) bool { return feats[i].id < feats[j].id })
	return feats
}

type rtreeFeature struct {
	id    int64
	point vec.Vector
}

// TestBuildBulkParallelDeterministic asserts the headline determinism
// guarantee: BuildBulkParallel produces a byte-identical index to
// BuildBulk for every worker count, and its feature points are
// bit-identical to the sequential extraction's.
func TestBuildBulkParallelDeterministic(t *testing.T) {
	opts := testOptions()
	for _, tc := range []struct{ companies, days, seed int }{
		{3, 120, 1},  // single checkpoint segment per sequence
		{6, 600, 2},  // several segments per sequence
		{13, 340, 3}, // worker count above segment-per-sequence count
	} {
		t.Run(fmt.Sprintf("c%dd%d", tc.companies, tc.days), func(t *testing.T) {
			st := populatedStore(t, tc.companies, tc.days, tc.seed)
			ref, err := NewIndex(st, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.BuildBulk(); err != nil {
				t.Fatal(err)
			}
			var refBin bytes.Buffer
			if err := ref.WriteBinary(&refBin); err != nil {
				t.Fatal(err)
			}
			refFeats := sortedFeatures(ref)

			for _, workers := range []int{0, 1, 2, 4, 13} {
				par, err := NewIndex(st, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := par.BuildBulkParallel(workers); err != nil {
					t.Fatal(err)
				}
				var parBin bytes.Buffer
				if err := par.WriteBinary(&parBin); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(refBin.Bytes(), parBin.Bytes()) {
					t.Fatalf("workers=%d: serialized index differs from BuildBulk (%d vs %d bytes)",
						workers, parBin.Len(), refBin.Len())
				}
				parFeats := sortedFeatures(par)
				if len(parFeats) != len(refFeats) {
					t.Fatalf("workers=%d: %d features, want %d", workers, len(parFeats), len(refFeats))
				}
				for i := range refFeats {
					if parFeats[i].id != refFeats[i].id {
						t.Fatalf("workers=%d: feature %d has ID %d, want %d",
							workers, i, parFeats[i].id, refFeats[i].id)
					}
					for d := range refFeats[i].point {
						if parFeats[i].point[d] != refFeats[i].point[d] {
							t.Fatalf("workers=%d: feature ID %d dim %d: %v != %v (not bit-identical)",
								workers, refFeats[i].id, d, parFeats[i].point[d], refFeats[i].point[d])
						}
					}
				}
			}
		})
	}
}

// TestBuildVariantsAgreeOnSearches asserts that insert-built,
// bulk-built, and parallel-bulk-built indexes return identical search
// and nearest-neighbour results.
func TestBuildVariantsAgreeOnSearches(t *testing.T) {
	opts := testOptions()
	st := populatedStore(t, 8, 420, 7)

	build := func(f func(*Index) error) *Index {
		ix, err := NewIndex(st, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := f(ix); err != nil {
			t.Fatal(err)
		}
		return ix
	}
	variants := map[string]*Index{
		"insert":   build(func(ix *Index) error { return ix.Build() }),
		"bulk":     build(func(ix *Index) error { return ix.BuildBulk() }),
		"parallel": build(func(ix *Index) error { return ix.BuildBulkParallel(4) }),
	}

	scale, err := query.SENormScale(st, opts.WindowLen, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := make(vec.Vector, opts.WindowLen)
	for _, src := range []struct{ seq, start int }{{0, 3}, {4, 200}, {7, 377}} {
		if err := st.Window(src.seq, src.start, opts.WindowLen, w, nil); err != nil {
			t.Fatal(err)
		}
		ref, err := variants["insert"].Search(w, 0.2*scale, UnboundedCosts(), nil)
		if err != nil {
			t.Fatal(err)
		}
		refNN, err := variants["insert"].NearestNeighbors(w, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		for name, ix := range variants {
			got, err := ix.Search(w, 0.2*scale, UnboundedCosts(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(ref) {
				t.Fatalf("%s: %d matches, insert %d", name, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s: match %d = %+v, insert %+v", name, i, got[i], ref[i])
				}
			}
			gotNN, err := ix.NearestNeighbors(w, 5, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotNN) != len(refNN) {
				t.Fatalf("%s: %d neighbours, insert %d", name, len(gotNN), len(refNN))
			}
			for i := range refNN {
				if gotNN[i] != refNN[i] {
					t.Fatalf("%s: neighbour %d = %+v, insert %+v", name, i, gotNN[i], refNN[i])
				}
			}
		}
	}
}

// TestBuildBulkParallelValidation covers the rejection and fallback
// paths: non-empty index rejected, trail mode falls back to Build,
// empty store is a no-op, and the built index remains dynamic.
func TestBuildBulkParallelValidation(t *testing.T) {
	opts := testOptions()
	st := populatedStore(t, 3, 120, 9)

	ix, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.BuildBulkParallel(4); err != nil {
		t.Fatal(err)
	}
	if err := ix.BuildBulkParallel(4); err == nil {
		t.Error("BuildBulkParallel on non-empty index accepted")
	}
	// Still dynamic after a parallel bulk load.
	if _, err := ix.AppendAndIndex("X", make([]float64, 64)); err != nil {
		t.Fatal(err)
	}

	empty, err := NewIndex(store.New(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.BuildBulkParallel(4); err != nil {
		t.Fatalf("empty store: %v", err)
	}
	if empty.WindowCount() != 0 {
		t.Fatalf("empty store indexed %d windows", empty.WindowCount())
	}

	// Trail mode: parallel bulk falls back to the sequential builder
	// and must agree with Build.
	topts := opts
	topts.SubtrailLen = 4
	trailRef, err := NewIndex(st, topts)
	if err != nil {
		t.Fatal(err)
	}
	if err := trailRef.Build(); err != nil {
		t.Fatal(err)
	}
	trailPar, err := NewIndex(st, topts)
	if err != nil {
		t.Fatal(err)
	}
	if err := trailPar.BuildBulkParallel(4); err != nil {
		t.Fatal(err)
	}
	if trailPar.WindowCount() != trailRef.WindowCount() {
		t.Fatalf("trail fallback indexed %d windows, Build %d", trailPar.WindowCount(), trailRef.WindowCount())
	}
}
