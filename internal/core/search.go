package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// candidateWindows runs the index phase for one SE-line and streams
// every candidate window address (already widened by the numeric
// slack).  In point mode candidates are the leaf feature points within
// ε of the line; in trail mode each penetrated sub-trail MBR expands
// into the windows it covers.
func (ix *Index) candidateWindows(line vec.Line, eps float64, costs CostBounds, treeStats *rtree.SearchStats, fn func(seq, start int)) {
	epsIdx := eps + ix.numericSlack()
	// When the cost bounds restrict the scale factor, the index phase
	// can search only the SEGMENT of the scaling line with t in
	// [ScaleMin, ScaleMax]: for any true match its exact scale a lies
	// in that range, and by the contraction property
	// ‖a·F(T_se q) − F(T_se v)‖ <= ‖a·T_se q − T_se v‖ <= eps, so the
	// candidate is still reached through the segment.  This prunes the
	// a ≈ 0 degeneracy at the directory rather than in post-processing.
	segment := !math.IsInf(costs.ScaleMin, -1) || !math.IsInf(costs.ScaleMax, 1)
	tMin, tMax := costs.ScaleMin, costs.ScaleMax
	if segment {
		// Widen the parameter range against feature rounding: a shift
		// of delta along the unit direction moves the point by
		// delta·‖D‖, so slack/‖D‖ in parameter units is conservative.
		if dn := vec.Norm(line.D); dn > 0 {
			pad := ix.numericSlack() / dn
			tMin -= pad
			tMax += pad
		}
	}
	if !ix.trailMode() {
		var cands []rtree.Item
		if segment {
			cands = ix.tree.SegmentSearch(line, tMin, tMax, epsIdx, ix.opts.Strategy, treeStats)
		} else {
			cands = ix.tree.LineSearch(line, epsIdx, ix.opts.Strategy, treeStats)
		}
		for _, cand := range cands {
			seq, start := store.DecodeWindowID(cand.ID)
			fn(seq, start)
		}
		return
	}
	var cands []rtree.RectItem
	if segment {
		cands = ix.tree.SegmentSearchRects(line, tMin, tMax, epsIdx, ix.opts.Strategy, treeStats)
	} else {
		cands = ix.tree.LineSearchRects(line, epsIdx, ix.opts.Strategy, treeStats)
	}
	for _, cand := range cands {
		seq, first := store.DecodeWindowID(cand.ID)
		count := ix.trailWindows(seq, first)
		for i := 0; i < count; i++ {
			fn(seq, first+i)
		}
	}
}

// Search returns every indexed window S' with Q ~ε S' (Definition 1)
// whose optimal transformation passes the cost bounds, together with
// the scale factor and shift offset realizing each match (§6).  The
// query length must equal Options.WindowLen; use SearchLong for longer
// queries.  stats may be nil.
//
// The result set is exact: the feature-space search cannot dismiss a
// true match (the SE and DFT maps contract distances) and the
// post-processing step verifies every candidate against the original
// data.
func (ix *Index) Search(q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	return ix.SearchPooled(q, eps, costs, nil, stats)
}

// SearchPooled is Search with the data-page fetches of the
// post-processing step played through a shared LRU buffer pool, for
// bounded-memory cost studies.  pool may be nil (plain Search).
func (ix *Index) SearchPooled(q vec.Vector, eps float64, costs CostBounds, pool *store.BufferPool, stats *SearchStats) ([]Match, error) {
	if len(q) != ix.opts.WindowLen {
		return nil, fmt.Errorf("core: query length %d, index window length %d (use SearchLong for longer queries)",
			len(q), ix.opts.WindowLen)
	}
	if eps < 0 {
		return nil, fmt.Errorf("core: negative epsilon %v", eps)
	}

	// Searching step: collect candidates via SE-line penetration.  The
	// index phase widens eps by a numerical slack so floating-point
	// cancellation in the feature-space distance cannot dismiss a true
	// match; the exact post-processing check below still applies the
	// caller's eps, so the widening only admits extra candidates.
	var treeStats rtree.SearchStats
	line := ix.seLine(q)

	// Post-processing step: exact check, transform recovery, cost
	// bounds.
	pc := store.PageCounter{Pool: pool}
	var out []Match
	w := make(vec.Vector, ix.opts.WindowLen)
	var candidates, falseAlarms, costRejected int
	var postErr error
	ix.candidateWindows(line, eps, costs, &treeStats, func(seq, start int) {
		if postErr != nil {
			return
		}
		candidates++
		if err := ix.st.Window(seq, start, ix.opts.WindowLen, w, &pc); err != nil {
			postErr = err
			return
		}
		m := vec.MinDist(q, w)
		if m.Dist > eps {
			falseAlarms++
			return
		}
		if !costs.Allow(m.Scale, m.Shift) {
			costRejected++
			return
		}
		out = append(out, Match{
			Seq:   seq,
			Start: start,
			Name:  ix.st.SequenceName(seq),
			Dist:  m.Dist,
			Scale: m.Scale,
			Shift: m.Shift,
		})
	})
	if postErr != nil {
		return nil, fmt.Errorf("core: post-processing: %w", postErr)
	}
	sortMatches(out)

	if stats != nil {
		stats.IndexNodeAccesses += treeStats.NodeAccesses
		stats.DataPageAccesses += pc.Distinct()
		stats.Candidates += candidates
		stats.FalseAlarms += falseAlarms
		stats.CostRejected += costRejected
		stats.Results += len(out)
		stats.LeafEntriesChecked += treeStats.LeafEntriesChecked
		stats.Penetration.Add(treeStats.Penetration)
	}
	return out, nil
}

// SearchLong answers queries longer than the index window using the
// multipiece method sketched in §7 (after [2]): the query is cut into
// k = ⌊len(Q)/n⌋ disjoint length-n pieces, each piece is searched with
// error bound ε/√k, every hit proposes a full-length alignment, and
// each proposal is verified exactly against the original data.
//
// No qualified subsequence is missed: if ‖a·Q + b − V‖ ≤ ε over the
// full length, then the piecewise residuals satisfy
// Σᵢ ‖a·Qᵢ + b − Vᵢ‖² ≤ ε², so at least one piece is within ε/√k of
// its aligned window at the same (a, b), and the per-piece optimal
// distance can only be smaller.
func (ix *Index) SearchLong(q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	n := ix.opts.WindowLen
	if len(q) == n {
		return ix.Search(q, eps, costs, stats)
	}
	if len(q) < n {
		return nil, fmt.Errorf("core: query length %d below index window length %d", len(q), n)
	}
	if eps < 0 {
		return nil, fmt.Errorf("core: negative epsilon %v", eps)
	}
	pieces := len(q) / n
	pieceEps := eps / math.Sqrt(float64(pieces))

	// Searching step, once per piece; candidate alignments are the
	// piece hits translated back to the query's start.
	type align struct{ seq, start int }
	proposed := make(map[align]bool)
	var treeStats rtree.SearchStats
	for i := 0; i < pieces; i++ {
		piece := q[i*n : (i+1)*n]
		line := ix.seLine(piece)
		i := i
		ix.candidateWindows(line, pieceEps, costs, &treeStats, func(seq, start int) {
			full := align{seq, start - i*n}
			if full.start < 0 || full.start+len(q) > ix.st.SequenceLen(seq) {
				return
			}
			proposed[full] = true
		})
	}

	// Post-processing on the full-length windows.
	var pc store.PageCounter
	w := make(vec.Vector, len(q))
	var out []Match
	var falseAlarms, costRejected int
	for a := range proposed {
		if err := ix.st.Window(a.seq, a.start, len(q), w, &pc); err != nil {
			return nil, fmt.Errorf("core: long-query post-processing: %w", err)
		}
		m := vec.MinDist(q, w)
		if m.Dist > eps {
			falseAlarms++
			continue
		}
		if !costs.Allow(m.Scale, m.Shift) {
			costRejected++
			continue
		}
		out = append(out, Match{
			Seq:   a.seq,
			Start: a.start,
			Name:  ix.st.SequenceName(a.seq),
			Dist:  m.Dist,
			Scale: m.Scale,
			Shift: m.Shift,
		})
	}
	sortMatches(out)

	if stats != nil {
		stats.IndexNodeAccesses += treeStats.NodeAccesses
		stats.DataPageAccesses += pc.Distinct()
		stats.Candidates += len(proposed)
		stats.FalseAlarms += falseAlarms
		stats.CostRejected += costRejected
		stats.Results += len(out)
		stats.LeafEntriesChecked += treeStats.LeafEntriesChecked
		stats.Penetration.Add(treeStats.Penetration)
	}
	return out, nil
}

// NearestNeighbors returns the k indexed windows with the smallest
// scale/shift distance to q, in increasing order (Corollary 1).  The
// answer is exact: candidates stream from the tree in increasing
// feature-space distance, which lower-bounds the true distance, so the
// search stops as soon as the bound passes the kth best exact
// distance (GEMINI-style refinement).  stats may be nil.
func (ix *Index) NearestNeighbors(q vec.Vector, k int, stats *SearchStats) ([]Match, error) {
	return ix.NearestNeighborsWithCosts(q, k, UnboundedCosts(), stats)
}

// NearestNeighborsWithCosts is NearestNeighbors restricted to windows
// whose optimal transformation passes the cost bounds — e.g. bounding
// the scale factor away from zero excludes the degenerate matches
// where a near-constant window "matches" any query via a ≈ 0.
// The refinement bound remains valid because the feature distance
// lower-bounds the true distance of every window, filtered or not.
func (ix *Index) NearestNeighborsWithCosts(q vec.Vector, k int, costs CostBounds, stats *SearchStats) ([]Match, error) {
	if len(q) != ix.opts.WindowLen {
		return nil, fmt.Errorf("core: query length %d, index window length %d", len(q), ix.opts.WindowLen)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k %d < 1", k)
	}

	var treeStats rtree.SearchStats
	var pc store.PageCounter
	line := ix.seLine(q)
	w := make(vec.Vector, ix.opts.WindowLen)
	var best []Match // sorted ascending by Dist, at most k
	var candidates int
	var scanErr error

	slack := ix.numericSlack()
	// refine exact-checks one window against the running top-k.
	refine := func(seq, start int) bool {
		candidates++
		if err := ix.st.Window(seq, start, ix.opts.WindowLen, w, &pc); err != nil {
			scanErr = err
			return false
		}
		m := vec.MinDist(q, w)
		if !costs.Allow(m.Scale, m.Shift) {
			return true
		}
		if len(best) == k && m.Dist >= best[k-1].Dist {
			return true
		}
		match := Match{
			Seq:   seq,
			Start: start,
			Name:  ix.st.SequenceName(seq),
			Dist:  m.Dist,
			Scale: m.Scale,
			Shift: m.Shift,
		}
		pos := sort.Search(len(best), func(i int) bool { return best[i].Dist > m.Dist })
		if len(best) < k {
			best = append(best, Match{})
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = match
		return true
	}
	if ix.trailMode() {
		// Trails stream in non-decreasing line-to-MBR distance, a lower
		// bound for every window feature inside the MBR.
		ix.tree.NearestRectsToLineFunc(line, &treeStats, func(it rtree.RectItemDist) bool {
			if len(best) == k && it.Dist > best[k-1].Dist+slack {
				return false
			}
			seq, first := store.DecodeWindowID(it.ID)
			count := ix.trailWindows(seq, first)
			for i := 0; i < count; i++ {
				if !refine(seq, first+i) {
					return false
				}
			}
			return true
		})
	} else {
		ix.tree.NearestToLineFunc(line, &treeStats, func(id rtree.ItemDist) bool {
			if len(best) == k && id.Dist > best[k-1].Dist+slack {
				return false // lower bound exceeds kth exact distance: done
			}
			seq, start := store.DecodeWindowID(id.Item.ID)
			return refine(seq, start)
		})
	}
	if scanErr != nil {
		return nil, fmt.Errorf("core: nearest-neighbour refinement: %w", scanErr)
	}

	if stats != nil {
		stats.IndexNodeAccesses += treeStats.NodeAccesses
		stats.DataPageAccesses += pc.Distinct()
		stats.Candidates += candidates
		stats.Results += len(best)
		stats.LeafEntriesChecked += treeStats.LeafEntriesChecked
	}
	return best, nil
}

// sortMatches orders matches by (Seq, Start) for deterministic output.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Seq != ms[j].Seq {
			return ms[i].Seq < ms[j].Seq
		}
		return ms[i].Start < ms[j].Start
	})
}

// SearchBatch answers many queries concurrently with up to parallelism
// goroutines (capped at the query count; values < 1 mean
// GOMAXPROCS-style default of 4).  Results are positionally aligned
// with the queries, and per-query stats are summed into stats when it
// is non-nil.  Searches are read-only, so no locking is needed; do not
// mutate the index concurrently.
func (ix *Index) SearchBatch(queries []vec.Vector, eps float64, costs CostBounds, parallelism int, stats *SearchStats) ([][]Match, error) {
	if parallelism < 1 {
		parallelism = 4
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	results := make([][]Match, len(queries))
	perQuery := make([]SearchStats, len(queries))
	errs := make([]error, len(queries))

	var wg sync.WaitGroup
	next := make(chan int)
	for g := 0; g < parallelism; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = ix.Search(queries[i], eps, costs, &perQuery[i])
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
	}
	if stats != nil {
		for i := range perQuery {
			stats.Add(perQuery[i])
		}
	}
	return results, nil
}
