package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"scaleshift/internal/engine"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// candidate addresses one window proposed by the index phase.
type candidate struct{ seq, start int }

// Post-processing verdicts.
const (
	verdictMatch = iota
	verdictFalseAlarm
	verdictCostRejected
)

// verifier carries the query-side quantities shared by every candidate
// check of one query: the SE image su = T_se(q), its squared norm uu,
// and the query mean mu feed the prefix-sum fast path of
// vec.MinDistWithStats; q itself feeds the exact confirmation.  A
// verifier is read-only after construction and therefore shared by the
// parallel verification workers.
type verifier struct {
	ix     *Index
	q, su  vec.Vector
	mu, uu float64
	eps    float64
	costs  CostBounds
}

func (ix *Index) newVerifier(q vec.Vector, eps float64, costs CostBounds) *verifier {
	su := vec.SETransform(q)
	return &verifier{ix: ix, q: q, su: su, mu: vec.Mean(q), uu: vec.NormSq(su), eps: eps, costs: costs}
}

// verify runs the exact post-processing check on one candidate window.
// The window is read in place (no copy) and charged to pc; the
// prefix-sum fast path rejects candidates whose distance provably
// exceeds eps after one cross-term pass, and only survivors — true
// matches and candidates within the fast path's error bound of the
// boundary — pay for the exact MinDist, whose values are reported so
// results are bit-identical to the all-exact path.
func (v *verifier) verify(seq, start int, pc *store.PageCounter) (Match, int, error) {
	n := len(v.q)
	w, err := v.ix.st.WindowView(seq, start, n, pc)
	if err != nil {
		return Match{}, 0, err
	}
	ws, err := v.ix.st.WindowStats(seq, start, n)
	if err != nil {
		return Match{}, 0, err
	}
	fast, slack := vec.MinDistWithStats(v.su, v.mu, v.uu, w, ws.Sum, ws.SumSq, ws.SumErr, ws.SumSqErr)
	if fast.Dist*fast.Dist > v.eps*v.eps+slack {
		return Match{}, verdictFalseAlarm, nil
	}
	m := vec.MinDist(v.q, w)
	if m.Dist > v.eps {
		return Match{}, verdictFalseAlarm, nil
	}
	if !v.costs.Allow(m.Scale, m.Shift) {
		return Match{}, verdictCostRejected, nil
	}
	return Match{
		Seq:   seq,
		Start: start,
		Name:  v.ix.st.SequenceName(seq),
		Dist:  m.Dist,
		Scale: m.Scale,
		Shift: m.Shift,
	}, verdictMatch, nil
}

// verifyParallelThreshold is the candidate count below which the
// per-query verification fan-out is not worth the goroutine handoff.
const verifyParallelThreshold = 32

// verifyCandidates post-processes the candidate list, returning the
// matches in candidate order plus the false-alarm and cost-rejection
// counts.  When the query yields enough candidates, pc is not attached
// to a buffer pool, and GOMAXPROCS allows, verification fans out
// across a bounded worker pool: workers fill disjoint slots of a
// verdict array and keep private page counters that are merged into pc
// afterwards, so results, ordering, and every SearchStats field are
// identical to the sequential pass.
func (ix *Index) verifyCandidates(v *verifier, cands []candidate, pc *store.PageCounter) ([]Match, int, int, error) {
	workers := runtime.GOMAXPROCS(0)
	if len(cands) < verifyParallelThreshold || workers < 2 || pc.Pool != nil {
		var out []Match
		var falseAlarms, costRejected int
		for _, c := range cands {
			m, verdict, err := v.verify(c.seq, c.start, pc)
			if err != nil {
				return nil, 0, 0, err
			}
			switch verdict {
			case verdictFalseAlarm:
				falseAlarms++
			case verdictCostRejected:
				costRejected++
			default:
				out = append(out, m)
			}
		}
		return out, falseAlarms, costRejected, nil
	}

	type outcome struct {
		m       Match
		verdict int
	}
	outs := make([]outcome, len(cands))
	if workers > len(cands) {
		workers = len(cands)
	}
	pcs := make([]store.PageCounter, workers)
	errs := make([]error, workers)
	chunk := (len(cands) + workers - 1) / workers
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		lo := g * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				m, verdict, err := v.verify(cands[i].seq, cands[i].start, &pcs[g])
				if err != nil {
					errs[g] = err
					return
				}
				outs[i] = outcome{m, verdict}
			}
		}(g, lo, hi)
	}
	wg.Wait()
	for g := range errs {
		if errs[g] != nil {
			return nil, 0, 0, errs[g]
		}
		pc.Merge(&pcs[g])
	}
	var out []Match
	var falseAlarms, costRejected int
	for i := range outs {
		switch outs[i].verdict {
		case verdictFalseAlarm:
			falseAlarms++
		case verdictCostRejected:
			costRejected++
		default:
			out = append(out, outs[i].m)
		}
	}
	return out, falseAlarms, costRejected, nil
}

// planQuery assembles the engine's view of one index-phase probe: the
// query's SE-line, the slack-widened epsilon, and the scale-segment
// restriction derived from the cost bounds.
//
// When the cost bounds restrict the scale factor, the index phase can
// search only the SEGMENT of the scaling line with t in
// [ScaleMin, ScaleMax]: for any true match its exact scale a lies in
// that range, and by the contraction property
// ‖a·F(T_se q) − F(T_se v)‖ <= ‖a·T_se q − T_se v‖ <= eps, so the
// candidate is still reached through the segment.  This prunes the
// a ≈ 0 degeneracy at the directory rather than in post-processing.
func (ix *Index) planQuery(line vec.Line, eps float64, costs CostBounds) engine.Query {
	slack := ix.numericSlack()
	segment := !math.IsInf(costs.ScaleMin, -1) || !math.IsInf(costs.ScaleMax, 1)
	tMin, tMax := costs.ScaleMin, costs.ScaleMax
	if segment {
		// Widen the parameter range against feature rounding: a shift
		// of delta along the unit direction moves the point by
		// delta·‖D‖, so slack/‖D‖ in parameter units is conservative.
		if dn := vec.Norm(line.D); dn > 0 {
			pad := slack / dn
			tMin -= pad
			tMax += pad
		}
	}
	return engine.Query{
		Line:    line,
		Eps:     eps + slack,
		Segment: segment,
		TMin:    tMin,
		TMax:    tMax,
		Windows: ix.WindowCount(),
		Dim:     ix.fmap.Dim(),
	}
}

// probe plans and runs the index phase for one SE-line: the planner
// picks an access path (or honors force), the path emits its candidate
// windows into fn, and the decision, estimates, and stage timings land
// in the returned Explain.
func (ix *Index) probe(line vec.Line, eps float64, costs CostBounds, force engine.PathKind, treeStats *rtree.SearchStats, fn func(seq, start int)) (*engine.Explain, error) {
	planStart := time.Now()
	eq := ix.planQuery(line, eps, costs)
	path, ex, err := ix.planner.Plan(eq, force)
	if err != nil {
		return ex, fmt.Errorf("core: planning: %w", err)
	}
	ex.PlanTime = time.Since(planStart)
	probeStart := time.Now()
	if err := path.Candidates(eq, treeStats, fn); err != nil {
		return ex, fmt.Errorf("core: %s probe: %w", ex.Chosen, err)
	}
	ex.ProbeTime = time.Since(probeStart)
	return ex, nil
}

// Search returns every indexed window S' with Q ~ε S' (Definition 1)
// whose optimal transformation passes the cost bounds, together with
// the scale factor and shift offset realizing each match (§6).  The
// query length must equal Options.WindowLen; use SearchLong for longer
// queries.  stats may be nil.
//
// The result set is exact: the feature-space search cannot dismiss a
// true match (the SE and DFT maps contract distances) and the
// post-processing step verifies every candidate against the original
// data.
func (ix *Index) Search(q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	return ix.SearchPooled(q, eps, costs, nil, stats)
}

// SearchPooled is Search with the data-page fetches of the
// post-processing step played through a shared LRU buffer pool, for
// bounded-memory cost studies.  pool may be nil (plain Search).
func (ix *Index) SearchPooled(q vec.Vector, eps float64, costs CostBounds, pool *store.BufferPool, stats *SearchStats) ([]Match, error) {
	out, _, err := ix.SearchPlanned(q, eps, costs, engine.PathAuto, pool, stats)
	return out, err
}

// SearchPlanned is the engine's range-query executor: the planner
// picks the cheapest access path for the query (or honors force when
// it is not PathAuto, erroring if that path is unavailable), the path
// emits candidate windows, and the shared verifier removes all false
// alarms.  The result set is bit-identical whichever path runs — the
// paths differ only in how many candidates reach verification — so
// forcing a path is a debugging and benchmarking tool, never a
// correctness knob.  The returned Explain records the decision, the
// per-path cost estimates, the candidate actuals, and the per-stage
// timings.  pool and stats may be nil.
func (ix *Index) SearchPlanned(q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, pool *store.BufferPool, stats *SearchStats) ([]Match, *engine.Explain, error) {
	if len(q) != ix.opts.WindowLen {
		return nil, nil, fmt.Errorf("core: query length %d, index window length %d (use SearchLong for longer queries)",
			len(q), ix.opts.WindowLen)
	}
	if eps < 0 {
		return nil, nil, fmt.Errorf("core: negative epsilon %v", eps)
	}

	// Searching step: collect candidates through the planned access
	// path.  The index phase widens eps by a numerical slack so
	// floating-point cancellation in the feature-space distance cannot
	// dismiss a true match; the exact post-processing check below
	// still applies the caller's eps, so the widening only admits
	// extra candidates.
	var treeStats rtree.SearchStats
	var cands []candidate
	ex, err := ix.probe(ix.seLine(q), eps, costs, force, &treeStats, func(seq, start int) {
		cands = append(cands, candidate{seq, start})
	})
	if err != nil {
		return nil, ex, err
	}

	// Post-processing step: exact check, transform recovery, cost
	// bounds — prefix-sum filtered and, for large candidate sets,
	// fanned across a worker pool (see verifyCandidates).
	verifyStart := time.Now()
	pc := store.PageCounter{Pool: pool}
	v := ix.newVerifier(q, eps, costs)
	out, falseAlarms, costRejected, err := ix.verifyCandidates(v, cands, &pc)
	if err != nil {
		return nil, ex, fmt.Errorf("core: post-processing: %w", err)
	}
	sortMatches(out)
	ex.VerifyTime = time.Since(verifyStart)
	ex.ActualCandidates = len(cands)
	ex.Matches = len(out)

	if stats != nil {
		stats.IndexNodeAccesses += treeStats.NodeAccesses
		stats.DataPageAccesses += pc.Distinct()
		stats.Candidates += len(cands)
		stats.FalseAlarms += falseAlarms
		stats.CostRejected += costRejected
		stats.Results += len(out)
		stats.LeafEntriesChecked += treeStats.LeafEntriesChecked
		stats.Penetration.Add(treeStats.Penetration)
		stats.PlanTime += ex.PlanTime
		stats.ProbeTime += ex.ProbeTime
		stats.VerifyTime += ex.VerifyTime
		stats.PathProbes[ex.Chosen]++
	}
	return out, ex, nil
}

// SearchLong answers queries longer than the index window using the
// multipiece method sketched in §7 (after [2]): the query is cut into
// k = ⌊len(Q)/n⌋ disjoint length-n pieces, each piece is searched with
// error bound ε/√k, every hit proposes a full-length alignment, and
// each proposal is verified exactly against the original data.
//
// No qualified subsequence is missed: if ‖a·Q + b − V‖ ≤ ε over the
// full length, then the piecewise residuals satisfy
// Σᵢ ‖a·Qᵢ + b − Vᵢ‖² ≤ ε², so at least one piece is within ε/√k of
// its aligned window at the same (a, b), and the per-piece optimal
// distance can only be smaller.
func (ix *Index) SearchLong(q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	out, _, err := ix.SearchLongPlanned(q, eps, costs, engine.PathAuto, stats)
	return out, err
}

// SearchLongPlanned is SearchLong with the per-piece index probes
// routed through the engine: each piece is planned independently (with
// the piece bound ε/√k), force pins every piece to one path, and the
// returned Explain carries the first piece's plan with candidate and
// timing actuals totalled across pieces.  As with SearchPlanned the
// result set is bit-identical whichever path serves the pieces.
func (ix *Index) SearchLongPlanned(q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, stats *SearchStats) ([]Match, *engine.Explain, error) {
	n := ix.opts.WindowLen
	if len(q) == n {
		return ix.SearchPlanned(q, eps, costs, force, nil, stats)
	}
	if len(q) < n {
		return nil, nil, fmt.Errorf("core: query length %d below index window length %d", len(q), n)
	}
	if eps < 0 {
		return nil, nil, fmt.Errorf("core: negative epsilon %v", eps)
	}
	pieces := len(q) / n
	pieceEps := eps / math.Sqrt(float64(pieces))

	// Searching step, once per piece; candidate alignments are the
	// piece hits translated back to the query's start.
	proposed := make(map[candidate]bool)
	var treeStats rtree.SearchStats
	var ex *engine.Explain
	for i := 0; i < pieces; i++ {
		piece := q[i*n : (i+1)*n]
		i := i
		pieceEx, err := ix.probe(ix.seLine(piece), pieceEps, costs, force, &treeStats, func(seq, start int) {
			full := candidate{seq, start - i*n}
			if full.start < 0 || full.start+len(q) > ix.st.SequenceLen(seq) {
				return
			}
			proposed[full] = true
		})
		if err != nil {
			return nil, pieceEx, err
		}
		if stats != nil {
			stats.PathProbes[pieceEx.Chosen]++
		}
		if ex == nil {
			ex = pieceEx
		} else {
			ex.PlanTime += pieceEx.PlanTime
			ex.ProbeTime += pieceEx.ProbeTime
		}
	}
	ex.Pieces = pieces
	// Sort the deduplicated proposals so verification order — and with
	// it any page-access pattern — is deterministic despite map
	// iteration.
	cands := make([]candidate, 0, len(proposed))
	for a := range proposed {
		cands = append(cands, a)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seq != cands[j].seq {
			return cands[i].seq < cands[j].seq
		}
		return cands[i].start < cands[j].start
	})

	// Post-processing on the full-length windows, through the same
	// prefix-sum filtered (and possibly parallel) path as Search.
	verifyStart := time.Now()
	var pc store.PageCounter
	v := ix.newVerifier(q, eps, costs)
	out, falseAlarms, costRejected, err := ix.verifyCandidates(v, cands, &pc)
	if err != nil {
		return nil, ex, fmt.Errorf("core: long-query post-processing: %w", err)
	}
	sortMatches(out)
	ex.VerifyTime = time.Since(verifyStart)
	ex.ActualCandidates = len(cands)
	ex.Matches = len(out)

	if stats != nil {
		stats.IndexNodeAccesses += treeStats.NodeAccesses
		stats.DataPageAccesses += pc.Distinct()
		stats.Candidates += len(proposed)
		stats.FalseAlarms += falseAlarms
		stats.CostRejected += costRejected
		stats.Results += len(out)
		stats.LeafEntriesChecked += treeStats.LeafEntriesChecked
		stats.Penetration.Add(treeStats.Penetration)
		stats.PlanTime += ex.PlanTime
		stats.ProbeTime += ex.ProbeTime
		stats.VerifyTime += ex.VerifyTime
	}
	return out, ex, nil
}

// NearestNeighbors returns the k indexed windows with the smallest
// scale/shift distance to q, in increasing order (Corollary 1).  The
// answer is exact: candidates stream from the tree in increasing
// feature-space distance, which lower-bounds the true distance, so the
// search stops as soon as the bound passes the kth best exact
// distance (GEMINI-style refinement).  NN queries pin the index-probe
// access path rather than consulting the planner: the refinement bound
// requires candidates in non-decreasing lower-bound order, which only
// the tree's best-first traversal provides (a scan has no early
// termination, so it is never cheaper).  stats may be nil.
func (ix *Index) NearestNeighbors(q vec.Vector, k int, stats *SearchStats) ([]Match, error) {
	return ix.NearestNeighborsWithCosts(q, k, UnboundedCosts(), stats)
}

// NearestNeighborsWithCosts is NearestNeighbors restricted to windows
// whose optimal transformation passes the cost bounds — e.g. bounding
// the scale factor away from zero excludes the degenerate matches
// where a near-constant window "matches" any query via a ≈ 0.
// The refinement bound remains valid because the feature distance
// lower-bounds the true distance of every window, filtered or not.
func (ix *Index) NearestNeighborsWithCosts(q vec.Vector, k int, costs CostBounds, stats *SearchStats) ([]Match, error) {
	if len(q) != ix.opts.WindowLen {
		return nil, fmt.Errorf("core: query length %d, index window length %d", len(q), ix.opts.WindowLen)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k %d < 1", k)
	}

	var treeStats rtree.SearchStats
	var pc store.PageCounter
	line := ix.seLine(q)
	var best []Match // sorted ascending by Dist, at most k
	var candidates int
	var scanErr error

	slack := ix.numericSlack()
	vq := ix.newVerifier(q, 0, costs)
	// refine exact-checks one window against the running top-k.  The
	// prefix-sum fast path supplies a certified lower bound on the true
	// distance; when the running top-k is full and the bound already
	// exceeds the kth best, the exact MinDist (and its cost check, which
	// could only discard the window anyway) is skipped.
	refine := func(seq, start int) bool {
		candidates++
		w, err := ix.st.WindowView(seq, start, ix.opts.WindowLen, &pc)
		if err != nil {
			scanErr = err
			return false
		}
		if len(best) == k {
			ws, err := ix.st.WindowStats(seq, start, ix.opts.WindowLen)
			if err != nil {
				scanErr = err
				return false
			}
			fast, fslack := vec.MinDistWithStats(vq.su, vq.mu, vq.uu, w, ws.Sum, ws.SumSq, ws.SumErr, ws.SumSqErr)
			if lb := fast.Dist*fast.Dist - fslack; lb > 0 && math.Sqrt(lb) >= best[k-1].Dist {
				return true
			}
		}
		m := vec.MinDist(q, w)
		if !costs.Allow(m.Scale, m.Shift) {
			return true
		}
		if len(best) == k && m.Dist >= best[k-1].Dist {
			return true
		}
		match := Match{
			Seq:   seq,
			Start: start,
			Name:  ix.st.SequenceName(seq),
			Dist:  m.Dist,
			Scale: m.Scale,
			Shift: m.Shift,
		}
		pos := sort.Search(len(best), func(i int) bool { return best[i].Dist > m.Dist })
		if len(best) < k {
			best = append(best, Match{})
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = match
		return true
	}
	if ix.trailMode() {
		// Trails stream in non-decreasing line-to-MBR distance, a lower
		// bound for every window feature inside the MBR.
		ix.tree.NearestRectsToLineFunc(line, &treeStats, func(it rtree.RectItemDist) bool {
			if len(best) == k && it.Dist > best[k-1].Dist+slack {
				return false
			}
			seq, first := store.DecodeWindowID(it.ID)
			count := ix.trailWindows(seq, first)
			for i := 0; i < count; i++ {
				if !refine(seq, first+i) {
					return false
				}
			}
			return true
		})
	} else {
		ix.tree.NearestToLineFunc(line, &treeStats, func(id rtree.ItemDist) bool {
			if len(best) == k && id.Dist > best[k-1].Dist+slack {
				return false // lower bound exceeds kth exact distance: done
			}
			seq, start := store.DecodeWindowID(id.Item.ID)
			return refine(seq, start)
		})
	}
	if scanErr != nil {
		return nil, fmt.Errorf("core: nearest-neighbour refinement: %w", scanErr)
	}

	if stats != nil {
		stats.IndexNodeAccesses += treeStats.NodeAccesses
		stats.DataPageAccesses += pc.Distinct()
		stats.Candidates += candidates
		stats.Results += len(best)
		stats.LeafEntriesChecked += treeStats.LeafEntriesChecked
	}
	return best, nil
}

// sortMatches orders matches by (Seq, Start) for deterministic output.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Seq != ms[j].Seq {
			return ms[i].Seq < ms[j].Seq
		}
		return ms[i].Start < ms[j].Start
	})
}

// SearchBatch answers many queries concurrently with up to parallelism
// goroutines (capped at the query count; values < 1 default to
// runtime.GOMAXPROCS(0)).  Results are positionally aligned with the
// queries, and per-query stats are summed into stats when it is
// non-nil.  Searches are read-only, so no locking is needed; do not
// mutate the index concurrently.
func (ix *Index) SearchBatch(queries []vec.Vector, eps float64, costs CostBounds, parallelism int, stats *SearchStats) ([][]Match, error) {
	bqs := make([]BatchQuery, len(queries))
	for i, q := range queries {
		bqs[i] = BatchQuery{Q: q, Eps: eps, Costs: costs}
	}
	results, _, err := ix.SearchBatchPlanned(bqs, engine.PathAuto, parallelism, stats)
	return results, err
}

// BatchQuery is one query of a heterogeneous batch: its own vector,
// error bound, and cost bounds.
type BatchQuery struct {
	Q     vec.Vector
	Eps   float64
	Costs CostBounds
}

// SearchBatchPlanned answers a heterogeneous batch with the engine
// planning EVERY query independently — a tiny-ε query probes the tree
// while a huge-ε query in the same batch scans, each recorded in its
// own Explain (positionally aligned with the queries, like the
// results).  force pins every query to one path.  Per-query stats are
// accumulated into stats in query order, so the totals are identical
// to running the queries sequentially.
func (ix *Index) SearchBatchPlanned(queries []BatchQuery, force engine.PathKind, parallelism int, stats *SearchStats) ([][]Match, []*engine.Explain, error) {
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	results := make([][]Match, len(queries))
	explains := make([]*engine.Explain, len(queries))
	perQuery := make([]SearchStats, len(queries))
	errs := make([]error, len(queries))

	var wg sync.WaitGroup
	next := make(chan int)
	for g := 0; g < parallelism; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				bq := queries[i]
				results[i], explains[i], errs[i] = ix.SearchPlanned(bq.Q, bq.Eps, bq.Costs, force, nil, &perQuery[i])
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
	}
	if stats != nil {
		for i := range perQuery {
			stats.Add(perQuery[i])
		}
	}
	return results, explains, nil
}
