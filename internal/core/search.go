package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"scaleshift/internal/engine"
	"scaleshift/internal/obs"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// candidate addresses one window proposed by the index phase.
type candidate struct{ seq, start int }

// Post-processing verdicts.
const (
	verdictMatch = iota
	verdictFalseAlarm
	verdictCostRejected
)

// verifyCheckInterval is how many candidates a verification loop
// processes between ctx polls.  One candidate costs O(n) float work
// (a prefix-sum pass, sometimes an exact MinDist), so 64 candidates
// bound cancellation latency to a few microseconds at n = 128 while
// keeping the poll invisible in the loop.
const verifyCheckInterval = 64

// storeView is the read surface the verification and extraction layers
// need from a data store.  Both *store.Store and *store.Snapshot
// satisfy it, so the same verifier runs against a live store (the
// single-Index path) or a pinned snapshot (the segmented path, where
// appends race with queries and only the snapshot is stable).
type storeView interface {
	NumSequences() int
	SequenceName(seq int) string
	SequenceLen(seq int) int
	Window(seq, start, n int, dst vec.Vector, pc *store.PageCounter) error
	WindowView(seq, start, n int, pc *store.PageCounter) (vec.Vector, error)
	WindowStats(seq, start, n int) (store.WindowStats, error)
}

// verifier carries the query-side quantities shared by every candidate
// check of one query: the SE image su = T_se(q), its squared norm uu,
// and the query mean mu feed the prefix-sum fast path of
// vec.MinDistWithStats; q itself feeds the exact confirmation.  A
// verifier is read-only after construction and therefore shared by the
// parallel verification workers.
type verifier struct {
	sv     storeView
	q, su  vec.Vector
	mu, uu float64
	eps    float64
	costs  CostBounds
}

func newVerifier(sv storeView, q vec.Vector, eps float64, costs CostBounds) *verifier {
	su := vec.SETransform(q)
	return &verifier{sv: sv, q: q, su: su, mu: vec.Mean(q), uu: vec.NormSq(su), eps: eps, costs: costs}
}

// verify runs the exact post-processing check on one candidate window.
// The window is read in place (no copy) and charged to pc; the
// prefix-sum fast path rejects candidates whose distance provably
// exceeds eps after one cross-term pass, and only survivors — true
// matches and candidates within the fast path's error bound of the
// boundary — pay for the exact MinDist, whose values are reported so
// results are bit-identical to the all-exact path.
func (v *verifier) verify(seq, start int, pc *store.PageCounter) (Match, int, error) {
	n := len(v.q)
	w, err := v.sv.WindowView(seq, start, n, pc)
	if err != nil {
		return Match{}, 0, err
	}
	ws, err := v.sv.WindowStats(seq, start, n)
	if err != nil {
		return Match{}, 0, err
	}
	fast, slack := vec.MinDistWithStats(v.su, v.mu, v.uu, w, ws.Sum, ws.SumSq, ws.SumErr, ws.SumSqErr)
	if fast.Dist*fast.Dist > v.eps*v.eps+slack {
		return Match{}, verdictFalseAlarm, nil
	}
	m := vec.MinDist(v.q, w)
	if m.Dist > v.eps {
		return Match{}, verdictFalseAlarm, nil
	}
	if !v.costs.Allow(m.Scale, m.Shift) {
		return Match{}, verdictCostRejected, nil
	}
	return Match{
		Seq:   seq,
		Start: start,
		Name:  v.sv.SequenceName(seq),
		Dist:  m.Dist,
		Scale: m.Scale,
		Shift: m.Shift,
	}, verdictMatch, nil
}

// verifyParallelThreshold is the candidate count below which the
// per-query verification fan-out is not worth the goroutine handoff.
const verifyParallelThreshold = 32

// verifyCandidates post-processes the candidate list, returning the
// matches in candidate order plus the false-alarm and cost-rejection
// counts.  When the query yields enough candidates, pc is not attached
// to a buffer pool, and GOMAXPROCS allows, verification fans out
// across a bounded worker pool: workers fill disjoint slots of a
// verdict array and keep private page counters that are merged into pc
// afterwards, so results, ordering, and every SearchStats field are
// identical to the sequential pass.  Both the sequential loop and the
// workers poll ctx every verifyCheckInterval candidates; a worker
// panic (a poisoned window) is recovered into a *WorkerPanicError
// rather than crashing the process.
func verifyCandidates(ctx context.Context, v *verifier, cands []candidate, pc *store.PageCounter) ([]Match, int, int, error) {
	workers := runtime.GOMAXPROCS(0)
	if len(cands) < verifyParallelThreshold || workers < 2 || pc.Pool != nil {
		var out []Match
		var falseAlarms, costRejected int
		for i, c := range cands {
			if i%verifyCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return nil, 0, 0, err
				}
			}
			m, verdict, err := v.verify(c.seq, c.start, pc)
			if err != nil {
				return nil, 0, 0, err
			}
			switch verdict {
			case verdictFalseAlarm:
				falseAlarms++
			case verdictCostRejected:
				costRejected++
			default:
				out = append(out, m)
			}
		}
		return out, falseAlarms, costRejected, nil
	}

	type outcome struct {
		m       Match
		verdict int
	}
	outs := make([]outcome, len(cands))
	if workers > len(cands) {
		workers = len(cands)
	}
	pcs := make([]store.PageCounter, workers)
	errs := make([]error, workers)
	chunk := (len(cands) + workers - 1) / workers
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		lo := g * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			curSeq, curStart := -1, -1
			defer recoverWorkerPanic("verification", &curSeq, &curStart, &errs[g])
			for i := lo; i < hi; i++ {
				if (i-lo)%verifyCheckInterval == 0 {
					if err := ctx.Err(); err != nil {
						errs[g] = err
						return
					}
				}
				curSeq, curStart = cands[i].seq, cands[i].start
				m, verdict, err := v.verify(cands[i].seq, cands[i].start, &pcs[g])
				if err != nil {
					errs[g] = err
					return
				}
				outs[i] = outcome{m, verdict}
			}
		}(g, lo, hi)
	}
	wg.Wait()
	// A real failure (panic, I/O) outranks a context error seen by a
	// sibling worker.
	var ctxErr error
	for g := range errs {
		if errs[g] != nil {
			if errors.Is(errs[g], context.Canceled) || errors.Is(errs[g], context.DeadlineExceeded) {
				ctxErr = errs[g]
				continue
			}
			return nil, 0, 0, errs[g]
		}
		pc.Merge(&pcs[g])
	}
	if ctxErr != nil {
		return nil, 0, 0, ctxErr
	}
	var out []Match
	var falseAlarms, costRejected int
	for i := range outs {
		switch outs[i].verdict {
		case verdictFalseAlarm:
			falseAlarms++
		case verdictCostRejected:
			costRejected++
		default:
			out = append(out, outs[i].m)
		}
	}
	return out, falseAlarms, costRejected, nil
}

// planQuery assembles the engine's view of one index-phase probe: the
// query's SE-line, the slack-widened epsilon, and the scale-segment
// restriction derived from the cost bounds.
//
// When the cost bounds restrict the scale factor, the index phase can
// search only the SEGMENT of the scaling line with t in
// [ScaleMin, ScaleMax]: for any true match its exact scale a lies in
// that range, and by the contraction property
// ‖a·F(T_se q) − F(T_se v)‖ <= ‖a·T_se q − T_se v‖ <= eps, so the
// candidate is still reached through the segment.  This prunes the
// a ≈ 0 degeneracy at the directory rather than in post-processing.
func (ix *Index) planQuery(line vec.Line, eps float64, costs CostBounds) engine.Query {
	return buildEngineQuery(line, eps, ix.numericSlack(), costs, ix.WindowCount(), ix.fmap.Dim())
}

// buildEngineQuery is planQuery's index-free core, shared with the
// segmented executor (which derives slack and the candidate universe
// from a pinned manifest instead of a live index).
func buildEngineQuery(line vec.Line, eps, slack float64, costs CostBounds, windows, dim int) engine.Query {
	segment := !math.IsInf(costs.ScaleMin, -1) || !math.IsInf(costs.ScaleMax, 1)
	tMin, tMax := costs.ScaleMin, costs.ScaleMax
	if segment {
		// Widen the parameter range against feature rounding: a shift
		// of delta along the unit direction moves the point by
		// delta·‖D‖, so slack/‖D‖ in parameter units is conservative.
		if dn := vec.Norm(line.D); dn > 0 {
			pad := slack / dn
			tMin -= pad
			tMax += pad
		}
	}
	return engine.Query{
		Line:    line,
		Eps:     eps + slack,
		Segment: segment,
		TMin:    tMin,
		TMax:    tMax,
		Windows: windows,
		Dim:     dim,
	}
}

// probe plans and runs the index phase for one SE-line: the planner
// picks an access path (or honors force), the path emits its candidate
// windows into fn, and the decision, estimates, degraded-mode flag,
// and stage timings land in the returned Explain.  Under a traced
// context (obs.Tracer.StartTrace) the two stages open "plan" and
// "probe" spans — with the chosen path, emitted-candidate, and
// node-read attrs — and the paths themselves open descent spans as
// children of "probe"; an untraced context skips all of it without
// allocating.
func (ix *Index) probe(ctx context.Context, line vec.Line, eps float64, costs CostBounds, force engine.PathKind, treeStats *rtree.SearchStats, fn func(seq, start int)) (*engine.Explain, error) {
	planStart := time.Now()
	_, planSpan := obs.StartSpan(ctx, "plan")
	eq := ix.planQuery(line, eps, costs)
	path, ex, err := ix.planner.Plan(eq, force)
	if err != nil {
		spanEndWithError(planSpan, err)
		return ex, fmt.Errorf("core: planning: %w", err)
	}
	if ix.degraded != "" {
		ex.Degraded = true
		ex.DegradedReason = ix.degraded
	}
	planSpan.SetAttr("path", ex.Chosen.String())
	planSpan.End()
	ex.PlanTime = time.Since(planStart)

	probeStart := time.Now()
	probeCtx, probeSpan := obs.StartSpan(ctx, "probe")
	emit := fn
	emitted := 0
	if probeSpan != nil {
		probeSpan.SetAttr("path", ex.Chosen.String())
		if ex.Degraded {
			probeSpan.SetBool("degraded", true)
		}
		emit = func(seq, start int) { emitted++; fn(seq, start) }
	}
	nodesBefore := treeStats.NodeAccesses
	if err := path.Candidates(probeCtx, eq, treeStats, emit); err != nil {
		spanEndWithError(probeSpan, err)
		return ex, fmt.Errorf("core: %s probe: %w", ex.Chosen, err)
	}
	if probeSpan != nil {
		probeSpan.SetInt("candidates", int64(emitted))
		probeSpan.SetInt("node_reads", int64(treeStats.NodeAccesses-nodesBefore))
		probeSpan.End()
	}
	ex.ProbeTime = time.Since(probeStart)
	return ex, nil
}

// Search returns every indexed window S' with Q ~ε S' (Definition 1)
// whose optimal transformation passes the cost bounds, together with
// the scale factor and shift offset realizing each match (§6).  The
// query length must equal Options.WindowLen; use SearchLong for longer
// queries.  stats may be nil.
//
// The result set is exact: the feature-space search cannot dismiss a
// true match (the SE and DFT maps contract distances) and the
// post-processing step verifies every candidate against the original
// data.
func (ix *Index) Search(q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	return ix.SearchPooled(q, eps, costs, nil, stats)
}

// SearchContext is Search with cooperative cancellation: the R*-tree
// descent polls ctx per node, the verification loops per
// verifyCheckInterval candidates, so a cancelled or expired context
// stops the query within a bounded slice of work and returns
// ctx.Err().
func (ix *Index) SearchContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	out, _, err := ix.SearchPlannedContext(ctx, q, eps, costs, engine.PathAuto, nil, stats)
	return out, err
}

// SearchPooled is Search with the data-page fetches of the
// post-processing step played through a shared LRU buffer pool, for
// bounded-memory cost studies.  pool may be nil (plain Search).
func (ix *Index) SearchPooled(q vec.Vector, eps float64, costs CostBounds, pool *store.BufferPool, stats *SearchStats) ([]Match, error) {
	out, _, err := ix.SearchPlanned(q, eps, costs, engine.PathAuto, pool, stats)
	return out, err
}

// SearchPlanned is the engine's range-query executor: the planner
// picks the cheapest access path for the query (or honors force when
// it is not PathAuto, erroring if that path is unavailable), the path
// emits candidate windows, and the shared verifier removes all false
// alarms.  The result set is bit-identical whichever path runs — the
// paths differ only in how many candidates reach verification — so
// forcing a path is a debugging and benchmarking tool, never a
// correctness knob.  The returned Explain records the decision, the
// per-path cost estimates, the candidate actuals, and the per-stage
// timings.  pool and stats may be nil.
func (ix *Index) SearchPlanned(q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, pool *store.BufferPool, stats *SearchStats) ([]Match, *engine.Explain, error) {
	return ix.SearchPlannedContext(context.Background(), q, eps, costs, force, pool, stats)
}

// SearchPlannedContext is SearchPlanned with cooperative cancellation
// (see SearchContext).  Partial work is discarded on cancellation: the
// function returns nil matches and ctx.Err(), never a silently
// truncated answer set.
func (ix *Index) SearchPlannedContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, pool *store.BufferPool, stats *SearchStats) ([]Match, *engine.Explain, error) {
	if len(q) != ix.opts.WindowLen {
		recordSearchError()
		return nil, nil, fmt.Errorf("core: %w: query length %d, index window length %d (use SearchLong for longer queries)",
			ErrInvalidQuery, len(q), ix.opts.WindowLen)
	}
	if err := validateQuery(q, eps); err != nil {
		recordSearchError()
		return nil, nil, err
	}

	// Searching step: collect candidates through the planned access
	// path.  The index phase widens eps by a numerical slack so
	// floating-point cancellation in the feature-space distance cannot
	// dismiss a true match; the exact post-processing check below
	// still applies the caller's eps, so the widening only admits
	// extra candidates.
	var treeStats rtree.SearchStats
	var cands []candidate
	ex, err := ix.probe(ctx, ix.seLine(q), eps, costs, force, &treeStats, func(seq, start int) {
		cands = append(cands, candidate{seq, start})
	})
	if err != nil {
		recordSearchError()
		return nil, ex, err
	}

	// Post-processing step: exact check, transform recovery, cost
	// bounds — prefix-sum filtered and, for large candidate sets,
	// fanned across a worker pool (see verifyCandidates).
	verifyStart := time.Now()
	verifyCtx, verifySpan := obs.StartSpan(ctx, "verify")
	pc := store.PageCounter{Pool: pool}
	v := newVerifier(ix.st, q, eps, costs)
	out, falseAlarms, costRejected, err := verifyCandidates(verifyCtx, v, cands, &pc)
	if err != nil {
		spanEndWithError(verifySpan, err)
		recordSearchError()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, ex, err
		}
		return nil, ex, fmt.Errorf("core: post-processing: %w", err)
	}
	sortMatches(out)
	if verifySpan != nil {
		verifySpan.SetInt("candidates", int64(len(cands)))
		verifySpan.SetInt("false_alarms", int64(falseAlarms))
		verifySpan.SetInt("matches", int64(len(out)))
		verifySpan.End()
	}
	ex.VerifyTime = time.Since(verifyStart)
	ex.ActualCandidates = len(cands)
	ex.Matches = len(out)
	ex.TraceID = obs.TraceIDFromContext(ctx)

	delta := SearchStats{
		IndexNodeAccesses:  treeStats.NodeAccesses,
		DataPageAccesses:   pc.Distinct(),
		Candidates:         len(cands),
		FalseAlarms:        falseAlarms,
		CostRejected:       costRejected,
		Results:            len(out),
		LeafEntriesChecked: treeStats.LeafEntriesChecked,
		Penetration:        treeStats.Penetration,
		PlanTime:           ex.PlanTime,
		ProbeTime:          ex.ProbeTime,
		VerifyTime:         ex.VerifyTime,
		TraceID:            ex.TraceID,
	}
	delta.PathProbes[ex.Chosen]++
	if ex.Degraded {
		delta.DegradedProbes++
	}
	recordSearchMetrics(&delta, 1)
	if stats != nil {
		stats.Add(delta)
	}
	return out, ex, nil
}

// SearchLong answers queries longer than the index window using the
// multipiece method sketched in §7 (after [2]): the query is cut into
// k = ⌊len(Q)/n⌋ disjoint length-n pieces, each piece is searched with
// error bound ε/√k, every hit proposes a full-length alignment, and
// each proposal is verified exactly against the original data.
//
// No qualified subsequence is missed: if ‖a·Q + b − V‖ ≤ ε over the
// full length, then the piecewise residuals satisfy
// Σᵢ ‖a·Qᵢ + b − Vᵢ‖² ≤ ε², so at least one piece is within ε/√k of
// its aligned window at the same (a, b), and the per-piece optimal
// distance can only be smaller.
func (ix *Index) SearchLong(q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	out, _, err := ix.SearchLongPlanned(q, eps, costs, engine.PathAuto, stats)
	return out, err
}

// SearchLongContext is SearchLong with cooperative cancellation (see
// SearchContext).
func (ix *Index) SearchLongContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	out, _, err := ix.SearchLongPlannedContext(ctx, q, eps, costs, engine.PathAuto, stats)
	return out, err
}

// SearchLongPlanned is SearchLong with the per-piece index probes
// routed through the engine: each piece is planned independently (with
// the piece bound ε/√k), force pins every piece to one path, and the
// returned Explain carries the first piece's plan with candidate and
// timing actuals totalled across pieces.  As with SearchPlanned the
// result set is bit-identical whichever path serves the pieces.
func (ix *Index) SearchLongPlanned(q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, stats *SearchStats) ([]Match, *engine.Explain, error) {
	return ix.SearchLongPlannedContext(context.Background(), q, eps, costs, force, stats)
}

// SearchLongPlannedContext is SearchLongPlanned with cooperative
// cancellation: ctx is polled inside every piece probe and throughout
// full-length verification, so even a many-piece query over a large
// store stops within a bounded slice of work.
func (ix *Index) SearchLongPlannedContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, stats *SearchStats) ([]Match, *engine.Explain, error) {
	n := ix.opts.WindowLen
	if len(q) == n {
		return ix.SearchPlannedContext(ctx, q, eps, costs, force, nil, stats)
	}
	if len(q) < n {
		recordSearchError()
		return nil, nil, fmt.Errorf("core: %w: query length %d below index window length %d",
			ErrInvalidQuery, len(q), n)
	}
	if err := validateQuery(q, eps); err != nil {
		recordSearchError()
		return nil, nil, err
	}
	pieces := len(q) / n
	pieceEps := eps / math.Sqrt(float64(pieces))

	// Searching step, once per piece; candidate alignments are the
	// piece hits translated back to the query's start.  Per-path probe
	// counts are collected locally and committed with the rest of the
	// stats delta only when the whole query succeeds, so a failure
	// mid-pieces never leaves probes counted against zero candidates
	// (the CheckInvariants identity).
	proposed := make(map[candidate]bool)
	var treeStats rtree.SearchStats
	var ex *engine.Explain
	var pathProbes [engine.NumPathKinds]int
	for i := 0; i < pieces; i++ {
		piece := q[i*n : (i+1)*n]
		i := i
		pieceEx, err := ix.probe(ctx, ix.seLine(piece), pieceEps, costs, force, &treeStats, func(seq, start int) {
			full := candidate{seq, start - i*n}
			if full.start < 0 || full.start+len(q) > ix.st.SequenceLen(seq) {
				return
			}
			proposed[full] = true
		})
		if err != nil {
			recordSearchError()
			return nil, pieceEx, err
		}
		pathProbes[pieceEx.Chosen]++
		if ex == nil {
			ex = pieceEx
		} else {
			ex.PlanTime += pieceEx.PlanTime
			ex.ProbeTime += pieceEx.ProbeTime
		}
	}
	ex.Pieces = pieces
	// Sort the deduplicated proposals so verification order — and with
	// it any page-access pattern — is deterministic despite map
	// iteration.
	cands := make([]candidate, 0, len(proposed))
	for a := range proposed {
		cands = append(cands, a)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seq != cands[j].seq {
			return cands[i].seq < cands[j].seq
		}
		return cands[i].start < cands[j].start
	})

	// Post-processing on the full-length windows, through the same
	// prefix-sum filtered (and possibly parallel) path as Search.
	verifyStart := time.Now()
	verifyCtx, verifySpan := obs.StartSpan(ctx, "verify")
	var pc store.PageCounter
	v := newVerifier(ix.st, q, eps, costs)
	out, falseAlarms, costRejected, err := verifyCandidates(verifyCtx, v, cands, &pc)
	if err != nil {
		spanEndWithError(verifySpan, err)
		recordSearchError()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, ex, err
		}
		return nil, ex, fmt.Errorf("core: long-query post-processing: %w", err)
	}
	sortMatches(out)
	if verifySpan != nil {
		verifySpan.SetInt("candidates", int64(len(cands)))
		verifySpan.SetInt("false_alarms", int64(falseAlarms))
		verifySpan.SetInt("matches", int64(len(out)))
		verifySpan.End()
	}
	ex.VerifyTime = time.Since(verifyStart)
	ex.ActualCandidates = len(cands)
	ex.Matches = len(out)
	ex.TraceID = obs.TraceIDFromContext(ctx)

	delta := SearchStats{
		IndexNodeAccesses:  treeStats.NodeAccesses,
		DataPageAccesses:   pc.Distinct(),
		Candidates:         len(proposed),
		FalseAlarms:        falseAlarms,
		CostRejected:       costRejected,
		Results:            len(out),
		LeafEntriesChecked: treeStats.LeafEntriesChecked,
		Penetration:        treeStats.Penetration,
		PlanTime:           ex.PlanTime,
		ProbeTime:          ex.ProbeTime,
		VerifyTime:         ex.VerifyTime,
		PathProbes:         pathProbes,
		TraceID:            ex.TraceID,
	}
	if ex.Degraded {
		delta.DegradedProbes = pieces
	}
	recordSearchMetrics(&delta, pieces)
	if stats != nil {
		stats.Add(delta)
	}
	return out, ex, nil
}

// NearestNeighbors returns the k indexed windows with the smallest
// scale/shift distance to q, in increasing order (Corollary 1).  The
// answer is exact: candidates stream from the tree in increasing
// feature-space distance, which lower-bounds the true distance, so the
// search stops as soon as the bound passes the kth best exact
// distance (GEMINI-style refinement).  NN queries pin the index-probe
// access path rather than consulting the planner: the refinement bound
// requires candidates in non-decreasing lower-bound order, which only
// the tree's best-first traversal provides (a scan has no early
// termination, so it is never cheaper).  stats may be nil.
func (ix *Index) NearestNeighbors(q vec.Vector, k int, stats *SearchStats) ([]Match, error) {
	return ix.NearestNeighborsWithCosts(q, k, UnboundedCosts(), stats)
}

// NearestNeighborsContext is NearestNeighbors under a context: the
// refinement loop polls ctx every verifyCheckInterval candidates, so
// a disconnected client stops paying for exact window checks within
// the same cancellation grain as range queries.  On cancellation the
// function returns nil matches and ctx.Err().
func (ix *Index) NearestNeighborsContext(ctx context.Context, q vec.Vector, k int, stats *SearchStats) ([]Match, error) {
	return ix.NearestNeighborsWithCostsContext(ctx, q, k, UnboundedCosts(), stats)
}

// NearestNeighborsWithCosts is NearestNeighbors restricted to windows
// whose optimal transformation passes the cost bounds — e.g. bounding
// the scale factor away from zero excludes the degenerate matches
// where a near-constant window "matches" any query via a ≈ 0.
// The refinement bound remains valid because the feature distance
// lower-bounds the true distance of every window, filtered or not.
func (ix *Index) NearestNeighborsWithCosts(q vec.Vector, k int, costs CostBounds, stats *SearchStats) ([]Match, error) {
	return ix.NearestNeighborsWithCostsContext(context.Background(), q, k, costs, stats)
}

// NearestNeighborsWithCostsContext is NearestNeighborsWithCosts under
// a context; see NearestNeighborsContext for the cancellation grain.
func (ix *Index) NearestNeighborsWithCostsContext(ctx context.Context, q vec.Vector, k int, costs CostBounds, stats *SearchStats) ([]Match, error) {
	if len(q) != ix.opts.WindowLen {
		return nil, fmt.Errorf("core: %w: query length %d, index window length %d",
			ErrInvalidQuery, len(q), ix.opts.WindowLen)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: %w: k %d < 1", ErrInvalidQuery, k)
	}
	if err := validateQueryValues(q); err != nil {
		return nil, err
	}
	if ix.degraded != "" {
		// The refinement bound needs the tree's best-first stream; a
		// degraded index has no tree, and silently returning nothing
		// would be wrong, so NN queries fail loudly until a rebuild.
		return nil, fmt.Errorf("core: %w: nearest-neighbour search unavailable: index is degraded (%s)", engine.ErrUnsupported, ix.degraded)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var treeStats rtree.SearchStats
	var pc store.PageCounter
	line := ix.seLine(q)
	var best []Match // sorted ascending by Dist, at most k
	var candidates int
	var scanErr, ctxErr error

	slack := ix.numericSlack()
	vq := newVerifier(ix.st, q, 0, costs)
	// refine exact-checks one window against the running top-k.  The
	// prefix-sum fast path supplies a certified lower bound on the true
	// distance; when the running top-k is full and the bound already
	// exceeds the kth best, the exact MinDist (and its cost check, which
	// could only discard the window anyway) is skipped.
	refine := func(seq, start int) bool {
		candidates++
		if candidates%verifyCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return false
			}
		}
		w, err := ix.st.WindowView(seq, start, ix.opts.WindowLen, &pc)
		if err != nil {
			scanErr = err
			return false
		}
		if len(best) == k {
			ws, err := ix.st.WindowStats(seq, start, ix.opts.WindowLen)
			if err != nil {
				scanErr = err
				return false
			}
			fast, fslack := vec.MinDistWithStats(vq.su, vq.mu, vq.uu, w, ws.Sum, ws.SumSq, ws.SumErr, ws.SumSqErr)
			if lb := fast.Dist*fast.Dist - fslack; lb > 0 && math.Sqrt(lb) >= best[k-1].Dist {
				return true
			}
		}
		m := vec.MinDist(q, w)
		if !costs.Allow(m.Scale, m.Shift) {
			return true
		}
		if len(best) == k && m.Dist >= best[k-1].Dist {
			return true
		}
		match := Match{
			Seq:   seq,
			Start: start,
			Name:  ix.st.SequenceName(seq),
			Dist:  m.Dist,
			Scale: m.Scale,
			Shift: m.Shift,
		}
		pos := sort.Search(len(best), func(i int) bool { return best[i].Dist > m.Dist })
		if len(best) < k {
			best = append(best, Match{})
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = match
		return true
	}
	if ix.trailMode() {
		// Trails stream in non-decreasing line-to-MBR distance, a lower
		// bound for every window feature inside the MBR.
		ix.qtree().NearestRectsToLineFunc(line, &treeStats, func(it rtree.RectItemDist) bool {
			if len(best) == k && it.Dist > best[k-1].Dist+slack {
				return false
			}
			seq, first := store.DecodeWindowID(it.ID)
			count := ix.trailWindows(seq, first)
			for i := 0; i < count; i++ {
				if !refine(seq, first+i) {
					return false
				}
			}
			return true
		})
	} else {
		ix.qtree().NearestToLineFunc(line, &treeStats, func(id rtree.ItemDist) bool {
			if len(best) == k && id.Dist > best[k-1].Dist+slack {
				return false // lower bound exceeds kth exact distance: done
			}
			seq, start := store.DecodeWindowID(id.Item.ID)
			return refine(seq, start)
		})
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	if scanErr != nil {
		return nil, fmt.Errorf("core: nearest-neighbour refinement: %w", scanErr)
	}

	if stats != nil {
		stats.IndexNodeAccesses += treeStats.NodeAccesses
		stats.DataPageAccesses += pc.Distinct()
		stats.Candidates += candidates
		stats.Results += len(best)
		stats.LeafEntriesChecked += treeStats.LeafEntriesChecked
	}
	return best, nil
}

// sortMatches orders matches by (Seq, Start) for deterministic output.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Seq != ms[j].Seq {
			return ms[i].Seq < ms[j].Seq
		}
		return ms[i].Start < ms[j].Start
	})
}

// SearchBatch answers many queries concurrently with up to parallelism
// goroutines (capped at the query count; values < 1 default to
// runtime.GOMAXPROCS(0)).  Results are positionally aligned with the
// queries, and per-query stats are summed into stats when it is
// non-nil.  Searches are read-only, so no locking is needed; do not
// mutate the index concurrently.
func (ix *Index) SearchBatch(queries []vec.Vector, eps float64, costs CostBounds, parallelism int, stats *SearchStats) ([][]Match, error) {
	results, _, err := ix.SearchBatchContext(context.Background(), queries, eps, costs, parallelism, stats)
	return results, err
}

// SearchBatchContext is SearchBatch under a context: when ctx is
// cancelled mid-batch the call returns ctx.Err() together with the
// PARTIAL results — every query whose status is BatchComplete holds
// its full exact answer, every BatchIncomplete slot is nil — so a
// deadline turns into "here is what finished in time" instead of all
// work lost.
func (ix *Index) SearchBatchContext(ctx context.Context, queries []vec.Vector, eps float64, costs CostBounds, parallelism int, stats *SearchStats) ([][]Match, []BatchStatus, error) {
	bqs := make([]BatchQuery, len(queries))
	for i, q := range queries {
		bqs[i] = BatchQuery{Q: q, Eps: eps, Costs: costs}
	}
	results, _, statuses, err := ix.SearchBatchPlannedContext(ctx, bqs, engine.PathAuto, parallelism, stats)
	return results, statuses, err
}

// BatchQuery is one query of a heterogeneous batch: its own vector,
// error bound, and cost bounds.
type BatchQuery struct {
	Q     vec.Vector
	Eps   float64
	Costs CostBounds
}

// SearchBatchPlanned answers a heterogeneous batch with the engine
// planning EVERY query independently — a tiny-ε query probes the tree
// while a huge-ε query in the same batch scans, each recorded in its
// own Explain (positionally aligned with the queries, like the
// results).  force pins every query to one path.  Per-query stats are
// accumulated into stats in query order, so the totals are identical
// to running the queries sequentially.
func (ix *Index) SearchBatchPlanned(queries []BatchQuery, force engine.PathKind, parallelism int, stats *SearchStats) ([][]Match, []*engine.Explain, error) {
	results, explains, _, err := ix.SearchBatchPlannedContext(context.Background(), queries, force, parallelism, stats)
	return results, explains, err
}

// SearchBatchPlannedContext is SearchBatchPlanned under a context.
// On cancellation it stops handing out new queries, lets in-flight
// queries unwind at their next poll, and returns the partial results
// with a per-query status slice and ctx.Err(); completed slots are
// exact and usable, incomplete slots are nil.  A non-context failure
// in any query (I/O error, recovered worker panic) aborts the whole
// batch with that error, as before.  Per-query stats are accumulated
// only for completed queries, in query order.
func (ix *Index) SearchBatchPlannedContext(ctx context.Context, queries []BatchQuery, force engine.PathKind, parallelism int, stats *SearchStats) ([][]Match, []*engine.Explain, []BatchStatus, error) {
	return searchBatchPlannedContext(ctx, ix, queries, force, parallelism, stats)
}

// rangeSearcher is the single-query surface the shared batch executor
// fans out over; *Index and *SegmentedIndex both provide it.
type rangeSearcher interface {
	SearchPlannedContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, pool *store.BufferPool, stats *SearchStats) ([]Match, *engine.Explain, error)
}

func searchBatchPlannedContext(ctx context.Context, rs rangeSearcher, queries []BatchQuery, force engine.PathKind, parallelism int, stats *SearchStats) ([][]Match, []*engine.Explain, []BatchStatus, error) {
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	results := make([][]Match, len(queries))
	explains := make([]*engine.Explain, len(queries))
	statuses := make([]BatchStatus, len(queries))
	perQuery := make([]SearchStats, len(queries))
	errs := make([]error, len(queries))
	for i := range statuses {
		statuses[i] = BatchIncomplete
	}

	var wg sync.WaitGroup
	// Buffered and pre-filled so workers never block on the feed: a
	// worker that sees cancellation simply stops draining.
	next := make(chan int, len(queries))
	for i := range queries {
		next <- i
	}
	close(next)
	for g := 0; g < parallelism; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return // remaining queries stay BatchIncomplete
				}
				func(i int) {
					defer recoverWorkerPanic("batch search", nil, nil, &errs[i])
					bq := queries[i]
					results[i], explains[i], errs[i] = rs.SearchPlannedContext(ctx, bq.Q, bq.Eps, bq.Costs, force, nil, &perQuery[i])
				}(i)
				if errs[i] == nil {
					statuses[i] = BatchComplete
				}
			}
		}()
	}
	wg.Wait()

	// Classify failures: context errors mark their query incomplete
	// (the batch still returns partial results); anything else is
	// fatal for the whole batch.
	canceled := ctx.Err() != nil
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			canceled = true
			results[i] = nil
			continue
		}
		return nil, nil, nil, fmt.Errorf("core: batch query %d: %w", i, err)
	}
	if stats != nil {
		for i := range perQuery {
			if statuses[i] == BatchComplete {
				stats.Add(perQuery[i])
			}
		}
	}
	if canceled {
		err := ctx.Err()
		if err == nil {
			// A per-query context error surfaced before ctx.Err()
			// transitioned (possible with per-query deadlines seen
			// through the shared ctx); report the first one.
			for _, e := range errs {
				if e != nil {
					err = e
					break
				}
			}
		}
		return results, explains, statuses, err
	}
	return results, explains, statuses, nil
}
