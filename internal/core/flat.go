package core

import (
	"context"
	"fmt"
	"io"

	"scaleshift/internal/binio"
	"scaleshift/internal/geom"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// The frozen query path.  An Index can hold its R*-tree in one of two
// representations: the mutable pointer tree (ix.tree, the build/insert
// form) or a frozen flat arena (ix.flat, the serving form — one
// contiguous pointer-free blob traversed with batched kernels; see
// rtree.FlatTree).  When ix.flat is non-nil every search routes
// through it; mutation thaws back to the pointer form first.  The two
// representations answer every query bit-identically, so freezing and
// thawing are invisible in result sets.

// searchTree is the read-only tree surface the query engine consumes;
// *rtree.Tree and *rtree.FlatTree both implement it.
type searchTree interface {
	Len() int
	Height() int
	NodeCount() int
	Bounds() (geom.Rect, bool)
	CostHints() rtree.CostHints
	WriteStats(io.Writer) error
	LineSearchContext(ctx context.Context, l vec.Line, eps float64, strategy geom.Strategy, stats *rtree.SearchStats) ([]rtree.Item, error)
	SegmentSearchContext(ctx context.Context, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, stats *rtree.SearchStats) ([]rtree.Item, error)
	LineSearchRectsContext(ctx context.Context, l vec.Line, eps float64, strategy geom.Strategy, stats *rtree.SearchStats) ([]rtree.RectItem, error)
	SegmentSearchRectsContext(ctx context.Context, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, stats *rtree.SearchStats) ([]rtree.RectItem, error)
	NearestToLineFunc(l vec.Line, stats *rtree.SearchStats, fn func(rtree.ItemDist) bool)
	NearestRectsToLineFunc(l vec.Line, stats *rtree.SearchStats, fn func(rtree.RectItemDist) bool)
}

// qtree returns the representation searches should use: the frozen
// arena when present, the pointer tree otherwise.
func (ix *Index) qtree() searchTree {
	if ix.flat != nil {
		return ix.flat
	}
	return ix.tree
}

// Freeze converts the index's tree to the flat serving representation.
// Subsequent searches run on the arena; the pointer tree is released.
// Freezing an already-frozen or degraded index is a no-op.
func (ix *Index) Freeze() error {
	if ix.flat != nil || ix.degraded != "" {
		return nil
	}
	f, err := ix.tree.Freeze()
	if err != nil {
		return fmt.Errorf("core: freezing index: %w", err)
	}
	ix.flat = f
	emptyTree, err := rtree.New(f.Config())
	if err != nil {
		return err
	}
	ix.tree = emptyTree
	return nil
}

// Frozen reports whether searches are served from the flat arena.
func (ix *Index) Frozen() bool { return ix.flat != nil }

// thaw reconstructs the mutable pointer tree from the frozen arena and
// drops the arena (closing its backing mapping, if any).  Called by
// checkMutable before any structural mutation.
func (ix *Index) thaw() error {
	if ix.flat == nil {
		return nil
	}
	t, err := ix.flat.Thaw()
	if err != nil {
		return fmt.Errorf("core: thawing frozen index: %w", err)
	}
	ix.tree = t
	ix.flat = nil
	ix.artifact = nil
	m := ix.mapping
	ix.mapping = nil
	return m.Close()
}

// VerifyArtifact runs the full integrity check a lazily-opened
// artifact deferred: every section CRC32C, the whole-file trailer, and
// the arena's structural validation.  LoadIndexFile opens in O(1) and
// trusts nothing beyond header plausibility; a serving layer should
// call this off the hot path (as ssserve does before swapping in a
// reloaded snapshot) — after it returns nil, every traversal of the
// mapped arena is guaranteed panic-free.  On an index whose bytes were
// already eagerly verified (stream LoadIndex, built in process) it
// returns nil immediately.
func (ix *Index) VerifyArtifact() error {
	if ix.artifact != nil {
		if err := binio.CheckFrame(ix.artifact, len(indexMagic), 2); err != nil {
			return fmt.Errorf("core: index artifact: %w", err)
		}
	}
	if ix.flat != nil {
		if err := ix.flat.Validate(); err != nil {
			return fmt.Errorf("core: index artifact: %w", err)
		}
	}
	return nil
}

// Close releases the memory mapping behind a file-opened index.  The
// index must not be searched afterwards — the arena's arrays alias the
// mapping.  Indexes without a mapping Close trivially; nil-safe via
// Mapping.Close.
func (ix *Index) Close() error {
	ix.flat = nil
	ix.artifact = nil
	m := ix.mapping
	ix.mapping = nil
	return m.Close()
}

// LoadIndexFile memory-maps the index artifact at path and opens it
// zero-copy: the flat arena is served straight out of the page cache,
// so open cost is O(1) in the index size — only the small header
// section is parsed and checksummed.  The deferred integrity check is
// VerifyArtifact; until it (or a full CRC pass) has run, a corrupted
// arena can surface as a traversal panic rather than wrong results.
// v2 artifacts (pointer-tree payload) are parsed eagerly as before —
// compatibility costs the O(n) parse, not correctness.
func LoadIndexFile(path string, st *store.Store) (*Index, error) {
	m, err := binio.OpenMapping(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening index artifact: %w", err)
	}
	ix, err := loadIndexBytes(m.Data, st)
	if err != nil {
		m.Close()
		return nil, err
	}
	if ix.flat != nil {
		// Zero-copy open: the index aliases the mapping; keep it alive
		// and remember the full frame for VerifyArtifact.
		ix.mapping = m
		ix.artifact = m.Data
	} else {
		// v2 artifact: fully parsed into the heap; the mapping can go.
		m.Close()
	}
	return ix, nil
}

// OpenOrRebuildFile is OpenOrRebuild over a file path: it opens the
// artifact zero-copy via LoadIndexFile and degrades to the scan path
// instead of failing when the artifact is missing or damaged.  Like
// LoadIndexFile it defers full checksum verification; callers that
// must not serve unverified bytes should VerifyArtifact (and treat
// failure as a reload/rebuild trigger) before publishing the index.
func OpenOrRebuildFile(path string, st *store.Store, opts Options) (*Index, OpenStatus, error) {
	ix, err := LoadIndexFile(path, st)
	if err == nil {
		return ix, OpenStatus{}, nil
	}
	reason := fmt.Sprintf("index artifact rejected: %v", err)
	deg, derr := NewDegradedIndex(st, opts, reason)
	if derr != nil {
		return nil, OpenStatus{Degraded: true, Reason: reason, Err: err}, derr
	}
	return deg, OpenStatus{Degraded: true, Reason: reason, Err: err}, nil
}
