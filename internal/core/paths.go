package core

import (
	"context"
	"math"

	"scaleshift/internal/engine"
	"scaleshift/internal/obs"
	"scaleshift/internal/rtree"
	"scaleshift/internal/seqscan"
	"scaleshift/internal/store"
)

// The three physical access paths of the query engine.  Each one is a
// candidate generator for the shared verifier: it must emit a superset
// of the true answer set (no false dismissals), and nothing else —
// exact checking, transform recovery, and cost bounds are the
// executor's job, which is what keeps the planner's choice invisible
// in the result set.
//
// Availability is structural, never per-query: the point-entry tree
// probe and the sub-trail probe are mutually exclusive (an index
// stores one leaf representation), the tree probes are both off on a
// degraded index (OpenOrRebuild kept the raw store but no tree), and
// the scan is always available.

// scanCheckInterval is how many emitted windows pass between ctx polls
// in the scan path: frequent enough that cancellation latency stays in
// the microseconds, rare enough to stay invisible in the emit loop.
const scanCheckInterval = 1024

// rtreePath is the paper's §6 index phase: descend into children whose
// ε-enlarged MBR is penetrated by the SE-line, collect leaf points
// within ε of the line.
type rtreePath struct{ ix *Index }

func (p *rtreePath) Kind() engine.PathKind { return engine.PathRTree }

func (p *rtreePath) Available() (bool, string) {
	if p.ix.degraded != "" {
		return false, "index degraded: " + p.ix.degraded
	}
	if p.ix.trailMode() {
		return false, "index stores sub-trail MBR entries (SubtrailLen >= 2)"
	}
	return true, ""
}

func (p *rtreePath) EstimateCost(q engine.Query) engine.Cost {
	h := p.ix.qtree().CostHints()
	return engine.EstimateTreeCostSampled(h, q.Windows, q.Eps, sampleDists(h, q))
}

func (p *rtreePath) Candidates(ctx context.Context, q engine.Query, ts *rtree.SearchStats, emit func(seq, start int)) error {
	descentCtx, span := obs.StartSpan(ctx, "rtree.descent")
	nodesBefore, leavesBefore := descentBaseline(ts)
	var cands []rtree.Item
	var err error
	if q.Segment {
		cands, err = p.ix.qtree().SegmentSearchContext(descentCtx, q.Line, q.TMin, q.TMax, q.Eps, p.ix.opts.Strategy, ts)
	} else {
		cands, err = p.ix.qtree().LineSearchContext(descentCtx, q.Line, q.Eps, p.ix.opts.Strategy, ts)
	}
	endDescentSpan(span, ts, nodesBefore, leavesBefore, len(cands), err)
	if err != nil {
		return err
	}
	for _, cand := range cands {
		seq, start := store.DecodeWindowID(cand.ID)
		emit(seq, start)
	}
	return nil
}

// trailPath is the sub-trail MBR variant (ST-index style): leaf
// entries are MBRs over runs of consecutive windows; each penetrated
// entry expands into the windows it covers.
type trailPath struct{ ix *Index }

func (p *trailPath) Kind() engine.PathKind { return engine.PathTrail }

func (p *trailPath) Available() (bool, string) {
	if p.ix.degraded != "" {
		return false, "index degraded: " + p.ix.degraded
	}
	if !p.ix.trailMode() {
		return false, "index stores per-window point entries (SubtrailLen < 2)"
	}
	return true, ""
}

func (p *trailPath) EstimateCost(q engine.Query) engine.Cost {
	h := p.ix.qtree().CostHints()
	return engine.EstimateTrailCostSampled(h, q.Windows, p.ix.opts.SubtrailLen, q.Eps, sampleDists(h, q))
}

func (p *trailPath) Candidates(ctx context.Context, q engine.Query, ts *rtree.SearchStats, emit func(seq, start int)) error {
	descentCtx, span := obs.StartSpan(ctx, "rtree.descent")
	nodesBefore, leavesBefore := descentBaseline(ts)
	var cands []rtree.RectItem
	var err error
	if q.Segment {
		cands, err = p.ix.qtree().SegmentSearchRectsContext(descentCtx, q.Line, q.TMin, q.TMax, q.Eps, p.ix.opts.Strategy, ts)
	} else {
		cands, err = p.ix.qtree().LineSearchRectsContext(descentCtx, q.Line, q.Eps, p.ix.opts.Strategy, ts)
	}
	endDescentSpan(span, ts, nodesBefore, leavesBefore, len(cands), err)
	if err != nil {
		return err
	}
	for _, cand := range cands {
		if err := ctx.Err(); err != nil {
			return err
		}
		seq, first := store.DecodeWindowID(cand.ID)
		count := p.ix.trailWindows(seq, first)
		for i := 0; i < count; i++ {
			emit(seq, first+i)
		}
	}
	return nil
}

// scanPath is experiment set 1 adapted to the engine: every indexed
// window is a candidate, in storage order, and the shared verifier
// does all the filtering.  It reads no index pages and beats the tree
// probe when the store is small or ε is so large that the tree would
// visit everything anyway.  It is also the degradation fallback: a
// degraded index answers every query through this path.
type scanPath struct{ ix *Index }

func (p *scanPath) Kind() engine.PathKind { return engine.PathScan }

func (p *scanPath) Available() (bool, string) { return true, "" }

func (p *scanPath) EstimateCost(q engine.Query) engine.Cost {
	return engine.EstimateScanCost(q.Windows)
}

func (p *scanPath) Candidates(ctx context.Context, q engine.Query, ts *rtree.SearchStats, emit func(seq, start int)) error {
	_, span := obs.StartSpan(ctx, "scan")
	n := 0
	seqscan.Addresses(p.ix.st, p.ix.opts.WindowLen, p.ix.indexed, func(seq, start int) bool {
		if n%scanCheckInterval == 0 && ctx.Err() != nil {
			return false
		}
		n++
		emit(seq, start)
		return true
	})
	err := ctx.Err()
	if span != nil {
		span.SetBool("degraded", p.ix.degraded != "")
		span.SetInt("emitted", int64(n))
		spanEndWithError(span, err)
	}
	return err
}

// sampleDists measures the tree's maintained feature sample against
// the query's SE-line (restricted to the scale segment when cost
// bounds apply), feeding the planner's empirical selectivity estimate.
func sampleDists(h rtree.CostHints, q engine.Query) []float64 {
	tMin, tMax := math.Inf(-1), math.Inf(1)
	if q.Segment {
		tMin, tMax = q.TMin, q.TMax
	}
	return engine.SegmentDistances(h.Sample, q.Line, tMin, tMax)
}

// newPlanner registers the paths in deterministic preference order
// (index probes before the scan, so exact cost ties keep the paper's
// behavior).
func (ix *Index) newPlanner() *engine.Planner {
	return engine.NewPlanner(&rtreePath{ix}, &trailPath{ix}, &scanPath{ix})
}
