package core

import (
	"bytes"
	"testing"

	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

// FuzzLoadIndex asserts the index loader never panics, never
// over-allocates, and never hands back a usable index from corrupt
// bytes: whatever it accepts must pass the same structural checks a
// freshly built index does.
func FuzzLoadIndex(f *testing.F) {
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 2
	cfg.Days = 60
	if _, err := stock.Populate(st, cfg); err != nil {
		f.Fatal(err)
	}
	opts := DefaultOptions()
	opts.WindowLen = 32
	good := func() []byte {
		ix, err := NewIndex(st, opts)
		if err != nil {
			f.Fatal(err)
		}
		if err := ix.Build(); err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ix.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("SSIDX\x01"))
	f.Add([]byte("SSIDX\x02"))
	f.Add(good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-2] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, in []byte) {
		ix, err := LoadIndex(bytes.NewReader(in), st)
		if err != nil {
			return
		}
		// The CRC framing makes accepting anything but the genuine
		// artifact astronomically unlikely; whatever loads must be
		// internally consistent and searchable.
		if ix.WindowCount() < 0 || ix.EntryCount() < 0 {
			t.Fatalf("negative counts: %d windows, %d entries", ix.WindowCount(), ix.EntryCount())
		}
		q := make([]float64, opts.WindowLen)
		if err := st.Window(0, 0, opts.WindowLen, q, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Search(q, 0.1, UnboundedCosts(), nil); err != nil {
			t.Fatalf("loaded index cannot search: %v", err)
		}
	})
}

// FuzzLoadSegments is FuzzLoadIndex for the segmented-manifest
// decoder: malformed segment counts, overlapping or out-of-bounds
// window ranges, and CRC flips must all surface as typed errors —
// never a panic, an over-allocation, or a silently wrong index.
func FuzzLoadSegments(f *testing.F) {
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 2
	cfg.Days = 90
	if _, err := stock.Populate(st, cfg); err != nil {
		f.Fatal(err)
	}
	opts := DefaultOptions()
	opts.WindowLen = 32
	good := func() []byte {
		g, err := NewSegmentedIndex(st, opts)
		if err != nil {
			f.Fatal(err)
		}
		defer g.Close()
		// Two frozen segments so the directory has more than one entry.
		if err := g.AppendValues(0, make([]float64, 40)); err != nil {
			f.Fatal(err)
		}
		if err := g.Compact(); err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.WriteSegments(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	// The store grew by 40 values inside the closure; reloads below see
	// the grown store, which the loader must accept (delta re-extract).
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("SSSEG\x00"))
	f.Add([]byte("SSSEG\x01"))
	f.Add([]byte("SSIDX\x03"))
	f.Add(good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-2] ^= 0x40
	f.Add(flipped)
	// Flip a byte inside the segment directory region too.
	dirFlipped := append([]byte(nil), good...)
	dirFlipped[20] ^= 0x01
	f.Add(dirFlipped)
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := LoadSegments(bytes.NewReader(in), st)
		if err != nil {
			return
		}
		defer g.Close()
		if g.WindowCount() < 0 {
			t.Fatalf("negative window count: %d", g.WindowCount())
		}
		q := make([]float64, opts.WindowLen)
		if err := st.Window(0, 0, opts.WindowLen, q, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Search(q, 0.1, UnboundedCosts(), nil); err != nil {
			t.Fatalf("loaded segmented index cannot search: %v", err)
		}
	})
}
