package core

import (
	"bytes"
	"testing"

	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

// FuzzLoadIndex asserts the index loader never panics, never
// over-allocates, and never hands back a usable index from corrupt
// bytes: whatever it accepts must pass the same structural checks a
// freshly built index does.
func FuzzLoadIndex(f *testing.F) {
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 2
	cfg.Days = 60
	if _, err := stock.Populate(st, cfg); err != nil {
		f.Fatal(err)
	}
	opts := DefaultOptions()
	opts.WindowLen = 32
	good := func() []byte {
		ix, err := NewIndex(st, opts)
		if err != nil {
			f.Fatal(err)
		}
		if err := ix.Build(); err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ix.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("SSIDX\x01"))
	f.Add([]byte("SSIDX\x02"))
	f.Add(good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-2] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, in []byte) {
		ix, err := LoadIndex(bytes.NewReader(in), st)
		if err != nil {
			return
		}
		// The CRC framing makes accepting anything but the genuine
		// artifact astronomically unlikely; whatever loads must be
		// internally consistent and searchable.
		if ix.WindowCount() < 0 || ix.EntryCount() < 0 {
			t.Fatalf("negative counts: %d windows, %d entries", ix.WindowCount(), ix.EntryCount())
		}
		q := make([]float64, opts.WindowLen)
		if err := st.Window(0, 0, opts.WindowLen, q, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Search(q, 0.1, UnboundedCosts(), nil); err != nil {
			t.Fatalf("loaded index cannot search: %v", err)
		}
	})
}
