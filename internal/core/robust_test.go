package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"scaleshift/internal/engine"
	"scaleshift/internal/query"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// testQueryEps returns a disguised window of ix's store and an epsilon
// wide enough to match a handful of windows.
func testQueryEps(t *testing.T, ix *Index) (vec.Vector, float64) {
	t.Helper()
	n := ix.Options().WindowLen
	w := make(vec.Vector, n)
	if err := ix.Store().Window(1, 7, n, w, nil); err != nil {
		t.Fatal(err)
	}
	scale, err := query.SENormScale(ix.Store(), n, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	return vec.Apply(w, 1.4, -3), 0.08 * scale
}

func TestQueryValidationTyped(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 4, 80)
	q, eps := testQueryEps(t, ix)
	n := ix.Options().WindowLen

	nanQ := q.Clone()
	nanQ[3] = math.NaN()
	infQ := q.Clone()
	infQ[0] = math.Inf(1)

	cases := []struct {
		name string
		run  func() error
	}{
		{"NaN sample", func() error { _, err := ix.Search(nanQ, eps, UnboundedCosts(), nil); return err }},
		{"Inf sample", func() error { _, err := ix.Search(infQ, eps, UnboundedCosts(), nil); return err }},
		{"negative eps", func() error { _, err := ix.Search(q, -0.5, UnboundedCosts(), nil); return err }},
		{"NaN eps", func() error { _, err := ix.Search(q, math.NaN(), UnboundedCosts(), nil); return err }},
		{"short query", func() error { _, err := ix.Search(q[:n-1], eps, UnboundedCosts(), nil); return err }},
		{"long-query short", func() error { _, err := ix.SearchLong(q[:n-1], eps, UnboundedCosts(), nil); return err }},
		{"long-query NaN", func() error {
			long := append(nanQ.Clone(), nanQ...)
			_, err := ix.SearchLong(long, eps, UnboundedCosts(), nil)
			return err
		}},
		{"NN NaN sample", func() error { _, err := ix.NearestNeighbors(nanQ, 3, nil); return err }},
		{"NN bad k", func() error { _, err := ix.NearestNeighbors(q, 0, nil); return err }},
		{"NN wrong length", func() error { _, err := ix.NearestNeighbors(q[:n-2], 3, nil); return err }},
		{"batch NaN", func() error {
			_, err := ix.SearchBatch([]vec.Vector{q, nanQ}, eps, UnboundedCosts(), 2, nil)
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("%s: error %v is not ErrInvalidQuery", tc.name, err)
		}
	}
}

func TestSearchContextCancelled(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 6, 120)
	q, eps := testQueryEps(t, ix)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.SearchContext(ctx, q, eps, UnboundedCosts(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := ix.SearchLongContext(ctx, append(q.Clone(), q...), eps, UnboundedCosts(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("long err = %v, want context.Canceled", err)
	}

	// An expired deadline surfaces as DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := ix.SearchContext(dctx, q, eps, UnboundedCosts(), nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	// A live context changes nothing: results equal the plain API's.
	want, err := ix.Search(q, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.SearchContext(context.Background(), q, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("context search: %d matches, plain %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d differs under context", i)
		}
	}
}

func TestBuildBulkParallelContextCancelled(t *testing.T) {
	st := buildTestIndex(t, testOptions(), 8, 160).Store()
	ix, err := NewIndex(st, testOptions())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	baseline := runtime.NumGoroutine()
	if err := ix.BuildBulkParallelContext(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// All workers must be gone (they are joined before return).
	for i := 0; i < 100 && runtime.NumGoroutine() > baseline; i++ {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("goroutines leaked: %d > %d", g, baseline)
	}

	// The index stays empty and reusable: a fresh build succeeds and
	// matches the sequential tree exactly.
	if got := ix.WindowCount(); got != 0 {
		t.Fatalf("cancelled build left %d windows", got)
	}
	if err := ix.BuildBulkParallelContext(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	seq, err := NewIndex(st, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.BuildBulk(); err != nil {
		t.Fatal(err)
	}
	if ix.WindowCount() != seq.WindowCount() || ix.EntryCount() != seq.EntryCount() {
		t.Fatalf("rebuilt tree differs: %d/%d vs %d/%d",
			ix.WindowCount(), ix.EntryCount(), seq.WindowCount(), seq.EntryCount())
	}
}

// promptBound is the acceptance bound on returning after a cancel.
// The race detector slows instrumented code 5-20x, so the strict
// 100ms contract is asserted only in uninstrumented runs.
func promptBound() time.Duration {
	if raceDetectorEnabled {
		return time.Second
	}
	return 100 * time.Millisecond
}

func TestBuildBulkParallelCancelsPromptly(t *testing.T) {
	st := buildTestIndex(t, testOptions(), 30, 650).Store()
	ix, err := NewIndex(st, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ix.BuildBulkParallelContext(ctx, 2) }()
	time.Sleep(2 * time.Millisecond)
	cancelled := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
		// err == nil means the build beat the cancel; that's fine.
		if d := time.Since(cancelled); d > promptBound() {
			t.Errorf("build returned %v after cancel, want <= %v", d, promptBound())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("build did not return after cancel")
	}
}

func TestSearchBatchContextPartialResults(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 6, 160)
	q, eps := testQueryEps(t, ix)
	queries := make([]vec.Vector, 24)
	for i := range queries {
		queries[i] = q
	}
	want, err := ix.Search(q, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-cancelled: everything incomplete, ctx error returned, no
	// goroutines left behind.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	baseline := runtime.NumGoroutine()
	start := time.Now()
	results, statuses, err := ix.SearchBatchContext(ctx, queries, eps, UnboundedCosts(), 4, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > promptBound() {
		t.Errorf("cancelled batch took %v, want <= %v", d, promptBound())
	}
	if len(statuses) != len(queries) {
		t.Fatalf("%d statuses for %d queries", len(statuses), len(queries))
	}
	for i, s := range statuses {
		if s == BatchComplete && results[i] == nil && len(want) > 0 {
			t.Errorf("query %d: complete but nil result", i)
		}
		if s == BatchIncomplete && results[i] != nil {
			t.Errorf("query %d: incomplete but has a result", i)
		}
	}
	for i := 0; i < 100 && runtime.NumGoroutine() > baseline; i++ {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("goroutines leaked: %d > %d", g, baseline)
	}

	// Cancelled mid-flight: whatever completed must equal the
	// uncancelled answer, slot for slot.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { time.Sleep(time.Millisecond); cancel2() }()
	results, statuses, err = ix.SearchBatchContext(ctx2, queries, eps, UnboundedCosts(), 2, nil)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if err == nil {
		// The batch beat the cancel: everything must be complete.
		for i, s := range statuses {
			if s != BatchComplete {
				t.Fatalf("no error but query %d is %v", i, s)
			}
		}
	}
	for i, s := range statuses {
		if s != BatchComplete {
			continue
		}
		if len(results[i]) != len(want) {
			t.Fatalf("completed query %d: %d matches, want %d", i, len(results[i]), len(want))
		}
		for j := range want {
			if results[i][j] != want[j] {
				t.Fatalf("completed query %d: match %d differs", i, j)
			}
		}
	}

	// Uncancelled context: statuses all complete, identical to the
	// plain batch API.
	results, statuses, err = ix.SearchBatchContext(context.Background(), queries, eps, UnboundedCosts(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range statuses {
		if s != BatchComplete {
			t.Fatalf("query %d: %v, want complete", i, s)
		}
		if len(results[i]) != len(want) {
			t.Fatalf("query %d: %d matches, want %d", i, len(results[i]), len(want))
		}
	}
}

func TestRecoverWorkerPanic(t *testing.T) {
	seq, start := 3, 41
	var err error
	func() {
		defer recoverWorkerPanic("unit test", &seq, &start, &err)
		panic("boom")
	}()
	var wpe *WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
	if wpe.Seq != 3 || wpe.Start != 41 || wpe.Value != "boom" {
		t.Fatalf("wrong panic metadata: %+v", wpe)
	}
	if !strings.Contains(wpe.Error(), "window (3, 41)") || !strings.Contains(wpe.Error(), "boom") {
		t.Fatalf("unhelpful message: %s", wpe.Error())
	}
	if len(wpe.Stack) == 0 {
		t.Error("no stack captured")
	}

	// A first (real) error is not overwritten by the panic.
	prior := errors.New("prior failure")
	err = prior
	func() {
		defer recoverWorkerPanic("unit test", nil, nil, &err)
		panic("later")
	}()
	if err != prior {
		t.Fatalf("panic overwrote prior error: %v", err)
	}

	// Nil position pointers degrade to (-1, -1).
	err = nil
	func() {
		defer recoverWorkerPanic("unit test", nil, nil, &err)
		panic(42)
	}()
	if !errors.As(err, &wpe) || wpe.Seq != -1 {
		t.Fatalf("nil-pointer form wrong: %v", err)
	}
}

func TestVerifyWorkerPanicRecovered(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	ix := buildTestIndex(t, testOptions(), 4, 80)
	q, _ := testQueryEps(t, ix)
	v := newVerifier(ix.st, q, 1, UnboundedCosts())
	// Poison the verifier: a nil store makes every window fetch panic
	// with a nil dereference inside the worker.
	v.sv = (*store.Store)(nil)
	cands := make([]candidate, 2*verifyParallelThreshold)
	for i := range cands {
		cands[i] = candidate{0, i}
	}
	var pc store.PageCounter
	_, _, _, err := verifyCandidates(context.Background(), v, cands, &pc)
	var wpe *WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
	if wpe.Op != "verification" || wpe.Seq != 0 {
		t.Fatalf("wrong panic site: %+v", wpe)
	}
}

func TestDegradedIndexServesExactResults(t *testing.T) {
	opts := testOptions()
	healthy := buildTestIndex(t, opts, 6, 120)
	st := healthy.Store()
	q, eps := testQueryEps(t, healthy)

	var buf bytes.Buffer
	if err := healthy.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)/2] ^= 0x10

	ix, status, err := OpenOrRebuild(bytes.NewReader(corrupt), st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Degraded || status.Err == nil {
		t.Fatalf("corrupt artifact opened healthy: %+v", status)
	}
	if !errors.Is(status.Err, ErrChecksum) && !errors.Is(status.Err, ErrTruncated) {
		t.Errorf("status.Err = %v, want a typed artifact error", status.Err)
	}
	if deg, reason := ix.Degraded(); !deg || reason == "" {
		t.Fatalf("Degraded() = %v, %q", deg, reason)
	}

	// Identical match sets, via the scan path, flagged in the explain
	// and the stats.
	for _, e := range []float64{0, eps, 3 * eps} {
		want, err := healthy.Search(q, e, UnboundedCosts(), nil)
		if err != nil {
			t.Fatal(err)
		}
		var stats SearchStats
		got, ex, err := ix.SearchPlanned(q, e, UnboundedCosts(), engine.PathAuto, nil, &stats)
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Degraded || ex.DegradedReason == "" {
			t.Errorf("eps=%v: explain not flagged degraded", e)
		}
		if ex.Chosen != engine.PathScan {
			t.Errorf("eps=%v: degraded query used %v, want scan", e, ex.Chosen)
		}
		if stats.DegradedProbes != 1 {
			t.Errorf("eps=%v: DegradedProbes = %d, want 1", e, stats.DegradedProbes)
		}
		if len(got) != len(want) {
			t.Fatalf("eps=%v: degraded %d matches, healthy %d", e, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("eps=%v: match %d differs in degraded mode", e, i)
			}
		}
	}

	// The explain text announces the mode.
	var sb strings.Builder
	_, ex, err := ix.SearchPlanned(q, eps, UnboundedCosts(), engine.PathAuto, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "DEGRADED") {
		t.Errorf("explain text misses degradation:\n%s", sb.String())
	}

	// Long queries degrade too.
	long := append(q.Clone(), q...)
	wantLong, err := healthy.SearchLong(long, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	gotLong, err := ix.SearchLong(long, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotLong) != len(wantLong) {
		t.Fatalf("long query: degraded %d matches, healthy %d", len(gotLong), len(wantLong))
	}

	// Forcing the tree path fails loudly; NN, mutation, and
	// serialization are refused rather than silently wrong.
	if _, _, err := ix.SearchPlanned(q, eps, UnboundedCosts(), engine.PathRTree, nil, nil); err == nil {
		t.Error("forced rtree path worked on a degraded index")
	}
	if _, err := ix.NearestNeighbors(q, 3, nil); err == nil {
		t.Error("NN search worked on a degraded index")
	}
	if _, err := ix.AppendAndIndex("new", make([]float64, 64)); err == nil {
		t.Error("mutation worked on a degraded index")
	}
	if err := ix.WriteBinary(io.Discard); err == nil {
		t.Error("degraded index serialized")
	}

	// The undamaged artifact still opens healthy through the same door.
	ix2, status2, err := OpenOrRebuild(bytes.NewReader(good), st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if status2.Degraded {
		t.Fatalf("good artifact degraded: %+v", status2)
	}
	if deg, _ := ix2.Degraded(); deg {
		t.Error("healthy open reports degraded")
	}
}

func TestIndexArtifactCorruptionAlwaysDetected(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 3, 70)
	st := ix.Store()
	var buf bytes.Buffer
	if err := ix.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := LoadIndex(bytes.NewReader(good), st); err != nil {
		t.Fatalf("pristine artifact rejected: %v", err)
	}
	// Every single-byte flip must be rejected (magic, lengths, CRCs,
	// payloads — the whole file is covered).
	for off := range good {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x04
		if _, err := LoadIndex(bytes.NewReader(bad), st); err == nil {
			t.Fatalf("flip at byte %d accepted", off)
		}
	}
	// Every truncation must be rejected with a typed error.
	for cut := 0; cut < len(good); cut += 7 {
		_, err := LoadIndex(bytes.NewReader(good[:cut]), st)
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
	// A v1 artifact is version-skew, not garbage.
	v1 := append([]byte(nil), good...)
	v1[5] = 0x01
	if _, err := LoadIndex(bytes.NewReader(v1), st); !errors.Is(err, ErrVersion) {
		t.Fatalf("v1 magic: err = %v, want ErrVersion", err)
	}
}

func TestNearestNeighborsContextCancelled(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 6, 120)
	q, _ := testQueryEps(t, ix)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.NearestNeighborsContext(ctx, q, 3, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// A live context changes nothing: results equal the plain API's.
	want, err := ix.NearestNeighbors(q, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.NearestNeighborsContext(context.Background(), q, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("context NN: %d matches, plain %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("NN match %d differs under context", i)
		}
	}
}

// TestNearestNeighborsCancelsPromptly is the serving-path contract:
// a dropped client stops an in-flight k-NN refinement within the
// shared cancellation grain.
func TestNearestNeighborsCancelsPromptly(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 30, 650)
	q, _ := testQueryEps(t, ix)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ix.NearestNeighborsContext(ctx, q, 50, nil)
		done <- err
	}()
	time.Sleep(time.Millisecond)
	cancelled := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
		// err == nil means the query beat the cancel; that's fine.
		if d := time.Since(cancelled); d > promptBound() {
			t.Errorf("NN returned %v after cancel, want <= %v", d, promptBound())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NN search did not return after cancel")
	}
}
