package core

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"scaleshift/internal/engine"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// fullSequences reads every sequence of st out as (name, values).
func fullSequences(t testing.TB, st *store.Store) ([]string, [][]float64) {
	t.Helper()
	names := make([]string, st.NumSequences())
	vals := make([][]float64, st.NumSequences())
	for seq := range names {
		names[seq] = st.SequenceName(seq)
		n := st.SequenceLen(seq)
		buf := make(vec.Vector, n)
		if err := st.Window(seq, 0, n, buf, nil); err != nil {
			t.Fatal(err)
		}
		vals[seq] = buf
	}
	return names, vals
}

// growSegmented replays the full sequences into a fresh store through
// a SegmentedIndex with a random append/compact interleaving driven by
// rng, and returns the segmented index over the final content.
func growSegmented(t testing.TB, opts Options, names []string, vals [][]float64, rng *rand.Rand) *SegmentedIndex {
	t.Helper()
	st := store.New()
	// Random initial prefixes for a random number of leading sequences;
	// the rest arrive later via AppendSequence.
	introduced := rng.Intn(len(names) + 1)
	done := make([]int, len(names)) // values appended so far
	for seq := 0; seq < introduced; seq++ {
		cut := rng.Intn(len(vals[seq]) + 1)
		st.AppendSequence(names[seq], vals[seq][:cut])
		done[seq] = cut
	}
	g, err := NewSegmentedIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	for {
		remaining := introduced < len(names)
		for seq := 0; seq < introduced; seq++ {
			if done[seq] < len(vals[seq]) {
				remaining = true
			}
		}
		if !remaining {
			break
		}
		switch {
		case rng.Intn(8) == 0:
			if err := g.Compact(); err != nil {
				t.Fatal(err)
			}
		case introduced < len(names) && rng.Intn(3) == 0:
			cut := rng.Intn(len(vals[introduced]) + 1)
			seq, err := g.AppendSequence(names[introduced], vals[introduced][:cut])
			if err != nil {
				t.Fatal(err)
			}
			if seq != introduced {
				t.Fatalf("AppendSequence returned seq %d, want %d", seq, introduced)
			}
			done[introduced] = cut
			introduced++
		default:
			if introduced == 0 {
				continue
			}
			seq := rng.Intn(introduced)
			left := len(vals[seq]) - done[seq]
			if left == 0 {
				continue
			}
			chunk := 1 + rng.Intn(left)
			if err := g.AppendValues(seq, vals[seq][done[seq]:done[seq]+chunk]); err != nil {
				t.Fatal(err)
			}
			done[seq] += chunk
		}
	}
	if rng.Intn(2) == 0 {
		if err := g.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSegmentedEquivalence is the heart of the segmented-index
// contract: an index grown through arbitrary append/compact
// interleavings answers every query class bit-identically to a
// from-scratch bulk build over the same final data.
func TestSegmentedEquivalence(t *testing.T) {
	opts := testOptions()
	ref := buildTestIndex(t, opts, 5, 400)
	if err := ref.Freeze(); err != nil {
		t.Fatal(err)
	}
	names, vals := fullSequences(t, ref.Store())
	q, eps := testQueryEps(t, ref)

	longQ := make(vec.Vector, 3*opts.WindowLen)
	if err := ref.Store().Window(2, 11, len(longQ), longQ, nil); err != nil {
		t.Fatal(err)
	}
	longQ = vec.Apply(longQ, 0.8, 2)

	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		g := growSegmented(t, opts, names, vals, rng)
		g.MaxFrozen = 2 + rng.Intn(3)

		if got, want := g.WindowCount(), ref.WindowCount(); got != want {
			t.Fatalf("trial %d: segmented covers %d windows, reference %d", trial, got, want)
		}

		for _, mult := range []float64{0.5, 1, 2} {
			e := eps * mult
			var rs, gs SearchStats
			want, err := ref.Search(q, e, UnboundedCosts(), &rs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := g.Search(q, e, UnboundedCosts(), &gs)
			if err != nil {
				t.Fatal(err)
			}
			if !matchesEqual(got, want) {
				t.Fatalf("trial %d eps %g: segmented range results diverge:\n%v\nvs\n%v", trial, e, got, want)
			}
			if err := gs.CheckInvariants(); err != nil {
				t.Fatalf("trial %d: segmented stats: %v", trial, err)
			}
			if err := rs.CheckInvariants(); err != nil {
				t.Fatalf("trial %d: reference stats: %v", trial, err)
			}
		}

		// Scale-bounded query (exercises segment-restricted probes) and
		// a forced scan (must match too — same verifier).
		costs := CostBounds{ScaleMin: 0.5, ScaleMax: 2, ShiftMin: math.Inf(-1), ShiftMax: math.Inf(1)}
		want, err := ref.Search(q, eps, costs, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.Search(q, eps, costs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(got, want) {
			t.Fatalf("trial %d: scale-bounded results diverge", trial)
		}
		gotScan, _, err := g.SearchPlannedContext(context.Background(), q, eps, UnboundedCosts(), engine.PathScan, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantScan, _, err := ref.SearchPlannedContext(context.Background(), q, eps, UnboundedCosts(), engine.PathScan, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(gotScan, wantScan) {
			t.Fatalf("trial %d: forced-scan results diverge", trial)
		}

		wantLong, err := ref.SearchLong(longQ, 2*eps, UnboundedCosts(), nil)
		if err != nil {
			t.Fatal(err)
		}
		gotLong, err := g.SearchLong(longQ, 2*eps, UnboundedCosts(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(gotLong, wantLong) {
			t.Fatalf("trial %d: long-query results diverge:\n%v\nvs\n%v", trial, gotLong, wantLong)
		}

		var ns SearchStats
		wantNN, err := ref.NearestNeighbors(q, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotNN, err := g.NearestNeighborsWithCostsContext(context.Background(), q, 5, UnboundedCosts(), &ns)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(gotNN, wantNN) {
			t.Fatalf("trial %d: k-NN results diverge:\n%v\nvs\n%v", trial, gotNN, wantNN)
		}

		// The Explain must carry one plan per probed segment.
		_, ex, err := g.SearchPlannedContext(context.Background(), q, eps, UnboundedCosts(), engine.PathAuto, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(ex.Segments) == 0 {
			t.Fatalf("trial %d: segmented Explain has no segment plans", trial)
		}
		var buf bytes.Buffer
		if err := ex.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSegmentedConcurrent drives appends, background compaction, and
// queries from many goroutines at once (the -race harness), then
// quiesces and asserts bit-identity against a from-scratch build.
func TestSegmentedConcurrent(t *testing.T) {
	opts := testOptions()
	ref := buildTestIndex(t, opts, 6, 300)
	names, vals := fullSequences(t, ref.Store())
	q, eps := testQueryEps(t, ref)

	st := store.New()
	// Start with short prefixes of every sequence so writers only ever
	// extend their own sequences (no cross-writer interleaving).
	prefix := 40
	done := make([]int, len(names))
	for seq := range names {
		st.AppendSequence(names[seq], vals[seq][:prefix])
		done[seq] = prefix
	}
	g, err := NewSegmentedIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.CompactThreshold = 64
	g.MaxFrozen = 3
	g.StartCompactor()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// One writer per pair of sequences.
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				idle := true
				for seq := w * 2; seq < w*2+2 && seq < len(names); seq++ {
					left := len(vals[seq]) - done[seq]
					if left == 0 {
						continue
					}
					idle = false
					chunk := 1 + rng.Intn(min(left, 37))
					if err := g.AppendValues(seq, vals[seq][done[seq]:done[seq]+chunk]); err != nil {
						t.Error(err)
						return
					}
					done[seq] += chunk
				}
				if idle {
					return
				}
			}
		}()
	}
	// Query hammerers: results are not compared mid-flight (the data is
	// in motion) but must be error-free with sane stats.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var s SearchStats
				if _, err := g.Search(q, eps, UnboundedCosts(), &s); err != nil {
					t.Error(err)
					return
				}
				if err := s.CheckInvariants(); err != nil {
					t.Error(err)
					return
				}
				if _, err := g.NearestNeighbors(q, 3, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Wait for writers, then stop the readers.
	writersDone := make(chan struct{})
	go func() {
		// The first 3 Adds are writers; simplest is a second WaitGroup,
		// but polling done[] is race-free only under quiescence — so
		// watch the counts through the segmented index itself.
		for {
			if g.WindowCount() == ref.WindowCount() {
				close(writersDone)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	select {
	case <-writersDone:
	case <-time.After(30 * time.Second):
		t.Error("writers did not finish in 30s")
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: flush the delta and compare bit-identically.
	if err := g.Compact(); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Search(q, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Search(q, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(got, want) {
		t.Fatalf("post-quiesce results diverge:\n%v\nvs\n%v", got, want)
	}
	b := g.Backlog()
	if b.Compactions == 0 {
		t.Fatal("background compactor never ran")
	}
	if b.DeltaWindows != 0 {
		t.Fatalf("delta not empty after final compact: %d", b.DeltaWindows)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedCompactionLifecycle exercises thresholds, merges, the
// fault-injection hook, and the Backlog gauges.
func TestSegmentedCompactionLifecycle(t *testing.T) {
	opts := testOptions()
	ref := buildTestIndex(t, opts, 4, 200)
	names, vals := fullSequences(t, ref.Store())

	st := store.New()
	for seq := range names {
		st.AppendSequence(names[seq], vals[seq][:50])
	}
	g, err := NewSegmentedIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.MaxFrozen = 2

	// Grow, compacting after each sequence: with MaxFrozen=2 this must
	// trigger merges, ending with a bounded frozen list.
	for seq := range names {
		if err := g.AppendValues(seq, vals[seq][50:]); err != nil {
			t.Fatal(err)
		}
		if err := g.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	b := g.Backlog()
	if b.Frozen > g.MaxFrozen {
		t.Fatalf("frozen segments %d exceed MaxFrozen %d after merges", b.Frozen, g.MaxFrozen)
	}
	if b.DeltaWindows != 0 {
		t.Fatalf("delta not empty after compactions: %d", b.DeltaWindows)
	}
	if b.Compactions == 0 || b.CompactPauseMax == 0 {
		t.Fatalf("compaction gauges not recorded: %+v", b)
	}
	if got, want := b.FrozenWindows, ref.WindowCount(); got != want {
		t.Fatalf("frozen windows %d, want %d", got, want)
	}

	// A failing hook aborts the compaction, records the error, and
	// leaves the delta intact (still served exactly).
	if err := g.AppendValues(0, []float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	before := g.Backlog().DeltaWindows
	if before == 0 {
		t.Fatal("expected delta windows before faulted compaction")
	}
	g.compactHook = func() error { return fmt.Errorf("injected fault") }
	if err := g.Compact(); err == nil {
		t.Fatal("faulted compaction did not error")
	}
	b = g.Backlog()
	if b.LastCompactErr == "" {
		t.Fatal("fault not recorded in Backlog")
	}
	if b.DeltaWindows != before {
		t.Fatalf("faulted compaction changed the delta: %d -> %d", before, b.DeltaWindows)
	}
	g.compactHook = nil
	if err := g.Compact(); err != nil {
		t.Fatal(err)
	}
	if b = g.Backlog(); b.LastCompactErr != "" || b.DeltaWindows != 0 {
		t.Fatalf("recovery compaction left state: %+v", b)
	}
}

// TestSegmentedTieredRetention pins the size-tiered compaction policy:
// under a long run of small folds the frozen list must stay
// logarithmic in the ingested volume WITHOUT the MaxFrozen full-merge
// backstop ever firing, partial merges must only ever touch an
// adjacent run (checked structurally via the per-sequence contiguous
// coverage the segment artifact validates), and the results must stay
// bit-identical to a from-scratch build.
func TestSegmentedTieredRetention(t *testing.T) {
	opts := testOptions()
	ref := buildTestIndex(t, opts, 4, 400)
	if err := ref.Freeze(); err != nil {
		t.Fatal(err)
	}
	names, vals := fullSequences(t, ref.Store())
	q, eps := testQueryEps(t, ref)

	st := store.New()
	for seq := range names {
		st.AppendSequence(names[seq], vals[seq][:60])
	}
	g, err := NewSegmentedIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// Push the backstop out of the way: the tiered ladder alone must
	// keep the list small.
	g.MaxFrozen = 1024

	// Feed the rest in small per-round chunks, compacting every round —
	// the worst case for a flat policy (one new segment per round).
	const chunk = 8
	rounds, maxFrozen := 0, 0
	for pos := 60; pos < 400; pos += chunk {
		hi := pos + chunk
		if hi > 400 {
			hi = 400
		}
		for seq := range names {
			if err := g.AppendValues(seq, vals[seq][pos:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Compact(); err != nil {
			t.Fatal(err)
		}
		rounds++
		if f := g.Backlog().Frozen; f > maxFrozen {
			maxFrozen = f
		}
	}
	b := g.Backlog()
	if b.Compactions < rounds {
		t.Fatalf("only %d compactions over %d rounds", b.Compactions, rounds)
	}
	if b.DeltaWindows != 0 {
		t.Fatalf("delta not drained: %d windows", b.DeltaWindows)
	}
	// Ratio-2 tiering admits at most ~log2(total/chunkWindows)+2
	// segments; 42 rounds under a flat policy would hold 40+.  The
	// ladder must both form (partial merges, not a full merge every
	// round) and stay logarithmic.
	if maxFrozen > 12 {
		t.Fatalf("tiered retention let the ladder grow to %d segments over %d rounds", maxFrozen, rounds)
	}
	if maxFrozen < 3 {
		t.Fatalf("no ladder formed (max %d segments): merges are rewriting the world", maxFrozen)
	}
	if got, want := g.WindowCount(), ref.WindowCount(); got != want {
		t.Fatalf("segmented covers %d windows, reference %d", got, want)
	}

	want, err := ref.Search(q, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Search(q, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(got, want) {
		t.Fatalf("tiered index diverges from reference:\n%v\nvs\n%v", got, want)
	}

	// The artifact round trip re-validates that every partial merge
	// preserved contiguous per-sequence coverage (LoadSegments rejects
	// gaps or overlaps), and the loaded copy serves identically.
	var buf bytes.Buffer
	if err := g.WriteSegments(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadSegments(bytes.NewReader(buf.Bytes()), st)
	if err != nil {
		t.Fatalf("tiered layout failed artifact validation: %v", err)
	}
	defer g2.Close()
	got2, err := g2.Search(q, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(got2, want) {
		t.Fatalf("reloaded tiered index diverges:\n%v\nvs\n%v", got2, want)
	}
}

// TestSegmentedMergeRunPolicy unit-tests the decide step directly:
// the run must be a suffix, absorb equal-size neighbours (binary
// counter), stop at a much larger older segment, and fall back to a
// full merge when MaxFrozen would be exceeded.
func TestSegmentedMergeRunPolicy(t *testing.T) {
	g := &SegmentedIndex{MergeRatio: 2, MaxFrozen: 8}
	segs := func(counts ...int) []*frozenSeg {
		out := make([]*frozenSeg, len(counts))
		for i, c := range counts {
			out[i] = &frozenSeg{count: c}
		}
		return out
	}
	cases := []struct {
		frozen []*frozenSeg
		cut    int
		want   int
	}{
		{segs(), 10, 0},             // nothing frozen: pure fold
		{segs(1000), 10, 1},         // big old segment untouched
		{segs(1000, 10), 10, 1},     // equal neighbour absorbed
		{segs(1000, 20, 10), 10, 1}, // cascade: 10+10 absorbs 20
		{segs(1000, 50, 10), 10, 2}, // 50 > 2*(10+10): cascade stops
		{segs(8, 4, 2), 1, 0},       // counter roll-up reaches the head
		{segs(1000, 500), 0, 2},     // empty delta: nothing to fold
		{segs(40, 20, 10), 1000, 0}, // huge fold swallows everything
	}
	for i, c := range cases {
		g.frozen = c.frozen
		if got := g.mergeRunLocked(c.cut); got != c.want {
			t.Errorf("case %d: mergeRun(cut=%d over %d segments) = %d, want %d",
				i, c.cut, len(c.frozen), got, c.want)
		}
	}

	// The MaxFrozen backstop: a fold that would leave 4 segments with
	// MaxFrozen=3 must merge everything instead.
	g = &SegmentedIndex{MergeRatio: 2, MaxFrozen: 3}
	g.frozen = segs(1000, 100, 10)
	if got := g.mergeRunLocked(1); got != 0 {
		t.Errorf("backstop: got run start %d, want 0 (full merge)", got)
	}

	// MergeRatio=0 disables tiering entirely (ssgen's explicit chunks).
	g = &SegmentedIndex{MergeRatio: 0, MaxFrozen: 10}
	g.frozen = segs(10, 10, 10)
	if got := g.mergeRunLocked(10); got != 3 {
		t.Errorf("tiering disabled: got run start %d, want 3 (pure fold)", got)
	}
}

// TestWriteLoadSegments round-trips a multi-segment artifact and
// verifies the loaded index serves identically — including when the
// store has grown past the artifact (the WAL-replay restart shape).
func TestWriteLoadSegments(t *testing.T) {
	opts := testOptions()
	ref := buildTestIndex(t, opts, 4, 250)
	names, vals := fullSequences(t, ref.Store())
	q, eps := testQueryEps(t, ref)

	st := store.New()
	for seq := range names {
		st.AppendSequence(names[seq], vals[seq][:150])
	}
	g, err := NewSegmentedIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for seq := range names {
		if err := g.AppendValues(seq, vals[seq][150:200]); err != nil {
			t.Fatal(err)
		}
	}

	// Uncompacted delta refuses to serialize.
	var buf bytes.Buffer
	if err := g.WriteSegments(&buf); err == nil {
		t.Fatal("WriteSegments accepted a dirty delta")
	}
	if err := g.Compact(); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := g.WriteSegments(&buf); err != nil {
		t.Fatal(err)
	}
	if g.Backlog().Frozen < 2 {
		t.Fatalf("want a multi-segment artifact, got %d segments", g.Backlog().Frozen)
	}

	// Reopen against the same store, then grow both the original and
	// the loaded copy to the full data and compare against ref.
	g2, err := LoadSegments(bytes.NewReader(buf.Bytes()), st)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if got, want := g2.WindowCount(), g.WindowCount(); got != want {
		t.Fatalf("loaded index covers %d windows, original %d", got, want)
	}
	for seq := range names {
		if err := g2.AppendValues(seq, vals[seq][200:]); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.Search(q, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g2.Search(q, eps, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(got, want) {
		t.Fatalf("loaded+grown segmented index diverges:\n%v\nvs\n%v", got, want)
	}

	// Loading against a SHORTER store (artifact covers windows the
	// store lacks) must be rejected, not served.
	short := store.New()
	for seq := range names {
		short.AppendSequence(names[seq], vals[seq][:100])
	}
	if _, err := LoadSegments(bytes.NewReader(buf.Bytes()), short); err == nil {
		t.Fatal("artifact loaded against a store missing its windows")
	}
}
