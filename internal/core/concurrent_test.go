package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// TestConcurrentIndexMixedWorkload interleaves searches with dynamic
// insertion, extension and removal under -race.
func TestConcurrentIndexMixedWorkload(t *testing.T) {
	opts := testOptions()
	opts.WindowLen = 16
	st := store.New()
	base := make([]float64, 120)
	for i := range base {
		base[i] = 20 + 5*math.Sin(float64(i)/4)
	}
	st.AppendSequence("base", base)
	plain, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Build(); err != nil {
		t.Fatal(err)
	}
	ix := NewConcurrentIndex(plain)

	q := make(vec.Vector, 16)
	copy(q, base[10:26])

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Readers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := ix.Search(q, 0.5, UnboundedCosts(), nil); err != nil {
					errs <- err
					return
				}
				if _, err := ix.NearestNeighbors(q, 3, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Writer: lists new tickers and extends the latest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			seq, err := ix.AppendAndIndex(fmt.Sprintf("T%02d", i), seqVals(i*7, 30))
			if err != nil {
				errs <- err
				return
			}
			if err := ix.ExtendAndIndex(seq, seqVals(i*7+30, 10)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final state is consistent and searchable.
	if ix.WindowCount() == 0 {
		t.Fatal("index emptied")
	}
	res, err := ix.Search(q, 1e-6, UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range res {
		if m.Name == "base" && m.Start == 10 {
			found = true
		}
	}
	if !found {
		t.Fatal("base window lost during concurrent mutation")
	}
	// Delist everything that was added.
	for seq := 1; seq <= 10; seq++ {
		if err := ix.UnindexSequence(seq); err != nil {
			t.Fatal(err)
		}
	}
}
