package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"scaleshift/internal/engine"
	"scaleshift/internal/vec"
)

// forcedSearch runs one forced-path query, failing the test on error.
func forcedSearch(t *testing.T, ix *Index, q vec.Vector, eps float64, costs CostBounds, force engine.PathKind) []Match {
	t.Helper()
	out, ex, err := ix.SearchPlanned(q, eps, costs, force, nil, nil)
	if err != nil {
		t.Fatalf("forced %v search: %v", force, err)
	}
	if ex.Chosen != force || !ex.Forced {
		t.Fatalf("forced %v but explain says chosen=%v forced=%v", force, ex.Chosen, ex.Forced)
	}
	return out
}

// TestCrossPathEquivalence is the engine's core invariant: for
// randomized stores and queries, every available access path — and the
// planner's automatic choice — returns the identical sorted Match set,
// bit for bit (distances, scales, and shifts included).
func TestCrossPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opts := testOptions()
	for trial := 0; trial < 3; trial++ {
		companies := 3 + rng.Intn(5)
		days := opts.WindowLen + rng.Intn(120)
		ix := buildTestIndex(t, opts, companies, days)
		st := ix.Store()

		for qi := 0; qi < 6; qi++ {
			// Half the queries are disguised database windows (so
			// matches exist), half are fresh noise.
			q := make(vec.Vector, opts.WindowLen)
			if qi%2 == 0 {
				seq := rng.Intn(st.NumSequences())
				start := rng.Intn(st.SequenceLen(seq) - opts.WindowLen + 1)
				if err := st.Window(seq, start, opts.WindowLen, q, nil); err != nil {
					t.Fatal(err)
				}
				q = vec.Apply(q, 0.5+rng.Float64()*3, rng.NormFloat64()*10)
			} else {
				for i := range q {
					q[i] = rng.NormFloat64() * 50
				}
			}
			costs := UnboundedCosts()
			if qi%3 == 0 {
				costs.ScaleMin, costs.ScaleMax = 0.1, 10
			}
			for _, eps := range []float64{0, 1, 25, 1e4} {
				rtreeOut := forcedSearch(t, ix, q, eps, costs, engine.PathRTree)
				scanOut := forcedSearch(t, ix, q, eps, costs, engine.PathScan)
				if !reflect.DeepEqual(rtreeOut, scanOut) {
					t.Fatalf("trial %d query %d eps %g: rtree %v != scan %v", trial, qi, eps, rtreeOut, scanOut)
				}
				autoOut, ex, err := ix.SearchPlanned(q, eps, costs, engine.PathAuto, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				if ex.Forced || (ex.Chosen != engine.PathRTree && ex.Chosen != engine.PathScan) {
					t.Fatalf("auto plan chose %v forced=%v", ex.Chosen, ex.Forced)
				}
				if !reflect.DeepEqual(autoOut, rtreeOut) {
					t.Fatalf("trial %d query %d eps %g: auto (%v) differs from forced paths", trial, qi, eps, ex.Chosen)
				}
			}
		}
	}
}

// TestCrossPathEquivalenceTrail is the same invariant for a sub-trail
// MBR index, where the available probes are trail and scan.
func TestCrossPathEquivalenceTrail(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	opts := testOptions()
	opts.SubtrailLen = 4
	ix := buildTestIndex(t, opts, 5, 140)
	st := ix.Store()

	for qi := 0; qi < 6; qi++ {
		q := make(vec.Vector, opts.WindowLen)
		seq := rng.Intn(st.NumSequences())
		start := rng.Intn(st.SequenceLen(seq) - opts.WindowLen + 1)
		if err := st.Window(seq, start, opts.WindowLen, q, nil); err != nil {
			t.Fatal(err)
		}
		q = vec.Apply(q, 1+rng.Float64(), rng.NormFloat64())
		for _, eps := range []float64{0, 5, 1e3} {
			trailOut := forcedSearch(t, ix, q, eps, UnboundedCosts(), engine.PathTrail)
			scanOut := forcedSearch(t, ix, q, eps, UnboundedCosts(), engine.PathScan)
			if !reflect.DeepEqual(trailOut, scanOut) {
				t.Fatalf("query %d eps %g: trail %v != scan %v", qi, eps, trailOut, scanOut)
			}
			autoOut, ex, err := ix.SearchPlanned(q, eps, UnboundedCosts(), engine.PathAuto, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Chosen == engine.PathRTree {
				t.Fatal("auto plan chose the point-entry path on a trail index")
			}
			if !reflect.DeepEqual(autoOut, trailOut) {
				t.Fatalf("query %d eps %g: auto (%v) differs from forced paths", qi, eps, ex.Chosen)
			}
		}
	}

	// The point-entry path must refuse to serve a trail index.
	if _, _, err := ix.SearchPlanned(make(vec.Vector, opts.WindowLen), 1, UnboundedCosts(), engine.PathRTree, nil, nil); err == nil {
		t.Error("forcing rtree on a trail index did not error")
	}
}

// TestCrossPathEquivalenceLong checks the multipiece executor: long
// queries return identical matches whichever path serves the pieces.
func TestCrossPathEquivalenceLong(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 4, 150)
	st := ix.Store()
	n := 2 * opts.WindowLen

	q := make(vec.Vector, n)
	if err := st.Window(1, 3, n, q, nil); err != nil {
		t.Fatal(err)
	}
	q = vec.Apply(q, 2, -5)
	for _, eps := range []float64{1, 50, 1e4} {
		rtreeOut, exR, err := ix.SearchLongPlanned(q, eps, UnboundedCosts(), engine.PathRTree, nil)
		if err != nil {
			t.Fatal(err)
		}
		if exR.Pieces != 2 {
			t.Errorf("explain pieces = %d, want 2", exR.Pieces)
		}
		scanOut, _, err := ix.SearchLongPlanned(q, eps, UnboundedCosts(), engine.PathScan, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rtreeOut, scanOut) {
			t.Fatalf("eps %g: long rtree %v != scan %v", eps, rtreeOut, scanOut)
		}
		autoOut, err := ix.SearchLong(q, eps, UnboundedCosts(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(autoOut, rtreeOut) {
			t.Fatalf("eps %g: auto long result differs", eps)
		}
	}
}

// TestPlannerRegimes checks the cost model picks the expected winner
// in the two unambiguous regimes: a selective probe on a sizeable
// store (tree wins) and a degenerate everything-matches probe (scan
// wins, since the tree would read every page and then verify every
// window anyway).
func TestPlannerRegimes(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 8, 200)
	q := make(vec.Vector, opts.WindowLen)
	if err := ix.Store().Window(0, 10, opts.WindowLen, q, nil); err != nil {
		t.Fatal(err)
	}

	_, exTiny, err := ix.SearchPlanned(q, 1e-3, UnboundedCosts(), engine.PathAuto, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exTiny.Chosen != engine.PathRTree {
		t.Errorf("tiny eps chose %v, want rtree", exTiny.Chosen)
	}
	_, exHuge, err := ix.SearchPlanned(q, 1e9, UnboundedCosts(), engine.PathAuto, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exHuge.Chosen != engine.PathScan {
		t.Errorf("huge eps chose %v, want scan", exHuge.Chosen)
	}
	if exTiny.PlanTime < 0 || exTiny.ProbeTime < 0 || exTiny.VerifyTime < 0 {
		t.Errorf("negative stage timings: %+v", exTiny)
	}
}

// TestPlannerEstimatesSaneOnIndex exercises the satellite fuzz
// properties against the real index paths: estimates are non-negative
// and monotone in eps, and the chosen path is always available.
func TestPlannerEstimatesSaneOnIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	opts := testOptions()
	for _, subtrail := range []int{0, 4} {
		opts.SubtrailLen = subtrail
		ix := buildTestIndex(t, opts, 4, 120)
		q := make(vec.Vector, opts.WindowLen)
		for i := range q {
			q[i] = rng.NormFloat64() * 20
		}
		prev := -1.0
		for _, eps := range []float64{0, 1e-3, 0.1, 1, 10, 1e3, 1e6} {
			_, ex, err := ix.SearchPlanned(q, eps, UnboundedCosts(), engine.PathAuto, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if subtrail >= 2 && ex.Chosen == engine.PathRTree {
				t.Fatal("chose rtree on a trail index")
			}
			if subtrail < 2 && ex.Chosen == engine.PathTrail {
				t.Fatal("chose trail on a point index")
			}
			var chosenUnits float64
			for _, p := range ex.Plans {
				if p.Available && (p.Cost.Units < 0 || p.Cost.Candidates < 0 || math.IsNaN(p.Cost.Units)) {
					t.Fatalf("eps %g: bad estimate %+v", eps, p)
				}
				if p.Path == ex.Chosen {
					chosenUnits = p.Cost.Units
				}
			}
			_ = chosenUnits
			if ex.EstCandidates < prev && ex.Chosen != engine.PathScan {
				// Index-probe candidate estimates grow with eps; the
				// scan's is constant, so only compare within probes.
				t.Fatalf("est candidates shrank as eps grew: %v -> %v", prev, ex.EstCandidates)
			}
			if ex.Chosen != engine.PathScan {
				prev = ex.EstCandidates
			}
		}
	}
}

// zeroTimes clears the wall-clock fields so stats comparisons are
// deterministic.
func zeroTimes(s *SearchStats) {
	s.PlanTime, s.ProbeTime, s.VerifyTime = 0, 0, 0
}

// TestSearchBatchPlannedMixedEps is the SearchBatch satellite: one
// batch holding a tiny-ε and a huge-ε query must plan per query —
// choosing different paths within a single call — and its accumulated
// stats must equal the sequential per-query totals exactly.
func TestSearchBatchPlannedMixedEps(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 8, 200)
	st := ix.Store()

	q1 := make(vec.Vector, opts.WindowLen)
	if err := st.Window(2, 5, opts.WindowLen, q1, nil); err != nil {
		t.Fatal(err)
	}
	q2 := make(vec.Vector, opts.WindowLen)
	if err := st.Window(5, 40, opts.WindowLen, q2, nil); err != nil {
		t.Fatal(err)
	}
	batch := []BatchQuery{
		{Q: q1, Eps: 1e-3, Costs: UnboundedCosts()},
		{Q: q2, Eps: 1e9, Costs: UnboundedCosts()},
		{Q: q1, Eps: 1e9, Costs: UnboundedCosts()},
	}

	var batchStats SearchStats
	results, explains, err := ix.SearchBatchPlanned(batch, engine.PathAuto, 2, &batchStats)
	if err != nil {
		t.Fatal(err)
	}
	if explains[0].Chosen != engine.PathRTree {
		t.Errorf("tiny-eps query planned %v, want rtree", explains[0].Chosen)
	}
	if explains[1].Chosen != engine.PathScan || explains[2].Chosen != engine.PathScan {
		t.Errorf("huge-eps queries planned %v and %v, want scan", explains[1].Chosen, explains[2].Chosen)
	}
	if batchStats.PathProbes[engine.PathRTree] != 1 || batchStats.PathProbes[engine.PathScan] != 2 {
		t.Errorf("PathProbes = %v, want 1 rtree + 2 scan", batchStats.PathProbes)
	}

	// Exact accounting: the batch totals must equal running the same
	// queries one at a time (timings aside).
	var serialStats SearchStats
	for i, bq := range batch {
		out, _, err := ix.SearchPlanned(bq.Q, bq.Eps, bq.Costs, engine.PathAuto, nil, &serialStats)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out, results[i]) {
			t.Errorf("batch result %d differs from serial", i)
		}
	}
	zeroTimes(&batchStats)
	zeroTimes(&serialStats)
	if !reflect.DeepEqual(batchStats, serialStats) {
		t.Errorf("batch stats %+v != serial stats %+v", batchStats, serialStats)
	}
}

// TestSearchBatchStillPlansPerQuery pins the legacy wrapper: even the
// fixed-ε SearchBatch routes each query through the planner (one probe
// counted per query).
func TestSearchBatchStillPlansPerQuery(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 4, 100)
	queries := make([]vec.Vector, 5)
	rng := rand.New(rand.NewSource(5))
	for i := range queries {
		q := make(vec.Vector, opts.WindowLen)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		queries[i] = q
	}
	var stats SearchStats
	if _, err := ix.SearchBatch(queries, 0.5, UnboundedCosts(), 0, &stats); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range stats.PathProbes {
		total += c
	}
	if total != len(queries) {
		t.Errorf("PathProbes total %d, want one probe per query (%d)", total, len(queries))
	}
}

// TestStatsAddIncludesEngineFields checks the new SearchStats fields
// accumulate.
func TestStatsAddIncludesEngineFields(t *testing.T) {
	a := SearchStats{PlanTime: 1, ProbeTime: 2, VerifyTime: 3}
	a.PathProbes[engine.PathScan] = 2
	b := SearchStats{PlanTime: 10, ProbeTime: 20, VerifyTime: 30}
	b.PathProbes[engine.PathScan] = 1
	b.PathProbes[engine.PathRTree] = 4
	a.Add(b)
	if a.PlanTime != 11 || a.ProbeTime != 22 || a.VerifyTime != 33 {
		t.Errorf("timings did not accumulate: %+v", a)
	}
	if a.PathProbes[engine.PathScan] != 3 || a.PathProbes[engine.PathRTree] != 4 {
		t.Errorf("PathProbes did not accumulate: %v", a.PathProbes)
	}
}
