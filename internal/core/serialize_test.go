package core

import (
	"bytes"
	"strings"
	"testing"

	"scaleshift/internal/query"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

func TestIndexSerializationRoundTrip(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 10, 140)
	st := ix.Store()

	// Persist store and index.
	var stBuf, ixBuf bytes.Buffer
	if err := st.WriteBinary(&stBuf); err != nil {
		t.Fatal(err)
	}
	if err := ix.WriteBinary(&ixBuf); err != nil {
		t.Fatal(err)
	}

	// Reload both.
	st2, err := store.ReadBinary(&stBuf)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := LoadIndex(&ixBuf, st2)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.WindowCount() != ix.WindowCount() {
		t.Fatalf("window count %d, want %d", ix2.WindowCount(), ix.WindowCount())
	}
	if ix2.IndexPageCount() != ix.IndexPageCount() {
		t.Fatalf("page count %d, want %d", ix2.IndexPageCount(), ix.IndexPageCount())
	}

	// Identical search results on identical queries.
	scale, err := query.SENormScale(st, opts.WindowLen, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := make(vec.Vector, opts.WindowLen)
	for _, src := range []struct{ seq, start int }{{2, 10}, {8, 77}} {
		if err := st.Window(src.seq, src.start, opts.WindowLen, w, nil); err != nil {
			t.Fatal(err)
		}
		q := vec.Apply(w, 1.3, -2)
		for _, eps := range []float64{0, 0.1 * scale} {
			a, err := ix.Search(q, eps, UnboundedCosts(), nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ix2.Search(q, eps, UnboundedCosts(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("eps=%v: %d vs %d results", eps, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("eps=%v rank %d differs", eps, i)
				}
			}
		}
	}

	// The reloaded index remains dynamic.
	if _, err := ix2.AppendAndIndex("NEW", make([]float64, 64)); err != nil {
		t.Fatal(err)
	}
}

func TestLoadIndexRejectsCorruptInput(t *testing.T) {
	opts := testOptions()
	ix := buildTestIndex(t, opts, 4, 60)
	st := ix.Store()

	var buf bytes.Buffer
	if err := ix.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte("XXXXXX"), good[6:]...)
	if _, err := LoadIndex(bytes.NewReader(bad), st); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncation at several points.
	for _, cut := range []int{3, 20, len(good) / 2, len(good) - 5} {
		if _, err := LoadIndex(bytes.NewReader(good[:cut]), st); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Mismatched store: fewer sequences than the index covers.
	tiny := store.New()
	tiny.AppendSequence("only", make([]float64, 80))
	if _, err := LoadIndex(bytes.NewReader(good), tiny); err == nil {
		t.Error("mismatched store accepted")
	}
	// Garbage body.
	if _, err := LoadIndex(strings.NewReader("SSIDX\x01garbagegarbagegarbage"), st); err == nil {
		t.Error("garbage body accepted")
	}
}

func TestStoreBinaryRoundTripBitExact(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 5, 90)
	st := ix.Store()
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := store.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.NumSequences() != st.NumSequences() || st2.TotalValues() != st.TotalValues() {
		t.Fatalf("shape mismatch")
	}
	a := make(vec.Vector, 90)
	b := make(vec.Vector, 90)
	for seq := 0; seq < st.NumSequences(); seq++ {
		if st2.SequenceName(seq) != st.SequenceName(seq) {
			t.Fatalf("name mismatch at %d", seq)
		}
		if err := st.Window(seq, 0, 90, a, nil); err != nil {
			t.Fatal(err)
		}
		if err := st2.Window(seq, 0, 90, b, nil); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("bit-exactness lost at seq %d idx %d", seq, i)
			}
		}
	}
}
