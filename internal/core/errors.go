package core

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"

	"scaleshift/internal/vec"
)

// ErrInvalidQuery tags every query rejected at the API boundary —
// NaN/Inf samples, negative or NaN epsilon, wrong length — so callers
// can distinguish caller bugs (errors.Is(err, ErrInvalidQuery)) from
// index or I/O failures.  Rejecting these up front matters for more
// than hygiene: a NaN sample would poison the prefix-sum verifier's
// certified bounds and silently drop true matches.
var ErrInvalidQuery = errors.New("invalid query")

// validateQuery rejects query vectors the search pipeline cannot
// answer correctly.  minLen is the smallest acceptable length (the
// window length for range queries; SearchLong accepts longer).
func validateQuery(q vec.Vector, eps float64) error {
	if math.IsNaN(eps) || eps < 0 {
		return fmt.Errorf("core: %w: epsilon %v (want a finite value >= 0)", ErrInvalidQuery, eps)
	}
	return validateQueryValues(q)
}

// validateQueryValues checks the samples alone (used by NN search,
// which has no epsilon).
func validateQueryValues(q vec.Vector) error {
	for i, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: %w: sample %d is %v", ErrInvalidQuery, i, v)
		}
	}
	return nil
}

// WorkerPanicError reports a panic recovered inside one of the
// index's worker pools (parallel build, parallel verification, batch
// search), converted to an error so one poisoned window cannot take
// down the process.  Seq/Start locate the offending window (-1 when
// unknown), Value is the recovered panic value, and Stack the
// worker's stack at the panic site.
type WorkerPanicError struct {
	Op         string
	Seq, Start int
	Value      any
	Stack      []byte
}

func (e *WorkerPanicError) Error() string {
	if e.Seq < 0 {
		return fmt.Sprintf("core: panic in %s worker: %v", e.Op, e.Value)
	}
	return fmt.Sprintf("core: panic in %s worker at window (%d, %d): %v", e.Op, e.Seq, e.Start, e.Value)
}

// recoverWorkerPanic converts a panic in a worker goroutine into a
// *WorkerPanicError stored at *dst.  It must be the deferred function
// itself (recover only works directly inside a deferred call); seq
// and start are pointers because defer evaluates arguments
// immediately, and the worker advances them as it claims work.  A
// worker that already recorded an error keeps it — the first failure
// wins.
func recoverWorkerPanic(op string, seq, start *int, dst *error) {
	v := recover()
	if v == nil || *dst != nil {
		return
	}
	s, t := -1, -1
	if seq != nil {
		s = *seq
	}
	if start != nil {
		t = *start
	}
	*dst = &WorkerPanicError{Op: op, Seq: s, Start: t, Value: v, Stack: debug.Stack()}
}

// BatchStatus reports how far one query of a batch got when the batch
// returned — the unit of partial-progress accounting under a
// deadline.
type BatchStatus int

const (
	// BatchComplete: the query ran to completion; its result slot is
	// the full, exact answer.
	BatchComplete BatchStatus = iota
	// BatchIncomplete: the batch's context was cancelled before this
	// query finished; its result slot is nil and must not be treated
	// as "no matches".
	BatchIncomplete
)

// String names the status for logs.
func (s BatchStatus) String() string {
	switch s {
	case BatchComplete:
		return "complete"
	case BatchIncomplete:
		return "incomplete"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}
