package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"scaleshift/internal/dft"
	"scaleshift/internal/engine"
	"scaleshift/internal/geom"
	"scaleshift/internal/obs"
	"scaleshift/internal/resilience"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// SegmentedIndex is the streaming-ingest variant of Index: an ordered
// set of immutable frozen segments plus a mutable delta, maintained
// LSM-style.  AppendValues extends a sequence in place, runs the
// sliding DFT forward from the last extraction position (no recompute
// of old windows), and publishes a fresh manifest generation through
// an RCU cell — queries pin a manifest and never block on ingest or
// compaction.  A background compactor folds the delta into frozen
// bulk-loaded segments and merges segments when they pile up.
//
// Results are bit-identical to a from-scratch Index over the same
// final data: extraction follows the same checkpoint discipline, every
// segment feeds the same exact verifier, and the verifier reads
// through the manifest's pinned store snapshot.
//
// Writer methods (AppendValues, AppendSequence, Compact) are
// mutually safe against queries but serialize against each other
// internally; queries may run from any number of goroutines.
type SegmentedIndex struct {
	opts Options
	st   *store.Store
	fmap *dft.FeatureMap
	// base retains the wrapped Index (and with it any mmap backing the
	// initial frozen segment's arena) until Close.
	base *Index

	// CompactThreshold is the delta size at which the background
	// compactor is kicked (default 4096).
	//
	// MergeRatio drives size-tiered retention: when the delta folds,
	// adjacent frozen segments are absorbed into the new segment from
	// the newest backward while each is at most MergeRatio times the
	// windows already in the merge run (default 2 — the binary-counter
	// schedule, whose total rewrite work is amortized O(log N) per
	// window).  Zero disables tiering (segments only merge through the
	// MaxFrozen backstop; ssgen uses this to keep explicit chunks).
	//
	// MaxFrozen is the backstop bound on the frozen segment count: a
	// compaction that would exceed it merges everything into one
	// segment (default 8; zero means unbounded).
	//
	// Set all three before StartCompactor.
	CompactThreshold int
	MergeRatio       float64
	MaxFrozen        int

	cell *resilience.Cell[*manifest]

	// mu guards the writer-side state below; compactMu serializes
	// compactions so the slow build phase runs outside mu.
	mu        sync.Mutex
	compactMu sync.Mutex

	frozen  []*frozenSeg
	delta   []deltaEntry
	sliders map[int]*seqSlider
	next    []int // per-sequence next window start to extract
	maxAbs  float64
	gen     int64

	// compactHook, when set (tests), runs between a compaction's
	// decide and build phases; a non-nil error aborts the compaction.
	compactHook func() error

	compactions int
	pauses      []time.Duration
	lastErr     error

	compactorOn bool
	kick        chan struct{}
	done        chan struct{}
	closeOnce   sync.Once
	closeErr    error
	wg          sync.WaitGroup
}

// seqSlider is one sequence's incremental extraction state: the
// sliding transformer and the window start it is currently positioned
// on.
type seqSlider struct {
	sl  *dft.SlidingTransformer
	pos int
}

// NewSegmentedIndex builds a segmented index over st: the current
// contents become the initial frozen segment (bulk-loaded in
// parallel), and subsequent AppendValues/AppendSequence calls grow the
// delta.  Trail mode is not supported — segments store per-window
// point entries.
func NewSegmentedIndex(st *store.Store, opts Options) (*SegmentedIndex, error) {
	if opts.SubtrailLen >= 2 {
		return nil, fmt.Errorf("core: segmented index requires per-window point entries (SubtrailLen < 2)")
	}
	ix, err := NewIndex(st, opts)
	if err != nil {
		return nil, err
	}
	if err := ix.BuildBulkParallel(0); err != nil {
		return nil, err
	}
	return newSegmentedFrom(ix)
}

// NewSegmentedFromIndex wraps an already-built (or artifact-loaded)
// Index as the initial frozen segment of a segmented index.  Windows
// the store gained after the index was built land in the delta, so
// the segmented view covers the store completely from the start.
func NewSegmentedFromIndex(ix *Index) (*SegmentedIndex, error) {
	if ix.trailMode() {
		return nil, fmt.Errorf("core: segmented index requires per-window point entries (SubtrailLen < 2)")
	}
	if deg, why := ix.Degraded(); deg {
		return nil, fmt.Errorf("core: cannot segment a degraded index (%s)", why)
	}
	return newSegmentedFrom(ix)
}

func newSegmentedFrom(ix *Index) (*SegmentedIndex, error) {
	if err := ix.Freeze(); err != nil {
		return nil, err
	}
	g := emptySegmented(ix.st, ix.opts, ix.fmap, ix)
	var ranges []winRange
	count := 0
	for seq := range g.next {
		c := 0
		if seq < len(ix.indexed) {
			c = ix.indexed[seq]
		}
		g.next[seq] = c
		if c > 0 {
			ranges = append(ranges, winRange{Seq: seq, Lo: 0, Hi: c})
			count += c
		}
	}
	if count > 0 {
		flat := ix.flat
		if flat == nil || flat.Len() != count {
			return nil, fmt.Errorf("core: index covers %d windows but its tree disagrees", count)
		}
		g.frozen = append(g.frozen, &frozenSeg{flat: flat, ranges: ranges, count: count})
	}
	if err := g.finishInit(); err != nil {
		return nil, err
	}
	return g, nil
}

// emptySegmented allocates the writer-side shell with defaults; the
// caller fills frozen/next and then finishInit publishes generation 0.
func emptySegmented(st *store.Store, opts Options, fmap *dft.FeatureMap, base *Index) *SegmentedIndex {
	return &SegmentedIndex{
		opts:             opts,
		st:               st,
		fmap:             fmap,
		base:             base,
		CompactThreshold: 4096,
		MergeRatio:       2,
		MaxFrozen:        8,
		sliders:          map[int]*seqSlider{},
		next:             make([]int, st.NumSequences()),
		kick:             make(chan struct{}, 1),
		done:             make(chan struct{}),
	}
}

// finishInit extracts every window the frozen segments do not cover
// into the delta, seeds the numeric slack from the frozen bounds, and
// publishes the initial manifest.
func (g *SegmentedIndex) finishInit() error {
	for _, sg := range g.frozen {
		if b, ok := sg.flat.Bounds(); ok {
			if m := maxAbsRect(b); m > g.maxAbs {
				g.maxAbs = m
			}
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for seq := range g.next {
		if err := g.extractLocked(seq); err != nil {
			return err
		}
	}
	g.cell = resilience.NewCell(g.manifestLocked())
	return nil
}

func maxAbsRect(r geom.Rect) float64 {
	var m float64
	for i := range r.L {
		m = math.Max(m, math.Max(math.Abs(r.L[i]), math.Abs(r.H[i])))
	}
	return m
}

// AppendValues appends samples to sequence seq, extracts the features
// of every window the new samples complete, and publishes a new
// manifest generation.  Queries in flight keep their pinned manifest;
// new queries see the appended windows immediately (served exactly
// from the delta).
func (g *SegmentedIndex) AppendValues(seq int, values []float64) error {
	start := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	if seq < 0 || seq >= len(g.next) {
		return fmt.Errorf("core: sequence %d out of range [0, %d)", seq, len(g.next))
	}
	if err := g.st.AppendValues(seq, values); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := g.extractLocked(seq); err != nil {
		return err
	}
	g.publishLocked()
	g.maybeKickLocked()
	recordDeltaApply(time.Since(start))
	return nil
}

// AppendSequence adds a whole new sequence and indexes its windows
// through the delta, returning the sequence id.
func (g *SegmentedIndex) AppendSequence(name string, values []float64) (int, error) {
	start := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	seq := g.st.AppendSequence(name, values)
	for len(g.next) <= seq {
		g.next = append(g.next, 0)
	}
	if err := g.extractLocked(seq); err != nil {
		return seq, err
	}
	g.publishLocked()
	g.maybeKickLocked()
	recordDeltaApply(time.Since(start))
	return seq, nil
}

// extractLocked runs feature extraction forward for sequence seq, from
// the last extracted window to the end of the sequence.  The sliding
// DFT continues from its previous position when possible — O(f_c) per
// new window — and Repositions at every featureCheckpoint boundary,
// exactly where a from-scratch extraction restarts, so the features
// absorbed into the delta are bit-identical to what BuildBulkParallel
// would compute over the grown sequence.
func (g *SegmentedIndex) extractLocked(seq int) error {
	n := g.opts.WindowLen
	lastStart := g.st.SequenceLen(seq) - n
	if g.next[seq] > lastStart {
		return nil
	}
	feat := make(vec.Vector, g.fmap.Dim())
	if g.opts.Reduction != ReductionDFT {
		w := make(vec.Vector, n)
		se := make(vec.Vector, n)
		for st := g.next[seq]; st <= lastStart; st++ {
			if err := g.st.Window(seq, st, n, w, nil); err != nil {
				return fmt.Errorf("core: incremental extraction: %w", err)
			}
			vec.SETransformInPlace(se, w)
			g.fmap.TransformInto(feat, se)
			g.absorbLocked(seq, st, feat)
		}
		return nil
	}
	sl := g.sliders[seq]
	buf := make(vec.Vector, n)
	for st := g.next[seq]; st <= lastStart; st++ {
		switch {
		case st%featureCheckpoint == 0:
			// Checkpoint boundary: restart the recurrence from scratch,
			// as featureSegment does for a fresh segment.
			if err := g.st.Window(seq, st, n, buf, nil); err != nil {
				return fmt.Errorf("core: incremental extraction: %w", err)
			}
			if sl == nil {
				t, err := dft.NewSlidingTransformer(g.fmap, buf)
				if err != nil {
					return err
				}
				sl = &seqSlider{sl: t}
				g.sliders[seq] = sl
			} else if err := sl.sl.Reposition(buf); err != nil {
				return err
			}
			sl.pos = st
		case sl != nil && sl.pos == st-1:
			// The common streaming case: one new sample, one O(f_c) slide.
			if err := g.st.Window(seq, st+n-1, 1, buf[:1], nil); err != nil {
				return fmt.Errorf("core: incremental extraction: %w", err)
			}
			sl.sl.Slide(buf[0])
			sl.pos = st
		default:
			// Bootstrap mid-segment (first append after wrapping a loaded
			// index): replay from the checkpoint so the slider state is
			// bit-identical to a from-scratch extraction reaching st.
			cp := st - st%featureCheckpoint
			span := st - cp + n
			raw := make(vec.Vector, span)
			if err := g.st.Window(seq, cp, span, raw, nil); err != nil {
				return fmt.Errorf("core: incremental extraction: %w", err)
			}
			if sl == nil {
				t, err := dft.NewSlidingTransformer(g.fmap, raw[:n])
				if err != nil {
					return err
				}
				sl = &seqSlider{sl: t}
				g.sliders[seq] = sl
			} else if err := sl.sl.Reposition(raw[:n]); err != nil {
				return err
			}
			for s := cp + 1; s <= st; s++ {
				sl.sl.Slide(raw[s-cp+n-1])
			}
			sl.pos = st
		}
		sl.sl.Feature(feat)
		g.absorbLocked(seq, st, feat)
	}
	return nil
}

func (g *SegmentedIndex) absorbLocked(seq, start int, feat vec.Vector) {
	g.delta = append(g.delta, deltaEntry{seq: seq, start: start, feat: feat.Clone()})
	for _, v := range feat {
		if a := math.Abs(v); a > g.maxAbs {
			g.maxAbs = a
		}
	}
	g.next[seq] = start + 1
}

// manifestLocked assembles the current immutable view: frozen segment
// list and delta pinned by value, store pinned via Snapshot.
func (g *SegmentedIndex) manifestLocked() *manifest {
	var slack float64
	if g.maxAbs > 0 {
		slack = 1e-7 * g.maxAbs * math.Sqrt(float64(g.fmap.Dim()))
	}
	return &manifest{
		gen:    g.gen,
		snap:   g.st.Snapshot(),
		frozen: append([]*frozenSeg(nil), g.frozen...),
		delta:  g.delta[:len(g.delta):len(g.delta)],
		slack:  slack,
	}
}

func (g *SegmentedIndex) publishLocked() {
	g.gen++
	g.cell.Swap(g.manifestLocked())
}

func (g *SegmentedIndex) maybeKickLocked() {
	if g.compactorOn && g.CompactThreshold > 0 && len(g.delta) >= g.CompactThreshold {
		select {
		case g.kick <- struct{}{}:
		default:
		}
	}
}

// StartCompactor launches the background compaction goroutine; it
// wakes whenever the delta crosses CompactThreshold and exits on
// Close.  Idempotent.
func (g *SegmentedIndex) StartCompactor() {
	g.mu.Lock()
	if g.compactorOn {
		g.mu.Unlock()
		return
	}
	g.compactorOn = true
	g.mu.Unlock()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		for {
			select {
			case <-g.done:
				return
			case <-g.kick:
				// Errors are recorded in lastErr and surfaced by Backlog;
				// the delta keeps serving queries exactly in the meantime.
				_ = g.Compact()
			}
		}
	}()
}

// SetCompactHook installs a hook that runs between a compaction's
// decide and build phases; a non-nil error aborts that compaction
// (recorded in Backlog, delta left intact).  Chaos harnesses use it to
// prove queries and appends survive compaction failure.
func (g *SegmentedIndex) SetCompactHook(fn func() error) {
	g.mu.Lock()
	g.compactHook = fn
	g.mu.Unlock()
}

// mergeRunLocked decides how far back the size-tiered merge reaches:
// it returns the frozen-list index k such that segments [k:] merge
// with the folding delta (k == len(frozen) is a pure fold).  Only a
// SUFFIX of the list may merge — frozen segments tile each sequence's
// windows contiguously in list order, so an adjacent run's coverage is
// itself contiguous and the invariant survives the merge.
//
// The tiered walk absorbs the next-older segment while it is at most
// MergeRatio times the run gathered so far — the logarithmic-method
// schedule under which a window is rewritten O(log N) times over its
// lifetime, instead of on every MaxFrozen-th compaction.  MaxFrozen
// remains a hard backstop: if the tiered choice would still leave too
// many segments, everything merges into one.
func (g *SegmentedIndex) mergeRunLocked(cut int) int {
	k := len(g.frozen)
	run := cut
	if g.MergeRatio > 0 {
		for k > 0 && run > 0 && float64(g.frozen[k-1].count) <= g.MergeRatio*float64(run) {
			run += g.frozen[k-1].count
			k--
		}
	}
	resulting := k
	if run > 0 {
		resulting++
	}
	if g.MaxFrozen > 0 && resulting > g.MaxFrozen {
		return 0
	}
	return k
}

// Compact folds the current delta into a new frozen segment, absorbing
// an adjacent run of older segments chosen by the size-tiered policy
// (see mergeRunLocked).  The expensive build runs without holding the
// writer lock, so appends and queries proceed throughout; only the
// final manifest swap holds the lock, and that pause is recorded (see
// Backlog).  Safe to call directly (tests, shutdown flush) even while
// the background compactor runs.
func (g *SegmentedIndex) Compact() error {
	g.compactMu.Lock()
	defer g.compactMu.Unlock()

	// Phase 1 (brief, locked): decide what to compact and pin it.
	g.mu.Lock()
	cut := len(g.delta)
	k := g.mergeRunLocked(cut)
	if cut == 0 && k >= len(g.frozen) {
		g.mu.Unlock()
		return nil
	}
	pinned := g.delta[:cut:cut]
	keep := append([]*frozenSeg(nil), g.frozen[:k]...)
	run := append([]*frozenSeg(nil), g.frozen[k:]...)
	snap := g.st.Snapshot()
	hook := g.compactHook
	g.mu.Unlock()

	fail := func(err error) error {
		g.mu.Lock()
		g.lastErr = err
		g.mu.Unlock()
		return err
	}
	if hook != nil {
		if err := hook(); err != nil {
			return fail(fmt.Errorf("core: compaction aborted: %w", err))
		}
	}

	// Phase 2 (slow, unlocked): build the replacement segment.
	// Appends landing during this phase grow the delta past cut and
	// survive as the post-compaction delta.
	buildStart := time.Now()
	var seg *frozenSeg
	var err error
	if len(run) > 0 {
		seg, err = mergeSegments(snap, g.fmap, g.opts, run, pinned)
	} else {
		seg, err = buildSegment(pinned, g.opts, g.fmap.Dim())
	}
	if err != nil {
		return fail(err)
	}
	build := time.Since(buildStart)
	newFrozen := keep
	if seg != nil {
		newFrozen = append(newFrozen, seg)
	}

	// Phase 3 (brief, locked): swap the manifest.  The lock-held time
	// here is the only moment ingest stalls on compaction.
	start := time.Now()
	g.mu.Lock()
	g.frozen = newFrozen
	g.delta = append([]deltaEntry(nil), g.delta[cut:]...)
	g.publishLocked()
	g.compactions++
	g.lastErr = nil
	pause := time.Since(start)
	if len(g.pauses) >= 1024 {
		copy(g.pauses, g.pauses[1:])
		g.pauses = g.pauses[:len(g.pauses)-1]
	}
	g.pauses = append(g.pauses, pause)
	g.mu.Unlock()
	recordCompaction(build, pause)
	return nil
}

// Backlog reports the compaction state for readiness endpoints and
// tests.
type Backlog struct {
	// Generation is the published manifest generation.
	Generation int64
	// Frozen and FrozenWindows size the immutable side; DeltaWindows
	// is the mutable backlog awaiting compaction.
	Frozen        int
	FrozenWindows int
	DeltaWindows  int
	// Compactions counts completed compactions; the pause fields
	// distribute the manifest-swap stall (the lock-held phase 3).
	Compactions     int
	CompactPauseMax time.Duration
	CompactPauseP99 time.Duration
	// LastCompactErr is the most recent compaction failure, empty
	// after any success.
	LastCompactErr string
}

// Backlog returns current ingest/compaction gauges.
func (g *SegmentedIndex) Backlog() Backlog {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := Backlog{
		Generation:   g.gen,
		Frozen:       len(g.frozen),
		DeltaWindows: len(g.delta),
		Compactions:  g.compactions,
	}
	for _, sg := range g.frozen {
		b.FrozenWindows += sg.count
	}
	if g.lastErr != nil {
		b.LastCompactErr = g.lastErr.Error()
	}
	if len(g.pauses) > 0 {
		sorted := append([]time.Duration(nil), g.pauses...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		b.CompactPauseMax = sorted[len(sorted)-1]
		b.CompactPauseP99 = sorted[int(0.99*float64(len(sorted)-1))]
	}
	return b
}

// Close stops the background compactor and releases the wrapped
// index's resources (including any artifact mapping backing the
// initial frozen segment).  Idempotent and safe to call concurrently:
// the entire teardown runs once, and every caller returns only after
// it has completed (a hot-reload drain goroutine and a shutdown path
// may both close the same superseded index).
func (g *SegmentedIndex) Close() error {
	g.closeOnce.Do(func() {
		close(g.done)
		g.wg.Wait()
		if g.base != nil {
			g.closeErr = g.base.Close()
		}
	})
	return g.closeErr
}

// Options returns the index configuration.
func (g *SegmentedIndex) Options() Options { return g.opts }

// Store returns the underlying store.  It is writer-side state: while
// appends run, read through QueryWindow (or a manifest snapshot)
// instead.
func (g *SegmentedIndex) Store() *store.Store { return g.st }

// Degraded reports false: a segmented index never serves degraded.
func (g *SegmentedIndex) Degraded() (bool, string) { return false, "" }

// Generation returns the published manifest generation.
func (g *SegmentedIndex) Generation() int64 {
	pin := g.cell.Acquire()
	defer pin.Release()
	return pin.Value().gen
}

// WindowCount returns the number of searchable windows (frozen +
// delta) in the published manifest.
func (g *SegmentedIndex) WindowCount() int {
	pin := g.cell.Acquire()
	defer pin.Release()
	return pin.Value().windowCount()
}

// IndexPageCount returns the total index pages across frozen segments.
func (g *SegmentedIndex) IndexPageCount() int {
	pin := g.cell.Acquire()
	defer pin.Release()
	total := 0
	for _, sg := range pin.Value().frozen {
		total += sg.flat.NodeCount()
	}
	return total
}

// TreeHeight returns the tallest frozen segment's height.
func (g *SegmentedIndex) TreeHeight() int {
	pin := g.cell.Acquire()
	defer pin.Release()
	h := 0
	for _, sg := range pin.Value().frozen {
		if sh := sg.flat.Height(); sh > h {
			h = sh
		}
	}
	return h
}

// QueryWindow reads one window through the published manifest's store
// snapshot — safe against concurrent appends, unlike Store().Window.
func (g *SegmentedIndex) QueryWindow(seq, start, n int, dst vec.Vector) error {
	pin := g.cell.Acquire()
	defer pin.Release()
	return pin.Value().snap.Window(seq, start, n, dst, nil)
}

// StoreShape reports the snapshot's sequence, value, and page counts
// for serving-layer gauges, read race-free through the manifest.
func (g *SegmentedIndex) StoreShape() (seqs, values, pages int) {
	pin := g.cell.Acquire()
	defer pin.Release()
	sn := pin.Value().snap
	return sn.NumSequences(), sn.TotalValues(), sn.PageCount()
}

// probeSegment plans and runs the index phase of one frozen segment:
// a per-segment cost choice between the segment's flat tree and an
// exact range enumeration, honoring force for the tree/scan paths.
func (g *SegmentedIndex) probeSegment(ctx context.Context, idx int, sg *frozenSeg, eq engine.Query, force engine.PathKind, ts *rtree.SearchStats, emit func(seq, start int)) (engine.SegmentPlan, error) {
	eq.Windows = sg.count
	hints := sg.flat.CostHints()
	treeCost := engine.EstimateTreeCostSampled(hints, sg.count, eq.Eps, sampleDists(hints, eq))
	scanCost := engine.EstimateScanCost(sg.count)
	chosen := engine.PathRTree
	cost := treeCost
	switch force {
	case engine.PathAuto:
		if scanCost.Units < treeCost.Units {
			chosen, cost = engine.PathScan, scanCost
		}
	case engine.PathRTree:
	case engine.PathScan:
		chosen, cost = engine.PathScan, scanCost
	default:
		return engine.SegmentPlan{}, fmt.Errorf("core: %w: segmented index cannot serve the %s path", engine.ErrUnsupported, force)
	}
	plan := engine.SegmentPlan{Seg: idx, Kind: "frozen", Windows: sg.count, Chosen: chosen, Cost: cost}
	if chosen == engine.PathRTree {
		var items []rtree.Item
		var err error
		if eq.Segment {
			items, err = sg.flat.SegmentSearchContext(ctx, eq.Line, eq.TMin, eq.TMax, eq.Eps, g.opts.Strategy, ts)
		} else {
			items, err = sg.flat.LineSearchContext(ctx, eq.Line, eq.Eps, g.opts.Strategy, ts)
		}
		if err != nil {
			return plan, err
		}
		for _, it := range items {
			seq, start := store.DecodeWindowID(it.ID)
			emit(seq, start)
		}
		plan.Candidates = len(items)
		return plan, nil
	}
	n := 0
	for _, r := range sg.ranges {
		for start := r.Lo; start < r.Hi; start++ {
			if n%scanCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return plan, err
				}
			}
			n++
			emit(r.Seq, start)
		}
	}
	plan.Candidates = n
	return plan, nil
}

// probeManifest fans one query's index phase across every segment of
// the manifest: frozen segments go through probeSegment, the delta is
// emitted wholesale (an exact scan — the verifier filters it).  It
// returns the per-segment Explain and per-path probe counts.
func (g *SegmentedIndex) probeManifest(ctx context.Context, man *manifest, line vec.Line, eps float64, costs CostBounds, force engine.PathKind, ts *rtree.SearchStats, emit func(seq, start int)) (*engine.Explain, [engine.NumPathKinds]int, error) {
	var probes [engine.NumPathKinds]int
	planStart := time.Now()
	_, planSpan := obs.StartSpan(ctx, "plan")
	eq := buildEngineQuery(line, eps, man.slack, costs, man.windowCount(), g.fmap.Dim())
	ex := &engine.Explain{Chosen: engine.PathScan, Forced: force != engine.PathAuto}
	if planSpan != nil {
		planSpan.SetInt("segments", int64(len(man.frozen)))
		planSpan.SetInt("delta_windows", int64(len(man.delta)))
		planSpan.End()
	}
	ex.PlanTime = time.Since(planStart)

	probeStart := time.Now()
	probeCtx, probeSpan := obs.StartSpan(ctx, "probe")
	emitted := 0
	if probeSpan != nil {
		inner := emit
		emit = func(seq, start int) { emitted++; inner(seq, start) }
	}
	largest := -1
	for i, sg := range man.frozen {
		plan, err := g.probeSegment(probeCtx, i, sg, eq, force, ts, emit)
		if err != nil {
			spanEndWithError(probeSpan, err)
			ex.ProbeTime = time.Since(probeStart)
			return ex, probes, err
		}
		ex.Segments = append(ex.Segments, plan)
		ex.EstCandidates += plan.Cost.Candidates
		probes[plan.Chosen]++
		if sg.count > largest {
			largest = sg.count
			ex.Chosen = plan.Chosen
		}
	}
	if len(man.delta) > 0 {
		// The delta always scans, whatever force says: skipping it
		// would silently drop the freshest windows from the answer.
		for i, e := range man.delta {
			if i%scanCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					spanEndWithError(probeSpan, err)
					ex.ProbeTime = time.Since(probeStart)
					return ex, probes, err
				}
			}
			emit(e.seq, e.start)
		}
		dplan := engine.SegmentPlan{
			Seg:        -1,
			Kind:       "delta",
			Windows:    len(man.delta),
			Chosen:     engine.PathScan,
			Cost:       engine.EstimateScanCost(len(man.delta)),
			Candidates: len(man.delta),
		}
		ex.Segments = append(ex.Segments, dplan)
		ex.EstCandidates += dplan.Cost.Candidates
		probes[engine.PathScan]++
	}
	if probeSpan != nil {
		probeSpan.SetAttr("path", ex.Chosen.String())
		probeSpan.SetInt("candidates", int64(emitted))
		probeSpan.End()
	}
	ex.ProbeTime = time.Since(probeStart)
	return ex, probes, nil
}

// Search is Index.Search over the segmented index.
func (g *SegmentedIndex) Search(q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	out, _, err := g.SearchPlannedContext(context.Background(), q, eps, costs, engine.PathAuto, nil, stats)
	return out, err
}

// SearchContext is Search with cooperative cancellation.
func (g *SegmentedIndex) SearchContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	out, _, err := g.SearchPlannedContext(ctx, q, eps, costs, engine.PathAuto, nil, stats)
	return out, err
}

// SearchPlannedContext is the segmented range-query executor: it pins
// the current manifest, fans the index phase across segments, and
// verifies every candidate against the manifest's store snapshot
// through the same exact verifier as Index — so the result set is
// bit-identical to a from-scratch index over the same data, whatever
// the segment layout.  The returned Explain carries one SegmentPlan
// per probed segment.
func (g *SegmentedIndex) SearchPlannedContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, pool *store.BufferPool, stats *SearchStats) ([]Match, *engine.Explain, error) {
	if len(q) != g.opts.WindowLen {
		recordSearchError()
		return nil, nil, fmt.Errorf("core: %w: query length %d, index window length %d (use SearchLong for longer queries)",
			ErrInvalidQuery, len(q), g.opts.WindowLen)
	}
	if err := validateQuery(q, eps); err != nil {
		recordSearchError()
		return nil, nil, err
	}
	pin := g.cell.Acquire()
	defer pin.Release()
	man := pin.Value()

	var treeStats rtree.SearchStats
	var cands []candidate
	ex, pathProbes, err := g.probeManifest(ctx, man, seLineFor(g.fmap, q), eps, costs, force, &treeStats, func(seq, start int) {
		cands = append(cands, candidate{seq, start})
	})
	if err != nil {
		recordSearchError()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, ex, err
		}
		return nil, ex, fmt.Errorf("core: segmented probe: %w", err)
	}

	verifyStart := time.Now()
	verifyCtx, verifySpan := obs.StartSpan(ctx, "verify")
	pc := store.PageCounter{Pool: pool}
	v := newVerifier(man.snap, q, eps, costs)
	out, falseAlarms, costRejected, err := verifyCandidates(verifyCtx, v, cands, &pc)
	if err != nil {
		spanEndWithError(verifySpan, err)
		recordSearchError()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, ex, err
		}
		return nil, ex, fmt.Errorf("core: post-processing: %w", err)
	}
	sortMatches(out)
	if verifySpan != nil {
		verifySpan.SetInt("candidates", int64(len(cands)))
		verifySpan.SetInt("false_alarms", int64(falseAlarms))
		verifySpan.SetInt("matches", int64(len(out)))
		verifySpan.End()
	}
	ex.VerifyTime = time.Since(verifyStart)
	ex.ActualCandidates = len(cands)
	ex.Matches = len(out)
	ex.TraceID = obs.TraceIDFromContext(ctx)

	delta := SearchStats{
		IndexNodeAccesses:  treeStats.NodeAccesses,
		DataPageAccesses:   pc.Distinct(),
		Candidates:         len(cands),
		FalseAlarms:        falseAlarms,
		CostRejected:       costRejected,
		Results:            len(out),
		LeafEntriesChecked: treeStats.LeafEntriesChecked,
		Penetration:        treeStats.Penetration,
		PlanTime:           ex.PlanTime,
		ProbeTime:          ex.ProbeTime,
		VerifyTime:         ex.VerifyTime,
		PathProbes:         pathProbes,
		TraceID:            ex.TraceID,
	}
	recordSearchMetrics(&delta, 1)
	if stats != nil {
		stats.Add(delta)
	}
	return out, ex, nil
}

// SearchLong is the multipiece long-query search over the segmented
// index; see Index.SearchLong for the method.
func (g *SegmentedIndex) SearchLong(q vec.Vector, eps float64, costs CostBounds, stats *SearchStats) ([]Match, error) {
	out, _, err := g.SearchLongPlannedContext(context.Background(), q, eps, costs, engine.PathAuto, stats)
	return out, err
}

// SearchLongPlannedContext cuts the query into length-n pieces, probes
// every piece across every segment of ONE pinned manifest (so all
// pieces see the same generation), and verifies the deduplicated
// full-length proposals against the manifest's snapshot.
func (g *SegmentedIndex) SearchLongPlannedContext(ctx context.Context, q vec.Vector, eps float64, costs CostBounds, force engine.PathKind, stats *SearchStats) ([]Match, *engine.Explain, error) {
	n := g.opts.WindowLen
	if len(q) == n {
		return g.SearchPlannedContext(ctx, q, eps, costs, force, nil, stats)
	}
	if len(q) < n {
		recordSearchError()
		return nil, nil, fmt.Errorf("core: %w: query length %d below index window length %d",
			ErrInvalidQuery, len(q), n)
	}
	if err := validateQuery(q, eps); err != nil {
		recordSearchError()
		return nil, nil, err
	}
	pieces := len(q) / n
	pieceEps := eps / math.Sqrt(float64(pieces))

	pin := g.cell.Acquire()
	defer pin.Release()
	man := pin.Value()

	proposed := make(map[candidate]bool)
	var treeStats rtree.SearchStats
	var ex *engine.Explain
	var pathProbes [engine.NumPathKinds]int
	for i := 0; i < pieces; i++ {
		piece := q[i*n : (i+1)*n]
		i := i
		pieceEx, probes, err := g.probeManifest(ctx, man, seLineFor(g.fmap, piece), pieceEps, costs, force, &treeStats, func(seq, start int) {
			full := candidate{seq, start - i*n}
			if full.start < 0 || full.start+len(q) > man.snap.SequenceLen(seq) {
				return
			}
			proposed[full] = true
		})
		if err != nil {
			recordSearchError()
			return nil, pieceEx, err
		}
		for k := range probes {
			pathProbes[k] += probes[k]
		}
		if ex == nil {
			ex = pieceEx
		} else {
			ex.PlanTime += pieceEx.PlanTime
			ex.ProbeTime += pieceEx.ProbeTime
		}
	}
	ex.Pieces = pieces
	cands := make([]candidate, 0, len(proposed))
	for a := range proposed {
		cands = append(cands, a)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seq != cands[j].seq {
			return cands[i].seq < cands[j].seq
		}
		return cands[i].start < cands[j].start
	})

	verifyStart := time.Now()
	verifyCtx, verifySpan := obs.StartSpan(ctx, "verify")
	var pc store.PageCounter
	v := newVerifier(man.snap, q, eps, costs)
	out, falseAlarms, costRejected, err := verifyCandidates(verifyCtx, v, cands, &pc)
	if err != nil {
		spanEndWithError(verifySpan, err)
		recordSearchError()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, ex, err
		}
		return nil, ex, fmt.Errorf("core: long-query post-processing: %w", err)
	}
	sortMatches(out)
	if verifySpan != nil {
		verifySpan.SetInt("candidates", int64(len(cands)))
		verifySpan.SetInt("false_alarms", int64(falseAlarms))
		verifySpan.SetInt("matches", int64(len(out)))
		verifySpan.End()
	}
	ex.VerifyTime = time.Since(verifyStart)
	ex.ActualCandidates = len(cands)
	ex.Matches = len(out)
	ex.TraceID = obs.TraceIDFromContext(ctx)

	delta := SearchStats{
		IndexNodeAccesses:  treeStats.NodeAccesses,
		DataPageAccesses:   pc.Distinct(),
		Candidates:         len(proposed),
		FalseAlarms:        falseAlarms,
		CostRejected:       costRejected,
		Results:            len(out),
		LeafEntriesChecked: treeStats.LeafEntriesChecked,
		Penetration:        treeStats.Penetration,
		PlanTime:           ex.PlanTime,
		ProbeTime:          ex.ProbeTime,
		VerifyTime:         ex.VerifyTime,
		PathProbes:         pathProbes,
		TraceID:            ex.TraceID,
	}
	recordSearchMetrics(&delta, pieces)
	if stats != nil {
		stats.Add(delta)
	}
	return out, ex, nil
}

// NearestNeighbors is Index.NearestNeighbors over the segmented index.
func (g *SegmentedIndex) NearestNeighbors(q vec.Vector, k int, stats *SearchStats) ([]Match, error) {
	return g.NearestNeighborsWithCostsContext(context.Background(), q, k, UnboundedCosts(), stats)
}

// NearestNeighborsWithCostsContext streams each frozen segment's
// candidates in increasing feature-space lower-bound order (with the
// GEMINI-style early termination against the running kth best) and
// refines every delta window unconditionally; the shared top-k makes
// the answer exact across segments.
func (g *SegmentedIndex) NearestNeighborsWithCostsContext(ctx context.Context, q vec.Vector, k int, costs CostBounds, stats *SearchStats) ([]Match, error) {
	if len(q) != g.opts.WindowLen {
		return nil, fmt.Errorf("core: %w: query length %d, index window length %d",
			ErrInvalidQuery, len(q), g.opts.WindowLen)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: %w: k %d < 1", ErrInvalidQuery, k)
	}
	if err := validateQueryValues(q); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pin := g.cell.Acquire()
	defer pin.Release()
	man := pin.Value()

	var treeStats rtree.SearchStats
	var pc store.PageCounter
	line := seLineFor(g.fmap, q)
	slack := man.slack
	var best []Match
	var candidates int
	var scanErr, ctxErr error

	vq := newVerifier(man.snap, q, 0, costs)
	refine := func(seq, start int) bool {
		candidates++
		if candidates%verifyCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return false
			}
		}
		w, err := man.snap.WindowView(seq, start, g.opts.WindowLen, &pc)
		if err != nil {
			scanErr = err
			return false
		}
		if len(best) == k {
			ws, err := man.snap.WindowStats(seq, start, g.opts.WindowLen)
			if err != nil {
				scanErr = err
				return false
			}
			fast, fslack := vec.MinDistWithStats(vq.su, vq.mu, vq.uu, w, ws.Sum, ws.SumSq, ws.SumErr, ws.SumSqErr)
			if lb := fast.Dist*fast.Dist - fslack; lb > 0 && math.Sqrt(lb) >= best[k-1].Dist {
				return true
			}
		}
		m := vec.MinDist(q, w)
		if !costs.Allow(m.Scale, m.Shift) {
			return true
		}
		if len(best) == k && m.Dist >= best[k-1].Dist {
			return true
		}
		match := Match{
			Seq:   seq,
			Start: start,
			Name:  man.snap.SequenceName(seq),
			Dist:  m.Dist,
			Scale: m.Scale,
			Shift: m.Shift,
		}
		pos := sort.Search(len(best), func(i int) bool { return best[i].Dist > m.Dist })
		if len(best) < k {
			best = append(best, Match{})
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = match
		return true
	}
	for _, sg := range man.frozen {
		sg.flat.NearestToLineFunc(line, &treeStats, func(id rtree.ItemDist) bool {
			if len(best) == k && id.Dist > best[k-1].Dist+slack {
				return false // this segment cannot improve the top-k
			}
			seq, start := store.DecodeWindowID(id.Item.ID)
			return refine(seq, start)
		})
		if ctxErr != nil || scanErr != nil {
			break
		}
	}
	for _, e := range man.delta {
		if ctxErr != nil || scanErr != nil {
			break
		}
		if !refine(e.seq, e.start) {
			break
		}
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	if scanErr != nil {
		return nil, fmt.Errorf("core: nearest-neighbour refinement: %w", scanErr)
	}

	if stats != nil {
		stats.IndexNodeAccesses += treeStats.NodeAccesses
		stats.DataPageAccesses += pc.Distinct()
		stats.Candidates += candidates
		stats.Results += len(best)
		stats.LeafEntriesChecked += treeStats.LeafEntriesChecked
	}
	return best, nil
}

// SearchBatchPlannedContext fans a heterogeneous batch over the
// segmented executor with the same partial-progress semantics as
// Index.SearchBatchPlannedContext.
func (g *SegmentedIndex) SearchBatchPlannedContext(ctx context.Context, queries []BatchQuery, force engine.PathKind, parallelism int, stats *SearchStats) ([][]Match, []*engine.Explain, []BatchStatus, error) {
	return searchBatchPlannedContext(ctx, g, queries, force, parallelism, stats)
}
