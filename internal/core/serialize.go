package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"scaleshift/internal/binio"
	"scaleshift/internal/geom"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
)

// indexMagic identifies the binary index format, version 2: two
// CRC32C-protected sections (header: options and per-sequence indexed
// window counts; tree: the serialized R*-tree) and a whole-file
// trailer checksum.  Version 1 (unchecksummed) artifacts are rejected
// with ErrVersion; rebuild them from the store.
var indexMagic = []byte("SSIDX\x02")

// Typed artifact-validation failures from LoadIndex, re-exported from
// the shared framing package so callers can errors.Is against
// core.ErrChecksum etc. without importing internal/binio.
var (
	ErrChecksum  = binio.ErrChecksum
	ErrTruncated = binio.ErrTruncated
	ErrVersion   = binio.ErrVersion
)

// maxIndexSection bounds one section's length claim (64 GiB); the
// chunked section reader fails fast on anything the input cannot
// actually provide.
const maxIndexSection = 1 << 36

// WriteBinary serializes the index — its options, per-sequence indexed
// window counts, and the full R*-tree — in the checksummed v2 format,
// so it can be reopened with LoadIndex without re-running
// pre-processing.  The underlying store is NOT included; persist it
// separately with Store.WriteBinary.  A degraded index (see
// OpenOrRebuild) refuses to serialize: it has no tree to persist.
func (ix *Index) WriteBinary(w io.Writer) error {
	if ix.degraded != "" {
		return fmt.Errorf("core: refusing to serialize a degraded index (%s)", ix.degraded)
	}
	bw := binio.NewWriter(w)
	bw.Magic(indexMagic)

	var head bytes.Buffer
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		head.Write(scratch[:])
	}
	for _, v := range []uint64{
		uint64(ix.opts.WindowLen),
		uint64(ix.opts.Coefficients),
		uint64(ix.opts.Reduction),
		uint64(ix.opts.Strategy),
		uint64(ix.opts.SubtrailLen),
		uint64(len(ix.indexed)),
	} {
		writeU64(v)
	}
	for _, c := range ix.indexed {
		writeU64(uint64(c))
	}
	bw.Section(head.Bytes())

	var tree bytes.Buffer
	if err := ix.tree.WriteBinary(&tree); err != nil {
		return err
	}
	bw.Section(tree.Bytes())
	return bw.Close()
}

// LoadIndex reopens an index written by WriteBinary, attaching it to
// st, which must be the same store (or a bit-exact copy) the index was
// built over.  Every byte of the artifact is covered by a CRC32C
// before it is parsed, so truncation and corruption always surface as
// a typed error (ErrChecksum, ErrTruncated, ErrVersion); the
// consistency checks against st guard the pair itself — an index
// loaded against the wrong store is rejected, not served.
func LoadIndex(r io.Reader, st *store.Store) (*Index, error) {
	br := binio.NewReader(r)
	if err := br.Magic(indexMagic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}

	head, err := br.Section(maxIndexSection)
	if err != nil {
		return nil, fmt.Errorf("core: header section: %w", err)
	}
	hr := bytes.NewReader(head)
	var scratch [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(hr, scratch[:]); err != nil {
			return 0, fmt.Errorf("%w (header too short)", ErrTruncated)
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	var windowLen, coeffs, reduction, strategy, subtrail, nIndexed uint64
	for _, dst := range []*uint64{&windowLen, &coeffs, &reduction, &strategy, &subtrail, &nIndexed} {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("core: reading header: %w", err)
		}
		*dst = v
	}
	if nIndexed > uint64(st.NumSequences()) {
		return nil, fmt.Errorf("core: index covers %d sequences but store has %d",
			nIndexed, st.NumSequences())
	}
	indexed := make([]int, nIndexed)
	for i := range indexed {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("core: reading indexed counts: %w", err)
		}
		indexed[i] = int(v)
	}
	if hr.Len() != 0 {
		return nil, fmt.Errorf("core: %d trailing header bytes: %w", hr.Len(), ErrChecksum)
	}

	treeBytes, err := br.Section(maxIndexSection)
	if err != nil {
		return nil, fmt.Errorf("core: tree section: %w", err)
	}
	tree, err := rtree.ReadBinary(bytes.NewReader(treeBytes))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := br.Trailer(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	opts := Options{
		WindowLen:    int(windowLen),
		Coefficients: int(coeffs),
		Reduction:    ReductionKind(reduction),
		Strategy:     geom.Strategy(strategy),
		SubtrailLen:  int(subtrail),
		Tree:         tree.Config(),
	}
	ix, err := NewIndex(st, opts)
	if err != nil {
		return nil, err
	}
	if tree.Config().Dim != ix.fmap.Dim() {
		return nil, fmt.Errorf("core: tree dimension %d does not match options (%d)",
			tree.Config().Dim, ix.fmap.Dim())
	}
	// The indexed counts must be consistent with the store and the tree:
	// one leaf entry per window in point mode, one per sub-trail in
	// trail mode.
	total := 0
	for seq, c := range indexed {
		if c < 0 || (c > 0 && c+int(windowLen)-1 > st.SequenceLen(seq)) {
			return nil, fmt.Errorf("core: indexed count %d exceeds sequence %d (len %d)",
				c, seq, st.SequenceLen(seq))
		}
		if ix0 := int(subtrail); ix0 >= 2 {
			total += (c + ix0 - 1) / ix0
		} else {
			total += c
		}
	}
	if total != tree.Len() {
		return nil, fmt.Errorf("core: indexed counts imply %d leaf entries but tree holds %d",
			total, tree.Len())
	}
	ix.tree = tree
	ix.indexed = indexed
	return ix, nil
}
