package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"scaleshift/internal/geom"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
)

// indexMagic identifies the binary index format, version 1.
var indexMagic = []byte("SSIDX\x01")

// WriteBinary serializes the index — its options, per-sequence indexed
// window counts, and the full R*-tree — so it can be reopened with
// LoadIndex without re-running pre-processing.  The underlying store
// is NOT included; persist it separately with Store.WriteBinary.
func (ix *Index) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(indexMagic); err != nil {
		return err
	}
	var scratch [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	for _, v := range []uint64{
		uint64(ix.opts.WindowLen),
		uint64(ix.opts.Coefficients),
		uint64(ix.opts.Reduction),
		uint64(ix.opts.Strategy),
		uint64(ix.opts.SubtrailLen),
		uint64(len(ix.indexed)),
	} {
		if err := writeU64(v); err != nil {
			return err
		}
	}
	for _, c := range ix.indexed {
		if err := writeU64(uint64(c)); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The tree (including its Config) follows inline.
	return ix.tree.WriteBinary(w)
}

// LoadIndex reopens an index written by WriteBinary, attaching it to
// st, which must be the same store (or a bit-exact copy) the index was
// built over.  Cheap consistency checks guard against mismatched
// pairs; they cannot catch every corruption, so treat the pair as one
// artifact.
func LoadIndex(r io.Reader, st *store.Store) (*Index, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(head) != string(indexMagic) {
		return nil, fmt.Errorf("core: bad magic %q", head)
	}
	var scratch [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	var windowLen, coeffs, reduction, strategy, subtrail, nIndexed uint64
	for _, dst := range []*uint64{&windowLen, &coeffs, &reduction, &strategy, &subtrail, &nIndexed} {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("core: reading header: %w", err)
		}
		*dst = v
	}
	if nIndexed > uint64(st.NumSequences()) {
		return nil, fmt.Errorf("core: index covers %d sequences but store has %d",
			nIndexed, st.NumSequences())
	}
	indexed := make([]int, nIndexed)
	for i := range indexed {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("core: reading indexed counts: %w", err)
		}
		indexed[i] = int(v)
	}
	tree, err := rtree.ReadBinary(br)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	opts := Options{
		WindowLen:    int(windowLen),
		Coefficients: int(coeffs),
		Reduction:    ReductionKind(reduction),
		Strategy:     geom.Strategy(strategy),
		SubtrailLen:  int(subtrail),
		Tree:         tree.Config(),
	}
	ix, err := NewIndex(st, opts)
	if err != nil {
		return nil, err
	}
	if tree.Config().Dim != ix.fmap.Dim() {
		return nil, fmt.Errorf("core: tree dimension %d does not match options (%d)",
			tree.Config().Dim, ix.fmap.Dim())
	}
	// The indexed counts must be consistent with the store and the tree:
	// one leaf entry per window in point mode, one per sub-trail in
	// trail mode.
	total := 0
	for seq, c := range indexed {
		if c < 0 || (c > 0 && c+int(windowLen)-1 > st.SequenceLen(seq)) {
			return nil, fmt.Errorf("core: indexed count %d exceeds sequence %d (len %d)",
				c, seq, st.SequenceLen(seq))
		}
		if ix0 := int(subtrail); ix0 >= 2 {
			total += (c + ix0 - 1) / ix0
		} else {
			total += c
		}
	}
	if total != tree.Len() {
		return nil, fmt.Errorf("core: indexed counts imply %d leaf entries but tree holds %d",
			total, tree.Len())
	}
	ix.tree = tree
	ix.indexed = indexed
	return ix, nil
}
