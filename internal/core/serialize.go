package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"scaleshift/internal/binio"
	"scaleshift/internal/geom"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
)

// indexMagic identifies the binary index format, version 3: two
// CRC32C-protected sections (header: options and per-sequence indexed
// window counts; arena: the frozen flat R*-tree, padded so its arrays
// land on 8-byte file offsets) and a whole-file trailer checksum.  The
// arena is stored verbatim — little-endian float64/uint64 arrays — so
// a memory-mapped artifact serves queries zero-copy (LoadIndexFile).
//
// Version 2 (same framing, pointer-tree payload in the second
// section) is still read.  Version 1 (unchecksummed) artifacts are
// rejected with ErrVersion; rebuild them from the store.
var indexMagic = []byte("SSIDX\x03")

// indexVersions lists the format versions LoadIndex accepts.
var indexVersions = []byte{2, 3}

// Typed artifact-validation failures from LoadIndex, re-exported from
// the shared framing package so callers can errors.Is against
// core.ErrChecksum etc. without importing internal/binio.
var (
	ErrChecksum  = binio.ErrChecksum
	ErrTruncated = binio.ErrTruncated
	ErrVersion   = binio.ErrVersion
)

// maxIndexSection bounds one section's length claim (64 GiB); the
// chunked section reader fails fast on anything the input cannot
// actually provide.
const maxIndexSection = 1 << 36

// indexHeader is the decoded first section of an index artifact.
type indexHeader struct {
	windowLen, coeffs, reduction, strategy, subtrail uint64
	indexed                                          []int
}

// encodeHeader serializes the options and indexed counts.
func (ix *Index) encodeHeader() []byte {
	var head bytes.Buffer
	var scratch [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		head.Write(scratch[:])
	}
	for _, v := range []uint64{
		uint64(ix.opts.WindowLen),
		uint64(ix.opts.Coefficients),
		uint64(ix.opts.Reduction),
		uint64(ix.opts.Strategy),
		uint64(ix.opts.SubtrailLen),
		uint64(len(ix.indexed)),
	} {
		writeU64(v)
	}
	for _, c := range ix.indexed {
		writeU64(uint64(c))
	}
	return head.Bytes()
}

// parseIndexHeader decodes a header section, validating the sequence
// count against the store.
func parseIndexHeader(head []byte, st *store.Store) (indexHeader, error) {
	var h indexHeader
	hr := bytes.NewReader(head)
	var scratch [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(hr, scratch[:]); err != nil {
			return 0, fmt.Errorf("%w (header too short)", ErrTruncated)
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	var nIndexed uint64
	for _, dst := range []*uint64{&h.windowLen, &h.coeffs, &h.reduction, &h.strategy, &h.subtrail, &nIndexed} {
		v, err := readU64()
		if err != nil {
			return h, fmt.Errorf("core: reading header: %w", err)
		}
		*dst = v
	}
	if nIndexed > uint64(st.NumSequences()) {
		return h, fmt.Errorf("core: index covers %d sequences but store has %d",
			nIndexed, st.NumSequences())
	}
	h.indexed = make([]int, nIndexed)
	for i := range h.indexed {
		v, err := readU64()
		if err != nil {
			return h, fmt.Errorf("core: reading indexed counts: %w", err)
		}
		h.indexed[i] = int(v)
	}
	if hr.Len() != 0 {
		return h, fmt.Errorf("core: %d trailing header bytes: %w", hr.Len(), ErrChecksum)
	}
	return h, nil
}

// assembleIndex builds the Index shell for a loaded artifact and runs
// the store-consistency checks shared by every load path: tree
// dimensionality must match the options' feature map, and the indexed
// counts must agree with the store's sequence lengths and the tree's
// leaf-entry count (one entry per window in point mode, one per
// sub-trail in trail mode).
func assembleIndex(h indexHeader, cfg rtree.Config, treeLen int, st *store.Store) (*Index, error) {
	opts := Options{
		WindowLen:    int(h.windowLen),
		Coefficients: int(h.coeffs),
		Reduction:    ReductionKind(h.reduction),
		Strategy:     geom.Strategy(h.strategy),
		SubtrailLen:  int(h.subtrail),
		Tree:         cfg,
	}
	ix, err := NewIndex(st, opts)
	if err != nil {
		return nil, err
	}
	if cfg.Dim != ix.fmap.Dim() {
		return nil, fmt.Errorf("core: tree dimension %d does not match options (%d)",
			cfg.Dim, ix.fmap.Dim())
	}
	total := 0
	for seq, c := range h.indexed {
		if c < 0 || (c > 0 && c+int(h.windowLen)-1 > st.SequenceLen(seq)) {
			return nil, fmt.Errorf("core: indexed count %d exceeds sequence %d (len %d)",
				c, seq, st.SequenceLen(seq))
		}
		if k := int(h.subtrail); k >= 2 {
			total += (c + k - 1) / k
		} else {
			total += c
		}
	}
	if total != treeLen {
		return nil, fmt.Errorf("core: indexed counts imply %d leaf entries but tree holds %d",
			total, treeLen)
	}
	ix.indexed = h.indexed
	return ix, nil
}

// WriteBinary serializes the index — its options, per-sequence indexed
// window counts, and the frozen flat R*-tree arena — in the
// checksummed v3 format, so it can be reopened with LoadIndex (or
// memory-mapped with LoadIndexFile) without re-running
// pre-processing.  An unfrozen index is frozen transiently for
// writing; the in-memory representation is left unchanged.  The
// underlying store is NOT included; persist it separately with
// Store.WriteBinary.  A degraded index (see OpenOrRebuild) refuses to
// serialize: it has no tree to persist.
func (ix *Index) WriteBinary(w io.Writer) error {
	if ix.degraded != "" {
		return fmt.Errorf("core: refusing to serialize a degraded index (%s)", ix.degraded)
	}
	flat := ix.flat
	if flat == nil {
		var err error
		flat, err = ix.tree.Freeze()
		if err != nil {
			return err
		}
	}
	bw := binio.NewWriter(w)
	bw.Magic(indexMagic)
	bw.Section(ix.encodeHeader())

	// The arena section payload is a u64 pad length, that many zero
	// bytes, then the arena verbatim.  The pad is chosen so the arena's
	// first byte lands on an 8-byte FILE offset: the section starts at
	// Pos(), its payload at Pos()+8 (after the length prefix), the
	// arena at Pos()+16+pad.  With every array element 8 bytes wide,
	// file-offset alignment is what lets an mmap-backed open
	// reinterpret the arrays in place.
	pad := int((8 - (bw.Pos()+16)%8) % 8)
	payload := make([]byte, 8+pad, 8+pad+flat.ArenaSize())
	binary.LittleEndian.PutUint64(payload, uint64(pad))
	payload = flat.AppendArena(payload)
	bw.Section(payload)
	return bw.Close()
}

// arenaFromSection peels the pad prefix off an arena section payload.
func arenaFromSection(payload []byte) ([]byte, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("core: arena section too short (%d bytes): %w", len(payload), ErrTruncated)
	}
	pad := binary.LittleEndian.Uint64(payload)
	if pad >= 8 || 8+pad > uint64(len(payload)) {
		return nil, fmt.Errorf("core: implausible arena padding %d: %w", pad, ErrChecksum)
	}
	return payload[8+pad:], nil
}

// LoadIndex reopens an index written by WriteBinary, attaching it to
// st, which must be the same store (or a bit-exact copy) the index was
// built over.  Every byte of the artifact is covered by a CRC32C
// before it is parsed, and the arena is structurally validated, so
// truncation and corruption always surface as a typed error
// (ErrChecksum, ErrTruncated, ErrVersion) — never a panic and never
// wrong results.  The consistency checks against st guard the pair
// itself: an index loaded against the wrong store is rejected, not
// served.  For O(1) zero-copy opens from a file, use LoadIndexFile.
func LoadIndex(r io.Reader, st *store.Store) (*Index, error) {
	br := binio.NewReader(r)
	version, err := br.MagicVersions(indexMagic, indexVersions...)
	if err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}

	head, err := br.Section(maxIndexSection)
	if err != nil {
		return nil, fmt.Errorf("core: header section: %w", err)
	}
	h, err := parseIndexHeader(head, st)
	if err != nil {
		return nil, err
	}

	body, err := br.Section(maxIndexSection)
	if err != nil {
		return nil, fmt.Errorf("core: tree section: %w", err)
	}

	if version == 2 {
		tree, err := rtree.ReadBinary(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if err := br.Trailer(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		ix, err := assembleIndex(h, tree.Config(), tree.Len(), st)
		if err != nil {
			return nil, err
		}
		ix.tree = tree
		return ix, nil
	}

	arena, err := arenaFromSection(body)
	if err != nil {
		return nil, err
	}
	flat, err := rtree.FlatFromArena(arena)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := br.Trailer(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// The CRCs passed, but defense in depth is cheap relative to the
	// stream read: validate so traversal is panic-free even against an
	// artifact whose checksums were deliberately recomputed.
	if err := flat.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ix, err := assembleIndex(h, flat.Config(), flat.Len(), st)
	if err != nil {
		return nil, err
	}
	ix.flat = flat
	return ix, nil
}

// loadIndexBytes opens an index artifact already resident in memory
// (typically a memory mapping).  v3 artifacts open in O(1): the header
// section is small and CRC-checked, but the arena section's checksum
// and structural validation are DEFERRED (Index.VerifyArtifact) and
// the arena's arrays are reinterpreted in place, aliasing data.  v2
// artifacts are fully verified and parsed, exactly like LoadIndex.
func loadIndexBytes(data []byte, st *store.Store) (*Index, error) {
	br := binio.NewByteReader(data)
	version, err := br.MagicVersions(indexMagic, indexVersions...)
	if err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}

	head, err := br.Section(maxIndexSection)
	if err != nil {
		return nil, fmt.Errorf("core: header section: %w", err)
	}
	h, err := parseIndexHeader(head, st)
	if err != nil {
		return nil, err
	}

	if version == 2 {
		body, err := br.Section(maxIndexSection)
		if err != nil {
			return nil, fmt.Errorf("core: tree section: %w", err)
		}
		tree, err := rtree.ReadBinary(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if err := br.Trailer(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		ix, err := assembleIndex(h, tree.Config(), tree.Len(), st)
		if err != nil {
			return nil, err
		}
		ix.tree = tree
		return ix, nil
	}

	body, err := br.SectionLazy(maxIndexSection)
	if err != nil {
		return nil, fmt.Errorf("core: arena section: %w", err)
	}
	if rest := len(data) - br.Offset(); rest != 4 {
		return nil, fmt.Errorf("core: %d bytes after arena section (want 4-byte trailer): %w", rest, ErrTruncated)
	}
	arena, err := arenaFromSection(body)
	if err != nil {
		return nil, err
	}
	flat, err := rtree.FlatFromArena(arena)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ix, err := assembleIndex(h, flat.Config(), flat.Len(), st)
	if err != nil {
		return nil, err
	}
	ix.flat = flat
	return ix, nil
}
