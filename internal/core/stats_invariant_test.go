package core

import (
	"context"
	"strings"
	"testing"

	"scaleshift/internal/engine"
	"scaleshift/internal/obs"
	"scaleshift/internal/query"
	"scaleshift/internal/vec"
)

// The SearchStats ledger must balance on every path: each candidate is
// exactly one of (false alarm, cost-rejected, result).  These tests
// assert CheckInvariants across all three access paths, degraded mode,
// long queries, and batches — the accounting identity a dashboard
// reader relies on when the counters are exported.

// invariantQuery returns a query window and an eps wide enough to
// produce candidates and matches on the test store.
func invariantQuery(t *testing.T, ix *Index) (vec.Vector, float64) {
	t.Helper()
	n := ix.Options().WindowLen
	q := make(vec.Vector, n)
	if err := ix.Store().Window(0, 3, n, q, nil); err != nil {
		t.Fatal(err)
	}
	norm, err := query.SENormScale(ix.Store(), n, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	return q, 0.05 * norm
}

func checkStats(t *testing.T, label string, stats SearchStats, matches int) {
	t.Helper()
	if err := stats.CheckInvariants(); err != nil {
		t.Errorf("%s: %v", label, err)
	}
	if stats.Results != matches {
		t.Errorf("%s: stats.Results = %d but %d matches returned", label, stats.Results, matches)
	}
}

func TestStatsInvariantsAcrossPaths(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 12, 120)
	q, eps := invariantQuery(t, ix)
	for _, force := range []engine.PathKind{engine.PathAuto, engine.PathRTree, engine.PathScan} {
		var stats SearchStats
		matches, ex, err := ix.SearchPlanned(q, eps, UnboundedCosts(), force, nil, &stats)
		if err != nil {
			t.Fatalf("path %v: %v", force, err)
		}
		checkStats(t, "path "+force.String(), stats, len(matches))
		if stats.PathProbes[ex.Chosen] != 1 {
			t.Errorf("path %v: PathProbes[%v] = %d, want 1", force, ex.Chosen, stats.PathProbes[ex.Chosen])
		}
		if stats.Candidates == 0 {
			t.Errorf("path %v: query produced no candidates; invariant check is vacuous", force)
		}
	}
}

func TestStatsInvariantsTrailPath(t *testing.T) {
	opts := testOptions()
	opts.SubtrailLen = 8
	ix := buildTestIndex(t, opts, 12, 120)
	q, eps := invariantQuery(t, ix)
	var stats SearchStats
	matches, ex, err := ix.SearchPlanned(q, eps, UnboundedCosts(), engine.PathTrail, nil, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Chosen != engine.PathTrail {
		t.Fatalf("chosen path %v, want trail", ex.Chosen)
	}
	checkStats(t, "trail", stats, len(matches))
}

func TestStatsInvariantsDegraded(t *testing.T) {
	healthy := buildTestIndex(t, testOptions(), 8, 100)
	ix, err := NewDegradedIndex(healthy.Store(), testOptions(), "forced for test")
	if err != nil {
		t.Fatal(err)
	}
	q, eps := invariantQuery(t, ix)
	var stats SearchStats
	matches, ex, err := ix.SearchPlanned(q, eps, UnboundedCosts(), engine.PathAuto, nil, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Degraded {
		t.Fatal("degraded index did not report Degraded")
	}
	checkStats(t, "degraded", stats, len(matches))
	if stats.DegradedProbes != 1 || stats.PathProbes[engine.PathScan] != 1 {
		t.Errorf("degraded probes = %d, scan probes = %d; want 1, 1",
			stats.DegradedProbes, stats.PathProbes[engine.PathScan])
	}
}

func TestStatsInvariantsLongQuery(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 12, 120)
	n := ix.Options().WindowLen
	q := make(vec.Vector, 2*n)
	if err := ix.Store().Window(0, 3, 2*n, q, nil); err != nil {
		t.Fatal(err)
	}
	_, eps := invariantQuery(t, ix)
	for _, force := range []engine.PathKind{engine.PathAuto, engine.PathRTree, engine.PathScan} {
		var stats SearchStats
		matches, ex, err := ix.SearchLongPlanned(q, eps, UnboundedCosts(), force, &stats)
		if err != nil {
			t.Fatalf("path %v: %v", force, err)
		}
		checkStats(t, "long "+force.String(), stats, len(matches))
		if ex.Pieces < 2 {
			t.Fatalf("long query ran %d pieces, want >= 2", ex.Pieces)
		}
		total := 0
		for k := engine.PathKind(0); k < engine.NumPathKinds; k++ {
			total += stats.PathProbes[k]
		}
		if total != ex.Pieces {
			t.Errorf("long %v: %d path probes recorded, want %d (one per piece)", force, total, ex.Pieces)
		}
	}
}

func TestStatsInvariantsBatchAccumulate(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 12, 120)
	q, eps := invariantQuery(t, ix)
	q2 := make(vec.Vector, len(q))
	if err := ix.Store().Window(1, 10, len(q2), q2, nil); err != nil {
		t.Fatal(err)
	}
	var stats SearchStats
	queries := []BatchQuery{
		{Q: q, Eps: eps, Costs: UnboundedCosts()},
		{Q: q2, Eps: eps, Costs: UnboundedCosts()},
		{Q: q, Eps: eps / 2, Costs: UnboundedCosts()},
	}
	results, _, err := ix.SearchBatchPlanned(queries, engine.PathAuto, 2, &stats)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	checkStats(t, "batch", stats, total)
}

func TestCheckInvariantsDetectsDrift(t *testing.T) {
	s := SearchStats{Candidates: 10, FalseAlarms: 4, CostRejected: 1, Results: 3}
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("unbalanced ledger (10 != 4+1+3) must fail")
	} else if !strings.Contains(err.Error(), "Candidates") {
		t.Fatalf("error %q does not name the broken identity", err)
	}
	s.Results = 5
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("balanced ledger rejected: %v", err)
	}
	s.Candidates = -1
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("negative counter must fail")
	}
	s = SearchStats{DegradedProbes: 2}
	s.PathProbes[engine.PathScan] = 1
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("DegradedProbes > scan probes must fail")
	}
}

func TestSearchRecordsTraceAndMetrics(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	ix := buildTestIndex(t, testOptions(), 12, 120)
	q, eps := invariantQuery(t, ix)

	tracer := obs.NewTracer(4)
	ctx, root := tracer.StartTrace(context.Background(), "test-query")
	var stats SearchStats
	cm.once.Do(initCoreMetrics) // handles are lazily created on first record
	before := cm.searches.Value()
	_, ex, err := ix.SearchPlannedContext(ctx, q, eps, UnboundedCosts(), engine.PathAuto, nil, &stats)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	if stats.TraceID == "" {
		t.Fatal("traced search left stats.TraceID empty")
	}
	if ex.TraceID != stats.TraceID {
		t.Fatalf("explain trace %q != stats trace %q", ex.TraceID, stats.TraceID)
	}
	snap, ok := tracer.Get(stats.TraceID)
	if !ok {
		t.Fatalf("trace %s not retained", stats.TraceID)
	}
	var names []string
	for _, s := range snap.Spans {
		names = append(names, s.Name)
	}
	for _, want := range []string{"plan", "probe", "verify"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("trace is missing a %q span (spans: %v)", want, names)
		}
	}
	if got := cm.searches.Value(); got != before+1 {
		t.Errorf("scaleshift_searches_total advanced by %d, want 1", got-before)
	}
	if err := stats.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestUntracedSearchHasNoTraceID(t *testing.T) {
	ix := buildTestIndex(t, testOptions(), 8, 100)
	q, eps := invariantQuery(t, ix)
	var stats SearchStats
	_, ex, err := ix.SearchPlanned(q, eps, UnboundedCosts(), engine.PathAuto, nil, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TraceID != "" || ex.TraceID != "" {
		t.Fatalf("untraced search set TraceID %q / %q", stats.TraceID, ex.TraceID)
	}
}
