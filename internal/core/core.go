// Package core implements the paper's contribution: similarity search
// over time-series databases under scaling and shifting transformations
// (Chu & Wong, PODS '99).
//
// A sequence u is similar to v with error bound ε when some scale
// factor a and shift offset b make ‖a·u + b·N − v‖ ≤ ε (Definition 1).
// The Index answers range queries under this similarity over every
// sliding window of a sequence database, returning the optimal (a, b)
// per match, and supports cost bounds on the transformation, dynamic
// insertion, nearest-neighbour queries (Corollary 1), and long queries
// via multipiece search (§7).
//
// The pipeline follows §6 exactly:
//
//	pre-processing: slide a length-n window over every sequence,
//	    apply the Shift-Eliminated Transformation (Definition 2),
//	    reduce to 2·f_c dimensions with the DFT feature map, and
//	    insert the feature points into an R*-tree;
//	searching: descend only into children whose ε-enlarged MBR is
//	    penetrated by the query's SE-line (Theorem 3), collecting leaf
//	    points within ε of the line (Theorem 2, in feature space);
//	post-processing: fetch each candidate window, compute the exact
//	    distance and the optimal (a, b) (§5.2), and apply the user's
//	    transformation cost bounds.
//
// Feature-space search has no false dismissals because the SE and DFT
// maps are linear contractions; the post-processing step removes all
// false alarms, so results are exactly the brute-force answer set.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"scaleshift/internal/binio"
	"scaleshift/internal/dft"
	"scaleshift/internal/engine"
	"scaleshift/internal/geom"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// ReductionKind selects the dimension-reduction basis.
type ReductionKind int

const (
	// ReductionDFT keeps the first f_c complex DFT coefficients — the
	// paper's choice, following Faloutsos et al. [2].
	ReductionDFT ReductionKind = iota
	// ReductionHaar keeps the 2·f_c coarsest Haar wavelet rows — the
	// alternative family the paper cites (Chan & Fu [14]).  Requires a
	// power-of-two window length.
	ReductionHaar
)

// String names the reduction for tables and logs.
func (k ReductionKind) String() string {
	switch k {
	case ReductionDFT:
		return "dft"
	case ReductionHaar:
		return "haar"
	default:
		return "unknown"
	}
}

// Options configures an Index.  Start from DefaultOptions.
type Options struct {
	// WindowLen is the extracting-window length n (§6 pre-processing).
	WindowLen int
	// Coefficients is f_c, the number of DFT coefficients kept by the
	// dimension-reduction step; the index dimensionality is 2·f_c
	// (§7: 3 coefficients → a 6-dimensional R*-tree).  The Haar
	// reduction keeps 2·f_c rows so the index dimensionality matches.
	Coefficients int
	// Reduction selects the feature basis (default DFT, as in §7).
	Reduction ReductionKind
	// SubtrailLen, when >= 2, stores one leaf entry per run of that
	// many consecutive windows — the sub-trail MBR representation of
	// the ST-index ([2], which §6 builds on) — instead of one entry per
	// window.  The index shrinks by roughly that factor; searches
	// expand each qualifying trail back into its windows for the exact
	// post-check, so results are unchanged.  0 and 1 mean per-window
	// point entries (the paper's presentation).
	SubtrailLen int
	// Tree holds the R*-tree structural parameters.  Tree.Dim is
	// ignored; it is derived from Coefficients.
	Tree rtree.Config
	// Strategy selects the MBR penetration check (§7): experiment
	// set 2 uses geom.EnteringExiting, set 3 geom.BoundingSpheres.
	Strategy geom.Strategy
}

// DefaultOptions returns the paper's experimental configuration:
// window length 128, f_c = 3 (6 dims), M = 20, m = 8, p = 6, R* split,
// Entering/Exiting-Points penetration.
func DefaultOptions() Options {
	return Options{
		WindowLen:    128,
		Coefficients: 3,
		Tree:         rtree.DefaultConfig(6),
		Strategy:     geom.EnteringExiting,
	}
}

// CostBounds is the user-specified cost limit on transformations (§3):
// a match is reported only when its optimal scale factor lies in
// [ScaleMin, ScaleMax] and its shift offset in [ShiftMin, ShiftMax].
// Use UnboundedCosts to accept every transformation; the zero value
// accepts only a = b = 0.
type CostBounds struct {
	ScaleMin, ScaleMax float64
	ShiftMin, ShiftMax float64
}

// UnboundedCosts places no restriction on the transformation.
func UnboundedCosts() CostBounds {
	inf := math.Inf(1)
	return CostBounds{ScaleMin: -inf, ScaleMax: inf, ShiftMin: -inf, ShiftMax: inf}
}

// Allow reports whether a transformation with scale a and shift b is
// within bounds.
func (c CostBounds) Allow(a, b float64) bool {
	return a >= c.ScaleMin && a <= c.ScaleMax && b >= c.ShiftMin && b <= c.ShiftMax
}

// Match is one qualifying data subsequence.
type Match struct {
	// Seq and Start address the window inside the store; Name is the
	// sequence's name.
	Seq, Start int
	Name       string
	// Dist is the exact minimum D₂(F_{a,b}(Q), S').
	Dist float64
	// Scale and Shift are the optimal transformation (§5.2).
	Scale, Shift float64
}

// SearchStats accounts one query in the paper's cost model, extended
// with the query engine's per-stage accounting: how long each stage
// (plan, probe, verify) took and which access path served each probe.
// Candidates counts windows emitted by the probe stage; FalseAlarms +
// CostRejected count those pruned by verification; Results counts
// those matched.
type SearchStats struct {
	// IndexNodeAccesses counts R*-tree pages read.
	IndexNodeAccesses int
	// DataPageAccesses counts distinct data pages fetched during
	// post-processing.
	DataPageAccesses int
	// Candidates counts leaf hits forwarded to post-processing.
	Candidates int
	// FalseAlarms counts candidates rejected by the exact check.
	FalseAlarms int
	// CostRejected counts exact matches rejected by the cost bounds.
	CostRejected int
	// Results counts reported matches.
	Results int
	// LeafEntriesChecked counts leaf feature points compared.
	LeafEntriesChecked int
	// Penetration counts geometric pruning primitives.
	Penetration geom.CheckStats
	// PlanTime, ProbeTime, and VerifyTime are the wall-clock totals of
	// the engine's three execution stages.
	PlanTime, ProbeTime, VerifyTime time.Duration
	// PathProbes counts index-phase probes served by each access path
	// (one per range query; one per piece for multipiece long
	// queries), indexed by engine.PathKind.
	PathProbes [engine.NumPathKinds]int
	// DegradedProbes counts probes answered in degraded mode (scan
	// fallback after the index artifact failed validation); nonzero
	// means results were exact but index acceleration was lost.
	DegradedProbes int
	// TraceID references the obs trace recorded for this query, when
	// the search ran under a traced context (obs.Tracer.StartTrace);
	// empty otherwise.  Accumulating stats across queries keeps the
	// first ID.
	TraceID string
}

// PageAccesses returns the total page count (index + data), the
// quantity plotted in Figure 5.
func (s SearchStats) PageAccesses() int {
	return s.IndexNodeAccesses + s.DataPageAccesses
}

// Add accumulates o into s.
func (s *SearchStats) Add(o SearchStats) {
	s.IndexNodeAccesses += o.IndexNodeAccesses
	s.DataPageAccesses += o.DataPageAccesses
	s.Candidates += o.Candidates
	s.FalseAlarms += o.FalseAlarms
	s.CostRejected += o.CostRejected
	s.Results += o.Results
	s.LeafEntriesChecked += o.LeafEntriesChecked
	s.Penetration.Add(o.Penetration)
	s.PlanTime += o.PlanTime
	s.ProbeTime += o.ProbeTime
	s.VerifyTime += o.VerifyTime
	for i := range s.PathProbes {
		s.PathProbes[i] += o.PathProbes[i]
	}
	s.DegradedProbes += o.DegradedProbes
	if s.TraceID == "" {
		s.TraceID = o.TraceID
	}
}

// CheckInvariants verifies the accounting identities that range-query
// stats must satisfy, however they were accumulated (single queries,
// long queries, batches, any access path, degraded mode):
//
//   - every candidate emitted by a probe is classified exactly once:
//     Candidates == FalseAlarms + CostRejected + Results;
//   - no counter is negative;
//   - degraded probes are scan probes, so DegradedProbes cannot
//     exceed PathProbes[PathScan].
//
// It applies to range-query accounting only: nearest-neighbour search
// counts refined candidates without classifying them, so NN stats are
// exempt.  Tests assert this across every access path; production
// callers can use it as a cheap self-check on aggregated telemetry.
func (s SearchStats) CheckInvariants() error {
	for _, c := range []struct {
		name  string
		value int
	}{
		{"IndexNodeAccesses", s.IndexNodeAccesses},
		{"DataPageAccesses", s.DataPageAccesses},
		{"Candidates", s.Candidates},
		{"FalseAlarms", s.FalseAlarms},
		{"CostRejected", s.CostRejected},
		{"Results", s.Results},
		{"LeafEntriesChecked", s.LeafEntriesChecked},
		{"DegradedProbes", s.DegradedProbes},
	} {
		if c.value < 0 {
			return fmt.Errorf("core: SearchStats invariant violated: %s = %d < 0", c.name, c.value)
		}
	}
	if got := s.FalseAlarms + s.CostRejected + s.Results; s.Candidates != got {
		return fmt.Errorf("core: SearchStats invariant violated: Candidates = %d but FalseAlarms+CostRejected+Results = %d+%d+%d = %d",
			s.Candidates, s.FalseAlarms, s.CostRejected, s.Results, got)
	}
	if s.DegradedProbes > s.PathProbes[engine.PathScan] {
		return fmt.Errorf("core: SearchStats invariant violated: DegradedProbes = %d exceeds scan probes %d",
			s.DegradedProbes, s.PathProbes[engine.PathScan])
	}
	return nil
}

// Index is the scale/shift-invariant subsequence index of §6.
// Mutating methods must not run concurrently with searches.
type Index struct {
	opts Options
	st   *store.Store
	fmap *dft.FeatureMap
	tree *rtree.Tree
	// flat, when non-nil, is the frozen pointer-free serving
	// representation; every search routes through it (qtree) and
	// structural mutation thaws it back into tree first.
	flat *rtree.FlatTree
	// mapping backs flat when the index was opened zero-copy from a
	// file (LoadIndexFile); the arena's arrays alias it, so it must
	// outlive the last search.  artifact is the whole mapped frame,
	// kept for the deferred VerifyArtifact pass.
	mapping  *binio.Mapping
	artifact []byte
	// indexed tracks how many windows of each sequence are indexed, so
	// dynamic extension indexes only the new ones.
	indexed []int
	// planner routes every range query through one of the engine's
	// access paths (paths.go); its paths read the live tree through
	// the Index, so rebuilds need no re-registration.
	planner *engine.Planner
	// degraded, when non-empty, records why the index artifact could
	// not be loaded (see OpenOrRebuild): the tree is empty but indexed
	// covers every window, so the scan path still answers every query
	// exactly.  A degraded index is read-only and refuses to
	// serialize.
	degraded string
}

// NewIndex creates an empty index over st.  Sequences already in st
// are not indexed until Build (or IndexSequence) is called.
func NewIndex(st *store.Store, opts Options) (*Index, error) {
	if opts.WindowLen < 3 {
		return nil, fmt.Errorf("core: window length %d too short", opts.WindowLen)
	}
	var fmap *dft.FeatureMap
	var err error
	switch opts.Reduction {
	case ReductionDFT:
		fmap, err = dft.NewFeatureMap(opts.WindowLen, opts.Coefficients)
	case ReductionHaar:
		fmap, err = dft.NewHaarMap(opts.WindowLen, 2*opts.Coefficients)
	default:
		return nil, fmt.Errorf("core: unknown reduction kind %d", int(opts.Reduction))
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg := opts.Tree
	cfg.Dim = fmap.Dim()
	tree, err := rtree.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	switch opts.Strategy {
	case geom.EnteringExiting, geom.BoundingSpheres:
	default:
		return nil, fmt.Errorf("core: unknown penetration strategy %d", int(opts.Strategy))
	}
	if opts.SubtrailLen < 0 {
		return nil, fmt.Errorf("core: negative SubtrailLen %d", opts.SubtrailLen)
	}
	ix := &Index{opts: opts, st: st, fmap: fmap, tree: tree}
	ix.planner = ix.newPlanner()
	return ix, nil
}

// trailMode reports whether leaf entries are sub-trail MBRs.
func (ix *Index) trailMode() bool { return ix.opts.SubtrailLen >= 2 }

// Degraded reports whether the index is serving in degraded mode
// (scan fallback over the raw store; see OpenOrRebuild) and why.
func (ix *Index) Degraded() (bool, string) {
	return ix.degraded != "", ix.degraded
}

// checkMutable rejects structural mutation of a degraded index: with
// no tree to keep consistent, inserts and deletes would silently
// desynchronize the indexed-window accounting the scan path relies
// on.  Rebuild from the store instead.  A frozen index is mutable —
// it is thawed back to the pointer representation first.
func (ix *Index) checkMutable() error {
	if ix.degraded != "" {
		return fmt.Errorf("core: index is degraded (%s); rebuild it before mutating", ix.degraded)
	}
	return ix.thaw()
}

// trailRect computes the MBR of the features of windows
// [first, first+count) of sequence seq, using the direct transform so
// the result is bit-reproducible from any starting call (required for
// DeleteRect on dynamic updates).
func (ix *Index) trailRect(seq, first, count int) (geom.Rect, error) {
	n := ix.opts.WindowLen
	w := make(vec.Vector, n)
	se := make(vec.Vector, n)
	feat := make(vec.Vector, ix.fmap.Dim())
	var r geom.Rect
	for i := 0; i < count; i++ {
		if err := ix.st.Window(seq, first+i, n, w, nil); err != nil {
			return geom.Rect{}, err
		}
		vec.SETransformInPlace(se, w)
		ix.fmap.TransformInto(feat, se)
		if i == 0 {
			r = geom.RectFromPoint(feat)
		} else {
			r.ExtendPoint(feat)
		}
	}
	return r, nil
}

// indexSequenceTrails is IndexSequence for trail mode: trails are
// aligned to multiples of SubtrailLen; a partial trailing trail is
// replaced when the sequence has grown since the last call.
func (ix *Index) indexSequenceTrails(seq int) error {
	n := ix.opts.WindowLen
	k := ix.opts.SubtrailLen
	L := ix.st.SequenceLen(seq)
	lastStart := L - n
	from := ix.indexed[seq]
	if lastStart < 0 || from > lastStart {
		return nil // nothing new
	}
	if rem := from % k; rem != 0 {
		// A partial trail [g0, from) was inserted earlier; replace it.
		g0 := from - rem
		r, err := ix.trailRect(seq, g0, rem)
		if err != nil {
			return fmt.Errorf("core: trail indexing: %w", err)
		}
		if !ix.tree.DeleteRect(r, store.EncodeWindowID(seq, g0)) {
			return fmt.Errorf("core: partial trail (%d, %d) missing from tree", seq, g0)
		}
		from = g0
	}
	for g := from; g <= lastStart; g += k {
		count := k
		if g+count-1 > lastStart {
			count = lastStart - g + 1
		}
		r, err := ix.trailRect(seq, g, count)
		if err != nil {
			return fmt.Errorf("core: trail indexing: %w", err)
		}
		ix.tree.InsertRect(r, store.EncodeWindowID(seq, g))
		ix.indexed[seq] = g + count
	}
	return nil
}

// trailWindows returns the first window and window count covered by
// the trail starting at first in sequence seq.
func (ix *Index) trailWindows(seq, first int) (count int) {
	k := ix.opts.SubtrailLen
	limit := ix.indexed[seq]
	count = k
	if first+count > limit {
		count = limit - first
	}
	return count
}

// Options returns the index configuration.
func (ix *Index) Options() Options { return ix.opts }

// SetStrategy switches the MBR penetration check used by subsequent
// searches.  The index structure is independent of the strategy, so
// the paper's experiment sets 2 and 3 can share one index.
func (ix *Index) SetStrategy(s geom.Strategy) error {
	switch s {
	case geom.EnteringExiting, geom.BoundingSpheres:
		ix.opts.Strategy = s
		return nil
	default:
		return fmt.Errorf("core: unknown penetration strategy %d", int(s))
	}
}

// Store returns the underlying sequence store.
func (ix *Index) Store() *store.Store { return ix.st }

// QueryWindow reads window [start, start+n) of sequence seq for
// serving-layer use.  On an Index the store is immutable, so this is
// Store().Window; the segmented counterpart reads through the
// published manifest's snapshot so the read cannot race with appends.
func (ix *Index) QueryWindow(seq, start, n int, dst vec.Vector) error {
	return ix.st.Window(seq, start, n, dst, nil)
}

// StoreShape reports the store's sequence, value, and page counts for
// serving-layer gauges; see QueryWindow for the concurrency contract.
func (ix *Index) StoreShape() (seqs, values, pages int) {
	return ix.st.NumSequences(), ix.st.TotalValues(), ix.st.PageCount()
}

// WindowCount returns the number of indexed windows.  On a degraded
// index this is the number of scannable windows — the tree is empty,
// but every window of the raw store remains searchable.
func (ix *Index) WindowCount() int {
	if !ix.trailMode() && ix.degraded == "" {
		return ix.qtree().Len()
	}
	total := 0
	for _, c := range ix.indexed {
		total += c
	}
	return total
}

// EntryCount returns the number of leaf entries in the tree — equal to
// WindowCount for point mode, and the number of sub-trail MBRs in
// trail mode.
func (ix *Index) EntryCount() int { return ix.qtree().Len() }

// IndexPageCount returns the number of index pages (tree nodes).
func (ix *Index) IndexPageCount() int { return ix.qtree().NodeCount() }

// TreeHeight returns the R*-tree height.
func (ix *Index) TreeHeight() int { return ix.qtree().Height() }

// WriteIndexStats renders per-level geometry statistics of the
// directory (occupancy, MBR elongation, circumscribed/inscribed sphere
// gap) — the numbers behind §7's explanation of the bounding-spheres
// failure.
func (ix *Index) WriteIndexStats(w io.Writer) error { return ix.qtree().WriteStats(w) }

// Build indexes every not-yet-indexed window of every sequence
// currently in the store (§6 pre-processing).
func (ix *Index) Build() error {
	if err := ix.checkMutable(); err != nil {
		return err
	}
	for seq := 0; seq < ix.st.NumSequences(); seq++ {
		if err := ix.IndexSequence(seq); err != nil {
			return err
		}
	}
	return nil
}

// BuildBulk indexes every window of every sequence by building the
// R*-tree with Sort-Tile-Recursive bulk loading instead of one-by-one
// insertion — typically an order of magnitude faster and producing a
// tighter tree.  It requires an empty index; dynamic insertion and
// removal work normally afterwards.
func (ix *Index) BuildBulk() error {
	if err := ix.checkMutable(); err != nil {
		return err
	}
	if ix.tree.Len() != 0 {
		return fmt.Errorf("core: BuildBulk requires an empty index (have %d windows)", ix.tree.Len())
	}
	if ix.trailMode() {
		// Trail entries are rectangles; STR bulk loading packs points.
		// Trail indexes are already ~SubtrailLen× smaller, so plain
		// insertion is fast enough.
		return ix.Build()
	}
	var items []rtree.Item
	ix.indexed = make([]int, ix.st.NumSequences())
	feat := make(vec.Vector, ix.fmap.Dim())
	for seq := 0; seq < ix.st.NumSequences(); seq++ {
		err := ix.featureWindows(seq, 0, func(start int, f vec.Vector) error {
			items = append(items, rtree.Item{
				Point: f.Clone(),
				ID:    store.EncodeWindowID(seq, start),
			})
			ix.indexed[seq] = start + 1
			return nil
		}, feat)
		if err != nil {
			return fmt.Errorf("core: bulk indexing: %w", err)
		}
	}
	cfg := ix.opts.Tree
	cfg.Dim = ix.fmap.Dim()
	tree, err := rtree.BulkLoad(cfg, items)
	if err != nil {
		return fmt.Errorf("core: bulk loading: %w", err)
	}
	ix.tree = tree
	return nil
}

// BuildBulkParallel is BuildBulk with the pre-processing fanned out
// over a bounded worker pool: feature extraction is sharded across
// sequences and across featureCheckpoint-aligned segments (each
// segment restarts the sliding DFT, so its features are
// bit-reproducible no matter which worker computes them and land at
// precomputed slots), and the STR bulk load parallelizes its sort and
// tiling passes.  workers < 1 means runtime.GOMAXPROCS(0).  The
// resulting tree is identical to the sequential BuildBulk tree.
func (ix *Index) BuildBulkParallel(workers int) error {
	return ix.BuildBulkParallelContext(context.Background(), workers)
}

// BuildBulkParallelContext is BuildBulkParallel with cooperative
// cancellation: workers poll ctx between checkpoint segments (each
// segment is at most featureCheckpoint windows of O(f_c) work, so
// cancellation latency is bounded by one segment) and the build
// returns ctx.Err() with the index left empty and reusable.  A panic
// in any worker — one poisoned sequence, say — is recovered into a
// *WorkerPanicError naming the offending (seq, window) instead of
// crashing the process.
func (ix *Index) BuildBulkParallelContext(ctx context.Context, workers int) error {
	if err := ix.checkMutable(); err != nil {
		return err
	}
	if ix.tree.Len() != 0 {
		return fmt.Errorf("core: BuildBulkParallel requires an empty index (have %d windows)", ix.tree.Len())
	}
	if ix.trailMode() {
		// Trail entries are rectangles; STR bulk loading packs points.
		return ix.Build()
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := ix.opts.WindowLen
	nSeq := ix.st.NumSequences()
	ix.indexed = make([]int, nSeq)

	// Per-sequence item offsets: window (seq, s) goes to slot
	// base[seq]+s, making the item order independent of scheduling.
	base := make([]int, nSeq+1)
	type segment struct{ seq, cp, segLast int }
	var segs []segment
	for seq := 0; seq < nSeq; seq++ {
		count := ix.st.SequenceLen(seq) - n + 1
		if count < 0 {
			count = 0
		}
		base[seq+1] = base[seq] + count
		lastStart := count - 1
		for cp := 0; cp <= lastStart; cp += featureCheckpoint {
			segLast := cp + featureCheckpoint - 1
			if segLast > lastStart {
				segLast = lastStart
			}
			segs = append(segs, segment{seq, cp, segLast})
		}
		ix.indexed[seq] = count
	}
	items := make([]rtree.Item, base[nSeq])
	if workers > len(segs) {
		workers = len(segs)
	}

	next := make(chan segment, len(segs))
	for _, sg := range segs {
		next <- sg
	}
	close(next)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			curSeq, curStart := -1, -1
			defer recoverWorkerPanic("bulk build", &curSeq, &curStart, &errs[g])
			sc := ix.newSegScratch()
			feat := make(vec.Vector, ix.fmap.Dim())
			for sg := range next {
				if err := ctx.Err(); err != nil {
					errs[g] = err
					return
				}
				curSeq, curStart = sg.seq, sg.cp
				off := base[sg.seq]
				err := ix.featureSegment(sg.seq, sg.cp, sg.segLast, sg.cp, sc, feat, func(start int, f vec.Vector) error {
					curStart = start
					items[off+start] = rtree.Item{
						Point: f.Clone(),
						ID:    store.EncodeWindowID(sg.seq, start),
					}
					return nil
				})
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Prefer reporting a real failure over a bare context error: if a
	// worker panicked or hit I/O trouble while another saw the
	// cancellation, the cause is the more useful message.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ctxErr = err
			continue
		}
		ix.indexed = make([]int, nSeq)
		return fmt.Errorf("core: parallel bulk indexing: %w", err)
	}
	if ctxErr != nil {
		ix.indexed = make([]int, nSeq)
		return ctxErr
	}

	cfg := ix.opts.Tree
	cfg.Dim = ix.fmap.Dim()
	tree, err := rtree.BulkLoadParallel(cfg, items, workers)
	if err != nil {
		ix.indexed = make([]int, nSeq)
		return fmt.Errorf("core: parallel bulk loading: %w", err)
	}
	ix.tree = tree
	return nil
}

// IndexSequence indexes the windows of sequence seq that are not yet
// indexed.  It is idempotent and supports sequences that grew since
// the last call (requirement 2 of §3).
func (ix *Index) IndexSequence(seq int) error {
	if err := ix.checkMutable(); err != nil {
		return err
	}
	if seq < 0 || seq >= ix.st.NumSequences() {
		return fmt.Errorf("core: sequence %d out of range [0, %d)", seq, ix.st.NumSequences())
	}
	for len(ix.indexed) <= seq {
		ix.indexed = append(ix.indexed, 0)
	}
	if ix.trailMode() {
		return ix.indexSequenceTrails(seq)
	}
	n := ix.opts.WindowLen
	L := ix.st.SequenceLen(seq)
	from := ix.indexed[seq]
	if from+n > L {
		return nil // nothing new to index
	}
	feat := make(vec.Vector, ix.fmap.Dim())
	err := ix.featureWindows(seq, from, func(start int, f vec.Vector) error {
		ix.tree.Insert(f, store.EncodeWindowID(seq, start))
		ix.indexed[seq] = start + 1
		return nil
	}, feat)
	if err != nil {
		return fmt.Errorf("core: indexing: %w", err)
	}
	return nil
}

// featureWindows streams the feature point of every window of sequence
// seq from position from onward into fn, reusing feat as the output
// buffer.  For the DFT basis the features are computed incrementally
// with the sliding recurrence of [2] — O(f_c) per window instead of
// O(n·f_c) — exploiting that the retained non-DC coefficients are
// unaffected by mean removal, so raw windows yield SE features.
// featureCheckpoint is the absolute window-start stride at which the
// sliding DFT restarts from scratch.  Restarting at fixed checkpoints
// makes every window's feature bit-reproducible no matter where a
// featureWindows call begins — required so dynamic extension
// (ExtendAndIndex) and later deletion (UnindexSequence) regenerate
// exactly the stored feature points — and bounds floating-point drift
// as a side effect.
const featureCheckpoint = 256

func (ix *Index) featureWindows(seq, from int, fn func(start int, f vec.Vector) error, feat vec.Vector) error {
	n := ix.opts.WindowLen
	lastStart := ix.st.SequenceLen(seq) - n
	if from > lastStart {
		return nil
	}
	sc := ix.newSegScratch()
	for cp := from - from%featureCheckpoint; cp <= lastStart; cp += featureCheckpoint {
		segLast := cp + featureCheckpoint - 1
		if segLast > lastStart {
			segLast = lastStart
		}
		if err := ix.featureSegment(seq, cp, segLast, from, sc, feat, fn); err != nil {
			return err
		}
	}
	return nil
}

// segScratch holds the per-worker buffers of one feature-extraction
// stream: raw spans a checkpoint segment's samples for the sliding
// DFT; w and se serve the direct (Haar) transform.
type segScratch struct {
	raw, w, se vec.Vector
}

func (ix *Index) newSegScratch() *segScratch {
	n := ix.opts.WindowLen
	if ix.opts.Reduction == ReductionDFT {
		return &segScratch{raw: make(vec.Vector, n+featureCheckpoint-1)}
	}
	return &segScratch{w: make(vec.Vector, n), se: make(vec.Vector, n)}
}

// featureSegment streams the features of windows [max(cp, from),
// segLast] of sequence seq into fn, where cp is a checkpoint-aligned
// segment start.  The sliding DFT restarts from scratch at cp, so the
// emitted features depend only on (seq, cp) — any caller that respects
// checkpoint alignment reproduces them bit-identically, which is what
// lets the parallel build shard segments across workers.
func (ix *Index) featureSegment(seq, cp, segLast, from int, sc *segScratch, feat vec.Vector, fn func(start int, f vec.Vector) error) error {
	n := ix.opts.WindowLen
	if ix.opts.Reduction == ReductionDFT {
		span := segLast - cp + n // samples covering windows [cp, segLast]
		if err := ix.st.Window(seq, cp, span, sc.raw[:span], nil); err != nil {
			return err
		}
		slider, err := dft.NewSlidingTransformer(ix.fmap, sc.raw[:n])
		if err != nil {
			return err
		}
		for s := cp; s <= segLast; s++ {
			if s > cp {
				slider.Slide(sc.raw[s-cp+n-1])
			}
			if s < from {
				continue
			}
			slider.Feature(feat)
			if err := fn(s, feat); err != nil {
				return err
			}
		}
		return nil
	}
	start := cp
	if start < from {
		start = from
	}
	for ; start <= segLast; start++ {
		if err := ix.st.Window(seq, start, n, sc.w, nil); err != nil {
			return err
		}
		vec.SETransformInPlace(sc.se, sc.w)
		ix.fmap.TransformInto(feat, sc.se)
		if err := fn(start, feat); err != nil {
			return err
		}
	}
	return nil
}

// AppendAndIndex appends a new sequence to the store and indexes its
// windows, returning the sequence id.
func (ix *Index) AppendAndIndex(name string, values []float64) (int, error) {
	if err := ix.checkMutable(); err != nil {
		return -1, err
	}
	seq := ix.st.AppendSequence(name, values)
	if err := ix.IndexSequence(seq); err != nil {
		return seq, err
	}
	return seq, nil
}

// ExtendAndIndex appends new samples to the store's most recent
// sequence and indexes the windows they complete — including the
// windows spanning the old end (requirement 2 of §3: time series are
// collected regularly and must become searchable as they arrive).
func (ix *Index) ExtendAndIndex(seq int, values []float64) error {
	if err := ix.checkMutable(); err != nil {
		return err
	}
	if err := ix.st.ExtendSequence(seq, values); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return ix.IndexSequence(seq)
}

// UnindexSequence removes every indexed window of sequence seq from
// the tree.  The raw data remains in the store (the store is
// append-only) but the windows will no longer be found by searches.
func (ix *Index) UnindexSequence(seq int) error {
	if err := ix.checkMutable(); err != nil {
		return err
	}
	if seq < 0 || seq >= len(ix.indexed) {
		return fmt.Errorf("core: sequence %d not indexed", seq)
	}
	limit := ix.indexed[seq]
	if ix.trailMode() {
		k := ix.opts.SubtrailLen
		for g := 0; g < limit; g += k {
			count := k
			if g+count > limit {
				count = limit - g
			}
			r, err := ix.trailRect(seq, g, count)
			if err != nil {
				return fmt.Errorf("core: unindexing: %w", err)
			}
			if !ix.tree.DeleteRect(r, store.EncodeWindowID(seq, g)) {
				return fmt.Errorf("core: trail (%d, %d) missing from tree", seq, g)
			}
		}
		ix.indexed[seq] = 0
		return nil
	}
	feat := make(vec.Vector, ix.fmap.Dim())
	// Regenerate the stored feature points with featureWindows so they
	// are bit-identical to what Build/IndexSequence inserted (the
	// sliding DFT path differs from the direct transform by float
	// rounding).
	err := ix.featureWindows(seq, 0, func(start int, f vec.Vector) error {
		if start >= limit {
			return nil
		}
		if !ix.tree.Delete(f, store.EncodeWindowID(seq, start)) {
			return fmt.Errorf("core: window (%d, %d) missing from tree", seq, start)
		}
		return nil
	}, feat)
	if err != nil {
		return fmt.Errorf("core: unindexing: %w", err)
	}
	ix.indexed[seq] = 0
	return nil
}

// numericSlack bounds the floating-point error of the feature-space
// point-to-line distance.  Computing PLD near zero cancels
// catastrophically, with absolute error on the order of
// ‖point‖·√ε_machine ≈ 1.5e-8·‖point‖; the slack widens the index
// phase's epsilon by a conservative multiple of the largest point norm
// in the tree so that no true match is dismissed by rounding.  The
// exact post-processing check reapplies the caller's epsilon, so the
// widening never adds false results.
func (ix *Index) numericSlack() float64 {
	bounds, ok := ix.qtree().Bounds()
	return slackFromBounds(bounds, ok, ix.fmap.Dim())
}

// slackFromBounds is numericSlack over explicit tree bounds, shared
// with the segmented index (whose slack spans every frozen segment).
func slackFromBounds(bounds geom.Rect, ok bool, dim int) float64 {
	if !ok {
		return 0
	}
	var m float64
	for i := range bounds.L {
		m = math.Max(m, math.Max(math.Abs(bounds.L[i]), math.Abs(bounds.H[i])))
	}
	return 1e-7 * m * math.Sqrt(float64(dim))
}

// seLine returns the query's SE-line image in feature space: the line
// {t·F(T_se(q))} through the origin (§5.1 property 3; linear maps send
// lines through the origin to lines through the origin).
func (ix *Index) seLine(q vec.Vector) vec.Line {
	return seLineFor(ix.fmap, q)
}

func seLineFor(fmap *dft.FeatureMap, q vec.Vector) vec.Line {
	se := vec.SETransform(q)
	d := fmap.Transform(se)
	return vec.Line{P: make(vec.Vector, fmap.Dim()), D: d}
}
