package cluster

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

func testStore(t *testing.T, companies, days int) *store.Store {
	t.Helper()
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = companies
	cfg.Days = days
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestAssignShardDeterministicAndTotal(t *testing.T) {
	for shards := 1; shards <= 5; shards++ {
		for i := 0; i < 100; i++ {
			name := fmt.Sprintf("SEQ-%04d", i)
			a := AssignShard(name, shards)
			if a < 0 || a >= shards {
				t.Fatalf("AssignShard(%q, %d) = %d out of range", name, shards, a)
			}
			if b := AssignShard(name, shards); b != a {
				t.Fatalf("AssignShard not deterministic: %d then %d", a, b)
			}
		}
	}
}

func TestPartitionCoversStoreExactly(t *testing.T) {
	st := testStore(t, 17, 60)
	parts, man, err := Partition(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := man.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if man.Sequences != st.NumSequences() {
		t.Fatalf("manifest sequences %d, store %d", man.Sequences, st.NumSequences())
	}
	// Every global sequence's bytes must land, unchanged, at the
	// (shard, local) address the manifest records.
	total := 0
	for s, p := range parts {
		total += p.NumSequences()
		for local, global := range man.Shards[s].Seqs {
			if got, want := p.SequenceName(local), st.SequenceName(global); got != want {
				t.Fatalf("shard %d local %d name %q, want %q", s, local, got, want)
			}
			n := st.SequenceLen(global)
			if p.SequenceLen(local) != n {
				t.Fatalf("shard %d local %d len %d, want %d", s, local, p.SequenceLen(local), n)
			}
			a, b := make([]float64, n), make([]float64, n)
			if err := p.Window(local, 0, n, a, nil); err != nil {
				t.Fatal(err)
			}
			if err := st.Window(global, 0, n, b, nil); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("shard %d local %d values differ from global %d", s, local, global)
			}
		}
	}
	if total != st.NumSequences() {
		t.Fatalf("shards hold %d sequences, store has %d", total, st.NumSequences())
	}
	// Owner inverts the partition.
	for g := 0; g < man.Sequences; g++ {
		s, local, err := man.Owner(g)
		if err != nil {
			t.Fatal(err)
		}
		if man.Shards[s].Seqs[local] != g {
			t.Fatalf("Owner(%d) = (%d, %d), but Seqs[%d] = %d", g, s, local, local, man.Shards[s].Seqs[local])
		}
	}
}

func TestManifestRoundTripAndCorruption(t *testing.T) {
	st := testStore(t, 9, 50)
	_, man, err := Partition(st, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := man.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, man) {
		t.Fatalf("round trip changed the manifest")
	}
	// One flipped payload bit must be a typed load error.
	raw := buf.Bytes()
	raw[len(raw)-3] ^= 0x40
	if _, err := ReadManifest(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted manifest loaded without error")
	}
}

func TestManifestValidateRejectsBadPartitions(t *testing.T) {
	cases := []struct {
		name string
		m    Manifest
	}{
		{"duplicate", Manifest{Sequences: 2, Shards: []ManifestShard{{ID: 0, Seqs: []int{0, 1}}, {ID: 1, Seqs: []int{1}}}}},
		{"gap", Manifest{Sequences: 3, Shards: []ManifestShard{{ID: 0, Seqs: []int{0}}, {ID: 1, Seqs: []int{2}}}}},
		{"out_of_range", Manifest{Sequences: 2, Shards: []ManifestShard{{ID: 0, Seqs: []int{0, 2}}, {ID: 1, Seqs: []int{1}}}}},
		{"non_ascending", Manifest{Sequences: 2, Shards: []ManifestShard{{ID: 0, Seqs: []int{1, 0}}, {ID: 1, Seqs: nil}}}},
		{"bad_ids", Manifest{Sequences: 1, Shards: []ManifestShard{{ID: 1, Seqs: []int{0}}}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken partition", tc.name)
		}
	}
}

func TestMergeRangeOrdersAndDedups(t *testing.T) {
	a := []WireMatch{{Seq: 0, Start: 3, Dist: 1}, {Seq: 2, Start: 1, Dist: 2}}
	b := []WireMatch{{Seq: 1, Start: 9, Dist: 3}, {Seq: 2, Start: 0, Dist: 4}}
	got := MergeRange([][]WireMatch{a, b})
	want := []WireMatch{
		{Seq: 0, Start: 3, Dist: 1},
		{Seq: 1, Start: 9, Dist: 3},
		{Seq: 2, Start: 0, Dist: 4},
		{Seq: 2, Start: 1, Dist: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeRange = %+v, want %+v", got, want)
	}
	// A misconfigured topology serving the same slice twice must not
	// duplicate answers.
	got = MergeRange([][]WireMatch{a, a, b})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeRange with duplicated shard = %+v, want %+v", got, want)
	}
}

func TestMergeKNNGlobalTopK(t *testing.T) {
	perShard := [][]WireMatch{
		{{Seq: 0, Start: 0, Dist: 0.1}, {Seq: 0, Start: 7, Dist: 0.9}},
		{{Seq: 3, Start: 2, Dist: 0.2}, {Seq: 3, Start: 5, Dist: 0.3}, {Seq: 4, Start: 0, Dist: 5}},
		{},
		{{Seq: 7, Start: 1, Dist: 0.25}},
	}
	got := MergeKNN(perShard, 3)
	want := []WireMatch{
		{Seq: 0, Start: 0, Dist: 0.1},
		{Seq: 3, Start: 2, Dist: 0.2},
		{Seq: 7, Start: 1, Dist: 0.25},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeKNN = %+v, want %+v", got, want)
	}
	if n := len(MergeKNN(perShard, 100)); n != 6 {
		t.Fatalf("MergeKNN with k beyond supply returned %d of 6", n)
	}
	if MergeKNN(perShard, 0) != nil {
		t.Fatal("MergeKNN(k=0) should be empty")
	}
	// Distance ties break deterministically on (Seq, Start).
	tied := [][]WireMatch{
		{{Seq: 5, Start: 0, Dist: 1}},
		{{Seq: 2, Start: 3, Dist: 1}, {Seq: 2, Start: 9, Dist: 1}},
	}
	gotTied := MergeKNN(tied, 2)
	if gotTied[0].Seq != 2 || gotTied[0].Start != 3 || gotTied[1].Seq != 2 || gotTied[1].Start != 9 {
		t.Fatalf("tie break wrong: %+v", gotTied)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint([]string{"A", "B", "C"})
	if Fingerprint([]string{"A", "B", "C"}) != base {
		t.Fatal("fingerprint not deterministic")
	}
	for _, names := range [][]string{{"A", "C", "B"}, {"A", "B"}, {"AB", "C"}, {"A", "BC"}} {
		if Fingerprint(names) == base {
			t.Fatalf("fingerprint collision with %v", names)
		}
	}
}

func TestMergeRangeBitExactFloats(t *testing.T) {
	// The merge must pass distances through untouched — compare bits,
	// not values, to catch any accidental arithmetic.
	d := math.Nextafter(0.1, 1)
	got := MergeRange([][]WireMatch{{{Seq: 0, Start: 0, Dist: d}}})
	if math.Float64bits(got[0].Dist) != math.Float64bits(d) {
		t.Fatal("MergeRange altered a distance")
	}
}
