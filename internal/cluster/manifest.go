package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"scaleshift/internal/atomicfile"
	"scaleshift/internal/store"
)

// The SSMAN artifact: a small checksummed manifest describing one
// deterministic hash-partitioning of a store across N shards.  ssgen
// -shards writes it next to the per-shard artifact directories; the
// coordinator refuses to start without one that matches what the live
// shards report.  Layout:
//
//	"SSMAN\x01"  | uint32 LE payload CRC32C | uint32 LE payload length | JSON payload
//
// Every byte after the magic is covered by the checksum, so a torn or
// bit-flipped manifest is a typed load error, never a silently-wrong
// shard map.

// manifestMagic identifies the artifact and its version.
const manifestMagic = "SSMAN\x01"

// ManifestName is the conventional file name ssgen writes inside the
// shard output directory.
const ManifestName = "cluster.ssman"

// ErrManifest wraps any manifest load failure.
type ErrManifest struct {
	Path string
	Err  error
}

func (e *ErrManifest) Error() string {
	return fmt.Sprintf("cluster manifest %s unusable: %v (regenerate with ssgen -shards)", e.Path, e.Err)
}

func (e *ErrManifest) Unwrap() error { return e.Err }

// ManifestShard records one shard's slice of the partition.
type ManifestShard struct {
	// ID is the shard's position; -shard-addrs is ordered by it.
	ID int `json:"id"`
	// Dir is the artifact directory relative to the manifest, as
	// written by ssgen ("shard0", "shard1", ...).
	Dir string `json:"dir"`
	// Seqs lists the global sequence ids this shard holds, in
	// shard-local order: the shard's local sequence i is the cluster's
	// sequence Seqs[i].  This is the coordinator's remap table.
	Seqs []int `json:"seqs"`
	// Fingerprint is Fingerprint() over the shard's sequence names in
	// local order; each live shard reports the same value on
	// /shardinfo, which pins addr ↔ shard identity.
	Fingerprint uint32 `json:"fingerprint"`
	// Values is the total sample count on the shard, a cheap secondary
	// consistency check.
	Values int `json:"values"`
}

// Manifest is the cluster partition record.
type Manifest struct {
	// Shards holds one entry per fault domain, ordered by ID.
	Shards []ManifestShard `json:"shards"`
	// Sequences is the global sequence count; every global id in
	// [0, Sequences) appears in exactly one shard's Seqs.
	Sequences int `json:"sequences"`
	// Seed records the generator seed for provenance (0 for real data).
	Seed int64 `json:"seed,omitempty"`
}

// Partition splits st into per-shard stores by AssignShard over the
// sequence name, returning the stores and the manifest describing the
// split.  Global sequences are visited in ascending order, so each
// shard's local order is the ascending subsequence of global ids it
// owns — which keeps remapped per-shard result lists sorted and the
// k-way merge linear.
func Partition(st *store.Store, shards int) ([]*store.Store, *Manifest, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("cluster: shard count %d < 1", shards)
	}
	parts := make([]*store.Store, shards)
	names := make([][]string, shards)
	man := &Manifest{Shards: make([]ManifestShard, shards), Sequences: st.NumSequences()}
	for i := range parts {
		parts[i] = store.New()
		man.Shards[i].ID = i
		man.Shards[i].Dir = fmt.Sprintf("shard%d", i)
	}
	buf := make([]float64, 0)
	for seq := 0; seq < st.NumSequences(); seq++ {
		name := st.SequenceName(seq)
		n := st.SequenceLen(seq)
		if cap(buf) < n {
			buf = make([]float64, n)
		}
		w := buf[:n]
		if err := st.Window(seq, 0, n, w, nil); err != nil {
			return nil, nil, fmt.Errorf("cluster: partitioning sequence %d: %w", seq, err)
		}
		s := AssignShard(name, shards)
		parts[s].AppendSequence(name, w)
		man.Shards[s].Seqs = append(man.Shards[s].Seqs, seq)
		man.Shards[s].Values += n
		names[s] = append(names[s], name)
	}
	for i := range parts {
		man.Shards[i].Fingerprint = Fingerprint(names[i])
	}
	return parts, man, nil
}

// Encode serializes the manifest in the checksummed SSMAN framing.
func (m *Manifest) Encode(w io.Writer) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	if _, err := io.WriteString(w, manifestMagic); err != nil {
		return err
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadManifest parses and verifies an SSMAN stream.
func ReadManifest(r io.Reader) (*Manifest, error) {
	head := make([]byte, len(manifestMagic)+8)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	if !bytes.Equal(head[:len(manifestMagic)], []byte(manifestMagic)) {
		return nil, fmt.Errorf("bad magic %q", head[:len(manifestMagic)])
	}
	wantCRC := binary.LittleEndian.Uint32(head[len(manifestMagic):])
	length := binary.LittleEndian.Uint32(head[len(manifestMagic)+4:])
	const maxManifest = 64 << 20
	if length > maxManifest {
		return nil, fmt.Errorf("implausible payload length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("reading payload: %w", err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("payload checksum mismatch: artifact %08x, computed %08x", wantCRC, got)
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("decoding payload: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadManifest reads the SSMAN artifact at path.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &ErrManifest{Path: path, Err: err}
	}
	defer f.Close()
	m, err := ReadManifest(f)
	if err != nil {
		return nil, &ErrManifest{Path: path, Err: err}
	}
	return m, nil
}

// Validate checks the manifest's internal consistency: shard ids are
// positional, and the shard sequence lists are a disjoint cover of
// [0, Sequences).  The merge operators' exactness rests on this.
func (m *Manifest) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("manifest has no shards")
	}
	seen := make([]bool, m.Sequences)
	total := 0
	for i, sh := range m.Shards {
		if sh.ID != i {
			return fmt.Errorf("shard %d has id %d; ids must be positional", i, sh.ID)
		}
		prev := -1
		for _, g := range sh.Seqs {
			if g < 0 || g >= m.Sequences {
				return fmt.Errorf("shard %d holds out-of-range sequence %d (cluster has %d)", i, g, m.Sequences)
			}
			if seen[g] {
				return fmt.Errorf("sequence %d assigned to more than one shard", g)
			}
			if g <= prev {
				return fmt.Errorf("shard %d sequence list not ascending at %d", i, g)
			}
			prev = g
			seen[g] = true
			total++
		}
	}
	if total != m.Sequences {
		return fmt.Errorf("shards cover %d of %d sequences", total, m.Sequences)
	}
	return nil
}

// Owner returns the (shard, local sequence) pair holding the given
// global sequence.
func (m *Manifest) Owner(globalSeq int) (shard, local int, err error) {
	if globalSeq < 0 || globalSeq >= m.Sequences {
		return 0, 0, fmt.Errorf("sequence %d out of range (cluster has %d)", globalSeq, m.Sequences)
	}
	for s := range m.Shards {
		seqs := m.Shards[s].Seqs
		lo, hi := 0, len(seqs)
		for lo < hi {
			mid := (lo + hi) / 2
			if seqs[mid] < globalSeq {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(seqs) && seqs[lo] == globalSeq {
			return s, lo, nil
		}
	}
	return 0, 0, fmt.Errorf("sequence %d not covered by any shard", globalSeq)
}

// WriteShardArtifacts partitions st into n shards under dir: one
// checksummed store artifact per shard directory plus the SSMAN
// manifest.  Layout:
//
//	dir/cluster.ssman
//	dir/shard0/store.bin
//	dir/shard1/store.bin
//	...
//
// Index artifacts are not written here — each shard builds (and
// optionally caches, via ssserve -index) its index at startup, exactly
// as a single node does.
func WriteShardArtifacts(st *store.Store, dir string, n int, seed int64) (*Manifest, error) {
	parts, man, err := Partition(st, n)
	if err != nil {
		return nil, err
	}
	man.Seed = seed
	for i, p := range parts {
		sub := filepath.Join(dir, man.Shards[i].Dir)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
		if err := atomicfile.WriteFile(filepath.Join(sub, "store.bin"), p.WriteBinary); err != nil {
			return nil, fmt.Errorf("cluster: writing shard %d store: %w", i, err)
		}
	}
	if err := atomicfile.WriteFile(filepath.Join(dir, ManifestName), man.Encode); err != nil {
		return nil, fmt.Errorf("cluster: writing manifest: %w", err)
	}
	return man, nil
}
