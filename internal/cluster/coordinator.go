package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"scaleshift/internal/obs"
	"scaleshift/internal/resilience"
)

// CoordinatorConfig wires a Coordinator.  Manifest and Addrs are
// required and must agree in length; Shard is the per-shard client
// template (ID and BaseURL are filled per shard).
type CoordinatorConfig struct {
	Manifest *Manifest
	// Addrs is positional: Addrs[i] serves manifest shard i.  A plain
	// host:port is normalized to http://host:port.
	Addrs []string
	// Shard is the client template applied to every shard.
	Shard ShardConfig
	// ConnectTimeout bounds startup validation: how long the
	// coordinator polls the fleet's /shardinfo before giving up.
	// Default 30s.
	ConnectTimeout time.Duration
	// ProbeTimeout bounds one /readyz probe of one shard.  Default 1s.
	ProbeTimeout time.Duration
	Registry     *obs.Registry
	Logger       *slog.Logger
}

// ShardOutcome is one shard's slice of a gather: which fault-domain
// state it ended in and the attempt accounting behind it.
type ShardOutcome struct {
	ID       int
	Addr     string
	State    string // ok | degraded | failed
	TraceID  string
	Attempts int
	Hedged   bool
	Elapsed  time.Duration
	Err      error
}

// GatherResult is one scatter-gather answer with its coverage.
type GatherResult struct {
	Matches   []WireMatch
	Stats     WireStats
	Eps       float64
	Truncated bool
	// ShardResults is the sum of the covered shards' result counts —
	// the Results term that keeps the summed stats ledger's
	// Candidates == FalseAlarms + CostRejected + Results invariant
	// intact even when a k-NN merge keeps fewer than the sum.
	ShardResults int
	Coverage     []ShardOutcome
	OK           int
	Degraded     int
	Failed       int
	// ClientErr is set when every shard rejected the request as the
	// caller's own fault (4xx); the coordinator should surface that
	// status instead of reporting a coverage failure.
	ClientErr *ShardStatusError
}

// Partial reports whether any fault domain is missing from the answer.
func (g *GatherResult) Partial() bool { return g.Failed > 0 }

// ShardReady is one shard's slice of the coordinator's quorum /readyz.
type ShardReady struct {
	ID      int    `json:"id"`
	Addr    string `json:"addr"`
	Ready   bool   `json:"ready"`
	Breaker string `json:"breaker"`
	Error   string `json:"error,omitempty"`
}

// Coordinator is the scatter-gather engine: it owns one Shard client
// per fault domain, validates the fleet against the manifest at
// startup, fans queries out, and merges answers exactly.
type Coordinator struct {
	man       *Manifest
	shards    []*Shard
	info      []ShardInfoWire
	windowLen int
	coeffs    int
	normScale float64
	logger    *slog.Logger
	probeTO   time.Duration

	okGauge       *obs.Gauge
	degradedGauge *obs.Gauge
	failedGauge   *obs.Gauge
	scatterFull   *obs.Counter
	scatterPart   *obs.Counter
	scatterNone   *obs.Counter
}

// NewCoordinator builds the shard clients and validates the live fleet
// against the manifest: it polls every shard's /shardinfo until all
// answer or ConnectTimeout elapses, then checks each shard's
// fingerprint, sequence count, and value count against its manifest
// entry and that all shards agree on window length and coefficient
// count.  A mis-wired -shard-addrs list (addresses swapped, a stale
// artifact, a foreign process on the port) is a startup error here,
// never a silently-remapped answer later.
func NewCoordinator(ctx context.Context, cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("cluster: coordinator needs a manifest")
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: manifest invalid: %w", err)
	}
	if len(cfg.Addrs) != len(cfg.Manifest.Shards) {
		return nil, fmt.Errorf("cluster: manifest has %d shards but %d addresses were given",
			len(cfg.Manifest.Shards), len(cfg.Addrs))
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 30 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	c := &Coordinator{
		man:     cfg.Manifest,
		shards:  make([]*Shard, len(cfg.Addrs)),
		info:    make([]ShardInfoWire, len(cfg.Addrs)),
		logger:  cfg.Logger,
		probeTO: cfg.ProbeTimeout,
		okGauge: cfg.Registry.Gauge("scaleshift_cluster_shards_ok",
			"Shards that fully answered the most recent gather."),
		degradedGauge: cfg.Registry.Gauge("scaleshift_cluster_shards_degraded",
			"Shards that answered the most recent gather from a degraded fallback."),
		failedGauge: cfg.Registry.Gauge("scaleshift_cluster_shards_failed",
			"Shards missing from the most recent gather."),
		scatterFull: cfg.Registry.Counter("scaleshift_cluster_scatter_total",
			"Scatter-gather requests by coverage result.", obs.Label{Key: "result", Value: "full"}),
		scatterPart: cfg.Registry.Counter("scaleshift_cluster_scatter_total",
			"Scatter-gather requests by coverage result.", obs.Label{Key: "result", Value: "partial"}),
		scatterNone: cfg.Registry.Counter("scaleshift_cluster_scatter_total",
			"Scatter-gather requests by coverage result.", obs.Label{Key: "result", Value: "none"}),
	}
	cfg.Registry.Gauge("scaleshift_cluster_shards",
		"Fault domains in the cluster topology.").Set(float64(len(cfg.Addrs)))
	for i, addr := range cfg.Addrs {
		sc := cfg.Shard
		sc.ID = i
		sc.BaseURL = normalizeAddr(addr)
		if sc.Registry == nil {
			sc.Registry = cfg.Registry
		}
		c.shards[i] = NewShard(sc)
	}
	if err := c.connect(ctx, cfg.ConnectTimeout); err != nil {
		return nil, err
	}
	return c, nil
}

func normalizeAddr(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// connect polls /shardinfo until every shard has been validated or the
// deadline passes.
func (c *Coordinator) connect(ctx context.Context, timeout time.Duration) error {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	pending := make(map[int]error, len(c.shards))
	for i := range c.shards {
		pending[i] = fmt.Errorf("not yet reached")
	}
	for {
		for i := range c.shards {
			if _, waiting := pending[i]; !waiting {
				continue
			}
			var info ShardInfoWire
			if _, err := c.shards[i].GetJSON(cctx, "/shardinfo", nil, &info); err != nil {
				pending[i] = err
				continue
			}
			if err := c.validateShard(i, info); err != nil {
				return err // identity mismatch: retrying cannot fix a wrong topology
			}
			c.info[i] = info
			delete(pending, i)
		}
		if len(pending) == 0 {
			break
		}
		select {
		case <-cctx.Done():
			for id, err := range pending {
				return fmt.Errorf("cluster: shard %d (%s) not validated within %s: %w",
					id, c.shards[id].Addr(), timeout, err)
			}
		case <-time.After(250 * time.Millisecond):
		}
	}
	// Cross-shard agreement: the fleet must share one window geometry
	// or per-shard answers are not comparable at all.
	c.windowLen = c.info[0].WindowLen
	c.coeffs = c.info[0].Coefficients
	var wsum, nsum float64
	for i, info := range c.info {
		if info.WindowLen != c.windowLen || info.Coefficients != c.coeffs {
			return fmt.Errorf("cluster: shard %d geometry (window=%d fc=%d) disagrees with shard 0 (window=%d fc=%d)",
				i, info.WindowLen, info.Coefficients, c.windowLen, c.coeffs)
		}
		wsum += float64(info.Windows)
		nsum += float64(info.Windows) * info.NormScale
	}
	if wsum > 0 {
		c.normScale = nsum / wsum
	} else {
		c.normScale = 1
	}
	c.logger.Info("cluster validated",
		"shards", len(c.shards), "sequences", c.man.Sequences,
		"window", c.windowLen, "norm_scale", c.normScale)
	return nil
}

// validateShard pins addr ↔ manifest-shard identity.
func (c *Coordinator) validateShard(i int, info ShardInfoWire) error {
	want := c.man.Shards[i]
	if info.Fingerprint != want.Fingerprint {
		return fmt.Errorf("cluster: shard %d (%s) fingerprint %08x does not match manifest %08x — check -shard-addrs ordering",
			i, c.shards[i].Addr(), info.Fingerprint, want.Fingerprint)
	}
	if info.Sequences != len(want.Seqs) {
		return fmt.Errorf("cluster: shard %d (%s) holds %d sequences, manifest says %d",
			i, c.shards[i].Addr(), info.Sequences, len(want.Seqs))
	}
	if info.Values != want.Values {
		return fmt.Errorf("cluster: shard %d (%s) holds %d values, manifest says %d",
			i, c.shards[i].Addr(), info.Values, want.Values)
	}
	return nil
}

// NumShards returns the topology size.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// WindowLen returns the fleet's agreed window length.
func (c *Coordinator) WindowLen() int { return c.windowLen }

// NormScale returns the window-weighted mean of the shards' norm
// scales — the denominator the coordinator uses to resolve eps_frac
// into the absolute eps it fans out (shards must all search the same
// absolute radius, or the union stops being exact).
func (c *Coordinator) NormScale() float64 { return c.normScale }

// Manifest returns the validated partition record.
func (c *Coordinator) Manifest() *Manifest { return c.man }

// Sequences returns the cluster-wide sequence count.
func (c *Coordinator) Sequences() int { return c.man.Sequences }

// Degraded reports whether any shard announced a degraded index at
// validation time.
func (c *Coordinator) Degraded() bool {
	for _, info := range c.info {
		if info.Degraded {
			return true
		}
	}
	return false
}

// BreakerStates returns each shard's breaker position, for /readyz and
// the dashboard.
func (c *Coordinator) BreakerStates() []resilience.BreakerState {
	out := make([]resilience.BreakerState, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.BreakerState()
	}
	return out
}

// ProbeReady polls every shard's /readyz concurrently and reports the
// per-shard readiness the coordinator's quorum /readyz is built from.
func (c *Coordinator) ProbeReady(ctx context.Context) []ShardReady {
	out := make([]ShardReady, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		out[i] = ShardReady{ID: i, Addr: sh.Addr(), Breaker: sh.BreakerState().String()}
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			ready, _, err := sh.Probe(ctx, c.probeTO)
			out[i].Ready = ready
			if err != nil {
				out[i].Error = err.Error()
			}
		}(i, sh)
	}
	wg.Wait()
	return out
}

// Scatter fans one search to every shard and gathers the exact merge.
// params must already carry an absolute eps (or nn for k-NN) and an
// explicit values vector; knn > 0 selects the k-NN merge.  traceparent,
// when non-empty, is forwarded verbatim so each shard roots its trace
// under the coordinator's trace id.
func (c *Coordinator) Scatter(ctx context.Context, params url.Values, knn int, traceparent string) *GatherResult {
	q := url.Values{}
	for k, vs := range params {
		q[k] = vs
	}
	// Shards must return their complete answer: the coordinator's
	// limit applies to the merged result, and a shard-side cap would
	// silently drop matches that belong in the global answer.
	q.Set("limit", "0")
	pathQuery := "/search?" + q.Encode()
	var header http.Header
	if traceparent != "" {
		header = http.Header{obs.TraceparentHeader: []string{traceparent}}
	}

	type reply struct {
		resp SearchWire
		info CallInfo
		err  error
	}
	replies := make([]reply, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			replies[i].info, replies[i].err = sh.GetJSON(ctx, pathQuery, header, &replies[i].resp)
		}(i, sh)
	}
	wg.Wait()

	g := &GatherResult{Coverage: make([]ShardOutcome, len(c.shards))}
	lists := make([][]WireMatch, 0, len(c.shards))
	clientFaults := 0
	for i := range replies {
		r := &replies[i]
		out := &g.Coverage[i]
		out.ID = i
		out.Addr = c.shards[i].Addr()
		out.Attempts = r.info.Attempts
		out.Hedged = r.info.Hedged
		out.Elapsed = r.info.Elapsed
		if r.err == nil {
			if err := c.remap(i, r.resp.Matches); err != nil {
				// A shard answering outside its manifest slice is a
				// protocol violation; trusting it would corrupt the
				// merge, so its fault domain counts as failed.
				r.err = err
			}
		}
		if r.err != nil {
			out.State = "failed"
			out.Err = r.err
			g.Failed++
			if ClientFault(r.err) {
				clientFaults++
				if g.ClientErr == nil {
					var se *ShardStatusError
					if asShardStatus(r.err, &se) {
						g.ClientErr = se
					}
				}
			}
			continue
		}
		out.TraceID = r.resp.TraceID
		if r.resp.Plan != nil && r.resp.Plan.Degraded {
			out.State = "degraded"
			g.Degraded++
		} else {
			out.State = "ok"
			g.OK++
		}
		if r.resp.Truncated {
			g.Truncated = true
		}
		if g.Eps == 0 {
			g.Eps = r.resp.Eps
		}
		g.ShardResults += r.resp.Total
		g.Stats.Candidates += r.resp.Stats.Candidates
		g.Stats.FalseAlarms += r.resp.Stats.FalseAlarms
		g.Stats.CostRejected += r.resp.Stats.CostRejected
		g.Stats.IndexNodeReads += r.resp.Stats.IndexNodeReads
		g.Stats.DataPageReads += r.resp.Stats.DataPageReads
		g.Stats.PlanNs += r.resp.Stats.PlanNs
		g.Stats.ProbeNs += r.resp.Stats.ProbeNs
		g.Stats.VerifyNs += r.resp.Stats.VerifyNs
		lists = append(lists, r.resp.Matches)
	}
	if g.ClientErr != nil && clientFaults != len(c.shards) {
		// Only a unanimous rejection proves the request itself was
		// bad; a lone 4xx from one shard of a healthy gather is that
		// shard misbehaving, not the caller.
		g.ClientErr = nil
	}
	if knn > 0 {
		g.Matches = MergeKNN(lists, knn)
	} else {
		g.Matches = MergeRange(lists)
	}
	c.okGauge.Set(float64(g.OK))
	c.degradedGauge.Set(float64(g.Degraded))
	c.failedGauge.Set(float64(g.Failed))
	switch {
	case g.Failed == 0:
		c.scatterFull.Inc()
	case g.Failed < len(c.shards):
		c.scatterPart.Inc()
	default:
		c.scatterNone.Inc()
	}
	return g
}

func asShardStatus(err error, out **ShardStatusError) bool {
	for err != nil {
		if se, ok := err.(*ShardStatusError); ok {
			*out = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// remap rewrites shard-local sequence ids to global ones in place,
// rejecting ids outside the shard's manifest slice.
func (c *Coordinator) remap(shard int, ms []WireMatch) error {
	seqs := c.man.Shards[shard].Seqs
	for i := range ms {
		local := ms[i].Seq
		if local < 0 || local >= len(seqs) {
			return fmt.Errorf("shard %d returned local sequence %d outside its %d-sequence slice",
				shard, local, len(seqs))
		}
		ms[i].Seq = seqs[local]
	}
	return nil
}

// Window fetches n raw values of a global sequence from its owner
// shard — how the coordinator resolves a seq/start-addressed query
// into the explicit value vector it fans out.  If the owner's fault
// domain is down, the query cannot be resolved at all (the bytes live
// nowhere else); callers surface that as unavailable rather than
// guessing.
func (c *Coordinator) Window(ctx context.Context, globalSeq, start, n int) ([]float64, error) {
	shard, local, err := c.man.Owner(globalSeq)
	if err != nil {
		return nil, err
	}
	var ww WindowWire
	if _, err := c.shards[shard].GetJSON(ctx,
		fmt.Sprintf("/window?seq=%d&start=%d&len=%d", local, start, n), nil, &ww); err != nil {
		return nil, fmt.Errorf("resolving sequence %d on shard %d: %w", globalSeq, shard, err)
	}
	if len(ww.Values) != n {
		return nil, fmt.Errorf("shard %d returned %d values for a %d-value window", shard, len(ww.Values), n)
	}
	return ww.Values, nil
}
