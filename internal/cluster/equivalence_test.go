package cluster

import (
	"context"
	"io"
	"log/slog"
	"math"
	"net/http/httptest"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/engine"
	"scaleshift/internal/obs"
	"scaleshift/internal/query"
	"scaleshift/internal/vec"
)

// topology is a full in-process cluster next to its single-node oracle:
// the same store served both ways, so every answer has a ground truth.
type topology struct {
	coord   *Coordinator
	union   *core.Index
	man     *Manifest
	servers []*httptest.Server
	norm    float64 // union-store norm scale, for picking meaningful eps
}

func buildTopology(t *testing.T, companies, days, shards int) *topology {
	t.Helper()
	st := testStore(t, companies, days)
	opts := core.DefaultOptions()
	opts.WindowLen = 32

	union, err := core.NewIndex(st, opts)
	if err == nil {
		err = union.Build()
	}
	if err != nil {
		t.Fatal(err)
	}
	norm, err := query.SENormScale(st, opts.WindowLen, 100, 3)
	if err != nil {
		t.Fatal(err)
	}

	parts, man, err := Partition(st, shards)
	if err != nil {
		t.Fatal(err)
	}
	topo := &topology{union: union, man: man, norm: norm}
	addrs := make([]string, shards)
	for i, p := range parts {
		if p.NumSequences() == 0 {
			t.Fatalf("shard %d is empty; pick test parameters that populate every shard", i)
		}
		ix, err := core.NewIndex(p, opts)
		if err == nil {
			err = ix.Build()
		}
		if err != nil {
			t.Fatal(err)
		}
		ns, err := query.SENormScale(p, opts.WindowLen, 50, 3)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewShardNode(ix, ns).Handler())
		t.Cleanup(srv.Close)
		topo.servers = append(topo.servers, srv)
		addrs[i] = srv.URL
	}

	coord, err := NewCoordinator(context.Background(), CoordinatorConfig{
		Manifest:       man,
		Addrs:          addrs,
		Shard:          ShardConfig{AttemptTimeout: 10 * time.Second},
		ConnectTimeout: 10 * time.Second,
		Registry:       obs.NewRegistry(),
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	topo.coord = coord
	return topo
}

// queryValues reads a window of the union store, applies scale and
// shift, and formats it exactly the way the coordinator fans values
// out — so oracle and cluster parse bit-identical queries.
func (topo *topology) queryValues(t *testing.T, seq, start, n int, scale, shift float64) (vec.Vector, string) {
	t.Helper()
	raw := make([]float64, n)
	if err := topo.union.Store().Window(seq, start, n, raw, nil); err != nil {
		t.Fatal(err)
	}
	fields := make([]string, n)
	q := make(vec.Vector, n)
	for i, v := range raw {
		v = v*scale + shift
		fields[i] = strconv.FormatFloat(v, 'g', -1, 64)
		// Parse the formatted text back so the oracle sees exactly the
		// float64 the shards will parse.
		p, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			t.Fatal(err)
		}
		q[i] = p
	}
	return q, strings.Join(fields, ",")
}

type canonMatch struct {
	seq, start        int
	dist, scale, shft uint64 // float bits: equality must be exact, not approximate
}

func canonWire(ms []WireMatch) []canonMatch {
	out := make([]canonMatch, len(ms))
	for i, m := range ms {
		out[i] = canonMatch{m.Seq, m.Start, math.Float64bits(m.Dist), math.Float64bits(m.Scale), math.Float64bits(m.Shift)}
	}
	return out
}

func canonCore(ms []core.Match) []canonMatch {
	out := make([]canonMatch, len(ms))
	for i, m := range ms {
		out[i] = canonMatch{m.Seq, m.Start, math.Float64bits(m.Dist), math.Float64bits(m.Scale), math.Float64bits(m.Shift)}
	}
	return out
}

func sortCanon(ms []canonMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].seq != ms[j].seq {
			return ms[i].seq < ms[j].seq
		}
		return ms[i].start < ms[j].start
	})
}

func diffCanon(t *testing.T, what string, got, want []canonMatch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: cluster returned %d matches, single node %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d differs:\n  cluster %+v\n  oracle  %+v", what, i, got[i], want[i])
		}
	}
}

func (topo *topology) scatter(t *testing.T, params url.Values, knn int) *GatherResult {
	t.Helper()
	g := topo.coord.Scatter(context.Background(), params, knn, "")
	for _, out := range g.Coverage {
		if out.Err != nil {
			t.Logf("shard %d: %v", out.ID, out.Err)
		}
	}
	return g
}

func TestRangeEquivalence(t *testing.T) {
	topo := buildTopology(t, 14, 140, 3)
	eps := 0.08 * topo.norm
	for _, tc := range []struct {
		name         string
		seq, start   int
		scale, shift float64
	}{
		{"identity", 2, 10, 1, 0},
		{"scaled_shifted", 7, 40, 1.7, 3.25},
		{"negative_shift", 11, 0, 0.6, -12.5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q, vals := topo.queryValues(t, tc.seq, tc.start, 32, tc.scale, tc.shift)
			var stats core.SearchStats
			single, _, err := topo.union.SearchPlannedContext(context.Background(), q, eps,
				core.UnboundedCosts(), engine.PathAuto, nil, &stats)
			if err != nil {
				t.Fatal(err)
			}
			if len(single) == 0 {
				t.Fatal("oracle found nothing; the equivalence check would be vacuous")
			}
			params := url.Values{}
			params.Set("values", vals)
			params.Set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
			g := topo.scatter(t, params, 0)
			if g.Failed != 0 {
				t.Fatalf("healthy topology reported %d failed shards", g.Failed)
			}
			want := canonCore(single)
			sortCanon(want)
			diffCanon(t, "range", canonWire(g.Matches), want)
			if g.ShardResults != len(single) {
				t.Fatalf("shard result total %d, oracle %d", g.ShardResults, len(single))
			}
		})
	}
}

func TestLongQueryEquivalence(t *testing.T) {
	topo := buildTopology(t, 14, 140, 3)
	eps := 0.25 * topo.norm
	q, vals := topo.queryValues(t, 4, 8, 96, 1.2, -2)
	var stats core.SearchStats
	single, _, err := topo.union.SearchLongPlannedContext(context.Background(), q, eps,
		core.UnboundedCosts(), engine.PathAuto, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) == 0 {
		t.Fatal("oracle found nothing; raise eps")
	}
	params := url.Values{}
	params.Set("values", vals)
	params.Set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
	g := topo.scatter(t, params, 0)
	if g.Failed != 0 {
		t.Fatalf("healthy topology reported %d failed shards", g.Failed)
	}
	want := canonCore(single)
	sortCanon(want)
	diffCanon(t, "long", canonWire(g.Matches), want)
}

func TestKNNEquivalence(t *testing.T) {
	topo := buildTopology(t, 14, 140, 3)
	const k = 9
	q, vals := topo.queryValues(t, 9, 25, 32, 1, 0)
	var stats core.SearchStats
	single, err := topo.union.NearestNeighborsWithCostsContext(context.Background(), q, k,
		core.UnboundedCosts(), &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != k {
		t.Fatalf("oracle returned %d of %d neighbors", len(single), k)
	}
	params := url.Values{}
	params.Set("values", vals)
	params.Set("eps", "1") // ignored by the k-NN path, required by the wire contract
	params.Set("nn", strconv.Itoa(k))
	g := topo.scatter(t, params, k)
	if g.Failed != 0 {
		t.Fatalf("healthy topology reported %d failed shards", g.Failed)
	}
	if len(g.Matches) != k {
		t.Fatalf("cluster returned %d of %d neighbors", len(g.Matches), k)
	}
	// The k-NN orders can differ only on exact distance ties; canonical
	// order is (dist, seq, start), under which both must be identical.
	got, want := canonWire(g.Matches), canonCore(single)
	byDist := func(ms []canonMatch) {
		sort.Slice(ms, func(i, j int) bool {
			di, dj := math.Float64frombits(ms[i].dist), math.Float64frombits(ms[j].dist)
			if di != dj {
				return di < dj
			}
			if ms[i].seq != ms[j].seq {
				return ms[i].seq < ms[j].seq
			}
			return ms[i].start < ms[j].start
		})
	}
	byDist(got)
	byDist(want)
	diffCanon(t, "knn", got, want)
}

// TestPartialCoverageAttribution kills one fault domain and checks the
// gather's accounting: the dead shard (and only it) is failed, and the
// merged answer is exactly the oracle minus that shard's sequences —
// degraded, attributed, and never silently wrong.
func TestPartialCoverageAttribution(t *testing.T) {
	topo := buildTopology(t, 14, 140, 3)
	const dead = 1
	topo.servers[dead].Close()

	eps := 0.08 * topo.norm
	q, vals := topo.queryValues(t, 2, 10, 32, 1, 0)
	var stats core.SearchStats
	single, _, err := topo.union.SearchPlannedContext(context.Background(), q, eps,
		core.UnboundedCosts(), engine.PathAuto, nil, &stats)
	if err != nil {
		t.Fatal(err)
	}
	deadSeqs := make(map[int]bool)
	for _, g := range topo.man.Shards[dead].Seqs {
		deadSeqs[g] = true
	}
	var want []canonMatch
	covered := 0
	for _, m := range single {
		if !deadSeqs[m.Seq] {
			want = append(want, canonCore([]core.Match{m})[0])
			covered++
		}
	}
	if covered == len(single) {
		t.Fatal("no oracle match lives on the dead shard; the attribution check would be vacuous")
	}
	sortCanon(want)

	params := url.Values{}
	params.Set("values", vals)
	params.Set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
	g := topo.scatter(t, params, 0)
	if g.Failed != 1 || g.OK != 2 {
		t.Fatalf("coverage ok=%d failed=%d, want ok=2 failed=1", g.OK, g.Failed)
	}
	if !g.Partial() {
		t.Fatal("gather with a dead shard must report partial")
	}
	for _, out := range g.Coverage {
		if (out.ID == dead) != (out.State == "failed") {
			t.Fatalf("shard %d state %q; only shard %d should fail", out.ID, out.State, dead)
		}
	}
	diffCanon(t, "partial", canonWire(g.Matches), want)
}

// TestWindowResolution checks coordinator-side seq/start resolution:
// the owner shard serves exactly the union store's bytes.
func TestWindowResolution(t *testing.T) {
	topo := buildTopology(t, 10, 100, 3)
	for _, seq := range []int{0, 3, 7, 9} {
		got, err := topo.coord.Window(context.Background(), seq, 5, 32)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, 32)
		if err := topo.union.Store().Window(seq, 5, 32, want, nil); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("sequence %d value %d: cluster %v, store %v", seq, i, got[i], want[i])
			}
		}
	}
	if _, err := topo.coord.Window(context.Background(), topo.man.Sequences, 0, 32); err == nil {
		t.Fatal("out-of-range sequence must not resolve")
	}
}

// TestCoordinatorRejectsMiswiredFleet swaps two shard addresses; the
// fingerprint check must refuse to start rather than remap answers
// through the wrong table.
func TestCoordinatorRejectsMiswiredFleet(t *testing.T) {
	topo := buildTopology(t, 14, 140, 3)
	addrs := []string{topo.servers[1].URL, topo.servers[0].URL, topo.servers[2].URL}
	_, err := NewCoordinator(context.Background(), CoordinatorConfig{
		Manifest:       topo.man,
		Addrs:          addrs,
		Shard:          ShardConfig{AttemptTimeout: 2 * time.Second},
		ConnectTimeout: 5 * time.Second,
		Registry:       obs.NewRegistry(),
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err == nil {
		t.Fatal("coordinator accepted a mis-wired -shard-addrs ordering")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("want a fingerprint identity error, got: %v", err)
	}
}
