package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"scaleshift/internal/core"
	"scaleshift/internal/engine"
	"scaleshift/internal/obs"
	"scaleshift/internal/vec"
)

// ShardNode is a minimal in-process shard: the same /search, /window,
// /shardinfo, and /readyz surface a full ssserve shard exposes, served
// straight off a core.Index with none of the serving stack around it.
// The cluster tests and the bench harness build topologies from these
// (via httptest) without spawning processes; the contract they exercise
// — wire shapes, local-id semantics, traceparent echo — is exactly what
// the coordinator relies on against real shards.
type ShardNode struct {
	ix          *core.Index
	normScale   float64
	fingerprint uint32
}

// NewShardNode wraps an index as a shard.  normScale is the shard's
// eps_frac denominator, as ssserve computes at startup.
func NewShardNode(ix *core.Index, normScale float64) *ShardNode {
	st := ix.Store()
	names := make([]string, st.NumSequences())
	for i := range names {
		names[i] = st.SequenceName(i)
	}
	return &ShardNode{ix: ix, normScale: normScale, fingerprint: Fingerprint(names)}
}

// Handler returns the shard's HTTP surface.
func (n *ShardNode) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", n.handleSearch)
	mux.HandleFunc("/window", n.handleWindow)
	mux.HandleFunc("/shardinfo", n.handleShardInfo)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		writeShardJSON(w, http.StatusOK, map[string]bool{"ready": true})
	})
	return mux
}

func writeShardJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeShardError(w http.ResponseWriter, status int, err error) {
	writeShardJSON(w, status, map[string]string{"error": err.Error()})
}

func (n *ShardNode) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	seqs, values, _ := n.ix.StoreShape()
	degraded, _ := n.ix.Degraded()
	writeShardJSON(w, http.StatusOK, ShardInfoWire{
		Sequences:    seqs,
		Values:       values,
		Windows:      n.ix.WindowCount(),
		WindowLen:    n.ix.Options().WindowLen,
		Coefficients: n.ix.Options().Coefficients,
		NormScale:    n.normScale,
		Fingerprint:  n.fingerprint,
		Degraded:     degraded,
	})
}

func (n *ShardNode) handleWindow(w http.ResponseWriter, r *http.Request) {
	p := r.URL.Query()
	seq, err1 := strconv.Atoi(p.Get("seq"))
	start, err2 := strconv.Atoi(p.Get("start"))
	length, err3 := strconv.Atoi(p.Get("len"))
	if err1 != nil || err2 != nil || err3 != nil {
		writeShardError(w, http.StatusBadRequest, fmt.Errorf("seq, start, and len must be integers"))
		return
	}
	vals := make(vec.Vector, length)
	if err := n.ix.QueryWindow(seq, start, length, vals); err != nil {
		writeShardError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeShardJSON(w, http.StatusOK, WindowWire{Seq: seq, Start: start, Values: vals})
}

func (n *ShardNode) handleSearch(w http.ResponseWriter, r *http.Request) {
	p := r.URL.Query()
	floatParam := func(name string, def float64) (float64, error) {
		v := p.Get(name)
		if v == "" {
			return def, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("parameter %s: %w", name, err)
		}
		return f, nil
	}
	intParam := func(name string, def int) (int, error) {
		v := p.Get(name)
		if v == "" {
			return def, nil
		}
		i, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("parameter %s: %w", name, err)
		}
		return i, nil
	}

	values := p.Get("values")
	if values == "" {
		writeShardError(w, http.StatusBadRequest, fmt.Errorf("shard search requires values="))
		return
	}
	fields := strings.Split(values, ",")
	q := make(vec.Vector, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			writeShardError(w, http.StatusBadRequest, fmt.Errorf("parameter values, field %d: %w", i+1, err))
			return
		}
		q[i] = v
	}

	eps, err := floatParam("eps", -1)
	if err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	}
	if eps < 0 {
		frac, err := floatParam("eps_frac", 0.02)
		if err != nil {
			writeShardError(w, http.StatusBadRequest, err)
			return
		}
		eps = frac * n.normScale
	}
	costs := core.UnboundedCosts()
	if v, err := floatParam("scale_min", 0); err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	} else if v != 0 {
		costs.ScaleMin = v
	}
	if v, err := floatParam("scale_max", 0); err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	} else if v != 0 {
		costs.ScaleMax = v
	}
	if v, err := floatParam("shift_abs", 0); err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	} else if v != 0 {
		costs.ShiftMin, costs.ShiftMax = -v, v
	}
	force := engine.PathAuto
	if ps := p.Get("path"); ps != "" {
		if force, err = engine.ParsePathKind(ps); err != nil {
			writeShardError(w, http.StatusBadRequest, err)
			return
		}
	}
	nn, err := intParam("nn", 0)
	if err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	}
	limit, err := intParam("limit", 0)
	if err != nil {
		writeShardError(w, http.StatusBadRequest, err)
		return
	}

	var stats core.SearchStats
	var matches []core.Match
	var ex *engine.Explain
	window := n.ix.Options().WindowLen
	switch {
	case nn > 0:
		matches, err = n.ix.NearestNeighborsWithCostsContext(r.Context(), q, nn, costs, &stats)
	case len(q) > window:
		matches, ex, err = n.ix.SearchLongPlannedContext(r.Context(), q, eps, costs, force, &stats)
	default:
		matches, ex, err = n.ix.SearchPlannedContext(r.Context(), q, eps, costs, force, nil, &stats)
	}
	if err != nil {
		writeShardError(w, http.StatusUnprocessableEntity, err)
		return
	}

	resp := SearchWire{
		TraceID: obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)),
		Eps:     eps,
		Total:   len(matches),
		Matches: make([]WireMatch, 0, len(matches)),
	}
	for i, m := range matches {
		if limit > 0 && i >= limit {
			resp.Truncated = true
			break
		}
		resp.Matches = append(resp.Matches, WireMatch{
			Name: m.Name, Seq: m.Seq, Start: m.Start, End: m.Start + len(q),
			Dist: m.Dist, Scale: m.Scale, Shift: m.Shift,
		})
	}
	resp.Stats = WireStats{
		Candidates:     stats.Candidates,
		FalseAlarms:    stats.FalseAlarms,
		CostRejected:   stats.CostRejected,
		IndexNodeReads: stats.IndexNodeAccesses,
		DataPageReads:  stats.DataPageAccesses,
		PlanNs:         stats.PlanTime.Nanoseconds(),
		ProbeNs:        stats.ProbeTime.Nanoseconds(),
		VerifyNs:       stats.VerifyTime.Nanoseconds(),
	}
	if ex != nil {
		degraded, reason := ex.Degraded, ex.DegradedReason
		resp.Plan = &WirePlan{Path: ex.Chosen.String(), Degraded: degraded, DegradedReason: reason}
	}
	writeShardJSON(w, http.StatusOK, resp)
}
