package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"scaleshift/internal/obs"
	"scaleshift/internal/resilience"
)

// maxShardResponse bounds one shard reply; a bigger body is a bug (or
// a shard replaced by something that is not a shard).
const maxShardResponse = 64 << 20

// ShardConfig tunes one shard client.  The zero value is completed by
// defaults; only ID and BaseURL are required.
type ShardConfig struct {
	// ID is the shard's manifest position; it labels the per-shard
	// metrics and error messages.
	ID int
	// BaseURL is the shard's root, e.g. "http://10.0.0.7:8080".
	BaseURL string
	// AttemptTimeout is the per-attempt deadline — the shard-side
	// fault domain boundary.  A stalled shard costs at most
	// (Retries+1) × AttemptTimeout plus backoff, never the
	// coordinator's whole request budget.  Default 2s.
	AttemptTimeout time.Duration
	// Retries is how many additional attempts follow a retryable
	// failure (transport error, 429, 5xx).  Default 1.
	Retries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts; the wait before attempt k is jittered uniformly in
	// [d/2, d] with d = min(BackoffBase << k, BackoffMax).  Defaults
	// 25ms / 500ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeAfter, when positive, launches a second identical attempt
	// if the first has not resolved after this long; the first
	// response wins and the loser is canceled.  Tail hedging trades a
	// bounded amount of duplicate work for immunity to one slow
	// replica moment.  Zero disables.
	HedgeAfter time.Duration
	// Breaker configures the shard's circuit breaker.  Thresholds of
	// zero take resilience.DefaultBreakerConfig with a faster
	// OpenTimeout (2s): an open shard breaker should re-probe on the
	// order of a failover, not an operator coffee break.
	Breaker resilience.BreakerConfig
	// Registry receives the per-shard metrics; nil uses obs.Default.
	Registry *obs.Registry
	// HTTPClient overrides the transport; nil uses a dedicated client
	// (the default shared transport would let one stalled shard's
	// sockets starve its siblings' connection pool).
	HTTPClient *http.Client
	// Clock and Sleep are injectable for tests; nil means real time.
	Clock func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
	// Jitter maps a raw backoff to the jittered wait; nil picks
	// uniformly in [d/2, d].
	Jitter func(d time.Duration) time.Duration
}

func (cfg ShardConfig) withDefaults() ShardConfig {
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 2 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 500 * time.Millisecond
	}
	if cfg.Breaker.FailureThreshold == 0 {
		b := resilience.DefaultBreakerConfig()
		b.OpenTimeout = 2 * time.Second
		b.FailureThreshold = 3
		b.HalfOpenSuccesses = 1
		// Slow-but-answering is the admission controller's problem;
		// the attempt timeout already bounds how slow "answering" can
		// be, so slowness accounting here would double-count.
		b.SlowThreshold = 0
		b.Clock = cfg.Clock
		cfg.Breaker = b
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if cfg.Breaker.Registry == nil {
		cfg.Breaker.Registry = cfg.Registry
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
		}}
	}
	return cfg
}

// ShardDownError reports a shard that could not be reached at all:
// breaker open, or every attempt of the retry budget failed.
type ShardDownError struct {
	ID     int
	Reason string // breaker_open | unreachable | deadline
	Err    error
}

func (e *ShardDownError) Error() string {
	return fmt.Sprintf("shard %d down (%s): %v", e.ID, e.Reason, e.Err)
}

func (e *ShardDownError) Unwrap() error { return e.Err }

// ShardStatusError is a non-2xx shard reply.  4xx statuses (other than
// 429) are not retried and not charged to the breaker: they mean the
// request was at fault, not the shard.
type ShardStatusError struct {
	ID     int
	Status int
	Body   string
}

func (e *ShardStatusError) Error() string {
	return fmt.Sprintf("shard %d returned %d: %s", e.ID, e.Status, e.Body)
}

// ClientFault reports whether err says the request (not the shard) was
// bad — the coordinator maps such failures to its own 4xx instead of
// counting them against coverage-by-fault.
func ClientFault(err error) bool {
	var se *ShardStatusError
	return errors.As(err, &se) && se.Status >= 400 && se.Status < 500 && se.Status != http.StatusTooManyRequests
}

func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// CallInfo accounts one logical shard call for coverage reporting.
type CallInfo struct {
	Attempts int
	Hedged   bool
	Elapsed  time.Duration
}

// Shard is the client for one fault domain.
type Shard struct {
	cfg     ShardConfig
	breaker *resilience.Breaker

	attempts *obs.Counter
	retries  *obs.Counter
	hedges   *obs.Counter
	hedgeWon *obs.Counter

	mu  sync.Mutex
	rng *rand.Rand
}

// NewShard builds the client for one shard.
func NewShard(cfg ShardConfig) *Shard {
	cfg = cfg.withDefaults()
	label := obs.Label{Key: "shard", Value: strconv.Itoa(cfg.ID)}
	if len(cfg.Breaker.Labels) == 0 {
		cfg.Breaker.Labels = []obs.Label{label}
	}
	return &Shard{
		cfg:     cfg,
		breaker: resilience.NewBreaker(cfg.Breaker),
		attempts: cfg.Registry.Counter("scaleshift_cluster_shard_attempts_total",
			"HTTP attempts sent to a shard, including retries and hedges.", label),
		retries: cfg.Registry.Counter("scaleshift_cluster_shard_retries_total",
			"Retry attempts sent to a shard after a retryable failure.", label),
		hedges: cfg.Registry.Counter("scaleshift_cluster_shard_hedges_total",
			"Hedge attempts launched against a shard's slow first attempt.", label),
		hedgeWon: cfg.Registry.Counter("scaleshift_cluster_shard_hedge_wins_total",
			"Hedge attempts that beat the primary attempt.", label),
	}
}

// ID returns the shard's manifest position.
func (s *Shard) ID() int { return s.cfg.ID }

// Addr returns the shard's base URL.
func (s *Shard) Addr() string { return s.cfg.BaseURL }

// BreakerState exposes the shard's breaker position for /readyz and
// the dashboard.
func (s *Shard) BreakerState() resilience.BreakerState { return s.breaker.State() }

// GetJSON performs one logical GET against the shard — breaker gate,
// per-attempt deadline, bounded retries, optional hedge — and decodes
// the 200 body into out.
func (s *Shard) GetJSON(ctx context.Context, pathQuery string, header http.Header, out interface{}) (CallInfo, error) {
	var info CallInfo
	if err := s.breaker.Allow(); err != nil {
		return info, &ShardDownError{ID: s.cfg.ID, Reason: "breaker_open", Err: err}
	}
	start := s.cfg.Clock()
	body, err := s.attemptLoop(ctx, pathQuery, header, &info)
	info.Elapsed = s.cfg.Clock().Sub(start)

	// Breaker accounting: only outcomes that say something about the
	// shard's health may move it.  The caller abandoning the request
	// (parent context done) and the shard rejecting a malformed query
	// are both non-observations.
	switch {
	case err == nil:
		s.breaker.Record(info.Elapsed, nil)
	case ctx.Err() != nil:
		s.breaker.RecordNeutral()
	case ClientFault(err):
		s.breaker.RecordNeutral()
	default:
		s.breaker.Record(info.Elapsed, err)
	}
	if err != nil {
		return info, err
	}
	if err := json.Unmarshal(body, out); err != nil {
		return info, fmt.Errorf("shard %d: decoding response: %w", s.cfg.ID, err)
	}
	return info, nil
}

// attemptLoop runs the bounded retry schedule around hedgedAttempt.
func (s *Shard) attemptLoop(ctx context.Context, pathQuery string, header http.Header, info *CallInfo) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		body, err := s.hedgedAttempt(ctx, pathQuery, header, info)
		if err == nil {
			return body, nil
		}
		lastErr = err
		var se *ShardStatusError
		if errors.As(err, &se) && !retryableStatus(se.Status) {
			return nil, err // the request's fault; retrying cannot help
		}
		if err := ctx.Err(); err != nil {
			return nil, &ShardDownError{ID: s.cfg.ID, Reason: "deadline", Err: lastErr}
		}
		if attempt >= s.cfg.Retries {
			return nil, &ShardDownError{ID: s.cfg.ID, Reason: "unreachable", Err: lastErr}
		}
		s.retries.Inc()
		if err := s.cfg.Sleep(ctx, s.backoff(attempt)); err != nil {
			return nil, &ShardDownError{ID: s.cfg.ID, Reason: "deadline", Err: lastErr}
		}
	}
}

// backoff returns the jittered wait before the retry following failed
// attempt k.
func (s *Shard) backoff(attempt int) time.Duration {
	d := s.cfg.BackoffBase << uint(attempt)
	if d <= 0 || d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	if s.cfg.Jitter != nil {
		return s.cfg.Jitter(d)
	}
	s.mu.Lock()
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(int64(s.cfg.ID)*7919 + 1))
	}
	j := time.Duration(s.rng.Int63n(int64(d/2) + 1))
	s.mu.Unlock()
	return d/2 + j
}

// hedgedAttempt runs one attempt, optionally racing a hedge launched
// after HedgeAfter.  The first success wins and cancels the other
// in-flight request; with no success, the primary's error is reported
// once every launched request has resolved.
func (s *Shard) hedgedAttempt(ctx context.Context, pathQuery string, header http.Header, info *CallInfo) ([]byte, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		body  []byte
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(hedge bool) {
		info.Attempts++
		s.attempts.Inc()
		go func() {
			b, err := s.doOnce(actx, pathQuery, header)
			ch <- result{body: b, err: err, hedge: hedge}
		}()
	}
	launch(false)

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if s.cfg.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(s.cfg.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	outstanding := 1
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.hedge {
					s.hedgeWon.Inc()
				}
				return r.body, nil // deferred cancel reaps the loser
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			info.Hedged = true
			s.hedges.Inc()
			launch(true)
			outstanding++
		}
	}
}

// doOnce is a single HTTP attempt under the per-attempt deadline.
func (s *Shard) doOnce(ctx context.Context, pathQuery string, header http.Header) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, s.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, s.cfg.BaseURL+pathQuery, nil)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := s.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponse+1))
	if err != nil {
		return nil, err
	}
	if len(body) > maxShardResponse {
		return nil, fmt.Errorf("shard %d response exceeds %d bytes", s.cfg.ID, maxShardResponse)
	}
	if resp.StatusCode != http.StatusOK {
		msg := string(body)
		if len(msg) > 256 {
			msg = msg[:256]
		}
		return nil, &ShardStatusError{ID: s.cfg.ID, Status: resp.StatusCode, Body: msg}
	}
	return body, nil
}

// Probe checks the shard's /readyz without retries, hedging, or
// breaker accounting: a readiness poll is an observation, not traffic.
// It returns the shard's readiness plus the decoded body (nil when the
// shard is unreachable).
func (s *Shard) Probe(ctx context.Context, timeout time.Duration) (ready bool, detail map[string]interface{}, err error) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, s.cfg.BaseURL+"/readyz", nil)
	if err != nil {
		return false, nil, err
	}
	resp, err := s.cfg.HTTPClient.Do(req)
	if err != nil {
		return false, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return false, nil, err
	}
	_ = json.Unmarshal(body, &detail)
	return resp.StatusCode == http.StatusOK, detail, nil
}
