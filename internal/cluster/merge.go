package cluster

import (
	"container/heap"
	"sort"
)

// Exact result merging.  Both operators assume the inputs carry global
// sequence ids (the coordinator remaps before merging) and that the
// partition is disjoint — under those two premises each merge is
// set-union, which is what makes a healthy gather bit-identical to a
// single-node search over the union store.

// matchLess is the global result order: (Seq, Start), matching the
// single node's sortMatches, with (Dist, Scale) as a defensive final
// tiebreak that never fires on well-formed inputs (a (Seq, Start) pair
// names one window, which has one optimal (scale, shift)).
func matchLess(a, b WireMatch) bool {
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.Dist < b.Dist
}

// MergeRange merges per-shard range (and long-query) results into the
// single-node result order.  Matches are concatenated, sorted by
// (Seq, Start), and deduplicated on that key — on a disjoint partition
// the dedup is a no-op, but a misconfigured topology (two shards
// serving the same artifact) then yields duplicated answers from the
// sort alone, so the dedup keeps "never silently wrong" true even
// under operator error.
func MergeRange(perShard [][]WireMatch) []WireMatch {
	total := 0
	for _, ms := range perShard {
		total += len(ms)
	}
	out := make([]WireMatch, 0, total)
	for _, ms := range perShard {
		out = append(out, ms...)
	}
	sort.Slice(out, func(i, j int) bool { return matchLess(out[i], out[j]) })
	w := 0
	for i := range out {
		if i > 0 && out[i].Seq == out[w-1].Seq && out[i].Start == out[w-1].Start {
			continue
		}
		out[w] = out[i]
		w++
	}
	return out[:w]
}

// knnHeap orders shard cursors by the head match's (Dist, Seq, Start).
type knnCursor struct {
	list []WireMatch
	pos  int
}

type knnHeap []*knnCursor

func (h knnHeap) Len() int { return len(h) }
func (h knnHeap) Less(i, j int) bool {
	a, b := h[i].list[h[i].pos], h[j].list[h[j].pos]
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.Start < b.Start
}
func (h knnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x interface{}) { *h = append(*h, x.(*knnCursor)) }
func (h *knnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MergeKNN merges per-shard k-NN results — each list ascending by
// distance, as the single node emits — into the global top-k.  The
// heap holds one cursor per non-empty shard list; each heap head is a
// lower bound on everything behind it in its list, so after k pops no
// unpopped match can beat the popped set and the merge terminates
// early, regardless of how many candidates the shards returned.
// Ties break on (Dist, Seq, Start), the deterministic global order.
func MergeKNN(perShard [][]WireMatch, k int) []WireMatch {
	if k <= 0 {
		return nil
	}
	h := make(knnHeap, 0, len(perShard))
	for _, ms := range perShard {
		if len(ms) > 0 {
			h = append(h, &knnCursor{list: ms})
		}
	}
	heap.Init(&h)
	out := make([]WireMatch, 0, k)
	for len(h) > 0 && len(out) < k {
		c := h[0]
		out = append(out, c.list[c.pos])
		c.pos++
		if c.pos < len(c.list) {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}
