// Package cluster implements distributed scatter-gather serving: the
// "one box → fleet" step.  Sequences are hash-partitioned across N
// shard processes — each a full ssserve node over its own checksummed
// artifacts — and a coordinator fans every query out, merges the
// per-shard answers exactly, and degrades per fault domain: a slow,
// corrupted, or crashed shard costs its slice of the answer, never the
// whole query.
//
// The pieces:
//
//   - Manifest (SSMAN artifact): the deterministic partitioning record
//     ssgen -shards writes and the coordinator validates at startup,
//     mapping shard-local sequence ids back to global ones.
//   - Shard: the per-shard HTTP client — per-attempt deadlines,
//     bounded retries with jittered backoff, optional tail hedging,
//     and a three-state circuit breaker (internal/resilience) so a
//     flapping shard is skipped instead of re-probed on every query.
//   - MergeRange / MergeKNN: exact result merging.  Range results are
//     deduplicated by (seq, start); k-NN results flow through a global
//     candidate heap fed by the per-shard sorted lists, whose heads
//     lower-bound everything behind them, so the merge terminates as
//     soon as the global top-k is known.
//   - Coordinator: the scatter-gather engine with explicit
//     partial-result semantics — every gather reports per-shard
//     coverage (ok / degraded / failed, with trace ids), and a failed
//     fault domain yields a partial answer, never a silently-wrong one.
//
// Exactness argument (DESIGN.md §16 carries the full proofs): the
// partition is a disjoint cover of the sequence set, every per-shard
// result is exactly verified against the shard's own store (the same
// bytes the union store holds), and both merge operators preserve
// set-union semantics, so a gather over healthy shards is bit-identical
// to a single-node search over the union store.
package cluster

import (
	"hash/crc32"
	"hash/fnv"
)

// castagnoli matches the CRC polynomial the artifact layer (binio)
// uses everywhere else.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AssignShard deterministically maps a sequence name to a shard.
// FNV-1a over the name keeps the assignment stable across runs,
// machines, and store orderings — the property the manifest's
// validation (and any future re-partitioning tool) relies on.
func AssignShard(name string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(shards))
}

// Fingerprint condenses a shard's sequence identity (names, in
// shard-local order) into one checksum.  The manifest records it per
// shard and the coordinator compares it against each live shard's
// /shardinfo at startup, catching a mis-wired -shard-addrs list (two
// addrs swapped would silently remap every result) without shipping
// the full name list around.
func Fingerprint(names []string) uint32 {
	h := crc32.New(castagnoli)
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return h.Sum32()
}

// Wire types: the JSON shapes shards serve and the coordinator
// consumes.  Field names mirror ssserve's response schema exactly —
// the coordinator decodes a shard's /search payload into these, and
// encoding/json round-trips float64 bit-exactly, so distances survive
// the extra hop unchanged.

// WireMatch is one match as serialized by a shard.  Seq is shard-local
// on the wire; the coordinator remaps it to the global id through the
// manifest before merging.
type WireMatch struct {
	Name  string  `json:"name"`
	Seq   int     `json:"seq"`
	Start int     `json:"start"`
	End   int     `json:"end"`
	Dist  float64 `json:"dist"`
	Scale float64 `json:"scale"`
	Shift float64 `json:"shift"`
}

// WireStats is the per-query cost ledger a shard reports; the
// coordinator sums them across covered shards (each shard's ledger
// satisfies Candidates == FalseAlarms + CostRejected + Results, so the
// sum does too).
type WireStats struct {
	Candidates     int   `json:"candidates"`
	FalseAlarms    int   `json:"false_alarms"`
	CostRejected   int   `json:"cost_rejected"`
	IndexNodeReads int   `json:"index_node_reads"`
	DataPageReads  int   `json:"data_page_reads"`
	PlanNs         int64 `json:"plan_ns"`
	ProbeNs        int64 `json:"probe_ns"`
	VerifyNs       int64 `json:"verify_ns"`
}

// WirePlan is the slice of a shard's plan the coordinator cares about:
// whether the shard served from its degraded scan fallback.
type WirePlan struct {
	Path           string `json:"path"`
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// SearchWire is a shard's /search response.
type SearchWire struct {
	TraceID   string      `json:"trace_id,omitempty"`
	Eps       float64     `json:"eps"`
	Total     int         `json:"total_matches"`
	Matches   []WireMatch `json:"matches"`
	Truncated bool        `json:"truncated,omitempty"`
	Stats     WireStats   `json:"stats"`
	Plan      *WirePlan   `json:"plan,omitempty"`
}

// ShardInfoWire is a shard's /shardinfo response: the identity the
// coordinator validates against the manifest, plus the parameters
// (window length, eps_frac denominator) queries need.
type ShardInfoWire struct {
	Sequences    int     `json:"sequences"`
	Values       int     `json:"values"`
	Windows      int     `json:"windows"`
	WindowLen    int     `json:"window_len"`
	Coefficients int     `json:"coefficients"`
	NormScale    float64 `json:"norm_scale"`
	Fingerprint  uint32  `json:"fingerprint"`
	Degraded     bool    `json:"degraded,omitempty"`
}

// WindowWire is a shard's /window response: raw sequence values, used
// by the coordinator to resolve seq/start-addressed queries into the
// explicit value vector it fans out.
type WindowWire struct {
	Seq    int       `json:"seq"`
	Start  int       `json:"start"`
	Values []float64 `json:"values"`
}
