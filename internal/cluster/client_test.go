package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaleshift/internal/obs"
	"scaleshift/internal/resilience"
)

// fakeClock drives breaker open-timeout expiry without sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// sleepRecorder replaces the backoff sleep: no real waiting, every
// requested duration recorded.
type sleepRecorder struct {
	mu   sync.Mutex
	durs []time.Duration
}

func (s *sleepRecorder) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.durs = append(s.durs, d)
	s.mu.Unlock()
	return ctx.Err()
}

func (s *sleepRecorder) waits() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.durs...)
}

// testShard builds a shard client against a scripted handler with an
// injected clock and recorded sleeps.
func testShard(t *testing.T, id int, handler http.Handler, clk *fakeClock, rec *sleepRecorder, mutate func(*ShardConfig)) (*Shard, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	cfg := ShardConfig{
		ID:             id,
		BaseURL:        srv.URL,
		AttemptTimeout: 5 * time.Second,
		Retries:        1,
		Registry:       obs.NewRegistry(),
		Clock:          clk.Now,
		Sleep:          rec.sleep,
		Jitter:         func(d time.Duration) time.Duration { return d },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return NewShard(cfg), srv
}

func TestFlappingShardTripsBreaker(t *testing.T) {
	clk := newFakeClock()
	rec := &sleepRecorder{}
	var hits atomic.Int64
	healthy := atomic.Bool{}
	sh, _ := testShard(t, 0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if healthy.Load() {
			w.Write([]byte(`{}`))
			return
		}
		http.Error(w, "shard on fire", http.StatusInternalServerError)
	}), clk, rec, nil)

	var out struct{}
	// Default FailureThreshold is 3: three failed logical calls (each
	// burning its full 1-retry budget) must trip the breaker open.
	for i := 0; i < 3; i++ {
		info, err := sh.GetJSON(context.Background(), "/search", nil, &out)
		var down *ShardDownError
		if !errors.As(err, &down) || down.Reason != "unreachable" {
			t.Fatalf("call %d: want unreachable ShardDownError, got %v", i, err)
		}
		if info.Attempts != 2 {
			t.Fatalf("call %d: %d attempts, want 2 (1 + 1 retry)", i, info.Attempts)
		}
	}
	if got := hits.Load(); got != 6 {
		t.Fatalf("shard saw %d requests, want 6", got)
	}
	if sh.BreakerState() != resilience.BreakerOpen {
		t.Fatalf("breaker %v after 3 failed calls, want open", sh.BreakerState())
	}

	// Open breaker short-circuits: no HTTP traffic at all.
	_, err := sh.GetJSON(context.Background(), "/search", nil, &out)
	var down *ShardDownError
	if !errors.As(err, &down) || down.Reason != "breaker_open" {
		t.Fatalf("want breaker_open, got %v", err)
	}
	if got := hits.Load(); got != 6 {
		t.Fatalf("open breaker leaked a request (%d hits)", got)
	}

	// After OpenTimeout (2s default here) the breaker half-opens; one
	// healthy probe closes it (HalfOpenSuccesses 1).
	healthy.Store(true)
	clk.Advance(3 * time.Second)
	if _, err := sh.GetJSON(context.Background(), "/search", nil, &out); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if sh.BreakerState() != resilience.BreakerClosed {
		t.Fatalf("breaker %v after healthy probe, want closed", sh.BreakerState())
	}
}

// TestFlappingShardDoesNotConsumeHealthyBudget pins the fault-domain
// isolation property: shard 0 flapping to an open breaker must not
// cost shard 1 a single retry, backoff sleep, or breaker transition.
func TestFlappingShardDoesNotConsumeHealthyBudget(t *testing.T) {
	clk := newFakeClock()
	badRec, goodRec := &sleepRecorder{}, &sleepRecorder{}
	bad, _ := testShard(t, 0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}), clk, badRec, nil)
	good, _ := testShard(t, 1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}), clk, goodRec, nil)

	var out map[string]bool
	for i := 0; i < 4; i++ {
		bad.GetJSON(context.Background(), "/search", nil, &out)
		info, err := good.GetJSON(context.Background(), "/search", nil, &out)
		if err != nil {
			t.Fatalf("healthy shard failed: %v", err)
		}
		if info.Attempts != 1 {
			t.Fatalf("healthy shard used %d attempts, want 1", info.Attempts)
		}
	}
	if bad.BreakerState() != resilience.BreakerOpen {
		t.Fatalf("flapping shard breaker %v, want open", bad.BreakerState())
	}
	if good.BreakerState() != resilience.BreakerClosed {
		t.Fatalf("healthy shard breaker %v, want closed", good.BreakerState())
	}
	if ws := goodRec.waits(); len(ws) != 0 {
		t.Fatalf("healthy shard slept %v; its retry budget was consumed", ws)
	}
	if ws := badRec.waits(); len(ws) == 0 {
		t.Fatal("flapping shard never backed off")
	}
}

func TestRetryBackoffSchedule(t *testing.T) {
	clk := newFakeClock()
	rec := &sleepRecorder{}
	var hits atomic.Int64
	sh, _ := testShard(t, 0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "later", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{}`))
	}), clk, rec, func(cfg *ShardConfig) {
		cfg.Retries = 2
		cfg.BackoffBase = 40 * time.Millisecond
		cfg.BackoffMax = 60 * time.Millisecond
	})

	var out struct{}
	info, err := sh.GetJSON(context.Background(), "/search", nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Attempts != 3 {
		t.Fatalf("%d attempts, want 3", info.Attempts)
	}
	// Identity jitter: waits are base<<k clamped to max — 40ms, then 60ms.
	want := []time.Duration{40 * time.Millisecond, 60 * time.Millisecond}
	got := rec.waits()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("backoff schedule %v, want %v", got, want)
	}
	if sh.BreakerState() != resilience.BreakerClosed {
		t.Fatal("a call that eventually succeeded must not charge the breaker")
	}
}

func TestJitterBounds(t *testing.T) {
	sh := NewShard(ShardConfig{ID: 3, BaseURL: "http://unused", Registry: obs.NewRegistry(),
		BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second})
	for attempt := 0; attempt < 6; attempt++ {
		d := 100 * time.Millisecond << uint(attempt)
		if d > time.Second {
			d = time.Second
		}
		for i := 0; i < 50; i++ {
			w := sh.backoff(attempt)
			if w < d/2 || w > d {
				t.Fatalf("attempt %d: jittered wait %v outside [%v, %v]", attempt, w, d/2, d)
			}
		}
	}
}

func TestClientFaultNotRetriedNotCharged(t *testing.T) {
	clk := newFakeClock()
	rec := &sleepRecorder{}
	var hits atomic.Int64
	sh, _ := testShard(t, 0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "bad query", http.StatusBadRequest)
	}), clk, rec, func(cfg *ShardConfig) { cfg.Retries = 3 })

	var out struct{}
	for i := 0; i < 5; i++ {
		info, err := sh.GetJSON(context.Background(), "/search", nil, &out)
		var se *ShardStatusError
		if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
			t.Fatalf("want ShardStatusError 400, got %v", err)
		}
		if !ClientFault(err) {
			t.Fatal("a 400 must classify as the client's fault")
		}
		if info.Attempts != 1 {
			t.Fatalf("4xx was retried: %d attempts", info.Attempts)
		}
	}
	if got := hits.Load(); got != 5 {
		t.Fatalf("shard saw %d requests, want 5", got)
	}
	if sh.BreakerState() != resilience.BreakerClosed {
		t.Fatal("client faults must not move the breaker")
	}
	if len(rec.waits()) != 0 {
		t.Fatal("client faults must not back off")
	}
}

func Test429IsRetriedAndCharged(t *testing.T) {
	clk := newFakeClock()
	rec := &sleepRecorder{}
	var hits atomic.Int64
	sh, _ := testShard(t, 0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}), clk, rec, nil)
	var out struct{}
	info, err := sh.GetJSON(context.Background(), "/search", nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Attempts != 2 {
		t.Fatalf("%d attempts, want 2 (429 is retryable)", info.Attempts)
	}
}

// TestHedgedRequestCancelsLoser: the primary stalls, the hedge answers,
// the caller gets the hedge's response, and the stalled primary is
// reaped by cancellation rather than left running.
func TestHedgedRequestCancelsLoser(t *testing.T) {
	clk := newFakeClock()
	rec := &sleepRecorder{}
	var order atomic.Int64
	primaryCanceled := make(chan struct{})
	sh, _ := testShard(t, 0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if order.Add(1) == 1 {
			// Primary: stall until the client gives up on us.
			<-r.Context().Done()
			close(primaryCanceled)
			return
		}
		w.Write([]byte(`{"winner":true}`))
	}), clk, rec, func(cfg *ShardConfig) {
		cfg.HedgeAfter = 20 * time.Millisecond
	})

	var out map[string]bool
	info, err := sh.GetJSON(context.Background(), "/search", nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !out["winner"] {
		t.Fatal("response did not come from the hedge")
	}
	if !info.Hedged || info.Attempts != 2 {
		t.Fatalf("info = %+v, want hedged with 2 attempts", info)
	}
	select {
	case <-primaryCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing primary attempt was never canceled")
	}
	if sh.BreakerState() != resilience.BreakerClosed {
		t.Fatal("a won hedge is a success; the breaker must stay closed")
	}
}

// TestParentDeadlineIsNeutral: the caller abandoning the request says
// nothing about the shard's health, so the breaker must not move.
func TestParentDeadlineIsNeutral(t *testing.T) {
	clk := newFakeClock()
	rec := &sleepRecorder{}
	sh, _ := testShard(t, 0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}), clk, rec, func(cfg *ShardConfig) {
		cfg.AttemptTimeout = 30 * time.Second // only the parent deadline fires
	})
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		var out struct{}
		_, err := sh.GetJSON(ctx, "/search", nil, &out)
		cancel()
		if err == nil {
			t.Fatal("call against a stalled shard with an expired parent must fail")
		}
	}
	if sh.BreakerState() != resilience.BreakerClosed {
		t.Fatalf("breaker %v after parent-deadline failures, want closed", sh.BreakerState())
	}
}
