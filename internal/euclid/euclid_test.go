package euclid

import (
	"math"
	"testing"

	"scaleshift/internal/stock"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

func testIndex(t testing.TB, companies, days int) *Index {
	t.Helper()
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = companies
	cfg.Days = days
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.WindowLen = 32
	ix, err := NewIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewIndexValidation(t *testing.T) {
	st := store.New()
	opts := DefaultOptions()
	opts.WindowLen = 2
	if _, err := NewIndex(st, opts); err == nil {
		t.Error("short window accepted")
	}
	opts = DefaultOptions()
	opts.Coefficients = 0
	if _, err := NewIndex(st, opts); err == nil {
		t.Error("fc=0 accepted")
	}
	opts = DefaultOptions()
	opts.Tree.MinEntries = 0
	if _, err := NewIndex(st, opts); err == nil {
		t.Error("bad tree accepted")
	}
}

func TestSearchValidation(t *testing.T) {
	ix := testIndex(t, 5, 60)
	if _, err := ix.Search(make(vec.Vector, 5), 1, nil); err == nil {
		t.Error("short query accepted")
	}
	if _, err := ix.Search(make(vec.Vector, 32), -1, nil); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestSearchExactlyMatchesBruteForce(t *testing.T) {
	ix := testIndex(t, 15, 150)
	st := ix.st
	w := make(vec.Vector, 32)
	for _, src := range []struct{ seq, start int }{{0, 5}, {7, 80}, {14, 110}} {
		if err := st.Window(src.seq, src.start, 32, w, nil); err != nil {
			t.Fatal(err)
		}
		q := w.Clone()
		for _, eps := range []float64{0, 1, 5, 25} {
			var stats Stats
			got, err := ix.Search(q, eps, &stats)
			if err != nil {
				t.Fatal(err)
			}
			// Brute force oracle.
			want := 0
			st.ScanWindows(32, nil, func(seq, start int, win vec.Vector) bool {
				if vec.Dist(q, win) <= eps {
					want++
				}
				return true
			})
			if len(got) != want {
				t.Fatalf("eps=%v: index %d, brute %d", eps, len(got), want)
			}
			for _, m := range got {
				if m.Dist > eps {
					t.Fatalf("match dist %v > eps %v", m.Dist, eps)
				}
			}
			if stats.Results != len(got) || stats.Candidates < stats.Results {
				t.Fatalf("stats inconsistent: %+v", stats)
			}
		}
	}
}

// TestEuclideanMissesScaledShifted quantifies the paper's motivating
// claim: disguise a database window by scale and shift, and Euclidean
// search no longer finds it at any reasonable epsilon, while the
// disguise is irrelevant to the scale/shift index (verified in
// internal/core's tests).
func TestEuclideanMissesScaledShifted(t *testing.T) {
	ix := testIndex(t, 10, 120)
	st := ix.st
	w := make(vec.Vector, 32)
	if err := st.Window(4, 40, 32, w, nil); err != nil {
		t.Fatal(err)
	}
	// Exact copy: found at tiny epsilon.
	got, err := ix.Search(w, 1e-9, nil)
	if err != nil {
		t.Fatal(err)
	}
	foundSelf := false
	for _, m := range got {
		if m.Seq == 4 && m.Start == 40 {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Fatal("euclidean search missed the identical window")
	}
	// Shifted copy: the distance is at least |b|·√n, so any epsilon
	// below that misses the source.
	const b = 25.0
	q := vec.Shift(w, b)
	eps := b*math.Sqrt(32) - 1 // just below the theoretical distance
	got, err = ix.Search(q, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range got {
		if m.Seq == 4 && m.Start == 40 {
			t.Fatal("shifted window found below the shift distance bound — impossible")
		}
	}
}

func TestBuildCounts(t *testing.T) {
	ix := testIndex(t, 6, 80)
	if want := 6 * (80 - 32 + 1); ix.WindowCount() != want {
		t.Errorf("WindowCount = %d, want %d", ix.WindowCount(), want)
	}
	if ix.IndexPageCount() < 2 {
		t.Errorf("IndexPageCount = %d", ix.IndexPageCount())
	}
}

func TestFeatureIsContraction(t *testing.T) {
	ix := testIndex(t, 3, 60)
	st := ix.st
	a := make(vec.Vector, 32)
	b := make(vec.Vector, 32)
	if err := st.Window(0, 0, 32, a, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Window(2, 15, 32, b, nil); err != nil {
		t.Fatal(err)
	}
	df := vec.Dist(ix.feature(a), ix.feature(b))
	d := vec.Dist(a, b)
	if df > d+1e-9 {
		t.Errorf("feature distance %v exceeds true distance %v", df, d)
	}
	// The mean dimension matters: two windows differing only by shift
	// must have positive feature distance.
	c := vec.Shift(a, 5)
	if got := vec.Dist(ix.feature(a), ix.feature(c)); got < 1 {
		t.Errorf("shift-only difference invisible to euclid features: %v", got)
	}
}
