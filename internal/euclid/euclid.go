// Package euclid implements the prior art the paper argues against
// (§1–§2): subsequence matching under plain Euclidean distance in the
// style of the F-index / ST-index line of work (Agrawal et al. [1],
// Faloutsos et al. [2]).  Windows are mapped to their first f_c DFT
// coefficients (no shift elimination) and indexed in an R*-tree; a
// range query retrieves the feature points inside the ε-ball around
// the query's feature point — a rectangle range search followed by an
// exact post-check, which is the classic GEMINI pipeline.
//
// Its purpose here is comparative: the motivating claim of the paper
// is that Euclidean matching misses subsequences that are similar up
// to scaling and shifting, and the example/benchmarks use this package
// to quantify exactly that recall gap.
package euclid

import (
	"fmt"
	"math"

	"scaleshift/internal/dft"
	"scaleshift/internal/geom"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// Options configures the Euclidean index.
type Options struct {
	// WindowLen is the sliding-window length n.
	WindowLen int
	// Coefficients is f_c; the feature space has 2·f_c dimensions.
	// Unlike the scale/shift index, the DC coefficient is NOT removed
	// here, so the map keeps coefficients 1…f_c of the raw window —
	// plus the mean is folded into an extra dimension to tighten the
	// bound (the mean is the scaled 0-th coefficient).
	Coefficients int
	// Tree holds the R*-tree parameters; Dim is derived.
	Tree rtree.Config
}

// DefaultOptions mirrors the paper's configuration (n = 128, f_c = 3).
func DefaultOptions() Options {
	return Options{
		WindowLen:    128,
		Coefficients: 3,
		Tree:         rtree.DefaultConfig(7),
	}
}

// Match is one qualifying window.
type Match struct {
	Seq, Start int
	Name       string
	// Dist is the exact Euclidean distance D₂(Q, S').
	Dist float64
}

// Stats mirrors core.SearchStats for the Euclidean pipeline.
type Stats struct {
	IndexNodeAccesses  int
	DataPageAccesses   int
	Candidates         int
	FalseAlarms        int
	Results            int
	LeafEntriesChecked int
}

// Index is a GEMINI-style Euclidean subsequence index.
type Index struct {
	opts Options
	st   *store.Store
	fmap *dft.FeatureMap
	tree *rtree.Tree
	dim  int
}

// NewIndex creates an empty Euclidean index over st.
func NewIndex(st *store.Store, opts Options) (*Index, error) {
	if opts.WindowLen < 3 {
		return nil, fmt.Errorf("euclid: window length %d too short", opts.WindowLen)
	}
	fmap, err := dft.NewFeatureMap(opts.WindowLen, opts.Coefficients)
	if err != nil {
		return nil, fmt.Errorf("euclid: %w", err)
	}
	dim := fmap.Dim() + 1 // +1 for the (normalized) mean component
	cfg := opts.Tree
	cfg.Dim = dim
	tree, err := rtree.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("euclid: %w", err)
	}
	return &Index{opts: opts, st: st, fmap: fmap, tree: tree, dim: dim}, nil
}

// feature maps a raw window to its feature point: the 2·f_c non-DC DFT
// coordinates plus √n·mean, which is the orthonormal DC coordinate.
// The full map is an orthogonal projection of the window, hence a
// contraction, preserving the no-false-dismissal guarantee.
func (ix *Index) feature(w vec.Vector) vec.Vector {
	f := make(vec.Vector, ix.dim)
	ix.fmap.TransformInto(f[:ix.dim-1], w)
	n := float64(len(w))
	f[ix.dim-1] = vec.Mean(w) * math.Sqrt(n)
	return f
}

// WindowCount returns the number of indexed windows.
func (ix *Index) WindowCount() int { return ix.tree.Len() }

// IndexPageCount returns the number of index pages.
func (ix *Index) IndexPageCount() int { return ix.tree.NodeCount() }

// Build indexes every window of every sequence.
func (ix *Index) Build() error {
	n := ix.opts.WindowLen
	w := make(vec.Vector, n)
	for seq := 0; seq < ix.st.NumSequences(); seq++ {
		L := ix.st.SequenceLen(seq)
		for start := 0; start+n <= L; start++ {
			if err := ix.st.Window(seq, start, n, w, nil); err != nil {
				return fmt.Errorf("euclid: indexing: %w", err)
			}
			ix.tree.Insert(ix.feature(w), store.EncodeWindowID(seq, start))
		}
	}
	return nil
}

// Search returns every window within Euclidean distance eps of q.
// The result set is exact for plain Euclidean similarity; it does NOT
// include windows that only match after scaling or shifting — that is
// the point of the comparison.
func (ix *Index) Search(q vec.Vector, eps float64, stats *Stats) ([]Match, error) {
	if len(q) != ix.opts.WindowLen {
		return nil, fmt.Errorf("euclid: query length %d, window length %d", len(q), ix.opts.WindowLen)
	}
	if eps < 0 {
		return nil, fmt.Errorf("euclid: negative epsilon %v", eps)
	}
	fq := ix.feature(q)
	// ε-ball ⊂ ε-cube: rectangle range search, then exact feature-space
	// ball check happens implicitly via the exact post-check.
	rect := geom.RectFromPoint(fq).Enlarge(eps + ix.slack())

	var treeStats rtree.SearchStats
	candidates := ix.tree.RangeSearch(rect, &treeStats)

	var pc store.PageCounter
	w := make(vec.Vector, ix.opts.WindowLen)
	var out []Match
	falseAlarms := 0
	for _, cand := range candidates {
		seq, start := store.DecodeWindowID(cand.ID)
		if err := ix.st.Window(seq, start, ix.opts.WindowLen, w, &pc); err != nil {
			return nil, fmt.Errorf("euclid: post-processing: %w", err)
		}
		d := vec.Dist(q, w)
		if d > eps {
			falseAlarms++
			continue
		}
		out = append(out, Match{Seq: seq, Start: start, Name: ix.st.SequenceName(seq), Dist: d})
	}
	if stats != nil {
		stats.IndexNodeAccesses += treeStats.NodeAccesses
		stats.DataPageAccesses += pc.Distinct()
		stats.Candidates += len(candidates)
		stats.FalseAlarms += falseAlarms
		stats.Results += len(out)
		stats.LeafEntriesChecked += treeStats.LeafEntriesChecked
	}
	return out, nil
}

// slack widens the index-phase box against floating-point rounding in
// the feature computation, mirroring core's numeric slack.
func (ix *Index) slack() float64 {
	b, ok := ix.tree.Bounds()
	if !ok {
		return 0
	}
	var m float64
	for i := range b.L {
		m = math.Max(m, math.Max(math.Abs(b.L[i]), math.Abs(b.H[i])))
	}
	return 1e-7 * m
}
