package store

import (
	"sync"

	"scaleshift/internal/obs"
)

// Page-level instrumentation: every PageCounter touch also feeds the
// obs default registry, giving the /metrics view the same raw-touch
// and buffer-miss numbers the per-query counters report.  The check is
// one atomic load when the layer is disabled.
var sm struct {
	once sync.Once

	pageTouches *obs.Counter
	poolMisses  *obs.Counter
}

func initStoreMetrics() {
	r := obs.Default
	sm.pageTouches = r.Counter("scaleshift_store_page_touches_total",
		"Data page touches recorded by PageCounters (raw, before dedup).")
	sm.poolMisses = r.Counter("scaleshift_store_pool_misses_total",
		"Page touches that missed the shared LRU buffer pool.")
}

func recordTouch(miss bool) {
	if !obs.Enabled() {
		return
	}
	sm.once.Do(initStoreMetrics)
	sm.pageTouches.Inc()
	if miss {
		sm.poolMisses.Inc()
	}
}
