package store

import (
	"errors"
	"fmt"
)

// ErrStaleSnapshot tags reads that detect the store has mutated since
// the snapshot was taken — matchable with errors.Is so callers can
// re-snapshot instead of silently acting on a superseded view.
var ErrStaleSnapshot = errors.New("store: snapshot is stale")

// Generation returns the store's mutation counter.  Every
// AppendSequence, ExtendSequence, and AppendValues increments it; a
// Snapshot remembers the generation it was taken at.
func (s *Store) Generation() int64 { return s.gen.Load() }

// AppendValues appends values to sequence seq through its tail,
// growing the sequence in place without moving any sample already
// written: the packed region is immutable and tail appends either
// write past every published snapshot's length or reallocate, leaving
// the old backing array intact for snapshot holders.  The prefix sums
// continue with their Kahan compensation, so WindowStats over the
// grown sequence is bit-identical to a sequence appended whole.
//
// AppendValues is a writer-side operation: concurrent appends must be
// serialized by the caller, and concurrent readers must hold a
// Snapshot (reads through the live Store race with the length update).
func (s *Store) AppendValues(seq int, values []float64) error {
	if seq < 0 || seq >= len(s.names) {
		return fmt.Errorf("store: sequence %d out of range [0, %d)", seq, len(s.names))
	}
	if len(values) == 0 {
		return nil
	}
	for len(s.tails) < len(s.names) {
		s.tails = append(s.tails, nil)
	}
	s.tails[seq] = append(s.tails[seq], values...)
	s.lengths[seq] += len(values)
	s.stats[seq].accumulate(values)
	s.gen.Add(1)
	return nil
}

// Snapshot is an immutable view of the store at one generation: every
// read path (Window, WindowView, WindowStats, ScanWindows, the
// sequence accessors) answers over the pinned per-sequence lengths and
// never observes later appends.  Snapshots are cheap — slice headers
// and the length table are copied, the sample data is shared — and
// safe for concurrent use.
type Snapshot struct {
	view
	src *Store
	gen int64
}

// Snapshot captures the store's current contents.  It must be called
// from the writer (or otherwise serialized with mutations): it reads
// the growable slice headers that appends replace.
func (s *Store) Snapshot() *Snapshot {
	sn := &Snapshot{src: s, gen: s.gen.Load()}
	sn.names = s.names[:len(s.names):len(s.names)]
	sn.offsets = s.offsets[:len(s.offsets):len(s.offsets)]
	sn.lengths = append([]int(nil), s.lengths...)
	sn.data = s.data[:len(s.data):len(s.data)]
	if len(s.tails) > 0 {
		sn.tails = make([][]float64, len(s.tails))
		for i, t := range s.tails {
			sn.tails[i] = t[:len(t):len(t)]
		}
	}
	// Pin each sequence's prefix-sum headers at their current length;
	// later in-capacity appends write only beyond them.
	sn.stats = make([]seqStats, len(s.stats))
	for i := range s.stats {
		n := s.lengths[i] + 1
		sn.stats[i] = seqStats{
			psum:   s.stats[i].psum[:n:n],
			psumsq: s.stats[i].psumsq[:n:n],
		}
	}
	return sn
}

// Generation returns the store generation the snapshot was taken at.
func (sn *Snapshot) Generation() int64 { return sn.gen }

// Stale reports whether the store has mutated since the snapshot was
// taken, as a typed error (errors.Is(err, ErrStaleSnapshot)) carrying
// both generations.  A stale snapshot is still safe to read — it just
// no longer reflects the newest samples.
func (sn *Snapshot) Stale() error {
	if cur := sn.src.Generation(); cur != sn.gen {
		return fmt.Errorf("%w: snapshot generation %d, store at %d", ErrStaleSnapshot, sn.gen, cur)
	}
	return nil
}
