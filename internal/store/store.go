// Package store implements the paged time-sequence storage that the
// paper's cost model measures (§7): sequences of float64 samples packed
// contiguously into 4 KB pages, with per-query page-access accounting.
//
// The paper's sequential-scan baseline reads the entire database —
// 650 000 values × 8 bytes / 4 KB ≈ 1300 pages per query — while the
// tree-based search touches only the index pages plus the data pages of
// candidate subsequences fetched during post-processing.  PageCounter
// reproduces both numbers.
//
// A store is append-only in two senses: AppendSequence adds whole new
// sequences to the packed region, and AppendValues grows an existing
// sequence through a per-sequence tail that never moves already-written
// samples.  Readers that must not observe concurrent growth take a
// Snapshot (see append.go), which pins a consistent prefix of every
// sequence.
package store

import (
	"fmt"
	"math"
	"sync/atomic"

	"scaleshift/internal/vec"
)

// PageSize is the disk page size of the paper's experiments (4 KB).
const PageSize = 4096

// ValuesPerPage is how many float64 samples fit in one page.
const ValuesPerPage = PageSize / 8

// PageCounter records page accesses for one query.  Raw counts every
// page touch; Distinct() reports unique pages, modelling a per-query
// buffer pool that never evicts (each page is fetched from disk at
// most once per query).  When Pool is set, every touch is also played
// through the shared LRU buffer pool and Misses counts the touches
// that had to go to disk under that bounded-memory model.
type PageCounter struct {
	Raw    int
	Misses int
	Pool   *BufferPool
	seen   map[int]struct{}
}

// Touch records an access to the given page number.
func (c *PageCounter) Touch(page int) {
	c.Raw++
	if c.seen == nil {
		c.seen = make(map[int]struct{})
	}
	c.seen[page] = struct{}{}
	miss := false
	if c.Pool != nil && !c.Pool.Access(page) {
		c.Misses++
		miss = true
	}
	recordTouch(miss)
}

// Distinct returns the number of unique pages touched.
func (c *PageCounter) Distinct() int { return len(c.seen) }

// Merge folds o's accesses into c as if c had performed them: raw
// touches and misses add, distinct pages union.  It combines the
// private counters of a parallel verification pass into the query's
// counter; o must not be attached to a Pool (workers run pool-less).
func (c *PageCounter) Merge(o *PageCounter) {
	c.Raw += o.Raw
	c.Misses += o.Misses
	if len(o.seen) == 0 {
		return
	}
	if c.seen == nil {
		c.seen = make(map[int]struct{}, len(o.seen))
	}
	for p := range o.seen {
		c.seen[p] = struct{}{}
	}
}

// Reset clears the counter for the next query.  The attached Pool (if
// any) keeps its resident set, modelling a cache that stays warm
// across queries.
func (c *PageCounter) Reset() {
	c.Raw = 0
	c.Misses = 0
	c.seen = nil
}

// view is the read-side state shared by Store and Snapshot: the packed
// region plus per-sequence growable tails.  Every read path (Window,
// WindowView, WindowStats, ScanWindows) is defined on view, so a
// Snapshot answers them identically over its pinned prefix.
type view struct {
	names   []string
	offsets []int // packed-region index of each sequence's first value
	lengths []int // total samples per sequence (packed + tail)
	data    []float64
	// tails holds the growable suffix of each sequence.  Samples
	// already written are never moved: in-capacity appends write only
	// beyond every published snapshot's length, and a reallocating
	// append leaves the old backing array intact for snapshot holders.
	tails [][]float64
	// stats holds the per-sequence running prefix sums of Σv and Σv²
	// that back O(1) WindowStats lookups during candidate verification.
	stats []seqStats
}

// seqStats carries one sequence's prefix sums: psum[i] (psumsq[i]) is
// the Kahan-compensated sum of the first i samples (their squares).
// The running compensations csum/csumsq are kept so appends continue
// the summation exactly as if the sequence had been appended whole —
// prefix values are therefore independent of the append schedule.
type seqStats struct {
	psum, psumsq []float64
	csum, csumsq float64
}

// accumulate extends the prefix sums with values using Kahan
// compensated summation, which keeps the absolute error of every
// prefix within a small constant multiple of ε_machine times the
// magnitude of the terms — independent of the sequence length — so
// differencing two prefixes stays accurate for O(1) window statistics.
func (st *seqStats) accumulate(values []float64) {
	s := st.psum[len(st.psum)-1]
	q := st.psumsq[len(st.psumsq)-1]
	cs, cq := st.csum, st.csumsq
	for _, v := range values {
		y := v - cs
		t := s + y
		cs = (t - s) - y
		s = t
		st.psum = append(st.psum, s)

		v2 := v * v
		y = v2 - cq
		t = q + y
		cq = (t - q) - y
		q = t
		st.psumsq = append(st.psumsq, q)
	}
	st.csum, st.csumsq = cs, cq
}

// newSeqStats returns empty prefix sums with room for n samples.
func newSeqStats(n int) seqStats {
	return seqStats{
		psum:   append(make([]float64, 0, n+1), 0),
		psumsq: append(make([]float64, 0, n+1), 0),
	}
}

// Store holds a collection of named time sequences packed back to back
// in page-granular storage.  A Store is safe for concurrent reads when
// no append is running; under concurrent appends readers must go
// through Snapshot.
type Store struct {
	view
	// gen counts mutations; Snapshot captures it so readers can detect
	// post-snapshot staleness (ErrStaleSnapshot).
	gen atomic.Int64
}

// New returns an empty store.
func New() *Store { return &Store{} }

// AppendSequence adds a sequence and returns its id.  The values are
// copied.
func (s *Store) AppendSequence(name string, values []float64) int {
	id := len(s.names)
	s.names = append(s.names, name)
	s.offsets = append(s.offsets, len(s.data))
	s.lengths = append(s.lengths, len(values))
	s.data = append(s.data, values...)
	s.tails = append(s.tails, nil)
	s.stats = append(s.stats, newSeqStats(len(values)))
	s.stats[id].accumulate(values)
	s.gen.Add(1)
	return id
}

// ExtendSequence appends values to an existing sequence's packed
// region.  Only the most recently added sequence can grow this way,
// because packed sequences are contiguous — extending an interior
// sequence would shift its successors.  Once a sequence has grown a
// tail via AppendValues its packed region is frozen and ExtendSequence
// refuses (the new samples would land before the tail).
func (s *Store) ExtendSequence(seq int, values []float64) error {
	if seq < 0 || seq >= len(s.names) {
		return fmt.Errorf("store: sequence %d out of range [0, %d)", seq, len(s.names))
	}
	if seq != len(s.names)-1 {
		return fmt.Errorf("store: only the last sequence (%d) can be extended, not %d",
			len(s.names)-1, seq)
	}
	if s.tailLen(seq) > 0 {
		return fmt.Errorf("store: sequence %d already has a tail; use AppendValues", seq)
	}
	s.data = append(s.data, values...)
	s.lengths[seq] += len(values)
	s.stats[seq].accumulate(values)
	s.gen.Add(1)
	return nil
}

// NumSequences returns the number of stored sequences.
func (v *view) NumSequences() int { return len(v.names) }

// TotalValues returns the total number of samples stored.
func (v *view) TotalValues() int {
	total := len(v.data)
	for _, t := range v.tails {
		total += len(t)
	}
	return total
}

// PageCount returns the number of pages the data occupies: the packed
// region plus each sequence's tail, which starts on a page of its own.
func (v *view) PageCount() int {
	pages := (len(v.data) + ValuesPerPage - 1) / ValuesPerPage
	for _, t := range v.tails {
		pages += (len(t) + ValuesPerPage - 1) / ValuesPerPage
	}
	return pages
}

// SequenceName returns the name of sequence seq.
func (v *view) SequenceName(seq int) string { return v.names[seq] }

// SequenceLen returns the number of samples in sequence seq.
func (v *view) SequenceLen(seq int) int { return v.lengths[seq] }

// tailLen returns the length of sequence seq's tail (0 when it has
// none).
func (v *view) tailLen(seq int) int {
	if seq < len(v.tails) {
		return len(v.tails[seq])
	}
	return 0
}

// packedLen returns the length of sequence seq's immutable packed
// region.
func (v *view) packedLen(seq int) int { return v.lengths[seq] - v.tailLen(seq) }

// checkWindow validates a window address against the sequence's total
// length.
func (v *view) checkWindow(seq, start, n int) error {
	if seq < 0 || seq >= len(v.names) {
		return fmt.Errorf("store: sequence %d out of range [0, %d)", seq, len(v.names))
	}
	if n < 0 || start < 0 || start+n > v.lengths[seq] {
		return fmt.Errorf("store: window [%d, %d) outside sequence %d of length %d",
			start, start+n, seq, v.lengths[seq])
	}
	return nil
}

// chargeWindow touches the pages covering n samples from global index
// g of the packed region.
func chargeWindow(pc *PageCounter, g, n int) {
	if pc == nil || n <= 0 {
		return
	}
	for p := g / ValuesPerPage; p <= (g+n-1)/ValuesPerPage; p++ {
		pc.Touch(p)
	}
}

// tailPageStride bounds one sequence's tail to 2^20 pages (4 GiB) so
// tail page ids of different sequences never collide.  Tail pages live
// in a negative id space, disjoint from the packed region's pages.
const tailPageStride = 1 << 20

// tailPage returns the page id of local page p of sequence seq's tail.
func tailPage(seq, p int) int { return -(1 + seq*tailPageStride + p) }

// chargeTail touches the tail pages covering n samples from tail-local
// index lo of sequence seq.
func chargeTail(pc *PageCounter, seq, lo, n int) {
	if pc == nil || n <= 0 {
		return
	}
	for p := lo / ValuesPerPage; p <= (lo+n-1)/ValuesPerPage; p++ {
		pc.Touch(tailPage(seq, p))
	}
}

// Window copies the n samples of sequence seq starting at start into
// dst (which must have length n), charging the covering pages to pc
// (which may be nil).  It returns an error when the window falls
// outside the sequence.
func (v *view) Window(seq, start, n int, dst vec.Vector, pc *PageCounter) error {
	if err := v.checkWindow(seq, start, n); err != nil {
		return err
	}
	if len(dst) != n {
		return fmt.Errorf("store: dst length %d, want %d", len(dst), n)
	}
	v.copyWindow(seq, start, n, dst, pc)
	return nil
}

// copyWindow fills dst with the (validated) window, stitching across
// the packed/tail boundary when needed, and charges the pages touched.
func (v *view) copyWindow(seq, start, n int, dst vec.Vector, pc *PageCounter) {
	pl := v.packedLen(seq)
	g := v.offsets[seq] + start
	switch {
	case start+n <= pl:
		copy(dst, v.data[g:g+n])
		chargeWindow(pc, g, n)
	case start >= pl:
		lo := start - pl
		copy(dst, v.tails[seq][lo:lo+n])
		chargeTail(pc, seq, lo, n)
	default:
		head := pl - start
		copy(dst[:head], v.data[g:g+head])
		copy(dst[head:], v.tails[seq][:n-head])
		chargeWindow(pc, g, head)
		chargeTail(pc, seq, 0, n-head)
	}
}

// WindowView returns the n samples of sequence seq starting at start
// as a read-only view of the backing array, charging the covering
// pages to pc like Window but without copying.  A window that crosses
// the packed/tail boundary is returned as a freshly allocated stitched
// copy — at most one boundary exists per sequence, so this stays rare.
// The view must not be modified; on a live Store it is invalidated by
// the next mutation (take a Snapshot to pin it), and it is safe for
// concurrent use with other reads.
func (v *view) WindowView(seq, start, n int, pc *PageCounter) (vec.Vector, error) {
	if err := v.checkWindow(seq, start, n); err != nil {
		return nil, err
	}
	pl := v.packedLen(seq)
	g := v.offsets[seq] + start
	switch {
	case start+n <= pl:
		chargeWindow(pc, g, n)
		return v.data[g : g+n : g+n], nil
	case start >= pl:
		lo := start - pl
		chargeTail(pc, seq, lo, n)
		t := v.tails[seq]
		return t[lo : lo+n : lo+n], nil
	default:
		w := make(vec.Vector, n)
		v.copyWindow(seq, start, n, w, pc)
		return w, nil
	}
}

// statsEps scales the conservative error bounds WindowStats reports:
// Kahan prefix sums are within 2·ε_machine of the exact sum of their
// terms, differencing adds one rounding each, and the factor 8 leaves
// margin for the compensation's own second-order terms.
const statsEps = 8 * 0x1p-52

// WindowStats are the sufficient statistics Σv and Σv² of one window,
// with conservative absolute error bounds relative to exact
// summation.  Candidate verification combines them with a query-side
// cross term to evaluate MinDist without re-reducing the window.
type WindowStats struct {
	Sum, SumSq       float64
	SumErr, SumSqErr float64
}

// WindowStats retrieves the statistics of the window in O(1) by
// differencing the per-sequence prefix sums.  The prefix sums are
// index-side metadata, so the lookup charges no data pages — the
// verification pass that consumes them still reads (and is charged
// for) the window itself.
func (v *view) WindowStats(seq, start, n int) (WindowStats, error) {
	if err := v.checkWindow(seq, start, n); err != nil {
		return WindowStats{}, err
	}
	st := &v.stats[seq]
	lo, hi := st.psum[start], st.psum[start+n]
	qlo, qhi := st.psumsq[start], st.psumsq[start+n]
	// The Kahan bound is relative to the sum of |terms|; for the squares
	// that is the prefix itself, and for the values Cauchy–Schwarz gives
	// Σ|v| ≤ √(i·Σv²) over any prefix of length i.
	absLo := math.Sqrt(float64(start) * math.Abs(qlo))
	absHi := math.Sqrt(float64(start+n) * math.Abs(qhi))
	return WindowStats{
		Sum:      hi - lo,
		SumSq:    qhi - qlo,
		SumErr:   statsEps * (absLo + absHi + math.Abs(lo) + math.Abs(hi)),
		SumSqErr: statsEps * (math.Abs(qlo) + math.Abs(qhi)),
	}, nil
}

// rebuildStats recomputes every sequence's prefix sums from the raw
// data — used by deserialization, which fills the data array directly
// (deserialized stores are fully packed, so tails are not involved).
func (v *view) rebuildStats() {
	v.stats = make([]seqStats, len(v.names))
	for seq := range v.names {
		v.stats[seq] = newSeqStats(v.lengths[seq])
		v.stats[seq].accumulate(v.data[v.offsets[seq] : v.offsets[seq]+v.lengths[seq]])
	}
}

// ScanWindows streams every length-n sliding window of every sequence
// through fn in storage order, stopping early when fn returns false.
// The window slice passed to fn is reused between calls; clone it to
// retain it.  Each data page is charged to pc exactly once, when the
// scan first enters it — the sequential-read cost model of §7.
func (v *view) ScanWindows(n int, pc *PageCounter, fn func(seq, start int, w vec.Vector) bool) {
	if n <= 0 {
		return
	}
	w := make(vec.Vector, n)
	lastPage := -1
	for seq := range v.names {
		L := v.lengths[seq]
		tl := v.tailLen(seq)
		pl := L - tl
		base := v.offsets[seq]
		if pc != nil && pl > 0 {
			// Charge the packed pages of this sequence as the scan streams
			// over them, including short sequences with no full window.
			first := base / ValuesPerPage
			last := (base + pl - 1) / ValuesPerPage
			for p := first; p <= last; p++ {
				if p > lastPage {
					pc.Touch(p)
					lastPage = p
				}
			}
		}
		if pc != nil && tl > 0 {
			// Tail pages have per-sequence ids, each visited exactly once
			// per scan, so they are charged unconditionally.
			for p := 0; p <= (tl-1)/ValuesPerPage; p++ {
				pc.Touch(tailPage(seq, p))
			}
		}
		for start := 0; start+n <= L; start++ {
			if start+n <= pl {
				copy(w, v.data[base+start:base+start+n])
			} else {
				v.copyWindow(seq, start, n, w, nil)
			}
			if !fn(seq, start, w) {
				return
			}
		}
	}
}

// EncodeWindowID packs a (sequence, start) window address into the
// int64 identifier stored in index leaves.
func EncodeWindowID(seq, start int) int64 {
	return int64(seq)<<32 | int64(uint32(start))
}

// DecodeWindowID unpacks an identifier produced by EncodeWindowID.
func DecodeWindowID(id int64) (seq, start int) {
	return int(id >> 32), int(uint32(id))
}
