// Package store implements the paged time-sequence storage that the
// paper's cost model measures (§7): sequences of float64 samples packed
// contiguously into 4 KB pages, with per-query page-access accounting.
//
// The paper's sequential-scan baseline reads the entire database —
// 650 000 values × 8 bytes / 4 KB ≈ 1300 pages per query — while the
// tree-based search touches only the index pages plus the data pages of
// candidate subsequences fetched during post-processing.  PageCounter
// reproduces both numbers.
package store

import (
	"fmt"

	"scaleshift/internal/vec"
)

// PageSize is the disk page size of the paper's experiments (4 KB).
const PageSize = 4096

// ValuesPerPage is how many float64 samples fit in one page.
const ValuesPerPage = PageSize / 8

// PageCounter records page accesses for one query.  Raw counts every
// page touch; Distinct() reports unique pages, modelling a per-query
// buffer pool that never evicts (each page is fetched from disk at
// most once per query).  When Pool is set, every touch is also played
// through the shared LRU buffer pool and Misses counts the touches
// that had to go to disk under that bounded-memory model.
type PageCounter struct {
	Raw    int
	Misses int
	Pool   *BufferPool
	seen   map[int]struct{}
}

// Touch records an access to the given page number.
func (c *PageCounter) Touch(page int) {
	c.Raw++
	if c.seen == nil {
		c.seen = make(map[int]struct{})
	}
	c.seen[page] = struct{}{}
	if c.Pool != nil && !c.Pool.Access(page) {
		c.Misses++
	}
}

// Distinct returns the number of unique pages touched.
func (c *PageCounter) Distinct() int { return len(c.seen) }

// Reset clears the counter for the next query.  The attached Pool (if
// any) keeps its resident set, modelling a cache that stays warm
// across queries.
func (c *PageCounter) Reset() {
	c.Raw = 0
	c.Misses = 0
	c.seen = nil
}

// Store holds a collection of named time sequences packed back to back
// in page-granular storage.  Sequences are append-only; a Store is safe
// for concurrent reads after all appends complete.
type Store struct {
	names   []string
	offsets []int // global index of each sequence's first value
	lengths []int
	data    []float64
}

// New returns an empty store.
func New() *Store { return &Store{} }

// AppendSequence adds a sequence and returns its id.  The values are
// copied.
func (s *Store) AppendSequence(name string, values []float64) int {
	id := len(s.names)
	s.names = append(s.names, name)
	s.offsets = append(s.offsets, len(s.data))
	s.lengths = append(s.lengths, len(values))
	s.data = append(s.data, values...)
	return id
}

// ExtendSequence appends values to an existing sequence.  Only the
// most recently added sequence can grow, because sequences are packed
// contiguously — extending an interior sequence would shift its
// successors.  This is the natural shape of a live feed: the active
// series receives new samples while completed series are immutable.
func (s *Store) ExtendSequence(seq int, values []float64) error {
	if seq < 0 || seq >= len(s.names) {
		return fmt.Errorf("store: sequence %d out of range [0, %d)", seq, len(s.names))
	}
	if seq != len(s.names)-1 {
		return fmt.Errorf("store: only the last sequence (%d) can be extended, not %d",
			len(s.names)-1, seq)
	}
	s.data = append(s.data, values...)
	s.lengths[seq] += len(values)
	return nil
}

// NumSequences returns the number of stored sequences.
func (s *Store) NumSequences() int { return len(s.names) }

// TotalValues returns the total number of samples stored.
func (s *Store) TotalValues() int { return len(s.data) }

// PageCount returns the number of pages the data occupies.
func (s *Store) PageCount() int {
	return (len(s.data) + ValuesPerPage - 1) / ValuesPerPage
}

// SequenceName returns the name of sequence seq.
func (s *Store) SequenceName(seq int) string { return s.names[seq] }

// SequenceLen returns the number of samples in sequence seq.
func (s *Store) SequenceLen(seq int) int { return s.lengths[seq] }

// Window copies the n samples of sequence seq starting at start into
// dst (which must have length n), charging the covering pages to pc
// (which may be nil).  It returns an error when the window falls
// outside the sequence.
func (s *Store) Window(seq, start, n int, dst vec.Vector, pc *PageCounter) error {
	if seq < 0 || seq >= len(s.names) {
		return fmt.Errorf("store: sequence %d out of range [0, %d)", seq, len(s.names))
	}
	if n < 0 || start < 0 || start+n > s.lengths[seq] {
		return fmt.Errorf("store: window [%d, %d) outside sequence %d of length %d",
			start, start+n, seq, s.lengths[seq])
	}
	if len(dst) != n {
		return fmt.Errorf("store: dst length %d, want %d", len(dst), n)
	}
	g := s.offsets[seq] + start
	copy(dst, s.data[g:g+n])
	if pc != nil && n > 0 {
		for p := g / ValuesPerPage; p <= (g+n-1)/ValuesPerPage; p++ {
			pc.Touch(p)
		}
	}
	return nil
}

// ScanWindows streams every length-n sliding window of every sequence
// through fn in storage order, stopping early when fn returns false.
// The window slice passed to fn is reused between calls; clone it to
// retain it.  Each data page is charged to pc exactly once, when the
// scan first enters it — the sequential-read cost model of §7.
func (s *Store) ScanWindows(n int, pc *PageCounter, fn func(seq, start int, w vec.Vector) bool) {
	if n <= 0 {
		return
	}
	w := make(vec.Vector, n)
	lastPage := -1
	for seq := range s.names {
		L := s.lengths[seq]
		base := s.offsets[seq]
		if pc != nil && L > 0 {
			// Charge the pages of this sequence as the scan streams over
			// them, including short sequences with no full window.
			first := base / ValuesPerPage
			last := (base + L - 1) / ValuesPerPage
			for p := first; p <= last; p++ {
				if p > lastPage {
					pc.Touch(p)
					lastPage = p
				}
			}
		}
		for start := 0; start+n <= L; start++ {
			copy(w, s.data[base+start:base+start+n])
			if !fn(seq, start, w) {
				return
			}
		}
	}
}

// EncodeWindowID packs a (sequence, start) window address into the
// int64 identifier stored in index leaves.
func EncodeWindowID(seq, start int) int64 {
	return int64(seq)<<32 | int64(uint32(start))
}

// DecodeWindowID unpacks an identifier produced by EncodeWindowID.
func DecodeWindowID(id int64) (seq, start int) {
	return int(id >> 32), int(uint32(id))
}
