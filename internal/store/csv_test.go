package store

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"scaleshift/internal/vec"
)

func TestCSVRoundTrip(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(1))
	want := make(map[string][]float64)
	for i := 0; i < 10; i++ {
		name := "SEQ" + string(rune('A'+i))
		vals := make([]float64, 5+r.Intn(50))
		for j := range vals {
			vals[j] = r.NormFloat64() * math.Pow(10, float64(r.Intn(7)-3))
		}
		s.AppendSequence(name, vals)
		want[name] = vals
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSequences() != s.NumSequences() {
		t.Fatalf("round trip lost sequences: %d vs %d", got.NumSequences(), s.NumSequences())
	}
	for seq := 0; seq < got.NumSequences(); seq++ {
		name := got.SequenceName(seq)
		vals := want[name]
		if got.SequenceLen(seq) != len(vals) {
			t.Fatalf("%s: length %d vs %d", name, got.SequenceLen(seq), len(vals))
		}
		dst := make(vec.Vector, len(vals))
		if err := got.Window(seq, 0, len(vals), dst, nil); err != nil {
			t.Fatal(err)
		}
		for j := range vals {
			if dst[j] != vals[j] {
				t.Fatalf("%s[%d]: %v vs %v (bit-exactness lost)", name, j, dst[j], vals[j])
			}
		}
	}
}

func TestCSVEmptySequenceAndBlankLines(t *testing.T) {
	in := "a,1,2\n\nb\nc,3\n"
	st, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSequences() != 3 {
		t.Fatalf("%d sequences", st.NumSequences())
	}
	if st.SequenceLen(1) != 0 {
		t.Errorf("bare-name sequence length %d", st.SequenceLen(1))
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,notanumber\n")); err == nil {
		t.Error("bad float accepted")
	}
	if _, err := ReadCSV(strings.NewReader(",1,2\n")); err == nil {
		t.Error("empty name accepted")
	}
	s := New()
	s.AppendSequence("bad,name", []float64{1})
	if err := s.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Error("comma in name accepted")
	}
}

func TestCSVWindowsLineEndings(t *testing.T) {
	st, err := ReadCSV(strings.NewReader("a,1,2\r\nb,3\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSequences() != 2 || st.SequenceLen(0) != 2 {
		t.Errorf("CRLF parsing broken: %d seqs", st.NumSequences())
	}
}
