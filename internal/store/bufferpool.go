package store

import "container/list"

// BufferPool is an LRU page cache model.  It holds no page contents —
// only identities — because the cost model needs hit/miss accounting,
// not data: a PageCounter with an attached pool charges only misses,
// so experiments can study how a limited buffer changes the relative
// cost of sequential scans (which flood the LRU) versus index searches
// (which re-touch hot directory and data pages).
type BufferPool struct {
	capacity int
	ll       *list.List // front = most recently used; values are page numbers
	pages    map[int]*list.Element
	hits     int
	misses   int
}

// NewBufferPool returns an empty pool holding up to capacity pages.
// Capacity 0 means every access misses.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	return &BufferPool{
		capacity: capacity,
		ll:       list.New(),
		pages:    make(map[int]*list.Element),
	}
}

// Access records a reference to the page, returning true on a hit.
// On a miss the page is admitted, evicting the least recently used
// page when full.
func (b *BufferPool) Access(page int) bool {
	if e, ok := b.pages[page]; ok {
		b.ll.MoveToFront(e)
		b.hits++
		return true
	}
	b.misses++
	if b.capacity == 0 {
		return false
	}
	if b.ll.Len() >= b.capacity {
		oldest := b.ll.Back()
		b.ll.Remove(oldest)
		delete(b.pages, oldest.Value.(int))
	}
	b.pages[page] = b.ll.PushFront(page)
	return false
}

// Hits returns the number of cache hits since the last Reset.
func (b *BufferPool) Hits() int { return b.hits }

// Misses returns the number of cache misses since the last Reset.
func (b *BufferPool) Misses() int { return b.misses }

// Len returns the number of resident pages.
func (b *BufferPool) Len() int { return b.ll.Len() }

// Capacity returns the configured capacity.
func (b *BufferPool) Capacity() int { return b.capacity }

// ResetStats clears the hit/miss counters, keeping the resident set —
// use between queries to measure steady-state behaviour.
func (b *BufferPool) ResetStats() { b.hits, b.misses = 0, 0 }
