package store

import (
	"bytes"
	"errors"
	"testing"

	"scaleshift/internal/faulty"
)

func goodArtifact(t *testing.T) ([]byte, *Store) {
	t.Helper()
	st := New()
	st.AppendSequence("alpha", []float64{1, 2.5, -3, 4, 0.125})
	st.AppendSequence("beta", []float64{9, 8, 7})
	st.AppendSequence("empty-name", nil)
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st
}

// TestStoreArtifactCorruptionAlwaysDetected flips every byte and cuts
// every prefix of a real artifact: nothing may load, and every
// failure must carry one of the typed sentinels.
func TestStoreArtifactCorruptionAlwaysDetected(t *testing.T) {
	good, _ := goodArtifact(t)
	if _, err := ReadBinary(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine artifact rejected: %v", err)
	}
	for off := range good {
		for _, mask := range []byte{0x01, 0x80} {
			bad := append([]byte(nil), good...)
			bad[off] ^= mask
			if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
				t.Fatalf("flip 0x%02x at byte %d accepted", mask, off)
			}
		}
	}
	for cut := 0; cut < len(good); cut++ {
		_, err := ReadBinary(bytes.NewReader(good[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrVersion) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
}

// TestStoreArtifactFaultInjection drives the loader through the
// faulty wrappers: injected read errors, truncation, and in-flight
// bit flips must all surface as errors, never as a loaded store.
func TestStoreArtifactFaultInjection(t *testing.T) {
	good, _ := goodArtifact(t)

	if _, err := ReadBinary(faulty.ErrReader(bytes.NewReader(good), int64(len(good)/2), nil)); err == nil {
		t.Error("mid-stream read fault accepted")
	}
	if _, err := ReadBinary(faulty.TruncateReader(bytes.NewReader(good), int64(len(good)-1))); err == nil {
		t.Error("one-byte truncation accepted")
	}
	for _, off := range []int{0, 5, 8, len(good) / 2, len(good) - 1} {
		if _, err := ReadBinary(faulty.BitFlipReader(bytes.NewReader(good), int64(off), 0x20)); err == nil {
			t.Errorf("in-flight flip at %d accepted", off)
		}
	}

	// A writer that lies about short writes produces an artifact the
	// loader rejects — the checksums catch what the writer hid.
	st := New()
	st.AppendSequence("x", []float64{1, 2, 3, 4, 5, 6, 7, 8})
	var sink bytes.Buffer
	if err := st.WriteBinary(faulty.ShortWriter(&sink, 40)); err != nil {
		// An error here is also acceptable (the writer may detect it);
		// the invariant under test is only that NO torn artifact loads.
		t.Logf("short write surfaced at write time: %v", err)
	}
	if sink.Len() > 0 {
		if _, err := ReadBinary(bytes.NewReader(sink.Bytes())); err == nil {
			t.Error("artifact from a lying short writer loaded")
		}
	}

	// Version skew is its own signal.
	v1 := append([]byte(nil), good...)
	v1[5] = 0x01
	if _, err := ReadBinary(bytes.NewReader(v1)); !errors.Is(err, ErrVersion) {
		t.Errorf("v1 artifact: err = %v, want ErrVersion", err)
	}
}
