package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// storeMagic identifies the binary store format, version 1.
var storeMagic = []byte("SSTOR\x01")

// maxSequences bounds deserialization against corrupt headers.
const maxSequences = 1 << 28

// WriteBinary serializes the store in a compact little-endian format:
// magic, sequence count, per-sequence name and length, then the raw
// sample data.  The format is bit-exact: ReadBinary reproduces every
// float64 identically.
func (s *Store) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(storeMagic); err != nil {
		return err
	}
	var scratch [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := writeU64(uint64(len(s.names))); err != nil {
		return err
	}
	for seq := range s.names {
		name := s.names[seq]
		if err := writeU64(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := writeU64(uint64(s.lengths[seq])); err != nil {
			return err
		}
	}
	for _, v := range s.data {
		if err := writeU64(math.Float64bits(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the format written by WriteBinary into a fresh
// store.
func ReadBinary(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(head) != string(storeMagic) {
		return nil, fmt.Errorf("store: bad magic %q", head)
	}
	var scratch [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	nSeqs, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("store: reading sequence count: %w", err)
	}
	if nSeqs > maxSequences {
		return nil, fmt.Errorf("store: implausible sequence count %d", nSeqs)
	}
	st := New()
	total := 0
	for i := uint64(0); i < nSeqs; i++ {
		nameLen, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("store: sequence %d name length: %w", i, err)
		}
		if nameLen > 1<<20 {
			return nil, fmt.Errorf("store: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("store: sequence %d name: %w", i, err)
		}
		length, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("store: sequence %d length: %w", i, err)
		}
		if length > 1<<40 {
			return nil, fmt.Errorf("store: implausible sequence length %d", length)
		}
		st.names = append(st.names, string(name))
		st.offsets = append(st.offsets, total)
		st.lengths = append(st.lengths, int(length))
		total += int(length)
	}
	// Grow incrementally rather than trusting the header's total: a
	// corrupt length field must fail at end-of-input, not allocate
	// gigabytes up front.
	capHint := total
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	st.data = make([]float64, 0, capHint)
	for j := 0; j < total; j++ {
		bits, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("store: data value %d: %w", j, err)
		}
		st.data = append(st.data, math.Float64frombits(bits))
	}
	st.rebuildStats()
	return st, nil
}
