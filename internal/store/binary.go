package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"scaleshift/internal/binio"
)

// storeMagic identifies the binary store format, version 2: two
// CRC32C-protected sections (header: sequence count, names, lengths;
// data: raw little-endian float64 samples) and a whole-file trailer
// checksum.  Version 1 (unchecksummed) artifacts are rejected with
// ErrVersion; rebuild them from source data.
var storeMagic = []byte("SSTOR\x02")

// Typed artifact-validation failures, re-exported from the shared
// framing package so callers can errors.Is against store.ErrChecksum
// etc. without importing internal/binio.
var (
	ErrChecksum  = binio.ErrChecksum
	ErrTruncated = binio.ErrTruncated
	ErrVersion   = binio.ErrVersion
)

// maxSequences bounds deserialization against corrupt headers.
const maxSequences = 1 << 28

// maxSectionLen bounds a single section's length claim (64 GiB of
// samples); the chunked section reader fails fast on anything the
// input cannot actually provide.
const maxSectionLen = 1 << 36

// WriteBinary serializes the store in the checksummed v2 format.  The
// format is bit-exact: ReadBinary reproduces every float64
// identically, and any torn, truncated, or bit-flipped artifact fails
// ReadBinary with a typed error instead of loading silently wrong.
//
// The receiver is the shared view, so the method also serves Snapshot:
// a checkpoint serializes a pinned snapshot off the writer lock while
// appends keep landing in the live store.
func (v *view) WriteBinary(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Magic(storeMagic)

	var head bytes.Buffer
	var scratch [8]byte
	writeU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(scratch[:], x)
		head.Write(scratch[:])
	}
	writeU64(uint64(len(v.names)))
	for seq := range v.names {
		name := v.names[seq]
		writeU64(uint64(len(name)))
		head.WriteString(name)
		writeU64(uint64(v.lengths[seq]))
	}
	bw.Section(head.Bytes())

	// Emit samples per sequence — packed region then tail — so a store
	// grown by AppendValues round-trips into fully compacted form.
	data := make([]byte, 0, 8*v.TotalValues())
	var buf [8]byte
	emit := func(vals []float64) {
		for _, x := range vals {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			data = append(data, buf[:]...)
		}
	}
	for seq := range v.names {
		pl := v.packedLen(seq)
		emit(v.data[v.offsets[seq] : v.offsets[seq]+pl])
		if tl := v.tailLen(seq); tl > 0 {
			emit(v.tails[seq][:tl])
		}
	}
	bw.Section(data)
	return bw.Close()
}

// ReadBinary parses the format written by WriteBinary into a fresh
// store.  Failures are classified: ErrVersion for recognizable
// artifacts of another format version, ErrTruncated for input that
// ends early, ErrChecksum for damaged bytes — all wrapped with
// context and matchable via errors.Is.
func ReadBinary(r io.Reader) (*Store, error) {
	br := binio.NewReader(r)
	if err := br.Magic(storeMagic); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}

	head, err := br.Section(maxSectionLen)
	if err != nil {
		return nil, fmt.Errorf("store: header section: %w", err)
	}
	hr := bytes.NewReader(head)
	var scratch [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(hr, scratch[:]); err != nil {
			return 0, fmt.Errorf("%w (header too short)", ErrTruncated)
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	nSeqs, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("store: reading sequence count: %w", err)
	}
	if nSeqs > maxSequences {
		return nil, fmt.Errorf("store: implausible sequence count %d", nSeqs)
	}
	st := New()
	total := 0
	for i := uint64(0); i < nSeqs; i++ {
		nameLen, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("store: sequence %d name length: %w", i, err)
		}
		if nameLen > 1<<20 || nameLen > uint64(hr.Len()) {
			return nil, fmt.Errorf("store: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(hr, name); err != nil {
			return nil, fmt.Errorf("store: sequence %d name: %w", i, ErrTruncated)
		}
		length, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("store: sequence %d length: %w", i, err)
		}
		if length > 1<<40 {
			return nil, fmt.Errorf("store: implausible sequence length %d", length)
		}
		st.names = append(st.names, string(name))
		st.offsets = append(st.offsets, total)
		st.lengths = append(st.lengths, int(length))
		total += int(length)
	}
	if hr.Len() != 0 {
		return nil, fmt.Errorf("store: %d trailing header bytes: %w", hr.Len(), ErrChecksum)
	}

	data, err := br.Section(maxSectionLen)
	if err != nil {
		return nil, fmt.Errorf("store: data section: %w", err)
	}
	if len(data) != 8*total {
		return nil, fmt.Errorf("store: data section holds %d bytes but header implies %d: %w",
			len(data), 8*total, ErrChecksum)
	}
	st.data = make([]float64, total)
	for j := range st.data {
		st.data[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[j*8:]))
	}
	if err := br.Trailer(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st.rebuildStats()
	return st, nil
}
