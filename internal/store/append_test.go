package store

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"scaleshift/internal/vec"
)

// refStore builds a packed store holding the same sequences as the
// given name/value pairs appended whole.
func refStore(names []string, seqs [][]float64) *Store {
	st := New()
	for i, name := range names {
		st.AppendSequence(name, seqs[i])
	}
	return st
}

// TestAppendValuesEquivalence grows sequences through random tail
// appends and asserts every read path — Window, WindowView,
// WindowStats, ScanWindows — is bit-identical to a packed store built
// from the final values in one shot.
func TestAppendValuesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"a", "b", "c"}
	init := [][]float64{nil, nil, nil}
	for i := range init {
		for j := 0; j < 20+10*i; j++ {
			init[i] = append(init[i], rng.NormFloat64()*10)
		}
	}
	grown := New()
	final := make([][]float64, len(names))
	for i, name := range names {
		grown.AppendSequence(name, init[i])
		final[i] = append(final[i], init[i]...)
	}
	for step := 0; step < 40; step++ {
		seq := rng.Intn(len(names))
		chunk := make([]float64, 1+rng.Intn(7))
		for j := range chunk {
			chunk[j] = rng.NormFloat64() * 10
		}
		if err := grown.AppendValues(seq, chunk); err != nil {
			t.Fatal(err)
		}
		final[seq] = append(final[seq], chunk...)
	}
	ref := refStore(names, final)

	if grown.TotalValues() != ref.TotalValues() {
		t.Fatalf("TotalValues %d, want %d", grown.TotalValues(), ref.TotalValues())
	}
	const n = 8
	for seq := range names {
		if grown.SequenceLen(seq) != ref.SequenceLen(seq) {
			t.Fatalf("seq %d length %d, want %d", seq, grown.SequenceLen(seq), ref.SequenceLen(seq))
		}
		for start := 0; start+n <= ref.SequenceLen(seq); start++ {
			got := make([]float64, n)
			want := make([]float64, n)
			if err := grown.Window(seq, start, n, got, nil); err != nil {
				t.Fatal(err)
			}
			if err := ref.Window(seq, start, n, want, nil); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("window (%d,%d)[%d] = %v, want %v", seq, start, i, got[i], want[i])
				}
			}
			gv, err := grown.WindowView(seq, start, n, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range gv {
				if gv[i] != want[i] {
					t.Fatalf("view (%d,%d)[%d] = %v, want %v", seq, start, i, gv[i], want[i])
				}
			}
			gs, err := grown.WindowStats(seq, start, n)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := ref.WindowStats(seq, start, n)
			if err != nil {
				t.Fatal(err)
			}
			if gs != ws {
				t.Fatalf("stats (%d,%d) = %+v, want %+v", seq, start, gs, ws)
			}
		}
	}

	// ScanWindows must visit the same windows with the same values.
	type win struct{ seq, start int }
	collect := func(s *Store) map[win][]float64 {
		out := map[win][]float64{}
		s.ScanWindows(n, nil, func(seq, start int, w vec.Vector) bool {
			out[win{seq, start}] = append([]float64(nil), w...)
			return true
		})
		return out
	}
	got, want := collect(grown), collect(ref)
	if len(got) != len(want) {
		t.Fatalf("scan visited %d windows, want %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("scan missed window %+v", k)
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("scan window %+v differs at %d", k, i)
			}
		}
	}
}

// TestAppendPageAccounting: a full scan of a tail-grown store charges
// exactly PageCount pages, once each.
func TestAppendPageAccounting(t *testing.T) {
	st := New()
	vals := make([]float64, 700)
	for i := range vals {
		vals[i] = float64(i)
	}
	st.AppendSequence("a", vals[:600])
	st.AppendSequence("b", vals[:100])
	if err := st.AppendValues(0, vals[:650]); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendValues(1, vals[:10]); err != nil {
		t.Fatal(err)
	}
	wantPages := (600+100+ValuesPerPage-1)/ValuesPerPage +
		(650+ValuesPerPage-1)/ValuesPerPage +
		(10+ValuesPerPage-1)/ValuesPerPage
	if st.PageCount() != wantPages {
		t.Fatalf("PageCount = %d, want %d", st.PageCount(), wantPages)
	}
	var pc PageCounter
	st.ScanWindows(16, &pc, func(int, int, vec.Vector) bool { return true })
	if pc.Raw != st.PageCount() || pc.Distinct() != st.PageCount() {
		t.Fatalf("scan charged raw=%d distinct=%d, want %d", pc.Raw, pc.Distinct(), st.PageCount())
	}
}

// TestSnapshotStaleness: a snapshot pins its generation and its
// per-sequence lengths; post-snapshot appends flip Stale() to the
// typed error while the pinned reads keep answering the old contents.
func TestSnapshotStaleness(t *testing.T) {
	st := New()
	st.AppendSequence("a", []float64{1, 2, 3, 4})
	sn := st.Snapshot()
	if err := sn.Stale(); err != nil {
		t.Fatalf("fresh snapshot reported stale: %v", err)
	}
	if sn.Generation() != st.Generation() {
		t.Fatalf("generation mismatch: %d vs %d", sn.Generation(), st.Generation())
	}
	if err := st.AppendValues(0, []float64{5, 6}); err != nil {
		t.Fatal(err)
	}
	err := sn.Stale()
	if err == nil || !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("want ErrStaleSnapshot, got %v", err)
	}
	if sn.SequenceLen(0) != 4 {
		t.Fatalf("snapshot length moved to %d", sn.SequenceLen(0))
	}
	if _, err := sn.WindowView(0, 2, 4, nil); err == nil {
		t.Fatal("snapshot served a window beyond its pinned length")
	}
	w := make([]float64, 4)
	if err := sn.Window(0, 0, 4, w, nil); err != nil {
		t.Fatal(err)
	}
	if w[3] != 4 {
		t.Fatalf("snapshot window = %v", w)
	}
	if st.SequenceLen(0) != 6 {
		t.Fatalf("store length %d, want 6", st.SequenceLen(0))
	}
}

// TestAppendValuesRoundTrip: a tail-grown store serializes into the
// compacted packed layout and reloads bit-identically.
func TestAppendValuesRoundTrip(t *testing.T) {
	st := New()
	st.AppendSequence("x", []float64{1.5, -2.25, math.Pi})
	st.AppendSequence("y", []float64{0.5})
	if err := st.AppendValues(0, []float64{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendValues(1, []float64{-1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < st.NumSequences(); seq++ {
		n := st.SequenceLen(seq)
		if got.SequenceLen(seq) != n {
			t.Fatalf("seq %d length %d, want %d", seq, got.SequenceLen(seq), n)
		}
		a, b := make([]float64, n), make([]float64, n)
		if err := st.Window(seq, 0, n, a, nil); err != nil {
			t.Fatal(err)
		}
		if err := got.Window(seq, 0, n, b, nil); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seq %d sample %d: %v != %v", seq, i, a[i], b[i])
			}
		}
	}
}

// TestSnapshotWriteBinary serializes a pinned snapshot while appends
// keep mutating the live store: the artifact must reproduce exactly
// the snapshot's contents — the checkpoint writer depends on this to
// serialize off the ingest lock.
func TestSnapshotWriteBinary(t *testing.T) {
	st := New()
	st.AppendSequence("x", []float64{1, 2, 3})
	st.AppendSequence("y", []float64{4})
	if err := st.AppendValues(0, []float64{5, 6}); err != nil {
		t.Fatal(err)
	}
	sn := st.Snapshot()
	want := make(map[int][]float64)
	for seq := 0; seq < sn.NumSequences(); seq++ {
		w := make([]float64, sn.SequenceLen(seq))
		if err := sn.Window(seq, 0, len(w), w, nil); err != nil {
			t.Fatal(err)
		}
		want[seq] = w
	}

	// Mutate the live store after the snapshot: both an in-capacity
	// append and a (likely) reallocating one.
	if err := st.AppendValues(0, []float64{99}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendValues(1, make([]float64, 1024)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sn.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSequences() != sn.NumSequences() {
		t.Fatalf("round trip has %d sequences, want %d", got.NumSequences(), sn.NumSequences())
	}
	for seq, w := range want {
		if got.SequenceLen(seq) != len(w) {
			t.Fatalf("seq %d length %d, want snapshot length %d (post-snapshot appends leaked)",
				seq, got.SequenceLen(seq), len(w))
		}
		g := make([]float64, len(w))
		if err := got.Window(seq, 0, len(g), g, nil); err != nil {
			t.Fatal(err)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("seq %d sample %d: %v != %v", seq, i, g[i], w[i])
			}
		}
	}
}

// TestExtendAfterTailRefused: once a sequence has a tail its packed
// region is frozen.
func TestExtendAfterTailRefused(t *testing.T) {
	st := New()
	st.AppendSequence("a", []float64{1, 2})
	if err := st.AppendValues(0, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if err := st.ExtendSequence(0, []float64{4}); err == nil {
		t.Fatal("ExtendSequence after AppendValues must refuse")
	}
	if err := st.AppendValues(0, []float64{4}); err != nil {
		t.Fatal(err)
	}
	if st.SequenceLen(0) != 4 {
		t.Fatalf("length %d, want 4", st.SequenceLen(0))
	}
}
