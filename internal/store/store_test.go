package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scaleshift/internal/vec"
)

func TestAppendAndAccessors(t *testing.T) {
	s := New()
	id0 := s.AppendSequence("a", []float64{1, 2, 3})
	id1 := s.AppendSequence("b", []float64{4, 5})
	if id0 != 0 || id1 != 1 {
		t.Errorf("ids = %d, %d", id0, id1)
	}
	if s.NumSequences() != 2 || s.TotalValues() != 5 {
		t.Errorf("counts: %d seqs, %d values", s.NumSequences(), s.TotalValues())
	}
	if s.SequenceName(0) != "a" || s.SequenceLen(1) != 2 {
		t.Error("metadata wrong")
	}
}

func TestAppendCopies(t *testing.T) {
	s := New()
	vals := []float64{1, 2, 3}
	s.AppendSequence("a", vals)
	vals[0] = 99
	dst := make(vec.Vector, 3)
	if err := s.Window(0, 0, 3, dst, nil); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 1 {
		t.Error("store shares caller's slice")
	}
}

func TestWindowRoundTrip(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(1))
	seqs := make([][]float64, 5)
	for i := range seqs {
		seqs[i] = make([]float64, 100+r.Intn(400))
		for j := range seqs[i] {
			seqs[i][j] = r.NormFloat64()
		}
		s.AppendSequence("s", seqs[i])
	}
	for trial := 0; trial < 200; trial++ {
		seq := r.Intn(5)
		n := 1 + r.Intn(50)
		start := r.Intn(len(seqs[seq]) - n + 1)
		dst := make(vec.Vector, n)
		if err := s.Window(seq, start, n, dst, nil); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if dst[j] != seqs[seq][start+j] {
				t.Fatalf("value mismatch at seq %d start %d offset %d", seq, start, j)
			}
		}
	}
}

func TestWindowErrors(t *testing.T) {
	s := New()
	s.AppendSequence("a", []float64{1, 2, 3})
	dst := make(vec.Vector, 2)
	tests := []struct {
		name          string
		seq, start, n int
		dstLen        int
	}{
		{"bad seq", 1, 0, 2, 2},
		{"negative seq", -1, 0, 2, 2},
		{"negative start", 0, -1, 2, 2},
		{"past end", 0, 2, 2, 2},
		{"negative n", 0, 0, -1, 2},
		{"dst mismatch", 0, 0, 2, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := dst
			if tc.dstLen != 2 {
				d = make(vec.Vector, tc.dstLen)
			}
			if err := s.Window(tc.seq, tc.start, tc.n, d, nil); err == nil {
				t.Error("expected error")
			}
		})
	}
	// In-bounds window at the very end works.
	if err := s.Window(0, 1, 2, dst, nil); err != nil {
		t.Errorf("valid window errored: %v", err)
	}
}

func TestPageCountFormula(t *testing.T) {
	// The paper's number: 0.65M values * 8 bytes / 4KB = ~1270 pages.
	s := New()
	for i := 0; i < 1000; i++ {
		s.AppendSequence("stk", make([]float64, 650))
	}
	if got := s.TotalValues(); got != 650000 {
		t.Fatalf("TotalValues = %d", got)
	}
	want := (650000 + ValuesPerPage - 1) / ValuesPerPage // 1270
	if got := s.PageCount(); got != want {
		t.Errorf("PageCount = %d, want %d", got, want)
	}
	if want < 1200 || want > 1350 {
		t.Errorf("page count %d far from the paper's ~1300", want)
	}
}

func TestPageCounter(t *testing.T) {
	var pc PageCounter
	pc.Touch(3)
	pc.Touch(3)
	pc.Touch(5)
	if pc.Raw != 3 || pc.Distinct() != 2 {
		t.Errorf("Raw=%d Distinct=%d", pc.Raw, pc.Distinct())
	}
	pc.Reset()
	if pc.Raw != 0 || pc.Distinct() != 0 {
		t.Errorf("after reset: Raw=%d Distinct=%d", pc.Raw, pc.Distinct())
	}
}

func TestWindowPageAccounting(t *testing.T) {
	s := New()
	s.AppendSequence("a", make([]float64, 3*ValuesPerPage))
	dst := make(vec.Vector, 10)
	var pc PageCounter

	// Entirely inside page 0.
	if err := s.Window(0, 5, 10, dst, &pc); err != nil {
		t.Fatal(err)
	}
	if pc.Raw != 1 || pc.Distinct() != 1 {
		t.Errorf("single page: %d raw %d distinct", pc.Raw, pc.Distinct())
	}
	// Straddling pages 0-1.
	pc.Reset()
	if err := s.Window(0, ValuesPerPage-5, 10, dst, &pc); err != nil {
		t.Fatal(err)
	}
	if pc.Raw != 2 {
		t.Errorf("straddling window touched %d pages", pc.Raw)
	}
	// Full-page window.
	pc.Reset()
	big := make(vec.Vector, ValuesPerPage)
	if err := s.Window(0, 0, ValuesPerPage, big, &pc); err != nil {
		t.Fatal(err)
	}
	if pc.Raw != 1 {
		t.Errorf("aligned full page window touched %d pages", pc.Raw)
	}
	// Distinct dedups across fetches in one query.
	pc.Reset()
	_ = s.Window(0, 0, 10, dst, &pc)
	_ = s.Window(0, 20, 10, dst, &pc)
	if pc.Raw != 2 || pc.Distinct() != 1 {
		t.Errorf("dedup: raw=%d distinct=%d", pc.Raw, pc.Distinct())
	}
}

func TestScanWindowsEnumeratesAll(t *testing.T) {
	s := New()
	lens := []int{100, 37, 64, 5, 200}
	n := 32
	for i, L := range lens {
		vals := make([]float64, L)
		for j := range vals {
			vals[j] = float64(i*1000 + j)
		}
		s.AppendSequence("s", vals)
	}
	want := 0
	for _, L := range lens {
		if L >= n {
			want += L - n + 1
		}
	}
	got := 0
	s.ScanWindows(n, nil, func(seq, start int, w vec.Vector) bool {
		if len(w) != n {
			t.Fatalf("window length %d", len(w))
		}
		// Values must match the generator formula.
		if w[0] != float64(seq*1000+start) {
			t.Fatalf("window content wrong at seq %d start %d", seq, start)
		}
		got++
		return true
	})
	if got != want {
		t.Errorf("scanned %d windows, want %d", got, want)
	}
}

func TestScanWindowsEarlyStop(t *testing.T) {
	s := New()
	s.AppendSequence("a", make([]float64, 100))
	count := 0
	s.ScanWindows(10, nil, func(seq, start int, w vec.Vector) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d windows", count)
	}
}

func TestScanWindowsChargesEveryPageOnce(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.AppendSequence("s", make([]float64, 700))
	}
	var pc PageCounter
	s.ScanWindows(128, &pc, func(seq, start int, w vec.Vector) bool { return true })
	if pc.Raw != s.PageCount() {
		t.Errorf("scan charged %d pages, store has %d", pc.Raw, s.PageCount())
	}
	if pc.Distinct() != s.PageCount() {
		t.Errorf("distinct %d != %d", pc.Distinct(), s.PageCount())
	}
}

func TestScanWindowsZeroN(t *testing.T) {
	s := New()
	s.AppendSequence("a", make([]float64, 10))
	called := false
	s.ScanWindows(0, nil, func(seq, start int, w vec.Vector) bool {
		called = true
		return true
	})
	if called {
		t.Error("n=0 scan produced windows")
	}
}

func TestWindowIDRoundTrip(t *testing.T) {
	f := func(seq uint16, start uint16) bool {
		id := EncodeWindowID(int(seq), int(start))
		s2, st2 := DecodeWindowID(id)
		return s2 == int(seq) && st2 == int(start)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Large but in-range values.
	seq, start := 1<<30, 1<<31-1
	s2, st2 := DecodeWindowID(EncodeWindowID(seq, start))
	if s2 != seq || st2 != start {
		t.Errorf("round trip (%d, %d) -> (%d, %d)", seq, start, s2, st2)
	}
}

func TestBufferPoolLRU(t *testing.T) {
	bp := NewBufferPool(2)
	if bp.Access(1) {
		t.Error("cold access hit")
	}
	if !bp.Access(1) {
		t.Error("warm access missed")
	}
	bp.Access(2) // miss, pool now {1,2}
	bp.Access(3) // miss, evicts 1 (LRU order: 2 was... 1 touched most recently before 2)
	// After accesses 1,1,2,3: LRU evicted 1? Order front->back after 1,1,2: [2,1]; 3 evicts 1.
	if bp.Access(2) != true {
		t.Error("2 should be resident")
	}
	if bp.Access(1) {
		t.Error("1 should have been evicted")
	}
	if bp.Len() != 2 || bp.Capacity() != 2 {
		t.Errorf("Len=%d Cap=%d", bp.Len(), bp.Capacity())
	}
	if bp.Hits() != 2 || bp.Misses() != 4 {
		t.Errorf("hits=%d misses=%d", bp.Hits(), bp.Misses())
	}
	bp.ResetStats()
	if bp.Hits() != 0 || bp.Misses() != 0 {
		t.Error("ResetStats failed")
	}
	// Resident set survives the stats reset.
	if !bp.Access(2) {
		t.Error("resident set lost on ResetStats")
	}
	// Zero-capacity pool always misses.
	z := NewBufferPool(0)
	z.Access(7)
	if z.Access(7) {
		t.Error("zero-capacity pool cached a page")
	}
	// Negative capacity clamps to zero.
	if NewBufferPool(-5).Capacity() != 0 {
		t.Error("negative capacity not clamped")
	}
}

func TestPageCounterWithPool(t *testing.T) {
	bp := NewBufferPool(1)
	pc := PageCounter{Pool: bp}
	pc.Touch(5)
	pc.Touch(5)
	pc.Touch(6)
	if pc.Raw != 3 || pc.Misses != 2 {
		t.Errorf("Raw=%d Misses=%d", pc.Raw, pc.Misses)
	}
	pc.Reset()
	// Pool retains page 6; touching it again is a hit, not a miss.
	pc.Pool = bp
	pc.Touch(6)
	if pc.Misses != 0 {
		t.Errorf("warm page missed: %d", pc.Misses)
	}
}

func TestExtendSequence(t *testing.T) {
	s := New()
	s.AppendSequence("a", []float64{1, 2, 3})
	b := s.AppendSequence("b", []float64{4, 5})
	// Only the last sequence can grow.
	if err := s.ExtendSequence(0, []float64{9}); err == nil {
		t.Error("extended a non-last sequence")
	}
	if err := s.ExtendSequence(5, []float64{9}); err == nil {
		t.Error("extended an absent sequence")
	}
	if err := s.ExtendSequence(b, []float64{6, 7}); err != nil {
		t.Fatal(err)
	}
	if s.SequenceLen(b) != 4 || s.TotalValues() != 7 {
		t.Errorf("len=%d total=%d", s.SequenceLen(b), s.TotalValues())
	}
	// Windows across the old boundary read correctly.
	w := make(vec.Vector, 4)
	if err := s.Window(b, 0, 4, w, nil); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{4, 5, 6, 7} {
		if w[i] != want {
			t.Fatalf("w[%d]=%v want %v", i, w[i], want)
		}
	}
	// Appending another sequence freezes b.
	s.AppendSequence("c", []float64{8})
	if err := s.ExtendSequence(b, []float64{9}); err == nil {
		t.Error("extended a frozen sequence")
	}
}
