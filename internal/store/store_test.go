package store

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scaleshift/internal/vec"
)

func TestAppendAndAccessors(t *testing.T) {
	s := New()
	id0 := s.AppendSequence("a", []float64{1, 2, 3})
	id1 := s.AppendSequence("b", []float64{4, 5})
	if id0 != 0 || id1 != 1 {
		t.Errorf("ids = %d, %d", id0, id1)
	}
	if s.NumSequences() != 2 || s.TotalValues() != 5 {
		t.Errorf("counts: %d seqs, %d values", s.NumSequences(), s.TotalValues())
	}
	if s.SequenceName(0) != "a" || s.SequenceLen(1) != 2 {
		t.Error("metadata wrong")
	}
}

func TestAppendCopies(t *testing.T) {
	s := New()
	vals := []float64{1, 2, 3}
	s.AppendSequence("a", vals)
	vals[0] = 99
	dst := make(vec.Vector, 3)
	if err := s.Window(0, 0, 3, dst, nil); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 1 {
		t.Error("store shares caller's slice")
	}
}

func TestWindowRoundTrip(t *testing.T) {
	s := New()
	r := rand.New(rand.NewSource(1))
	seqs := make([][]float64, 5)
	for i := range seqs {
		seqs[i] = make([]float64, 100+r.Intn(400))
		for j := range seqs[i] {
			seqs[i][j] = r.NormFloat64()
		}
		s.AppendSequence("s", seqs[i])
	}
	for trial := 0; trial < 200; trial++ {
		seq := r.Intn(5)
		n := 1 + r.Intn(50)
		start := r.Intn(len(seqs[seq]) - n + 1)
		dst := make(vec.Vector, n)
		if err := s.Window(seq, start, n, dst, nil); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if dst[j] != seqs[seq][start+j] {
				t.Fatalf("value mismatch at seq %d start %d offset %d", seq, start, j)
			}
		}
	}
}

func TestWindowErrors(t *testing.T) {
	s := New()
	s.AppendSequence("a", []float64{1, 2, 3})
	dst := make(vec.Vector, 2)
	tests := []struct {
		name          string
		seq, start, n int
		dstLen        int
	}{
		{"bad seq", 1, 0, 2, 2},
		{"negative seq", -1, 0, 2, 2},
		{"negative start", 0, -1, 2, 2},
		{"past end", 0, 2, 2, 2},
		{"negative n", 0, 0, -1, 2},
		{"dst mismatch", 0, 0, 2, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := dst
			if tc.dstLen != 2 {
				d = make(vec.Vector, tc.dstLen)
			}
			if err := s.Window(tc.seq, tc.start, tc.n, d, nil); err == nil {
				t.Error("expected error")
			}
		})
	}
	// In-bounds window at the very end works.
	if err := s.Window(0, 1, 2, dst, nil); err != nil {
		t.Errorf("valid window errored: %v", err)
	}
}

func TestPageCountFormula(t *testing.T) {
	// The paper's number: 0.65M values * 8 bytes / 4KB = ~1270 pages.
	s := New()
	for i := 0; i < 1000; i++ {
		s.AppendSequence("stk", make([]float64, 650))
	}
	if got := s.TotalValues(); got != 650000 {
		t.Fatalf("TotalValues = %d", got)
	}
	want := (650000 + ValuesPerPage - 1) / ValuesPerPage // 1270
	if got := s.PageCount(); got != want {
		t.Errorf("PageCount = %d, want %d", got, want)
	}
	if want < 1200 || want > 1350 {
		t.Errorf("page count %d far from the paper's ~1300", want)
	}
}

func TestPageCounter(t *testing.T) {
	var pc PageCounter
	pc.Touch(3)
	pc.Touch(3)
	pc.Touch(5)
	if pc.Raw != 3 || pc.Distinct() != 2 {
		t.Errorf("Raw=%d Distinct=%d", pc.Raw, pc.Distinct())
	}
	pc.Reset()
	if pc.Raw != 0 || pc.Distinct() != 0 {
		t.Errorf("after reset: Raw=%d Distinct=%d", pc.Raw, pc.Distinct())
	}
}

func TestWindowPageAccounting(t *testing.T) {
	s := New()
	s.AppendSequence("a", make([]float64, 3*ValuesPerPage))
	dst := make(vec.Vector, 10)
	var pc PageCounter

	// Entirely inside page 0.
	if err := s.Window(0, 5, 10, dst, &pc); err != nil {
		t.Fatal(err)
	}
	if pc.Raw != 1 || pc.Distinct() != 1 {
		t.Errorf("single page: %d raw %d distinct", pc.Raw, pc.Distinct())
	}
	// Straddling pages 0-1.
	pc.Reset()
	if err := s.Window(0, ValuesPerPage-5, 10, dst, &pc); err != nil {
		t.Fatal(err)
	}
	if pc.Raw != 2 {
		t.Errorf("straddling window touched %d pages", pc.Raw)
	}
	// Full-page window.
	pc.Reset()
	big := make(vec.Vector, ValuesPerPage)
	if err := s.Window(0, 0, ValuesPerPage, big, &pc); err != nil {
		t.Fatal(err)
	}
	if pc.Raw != 1 {
		t.Errorf("aligned full page window touched %d pages", pc.Raw)
	}
	// Distinct dedups across fetches in one query.
	pc.Reset()
	_ = s.Window(0, 0, 10, dst, &pc)
	_ = s.Window(0, 20, 10, dst, &pc)
	if pc.Raw != 2 || pc.Distinct() != 1 {
		t.Errorf("dedup: raw=%d distinct=%d", pc.Raw, pc.Distinct())
	}
}

func TestScanWindowsEnumeratesAll(t *testing.T) {
	s := New()
	lens := []int{100, 37, 64, 5, 200}
	n := 32
	for i, L := range lens {
		vals := make([]float64, L)
		for j := range vals {
			vals[j] = float64(i*1000 + j)
		}
		s.AppendSequence("s", vals)
	}
	want := 0
	for _, L := range lens {
		if L >= n {
			want += L - n + 1
		}
	}
	got := 0
	s.ScanWindows(n, nil, func(seq, start int, w vec.Vector) bool {
		if len(w) != n {
			t.Fatalf("window length %d", len(w))
		}
		// Values must match the generator formula.
		if w[0] != float64(seq*1000+start) {
			t.Fatalf("window content wrong at seq %d start %d", seq, start)
		}
		got++
		return true
	})
	if got != want {
		t.Errorf("scanned %d windows, want %d", got, want)
	}
}

func TestScanWindowsEarlyStop(t *testing.T) {
	s := New()
	s.AppendSequence("a", make([]float64, 100))
	count := 0
	s.ScanWindows(10, nil, func(seq, start int, w vec.Vector) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d windows", count)
	}
}

func TestScanWindowsChargesEveryPageOnce(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.AppendSequence("s", make([]float64, 700))
	}
	var pc PageCounter
	s.ScanWindows(128, &pc, func(seq, start int, w vec.Vector) bool { return true })
	if pc.Raw != s.PageCount() {
		t.Errorf("scan charged %d pages, store has %d", pc.Raw, s.PageCount())
	}
	if pc.Distinct() != s.PageCount() {
		t.Errorf("distinct %d != %d", pc.Distinct(), s.PageCount())
	}
}

func TestScanWindowsZeroN(t *testing.T) {
	s := New()
	s.AppendSequence("a", make([]float64, 10))
	called := false
	s.ScanWindows(0, nil, func(seq, start int, w vec.Vector) bool {
		called = true
		return true
	})
	if called {
		t.Error("n=0 scan produced windows")
	}
}

func TestWindowIDRoundTrip(t *testing.T) {
	f := func(seq uint16, start uint16) bool {
		id := EncodeWindowID(int(seq), int(start))
		s2, st2 := DecodeWindowID(id)
		return s2 == int(seq) && st2 == int(start)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Large but in-range values.
	seq, start := 1<<30, 1<<31-1
	s2, st2 := DecodeWindowID(EncodeWindowID(seq, start))
	if s2 != seq || st2 != start {
		t.Errorf("round trip (%d, %d) -> (%d, %d)", seq, start, s2, st2)
	}
}

func TestBufferPoolLRU(t *testing.T) {
	bp := NewBufferPool(2)
	if bp.Access(1) {
		t.Error("cold access hit")
	}
	if !bp.Access(1) {
		t.Error("warm access missed")
	}
	bp.Access(2) // miss, pool now {1,2}
	bp.Access(3) // miss, evicts 1 (LRU order: 2 was... 1 touched most recently before 2)
	// After accesses 1,1,2,3: LRU evicted 1? Order front->back after 1,1,2: [2,1]; 3 evicts 1.
	if bp.Access(2) != true {
		t.Error("2 should be resident")
	}
	if bp.Access(1) {
		t.Error("1 should have been evicted")
	}
	if bp.Len() != 2 || bp.Capacity() != 2 {
		t.Errorf("Len=%d Cap=%d", bp.Len(), bp.Capacity())
	}
	if bp.Hits() != 2 || bp.Misses() != 4 {
		t.Errorf("hits=%d misses=%d", bp.Hits(), bp.Misses())
	}
	bp.ResetStats()
	if bp.Hits() != 0 || bp.Misses() != 0 {
		t.Error("ResetStats failed")
	}
	// Resident set survives the stats reset.
	if !bp.Access(2) {
		t.Error("resident set lost on ResetStats")
	}
	// Zero-capacity pool always misses.
	z := NewBufferPool(0)
	z.Access(7)
	if z.Access(7) {
		t.Error("zero-capacity pool cached a page")
	}
	// Negative capacity clamps to zero.
	if NewBufferPool(-5).Capacity() != 0 {
		t.Error("negative capacity not clamped")
	}
}

func TestPageCounterWithPool(t *testing.T) {
	bp := NewBufferPool(1)
	pc := PageCounter{Pool: bp}
	pc.Touch(5)
	pc.Touch(5)
	pc.Touch(6)
	if pc.Raw != 3 || pc.Misses != 2 {
		t.Errorf("Raw=%d Misses=%d", pc.Raw, pc.Misses)
	}
	pc.Reset()
	// Pool retains page 6; touching it again is a hit, not a miss.
	pc.Pool = bp
	pc.Touch(6)
	if pc.Misses != 0 {
		t.Errorf("warm page missed: %d", pc.Misses)
	}
}

func TestExtendSequence(t *testing.T) {
	s := New()
	s.AppendSequence("a", []float64{1, 2, 3})
	b := s.AppendSequence("b", []float64{4, 5})
	// Only the last sequence can grow.
	if err := s.ExtendSequence(0, []float64{9}); err == nil {
		t.Error("extended a non-last sequence")
	}
	if err := s.ExtendSequence(5, []float64{9}); err == nil {
		t.Error("extended an absent sequence")
	}
	if err := s.ExtendSequence(b, []float64{6, 7}); err != nil {
		t.Fatal(err)
	}
	if s.SequenceLen(b) != 4 || s.TotalValues() != 7 {
		t.Errorf("len=%d total=%d", s.SequenceLen(b), s.TotalValues())
	}
	// Windows across the old boundary read correctly.
	w := make(vec.Vector, 4)
	if err := s.Window(b, 0, 4, w, nil); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{4, 5, 6, 7} {
		if w[i] != want {
			t.Fatalf("w[%d]=%v want %v", i, w[i], want)
		}
	}
	// Appending another sequence freezes b.
	s.AppendSequence("c", []float64{8})
	if err := s.ExtendSequence(b, []float64{9}); err == nil {
		t.Error("extended a frozen sequence")
	}
}

func TestWindowView(t *testing.T) {
	s := New()
	s.AppendSequence("a", []float64{1, 2, 3, 4, 5})
	s.AppendSequence("b", []float64{6, 7, 8})

	var pc PageCounter
	v, err := s.WindowView(0, 1, 3, &pc)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("view[%d]=%v want %v", i, v[i], want[i])
		}
	}
	if pc.Distinct() != 1 {
		t.Errorf("view charged %d pages, want 1", pc.Distinct())
	}
	// Same pages as the copying accessor.
	var pcCopy PageCounter
	w := make(vec.Vector, 3)
	if err := s.Window(0, 1, 3, w, &pcCopy); err != nil {
		t.Fatal(err)
	}
	if pc.Distinct() != pcCopy.Distinct() || pc.Raw != pcCopy.Raw {
		t.Errorf("view pages (%d,%d) != copy pages (%d,%d)",
			pc.Distinct(), pc.Raw, pcCopy.Distinct(), pcCopy.Raw)
	}
	// The view has capacity clamped to its length: an append through it
	// cannot clobber the next sequence.
	if cap(v) != len(v) {
		t.Errorf("view cap %d != len %d", cap(v), len(v))
	}
	if _, err := s.WindowView(0, 3, 3, nil); err == nil {
		t.Error("out-of-range view succeeded")
	}
	if _, err := s.WindowView(9, 0, 1, nil); err == nil {
		t.Error("view of absent sequence succeeded")
	}
}

func TestWindowStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	var seqs [][]float64
	for i := 0; i < 3; i++ {
		vals := make([]float64, 200+50*i)
		for j := range vals {
			vals[j] = 100 + 20*rng.NormFloat64() // stock-like magnitudes
		}
		seqs = append(seqs, vals)
		s.AppendSequence(fmt.Sprintf("s%d", i), vals)
	}
	for seq, vals := range seqs {
		for _, win := range []struct{ start, n int }{
			{0, 1}, {0, 64}, {10, 128}, {len(vals) - 32, 32}, {5, 0},
		} {
			ws, err := s.WindowStats(seq, win.start, win.n)
			if err != nil {
				t.Fatal(err)
			}
			var sum, sumSq float64
			for _, v := range vals[win.start : win.start+win.n] {
				sum += v
				sumSq += v * v
			}
			if d := math.Abs(ws.Sum - sum); d > ws.SumErr+1e-9*math.Abs(sum) {
				t.Errorf("seq %d [%d,%d): Sum off by %g (bound %g)", seq, win.start, win.start+win.n, d, ws.SumErr)
			}
			if d := math.Abs(ws.SumSq - sumSq); d > ws.SumSqErr+1e-9*sumSq {
				t.Errorf("seq %d [%d,%d): SumSq off by %g (bound %g)", seq, win.start, win.start+win.n, d, ws.SumSqErr)
			}
		}
	}
	if _, err := s.WindowStats(0, 190, 100); err == nil {
		t.Error("out-of-range stats succeeded")
	}
}

// TestWindowStatsExtend checks that prefix sums built by ExtendSequence
// match an all-at-once append bit for bit: the Kahan compensation is
// carried across the boundary.
func TestWindowStatsExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vals := make([]float64, 300)
	for j := range vals {
		vals[j] = 50 + 10*rng.NormFloat64()
	}
	whole := New()
	whole.AppendSequence("x", vals)
	grown := New()
	grown.AppendSequence("x", vals[:100])
	if err := grown.ExtendSequence(0, vals[100:250]); err != nil {
		t.Fatal(err)
	}
	if err := grown.ExtendSequence(0, vals[250:]); err != nil {
		t.Fatal(err)
	}
	for start := 0; start+64 <= len(vals); start += 37 {
		a, err := whole.WindowStats(0, start, 64)
		if err != nil {
			t.Fatal(err)
		}
		b, err := grown.WindowStats(0, start, 64)
		if err != nil {
			t.Fatal(err)
		}
		if a.Sum != b.Sum || a.SumSq != b.SumSq {
			t.Fatalf("start %d: whole (%v,%v) vs grown (%v,%v)", start, a.Sum, a.SumSq, b.Sum, b.SumSq)
		}
	}
}

func TestPageCounterMerge(t *testing.T) {
	var a, b PageCounter
	a.Touch(1)
	a.Touch(2)
	b.Touch(2)
	b.Touch(3)
	b.Touch(3)
	a.Merge(&b)
	if a.Raw != 5 {
		t.Errorf("Raw = %d, want 5", a.Raw)
	}
	if a.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", a.Distinct())
	}
	var empty PageCounter
	empty.Merge(&a)
	if empty.Distinct() != 3 || empty.Raw != 5 {
		t.Errorf("merge into empty: %d distinct, %d raw", empty.Distinct(), empty.Raw)
	}
}
