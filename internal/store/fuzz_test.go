package store

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV parser never panics and that everything
// it accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,1,2,3\nb,4.5\n")
	f.Add("")
	f.Add("name\n")
	f.Add("x,1e308,-1e308,0\r\n")
	f.Add("a,NaN\n")
	f.Add(",missing\n")
	f.Fuzz(func(t *testing.T, in string) {
		st, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := st.WriteCSV(&buf); err != nil {
			// Only names with delimiters may refuse to serialize, and
			// ReadCSV cannot produce those.
			t.Fatalf("accepted store failed to serialize: %v", err)
		}
		st2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if st2.NumSequences() != st.NumSequences() || st2.TotalValues() != st.TotalValues() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				st2.NumSequences(), st2.TotalValues(), st.NumSequences(), st.TotalValues())
		}
	})
}

// FuzzReadBinary asserts the binary parser never panics or
// over-allocates on corrupt input.
func FuzzReadBinary(f *testing.F) {
	good := func() []byte {
		st := New()
		st.AppendSequence("a", []float64{1, 2, 3})
		st.AppendSequence("b", []float64{4})
		var buf bytes.Buffer
		if err := st.WriteBinary(&buf); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("SSTOR\x01"))
	f.Add([]byte("SSTOR\x02"))
	f.Add(good[:len(good)-3])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x08
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, in []byte) {
		st, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Whatever parses must be internally consistent.
		total := 0
		for i := 0; i < st.NumSequences(); i++ {
			total += st.SequenceLen(i)
		}
		if total != st.TotalValues() {
			t.Fatalf("inconsistent store: %d vs %d", total, st.TotalValues())
		}
	})
}
