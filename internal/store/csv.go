package store

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serializes the store one sequence per line:
//
//	name,v1,v2,...,vn
//
// Names must not contain commas or newlines; WriteCSV reports an error
// if one does.
func (s *Store) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for seq := 0; seq < s.NumSequences(); seq++ {
		name := s.SequenceName(seq)
		if strings.ContainsAny(name, ",\n\r") {
			return fmt.Errorf("store: sequence %d name %q contains a delimiter", seq, name)
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		base := s.offsets[seq]
		pl := s.packedLen(seq)
		for i := 0; i < s.lengths[seq]; i++ {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
			v := 0.0
			if i < pl {
				v = s.data[base+i]
			} else {
				v = s.tails[seq][i-pl]
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the format written by WriteCSV into a fresh store.
// Blank lines are skipped; a sequence may be empty (a bare name).
func ReadCSV(r io.Reader) (*Store, error) {
	st := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		name := fields[0]
		if name == "" {
			return nil, fmt.Errorf("store: line %d: empty sequence name", lineNo)
		}
		if strings.ContainsRune(name, '\r') {
			return nil, fmt.Errorf("store: line %d: sequence name contains a carriage return", lineNo)
		}
		vals := make([]float64, 0, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("store: line %d field %d: %w", lineNo, i+2, err)
			}
			vals = append(vals, v)
		}
		st.AppendSequence(name, vals)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: reading CSV: %w", err)
	}
	return st, nil
}
