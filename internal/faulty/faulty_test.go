package faulty

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestErrReader(t *testing.T) {
	r := ErrReader(strings.NewReader("0123456789"), 4, nil)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "0123" {
		t.Fatalf("read %q before fault, want %q", got, "0123")
	}
	custom := errors.New("boom")
	r = ErrReader(strings.NewReader("abc"), 0, custom)
	if _, err := io.ReadAll(r); !errors.Is(err, custom) {
		t.Fatalf("custom fault not returned: %v", err)
	}
}

func TestTruncateReader(t *testing.T) {
	r := TruncateReader(strings.NewReader("0123456789"), 6)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "012345" {
		t.Fatalf("read %q, want %q", got, "012345")
	}
}

func TestBitFlipReader(t *testing.T) {
	// Read through a tiny buffer so the flip offset spans Read calls.
	r := BitFlipReader(strings.NewReader("aaaaaaaa"), 5, 0x01)
	var out bytes.Buffer
	if _, err := io.CopyBuffer(&out, struct{ io.Reader }{r}, make([]byte, 3)); err != nil {
		t.Fatal(err)
	}
	want := "aaaaa" + string('a'^0x01) + "aa"
	if out.String() != want {
		t.Fatalf("read %q, want %q", out.String(), want)
	}
	// Zero mask flips nothing.
	r = BitFlipReader(strings.NewReader("xyz"), 1, 0)
	got, _ := io.ReadAll(r)
	if string(got) != "xyz" {
		t.Fatalf("zero mask changed data: %q", got)
	}
}

func TestErrWriter(t *testing.T) {
	var sink bytes.Buffer
	w := ErrWriter(&sink, 5, nil)
	n, err := w.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 5 || sink.String() != "01234" {
		t.Fatalf("wrote %d bytes (%q), want 5 (%q)", n, sink.String(), "01234")
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("subsequent write did not fail: %v", err)
	}
}

func TestShortWriterLies(t *testing.T) {
	var sink bytes.Buffer
	w := ShortWriter(&sink, 4)
	n, err := w.Write([]byte("0123456789"))
	if err != nil || n != 10 {
		t.Fatalf("short writer reported (%d, %v), want full success", n, err)
	}
	if sink.String() != "0123" {
		t.Fatalf("sink holds %q, want %q", sink.String(), "0123")
	}
}

func TestBitFlipWriter(t *testing.T) {
	var sink bytes.Buffer
	w := BitFlipWriter(&sink, 2, 0x80)
	for _, chunk := range []string{"ab", "cd", "ef"} {
		if _, err := io.WriteString(w, chunk); err != nil {
			t.Fatal(err)
		}
	}
	want := append([]byte("ab"), 'c'^0x80, 'd', 'e', 'f')
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("sink %q, want %q", sink.Bytes(), want)
	}
	// The caller's buffer must not be mutated.
	buf := []byte("zz")
	w2 := BitFlipWriter(io.Discard, 0, 0xff)
	if _, err := w2.Write(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "zz" {
		t.Fatalf("caller buffer mutated: %q", buf)
	}
}
