package faulty

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// ProxyMode selects how the chaos proxy treats traffic.
type ProxyMode int32

const (
	// ProxyPass forwards traffic transparently.
	ProxyPass ProxyMode = iota
	// ProxyStall accepts connections and then never answers: bytes in,
	// nothing out.  The client's own deadline is the only way out —
	// exactly the failure a wedged-but-listening process produces.
	ProxyStall
	// ProxyReset kills every connection with a TCP RST, immediately on
	// arrival and retroactively for connections already in flight.
	ProxyReset
)

func (m ProxyMode) String() string {
	switch m {
	case ProxyPass:
		return "pass"
	case ProxyStall:
		return "stall"
	case ProxyReset:
		return "reset"
	}
	return fmt.Sprintf("ProxyMode(%d)", int32(m))
}

// Proxy is a mode-switchable TCP proxy in front of one backend — the
// network fault domain for the cluster soak: the process behind it
// stays healthy while its network stalls, resets, or heals, and the
// mode can flip mid-query.
type Proxy struct {
	ln      net.Listener
	backend string
	mode    atomic.Int32

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy listens on a fresh loopback port and forwards to backend
// (a host:port) while in ProxyPass mode.
func NewProxy(backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, backend: backend, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Mode returns the current mode.
func (p *Proxy) Mode() ProxyMode { return ProxyMode(p.mode.Load()) }

// SetMode switches the proxy's behavior.  Switching to ProxyReset
// resets connections already in flight, not just future ones: a
// mid-query network partition, not a polite drain.
func (p *Proxy) SetMode(m ProxyMode) {
	p.mode.Store(int32(m))
	if m == ProxyReset {
		p.mu.Lock()
		for c := range p.conns {
			rst(c)
		}
		p.mu.Unlock()
	}
}

// Close stops accepting, severs every connection, and waits for the
// proxy's goroutines — so a test's goroutine-leak baseline stays clean.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// track registers a live connection; the false return means the proxy
// is closing and the caller must drop the connection.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// rst arms SO_LINGER(0) so Close sends a TCP RST instead of FIN — the
// connection-reset fault, as distinct from a clean close.
func rst(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		if !p.track(client) {
			client.Close()
			return
		}
		p.wg.Add(1)
		go p.serve(client)
	}
}

func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client)
	switch p.Mode() {
	case ProxyReset:
		rst(client)
		return
	case ProxyStall:
		// Swallow the request and never answer.  Keep reading so the
		// client's writes succeed (the stall bites at response time),
		// until the client gives up or the mode ends the world.
		defer client.Close()
		buf := make([]byte, 4096)
		for {
			if _, err := client.Read(buf); err != nil {
				return
			}
			if p.Mode() == ProxyReset {
				rst(client)
				return
			}
		}
	}

	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		// Backend gone (e.g. the soak killed the process): the client
		// sees a reset, the honest signal for "nothing is listening".
		rst(client)
		return
	}
	if !p.track(backend) {
		backend.Close()
		client.Close()
		return
	}
	defer p.untrack(backend)

	// Bidirectional pump; either side closing tears down both.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		io.Copy(backend, client)
		backend.Close()
		client.Close()
	}()
	io.Copy(client, backend)
	client.Close()
	backend.Close()
}
