package faulty

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func TestDelayReader(t *testing.T) {
	src := bytes.Repeat([]byte("x"), 64)
	start := time.Now()
	out, err := io.ReadAll(DelayReader(bytes.NewReader(src), 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("delay reader changed the bytes")
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("no delay observed: %v", elapsed)
	}
}

func TestInjectorZeroValuePassesThrough(t *testing.T) {
	var in Injector
	src := []byte("hello world")
	out, err := io.ReadAll(in.Reader(bytes.NewReader(src)))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("out=%q err=%v", out, err)
	}
	if in.Injections() != 0 {
		t.Fatalf("injections = %d, want 0", in.Injections())
	}
	if in.Wraps() != 1 {
		t.Fatalf("wraps = %d, want 1", in.Wraps())
	}
}

func TestInjectorNonePlanPassesThrough(t *testing.T) {
	var in Injector
	in.Set(NonePlan())
	src := []byte("payload")
	out, err := io.ReadAll(in.Reader(bytes.NewReader(src)))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("out=%q err=%v", out, err)
	}
	if in.Injections() != 0 {
		t.Fatalf("injections = %d, want 0", in.Injections())
	}
}

func TestInjectorError(t *testing.T) {
	var in Injector
	boom := errors.New("boom")
	p := NonePlan()
	p.ErrAfter, p.Err = 4, boom
	in.Set(p)
	out, err := io.ReadAll(in.Reader(bytes.NewReader([]byte("abcdefgh"))))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if string(out) != "abcd" {
		t.Fatalf("read %q before the fault, want abcd", out)
	}
	if in.Injections() != 1 {
		t.Fatalf("injections = %d, want 1", in.Injections())
	}
}

func TestInjectorDefaultError(t *testing.T) {
	var in Injector
	p := NonePlan()
	p.ErrAfter = 0
	in.Set(p)
	_, err := io.ReadAll(in.Reader(bytes.NewReader([]byte("abc"))))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestInjectorTruncateAndFlip(t *testing.T) {
	var in Injector
	p := NonePlan()
	p.TruncateAt = 6
	p.FlipOffset, p.FlipMask = 1, 0x20
	in.Set(p)
	out, err := io.ReadAll(in.Reader(bytes.NewReader([]byte("ABCDEFGH"))))
	if err != nil {
		t.Fatal(err)
	}
	// Flip lowercases the 'B' (0x42^0x20 = 0x62 'b'); truncation cuts
	// the stream to six bytes.
	if string(out) != "AbCDEF" {
		t.Fatalf("out = %q, want AbCDEF", out)
	}
}

func TestInjectorClear(t *testing.T) {
	var in Injector
	p := NonePlan()
	p.ErrAfter = 0
	in.Set(p)
	in.Clear()
	out, err := io.ReadAll(in.Reader(bytes.NewReader([]byte("ok"))))
	if err != nil || string(out) != "ok" {
		t.Fatalf("cleared injector still faulting: out=%q err=%v", out, err)
	}
}

// TestInjectorConcurrentSwap flips plans while readers stream; each
// reader sees one coherent plan (captured at wrap time), and the
// injector itself must be race-free.
func TestInjectorConcurrentSwap(t *testing.T) {
	var in Injector
	src := bytes.Repeat([]byte("data"), 256)
	stop := make(chan struct{})
	var swapper, readers sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				p := NonePlan()
				p.TruncateAt = int64(i % 100)
				in.Set(p)
			} else {
				in.Clear()
			}
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				out, err := io.ReadAll(in.Reader(bytes.NewReader(src)))
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				// Either the whole payload or a truncated prefix of it.
				if !bytes.HasPrefix(src, out) {
					t.Errorf("reader saw bytes not in the source")
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	swapper.Wait()
}
