package faulty

import (
	"net"
	"strings"
	"testing"
	"time"
)

// echoBackend accepts connections and echoes bytes back.
func echoBackend(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestProxyPassForwards(t *testing.T) {
	ln := echoBackend(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echoed %q", buf)
	}
}

func TestProxyStallNeverAnswers(t *testing.T) {
	ln := echoBackend(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetMode(ProxyStall)
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 4)
	n, err := c.Read(buf)
	if n != 0 || err == nil {
		t.Fatalf("stalled proxy answered: n=%d err=%v", n, err)
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want a read timeout, got %v", err)
	}
}

func TestProxyResetSeversMidStream(t *testing.T) {
	ln := echoBackend(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	// Healthy round trip first: the connection is established and live.
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFull(c, buf); err != nil {
		t.Fatal(err)
	}
	// Flip to reset: the in-flight connection dies, not just new ones.
	p.SetMode(ProxyReset)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded after a mid-stream reset")
	}
	// New connections are refused with a reset as well.
	c2 := dialProxy(t, p)
	c2.Write([]byte("x"))
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, rerr := c2.Read(buf)
	if rerr == nil {
		t.Fatal("read succeeded against a resetting proxy")
	}
	if strings.Contains(rerr.Error(), "timeout") {
		t.Fatalf("reset came back as a timeout: %v", rerr)
	}
}

func TestProxyBackendGoneResets(t *testing.T) {
	ln := echoBackend(t)
	addr := ln.Addr().String()
	p, err := NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ln.Close() // the "process" dies; the proxy stays up
	// The reset may land during the handshake or on the first read;
	// either way the client must see an error, never a response.
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		return
	}
	defer c.Close()
	c.Write([]byte("ping"))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded with no backend")
	}
}

func readFull(c net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
