// Package faulty wraps io.Reader and io.Writer with injected faults —
// I/O errors after a byte budget, short writes, single-bit flips, and
// truncation — for exercising the persistence layer's failure paths.
// The corruption and crash-mid-write tests drive artifact writers and
// loaders through these wrappers to prove that every damaged artifact
// is detected (binio's typed errors) and that atomic writes never
// leave a half-written file behind.
//
// The wrappers are deterministic: faults trigger at exact byte
// offsets, so a failing case replays identically.
package faulty

import (
	"errors"
	"io"
)

// ErrInjected is the default fault returned by the error-injecting
// wrappers when the caller does not supply one.
var ErrInjected = errors.New("faulty: injected fault")

// errReader returns err once limit bytes have been read.
type errReader struct {
	r     io.Reader
	left  int64
	fault error
}

// ErrReader reads from r normally for the first n bytes, then returns
// err on every subsequent Read (a failing disk or socket).  A nil err
// defaults to ErrInjected.
func ErrReader(r io.Reader, n int64, err error) io.Reader {
	if err == nil {
		err = ErrInjected
	}
	return &errReader{r: r, left: n, fault: err}
}

func (e *errReader) Read(p []byte) (int, error) {
	if e.left <= 0 {
		return 0, e.fault
	}
	if int64(len(p)) > e.left {
		p = p[:e.left]
	}
	n, err := e.r.Read(p)
	e.left -= int64(n)
	return n, err
}

// truncReader yields io.EOF after n bytes — a file that was cut short,
// as opposed to one that errors.
type truncReader struct {
	r    io.Reader
	left int64
}

// TruncateReader reads at most n bytes from r and then reports a clean
// io.EOF, simulating a truncated artifact.
func TruncateReader(r io.Reader, n int64) io.Reader {
	return &truncReader{r: r, left: n}
}

func (t *truncReader) Read(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > t.left {
		p = p[:t.left]
	}
	n, err := t.r.Read(p)
	t.left -= int64(n)
	return n, err
}

// bitFlipReader XORs mask into the byte at offset as it streams by.
type bitFlipReader struct {
	r      io.Reader
	offset int64 // bytes until the flipped byte
	mask   byte
	pos    int64
}

// BitFlipReader streams r unchanged except for the byte at offset
// (0-based), which is XORed with mask — a single-bit or multi-bit flip
// depending on the mask.  A zero mask flips nothing.
func BitFlipReader(r io.Reader, offset int64, mask byte) io.Reader {
	return &bitFlipReader{r: r, offset: offset, mask: mask}
}

func (b *bitFlipReader) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if i := b.offset - b.pos; i >= 0 && i < int64(n) {
		p[i] ^= b.mask
	}
	b.pos += int64(n)
	return n, err
}

// errWriter accepts n bytes and then fails every subsequent write.
type errWriter struct {
	w     io.Writer
	left  int64
	fault error
}

// ErrWriter writes through to w for the first n bytes, then returns
// err on every subsequent Write — a disk that fills or fails mid-way
// through an artifact write (the crash-mid-write simulation).  A nil
// err defaults to ErrInjected.
func ErrWriter(w io.Writer, n int64, err error) io.Writer {
	if err == nil {
		err = ErrInjected
	}
	return &errWriter{w: w, left: n, fault: err}
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.left <= 0 {
		return 0, e.fault
	}
	if int64(len(p)) > e.left {
		// Partial success then failure: the bytes that "made it to
		// disk" are written so the on-disk prefix is realistic.
		n, err := e.w.Write(p[:e.left])
		e.left -= int64(n)
		if err != nil {
			return n, err
		}
		return n, e.fault
	}
	n, err := e.w.Write(p)
	e.left -= int64(n)
	return n, err
}

// shortWriter silently drops everything past the first n bytes while
// reporting full success — the lying-disk variant of a crash: the
// writer believes the artifact is complete but only a prefix exists.
type shortWriter struct {
	w    io.Writer
	left int64
}

// ShortWriter writes through the first n bytes of traffic and silently
// discards the rest, still reporting success.  Loaders must catch the
// resulting truncation via the framing (trailer checksum), because the
// writer never saw an error.
func ShortWriter(w io.Writer, n int64) io.Writer {
	return &shortWriter{w: w, left: n}
}

func (s *shortWriter) Write(p []byte) (int, error) {
	take := int64(len(p))
	if take > s.left {
		take = s.left
	}
	if take > 0 {
		n, err := s.w.Write(p[:take])
		s.left -= int64(n)
		if err != nil {
			return n, err
		}
	}
	return len(p), nil
}

// bitFlipWriter XORs mask into the byte at offset as it streams by.
type bitFlipWriter struct {
	w      io.Writer
	offset int64
	mask   byte
	pos    int64
}

// BitFlipWriter writes p through to w with the byte at offset
// (0-based) XORed with mask — corruption introduced on the write path,
// e.g. a bad cable or controller.
func BitFlipWriter(w io.Writer, offset int64, mask byte) io.Writer {
	return &bitFlipWriter{w: w, offset: offset, mask: mask}
}

func (b *bitFlipWriter) Write(p []byte) (int, error) {
	if i := b.offset - b.pos; i >= 0 && i < int64(len(p)) {
		q := make([]byte, len(p))
		copy(q, p)
		q[i] ^= b.mask
		p = q
	}
	n, err := b.w.Write(p)
	b.pos += int64(n)
	return n, err
}
