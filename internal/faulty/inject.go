package faulty

import (
	"io"
	"sync/atomic"
	"time"
)

// delayReader sleeps before every Read — a slow disk or a saturated
// network path feeding an artifact load.
type delayReader struct {
	r     io.Reader
	delay time.Duration
}

// DelayReader returns a reader that sleeps delay before each
// underlying Read call, injecting latency without changing the bytes.
func DelayReader(r io.Reader, delay time.Duration) io.Reader {
	return &delayReader{r: r, delay: delay}
}

func (d *delayReader) Read(p []byte) (int, error) {
	time.Sleep(d.delay)
	return d.r.Read(p)
}

// Plan describes the faults an Injector applies to the readers it
// wraps.  The zero value injects nothing; each field arms one fault
// independently, and armed faults compose (e.g. latency plus a bit
// flip).  Offsets follow the package convention: deterministic byte
// positions, so a failing run replays identically.
type Plan struct {
	// ReadDelay sleeps before every Read when positive.
	ReadDelay time.Duration
	// ErrAfter returns Err (ErrInjected when nil) once this many bytes
	// have been read.  Negative disarms; zero fails the first Read.
	ErrAfter int64
	// Err overrides the error returned by ErrAfter.
	Err error
	// TruncateAt yields a clean io.EOF after this many bytes when
	// non-negative — the partial-write fault observed from the read
	// side: only a prefix of the artifact ever made it to disk.
	TruncateAt int64
	// FlipOffset XORs FlipMask into the byte at this offset when
	// non-negative and FlipMask is non-zero.
	FlipOffset int64
	FlipMask   byte
}

// NonePlan is the disarmed plan: all offset-armed faults off.  Plan's
// zero value arms ErrAfter=0 and TruncateAt=0 (fail/stop immediately),
// so code that wants "no faults" should start from NonePlan.
func NonePlan() Plan {
	return Plan{ErrAfter: -1, TruncateAt: -1, FlipOffset: -1}
}

// active reports whether the plan injects anything.
func (p Plan) active() bool {
	return p.ReadDelay > 0 || p.ErrAfter >= 0 || p.TruncateAt >= 0 ||
		(p.FlipOffset >= 0 && p.FlipMask != 0)
}

// Injector hands out fault-wrapped readers according to a plan that
// can be swapped atomically while the target is serving — the knob a
// chaos/soak harness turns against a live server's artifact-reload
// path.  The zero value is an injector with no plan (wrap is the
// identity); Set arms it, Clear disarms it.
type Injector struct {
	plan      atomic.Pointer[Plan]
	injected  atomic.Int64
	wrapCalls atomic.Int64
}

// Set replaces the active plan.
func (in *Injector) Set(p Plan) { in.plan.Store(&p) }

// Clear disarms the injector.
func (in *Injector) Clear() { in.plan.Store(nil) }

// Injections counts how many readers were handed out with at least
// one armed fault — the soak harness asserts faults actually fired.
func (in *Injector) Injections() int64 { return in.injected.Load() }

// Wraps counts all Reader calls, armed or not.
func (in *Injector) Wraps() int64 { return in.wrapCalls.Load() }

// Reader wraps r according to the plan active at call time.  The plan
// is captured once per call, so a concurrent Set/Clear affects the
// next wrapped reader, never one mid-stream.
func (in *Injector) Reader(r io.Reader) io.Reader {
	in.wrapCalls.Add(1)
	pp := in.plan.Load()
	if pp == nil || !pp.active() {
		return r
	}
	in.injected.Add(1)
	p := *pp
	// Order matters: the flip sees artifact offsets, truncation cuts
	// the flipped stream, the error fires on what survives, and the
	// delay wraps everything.
	if p.FlipOffset >= 0 && p.FlipMask != 0 {
		r = BitFlipReader(r, p.FlipOffset, p.FlipMask)
	}
	if p.TruncateAt >= 0 {
		r = TruncateReader(r, p.TruncateAt)
	}
	if p.ErrAfter >= 0 {
		r = ErrReader(r, p.ErrAfter, p.Err)
	}
	if p.ReadDelay > 0 {
		r = DelayReader(r, p.ReadDelay)
	}
	return r
}
