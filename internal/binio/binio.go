// Package binio is the shared binary-artifact framing of the format-v2
// index (SSIDX) and store (SSTOR) files: a 6-byte magic (5 identifying
// bytes plus a version byte), a fixed number of length-prefixed
// sections each protected by a CRC32C (Castagnoli) of its payload, and
// a whole-file CRC32C trailer.
//
// The framing exists so that a half-written, truncated, or bit-flipped
// artifact is always DETECTED at load — never silently served.  The
// per-section checksums localize the damage (and let parsers run only
// over verified bytes); the trailer catches files cut off between
// sections, where every prefix is individually intact.
//
// Loaders classify failures with the three sentinel errors below so
// callers can distinguish "wrong/old format" (ErrVersion) from "bytes
// are damaged" (ErrChecksum) from "file ends early" (ErrTruncated) —
// the distinction drives the CLI diagnostics and the degraded-mode
// fallback (core.OpenOrRebuild).
package binio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Typed artifact-validation failures.  Match with errors.Is; loaders
// wrap them with file- and section-specific context.
var (
	// ErrChecksum reports a CRC32C mismatch: the bytes are present but
	// damaged (bit flips, overwrites, swapped sections).
	ErrChecksum = errors.New("checksum mismatch")
	// ErrTruncated reports an artifact that ends before its framing
	// says it should (crash mid-write, partial copy).
	ErrTruncated = errors.New("truncated artifact")
	// ErrVersion reports a recognized artifact of an unsupported format
	// version.
	ErrVersion = errors.New("unsupported format version")
)

// castagnoli is the CRC32C table (the polynomial with hardware support
// on amd64/arm64, used by ext4, iSCSI, and Snappy).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sectionChunk bounds a single allocation while reading a section, so
// a corrupt length field cannot drive a huge make() before the read
// fails at end-of-input.
const sectionChunk = 1 << 20

// Writer frames sections onto an io.Writer.  Errors are sticky: the
// first failure is remembered and returned by Close, so callers may
// write the whole artifact and check once.
type Writer struct {
	w    io.Writer
	file hash.Hash32 // running CRC of every framed byte
	n    int64
	err  error
}

// NewWriter starts an artifact on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, file: crc32.New(castagnoli)}
}

// Pos returns the number of bytes framed so far — the file offset the
// next write lands on.  Writers of alignment-sensitive payloads (the
// mmap-served index arena) use it to compute padding.
func (bw *Writer) Pos() int64 { return bw.n }

func (bw *Writer) write(p []byte) {
	if bw.err != nil {
		return
	}
	if _, err := bw.w.Write(p); err != nil {
		bw.err = err
		return
	}
	bw.file.Write(p)
	bw.n += int64(len(p))
}

func (bw *Writer) writeU64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	bw.write(b[:])
}

func (bw *Writer) writeU32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	bw.write(b[:])
}

// Magic writes the artifact's magic bytes (identifier + version).
func (bw *Writer) Magic(magic []byte) {
	bw.write(magic)
}

// Section writes one length-prefixed payload followed by its CRC32C.
func (bw *Writer) Section(payload []byte) {
	bw.writeU64(uint64(len(payload)))
	bw.write(payload)
	bw.writeU32(crc32.Checksum(payload, castagnoli))
}

// Close writes the whole-file trailer (the CRC32C of every byte framed
// so far) and returns the first error encountered, if any.  It does
// not close the underlying writer.
func (bw *Writer) Close() error {
	sum := bw.file.Sum32() // snapshot before the trailer bytes themselves
	bw.writeU32(sum)
	return bw.err
}

// Reader parses the framing written by Writer.
type Reader struct {
	r    io.Reader
	file hash.Hash32
}

// NewReader starts parsing an artifact from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, file: crc32.New(castagnoli)}
}

func (br *Reader) read(p []byte) error {
	if _, err := io.ReadFull(br.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w (unexpected end of input)", ErrTruncated)
		}
		return err
	}
	br.file.Write(p)
	return nil
}

func (br *Reader) readU64() (uint64, error) {
	var b [8]byte
	if err := br.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (br *Reader) readU32() (uint32, error) {
	var b [4]byte
	if err := br.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Magic consumes and checks the artifact's magic.  The final byte of
// want is the version: when the identifying prefix matches but the
// version byte differs, the error wraps ErrVersion (the file IS one of
// ours, just not a version this build reads); any other mismatch is a
// plain "not this kind of artifact" error.
func (br *Reader) Magic(want []byte) error {
	got := make([]byte, len(want))
	if err := br.read(got); err != nil {
		return err
	}
	if string(got) == string(want) {
		return nil
	}
	if string(got[:len(got)-1]) == string(want[:len(want)-1]) {
		return fmt.Errorf("%w: format version %d (this build reads version %d)",
			ErrVersion, got[len(got)-1], want[len(want)-1])
	}
	return fmt.Errorf("bad magic %q (want %q)", got, want)
}

// MagicVersions consumes the artifact's magic like Magic, but accepts
// any of the listed version bytes after want's identifying prefix and
// returns the one found.  want's own final byte names the newest
// (preferred) version for the error message.
func (br *Reader) MagicVersions(want []byte, accept ...byte) (byte, error) {
	got := make([]byte, len(want))
	if err := br.read(got); err != nil {
		return 0, err
	}
	if string(got[:len(got)-1]) != string(want[:len(want)-1]) {
		return 0, fmt.Errorf("bad magic %q (want %q)", got, want)
	}
	v := got[len(got)-1]
	for _, a := range accept {
		if v == a {
			return v, nil
		}
	}
	return 0, fmt.Errorf("%w: format version %d (this build reads version %d)",
		ErrVersion, v, want[len(want)-1])
}

// Section reads one length-prefixed payload and verifies its CRC32C.
// limit bounds the accepted payload length (a corrupt length beyond it
// is rejected outright); allocation grows chunk-by-chunk so a corrupt
// length below the limit still cannot allocate more than the input
// actually provides.
func (br *Reader) Section(limit uint64) ([]byte, error) {
	n, err := br.readU64()
	if err != nil {
		return nil, fmt.Errorf("section length: %w", err)
	}
	if n > limit {
		return nil, fmt.Errorf("implausible section length %d (limit %d): %w", n, limit, ErrChecksum)
	}
	payload := make([]byte, 0, min64(n, sectionChunk))
	for uint64(len(payload)) < n {
		chunk := n - uint64(len(payload))
		if chunk > sectionChunk {
			chunk = sectionChunk
		}
		buf := make([]byte, chunk)
		if err := br.read(buf); err != nil {
			return nil, fmt.Errorf("section payload: %w", err)
		}
		payload = append(payload, buf...)
	}
	want, err := br.readU32()
	if err != nil {
		return nil, fmt.Errorf("section checksum: %w", err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("section payload: %w (crc %08x, want %08x)", ErrChecksum, got, want)
	}
	return payload, nil
}

// Trailer verifies the whole-file CRC32C and must be the final call: a
// missing trailer means the artifact was cut off between sections.
func (br *Reader) Trailer() error {
	sum := br.file.Sum32() // snapshot before consuming the trailer itself
	want, err := br.readU32()
	if err != nil {
		return fmt.Errorf("trailer: %w", err)
	}
	if sum != want {
		return fmt.Errorf("trailer: %w (file crc %08x, want %08x)", ErrChecksum, sum, want)
	}
	return nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
