package binio

// Mapping is a read-only view of a whole artifact file, memory-mapped
// where the platform supports it and heap-loaded otherwise.  Data must
// not be written to, and must not be read after Close — for mmap-backed
// artifacts the serving layer is responsible for keeping the mapping
// alive until the last reader drains (the RCU snapshot refcount in
// ssserve does exactly that).
type Mapping struct {
	Data   []byte
	mapped bool
	closed bool
}

// Close releases the mapping.  Safe to call more than once; a nil
// receiver is a no-op, so callers can Close unconditionally.
func (m *Mapping) Close() error {
	if m == nil || m.closed {
		return nil
	}
	m.closed = true
	data := m.Data
	m.Data = nil
	if !m.mapped || data == nil {
		return nil
	}
	return unmap(data)
}
