//go:build unix

package binio

import (
	"fmt"
	"os"
	"syscall"
)

// OpenMapping maps the file at path read-only into memory.  The
// returned Data is the whole file; it stays valid until Close.  The
// mapping is shared and page-cache backed, so opening an arbitrarily
// large artifact costs O(1) work and no heap.
func OpenMapping(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("binio: artifact %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("binio: mmap %s: %w", path, err)
	}
	return &Mapping{Data: data, mapped: true}, nil
}

func unmap(data []byte) error {
	return syscall.Munmap(data)
}
