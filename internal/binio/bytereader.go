package binio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// ByteReader parses Writer framing directly from an in-memory (or
// memory-mapped) byte slice.  Unlike Reader it never copies payloads —
// Section returns subslices of the input — which is what makes
// zero-copy artifact serving possible: the returned bytes stay valid
// exactly as long as the backing slice (for a Mapping, until Close).
type ByteReader struct {
	data []byte
	off  int
}

// NewByteReader starts parsing the framed artifact in data.
func NewByteReader(data []byte) *ByteReader {
	return &ByteReader{data: data}
}

// Offset returns the current parse position — the file offset of the
// next byte to be consumed.
func (br *ByteReader) Offset() int { return br.off }

func (br *ByteReader) take(n int) ([]byte, error) {
	if n < 0 || len(br.data)-br.off < n {
		return nil, fmt.Errorf("%w (unexpected end of input)", ErrTruncated)
	}
	p := br.data[br.off : br.off+n : br.off+n]
	br.off += n
	return p, nil
}

// Magic consumes and checks the artifact's magic with the same
// semantics as Reader.Magic.
func (br *ByteReader) Magic(want []byte) error {
	got, err := br.take(len(want))
	if err != nil {
		return err
	}
	if string(got) == string(want) {
		return nil
	}
	if string(got[:len(got)-1]) == string(want[:len(want)-1]) {
		return fmt.Errorf("%w: format version %d (this build reads version %d)",
			ErrVersion, got[len(got)-1], want[len(want)-1])
	}
	return fmt.Errorf("bad magic %q (want %q)", got, want)
}

// MagicVersions consumes the magic accepting any of the listed version
// bytes, with the same semantics as Reader.MagicVersions.
func (br *ByteReader) MagicVersions(want []byte, accept ...byte) (byte, error) {
	got, err := br.take(len(want))
	if err != nil {
		return 0, err
	}
	if string(got[:len(got)-1]) != string(want[:len(want)-1]) {
		return 0, fmt.Errorf("bad magic %q (want %q)", got, want)
	}
	v := got[len(got)-1]
	for _, a := range accept {
		if v == a {
			return v, nil
		}
	}
	return 0, fmt.Errorf("%w: format version %d (this build reads version %d)",
		ErrVersion, v, want[len(want)-1])
}

// Section reads one length-prefixed payload, verifies its CRC32C, and
// returns the payload as a subslice of the input (no copy).
func (br *ByteReader) Section(limit uint64) ([]byte, error) {
	payload, err := br.SectionLazy(limit)
	if err != nil {
		return nil, err
	}
	want := binary.LittleEndian.Uint32(br.data[br.off-4:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("section payload: %w (crc %08x, want %08x)", ErrChecksum, got, want)
	}
	return payload, nil
}

// SectionLazy reads one length-prefixed payload WITHOUT verifying its
// checksum, returning it as a subslice of the input.  This is the O(1)
// open path for large sections; callers must verify the artifact out
// of band (CheckFrame) before trusting the bytes.
func (br *ByteReader) SectionLazy(limit uint64) ([]byte, error) {
	lb, err := br.take(8)
	if err != nil {
		return nil, fmt.Errorf("section length: %w", err)
	}
	n := binary.LittleEndian.Uint64(lb)
	if n > limit {
		return nil, fmt.Errorf("implausible section length %d (limit %d): %w", n, limit, ErrChecksum)
	}
	payload, err := br.take(int(n))
	if err != nil {
		return nil, fmt.Errorf("section payload: %w", err)
	}
	if _, err := br.take(4); err != nil {
		return nil, fmt.Errorf("section checksum: %w", err)
	}
	return payload, nil
}

// Trailer verifies the whole-file CRC32C (over every byte before it)
// and that nothing follows it.  O(n) in the artifact size.
func (br *ByteReader) Trailer() error {
	tb, err := br.take(4)
	if err != nil {
		return fmt.Errorf("trailer: %w", err)
	}
	if br.off != len(br.data) {
		return fmt.Errorf("trailer: %d trailing bytes after artifact end", len(br.data)-br.off)
	}
	want := binary.LittleEndian.Uint32(tb)
	if sum := crc32.Checksum(br.data[:br.off-4], castagnoli); sum != want {
		return fmt.Errorf("trailer: %w (file crc %08x, want %08x)", ErrChecksum, sum, want)
	}
	return nil
}

// CheckFrame verifies the complete framing of an in-memory artifact:
// every section CRC and the whole-file trailer, for an artifact of
// magicLen magic bytes and numSections sections.  This is the
// full-integrity check the zero-copy open path defers — run it off the
// serving path before (or concurrently with publishing) a
// lazily-opened artifact.
func CheckFrame(data []byte, magicLen, numSections int) error {
	br := NewByteReader(data)
	if _, err := br.take(magicLen); err != nil {
		return fmt.Errorf("magic: %w", err)
	}
	for i := 0; i < numSections; i++ {
		if _, err := br.Section(uint64(len(data))); err != nil {
			return fmt.Errorf("section %d: %w", i, err)
		}
	}
	return br.Trailer()
}
