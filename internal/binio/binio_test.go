package binio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// artifact frames two sections the way the store and index writers do.
func artifact(t *testing.T, magic []byte, sections ...[]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic(magic)
	for _, s := range sections {
		w.Section(s)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func parse(in []byte, magic []byte, nSections int) error {
	r := NewReader(bytes.NewReader(in))
	if err := r.Magic(magic); err != nil {
		return err
	}
	for i := 0; i < nSections; i++ {
		if _, err := r.Section(1 << 30); err != nil {
			return err
		}
	}
	return r.Trailer()
}

var testMagic = []byte("TESTF\x02")

func TestRoundTrip(t *testing.T) {
	a := []byte("first section payload")
	b := []byte{0, 1, 2, 3, 255}
	in := artifact(t, testMagic, a, b)

	r := NewReader(bytes.NewReader(in))
	if err := r.Magic(testMagic); err != nil {
		t.Fatal(err)
	}
	ga, err := r.Section(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := r.Section(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ga, a) || !bytes.Equal(gb, b) {
		t.Fatalf("payloads changed: %q %v", ga, gb)
	}
	if err := r.Trailer(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySectionRoundTrips(t *testing.T) {
	in := artifact(t, testMagic, nil)
	if err := parse(in, testMagic, 1); err != nil {
		t.Fatal(err)
	}
}

// Every single-byte corruption anywhere in the artifact must be
// detected by some layer of the framing.
func TestEveryByteFlipDetected(t *testing.T) {
	in := artifact(t, testMagic, []byte("hello sections"), []byte("second"))
	for i := range in {
		for _, mask := range []byte{0x01, 0x80} {
			bad := append([]byte(nil), in...)
			bad[i] ^= mask
			if err := parse(bad, testMagic, 2); err == nil {
				t.Fatalf("flip of byte %d (mask %#x) went undetected", i, mask)
			}
		}
	}
}

// Every proper prefix must be rejected: truncation can never load.
func TestEveryTruncationDetected(t *testing.T) {
	in := artifact(t, testMagic, []byte("hello sections"), []byte("second"))
	for cut := 0; cut < len(in); cut++ {
		err := parse(in[:cut], testMagic, 2)
		if err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
		// Prefix-intact truncations must carry the typed error; flips
		// inside the cut region are covered by the flip test.
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("truncation at %d: error %v is neither ErrTruncated nor ErrChecksum", cut, err)
		}
	}
}

func TestVersionMismatchTyped(t *testing.T) {
	in := artifact(t, []byte("TESTF\x01"), []byte("x"))
	err := parse(in, testMagic, 1)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("v1 artifact against v2 reader: %v, want ErrVersion", err)
	}
	// A different identifier entirely is NOT a version problem.
	in = artifact(t, []byte("OTHER\x02"), []byte("x"))
	if err := parse(in, testMagic, 1); err == nil || errors.Is(err, ErrVersion) {
		t.Fatalf("foreign artifact: %v, want plain mismatch error", err)
	}
}

func TestImplausibleSectionLengthRejectedWithoutAllocating(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic(testMagic)
	w.Section([]byte("ok"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	in := buf.Bytes()
	// Overwrite the section length with a huge value: must fail fast
	// (at the limit check or at end-of-input), not allocate gigabytes.
	for _, v := range []byte{0xff, 0x7f} {
		bad := append([]byte(nil), in...)
		for i := 0; i < 8; i++ {
			bad[len(testMagic)+i] = v
		}
		if err := parse(bad, testMagic, 1); err == nil {
			t.Fatalf("huge section length (%#x) accepted", v)
		}
	}
}

func TestTrailerCatchesMissingSection(t *testing.T) {
	// Frame one section, then append a valid trailer computed over a
	// DIFFERENT framing (two sections) — i.e. bytes after the first
	// section are gone but the file does not end mid-section.  The
	// reader expecting two sections hits end-of-input: ErrTruncated.
	one := artifact(t, testMagic, []byte("only"))
	err := parse(one, testMagic, 2)
	if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
		t.Fatalf("missing section: %v", err)
	}
}

func TestWriterPropagatesSinkErrors(t *testing.T) {
	w := NewWriter(failAfter{n: 3})
	w.Magic(testMagic)
	w.Section([]byte("payload"))
	if err := w.Close(); err == nil {
		t.Fatal("writer swallowed sink error")
	}
}

type failAfter struct{ n int }

func (f failAfter) Write(p []byte) (int, error) {
	if len(p) > f.n {
		return f.n, io.ErrShortWrite
	}
	return len(p), nil
}
