//go:build !unix

package binio

import "os"

// OpenMapping reads the file at path into memory.  On platforms
// without mmap support the "mapping" is a plain heap copy — same
// contract, no zero-copy benefit.
func OpenMapping(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{Data: data}, nil
}

func unmap(data []byte) error { return nil }
