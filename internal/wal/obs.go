package wal

import (
	"sync"
	"time"

	"scaleshift/internal/obs"
)

// Instrumentation: the WAL sits on every acked append's critical path,
// so its fsync latency IS the ingest durability cost — worth a
// first-class histogram.  Handles are registered lazily on the first
// recording after obs.Enable and every record call is skipped with one
// atomic load when the observability layer is off.
var wm struct {
	once sync.Once

	appends     *obs.Counter
	appendBytes *obs.Histogram
	fsync       *obs.Histogram
	truncations *obs.Counter
	truncate    *obs.Histogram
}

func initWALMetrics() {
	r := obs.Default
	wm.appends = r.Counter("scaleshift_wal_appends_total",
		"WAL records appended and fsync'd (each one acked ingest call).")
	wm.appendBytes = r.Histogram("scaleshift_wal_append_bytes",
		"Framed size of each appended WAL record.")
	wm.fsync = r.DurationHistogram("scaleshift_wal_fsync_seconds",
		"WAL fsync latency: the durability wait on the append critical path.")
	wm.truncations = r.Counter("scaleshift_wal_truncations_total",
		"WAL prefix truncations completed after durable checkpoints.")
	wm.truncate = r.DurationHistogram("scaleshift_wal_truncate_seconds",
		"WAL truncation latency (tail copy, fsync, and rename).")
}

// recordAppend publishes one framed append and its fsync wait.
func recordAppend(frameBytes int, fsync time.Duration) {
	if !obs.Enabled() {
		return
	}
	wm.once.Do(initWALMetrics)
	wm.appends.Inc()
	wm.appendBytes.Observe(int64(frameBytes))
	wm.fsync.ObserveDuration(fsync)
}

// recordTruncate publishes one completed prefix truncation.
func recordTruncate(d time.Duration) {
	if !obs.Enabled() {
		return
	}
	wm.once.Do(initWALMetrics)
	wm.truncations.Inc()
	wm.truncate.ObserveDuration(d)
}
