package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	if err := l.AppendSequence("acme", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(0, []float64{4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(0, nil); err != nil {
		t.Fatal(err)
	}
	size := l.Size()
	if size == 0 {
		t.Fatal("size not tracked")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Size() != size {
		t.Fatalf("reopened size %d, want %d", l.Size(), size)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if recs[0].Name != "acme" || recs[0].Seq != -1 || len(recs[0].Values) != 3 {
		t.Fatalf("record 0 wrong: %+v", recs[0])
	}
	if recs[1].Seq != 0 || recs[1].Values[1] != 5 {
		t.Fatalf("record 1 wrong: %+v", recs[1])
	}
	if recs[2].Seq != 0 || len(recs[2].Values) != 0 {
		t.Fatalf("record 2 wrong: %+v", recs[2])
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(3, []float64{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	goodSize := l.Size()
	l.Close()

	// Simulate a crash mid-write: append garbage that looks like the
	// start of a record but is cut short.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x02, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("replay after torn tail: %+v", recs)
	}
	if l.Size() != goodSize {
		t.Fatalf("torn tail not truncated: size %d, want %d", l.Size(), goodSize)
	}
	// The log must be appendable after truncation and replay both.
	if err := l.AppendValues(4, []float64{1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Seq != 4 {
		t.Fatalf("append after truncation lost: %+v", recs)
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(2, []float64{2}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a bit in the second record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("corrupt record not isolated: %+v", recs)
	}
}

// TestRecordOffsets pins the logical-offset contract: every replayed
// record's End is the log Offset() right after it was acked, and the
// numbering survives reopen.
func TestRecordOffsets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Base() != 0 || l.Offset() != 0 {
		t.Fatalf("fresh log base %d offset %d", l.Base(), l.Offset())
	}
	var ends []int64
	if err := l.AppendSequence("acme", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	ends = append(ends, l.Offset())
	for i := 0; i < 3; i++ {
		if err := l.AppendValues(0, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Offset())
	}
	l.Close()

	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != len(ends) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(ends))
	}
	for i, rec := range recs {
		if rec.End != ends[i] {
			t.Fatalf("record %d End %d, want %d", i, rec.End, ends[i])
		}
	}
	if l.Offset() != ends[len(ends)-1] {
		t.Fatalf("reopened offset %d, want %d", l.Offset(), ends[len(ends)-1])
	}
}

// TestTruncateThrough drops a checkpointed prefix and checks that the
// surviving records keep their logical offsets across the rewrite and
// a reopen, and that the log stays appendable.
func TestTruncateThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for i := 0; i < 5; i++ {
		if err := l.AppendValues(i, []float64{float64(i), float64(i)}); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Offset())
	}
	fullSize := l.Size()

	// Truncate through record 2's end: records 0-2 drop, 3-4 survive.
	if err := l.TruncateThrough(ends[2]); err != nil {
		t.Fatal(err)
	}
	if l.Base() != ends[2] {
		t.Fatalf("base %d after truncate, want %d", l.Base(), ends[2])
	}
	if l.Size() >= fullSize {
		t.Fatalf("size %d not reduced from %d", l.Size(), fullSize)
	}
	if l.Offset() != ends[4] {
		t.Fatalf("offset %d changed by truncation, want %d", l.Offset(), ends[4])
	}
	// The truncated log must keep accepting appends through the swapped
	// file descriptor.
	if err := l.AppendValues(9, []float64{9}); err != nil {
		t.Fatal(err)
	}
	endAfter := l.Offset()
	l.Close()

	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after truncation, want 3: %+v", len(recs), recs)
	}
	if recs[0].Seq != 3 || recs[0].End != ends[3] {
		t.Fatalf("record 0 after truncation: %+v, want seq 3 end %d", recs[0], ends[3])
	}
	if recs[1].Seq != 4 || recs[1].End != ends[4] {
		t.Fatalf("record 1 after truncation: %+v, want seq 4 end %d", recs[1], ends[4])
	}
	if recs[2].Seq != 9 || recs[2].End != endAfter {
		t.Fatalf("record 2 after truncation: %+v, want seq 9 end %d", recs[2], endAfter)
	}

	// Truncating through an already dropped offset is a no-op; beyond
	// the end is an error.
	if err := l.TruncateThrough(ends[1]); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateThrough(l.Offset() + 1); err == nil {
		t.Fatal("truncate beyond the log end must fail")
	}
}

// TestTruncateThroughMidRecord asks for a cut that lands inside a
// record: only whole records at or below the mark may drop.
func TestTruncateThroughMidRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendValues(0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	first := l.Offset()
	if err := l.AppendValues(1, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateThrough(first + 1); err != nil {
		t.Fatal(err)
	}
	if l.Base() != first {
		t.Fatalf("mid-record cut moved base to %d, want record boundary %d", l.Base(), first)
	}
}

// TestTruncateThroughCrashBeforePublish simulates a kill between
// building the truncated log and renaming it into place: the old file
// must survive untouched, and an offset-filtered replay must apply
// exactly the records past the checkpoint — nothing dropped, nothing
// doubled.
func TestTruncateThroughCrashBeforePublish(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for i := 0; i < 4; i++ {
		if err := l.AppendValues(i, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Offset())
	}
	ckpt := ends[1] // a durable checkpoint covers records 0 and 1

	renameFile = func(oldpath, newpath string) error {
		return os.ErrPermission // the "crash": the new file never lands
	}
	defer func() { renameFile = os.Rename }()
	if err := l.TruncateThrough(ckpt); err == nil {
		t.Fatal("truncation must report the failed publish")
	}
	l.Close()

	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 4 {
		t.Fatalf("crashed truncation lost records: replayed %d, want 4", len(recs))
	}
	applied := 0
	for _, rec := range recs {
		if rec.End <= ckpt {
			continue // covered by the checkpoint: skipping is what prevents double-apply
		}
		applied++
	}
	if applied != 2 {
		t.Fatalf("offset filter applied %d records, want exactly the 2 past the checkpoint", applied)
	}
}

// TestLegacyHeaderlessLog loads a log written by the headerless format
// (base offset 0) and upgrades it on the first truncation.
func TestLegacyHeaderlessLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(7, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(8, []float64{3}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Strip the header: what remains is exactly the old flat format.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[headerLen:], 0o644); err != nil {
		t.Fatal(err)
	}

	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 7 || recs[1].Seq != 8 {
		t.Fatalf("legacy replay wrong: %+v", recs)
	}
	if l.Base() != 0 {
		t.Fatalf("legacy log base %d, want 0", l.Base())
	}
	first := recs[0].End
	if err := l.TruncateThrough(first); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(9, []float64{4}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Base() != first {
		t.Fatalf("upgraded log base %d, want %d", l.Base(), first)
	}
	if len(recs) != 2 || recs[0].Seq != 8 || recs[1].Seq != 9 {
		t.Fatalf("post-upgrade replay wrong: %+v", recs)
	}
}

// TestTornHeaderResets crashes mid-creation: a file holding only a
// partial header must come back as an empty, usable log.
func TestTornHeaderResets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	if err := os.WriteFile(path, append(append([]byte{}, magic...), 0x01, 0x02), 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 0 || l.Size() != 0 || l.Base() != 0 {
		t.Fatalf("torn header not reset: %d records, size %d, base %d", len(recs), l.Size(), l.Base())
	}
	if err := l.AppendValues(0, []float64{1}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendValues(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size %d after reset", l.Size())
	}
	if err := l.AppendValues(0, []float64{3}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Values[0] != 3 {
		t.Fatalf("post-reset replay wrong: %+v", recs)
	}
}
