package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	if err := l.AppendSequence("acme", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(0, []float64{4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(0, nil); err != nil {
		t.Fatal(err)
	}
	size := l.Size()
	if size == 0 {
		t.Fatal("size not tracked")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Size() != size {
		t.Fatalf("reopened size %d, want %d", l.Size(), size)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if recs[0].Name != "acme" || recs[0].Seq != -1 || len(recs[0].Values) != 3 {
		t.Fatalf("record 0 wrong: %+v", recs[0])
	}
	if recs[1].Seq != 0 || recs[1].Values[1] != 5 {
		t.Fatalf("record 1 wrong: %+v", recs[1])
	}
	if recs[2].Seq != 0 || len(recs[2].Values) != 0 {
		t.Fatalf("record 2 wrong: %+v", recs[2])
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(3, []float64{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	goodSize := l.Size()
	l.Close()

	// Simulate a crash mid-write: append garbage that looks like the
	// start of a record but is cut short.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x02, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("replay after torn tail: %+v", recs)
	}
	if l.Size() != goodSize {
		t.Fatalf("torn tail not truncated: size %d, want %d", l.Size(), goodSize)
	}
	// The log must be appendable after truncation and replay both.
	if err := l.AppendValues(4, []float64{1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Seq != 4 {
		t.Fatalf("append after truncation lost: %+v", recs)
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendValues(2, []float64{2}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a bit in the second record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("corrupt record not isolated: %+v", recs)
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendValues(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size %d after reset", l.Size())
	}
	if err := l.AppendValues(0, []float64{3}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Values[0] != 3 {
		t.Fatalf("post-reset replay wrong: %+v", recs)
	}
}
