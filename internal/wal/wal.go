// Package wal is the write-ahead log behind live ingest: every append
// is made durable — fsync'd to the log — before it is acknowledged, so
// a crash between the ack and the next store checkpoint loses nothing.
// On restart the serving layer loads the last checkpointed store and
// index artifacts, then Replays the log to roll the store forward; the
// segmented index re-extracts the replayed windows into its delta,
// which restores the exact pre-crash search surface.
//
// The log carries a LOGICAL offset space that survives truncation: the
// file starts with a small header naming the logical offset of its
// first record byte, and every replayed Record reports the logical
// offset just past itself (Record.End).  A checkpoint remembers the
// log's Offset() at capture time; recovery replays only records with
// End past that mark, and TruncateThrough physically drops the already
// checkpointed prefix without renumbering what remains.  Because the
// skip is offset-driven, truncation is purely a space optimization — a
// crash anywhere between "checkpoint durable" and "prefix dropped"
// replays the same records either way, never dropping or double-
// applying an acked append.
//
// The format after the header is a flat record stream.  Each record is
//
//	u32 payload length | payload | u32 CRC32C(payload)
//
// little-endian, with the payload's first byte a record kind:
//
//	1  new sequence: u32 name length, name bytes, u64 count, count float64s
//	2  append:       u64 sequence id,             u64 count, count float64s
//
// Replay stops cleanly at the first torn or corrupt record (the tail
// a crash mid-write leaves behind) and reports how many bytes of the
// log were valid, so the caller can truncate to that offset and keep
// appending.  Headerless files written by earlier builds load as
// logical offset 0.
package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"
)

// record kinds.
const (
	kindNewSequence = 1
	kindAppend      = 2
)

// maxRecord bounds one record's length claim (1 GiB) so a corrupt
// length prefix cannot drive a huge allocation.
const maxRecord = 1 << 30

// The header is magic (identifier + version byte), the u64 logical
// offset of the first record byte, and a CRC32C over both.  It is
// written only when the stream before it is empty — at creation, at
// Reset, and into the freshly built file TruncateThrough renames into
// place — so a torn header can only predate the first acked append.
var magic = []byte("SSWAL\x01")

const headerLen = 6 + 8 + 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// renameFile is swapped by crash-injection tests to simulate a kill
// between building the truncated log and publishing it.
var renameFile = os.Rename

// Log is an append-only write-ahead log backed by one file.  Append
// methods are not internally locked — the serving layer already
// serializes appends through the segmented index's writer lock.
type Log struct {
	path string
	f    *os.File
	base int64 // logical offset of the record stream's first byte
	hdr  int64 // header length in this file (0 for legacy headerless logs)
	pos  int64 // physical record-stream length (bytes past the header)
}

// Open opens (creating if needed) the log at path and positions
// appends after the last valid record, truncating any torn tail left
// by a crash.  The caller replays the returned records into its store
// before appending new ones; each record carries the logical offset
// just past itself so a checkpoint-aware caller can skip the prefix it
// has already applied.
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	base, hdr, err := readHeader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	recs, valid, err := replay(f, hdr, base)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(hdr + valid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(hdr+valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{path: path, f: f, base: base, hdr: hdr, pos: valid}, recs, nil
}

// readHeader classifies the file's start: fresh (write a new header),
// versioned (decode the base offset), or legacy headerless (offset 0).
// A file that begins with our magic but whose header is torn or
// corrupt is reset to empty: the header is only ever written before
// the first record of its stream, so nothing acked can be behind it.
func readHeader(f *os.File) (base, hdr int64, err error) {
	st, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	if st.Size() == 0 {
		if err := writeHeader(f, 0); err != nil {
			return 0, 0, err
		}
		return 0, headerLen, nil
	}
	buf := make([]byte, headerLen)
	n, rerr := f.ReadAt(buf, 0)
	if rerr != nil && rerr != io.EOF {
		return 0, 0, rerr
	}
	if n < len(magic) || !bytes.Equal(buf[:len(magic)], magic) {
		return 0, 0, nil // legacy headerless record stream
	}
	if n == headerLen {
		want := binary.LittleEndian.Uint32(buf[14:])
		got := crc32.Checksum(buf[:14], castagnoli)
		off := binary.LittleEndian.Uint64(buf[6:])
		if want == got && off <= math.MaxInt64 {
			return int64(off), headerLen, nil
		}
	}
	// Ours, but damaged before the record stream even starts: only a
	// crash during creation can do that, so the stream holds nothing.
	if err := f.Truncate(0); err != nil {
		return 0, 0, err
	}
	if err := writeHeader(f, 0); err != nil {
		return 0, 0, err
	}
	return 0, headerLen, nil
}

// writeHeader stamps an empty file with the header for the given base
// offset and fsyncs, so an acked append always sits behind a durable
// header.
func writeHeader(f *os.File, base int64) error {
	buf := make([]byte, headerLen)
	copy(buf, magic)
	binary.LittleEndian.PutUint64(buf[6:], uint64(base))
	binary.LittleEndian.PutUint32(buf[14:], crc32.Checksum(buf[:14], castagnoli))
	if _, err := f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("wal: header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Record is one replayed mutation.
type Record struct {
	// Name is set (and Seq is -1) for a new-sequence record; Seq is
	// set for an append record.
	Name   string
	Seq    int
	Values []float64
	// End is the logical offset just past this record.  A record is
	// covered by a checkpoint taken at offset c iff End <= c.
	End int64
}

// AppendValues logs an append to an existing sequence and fsyncs.
func (l *Log) AppendValues(seq int, values []float64) error {
	payload := make([]byte, 1+8+8+8*len(values))
	payload[0] = kindAppend
	binary.LittleEndian.PutUint64(payload[1:], uint64(seq))
	putValues(payload[9:], values)
	return l.append(payload)
}

// AppendSequence logs the creation of a new sequence and fsyncs.
func (l *Log) AppendSequence(name string, values []float64) error {
	payload := make([]byte, 1+4+len(name)+8+8*len(values))
	payload[0] = kindNewSequence
	binary.LittleEndian.PutUint32(payload[1:], uint32(len(name)))
	copy(payload[5:], name)
	putValues(payload[5+len(name):], values)
	return l.append(payload)
}

func putValues(dst []byte, values []float64) {
	binary.LittleEndian.PutUint64(dst, uint64(len(values)))
	for i, v := range values {
		binary.LittleEndian.PutUint64(dst[8+8*i:], math.Float64bits(v))
	}
}

func (l *Log) append(payload []byte) error {
	buf := make([]byte, 4+len(payload)+4)
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	binary.LittleEndian.PutUint32(buf[4+len(payload):], crc32.Checksum(payload, castagnoli))
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	syncStart := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	recordAppend(len(buf), time.Since(syncStart))
	l.pos += int64(len(buf))
	return nil
}

// Size returns the current physical record-stream length in bytes (the
// durable backlog since the last checkpoint truncation).
func (l *Log) Size() int64 { return l.pos }

// Base returns the logical offset of the log's first retained record
// byte.  Zero means the full ingest history is still present — the
// only state in which a from-scratch replay reconstructs everything.
func (l *Log) Base() int64 { return l.base }

// Offset returns the logical end offset of the log: everything acked
// so far lies at offsets below it.  A checkpoint captures this value;
// recovery skips replayed records with End at or below the captured
// mark.
func (l *Log) Offset() int64 { return l.base + l.pos }

// TruncateThrough physically drops every record whose logical End is
// at or below offset.  Call it only after a checkpoint covering that
// offset is durable — the dropped prefix's only other copy is the
// checkpoint artifact.
//
// The rewrite is crash-safe: the surviving tail is copied into a fresh
// file (new header naming its logical base), fsync'd, and renamed over
// the log.  A crash before the rename leaves the old log intact; the
// offset-driven replay skip makes the longer prefix harmless.
func (l *Log) TruncateThrough(offset int64) error {
	if offset <= l.base {
		return nil // nothing retained is that old
	}
	if offset > l.base+l.pos {
		return fmt.Errorf("wal: truncate through %d beyond log end %d", offset, l.base+l.pos)
	}
	cut, err := l.findCut(offset)
	if err != nil {
		return err
	}
	if cut == 0 {
		return nil
	}
	truncStart := time.Now()
	newBase := l.base + cut

	tmp := l.path + ".trunc"
	tf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	defer os.Remove(tmp) // no-op after a successful rename
	if err := writeHeader(tf, newBase); err != nil {
		tf.Close()
		return err
	}
	if _, err := tf.Seek(headerLen, io.SeekStart); err != nil {
		tf.Close()
		return err
	}
	tail := io.NewSectionReader(l.f, l.hdr+cut, l.pos-cut)
	if _, err := io.Copy(tf, tail); err != nil {
		tf.Close()
		return fmt.Errorf("wal: truncate copy: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	if err := renameFile(tmp, l.path); err != nil {
		tf.Close()
		return fmt.Errorf("wal: truncate publish: %w", err)
	}
	if err := syncDir(l.path); err != nil {
		tf.Close()
		return err
	}
	if _, err := tf.Seek(headerLen+(l.pos-cut), io.SeekStart); err != nil {
		tf.Close()
		return err
	}
	l.f.Close()
	l.f = tf
	l.base = newBase
	l.hdr = headerLen
	l.pos -= cut
	recordTruncate(time.Since(truncStart))
	return nil
}

// findCut walks the validated record frames and returns the physical
// stream position of the end of the last record whose logical End is
// at or below offset.  Frames up to pos were CRC-checked at Open or
// written by this process, so only the length prefixes are read.
func (l *Log) findCut(offset int64) (int64, error) {
	var cut, at int64
	var head [4]byte
	for at < l.pos {
		if _, err := l.f.ReadAt(head[:], l.hdr+at); err != nil {
			return 0, fmt.Errorf("wal: truncate scan: %w", err)
		}
		length := int64(binary.LittleEndian.Uint32(head[:]))
		end := at + 4 + length + 4
		if end > l.pos {
			return 0, fmt.Errorf("wal: truncate scan: frame at %d overruns log end", at)
		}
		if l.base+end > offset {
			break
		}
		at = end
		cut = end
	}
	return cut, nil
}

func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("wal: dir sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: dir sync: %w", err)
	}
	return nil
}

// Reset truncates the log to empty while preserving the logical offset
// space (the new base is the old end).  Call it only after the store
// has been checkpointed durably — the log is the only other copy of
// everything it holds.
func (l *Log) Reset() error {
	newBase := l.base + l.pos
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := writeHeader(l.f, newBase); err != nil {
		return err
	}
	if _, err := l.f.Seek(headerLen, io.SeekStart); err != nil {
		return err
	}
	l.base = newBase
	l.hdr = headerLen
	l.pos = 0
	return nil
}

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }

// replay scans r from the end of the header, decoding records until
// EOF or the first invalid record, and returns the decoded records
// plus the stream position of the end of the last valid record.
func replay(r io.ReadSeeker, hdr, base int64) ([]Record, int64, error) {
	if _, err := r.Seek(hdr, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var recs []Record
	var valid int64
	var head [4]byte
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			return recs, valid, nil // clean EOF or torn length prefix
		}
		length := binary.LittleEndian.Uint32(head[:])
		if length < 9 || length > maxRecord {
			return recs, valid, nil
		}
		buf := make([]byte, int(length)+4)
		if _, err := io.ReadFull(r, buf); err != nil {
			return recs, valid, nil // torn record
		}
		payload := buf[:length]
		want := binary.LittleEndian.Uint32(buf[length:])
		if crc32.Checksum(payload, castagnoli) != want {
			return recs, valid, nil // corrupt record
		}
		rec, ok := decode(payload)
		if !ok {
			return recs, valid, nil
		}
		valid += int64(4 + len(buf))
		rec.End = base + valid
		recs = append(recs, rec)
	}
}

func decode(payload []byte) (Record, bool) {
	switch payload[0] {
	case kindNewSequence:
		if len(payload) < 5 {
			return Record{}, false
		}
		nameLen := int(binary.LittleEndian.Uint32(payload[1:]))
		if 5+nameLen+8 > len(payload) {
			return Record{}, false
		}
		name := string(payload[5 : 5+nameLen])
		values, ok := decodeValues(payload[5+nameLen:])
		if !ok {
			return Record{}, false
		}
		return Record{Name: name, Seq: -1, Values: values}, true
	case kindAppend:
		if len(payload) < 17 {
			return Record{}, false
		}
		seq := binary.LittleEndian.Uint64(payload[1:])
		if seq > math.MaxInt32 {
			return Record{}, false
		}
		values, ok := decodeValues(payload[9:])
		if !ok {
			return Record{}, false
		}
		return Record{Seq: int(seq), Values: values}, true
	default:
		return Record{}, false
	}
}

func decodeValues(b []byte) ([]float64, bool) {
	if len(b) < 8 {
		return nil, false
	}
	count := binary.LittleEndian.Uint64(b)
	if uint64(len(b)-8) != 8*count {
		return nil, false
	}
	values := make([]float64, count)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8+8*i:]))
	}
	return values, true
}
