// Package wal is the write-ahead log behind live ingest: every append
// is made durable — fsync'd to the log — before it is acknowledged, so
// a crash between the ack and the next store checkpoint loses nothing.
// On restart the serving layer loads the last checkpointed store and
// index artifacts, then Replays the log to roll the store forward; the
// segmented index re-extracts the replayed windows into its delta,
// which restores the exact pre-crash search surface.
//
// The format is a flat record stream.  Each record is
//
//	u32 payload length | payload | u32 CRC32C(payload)
//
// little-endian, with the payload's first byte a record kind:
//
//	1  new sequence: u32 name length, name bytes, u64 count, count float64s
//	2  append:       u64 sequence id,             u64 count, count float64s
//
// Replay stops cleanly at the first torn or corrupt record (the tail
// a crash mid-write leaves behind) and reports how many bytes of the
// log were valid, so the caller can truncate to that offset and keep
// appending.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// record kinds.
const (
	kindNewSequence = 1
	kindAppend      = 2
)

// maxRecord bounds one record's length claim (1 GiB) so a corrupt
// length prefix cannot drive a huge allocation.
const maxRecord = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only write-ahead log backed by one file.  Append
// methods are not internally locked — the serving layer already
// serializes appends through the segmented index's writer lock.
type Log struct {
	f   *os.File
	pos int64
}

// Open opens (creating if needed) the log at path and positions
// appends after the last valid record, truncating any torn tail left
// by a crash.  The caller replays the returned records into its store
// before appending new ones.
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, valid, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{f: f, pos: valid}, recs, nil
}

// Record is one replayed mutation.
type Record struct {
	// Name is set (and Seq is -1) for a new-sequence record; Seq is
	// set for an append record.
	Name   string
	Seq    int
	Values []float64
}

// AppendValues logs an append to an existing sequence and fsyncs.
func (l *Log) AppendValues(seq int, values []float64) error {
	payload := make([]byte, 1+8+8+8*len(values))
	payload[0] = kindAppend
	binary.LittleEndian.PutUint64(payload[1:], uint64(seq))
	putValues(payload[9:], values)
	return l.append(payload)
}

// AppendSequence logs the creation of a new sequence and fsyncs.
func (l *Log) AppendSequence(name string, values []float64) error {
	payload := make([]byte, 1+4+len(name)+8+8*len(values))
	payload[0] = kindNewSequence
	binary.LittleEndian.PutUint32(payload[1:], uint32(len(name)))
	copy(payload[5:], name)
	putValues(payload[5+len(name):], values)
	return l.append(payload)
}

func putValues(dst []byte, values []float64) {
	binary.LittleEndian.PutUint64(dst, uint64(len(values)))
	for i, v := range values {
		binary.LittleEndian.PutUint64(dst[8+8*i:], math.Float64bits(v))
	}
}

func (l *Log) append(payload []byte) error {
	buf := make([]byte, 4+len(payload)+4)
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	binary.LittleEndian.PutUint32(buf[4+len(payload):], crc32.Checksum(payload, castagnoli))
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.pos += int64(len(buf))
	return nil
}

// Size returns the current log length in bytes (the durable backlog
// since the last checkpoint).
func (l *Log) Size() int64 { return l.pos }

// Reset truncates the log to empty.  Call it only after the store has
// been checkpointed durably (see Checkpoint) — the log is the only
// copy of everything it holds.
func (l *Log) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.pos = 0
	return nil
}

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }

// replay scans r from the start, decoding records until EOF or the
// first invalid record, and returns the decoded records plus the byte
// offset of the end of the last valid record.
func replay(r io.ReadSeeker) ([]Record, int64, error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var recs []Record
	var valid int64
	var head [4]byte
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			return recs, valid, nil // clean EOF or torn length prefix
		}
		length := binary.LittleEndian.Uint32(head[:])
		if length < 9 || length > maxRecord {
			return recs, valid, nil
		}
		buf := make([]byte, int(length)+4)
		if _, err := io.ReadFull(r, buf); err != nil {
			return recs, valid, nil // torn record
		}
		payload := buf[:length]
		want := binary.LittleEndian.Uint32(buf[length:])
		if crc32.Checksum(payload, castagnoli) != want {
			return recs, valid, nil // corrupt record
		}
		rec, ok := decode(payload)
		if !ok {
			return recs, valid, nil
		}
		recs = append(recs, rec)
		valid += int64(4 + len(buf))
	}
}

func decode(payload []byte) (Record, bool) {
	switch payload[0] {
	case kindNewSequence:
		if len(payload) < 5 {
			return Record{}, false
		}
		nameLen := int(binary.LittleEndian.Uint32(payload[1:]))
		if 5+nameLen+8 > len(payload) {
			return Record{}, false
		}
		name := string(payload[5 : 5+nameLen])
		values, ok := decodeValues(payload[5+nameLen:])
		if !ok {
			return Record{}, false
		}
		return Record{Name: name, Seq: -1, Values: values}, true
	case kindAppend:
		if len(payload) < 17 {
			return Record{}, false
		}
		seq := binary.LittleEndian.Uint64(payload[1:])
		if seq > math.MaxInt32 {
			return Record{}, false
		}
		values, ok := decodeValues(payload[9:])
		if !ok {
			return Record{}, false
		}
		return Record{Seq: int(seq), Values: values}, true
	default:
		return Record{}, false
	}
}

func decodeValues(b []byte) ([]float64, bool) {
	if len(b) < 8 {
		return nil, false
	}
	count := binary.LittleEndian.Uint64(b)
	if uint64(len(b)-8) != 8*count {
		return nil, false
	}
	values := make([]float64, count)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8+8*i:]))
	}
	return values, true
}
