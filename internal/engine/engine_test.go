package engine

import (
	"context"
	"math"
	"strings"
	"testing"

	"scaleshift/internal/rtree"
	"scaleshift/internal/vec"
)

// stubPath is a configurable AccessPath for planner tests.
type stubPath struct {
	kind      PathKind
	available bool
	reason    string
	cost      Cost
	probes    int
}

func (p *stubPath) Kind() PathKind            { return p.kind }
func (p *stubPath) Available() (bool, string) { return p.available, p.reason }
func (p *stubPath) EstimateCost(q Query) Cost { return p.cost }
func (p *stubPath) Candidates(ctx context.Context, q Query, ts *rtree.SearchStats, emit func(seq, start int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.probes++
	emit(0, 0)
	return nil
}

func units(u float64) Cost { return Cost{Candidates: u, Units: u} }

func TestPathKindStringParseRoundTrip(t *testing.T) {
	for _, k := range []PathKind{PathAuto, PathRTree, PathScan, PathTrail} {
		got, err := ParsePathKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParsePathKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParsePathKind("btree"); err == nil {
		t.Error("ParsePathKind accepted an unknown path")
	}
	if s := PathKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind String = %q", s)
	}
}

func TestPlanPicksCheapestAvailable(t *testing.T) {
	tree := &stubPath{kind: PathRTree, available: true, cost: units(10)}
	scan := &stubPath{kind: PathScan, available: true, cost: units(100)}
	p := NewPlanner(tree, scan)

	path, ex, err := p.Plan(Query{}, PathAuto)
	if err != nil {
		t.Fatal(err)
	}
	if path.Kind() != PathRTree || ex.Chosen != PathRTree || ex.Forced {
		t.Errorf("chose %v (forced=%v), want rtree cost-based", ex.Chosen, ex.Forced)
	}
	if len(ex.Plans) != 2 || ex.EstCandidates != 10 {
		t.Errorf("Plans=%v EstCandidates=%v", ex.Plans, ex.EstCandidates)
	}

	scan.cost = units(1)
	if _, ex, _ := p.Plan(Query{}, PathAuto); ex.Chosen != PathScan {
		t.Errorf("after cheapening scan, chose %v", ex.Chosen)
	}
}

func TestPlanSkipsUnavailableAndRecordsReason(t *testing.T) {
	tree := &stubPath{kind: PathRTree, available: false, reason: "no point entries", cost: units(1)}
	scan := &stubPath{kind: PathScan, available: true, cost: units(1000)}
	p := NewPlanner(tree, scan)

	_, ex, err := p.Plan(Query{}, PathAuto)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Chosen != PathScan {
		t.Errorf("chose unavailable path %v", ex.Chosen)
	}
	if ex.Plans[0].Available || ex.Plans[0].Reason != "no point entries" {
		t.Errorf("plan entry %+v lacks unavailability reason", ex.Plans[0])
	}
}

func TestPlanTieBreaksTowardRegistrationOrder(t *testing.T) {
	tree := &stubPath{kind: PathRTree, available: true, cost: units(7)}
	scan := &stubPath{kind: PathScan, available: true, cost: units(7)}
	_, ex, err := NewPlanner(tree, scan).Plan(Query{}, PathAuto)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Chosen != PathRTree {
		t.Errorf("tie chose %v, want first registered (rtree)", ex.Chosen)
	}
}

func TestPlanForce(t *testing.T) {
	tree := &stubPath{kind: PathRTree, available: true, cost: units(1)}
	trail := &stubPath{kind: PathTrail, available: false, reason: "point entries", cost: units(1)}
	scan := &stubPath{kind: PathScan, available: true, cost: units(1000)}
	p := NewPlanner(tree, trail, scan)

	path, ex, err := p.Plan(Query{}, PathScan)
	if err != nil {
		t.Fatal(err)
	}
	if path.Kind() != PathScan || !ex.Forced {
		t.Errorf("forced scan got %v forced=%v", path.Kind(), ex.Forced)
	}
	if len(ex.Plans) != 3 {
		t.Errorf("forced plan recorded %d paths, want all 3", len(ex.Plans))
	}

	if _, _, err := p.Plan(Query{}, PathTrail); err == nil {
		t.Error("forcing an unavailable path did not error")
	}
	if _, _, err := p.Plan(Query{}, PathKind(42)); err == nil {
		t.Error("forcing an unregistered path did not error")
	}
}

func TestPlanNoPathAvailable(t *testing.T) {
	tree := &stubPath{kind: PathRTree, available: false, reason: "x"}
	if _, _, err := NewPlanner(tree).Plan(Query{}, PathAuto); err == nil {
		t.Error("planner with no available path did not error")
	}
}

func TestExplainWriteText(t *testing.T) {
	tree := &stubPath{kind: PathRTree, available: true, cost: units(3)}
	trail := &stubPath{kind: PathTrail, available: false, reason: "point entries"}
	_, ex, err := NewPlanner(tree, trail).Plan(Query{}, PathAuto)
	if err != nil {
		t.Fatal(err)
	}
	ex.ActualCandidates = 5
	ex.Matches = 2
	var b strings.Builder
	if err := ex.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"path=rtree", "cost-based", "unavailable: point entries", "5 actual", "2 matched", "stages:"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestEstimateCostShapes(t *testing.T) {
	h := rtree.CostHints{Entries: 1000, Nodes: 60, Height: 3, Dim: 6, Diameter: 100, Volume: 1e9}

	small := EstimateTreeCost(h, 1000, 0.01)
	huge := EstimateTreeCost(h, 1000, 1e6)
	if small.Units >= huge.Units {
		t.Errorf("tree cost not increasing in eps: %v vs %v", small.Units, huge.Units)
	}
	// At huge eps the probe degenerates to visiting everything, so the
	// scan (no index pages) must be cheaper.
	if scan := EstimateScanCost(1000); huge.Units <= scan.Units {
		t.Errorf("degenerate tree probe (%v) not costlier than scan (%v)", huge.Units, scan.Units)
	}
	// At tiny eps over a big store the tree must win.
	if scan := EstimateScanCost(1000); small.Units >= scan.Units {
		t.Errorf("selective tree probe (%v) not cheaper than scan (%v)", small.Units, scan.Units)
	}

	// Trail estimates cover whole trails, so candidates never exceed
	// the window universe.
	trail := EstimateTrailCost(h, 500, 8, 1e6)
	if trail.Candidates > 500 {
		t.Errorf("trail candidates %v exceed window count", trail.Candidates)
	}
}

func TestEstimatesDegenerateGeometry(t *testing.T) {
	// Empty tree: zero cost, no NaNs.
	c := EstimateTreeCost(rtree.CostHints{}, 0, 0.5)
	if c.Units != 0 || c.Candidates != 0 {
		t.Errorf("empty tree cost = %+v", c)
	}
	// Flat MBR (zero volume) clamps selectivity to 1.
	h := rtree.CostHints{Entries: 10, Nodes: 1, Height: 1, Dim: 6, Diameter: 5, Volume: 0}
	if c := EstimateTreeCost(h, 10, 0.1); c.Candidates != 10 {
		t.Errorf("flat-MBR candidates = %v, want all 10", c.Candidates)
	}
}

func TestSampleSelectivity(t *testing.T) {
	if s := SampleSelectivity(nil, 1); s != 0 {
		t.Errorf("empty sample selectivity = %v, want 0", s)
	}
	dists := []float64{0.5, 1, 2, 4}
	prev := 0.0
	for _, eps := range []float64{0, 0.5, 1.5, 3, 10} {
		s := SampleSelectivity(dists, eps)
		if s <= 0 || s >= 1 {
			t.Errorf("eps %g: selectivity %v outside (0,1)", eps, s)
		}
		if s < prev {
			t.Errorf("eps %g: selectivity fell from %v to %v", eps, prev, s)
		}
		prev = s
	}
	// All four within eps=10: smoothed to 4.5/5, not 1.
	if s := SampleSelectivity(dists, 10); s != 4.5/5 {
		t.Errorf("full-coverage selectivity %v, want 0.9", s)
	}
}

func TestSegmentDistances(t *testing.T) {
	l := vec.Line{P: vec.Vector{0, 0}, D: vec.Vector{1, 0}}
	sample := []vec.Vector{{5, 0}, {5, 3}, {-2, 0}}
	inf := math.Inf(1)

	// Full line: distance is perpendicular.
	d := SegmentDistances(sample, l, -inf, inf)
	if d[0] != 0 || d[1] != 3 || d[2] != 0 {
		t.Errorf("line distances %v, want [0 3 0]", d)
	}
	// Segment [0, 1]: points beyond an endpoint measure to it.
	d = SegmentDistances(sample, l, 0, 1)
	if d[0] != 4 || d[2] != 2 {
		t.Errorf("segment distances %v, want [4 ... 2]", d)
	}
	if SegmentDistances(nil, l, 0, 1) != nil {
		t.Error("empty sample should return nil")
	}
}

func TestSampledEstimateSeesConcentration(t *testing.T) {
	// A huge, mostly empty MBR: the geometric model thinks the probe is
	// selective, but every sampled feature sits on the query line.
	h := rtree.CostHints{Entries: 1000, Nodes: 60, Height: 3, Dim: 6, Diameter: 1e3, Volume: 1e15}
	geo := EstimateTreeCost(h, 1000, 1)
	onLine := make([]float64, 64)
	sampled := EstimateTreeCostSampled(h, 1000, 1, onLine)
	if sampled.Candidates <= geo.Candidates {
		t.Errorf("concentrated sample did not raise the estimate: %v vs %v", sampled.Candidates, geo.Candidates)
	}
	// Nearly all entries are candidates now, so the probe must cost
	// more than the scan — the regime where the planner flips.
	if scan := EstimateScanCost(1000); sampled.Units <= scan.Units {
		t.Errorf("saturated probe (%v) not costlier than scan (%v)", sampled.Units, scan.Units)
	}
	// A distant sample leaves the geometric floor intact.
	far := []float64{1e9, 1e9}
	if c := EstimateTreeCostSampled(h, 1000, 1, far); c.Candidates < geo.Candidates {
		t.Errorf("distant sample lowered the geometric estimate: %v < %v", c.Candidates, geo.Candidates)
	}
}
