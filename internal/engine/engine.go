// Package engine is the query-engine layer between the public search
// API and the physical access paths.  The paper's §6 R*-tree probe is
// one of several ways to answer a range query Q ~ε S': the tree wins
// when ε is small and the SE-line penetrates few directory MBRs, but a
// sequential SE-plane scan wins on small stores or huge ε (where the
// tree visits every node and then verifies every window anyway), and a
// sub-trail MBR index (ST-index style) is a third physical shape.
//
// The engine models each of these as an AccessPath — a candidate
// generator with a cost estimate — and a cost-based Planner that picks
// the cheapest available path per query.  Candidate verification is
// NOT part of a path: every path feeds the same exact post-processing
// check, which is what makes the planner's choice invisible in the
// result set (the bit-identical-results invariant, DESIGN.md §8).
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"scaleshift/internal/rtree"
	"scaleshift/internal/vec"
)

// ErrUnsupported tags a query that asks for an operation the current
// index state or configuration cannot serve — a forced path that is
// unavailable or unregistered, no access path at all, or (wrapped by
// the core layer) nearest-neighbour search on a degraded index.  These
// are the caller's problem, not the path's: serving layers use
// errors.Is(err, ErrUnsupported) to map them to 4xx responses and keep
// them out of path-health accounting such as circuit breakers.
var ErrUnsupported = errors.New("unsupported operation")

// PathKind identifies an access path.
type PathKind int

const (
	// PathAuto lets the planner choose the cheapest available path.
	PathAuto PathKind = iota
	// PathRTree probes the R*-tree with per-window point entries
	// (the paper's §6 index phase).
	PathRTree
	// PathScan enumerates every indexed window in storage order and
	// relies entirely on the shared verifier (experiment set 1).
	PathScan
	// PathTrail probes the R*-tree with sub-trail MBR leaf entries and
	// expands each penetrated trail into its windows.
	PathTrail
	// NumPathKinds sizes arrays indexed by PathKind (the PathAuto slot
	// stays unused in per-path counters).
	NumPathKinds
)

// String names the path for plans, flags, and reports.
func (k PathKind) String() string {
	switch k {
	case PathAuto:
		return "auto"
	case PathRTree:
		return "rtree"
	case PathScan:
		return "scan"
	case PathTrail:
		return "trail"
	default:
		return fmt.Sprintf("path(%d)", int(k))
	}
}

// ParsePathKind maps a command-line name to a PathKind.
func ParsePathKind(s string) (PathKind, error) {
	switch s {
	case "auto":
		return PathAuto, nil
	case "rtree":
		return PathRTree, nil
	case "scan":
		return PathScan, nil
	case "trail":
		return PathTrail, nil
	default:
		return 0, fmt.Errorf("engine: unknown access path %q (want auto, rtree, scan, or trail)", s)
	}
}

// Query is the planner's view of one index-phase probe: the query's
// SE-line image in feature space, the (slack-widened) index epsilon,
// the optional scale-segment restriction derived from the cost bounds,
// and the candidate universe size.  It carries no data pointers — the
// paths close over their index — so cost estimation is a pure function
// of this struct and the paths' structural hints.
type Query struct {
	// Line is the query's SE-line in feature space (through the origin).
	Line vec.Line
	// Eps is the index-phase error bound, already widened by the
	// numeric slack; the exact verifier reapplies the caller's bound.
	Eps float64
	// Segment restricts the probe to the line segment with parameter
	// t in [TMin, TMax] (scale-factor cost bounds, §3).
	Segment    bool
	TMin, TMax float64
	// Windows is the number of indexed windows — the candidate
	// universe every path draws from.
	Windows int
	// Dim is the feature-space dimensionality 2·f_c.
	Dim int
}

// AccessPath is one physical way to generate candidate windows for the
// shared verifier.  Implementations live next to the index internals
// (internal/core); the engine only needs the three operations below.
type AccessPath interface {
	// Kind identifies the path.
	Kind() PathKind
	// Available reports whether the path can serve queries against the
	// current index structure, with a human-readable reason when not
	// (e.g. the trail path on an index with per-window point entries).
	// Availability is structural — it must not depend on the query —
	// so a forced path either always works or always errors.
	Available() (bool, string)
	// EstimateCost predicts the work of Candidates for q.
	EstimateCost(q Query) Cost
	// Candidates emits every candidate window address for q.  Tree
	// probes record their page and pruning work in ts.  The emitted
	// set must be a superset of the true answer set (no false
	// dismissals); the shared verifier removes all false alarms.
	// Implementations poll ctx cooperatively and return ctx.Err() on
	// cancellation; a partial emission followed by a non-nil error is
	// never treated as an answer set.
	Candidates(ctx context.Context, q Query, ts *rtree.SearchStats, emit func(seq, start int)) error
}

// Cost is a predicted probe cost in abstract units where 1 unit is one
// window verification (the shared verifier's prefix-sum pass).
type Cost struct {
	// Candidates is the expected number of windows emitted.
	Candidates float64
	// NodeReads is the expected number of index pages touched.
	NodeReads float64
	// Units is the total cost: NodeReadCost·NodeReads + Candidates.
	Units float64
}

// PathPlan records what the planner knew about one path.
type PathPlan struct {
	Path      PathKind
	Available bool
	// Reason explains unavailability (empty when available).
	Reason string
	Cost   Cost
}

// Explain records one planned query: the decision, the per-path
// estimates it was based on, and the actuals filled in by the
// executor — the query engine's EXPLAIN ANALYZE.
type Explain struct {
	// Chosen is the path that ran; Forced reports whether the caller
	// forced it rather than letting the cost model decide.
	Chosen PathKind
	Forced bool
	// Plans holds one entry per registered path, in planner order.
	Plans []PathPlan
	// EstCandidates is the chosen path's predicted candidate count;
	// ActualCandidates is what the probe emitted.
	EstCandidates    float64
	ActualCandidates int
	// Matches counts verified results.
	Matches int
	// Pieces is 1 for a plain range query and the number of length-n
	// pieces for a multipiece (long-query) search, where the recorded
	// estimates are the first piece's and the actuals are totals.
	Pieces int
	// PlanTime, ProbeTime, and VerifyTime are the per-stage wall-clock
	// times of this query.
	PlanTime, ProbeTime, VerifyTime time.Duration
	// Degraded reports that the index artifact failed validation and
	// the query was served through the scan fallback over the raw
	// store; DegradedReason says why.  Results remain exact — the scan
	// path feeds the same verifier — only slower.
	Degraded       bool
	DegradedReason string
	// TraceID links this plan to the structured trace the query
	// produced (empty when tracing was off or no trace was active).
	TraceID string
	// Segments holds one entry per probed segment when the query ran
	// against a segmented (LSM-style) index: each frozen segment is
	// planned independently and the mutable delta is scanned exactly.
	// Empty for single-index queries.
	Segments []SegmentPlan
}

// SegmentPlan records how one segment of a segmented index served its
// share of a query's probe.
type SegmentPlan struct {
	// Seg is the frozen segment's position in the manifest; -1 is the
	// mutable delta segment.
	Seg int
	// Kind labels the segment ("frozen" or "delta").
	Kind string
	// Windows is the segment's window count (its candidate universe).
	Windows int
	// Chosen is the access path that probed the segment.
	Chosen PathKind
	// Cost is the estimate the per-segment choice was based on.
	Cost Cost
	// Candidates is what the segment's probe actually emitted.
	Candidates int
}

// WriteText renders the plan in ssquery -explain form.
func (e *Explain) WriteText(w io.Writer) error {
	mode := "cost-based"
	if e.Forced {
		mode = "forced"
	}
	if _, err := fmt.Fprintf(w, "plan: path=%s (%s)\n", e.Chosen, mode); err != nil {
		return err
	}
	if e.Degraded {
		if _, err := fmt.Fprintf(w, "  DEGRADED: %s (results exact, served by scan over raw data)\n",
			e.DegradedReason); err != nil {
			return err
		}
	}
	for _, p := range e.Plans {
		if !p.Available {
			if _, err := fmt.Fprintf(w, "  %-5s unavailable: %s\n", p.Path, p.Reason); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-5s est-cost=%.4g (candidates %.4g, node reads %.4g)\n",
			p.Path, p.Cost.Units, p.Cost.Candidates, p.Cost.NodeReads); err != nil {
			return err
		}
	}
	if e.Pieces > 1 {
		if _, err := fmt.Fprintf(w, "  pieces: %d (multipiece long query; per-piece estimates above)\n", e.Pieces); err != nil {
			return err
		}
	}
	for _, sp := range e.Segments {
		label := fmt.Sprintf("seg %d", sp.Seg)
		if sp.Seg < 0 {
			label = "delta"
		}
		if _, err := fmt.Fprintf(w, "  %-6s %-6s windows=%d path=%s est-cost=%.4g candidates=%d\n",
			label, sp.Kind, sp.Windows, sp.Chosen, sp.Cost.Units, sp.Candidates); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  candidates: %d actual vs %.4g estimated; %d matched\n",
		e.ActualCandidates, e.EstCandidates, e.Matches); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  stages: plan=%v probe=%v verify=%v\n",
		e.PlanTime.Round(time.Microsecond), e.ProbeTime.Round(time.Microsecond),
		e.VerifyTime.Round(time.Microsecond)); err != nil {
		return err
	}
	if e.TraceID != "" {
		if _, err := fmt.Fprintf(w, "  trace: %s\n", e.TraceID); err != nil {
			return err
		}
	}
	return nil
}
