package engine

import (
	"math"
	"testing"

	"scaleshift/internal/rtree"
)

// sane maps arbitrary fuzz floats into a bounded non-negative range so
// the properties are checked over meaningful geometry rather than NaN
// plumbing.
func sane(x, hi float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(math.Abs(x), hi)
}

// FuzzCostEstimatesMonotone checks the planner's cost-model contract:
// every estimate is non-negative and finite-or-clamped, and estimates
// are monotone non-decreasing in both the error bound and the store
// size — a planner whose predicted work shrank as the query loosened
// or the database grew would flip paths erratically.
func FuzzCostEstimatesMonotone(f *testing.F) {
	f.Add(0.1, 0.5, uint16(100), uint16(5000), 50.0, 1e6, uint16(2000), uint8(3), uint8(8), 1.0, 7.0, 0.2)
	f.Add(0.0, 0.0, uint16(0), uint16(0), 0.0, 0.0, uint16(0), uint8(1), uint8(0), 0.0, 0.0, 0.0)
	f.Add(1e3, 2e3, uint16(7), uint16(7), 1e-3, 1e-9, uint16(1), uint8(12), uint8(2), 1e6, 3.0, 9.0)
	f.Fuzz(func(t *testing.T, epsA, epsB float64, winA, winB uint16, diam, vol float64, entries uint16, dim, subtrail uint8, d1, d2, d3 float64) {
		eps1, eps2 := sane(epsA, 1e9), sane(epsB, 1e9)
		if eps1 > eps2 {
			eps1, eps2 = eps2, eps1
		}
		w1, w2 := int(winA), int(winB)
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		h := rtree.CostHints{
			Entries:  int(entries),
			Nodes:    1 + int(entries)/8,
			Height:   1 + int(entries)/64,
			Dim:      int(dim),
			Diameter: sane(diam, 1e6),
			Volume:   sane(vol, 1e12),
		}
		k := 2 + int(subtrail)
		dists := []float64{sane(d1, 1e9), sane(d2, 1e9), sane(d3, 1e9)}

		checkCost := func(name string, c Cost) {
			if c.Candidates < 0 || c.NodeReads < 0 || c.Units < 0 {
				t.Fatalf("%s produced a negative estimate: %+v", name, c)
			}
			if math.IsNaN(c.Candidates) || math.IsNaN(c.NodeReads) || math.IsNaN(c.Units) {
				t.Fatalf("%s produced NaN: %+v", name, c)
			}
		}
		checkMonotone := func(name string, lo, hi Cost) {
			if lo.Units > hi.Units || lo.Candidates > hi.Candidates {
				t.Fatalf("%s not monotone: %+v then %+v", name, lo, hi)
			}
		}

		for _, w := range []int{w1, w2} {
			lo, hi := EstimateTreeCost(h, w, eps1), EstimateTreeCost(h, w, eps2)
			checkCost("tree", lo)
			checkCost("tree", hi)
			checkMonotone("tree in eps", lo, hi)

			lot, hit := EstimateTrailCost(h, w, k, eps1), EstimateTrailCost(h, w, k, eps2)
			checkCost("trail", lot)
			checkCost("trail", hit)
			checkMonotone("trail in eps", lot, hit)

			los, his := EstimateTreeCostSampled(h, w, eps1, dists), EstimateTreeCostSampled(h, w, eps2, dists)
			checkCost("tree-sampled", los)
			checkCost("tree-sampled", his)
			checkMonotone("tree-sampled in eps", los, his)
			lost, hist := EstimateTrailCostSampled(h, w, k, eps1, dists), EstimateTrailCostSampled(h, w, k, eps2, dists)
			checkCost("trail-sampled", lost)
			checkCost("trail-sampled", hist)
			checkMonotone("trail-sampled in eps", lost, hist)

			checkCost("scan", EstimateScanCost(w))
		}
		for _, eps := range []float64{eps1, eps2} {
			checkMonotone("tree in windows", EstimateTreeCost(h, w1, eps), EstimateTreeCost(h, w2, eps))
			checkMonotone("trail in windows", EstimateTrailCost(h, w1, k, eps), EstimateTrailCost(h, w2, k, eps))
			checkMonotone("tree-sampled in windows", EstimateTreeCostSampled(h, w1, eps, dists), EstimateTreeCostSampled(h, w2, eps, dists))
			checkMonotone("trail-sampled in windows", EstimateTrailCostSampled(h, w1, k, eps, dists), EstimateTrailCostSampled(h, w2, k, eps, dists))
			checkMonotone("scan in windows", EstimateScanCost(w1), EstimateScanCost(w2))
			if s1, s2 := SampleSelectivity(dists, eps1), SampleSelectivity(dists, eps2); s1 < 0 || s1 > 1 || math.IsNaN(s1) || s1 > s2 {
				t.Fatalf("sample selectivity not monotone in [0,1]: %v then %v", s1, s2)
			}
		}
	})
}

// FuzzPlanChoosesAvailablePath checks the planning contract over
// arbitrary availability patterns and costs: Plan errors if and only
// if nothing is available (or an unavailable path is forced), and a
// successful plan always names an available path — e.g. never trail
// when the index stores point entries.
func FuzzPlanChoosesAvailablePath(f *testing.F) {
	f.Add(true, false, true, 10.0, 20.0, 30.0, uint8(0))
	f.Add(false, false, false, 1.0, 1.0, 1.0, uint8(1))
	f.Add(false, true, true, 5.0, 5.0, 5.0, uint8(3))
	f.Fuzz(func(t *testing.T, treeOK, trailOK, scanOK bool, c1, c2, c3 float64, forceRaw uint8) {
		paths := []*stubPath{
			{kind: PathRTree, available: treeOK, reason: "r", cost: units(sane(c1, 1e9))},
			{kind: PathTrail, available: trailOK, reason: "t", cost: units(sane(c2, 1e9))},
			{kind: PathScan, available: scanOK, reason: "s", cost: units(sane(c3, 1e9))},
		}
		avail := map[PathKind]bool{PathRTree: treeOK, PathTrail: trailOK, PathScan: scanOK}
		p := NewPlanner(paths[0], paths[1], paths[2])
		force := PathKind(forceRaw % uint8(NumPathKinds))

		path, ex, err := p.Plan(Query{}, force)
		if err != nil {
			if force == PathAuto && (treeOK || trailOK || scanOK) {
				t.Fatalf("auto plan errored with available paths: %v", err)
			}
			if force != PathAuto && avail[force] {
				t.Fatalf("forcing available %v errored: %v", force, err)
			}
			return
		}
		if !avail[ex.Chosen] || path.Kind() != ex.Chosen {
			t.Fatalf("plan chose unavailable path %v (avail %v)", ex.Chosen, avail)
		}
		if force != PathAuto && ex.Chosen != force {
			t.Fatalf("forced %v but chose %v", force, ex.Chosen)
		}
	})
}
