package engine

import (
	"fmt"
	"math"

	"scaleshift/internal/rtree"
	"scaleshift/internal/vec"
)

// NodeReadCost is the cost of one index-page read relative to one
// window verification.  A node access runs a slab penetration test per
// entry (M ≈ 20 tests of O(d) planes each) plus allocation and
// recursion overhead, while most verifications stop at the O(1)
// prefix-sum pre-filter and only true near-matches pay the full
// Theorem-1 pass.  Calibrated against results/planner_ablation.txt
// (make bench-planner), where the measured rtree/scan crossover sits
// at a candidate selectivity of roughly one half.
const NodeReadCost = 12.0

// unitBallVolume returns the volume of the m-dimensional unit ball.
func unitBallVolume(m int) float64 {
	fm := float64(m)
	return math.Pow(math.Pi, fm/2) / math.Gamma(fm/2+1)
}

// lineSelectivity estimates the fraction of uniformly spread feature
// points that lie within eps of a line crossing the index MBR: the
// volume of an ε-radius cylinder of length diameter (the ε-ball swept
// along the line), divided by the MBR volume, clamped to [0, 1].
// Degenerate geometry (flat or empty MBR) clamps to 1 — assume the
// probe filters nothing rather than everything.  The estimate is
// non-negative and monotone in eps by construction.
func lineSelectivity(diameter, volume float64, dim int, eps float64) float64 {
	if dim < 2 || volume <= 0 || math.IsNaN(volume) {
		return 1
	}
	if eps < 0 {
		eps = 0
	}
	cyl := diameter * unitBallVolume(dim-1) * math.Pow(eps, float64(dim-1))
	sel := cyl / volume
	if math.IsNaN(sel) || sel > 1 {
		return 1
	}
	if sel < 0 {
		return 0
	}
	return sel
}

// SegmentDistances returns each sample point's Euclidean distance to
// the query segment {P + t·D : t ∈ [tMin, tMax]} — the empirical input
// to SampleSelectivity.  Pass ±Inf bounds for a full line.
func SegmentDistances(sample []vec.Vector, l vec.Line, tMin, tMax float64) []float64 {
	if len(sample) == 0 {
		return nil
	}
	out := make([]float64, len(sample))
	for i, p := range sample {
		d, t := vec.PLD(p, l)
		switch {
		case t < tMin:
			d = vec.Dist(p, l.At(tMin))
		case t > tMax:
			d = vec.Dist(p, l.At(tMax))
		}
		out[i] = d
	}
	return out
}

// SampleSelectivity estimates the fraction of stored features within
// eps of the query from measured sample distances, with add-half
// (Laplace) smoothing so tiny samples never report exactly 0 or 1.
// Unlike the MBR-volume model it sees the data's actual concentration:
// overlapping extraction windows string features into near-1-D trails
// that a uniform-spread model misses by orders of magnitude.  Monotone
// non-decreasing in eps.
func SampleSelectivity(dists []float64, eps float64) float64 {
	if len(dists) == 0 {
		return 0
	}
	within := 0
	for _, d := range dists {
		if d <= eps {
			within++
		}
	}
	return (float64(within) + 0.5) / (float64(len(dists)) + 1)
}

// estimateNodes predicts the pages a line probe touches: the root-to-
// leaf spine is always paid, and the rest of the directory is entered
// in proportion to √selectivity (directory MBRs are fatter than leaf
// points, so they are penetrated more often than points qualify).
func estimateNodes(h rtree.CostHints, sel float64) float64 {
	if h.Nodes <= 0 {
		return 0
	}
	est := float64(h.Height) + float64(h.Nodes-1)*math.Sqrt(sel)
	return math.Min(est, float64(h.Nodes))
}

// EstimateTreeCost predicts the cost of the point-entry R*-tree probe
// (PathRTree) over an index holding windows candidate windows, from
// MBR geometry alone.
func EstimateTreeCost(h rtree.CostHints, windows int, eps float64) Cost {
	return EstimateTreeCostSampled(h, windows, eps, nil)
}

// EstimateTreeCostSampled is EstimateTreeCost refined by measured
// sample-to-line distances (SegmentDistances over h.Sample): the
// selectivity is the larger of the geometric and the empirical
// estimate, so concentrated data cannot fool the planner into a
// doomed index probe, and a degenerate ε still clamps to everything.
func EstimateTreeCostSampled(h rtree.CostHints, windows int, eps float64, sampleDists []float64) Cost {
	sel := lineSelectivity(h.Diameter, h.Volume, h.Dim, eps)
	if s := SampleSelectivity(sampleDists, eps); s > sel {
		sel = s
	}
	cands := float64(windows) * sel
	nodes := estimateNodes(h, sel)
	return Cost{Candidates: cands, NodeReads: nodes, Units: NodeReadCost*nodes + cands}
}

// EstimateScanCost predicts the cost of the sequential scan
// (PathScan): every indexed window is emitted and verified, no index
// pages are read.
func EstimateScanCost(windows int) Cost {
	w := float64(windows)
	if w < 0 {
		w = 0
	}
	return Cost{Candidates: w, Units: w}
}

// EstimateTrailCost predicts the cost of the sub-trail MBR probe
// (PathTrail): leaf entries are rectangles covering subtrailLen
// consecutive windows, so the effective probe radius grows by half the
// mean entry diameter (estimated from the index volume per entry, a
// uniform-spread heuristic), and every penetrated entry expands into
// its run of windows.
func EstimateTrailCost(h rtree.CostHints, windows, subtrailLen int, eps float64) Cost {
	return EstimateTrailCostSampled(h, windows, subtrailLen, eps, nil)
}

// EstimateTrailCostSampled is EstimateTrailCost with the empirical
// refinement of EstimateTreeCostSampled; sampleDists are distances
// from sub-trail MBR centers to the query line.
func EstimateTrailCostSampled(h rtree.CostHints, windows, subtrailLen int, eps float64, sampleDists []float64) Cost {
	if eps < 0 {
		eps = 0
	}
	entryDiam := 0.0
	if h.Entries > 0 && h.Volume > 0 && h.Dim > 0 {
		entryDiam = math.Sqrt(float64(h.Dim)) * math.Pow(h.Volume/float64(h.Entries), 1/float64(h.Dim))
	}
	sel := lineSelectivity(h.Diameter, h.Volume, h.Dim, eps+entryDiam/2)
	if s := SampleSelectivity(sampleDists, eps+entryDiam/2); s > sel {
		sel = s
	}
	cands := float64(h.Entries) * sel * float64(subtrailLen)
	if w := float64(windows); cands > w {
		cands = w
	}
	nodes := estimateNodes(h, sel)
	return Cost{Candidates: cands, NodeReads: nodes, Units: NodeReadCost*nodes + cands}
}

// Planner picks an access path per query by comparing the paths' cost
// estimates.  Ties break toward the earlier registered path, so the
// choice is deterministic.
type Planner struct {
	paths []AccessPath
}

// NewPlanner registers the candidate paths in preference order.
func NewPlanner(paths ...AccessPath) *Planner {
	return &Planner{paths: paths}
}

// Plan chooses the path for q: the forced path when force is not
// PathAuto (erroring when that path is unavailable), otherwise the
// available path with the lowest estimated cost.  The returned Explain
// records every path's availability and estimate; the executor fills
// in the actuals.
func (p *Planner) Plan(q Query, force PathKind) (AccessPath, *Explain, error) {
	ex := &Explain{Pieces: 1}
	var chosen AccessPath
	var chosenCost Cost
	for _, path := range p.paths {
		ok, reason := path.Available()
		pp := PathPlan{Path: path.Kind(), Available: ok, Reason: reason}
		if ok {
			pp.Cost = path.EstimateCost(q)
		}
		ex.Plans = append(ex.Plans, pp)
		if force != PathAuto {
			if path.Kind() != force {
				continue
			}
			if !ok {
				return nil, ex, fmt.Errorf("engine: %w: path %s unavailable: %s", ErrUnsupported, force, reason)
			}
			chosen, chosenCost = path, pp.Cost
			ex.Forced = true
			continue
		}
		if ok && (chosen == nil || pp.Cost.Units < chosenCost.Units) {
			chosen, chosenCost = path, pp.Cost
		}
	}
	if chosen == nil {
		if force != PathAuto {
			return nil, ex, fmt.Errorf("engine: %w: path %s is not registered", ErrUnsupported, force)
		}
		return nil, ex, fmt.Errorf("engine: %w: no access path available", ErrUnsupported)
	}
	ex.Chosen = chosen.Kind()
	ex.EstCandidates = chosenCost.Candidates
	return chosen, ex, nil
}
