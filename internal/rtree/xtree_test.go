package rtree

import (
	"math/rand"
	"testing"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

// xtreeConfig enables supernodes with a tight overlap threshold so
// clustered high-dimensional data actually produces them.
func xtreeConfig(dim int) Config {
	cfg := DefaultConfig(dim)
	cfg.SupernodeMaxOverlap = 0.02
	return cfg
}

// clusteredVec draws points in tight clusters along a shared diagonal,
// the regime where directory MBRs overlap heavily.
func clusteredVec(r *rand.Rand, dim int) vec.Vector {
	center := float64(r.Intn(4))
	v := make(vec.Vector, dim)
	for i := range v {
		v[i] = center + r.NormFloat64()*0.05
	}
	return v
}

func TestXtreeConfigValidation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.SupernodeMaxOverlap = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative threshold accepted")
	}
	cfg.SupernodeMaxOverlap = 1
	if _, err := New(cfg); err == nil {
		t.Error("threshold 1 accepted")
	}
	cfg.SupernodeMaxOverlap = 0.2
	if _, err := New(cfg); err != nil {
		t.Errorf("valid threshold rejected: %v", err)
	}
}

func TestXtreeBuildsValidTreeWithSupernodes(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	tr, err := New(xtreeConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		tr.Insert(clusteredVec(r, 8), int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !hasSupernode(tr.root) {
		t.Log("no supernodes formed on clustered data; threshold may be loose (informational)")
	}
	// Page count exceeds node count when supernodes exist.
	if tr.NodeCount() < tr.Height() {
		t.Errorf("implausible page count %d", tr.NodeCount())
	}
}

func hasSupernode(n *node) bool {
	if n.super > 1 {
		return true
	}
	for _, e := range n.entries {
		if e.child != nil && hasSupernode(e.child) {
			return true
		}
	}
	return false
}

func TestXtreeSearchMatchesRStarTree(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	x, err := New(xtreeConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]vec.Vector, 4000)
	for i := range pts {
		pts[i] = clusteredVec(r, 6)
		x.Insert(pts[i], int64(i))
		plain.Insert(pts[i], int64(i))
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 25; q++ {
		rect := geom.RectFromPoint(clusteredVec(r, 6))
		rect.ExtendPoint(clusteredVec(r, 6))
		if !sameIDSet(idSet(x.RangeSearch(rect, nil)), idSet(plain.RangeSearch(rect, nil))) {
			t.Fatal("range results differ between X-tree and R*-tree")
		}
		l := vec.Line{P: make(vec.Vector, 6), D: clusteredVec(r, 6)}
		if !sameIDSet(idSet(x.LineSearch(l, 0.2, geom.EnteringExiting, nil)),
			idSet(plain.LineSearch(l, 0.2, geom.EnteringExiting, nil))) {
			t.Fatal("line results differ between X-tree and R*-tree")
		}
	}
}

func TestXtreeDeleteShrinksSupernodes(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	tr, err := New(xtreeConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]vec.Vector, 5000)
	for i := range pts {
		pts[i] = clusteredVec(r, 8)
		tr.Insert(pts[i], int64(i))
	}
	for i := 0; i < 4900; i++ {
		if !tr.Delete(pts[i], int64(i)) {
			t.Fatalf("delete %d failed", i)
		}
		if i%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestXtreeSupernodePageAccounting(t *testing.T) {
	// Force a supernode deterministically: internal entries all
	// overlapping so no split passes the threshold.
	cfg := Config{Dim: 2, MaxEntries: 4, MinEntries: 2, Split: SplitRStar, SupernodeMaxOverlap: 0.01}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Near-identical points: every directory rectangle is a tiny box
	// around (1, 1), so any split of an internal node leaves halves
	// overlapping by ~50 % of their area — far above the threshold —
	// and overflow must produce supernodes rather than splits.
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 200; i++ {
		p := vec.Vector{1 + r.NormFloat64()*1e-6, 1 + r.NormFloat64()*1e-6}
		tr.Insert(p, int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !hasSupernode(tr.root) {
		t.Fatal("duplicate-point workload produced no supernode")
	}
	// All duplicates retrievable, and a line query through the point
	// charges the supernode's full page span.
	var stats SearchStats
	got := tr.LineSearch(vec.Line{P: vec.Vector{0, 0}, D: vec.Vector{1, 1}}, 1e-3, geom.EnteringExiting, &stats)
	if len(got) != 200 {
		t.Errorf("retrieved %d of 200 near-duplicates", len(got))
	}
	if stats.NodeAccesses < tr.Height()+1 {
		t.Errorf("NodeAccesses %d too small for supernode traversal", stats.NodeAccesses)
	}
}
