package rtree

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzReadBinaryTree asserts that the tree deserializer never panics
// and that anything it accepts satisfies the structural invariants
// (ReadBinary runs CheckInvariants itself; the fuzz target verifies
// that promise holds under corruption).
func FuzzReadBinaryTree(f *testing.F) {
	good := func() []byte {
		r := rand.New(rand.NewSource(1))
		tr, err := New(Config{Dim: 2, MaxEntries: 4, MinEntries: 2, Split: SplitRStar})
		if err != nil {
			panic(err)
		}
		for i := 0; i < 40; i++ {
			tr.Insert(randVec(r, 2), int64(i))
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("RTREE\x01"))
	f.Add(good[:20])
	f.Add(good[:len(good)-7])
	f.Fuzz(func(t *testing.T, in []byte) {
		tr, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("accepted tree violates invariants: %v", err)
		}
	})
}
